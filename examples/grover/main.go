// Grover maps a complete 2-qubit-database Grover search (3 qubits with an
// ancilla, Toffoli-based oracle and diffusion operator) to IBM QX4,
// demonstrating the reversible-logic substrate (MCT decomposition) feeding
// the exact mapper, and comparing exact against the heuristic baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/revlib"

	qxmap "repro"
)

// buildGrover returns one Grover iteration searching for |11⟩ in a
// 2-qubit database: ancilla preparation, superposition, oracle (Toffoli
// into the ancilla), and the diffusion operator.
func buildGrover() *qxmap.Circuit {
	c := qxmap.NewCircuit(3)
	c.SetName("grover-11")
	// Ancilla |−⟩ on qubit 2.
	c.AddX(2)
	c.AddH(2)
	// Uniform superposition over the database qubits.
	c.AddH(0)
	c.AddH(1)
	// Oracle: flip the ancilla when the database qubits are |11⟩.
	c.AddMCT([]int{0, 1}, 2)
	// Diffusion operator on qubits 0,1.
	c.AddH(0)
	c.AddH(1)
	c.AddX(0)
	c.AddX(1)
	c.AddH(1)
	c.AddCNOT(0, 1)
	c.AddH(1)
	c.AddX(0)
	c.AddX(1)
	c.AddH(0)
	c.AddH(1)
	return c
}

func main() {
	grover := buildGrover()
	// The Toffoli oracle is not elementary: decompose first.
	elementary, err := revlib.Decompose(grover)
	if err != nil {
		log.Fatal(err)
	}
	st := elementary.Statistics()
	fmt.Printf("Grover iteration: %d gates after decomposition (%d 1q + %d CNOT)\n",
		elementary.Len(), st.SingleQubit, st.CNOT)

	exact, err := qxmap.Map(elementary, qxmap.QX4(), qxmap.Options{Engine: qxmap.EngineDP})
	if err != nil {
		log.Fatal(err)
	}
	heur, err := qxmap.Map(elementary, qxmap.QX4(), qxmap.Options{Method: qxmap.MethodHeuristic, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact mapping:     F = %2d (%d SWAPs, %d switches), %d total gates\n",
		exact.Cost, exact.Swaps, exact.Switches, exact.TotalGates())
	fmt.Printf("heuristic mapping: F = %2d (%d SWAPs, %d switches), %d total gates\n",
		heur.Cost, heur.Swaps, heur.Switches, heur.TotalGates())
	switch {
	case exact.Cost == 0 && heur.Cost > 0:
		fmt.Printf("the exact mapper found a free placement; the heuristic wasted %d gates\n", heur.Cost)
	case exact.Cost > 0:
		fmt.Printf("heuristic overhead vs optimum: +%.0f%%\n",
			100*float64(heur.Cost-exact.Cost)/float64(exact.Cost))
	}
}
