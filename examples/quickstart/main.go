// Quickstart: build a small circuit, map it to IBM QX4 with the minimal
// number of SWAP and H operations through the instance-scoped Mapper
// client API, and print the result.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/render"

	qxmap "repro"
)

func main() {
	// A Mapper instance owns its configuration and its portfolio cache;
	// construct one per tenant/configuration instead of using the
	// deprecated package-level qxmap.Map.
	m, err := qxmap.NewMapper()
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// A 4-qubit circuit whose CNOTs form a complete interaction graph: no
	// four physical qubits of QX4 are pairwise coupled, so SWAPs and/or
	// direction switches are unavoidable and the mapper has real work.
	c := qxmap.NewCircuit(4)
	c.AddH(0)
	c.AddCNOT(0, 1)
	c.AddCNOT(2, 3)
	c.AddT(2)
	c.AddCNOT(0, 2)
	c.AddCNOT(1, 3)
	c.AddCNOT(0, 3)
	c.AddCNOT(1, 2)
	c.SetName("quickstart")

	res, err := m.Map(context.Background(), c, qxmap.QX4())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("minimal added cost F = %d (%d SWAPs, %d direction switches)\n",
		res.Cost, res.Swaps, res.Switches)
	fmt.Printf("gates: %d -> %d, layout %s -> %s\n\n",
		c.Len(), res.TotalGates(),
		render.Mapping(res.InitialLayout), render.Mapping(res.FinalLayout))

	fmt.Print(render.Circuit(c))
	fmt.Println()
	fmt.Print(render.Circuit(res.Mapped))

	qasm, err := qxmap.WriteQASM(res.Mapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmapped QASM:")
	fmt.Print(qasm)
}
