// Figure5 reproduces the paper's running example end to end: the circuit
// of Fig. 1a is mapped to IBM QX4 (Fig. 2) with both exact engines,
// reaching the minimal cost F = 4 of Example 7, and the resulting circuit
// (Fig. 5) is rendered.
package main

import (
	"fmt"
	"log"

	"repro/internal/render"

	qxmap "repro"
)

func main() {
	c := qxmap.Figure1a()
	a := qxmap.QX4()

	fmt.Println("paper Fig. 2 — target architecture:")
	fmt.Print(render.Coupling(a))
	fmt.Println("\npaper Fig. 1a — circuit to be mapped:")
	fmt.Print(render.Circuit(c))

	for _, engine := range []qxmap.Engine{qxmap.EngineSAT, qxmap.EngineDP} {
		res, err := qxmap.Map(c, a, qxmap.Options{Engine: engine})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nengine %-3s: F = %d (paper Example 7: F = 4), runtime %v\n",
			engine, res.Cost, res.Runtime)
		if engine == qxmap.EngineDP {
			fmt.Println("\npaper Fig. 5 — resulting circuit (minimal SWAP/H cost):")
			fmt.Printf("initial mapping: %s\n", render.Mapping(res.InitialLayout))
			fmt.Print(render.Circuit(res.Mapped))
		}
	}
}
