// QFT maps quantum Fourier transform circuits — the workload family of the
// paper's qe_qft benchmarks — to IBM QX4 and, via the §4.1 subset
// optimization, to the 16-qubit IBM QX5, comparing the restriction
// strategies of §4.2 on cost and runtime.
package main

import (
	"fmt"
	"log"

	"repro/internal/revlib"

	qxmap "repro"
)

func main() {
	for _, n := range []int{3, 4, 5} {
		qft := revlib.BuildQFT(n)
		qft.SetName(fmt.Sprintf("qft%d", n))
		fmt.Printf("QFT on %d qubits: %d gates (%d CNOTs)\n",
			n, qft.Len(), qft.Statistics().CNOT)
		for _, m := range []qxmap.Method{
			qxmap.MethodExact, qxmap.MethodDisjoint, qxmap.MethodOdd,
			qxmap.MethodTriangle, qxmap.MethodHeuristic,
		} {
			res, err := qxmap.Map(qft, qxmap.QX4(), qxmap.Options{
				Method: m, Engine: qxmap.EngineDP, Seed: 1})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s F = %3d (%d SWAPs, %d switches)  %8v\n",
				m.String()+":", res.Cost, res.Swaps, res.Switches, res.Runtime)
		}
	}

	// On the 16-qubit QX5, exhaustive permutation enumeration over all
	// physical qubits is infeasible; the subset optimization (§4.1) makes
	// the exact method applicable.
	qft4 := revlib.BuildQFT(4).SetName("qft4")
	res, err := qxmap.Map(qft4, qxmap.QX5(), qxmap.Options{
		Method: qxmap.MethodExactSubsets, Engine: qxmap.EngineDP})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQFT4 on ibmqx5 via connected subsets: F = %d, runtime %v\n",
		res.Cost, res.Runtime)
}
