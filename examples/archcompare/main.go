// Archcompare maps one workload across five IBM devices — QX2, QX4,
// QX5, Melbourne and Tokyo — comparing added cost F, circuit depth, and
// the effect of coupling directionality (Tokyo's bidirectional couplings
// never need the 4-H direction fix).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/revlib"

	qxmap "repro"
)

func main() {
	// One Mapper instance drives the whole comparison: the DP engine as
	// the default, with per-device method overrides through MapWith.
	m, err := qxmap.NewMapper(qxmap.WithEngine(qxmap.EngineDP))
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()

	// Workload: 4-qubit QFT, the paper's qe_qft family.
	c := revlib.BuildQFT(4).SetName("qft4")
	fmt.Printf("workload: %s — %d gates, depth %d, 2q-depth %d\n\n",
		c.Name(), c.Len(), c.Depth(), c.TwoQubitDepth())
	fmt.Printf("%-10s %-14s %6s %6s %8s %7s %8s\n",
		"device", "method", "F", "swaps", "switches", "gates", "depth")

	devices := []*qxmap.Architecture{
		qxmap.QX2(), qxmap.QX4(), qxmap.QX5(), qxmap.Melbourne(), qxmap.Tokyo(),
	}
	for _, a := range devices {
		opts := m.Options()
		if a.NumQubits() > 5 {
			// Exhaustive permutation enumeration is infeasible beyond the
			// 5-qubit devices; use the §4.1 subset optimization.
			opts.Method = qxmap.MethodExactSubsets
		}
		res, err := m.MapWith(ctx, c, a, opts)
		if err != nil {
			log.Fatalf("%s: %v", a.Name(), err)
		}
		fmt.Printf("%-10s %-14s %6d %6d %8d %7d %8d\n",
			a.Name(), opts.Method, res.Cost, res.Swaps, res.Switches,
			res.TotalGates(), res.Mapped.Depth())
	}

	fmt.Println("\nwith post-mapping peephole optimization (-optimize):")
	for _, a := range devices[:2] {
		opts := m.Options()
		opts.Optimize = true
		res, err := m.MapWith(ctx, c, a, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s gates %d (%d optimized away), depth %d\n",
			a.Name(), res.TotalGates(), res.GatesOptimizedAway, res.Mapped.Depth())
	}
}
