// Synthesis runs the full reversible-design flow the RevLib benchmarks go
// through: truth table → MMD synthesis → MCT netlist → decomposition to
// the IBM gate set → exact mapping to IBM QX4 — and verifies at each stage
// that the classical function is preserved.
package main

import (
	"fmt"
	"log"

	"repro/internal/revlib"

	qxmap "repro"
)

func main() {
	for _, name := range []string{"3_17", "rd32", "4mod5"} {
		tt := revlib.Tables()[name]
		fmt.Printf("%s: %d-bit reversible function\n", name, tt.N)

		// Stage 1: transformation-based synthesis into MCT gates.
		mct := revlib.Synthesize(tt)
		got, err := revlib.CircuitTable(mct)
		if err != nil {
			log.Fatal(err)
		}
		if !got.Equal(tt) {
			log.Fatalf("%s: synthesis broke the function", name)
		}
		fmt.Printf("  MMD synthesis:  %d MCT gates\n", mct.Len())

		// Stage 2: decomposition into the IBM-native gate set.
		elem, err := revlib.Decompose(mct)
		if err != nil {
			log.Fatal(err)
		}
		st := elem.Statistics()
		fmt.Printf("  decomposition:  %d gates (%d 1q + %d CNOT)\n",
			elem.Len(), st.SingleQubit, st.CNOT)

		// Stage 3: minimal mapping to IBM QX4 (verification of circuit
		// equivalence under the layouts is built into Map).
		res, err := qxmap.Map(elem, qxmap.QX4(), qxmap.Options{Engine: qxmap.EngineDP})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  mapping:        F = %d (%d SWAPs, %d switches), %d total gates, minimal=%v\n\n",
			res.Cost, res.Swaps, res.Switches, res.TotalGates(), res.Minimal)
	}
}
