package qxmap

// Stable JSON wire encodings of Result, Stats and the MapBatch report.
// These types are the single source of truth for how mapping outcomes
// cross process boundaries: cmd/qxmap -json prints them, cmd/qxmapd
// serves them, and a golden-file test pins the field set so the wire
// format only changes deliberately. Durations are encoded as integer
// nanoseconds (the _ns suffix), layouts as plain physical-qubit arrays,
// and the mapped circuit as an OpenQASM 2.0 string.

// StatsJSON is the wire encoding of Stats.
type StatsJSON struct {
	SkeletonNS    int64  `json:"skeleton_ns"`
	SolveNS       int64  `json:"solve_ns"`
	MaterializeNS int64  `json:"materialize_ns"`
	VerifyNS      int64  `json:"verify_ns"`
	OptimizeNS    int64  `json:"optimize_ns"`
	Solver        string `json:"solver"`
	Engine        string `json:"engine"`
	CacheHit      bool   `json:"cache_hit"`
	// CacheTier is "memory" or "disk" on a cache hit, "" on a solve.
	CacheTier    string `json:"cache_tier"`
	SATSolves    int    `json:"sat_solves"`
	SATEncodes   int    `json:"sat_encodes"`
	SATConflicts int64  `json:"sat_conflicts"`
	BoundProbes  int    `json:"bound_probes"`
	BoundJumps   int    `json:"bound_jumps"`
	LowerBound   int    `json:"lower_bound"`
	// SubsetsPruned, CoreFamilyRefutations and OrbitHits instrument the
	// §4.1 shared-instance subset fan-out (all 0 outside it).
	SubsetsPruned         int   `json:"subsets_pruned"`
	CoreFamilyRefutations int   `json:"core_family_refutations"`
	OrbitHits             int   `json:"orbit_hits"`
	SATThreads            int   `json:"sat_threads"`
	SharedClauses         int64 `json:"shared_clauses"`
	// Degradation and BoundGap report graceful degradation
	// (Options.Ladder): the rung that produced the plan ("anytime" or
	// "heuristic") and, for anytime plans, the bracket on the optimum
	// (it lies in [cost−bound_gap, cost]). Omitted on full solves, so
	// happy-path encodings are byte-identical to earlier versions.
	Degradation string `json:"degradation,omitempty"`
	BoundGap    int    `json:"bound_gap,omitempty"`
}

// JSON returns the stable wire encoding of the stats.
func (s Stats) JSON() StatsJSON {
	return StatsJSON{
		SkeletonNS:            s.SkeletonTime.Nanoseconds(),
		SolveNS:               s.SolveTime.Nanoseconds(),
		MaterializeNS:         s.MaterializeTime.Nanoseconds(),
		VerifyNS:              s.VerifyTime.Nanoseconds(),
		OptimizeNS:            s.OptimizeTime.Nanoseconds(),
		Solver:                s.Solver,
		Engine:                s.Engine,
		CacheHit:              s.CacheHit,
		CacheTier:             s.CacheTier,
		SATSolves:             s.SATSolves,
		SATEncodes:            s.SATEncodes,
		SATConflicts:          s.SATConflicts,
		BoundProbes:           s.BoundProbes,
		BoundJumps:            s.BoundJumps,
		LowerBound:            s.LowerBound,
		SubsetsPruned:         s.SubsetsPruned,
		CoreFamilyRefutations: s.CoreFamilyRefutations,
		OrbitHits:             s.OrbitHits,
		SATThreads:            s.SATThreads,
		SharedClauses:         s.SharedClauses,
		Degradation:           s.Degradation,
		BoundGap:              s.BoundGap,
	}
}

// CostModelJSON is the wire encoding of a non-default cost model: the
// uniform units plus the number of per-edge overrides each kind carries.
// Results solved under the paper's 7/4 objective omit the block entirely,
// so the wire format of default runs is byte-identical to earlier
// versions.
type CostModelJSON struct {
	Name          string `json:"name"`
	SwapUnit      int    `json:"swap_unit"`
	HUnit         int    `json:"h_unit"`
	SwapOverrides int    `json:"swap_overrides,omitempty"`
	HOverrides    int    `json:"h_overrides,omitempty"`
}

// ResultJSON is the wire encoding of a Result.
type ResultJSON struct {
	Method     string `json:"method"`
	Engine     string `json:"engine"`
	Cost       int    `json:"cost"`
	Swaps      int    `json:"swaps"`
	Switches   int    `json:"switches"`
	PermPoints int    `json:"perm_points"`
	Minimal    bool   `json:"minimal"`
	// Degradation mirrors Stats.Degradation at the top level so clients
	// checking "was this plan degraded?" need not dig into stats; omitted
	// (with minimal reporting the real guarantee) on full solves.
	Degradation        string `json:"degradation,omitempty"`
	CacheHit           bool   `json:"cache_hit"`
	CacheTier          string `json:"cache_tier"`
	Gates              int    `json:"gates"`
	Depth              int    `json:"depth"`
	GatesOptimizedAway int    `json:"gates_optimized_away"`
	InitialLayout      []int  `json:"initial_layout"`
	FinalLayout        []int  `json:"final_layout"`
	RuntimeNS          int64  `json:"runtime_ns"`
	QASM               string `json:"qasm,omitempty"`
	// CostModel is present only when the run optimized a non-default
	// weighted objective (Options.CostModel or a model on the
	// architecture).
	CostModel *CostModelJSON `json:"cost_model,omitempty"`
	Stats     StatsJSON      `json:"stats"`
}

// JSON returns the stable wire encoding of the result. With includeQASM,
// the mapped circuit is rendered as an OpenQASM 2.0 string into the qasm
// field (the only step that can fail); without it the field is omitted.
func (r *Result) JSON(includeQASM bool) (*ResultJSON, error) {
	j := &ResultJSON{
		Method:             r.Method.String(),
		Engine:             r.Engine.String(),
		Cost:               r.Cost,
		Swaps:              r.Swaps,
		Switches:           r.Switches,
		PermPoints:         r.PermPoints,
		Minimal:            r.Minimal,
		Degradation:        r.Stats.Degradation,
		CacheHit:           r.CacheHit,
		CacheTier:          r.CacheTier,
		GatesOptimizedAway: r.GatesOptimizedAway,
		InitialLayout:      []int(r.InitialLayout),
		FinalLayout:        []int(r.FinalLayout),
		RuntimeNS:          r.Runtime.Nanoseconds(),
		Stats:              r.Stats.JSON(),
	}
	if cm := r.CostModel; cm != nil {
		se, _ := cm.SwapOverrides()
		he, _ := cm.HOverrides()
		j.CostModel = &CostModelJSON{
			Name:          cm.Name(),
			SwapUnit:      cm.SwapUnit(),
			HUnit:         cm.HUnit(),
			SwapOverrides: len(se),
			HOverrides:    len(he),
		}
	}
	if r.Mapped != nil {
		j.Gates = r.Mapped.Len()
		j.Depth = r.Mapped.Depth()
		if includeQASM {
			qasm, err := WriteQASM(r.Mapped)
			if err != nil {
				return nil, err
			}
			j.QASM = qasm
		}
	}
	return j, nil
}

// BatchJobJSON is the wire encoding of one BatchResult: exactly one of
// Result and Error is set.
type BatchJobJSON struct {
	Index  int         `json:"index"`
	Name   string      `json:"name,omitempty"`
	Result *ResultJSON `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// BatchReportJSON is the wire encoding of a whole MapBatch outcome.
type BatchReportJSON struct {
	Jobs      []BatchJobJSON `json:"jobs"`
	Succeeded int            `json:"succeeded"`
	Failed    int            `json:"failed"`
	// TotalCost sums Cost over the succeeded jobs.
	TotalCost int `json:"total_cost"`
}

// BatchReport converts MapBatch results into the stable wire encoding,
// preserving input order and aggregating success/failure counts and the
// total added cost.
func BatchReport(results []BatchResult, includeQASM bool) (*BatchReportJSON, error) {
	report := &BatchReportJSON{Jobs: make([]BatchJobJSON, len(results))}
	for i, br := range results {
		j := BatchJobJSON{Index: br.Index, Name: br.Job.Name}
		if br.Err != nil {
			j.Error = br.Err.Error()
			report.Failed++
		} else {
			rj, err := br.Result.JSON(includeQASM)
			if err != nil {
				return nil, err
			}
			j.Result = rj
			report.Succeeded++
			report.TotalCost += br.Result.Cost
		}
		report.Jobs[i] = j
	}
	return report, nil
}
