package qxmap

// Benchmark harness regenerating the paper's evaluation artifacts — one
// testing.B benchmark per Table 1 column, per figure, and per ablation
// called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The Table 1 column benches iterate the whole 25-circuit suite per
// b.N iteration and report the summed mapping cost as a custom metric, so
// regressions in either speed or quality are visible.

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/encoder"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/opt"
	"repro/internal/portfolio"
	"repro/internal/revlib"
	"repro/internal/sat"
	"repro/internal/sim"
)

// suiteSkeletons caches the extracted CNOT skeletons of the Table 1 suite.
func suiteSkeletons(b *testing.B) []*circuit.Skeleton {
	b.Helper()
	var sks []*circuit.Skeleton
	for _, bm := range revlib.Suite() {
		sk, err := circuit.ExtractSkeleton(bm.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		sks = append(sks, sk)
	}
	return sks
}

// benchExactColumn benchmarks one exact Table 1 column over the suite.
func benchExactColumn(b *testing.B, strategy exact.Strategy, subsets bool) {
	b.Helper()
	sks := suiteSkeletons(b)
	a := arch.QX4()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, sk := range sks {
			r, err := exact.Solve(context.Background(), sk, a, exact.Options{
				Engine: exact.EngineDP, Strategy: strategy, UseSubsets: subsets})
			if err != nil {
				b.Fatal(err)
			}
			total += r.Cost
		}
	}
	b.ReportMetric(float64(total), "added-gates")
}

// BenchmarkTable1Minimal regenerates the "Min. (Sec. 3)" column.
func BenchmarkTable1Minimal(b *testing.B) {
	benchExactColumn(b, exact.StrategyAll, false)
}

// BenchmarkTable1Subsets regenerates the "Perf. Opt. (Sec. 4.1)" column.
func BenchmarkTable1Subsets(b *testing.B) {
	benchExactColumn(b, exact.StrategyAll, true)
}

// BenchmarkTable1Disjoint regenerates the "Disjoint qubits" column.
func BenchmarkTable1Disjoint(b *testing.B) {
	benchExactColumn(b, exact.StrategyDisjoint, true)
}

// BenchmarkTable1OddGates regenerates the "Odd gates" column.
func BenchmarkTable1OddGates(b *testing.B) {
	benchExactColumn(b, exact.StrategyOdd, true)
}

// BenchmarkTable1Triangle regenerates the "Qubit triangle" column.
func BenchmarkTable1Triangle(b *testing.B) {
	benchExactColumn(b, exact.StrategyTriangle, true)
}

// BenchmarkTable1IBMHeuristic regenerates the "IBM [12]" column (min of 5
// stochastic runs per benchmark, as in the paper).
func BenchmarkTable1IBMHeuristic(b *testing.B) {
	sks := suiteSkeletons(b)
	a := arch.QX4()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, sk := range sks {
			h, err := heuristic.MapBest(context.Background(), sk, a, 5, heuristic.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			total += h.Cost
		}
	}
	b.ReportMetric(float64(total), "added-gates")
}

// BenchmarkTable1MinimalSAT runs the paper's actual methodology (symbolic
// encoding + CDCL solver, full linear descent) on the 3-qubit rows — the
// scale Z3 handled in seconds in the paper. The larger rows are covered by
// BenchmarkAblationSeededSAT.
func BenchmarkTable1MinimalSAT(b *testing.B) {
	a := arch.QX4()
	var sks []*circuit.Skeleton
	for _, bm := range revlib.Suite() {
		if bm.N > 3 {
			continue
		}
		sk, err := circuit.ExtractSkeleton(bm.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		sks = append(sks, sk)
	}
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, sk := range sks {
			r, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineSAT})
			if err != nil {
				b.Fatal(err)
			}
			total += r.Cost
		}
	}
	b.ReportMetric(float64(total), "added-gates")
}

// BenchmarkSummaryClaims regenerates the §5 headline numbers: the average
// percentage by which the heuristic exceeds the minimum, on total gates
// (paper ≈45 %) and on added gates F (paper ≈104 %).
func BenchmarkSummaryClaims(b *testing.B) {
	var s bench.Stats
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTable1(context.Background(), bench.Config{Engine: exact.EngineDP})
		if err != nil {
			b.Fatal(err)
		}
		s = bench.Summary(rows)
	}
	b.ReportMetric(100*s.AvgIBMAboveMinTotal, "%above-min-total")
	b.ReportMetric(100*s.AvgIBMAboveMinAdded, "%above-min-added")
}

// BenchmarkFigure1Skeleton benchmarks CNOT-skeleton extraction on the
// running example (Fig. 1a → Fig. 1b).
func BenchmarkFigure1Skeleton(b *testing.B) {
	c := circuit.Figure1a()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.ExtractSkeleton(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3Identities verifies by state-vector simulation the two
// identities of Fig. 3: SWAP = 3 CNOTs and HH·CNOT·HH = reversed CNOT.
func BenchmarkFigure3Identities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for basis := 0; basis < 4; basis++ {
			viaSwap := sim.NewBasisState(2, basis)
			viaSwap.Apply(circuit.SWAP(0, 1))
			viaCNOT := sim.NewBasisState(2, basis)
			viaCNOT.Apply(circuit.CNOT(0, 1))
			viaCNOT.Apply(circuit.CNOT(1, 0))
			viaCNOT.Apply(circuit.CNOT(0, 1))
			if ok, _ := viaSwap.EqualUpToPhase(viaCNOT, 1e-9); !ok {
				b.Fatal("SWAP identity broken")
			}
			lhs := sim.NewBasisState(2, basis)
			for _, g := range []circuit.Gate{
				circuit.H(0), circuit.H(1), circuit.CNOT(0, 1), circuit.H(0), circuit.H(1)} {
				lhs.Apply(g)
			}
			rhs := sim.NewBasisState(2, basis)
			rhs.Apply(circuit.CNOT(1, 0))
			if ok, _ := lhs.EqualUpToPhase(rhs, 1e-9); !ok {
				b.Fatal("4-H identity broken")
			}
		}
	}
}

// BenchmarkFigure4Encoding benchmarks construction of the symbolic
// formulation for the running example on QX4 (Fig. 4) and reports its
// size: 100 mapping variables x^k_ij, 120 permutation selectors per point.
func BenchmarkFigure4Encoding(b *testing.B) {
	sk := circuit.Figure1b()
	a := arch.QX4()
	var vars, clauses int
	for i := 0; i < b.N; i++ {
		s := sat.NewSolver()
		enc, err := encoder.Encode(context.Background(), encoder.Problem{Skeleton: sk, Arch: a}, cnf.NewBuilder(s))
		if err != nil {
			b.Fatal(err)
		}
		if enc.NumFrames() != 5 {
			b.Fatal("unexpected frame count")
		}
		vars, clauses = s.NumVars(), s.NumClauses()
	}
	b.ReportMetric(float64(vars), "vars")
	b.ReportMetric(float64(clauses), "clauses")
}

// BenchmarkFigure5Example benchmarks the full headline pipeline: mapping
// the running example to QX4 with the SAT engine, asserting the paper's
// minimal cost F = 4 (Example 7 / Fig. 5).
func BenchmarkFigure5Example(b *testing.B) {
	c := circuit.Figure1a()
	a := QX4()
	for i := 0; i < b.N; i++ {
		res, err := Map(c, a, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Cost != 4 {
			b.Fatalf("cost = %d, want 4", res.Cost)
		}
	}
}

// BenchmarkAblationSATvsDP cross-checks and compares the two exact engines
// on the smallest suite row (design decision 1 in DESIGN.md).
func BenchmarkAblationSATvsDP(b *testing.B) {
	bm, err := revlib.SuiteByName("ex-1_166")
	if err != nil {
		b.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(bm.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.QX4()
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineDP}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sat", func(b *testing.B) {
		want, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineDP})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			r, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineSAT})
			if err != nil {
				b.Fatal(err)
			}
			if r.Cost != want.Cost {
				b.Fatalf("engines disagree: sat %d vs dp %d", r.Cost, want.Cost)
			}
		}
	})
}

// BenchmarkAblationBoundSearch compares linear vs binary cost descent in
// the SAT engine (design decision 2 in DESIGN.md).
func BenchmarkAblationBoundSearch(b *testing.B) {
	sk := circuit.Figure1b()
	a := arch.QX4()
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineSAT}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exact.Solve(context.Background(), sk, a, exact.Options{
				Engine: exact.EngineSAT, SAT: exact.SATOptions{BinaryDescent: true}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSeededSAT measures the SAT engine when its descent is
// seeded with the DP oracle's cost (two solver calls: one proving
// achievability, one proving minimality) on a mid-size 5-qubit row.
func BenchmarkAblationSeededSAT(b *testing.B) {
	bm, err := revlib.SuiteByName("4mod5-v0_20")
	if err != nil {
		b.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(bm.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.QX4()
	dp, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineDP})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := exact.Solve(context.Background(), sk, a, exact.Options{
			Engine: exact.EngineSAT, SAT: exact.SATOptions{StartBound: dp.Cost}})
		if err != nil {
			b.Fatal(err)
		}
		if r.Cost != dp.Cost {
			b.Fatalf("seeded SAT %d vs DP %d", r.Cost, dp.Cost)
		}
	}
}

// BenchmarkHeuristicSingleRun measures one stochastic-mapper run on the
// largest suite row, the baseline's unit of work.
func BenchmarkHeuristicSingleRun(b *testing.B) {
	bm, err := revlib.SuiteByName("qe_qft_5")
	if err != nil {
		b.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(bm.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.QX4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := heuristic.Map(context.Background(), sk, a, heuristic.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1AStar runs the deterministic A* extension baseline over
// the suite (extension column; not in the paper).
func BenchmarkTable1AStar(b *testing.B) {
	sks := suiteSkeletons(b)
	a := arch.QX4()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, sk := range sks {
			r, err := heuristic.MapAStar(context.Background(), sk, a, heuristic.AStarOptions{Lookahead: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			total += r.Cost
		}
	}
	b.ReportMetric(float64(total), "added-gates")
}

// BenchmarkTable1Sabre runs the SABRE-style reversal-pass extension
// baseline over the suite.
func BenchmarkTable1Sabre(b *testing.B) {
	sks := suiteSkeletons(b)
	a := arch.QX4()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, sk := range sks {
			r, err := heuristic.MapSabre(context.Background(), sk, a, heuristic.SabreOptions{})
			if err != nil {
				b.Fatal(err)
			}
			total += r.Cost
		}
	}
	b.ReportMetric(float64(total), "added-gates")
}

// BenchmarkAblationParallelSubsets compares sequential and concurrent
// solving of the §4.1 subset instances.
func BenchmarkAblationParallelSubsets(b *testing.B) {
	bm, err := revlib.SuiteByName("3_17_13")
	if err != nil {
		b.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(bm.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.QX4()
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := exact.Solve(context.Background(), sk, a, exact.Options{
					Engine: exact.EngineDP, UseSubsets: true, Parallel: par}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPeephole measures post-mapping peephole optimization on
// a heuristic-mapped circuit (which carries more removable junk than the
// tight exact mappings).
func BenchmarkAblationPeephole(b *testing.B) {
	bm, err := revlib.SuiteByName("qe_qft_5")
	if err != nil {
		b.Fatal(err)
	}
	res, err := Map(bm.Circuit, QX4(), Options{Method: MethodHeuristic, Seed: 3, SkipVerify: true})
	if err != nil {
		b.Fatal(err)
	}
	removed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := opt.Simplify(res.Mapped)
		removed = st.GatesRemoved()
	}
	b.ReportMetric(float64(removed), "gates-removed")
}

// BenchmarkTable1Portfolio runs the minimal column through the portfolio
// layer: heuristic-seeded SAT racing the DP oracle. Cold measures a fresh
// cache every iteration (the honest solving cost); Warm reuses one cache
// across iterations, so after the first pass every instance is a hit —
// the service-layer steady state.
func BenchmarkTable1Portfolio(b *testing.B) {
	sks := suiteSkeletons(b)
	a := arch.QX4()
	run := func(b *testing.B, fresh bool) {
		cache := portfolio.NewCache(0)
		total := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fresh {
				cache = portfolio.NewCache(0)
			}
			total = 0
			for _, sk := range sks {
				r, err := portfolio.Solve(context.Background(), sk, a, portfolio.Options{Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				total += r.Cost
			}
		}
		b.ReportMetric(float64(total), "added-gates")
	}
	b.Run("Cold", func(b *testing.B) { run(b, true) })
	b.Run("Warm", func(b *testing.B) { run(b, false) })
}
