package qxmap

import (
	"context"
	"errors"
	"testing"
	"time"
)

// suite20 builds a 20-circuit batch workload over 3–5 qubits.
func suite20(method Method) []Job {
	jobs := make([]Job, 20)
	for i := range jobs {
		n := 3 + i%3
		jobs[i] = Job{
			Name:    "rand",
			Circuit: randomElementary(int64(i), n, 6+i%8),
			Arch:    QX4(),
			Opts:    Options{Method: method, Engine: EngineDP, Seed: int64(i)},
		}
	}
	return jobs
}

// TestMapBatchParityWithSequential is the acceptance check: a 20-circuit
// suite mapped concurrently must produce exactly the costs of sequential
// Map calls on the same jobs.
func TestMapBatchParityWithSequential(t *testing.T) {
	jobs := suite20(MethodExact)
	batch := MapBatch(context.Background(), jobs, BatchOptions{Workers: 8})
	if len(batch) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(batch), len(jobs))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("job %d: %v", i, br.Err)
		}
		if br.Index != i {
			t.Errorf("result %d carries index %d", i, br.Index)
		}
		seq, err := Map(jobs[i].Circuit, jobs[i].Arch, jobs[i].Opts)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		if br.Result.Cost != seq.Cost {
			t.Errorf("job %d: batch cost %d != sequential cost %d", i, br.Result.Cost, seq.Cost)
		}
		if !br.Result.Minimal {
			t.Errorf("job %d: exact batch result not minimal", i)
		}
	}
}

// TestMapBatchMixedMethods runs every method family in one batch (under
// the race detector in CI) and checks no heuristic beats the exact
// minimum on the shared instance.
func TestMapBatchMixedMethods(t *testing.T) {
	c := Figure1a()
	methods := []Method{MethodExact, MethodExactSubsets, MethodDisjoint,
		MethodOdd, MethodTriangle, MethodHeuristic, MethodAStar, MethodSabre}
	jobs := make([]Job, len(methods))
	for i, m := range methods {
		jobs[i] = Job{
			Name:    m.String(),
			Circuit: c,
			Arch:    QX4(),
			Opts:    Options{Method: m, Engine: EngineDP, Seed: 7, Lookahead: 0.5},
		}
	}
	// One portfolio-mode job rides along to exercise the shared cache path
	// concurrently with the direct jobs.
	jobs = append(jobs, Job{Name: "portfolio", Circuit: c, Arch: QX4(),
		Opts: Options{Portfolio: true}})

	for _, br := range MapBatch(context.Background(), jobs, BatchOptions{}) {
		if br.Err != nil {
			t.Fatalf("%s: %v", br.Job.Name, br.Err)
		}
		if br.Result.Cost < 4 {
			t.Errorf("%s: cost %d beats the minimum 4", br.Job.Name, br.Result.Cost)
		}
		if br.Result.Stats.SolveTime <= 0 {
			t.Errorf("%s: missing solve-stage timing", br.Job.Name)
		}
	}
}

// TestMapBatchFailSoft: a malformed job fails alone; the rest of the batch
// completes.
func TestMapBatchFailSoft(t *testing.T) {
	good := Job{Circuit: Figure1a(), Arch: QX4(), Opts: Options{Engine: EngineDP}}
	bad := Job{Circuit: NewCircuit(6).AddCNOT(0, 5), Arch: QX4()} // 6 qubits on QX4
	batch := MapBatch(context.Background(), []Job{good, bad, good}, BatchOptions{Workers: 2})
	if batch[0].Err != nil || batch[2].Err != nil {
		t.Errorf("good jobs failed: %v / %v", batch[0].Err, batch[2].Err)
	}
	if batch[1].Err == nil {
		t.Error("oversized job should fail")
	}
	if batch[0].Result == nil || batch[0].Result.Cost != 4 {
		t.Error("good job lost its result")
	}
}

// TestMapBatchJobTimeout: per-job deadlines expire exact and heuristic
// jobs alike — MethodHeuristic and MethodSabre observe ctx between
// restarts/passes, so a hopeless deadline must fail them too.
func TestMapBatchJobTimeout(t *testing.T) {
	c := randomElementary(3, 5, 24)
	var jobs []Job
	for _, m := range []Method{MethodExact, MethodHeuristic, MethodSabre} {
		jobs = append(jobs, Job{Name: m.String(), Circuit: c, Arch: QX4(),
			Opts: Options{Method: m, Engine: EngineDP, Lookahead: 0.5}})
	}
	batch := MapBatch(context.Background(), jobs, BatchOptions{JobTimeout: time.Nanosecond})
	for _, br := range batch {
		if !errors.Is(br.Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", br.Job.Name, br.Err)
		}
	}
	// The same jobs succeed without the deadline.
	for _, br := range MapBatch(context.Background(), jobs, BatchOptions{}) {
		if br.Err != nil {
			t.Errorf("%s without timeout: %v", br.Job.Name, br.Err)
		}
	}
}

// TestMapBatchCancellation: cancelling the batch context fails the
// remaining jobs fail-soft instead of hanging or panicking.
func TestMapBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := MapBatch(ctx, suite20(MethodExact), BatchOptions{Workers: 4})
	for i, br := range batch {
		if !errors.Is(br.Err, context.Canceled) {
			t.Errorf("job %d: err = %v, want context.Canceled", i, br.Err)
		}
	}
}

// TestMapBatchSharedPortfolioCache: identical Portfolio jobs within one
// batch share the process-wide cache — with a single worker the second
// job must be served from memory.
func TestMapBatchSharedPortfolioCache(t *testing.T) {
	c := randomElementary(91, 4, 9) // distinct instance from other tests
	job := Job{Circuit: c, Arch: QX4(), Opts: Options{Portfolio: true}}
	batch := MapBatch(context.Background(), []Job{job, job}, BatchOptions{Workers: 1})
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("job %d: %v", i, br.Err)
		}
	}
	if !batch[1].Result.CacheHit {
		t.Error("second identical portfolio job missed the shared cache")
	}
	if batch[0].Result.Cost != batch[1].Result.Cost {
		t.Errorf("cached cost %d != solved cost %d", batch[1].Result.Cost, batch[0].Result.Cost)
	}
}

// TestMapBatchEmptyAndZeroCNOTCircuits pushes degenerate inputs through
// the full pipeline: gateless circuits and single-qubit-only circuits map
// with zero cost under every method.
func TestMapBatchEmptyAndZeroCNOTCircuits(t *testing.T) {
	var jobs []Job
	for _, m := range []Method{MethodExact, MethodHeuristic, MethodSabre} {
		jobs = append(jobs,
			Job{Name: "empty/" + m.String(), Circuit: NewCircuit(3), Arch: QX4(), Opts: Options{Method: m}},
			Job{Name: "1q/" + m.String(), Circuit: NewCircuit(3).AddH(0).AddT(1).AddX(2), Arch: QX4(), Opts: Options{Method: m}},
		)
	}
	for _, br := range MapBatch(context.Background(), jobs, BatchOptions{Workers: 3}) {
		if br.Err != nil {
			t.Fatalf("%s: %v", br.Job.Name, br.Err)
		}
		if br.Result.Cost != 0 || !br.Result.Minimal {
			t.Errorf("%s: cost=%d minimal=%v, want 0/true", br.Job.Name, br.Result.Cost, br.Result.Minimal)
		}
		if br.Result.Stats.Engine != "none" || br.Result.Stats.Solver != "none" {
			t.Errorf("%s: provenance = %q/%q, want none/none (no CNOTs to solve)",
				br.Job.Name, br.Result.Stats.Solver, br.Result.Stats.Engine)
		}
	}
}

// TestResultStatsReportsStages: the staged pipeline reports per-stage
// wall-clock durations and solver provenance.
func TestResultStatsReportsStages(t *testing.T) {
	res, err := Map(Figure1a(), QX4(), Options{Engine: EngineSAT, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.SolveTime <= 0 || s.MaterializeTime <= 0 || s.VerifyTime <= 0 || s.OptimizeTime <= 0 {
		t.Errorf("missing stage timings: %+v", s)
	}
	if s.Solver != "exact" || s.Engine != "sat" {
		t.Errorf("provenance = %q/%q, want exact/sat", s.Solver, s.Engine)
	}
	if s.SATSolves == 0 || s.SATConflicts == 0 {
		t.Errorf("SAT counters missing: solves=%d conflicts=%d", s.SATSolves, s.SATConflicts)
	}
	total := s.SkeletonTime + s.SolveTime + s.MaterializeTime + s.VerifyTime + s.OptimizeTime
	if total > res.Runtime {
		t.Errorf("stage sum %v exceeds total runtime %v", total, res.Runtime)
	}
}
