// Package qxmap maps quantum circuits to IBM QX architectures using the
// minimal number of SWAP and H operations — a from-scratch Go
// implementation of Wille, Burgholzer and Zulehner (DAC 2019).
//
// The mapping problem: logical qubits of a circuit must be assigned to
// physical qubits of a device whose directed coupling map restricts which
// CNOTs are executable. The assignment may change mid-circuit by inserting
// SWAP operations (7 elementary gates each) and CNOT directions may be
// reversed with 4 H gates. This package finds assignments minimizing the
// total number of added operations
//
//	F = 7·(#SWAPs) + 4·(#direction switches)
//
// by encoding the problem symbolically and solving it with a built-in CDCL
// SAT solver (the paper's methodology), or with an independent exact
// dynamic-programming engine. The performance improvements of the paper —
// connected physical-qubit subsets (§4.1) and the disjoint-qubits /
// odd-gates / qubit-triangle permutation restrictions (§4.2) — are exposed
// as Methods, alongside a Qiskit-style stochastic heuristic baseline.
//
// Quick start:
//
//	c := qxmap.NewCircuit(4)
//	c.AddH(1)
//	c.AddCNOT(0, 1)
//	res, err := qxmap.Map(c, qxmap.QX4(), qxmap.Options{})
//	// res.Mapped is an equivalent circuit executable on IBM QX4;
//	// res.Cost is the (minimal) number of added elementary operations.
//
// # Portfolio solving
//
// Options{Portfolio: true} routes the exact methods through the portfolio
// layer (internal/portfolio): the stochastic heuristic first derives a
// cheap upper bound that seeds the SAT engine's cost descent, then the SAT
// and DP engines race concurrently — the first valid minimal result wins
// and the loser is cancelled. Results are memoized in a process-wide LRU
// cache keyed by a canonical hash of (skeleton, architecture, strategy),
// so repeated Map calls on identical instances return immediately
// (Result.CacheHit reports this). The winning backend is echoed in
// Result.Engine.
//
// # Context and cancellation
//
// MapContext threads a context.Context through the whole solve stack: the
// symbolic encoder, the CDCL solver (checked at every restart boundary),
// the DP engine (checked at every frame transition) and the §4.1 parallel
// subset fan-out. Cancelling the context — or exceeding a deadline set
// with context.WithTimeout — aborts an exact solve within one restart
// interval and returns an error wrapping ctx.Err(). Map is shorthand for
// MapContext(context.Background(), …). The heuristic methods (heuristic,
// astar, sabre) run to completion; cancellation is observed between
// pipeline phases only.
package qxmap

import (
	"context"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/opt"
	"repro/internal/perm"
	"repro/internal/portfolio"
	"repro/internal/sim"
	"repro/internal/verify"
)

// Circuit is the quantum-circuit IR: a gate sequence over logical qubits.
type Circuit = circuit.Circuit

// Gate is one quantum operation.
type Gate = circuit.Gate

// Architecture is a quantum device: physical qubits plus a directed
// coupling map (paper Definition 2).
type Architecture = arch.Arch

// Mapping assigns logical qubits to physical qubits: m[j] is the physical
// qubit holding logical qubit j.
type Mapping = perm.Mapping

// NewCircuit returns an empty circuit over n logical qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// Figure1a returns the paper's running example circuit (Fig. 1a).
func Figure1a() *Circuit { return circuit.Figure1a() }

// Method selects the mapping algorithm.
type Method int

const (
	// MethodExact is the paper's §3 formulation: permutations allowed
	// before every gate, guaranteed minimal.
	MethodExact Method = iota
	// MethodExactSubsets adds the §4.1 physical-qubit subset optimization
	// (still minimal on the paper's benchmark set).
	MethodExactSubsets
	// MethodDisjoint restricts permutation points to disjoint-qubit
	// cluster boundaries (§4.2); close to minimal.
	MethodDisjoint
	// MethodOdd allows permutations before odd-indexed gates only (§4.2).
	MethodOdd
	// MethodTriangle allows permutations only between ≤3-qubit clusters
	// (§4.2).
	MethodTriangle
	// MethodHeuristic is the Qiskit-style stochastic baseline ("IBM [12]"
	// in Table 1).
	MethodHeuristic
	// MethodAStar is a deterministic per-layer A*-search baseline in the
	// family of the paper's reference [22] (Zulehner, Paler, Wille): each
	// stuck layer is repaired with a provably SWAP-minimal sequence,
	// optionally biased by lookahead into the next layer.
	MethodAStar
	// MethodSabre runs SABRE-style forward/backward passes (the paper's
	// reference [13], Li, Ding, Xie) around the A* mapper to refine the
	// initial layout.
	MethodSabre
)

var methodNames = map[Method]string{
	MethodExact:        "exact",
	MethodExactSubsets: "exact-subsets",
	MethodDisjoint:     "disjoint",
	MethodOdd:          "odd",
	MethodTriangle:     "triangle",
	MethodHeuristic:    "heuristic",
	MethodAStar:        "astar",
	MethodSabre:        "sabre",
}

// String returns the method's short name.
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// ParseMethod converts a short name into a Method.
func ParseMethod(name string) (Method, error) {
	for m, s := range methodNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("qxmap: unknown method %q", name)
}

// Engine selects the exact solving backend.
type Engine int

const (
	// EngineSAT uses the symbolic formulation + CDCL solver (the paper's
	// methodology; default).
	EngineSAT Engine = iota
	// EngineDP uses the dynamic-programming exact oracle (faster on the
	// small IBM QX devices; same results).
	EngineDP
)

// Options configures Map.
type Options struct {
	// Method selects the algorithm (default MethodExact).
	Method Method
	// Engine selects the exact backend (default EngineSAT); ignored by
	// MethodHeuristic.
	Engine Engine
	// HeuristicRuns is the number of seeds for MethodHeuristic, keeping
	// the best (default 5, as in the paper's evaluation).
	HeuristicRuns int
	// Seed seeds the heuristic's random source.
	Seed int64
	// Lookahead weighs the next layer into MethodAStar's search heuristic
	// (customary value 0.5; 0 disables).
	Lookahead float64
	// SkipVerify disables the built-in structural + GF(2) verification of
	// the mapped circuit (on by default; full unitary verification is
	// additionally run for small instances).
	SkipVerify bool
	// SATStartBound, when positive, seeds the SAT engine's descent with a
	// known upper bound on F.
	SATStartBound int
	// SATBinaryDescent switches the SAT engine to binary bound search.
	SATBinaryDescent bool
	// SATMaxConflicts bounds each SAT call; 0 = unlimited. Exhausting the
	// budget returns the best (possibly non-minimal) mapping found.
	SATMaxConflicts int64
	// InitialLayout, when non-nil, pins the logical→physical layout at
	// the start of the circuit (exact methods route away from it at SWAP
	// cost if beneficial; the heuristic starts its search from it).
	// Incompatible with MethodExactSubsets and the §4.2 methods, which
	// renumber physical qubits internally.
	InitialLayout []int
	// Optimize runs the post-mapping peephole optimizer on the mapped
	// circuit (cancellation of adjacent inverse pairs, rotation merging).
	// The paper's cost F is reported for the unoptimized circuit — its
	// cost model deliberately excludes this step (§3, footnote 2) — but
	// the returned Mapped circuit is the optimized one, still verified.
	Optimize bool
	// Portfolio routes exact methods through the portfolio layer: the
	// stochastic heuristic seeds the SAT descent with an upper bound, the
	// SAT and DP engines race with first-valid-minimal-wins semantics, and
	// results are memoized in a process-wide LRU cache. The Engine option
	// is then ignored (the winning engine is reported in Result.Engine);
	// heuristic methods are unaffected.
	Portfolio bool
}

// Result is the outcome of a Map call.
type Result struct {
	// Mapped is the executable circuit over the architecture's physical
	// qubits: it satisfies all coupling constraints and is equivalent to
	// the input under InitialLayout/FinalLayout.
	Mapped *Circuit
	// Cost is F: the number of elementary operations added (7 per SWAP,
	// 4 per direction switch). For exact methods this is minimal (or
	// close-to-minimal under §4.2 restrictions).
	Cost int
	// Swaps and Switches break the cost down.
	Swaps    int
	Switches int
	// InitialLayout and FinalLayout give the logical→physical assignment
	// before the first and after the last gate.
	InitialLayout Mapping
	FinalLayout   Mapping
	// PermPoints is |G'|, the number of in-circuit permutation points the
	// method considered (exact methods only; paper's |G'| column counts
	// one more for the free initial mapping).
	PermPoints int
	// Minimal reports whether Cost is guaranteed minimal.
	Minimal bool
	// GatesOptimizedAway counts gates removed by the peephole optimizer
	// (only when Options.Optimize was set).
	GatesOptimizedAway int
	// CacheHit reports that the solution was served from the portfolio
	// cache (only when Options.Portfolio was set).
	CacheHit bool
	// Method and Engine echo the configuration; Runtime is wall-clock
	// solving plus materialization time.
	Method  Method
	Engine  Engine
	Runtime time.Duration
}

// TotalGates returns the gate count of the mapped circuit.
func (r *Result) TotalGates() int { return r.Mapped.Len() }

// portfolioCache memoizes Portfolio-mode results across Map calls for the
// lifetime of the process.
var portfolioCache = portfolio.NewCache(0)

// Map maps the circuit onto the architecture. The input must be
// elementary (single-qubit gates and CNOTs only — decompose SWAP/MCT gates
// first, e.g. with the revlib substrate or cmd/qxsynth). It is shorthand
// for MapContext with context.Background().
func Map(c *Circuit, a *Architecture, opts Options) (*Result, error) {
	return MapContext(context.Background(), c, a, opts)
}

// MapContext is Map with deadline/cancellation support: the context is
// threaded through the encoder, both exact engines and the §4.1 subset
// fan-out, and a cancelled exact solve aborts within one solver restart
// interval, returning an error that wraps ctx.Err().
func MapContext(ctx context.Context, c *Circuit, a *Architecture, opts Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qxmap: canceled: %w", err)
	}
	sk, err := circuit.ExtractSkeleton(c)
	if err != nil {
		return nil, err
	}
	if c.NumQubits() > a.NumQubits() {
		return nil, fmt.Errorf("qxmap: circuit has %d qubits, %s offers %d", c.NumQubits(), a, a.NumQubits())
	}
	if opts.HeuristicRuns <= 0 {
		opts.HeuristicRuns = 5
	}

	res := &Result{Method: opts.Method, Engine: opts.Engine}

	var ops []circuit.MappedOp
	var initial perm.Mapping
	switch {
	case sk.Len() == 0:
		// No CNOTs: the identity layout works and nothing is added.
		initial = perm.IdentityMapping(c.NumQubits())
		res.Minimal = true
	case opts.Method == MethodHeuristic, opts.Method == MethodAStar, opts.Method == MethodSabre:
		var h *heuristic.Result
		var err error
		switch opts.Method {
		case MethodAStar:
			h, err = heuristic.MapAStar(sk, a,
				heuristic.AStarOptions{Lookahead: opts.Lookahead, Initial: opts.InitialLayout})
		case MethodSabre:
			if opts.InitialLayout != nil {
				return nil, fmt.Errorf("qxmap: InitialLayout is not supported by MethodSabre (it chooses its own)")
			}
			h, err = heuristic.MapSabre(sk, a, heuristic.SabreOptions{Lookahead: opts.Lookahead})
		default:
			h, err = heuristic.MapBest(sk, a, opts.HeuristicRuns,
				heuristic.Options{Seed: opts.Seed, Initial: opts.InitialLayout})
		}
		if err != nil {
			return nil, err
		}
		ops = h.Ops
		initial = h.InitialMapping
		res.Cost = h.Cost
		res.Swaps = h.Swaps
		res.Switches = h.Switches
	default:
		eopts, err := exactOptions(opts)
		if err != nil {
			return nil, err
		}
		var er *exact.Result
		if opts.Portfolio {
			pr, perr := portfolio.Solve(ctx, sk, a, portfolio.Options{
				Exact: eopts,
				Seed:  opts.Seed,
				Cache: portfolioCache,
			})
			if perr != nil {
				return nil, perr
			}
			er = pr.Result
			res.CacheHit = pr.CacheHit
			if er.Engine == "dp" {
				res.Engine = EngineDP
			} else {
				res.Engine = EngineSAT
			}
		} else if er, err = exact.Solve(ctx, sk, a, eopts); err != nil {
			return nil, err
		}
		ops, err = er.Ops(sk)
		if err != nil {
			return nil, err
		}
		initial = er.InitialMapping()
		res.Cost = er.Cost
		res.Swaps = er.Solution.SwapCount()
		res.Switches = er.Solution.SwitchCount()
		res.PermPoints = er.PermPoints
		res.Minimal = opts.Method == MethodExact && opts.SATMaxConflicts == 0
	}

	mapped, final, err := materialize(c, sk, a, ops, initial)
	if err != nil {
		return nil, err
	}
	res.Mapped = mapped
	res.InitialLayout = initial
	res.FinalLayout = final

	if !opts.SkipVerify {
		if err := verifyResult(c, sk, a, ops, res); err != nil {
			return nil, err
		}
	}
	if opts.Optimize {
		simplified, st := opt.Simplify(res.Mapped)
		res.GatesOptimizedAway = st.GatesRemoved()
		res.Mapped = simplified
		if !opts.SkipVerify {
			if err := verify.CouplingCompliant(res.Mapped, a); err != nil {
				return nil, err
			}
			if a.NumQubits() <= sim.MaxQubits && c.NumQubits() <= 6 {
				if err := verify.Equivalent(c, res.Mapped, a.NumQubits(), res.InitialLayout, res.FinalLayout); err != nil {
					return nil, err
				}
			}
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}

func exactOptions(opts Options) (exact.Options, error) {
	eo := exact.Options{
		SAT: exact.SATOptions{
			StartBound:    opts.SATStartBound,
			BinaryDescent: opts.SATBinaryDescent,
			MaxConflicts:  opts.SATMaxConflicts,
		},
	}
	if opts.Engine == EngineDP {
		eo.Engine = exact.EngineDP
	}
	eo.InitialMapping = opts.InitialLayout
	switch opts.Method {
	case MethodExact:
		eo.Strategy = exact.StrategyAll
	case MethodExactSubsets:
		eo.Strategy = exact.StrategyAll
		eo.UseSubsets = true
	case MethodDisjoint:
		eo.Strategy = exact.StrategyDisjoint
		eo.UseSubsets = true
	case MethodOdd:
		eo.Strategy = exact.StrategyOdd
		eo.UseSubsets = true
	case MethodTriangle:
		eo.Strategy = exact.StrategyTriangle
		eo.UseSubsets = true
	default:
		return eo, fmt.Errorf("qxmap: method %v is not an exact method", opts.Method)
	}
	return eo, nil
}

// verifyResult layers the structural, GF(2) and (for small instances) full
// unitary checks over a freshly mapped circuit.
func verifyResult(c *Circuit, sk *circuit.Skeleton, a *Architecture, ops []circuit.MappedOp, res *Result) error {
	if err := verify.CouplingCompliant(res.Mapped, a); err != nil {
		return err
	}
	if sk.Len() > 0 {
		final, err := verify.OpStream(sk, a, ops, res.InitialLayout)
		if err != nil {
			return err
		}
		if !final.Equal(res.FinalLayout) {
			return fmt.Errorf("qxmap: layout mismatch: %v vs %v", final, res.FinalLayout)
		}
		if err := verify.SkeletonOps(sk, a.NumQubits(), ops, res.InitialLayout, res.FinalLayout); err != nil {
			return err
		}
	}
	if a.NumQubits() <= sim.MaxQubits && c.NumQubits() <= 6 {
		if err := verify.Equivalent(c, res.Mapped, a.NumQubits(), res.InitialLayout, res.FinalLayout); err != nil {
			return err
		}
	}
	return nil
}

// String returns "sat" or "dp".
func (e Engine) String() string {
	if e == EngineDP {
		return "dp"
	}
	return "sat"
}
