// Package qxmap maps quantum circuits to IBM QX architectures using the
// minimal number of SWAP and H operations — a from-scratch Go
// implementation of Wille, Burgholzer and Zulehner (DAC 2019).
//
// The mapping problem: logical qubits of a circuit must be assigned to
// physical qubits of a device whose directed coupling map restricts which
// CNOTs are executable. The assignment may change mid-circuit by inserting
// SWAP operations (7 elementary gates each) and CNOT directions may be
// reversed with 4 H gates. This package finds assignments minimizing the
// total number of added operations
//
//	F = 7·(#SWAPs) + 4·(#direction switches)
//
// by encoding the problem symbolically and solving it with a built-in CDCL
// SAT solver (the paper's methodology), or with an independent exact
// dynamic-programming engine. The performance improvements of the paper —
// connected physical-qubit subsets (§4.1) and the disjoint-qubits /
// odd-gates / qubit-triangle permutation restrictions (§4.2) — are exposed
// as Methods, alongside a Qiskit-style stochastic heuristic baseline.
//
// Quick start:
//
//	m, _ := qxmap.NewMapper()
//	c := qxmap.NewCircuit(4)
//	c.AddH(1)
//	c.AddCNOT(0, 1)
//	res, err := m.Map(context.Background(), c, qxmap.QX4())
//	// res.Mapped is an equivalent circuit executable on IBM QX4;
//	// res.Cost is the (minimal) number of added elementary operations.
//
// # Client API
//
// The Mapper type is the unit of configuration and isolation: NewMapper
// builds an instance from functional options (method, engine, portfolio
// cache size, worker bound, default timeout, verify policy), and each
// instance owns its portfolio cache and its bounded async scheduler.
// Synchronous calls go through Mapper.Map / Mapper.MapWith / Mapper.MapBatch;
// asynchronous jobs through Mapper.Submit, which returns a JobHandle with
// Wait, Done, Cancel and Stats. The package-level Map, MapContext and
// MapBatch functions remain as deprecated thin wrappers over a
// lazily-initialized default instance (Default), preserving the historical
// process-wide shared-cache behavior.
//
// # Pipeline
//
// A Map call is an explicit staged pipeline: skeleton extraction → solve →
// materialize → verify → optimize. The solve stage resolves the selected
// Method by name through the internal/solver registry, so every method —
// and any backend registered in the future — flows through the same code
// path; there is no per-method dispatch in this package. Result.Stats
// reports per-stage wall-clock durations plus solver-level counters (cache
// hit, CDCL solves/conflicts, engine provenance).
//
// Batches of independent mapping jobs run concurrently through MapBatch: a
// bounded worker pool with per-job deadlines and fail-soft error
// collection (see batch.go).
//
// # Portfolio solving
//
// Options{Portfolio: true} routes the exact methods through the portfolio
// layer (internal/portfolio): the stochastic heuristic first derives a
// cheap upper bound that seeds the SAT engine's cost descent, then the SAT
// and DP engines race concurrently — the first valid minimal result wins
// and the loser is cancelled. Results are memoized in the Mapper
// instance's LRU cache keyed by a canonical hash of (skeleton,
// architecture, strategy), so repeated Map calls on identical instances
// return immediately (Result.CacheHit reports this). The winning backend
// is echoed in Result.Engine. Two Mapper instances never share cache
// entries; the package-level wrappers all share the default instance's
// cache.
//
// # Context and cancellation
//
// MapContext threads a context.Context through the whole solve stack: the
// symbolic encoder, the CDCL solver (checked at every restart boundary),
// the DP engine (checked at every frame transition), the §4.1 parallel
// subset fan-out, and the heuristic mappers (checked between layers,
// restarts and SABRE passes). Cancelling the context — or exceeding a
// deadline set with context.WithTimeout — aborts a solve promptly and
// returns an error wrapping ctx.Err(). Map is shorthand for
// MapContext(context.Background(), …).
package qxmap

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/faultinject"
	"repro/internal/opt"
	"repro/internal/perm"
	"repro/internal/sim"
	"repro/internal/solver"
	"repro/internal/verify"
)

// Circuit is the quantum-circuit IR: a gate sequence over logical qubits.
type Circuit = circuit.Circuit

// Gate is one quantum operation.
type Gate = circuit.Gate

// Architecture is a quantum device: physical qubits plus a directed
// coupling map (paper Definition 2).
type Architecture = arch.Arch

// Mapping assigns logical qubits to physical qubits: m[j] is the physical
// qubit holding logical qubit j.
type Mapping = perm.Mapping

// NewCircuit returns an empty circuit over n logical qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// Figure1a returns the paper's running example circuit (Fig. 1a).
func Figure1a() *Circuit { return circuit.Figure1a() }

// Method selects the mapping algorithm.
type Method int

const (
	// MethodExact is the paper's §3 formulation: permutations allowed
	// before every gate, guaranteed minimal.
	MethodExact Method = iota
	// MethodExactSubsets adds the §4.1 physical-qubit subset optimization
	// (still minimal on the paper's benchmark set).
	MethodExactSubsets
	// MethodDisjoint restricts permutation points to disjoint-qubit
	// cluster boundaries (§4.2); close to minimal.
	MethodDisjoint
	// MethodOdd allows permutations before odd-indexed gates only (§4.2).
	MethodOdd
	// MethodTriangle allows permutations only between ≤3-qubit clusters
	// (§4.2).
	MethodTriangle
	// MethodHeuristic is the Qiskit-style stochastic baseline ("IBM [12]"
	// in Table 1).
	MethodHeuristic
	// MethodAStar is a deterministic per-layer A*-search baseline in the
	// family of the paper's reference [22] (Zulehner, Paler, Wille): each
	// stuck layer is repaired with a provably SWAP-minimal sequence,
	// optionally biased by lookahead into the next layer.
	MethodAStar
	// MethodSabre runs SABRE-style forward/backward passes (the paper's
	// reference [13], Li, Ding, Xie) around the A* mapper to refine the
	// initial layout.
	MethodSabre
)

// methodNames maps each Method constant to its registry name in
// internal/solver, in constant order. The built-in registrations use the
// same order, so Method(i) and Methods()[i] agree for the eight built-ins
// (asserted by tests).
var methodNames = [...]string{
	MethodExact:        solver.NameExact,
	MethodExactSubsets: solver.NameExactSubsets,
	MethodDisjoint:     solver.NameDisjoint,
	MethodOdd:          solver.NameOdd,
	MethodTriangle:     solver.NameTriangle,
	MethodHeuristic:    solver.NameHeuristic,
	MethodAStar:        solver.NameAStar,
	MethodSabre:        solver.NameSabre,
}

// String returns the method's short name — the key it is registered under
// in the solver registry.
func (m Method) String() string {
	if m >= 0 && int(m) < len(methodNames) {
		return methodNames[m]
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// Methods returns the canonical method names in registry order — the valid
// inputs to ParseMethod and the -method flags of the CLIs.
func Methods() []string { return solver.Methods() }

// ParseMethod converts a short name into a Method. The scan over the
// ordered name table is deterministic, and the error lists every valid
// name.
func ParseMethod(name string) (Method, error) {
	for i, n := range methodNames {
		if n == name {
			return Method(i), nil
		}
	}
	return 0, fmt.Errorf("qxmap: unknown method %q (valid: %s)", name, strings.Join(Methods(), ", "))
}

// Engine selects the exact solving backend. It is an alias of the internal
// engine type, so the name↔value mapping ("sat", "dp") has exactly one
// definition that every layer — portfolio winners, result provenance, CLI
// flags — round-trips through.
type Engine = exact.Engine

const (
	// EngineSAT uses the symbolic formulation + CDCL solver (the paper's
	// methodology; default).
	EngineSAT = exact.EngineSAT
	// EngineDP uses the dynamic-programming exact oracle (faster on the
	// small IBM QX devices; same results).
	EngineDP = exact.EngineDP
)

// ParseEngine converts an engine name ("sat" or "dp") into an Engine,
// round-tripping with Engine.String().
func ParseEngine(name string) (Engine, error) { return exact.ParseEngine(name) }

// Options configures Map.
type Options struct {
	// Method selects the algorithm (default MethodExact).
	Method Method
	// Engine selects the exact backend (default EngineSAT); ignored by
	// MethodHeuristic.
	Engine Engine
	// HeuristicRuns is the number of seeds for MethodHeuristic, keeping
	// the best (default 5, as in the paper's evaluation).
	HeuristicRuns int
	// Seed seeds the heuristic's random source.
	Seed int64
	// Lookahead weighs the next layer into MethodAStar's search heuristic
	// (customary value 0.5; 0 disables).
	Lookahead float64
	// SkipVerify disables the built-in structural + GF(2) verification of
	// the mapped circuit (on by default; full unitary verification is
	// additionally run for small instances).
	SkipVerify bool
	// SATStartBound, when positive, seeds the SAT engine's descent with a
	// known upper bound on F. The bound is enforced as a guard assumption
	// on the incremental solver; a bound that undercuts the instance's
	// optimum is relaxed in place rather than failing the solve.
	SATStartBound int
	// SATBinaryDescent switches the SAT engine to binary bound search.
	// Both descent modes encode the instance once and probe bounds via
	// assumptions (Result.Stats.SATEncodes reports the encode count).
	SATBinaryDescent bool
	// SATMaxConflicts bounds each SAT call; 0 = unlimited. Exhausting the
	// budget returns the best mapping found; Result.Minimal then reports
	// whether the truncated descent still managed to prove minimality.
	SATMaxConflicts int64
	// SATNoLowerBound disables the admissible lower bound the SAT engine
	// otherwise derives from coupling-graph distances to seed its descent
	// (Stats.LowerBound) — the library face of the CLIs' -lower-bound=off
	// escape hatch. Costs are unaffected; only the probe count grows.
	SATNoLowerBound bool
	// SATThreads, when > 1, runs every SAT engine solve as a clause-sharing
	// portfolio of that many diversified goroutine workers over the one
	// incremental encoding (the CLIs' -sat-threads flag). The cost and
	// minimality proof are unchanged; the witness mapping may differ
	// between runs. Default (≤ 1) keeps the deterministic single solver.
	SATThreads int
	// InitialLayout, when non-nil, pins the logical→physical layout at
	// the start of the circuit (exact methods route away from it at SWAP
	// cost if beneficial; the heuristic starts its search from it).
	// Incompatible with MethodExactSubsets and the §4.2 methods, which
	// renumber physical qubits internally.
	InitialLayout []int
	// Optimize runs the post-mapping peephole optimizer on the mapped
	// circuit (cancellation of adjacent inverse pairs, rotation merging).
	// The paper's cost F is reported for the unoptimized circuit — its
	// cost model deliberately excludes this step (§3, footnote 2) — but
	// the returned Mapped circuit is the optimized one, still verified.
	Optimize bool
	// Portfolio routes exact methods through the portfolio layer: the
	// stochastic heuristic seeds the SAT descent with an upper bound, the
	// SAT and DP engines race with first-valid-minimal-wins semantics, and
	// results are memoized in the Mapper instance's LRU cache (the default
	// instance's cache for the package-level wrappers). The Engine option
	// is then ignored (the winning engine is reported in Result.Engine);
	// heuristic methods are unaffected.
	Portfolio bool
	// CostModel replaces the paper's uniform 7/4 objective with a weighted
	// one: per-edge SWAP weights and per-direction switch weights (e.g.
	// from LoadCalibration). nil keeps the paper model — and when the
	// architecture itself already carries a model (Architecture.Cost), that
	// model is used; a non-nil CostModel here overrides it for this call.
	// Every method — exact, §4.1/§4.2 restricted and heuristic — optimizes
	// and reports Result.Cost under the effective model, and portfolio
	// cache keys include it, so runs under different models never alias.
	CostModel *CostModel
	// Ladder enables graceful degradation for exact methods: a solve cut
	// off by its context deadline (or SAT conflict budget) returns the
	// best valid plan discovered instead of an error. The rungs, in
	// order: the full exact solve; the SAT descent's anytime incumbent —
	// a valid, verified, non-minimal plan with Stats.Degradation
	// "anytime" and Stats.BoundGap bracketing the optimum; a heuristic
	// fallback plan (Stats.Degradation "heuristic") when exhaustion
	// struck before any model existed. With generous deadlines the ladder
	// is a strict no-op: costs, probes and encodes are identical to a run
	// without it. Degraded results never enter the caches. Off by
	// default; heuristic methods ignore it.
	Ladder bool
}

// Stats instruments one trip through the mapping pipeline: a wall-clock
// duration per stage plus solver-level counters.
type Stats struct {
	// SkeletonTime is stage 1: CNOT-skeleton extraction and validation.
	SkeletonTime time.Duration
	// SolveTime is stage 2: the registry-resolved solver run.
	SolveTime time.Duration
	// MaterializeTime is stage 3: expanding the op stream into gates.
	MaterializeTime time.Duration
	// VerifyTime is stage 4 (and the post-optimize re-check of stage 5):
	// structural, GF(2) and small-instance unitary verification.
	VerifyTime time.Duration
	// OptimizeTime is stage 5: peephole optimization (when enabled).
	OptimizeTime time.Duration
	// Solver is the registry name the solve stage resolved ("exact",
	// "sabre", …; "none" for circuits without CNOTs).
	Solver string
	// Engine is the backend provenance reported by the solver: "sat" or
	// "dp" for exact methods (round-tripping with ParseEngine), the
	// method name for heuristics.
	Engine string
	// CacheHit mirrors Result.CacheHit; CacheTier names the tier that
	// served the hit ("memory" for the in-process LRU, "disk" for the
	// persistent store; empty when the instance was solved).
	CacheHit  bool
	CacheTier string
	// SATSolves, SATEncodes and SATConflicts count CDCL invocations, CNF
	// encodings and conflicts across the solve (SAT engine only). The
	// incremental descent encodes each instance exactly once, whatever the
	// number of bound probes, so SATEncodes is 1 for a plain exact solve
	// (one per solved subset under §4.1) — a regression here means the
	// engine fell back to re-encoding.
	SATSolves    int
	SATEncodes   int
	SATConflicts int64
	// BoundProbes and BoundJumps instrument the SAT descent: probes are
	// solver calls that tested a cost bound via guard assumptions; jumps
	// are UNSAT probes whose minimized assumption core refuted a looser
	// bound than the tightest assumed, letting one call skip several
	// descent steps.
	BoundProbes int
	BoundJumps  int
	// LowerBound is the admissible lower bound on F (from the
	// coupling-graph distance sum) that seeded the SAT descent; 0 when
	// trivial, disabled via Options.SATNoLowerBound, or not a SAT run.
	LowerBound int
	// SubsetsPruned, CoreFamilyRefutations and OrbitHits instrument the
	// §4.1 subset fan-out: subsets retired by their admissible lower bound
	// without any solver probe of their own, UNSAT probes whose assumption
	// core refuted the whole pending subset family at once, and subsets
	// whose proof was transferred from their coupling-graph automorphism
	// orbit's representative (symmetric architectures only). All 0 outside
	// the subset fan-out.
	SubsetsPruned         int
	CoreFamilyRefutations int
	OrbitHits             int
	// SATThreads is the portfolio width the SAT engine solved with (1 for
	// the plain solver, 0 when not a SAT run); SharedClauses counts learnt
	// clauses imported across the portfolio's workers (0 when SATThreads
	// ≤ 1).
	SATThreads    int
	SharedClauses int64
	// Degradation names the ladder rung that produced the plan when
	// Options.Ladder degraded the solve ("anytime" or "heuristic"; ""
	// for a full solve), and BoundGap brackets an anytime plan's
	// distance from the optimum: the true minimum lies in
	// [Cost−BoundGap, Cost]. Both zero-valued on the happy path.
	Degradation string
	BoundGap    int
}

// Result is the outcome of a Map call.
type Result struct {
	// Mapped is the executable circuit over the architecture's physical
	// qubits: it satisfies all coupling constraints and is equivalent to
	// the input under InitialLayout/FinalLayout.
	Mapped *Circuit
	// Cost is F: the number of elementary operations added (7 per SWAP,
	// 4 per direction switch). For exact methods this is minimal (or
	// close-to-minimal under §4.2 restrictions).
	Cost int
	// Swaps and Switches break the cost down.
	Swaps    int
	Switches int
	// InitialLayout and FinalLayout give the logical→physical assignment
	// before the first and after the last gate.
	InitialLayout Mapping
	FinalLayout   Mapping
	// PermPoints is |G'|, the number of in-circuit permutation points the
	// method considered (exact methods only; paper's |G'| column counts
	// one more for the free initial mapping).
	PermPoints int
	// Minimal reports whether Cost is guaranteed minimal: the method's
	// formulation admits the optimum and the run proved it (a
	// budget-truncated SAT descent that never reached UNSAT reports
	// false; one that completed its proof within the budget reports
	// true).
	Minimal bool
	// GatesOptimizedAway counts gates removed by the peephole optimizer
	// (only when Options.Optimize was set).
	GatesOptimizedAway int
	// CacheHit reports that the solution was served from the result cache
	// (in Portfolio mode, or whenever the Mapper has a persistent store
	// attached); CacheTier names the serving tier — "memory" for the
	// in-process LRU, "disk" for the persistent store — and is empty when
	// the instance was solved.
	CacheHit  bool
	CacheTier string
	// Stats reports per-stage pipeline timings and solver counters.
	Stats Stats
	// CostModel is the effective non-default cost model Cost was optimized
	// under: Options.CostModel when given, else the model attached to the
	// architecture. nil when the run used the paper's uniform 7/4
	// objective (including uniform models semantically equal to it).
	CostModel *CostModel
	// Method and Engine echo the configuration; Runtime is wall-clock
	// solving plus materialization time.
	Method  Method
	Engine  Engine
	Runtime time.Duration
}

// TotalGates returns the gate count of the mapped circuit.
func (r *Result) TotalGates() int { return r.Mapped.Len() }

// Map maps the circuit onto the architecture. The input must be
// elementary (single-qubit gates and CNOTs only — decompose SWAP/MCT gates
// first, e.g. with the revlib substrate or cmd/qxsynth). It is shorthand
// for MapContext with context.Background().
//
// Deprecated: Map delegates to the process-wide default Mapper (see
// Default), whose portfolio cache is shared by every caller in the
// process. New code should create an instance with NewMapper and call
// Mapper.Map or Mapper.MapWith for isolated caches and per-instance
// tuning.
func Map(c *Circuit, a *Architecture, opts Options) (*Result, error) {
	return MapContext(context.Background(), c, a, opts)
}

// MapContext maps the circuit under deadline/cancellation control.
//
// Deprecated: MapContext delegates to the process-wide default Mapper (see
// Default). New code should use NewMapper and Mapper.MapWith.
func MapContext(ctx context.Context, c *Circuit, a *Architecture, opts Options) (*Result, error) {
	return Default().MapWith(ctx, c, a, opts)
}

// mapPipeline runs the staged mapping pipeline — skeleton extraction, the
// registry-resolved solve, materialization, verification and optional
// peephole optimization — under deadline/cancellation control. The context
// is threaded through the encoder, both exact engines, the §4.1 subset
// fan-out and the heuristic mappers; a cancelled solve aborts promptly and
// returns an error that wraps ctx.Err(). Per-stage timings are reported in
// Result.Stats. Portfolio-mode solves memoize into the instance's cache;
// an attached store (WithStore) persists exact results across restarts.
// Every trip updates the instance's cumulative Totals and in-flight gauge.
func (m *Mapper) mapPipeline(ctx context.Context, c *Circuit, a *Architecture, opts Options) (*Result, error) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	res, err := m.safeRunPipeline(ctx, c, a, opts)
	m.recordTotals(res, err)
	return res, err
}

// safeRunPipeline converts a panic anywhere in the pipeline — a solver
// bug, a materialization invariant violation — into an ordinary error:
// one poisoned request fails itself, never the batch worker, the
// scheduler goroutine, or the process. The faultinject point lets chaos
// tests drive this boundary (and inject pipeline latency) on demand.
func (m *Mapper) safeRunPipeline(ctx context.Context, c *Circuit, a *Architecture, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("qxmap: mapping panicked: %v", r)
		}
	}()
	if err := faultinject.Hit("qxmap.pipeline"); err != nil {
		return nil, fmt.Errorf("qxmap: %w", err)
	}
	return m.runPipeline(ctx, c, a, opts)
}

// runPipeline is the pipeline proper, free of instance accounting.
func (m *Mapper) runPipeline(ctx context.Context, c *Circuit, a *Architecture, opts Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qxmap: canceled: %w", err)
	}
	res := &Result{Method: opts.Method, Engine: opts.Engine}
	if eff := opts.CostModel; eff != nil || a.Cost() != nil {
		if eff == nil {
			eff = a.Cost()
		}
		if !eff.IsPaper() {
			res.CostModel = eff.Clone()
		}
	}

	// Stage 1: skeleton — extract the CNOT structure (paper Def. 4) and
	// validate the instance.
	st := time.Now()
	sk, err := circuit.ExtractSkeleton(c)
	if err != nil {
		return nil, err
	}
	if c.NumQubits() > a.NumQubits() {
		return nil, fmt.Errorf("qxmap: circuit has %d qubits, %s offers %d", c.NumQubits(), a, a.NumQubits())
	}
	res.Stats.SkeletonTime = time.Since(st)

	// Stage 2: solve — resolve the method by name through the solver
	// registry and run it.
	st = time.Now()
	plan, err := m.solvePlan(ctx, sk, a, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.SolveTime = time.Since(st)
	res.Cost = plan.Cost
	res.Swaps = plan.Swaps
	res.Switches = plan.Switches
	res.PermPoints = plan.PermPoints
	res.Minimal = plan.Minimal
	res.CacheHit = plan.CacheHit
	res.CacheTier = plan.CacheTier
	res.Stats.Solver = opts.Method.String()
	if sk.Len() == 0 {
		res.Stats.Solver = "none" // identity short-circuit: no solver ran
	}
	res.Stats.Engine = plan.Engine
	res.Stats.CacheHit = plan.CacheHit
	res.Stats.CacheTier = plan.CacheTier
	res.Stats.SATSolves = plan.SATSolves
	res.Stats.SATEncodes = plan.SATEncodes
	res.Stats.SATConflicts = plan.SATConflicts
	res.Stats.BoundProbes = plan.BoundProbes
	res.Stats.BoundJumps = plan.BoundJumps
	res.Stats.LowerBound = plan.LowerBound
	res.Stats.SubsetsPruned = plan.SubsetsPruned
	res.Stats.CoreFamilyRefutations = plan.CoreFamilyRefutations
	res.Stats.OrbitHits = plan.OrbitHits
	res.Stats.SATThreads = plan.SATThreads
	res.Stats.SharedClauses = plan.SharedClauses
	res.Stats.Degradation = plan.Degradation
	res.Stats.BoundGap = plan.BoundGap
	if e, err := ParseEngine(plan.Engine); err == nil {
		res.Engine = e
	}

	// Stage 3: materialize — expand the op stream into an executable gate
	// sequence (paper Fig. 5).
	st = time.Now()
	mapped, final, err := materialize(c, sk, a, plan.Ops, plan.Initial)
	if err != nil {
		return nil, err
	}
	res.Mapped = mapped
	res.InitialLayout = plan.Initial
	res.FinalLayout = final
	res.Stats.MaterializeTime = time.Since(st)

	// Stage 4: verify — structural, GF(2), and (small instances) unitary
	// equivalence checks.
	if !opts.SkipVerify {
		st = time.Now()
		if err := verifyResult(c, sk, a, plan.Ops, res); err != nil {
			return nil, err
		}
		res.Stats.VerifyTime = time.Since(st)
	}

	// Stage 5: optimize — peephole simplification, re-verified.
	if opts.Optimize {
		st = time.Now()
		simplified, ost := opt.Simplify(res.Mapped)
		res.GatesOptimizedAway = ost.GatesRemoved()
		res.Mapped = simplified
		res.Stats.OptimizeTime = time.Since(st)
		if !opts.SkipVerify {
			st = time.Now()
			if err := verify.CouplingCompliant(res.Mapped, a); err != nil {
				return nil, err
			}
			if a.NumQubits() <= sim.MaxQubits && c.NumQubits() <= 6 {
				if err := verify.Equivalent(c, res.Mapped, a.NumQubits(), res.InitialLayout, res.FinalLayout); err != nil {
					return nil, err
				}
			}
			res.Stats.VerifyTime += time.Since(st)
		}
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// solvePlan is the pipeline's solve stage: a skeleton without CNOTs
// short-circuits to the identity plan (nothing to route, trivially
// minimal); everything else resolves through the solver registry, with
// Portfolio-mode memoization scoped to this instance's cache.
func (m *Mapper) solvePlan(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) (*solver.Plan, error) {
	if opts.CostModel != nil {
		var err error
		if a, err = a.WithCostModel(opts.CostModel); err != nil {
			return nil, fmt.Errorf("qxmap: cost model: %w", err)
		}
	}
	if sk.Len() == 0 {
		return &solver.Plan{
			Initial: perm.IdentityMapping(sk.NumQubits),
			Minimal: true,
			Engine:  "none",
		}, nil
	}
	cfg := solver.Config{
		Engine: opts.Engine,
		SAT: exact.SATOptions{
			StartBound:    opts.SATStartBound,
			BinaryDescent: opts.SATBinaryDescent,
			MaxConflicts:  opts.SATMaxConflicts,
			NoLowerBound:  opts.SATNoLowerBound,
			Threads:       opts.SATThreads,
		},
		HeuristicRuns: opts.HeuristicRuns,
		Seed:          opts.Seed,
		Lookahead:     opts.Lookahead,
		InitialLayout: opts.InitialLayout,
		Portfolio:     opts.Portfolio,
		Cache:         m.cache,
		Ladder:        opts.Ladder,
	}
	// The nil check matters: assigning a nil *store.Store into the
	// interface field would make it non-nil and flip the exact family's
	// direct path into caching mode.
	if m.store != nil {
		cfg.Store = m.store
	}
	s, err := solver.New(opts.Method.String(), cfg)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx, sk, a)
}

// verifyResult layers the structural, GF(2) and (for small instances) full
// unitary checks over a freshly mapped circuit.
func verifyResult(c *Circuit, sk *circuit.Skeleton, a *Architecture, ops []circuit.MappedOp, res *Result) error {
	if err := verify.CouplingCompliant(res.Mapped, a); err != nil {
		return err
	}
	if sk.Len() > 0 {
		final, err := verify.OpStream(sk, a, ops, res.InitialLayout)
		if err != nil {
			return err
		}
		if !final.Equal(res.FinalLayout) {
			return fmt.Errorf("qxmap: layout mismatch: %v vs %v", final, res.FinalLayout)
		}
		if err := verify.SkeletonOps(sk, a.NumQubits(), ops, res.InitialLayout, res.FinalLayout); err != nil {
			return err
		}
	}
	if a.NumQubits() <= sim.MaxQubits && c.NumQubits() <= 6 {
		if err := verify.Equivalent(c, res.Mapped, a.NumQubits(), res.InitialLayout, res.FinalLayout); err != nil {
			return err
		}
	}
	return nil
}
