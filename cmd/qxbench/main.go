// Command qxbench regenerates the paper's evaluation: Table 1 over the
// 25-benchmark suite and the aggregate claims of §5. Rows fan out across
// cores with -parallel/-workers.
//
// A second mode, -batch <method>, maps the whole suite through
// qxmap.MapBatch instead: one concurrent mapping job per benchmark with a
// bounded worker pool, optional per-job deadlines and fail-soft error
// collection — the service-style execution path rather than the
// paper-table harness. With -json the batch emits a stable perf snapshot
// (costs, encode/probe/conflict counters, solve times) on stdout, and
// -baseline compares the run against a committed snapshot, failing on an
// encode-count regression (sat_encodes ≠ 1), a bound-probe count above the
// recorded baseline, a cost change, or a lost minimality proof — the CI
// bench smoke gate.
//
// Usage:
//
//	qxbench [-arch ibmqx4] [-engine dp|sat] [-seed-sat] [-portfolio]
//	        [-runs 5] [-names a,b,c] [-summary] [-timeout 30s]
//	        [-parallel] [-workers 8] [-lower-bound on|off]
//	        [-cost-model paper|swap=<n>,h=<n>] [-calibration cal.json]
//	qxbench -batch exact [-workers 8] [-job-timeout 10s] [-portfolio]
//	        [-sat-binary] [-sat-threads 4] [-json] [-baseline BENCH_5.json]
//	        [-probe-budget BENCH_6.json]
//
// -probe-budget additionally caps the run's TOTAL bound probes at another
// snapshot's total (requiring identical per-benchmark costs): the
// cross-method gate proving the §4.1 shared-instance fan-out spends no
// more probes than the plain exact descent it generalizes.
//
// -cost-model/-calibration attach a weighted cost model to the target
// architecture in both modes; a non-default model is recorded in the
// snapshot's cost_model field. Running with the explicit paper model must
// reproduce the default snapshots bit-for-bit — the CI weighted-parity
// gate (BENCH_8.json).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/revlib"

	qxmap "repro"
)

func main() {
	archName := flag.String("arch", "ibmqx4", "target architecture: "+strings.Join(qxmap.Architectures(), ", "))
	engine := flag.String("engine", "dp", "exact engine: dp or sat")
	seedSAT := flag.Bool("seed-sat", false, "seed SAT descent with the DP cost")
	portfolio := flag.Bool("portfolio", false, "race both engines per instance with heuristic seeding and a result cache (ignores -engine and -seed-sat)")
	ladder := flag.Bool("ladder", false, "degradation ladder (-batch mode): deadline-starved jobs yield valid anytime/heuristic plans instead of errors")
	runs := flag.Int("runs", 5, "heuristic runs per benchmark (paper: 5)")
	names := flag.String("names", "", "comma-separated benchmark subset (default: all 25)")
	summaryOnly := flag.Bool("summary", false, "print only the aggregate summary")
	parallel := flag.Bool("parallel", false, "evaluate benchmark rows concurrently (one worker per core)")
	workers := flag.Int("workers", 0, "bound the worker pool (implies -parallel; 0 = one per core)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none), e.g. 30s or 5m")
	batchMethod := flag.String("batch", "", "map the suite through qxmap.MapBatch with this method ("+strings.Join(qxmap.Methods(), ", ")+") instead of running Table 1")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline in -batch mode (0 = none)")
	satBinary := flag.Bool("sat-binary", false, "binary bound search instead of linear descent (-batch mode, SAT engine)")
	satThreads := flag.Int("sat-threads", 1, "clause-sharing SAT portfolio width (capped at GOMAXPROCS); >1 trades run-to-run witness determinism for parallel speed")
	lowerBound := flag.String("lower-bound", "on", "admissible lower-bound seeding of the SAT descent: on or off")
	jsonOut := flag.Bool("json", false, "emit a stable JSON perf snapshot of the batch on stdout (-batch mode)")
	baseline := flag.String("baseline", "", "compare the batch against this committed perf snapshot and fail on encode/probe/cost regressions (-batch mode)")
	probeBudget := flag.String("probe-budget", "", "cap the run's TOTAL bound probes at this snapshot's total, requiring identical per-benchmark costs — the cross-method gate proving the §4.1 shared instance spends no more probes than the plain exact descent (-batch mode)")
	storeDir := flag.String("store", "", "persistent result store directory (-batch mode): solved instances are written through and identical reruns are served from disk with zero SAT work")
	costModel := flag.String("cost-model", "", "cost model: paper (default 7/4) or swap=<n>,h=<n> for uniform rescaling")
	calibration := flag.String("calibration", "", "calibration JSON file with per-edge weights or error rates (overrides -cost-model)")
	flag.Parse()

	noLowerBound := false
	switch *lowerBound {
	case "on":
	case "off":
		noLowerBound = true
	default:
		fatal(fmt.Errorf("-lower-bound must be on or off, got %q", *lowerBound))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	a, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	// A cost model rides on the architecture, so both modes — Table 1 and
	// -batch — optimize the weighted objective through the same plumbing.
	var cm *arch.CostModel
	switch {
	case *calibration != "":
		cm, err = arch.LoadCalibration(*calibration)
	case *costModel != "":
		cm, err = arch.ParseCostModel(*costModel)
	}
	if err != nil {
		fatal(err)
	}
	if cm != nil {
		if a, err = a.WithCostModel(cm); err != nil {
			fatal(err)
		}
	}
	eng, err := qxmap.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *batchMethod != "" {
		runBatch(ctx, a, batchConfig{
			method:       *batchMethod,
			engine:       eng,
			portfolio:    *portfolio,
			ladder:       *ladder,
			satBinary:    *satBinary,
			satThreads:   *satThreads,
			noLowerBound: noLowerBound,
			runs:         *runs,
			names:        *names,
			workers:      *workers,
			jobTimeout:   *jobTimeout,
			jsonOut:      *jsonOut,
			baseline:     *baseline,
			probeBudget:  *probeBudget,
			storeDir:     *storeDir,
		})
		return
	}

	cfg := bench.Config{
		Arch:          a,
		Engine:        eng,
		HeuristicRuns: *runs,
		SeedSATWithDP: *seedSAT,
		Parallel:      *parallel,
		Workers:       *workers,
		Portfolio:     *portfolio,
		NoLowerBound:  noLowerBound,
		SATThreads:    *satThreads,
	}
	if *names != "" {
		cfg.Names = strings.Split(*names, ",")
	}

	rows, err := bench.RunTable1(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if !*summaryOnly {
		fmt.Println("Table 1 — mapping the benchmark suite to", a.Name(),
			"(engine:", *engine+")")
		fmt.Print(bench.FormatTable(rows))
		fmt.Println()
	}
	fmt.Print(bench.FormatSummary(bench.Summary(rows)))
}

// batchConfig carries the -batch mode flags.
type batchConfig struct {
	method       string
	engine       qxmap.Engine
	portfolio    bool
	ladder       bool
	satBinary    bool
	satThreads   int
	noLowerBound bool
	runs         int
	names        string
	workers      int
	jobTimeout   time.Duration
	jsonOut      bool
	baseline     string
	probeBudget  string
	storeDir     string
}

// snapshotRow is one benchmark's entry in the stable -json perf snapshot.
// The counters reuse the qxmap wire schema (StatsJSON), so a counter added
// to Stats flows into the snapshot without a second hand-mirrored type.
type snapshotRow struct {
	Name    string          `json:"name"`
	Cost    int             `json:"cost"`
	Minimal bool            `json:"minimal"`
	Stats   qxmap.StatsJSON `json:"stats"`
}

// batchSnapshot is the -json perf snapshot of a whole batch run — the
// format committed as BENCH_5.json and compared by -baseline.
type batchSnapshot struct {
	Arch      string `json:"arch"`
	Method    string `json:"method"`
	Engine    string `json:"engine"`
	SATBinary bool   `json:"sat_binary"`
	// CostModel summarizes a non-default weighted objective; omitted for
	// the paper's 7/4 model, so default snapshots are unchanged.
	CostModel  string        `json:"cost_model,omitempty"`
	Benchmarks []snapshotRow `json:"benchmarks"`
	TotalCost  int           `json:"total_added_cost"`
	WallNS     int64         `json:"wall_ns"`
}

// runBatch maps every suite benchmark as one MapBatch job on a dedicated
// Mapper instance: the suite fans out across cores, failures (including
// per-job deadline expiries) are collected per benchmark, and per-stage
// pipeline timings are reported. With jsonOut the run emits the snapshot
// instead of the table; with baseline it is additionally gated against a
// committed snapshot.
func runBatch(ctx context.Context, a *arch.Arch, cfg batchConfig) {
	method, err := qxmap.ParseMethod(cfg.method)
	if err != nil {
		fatal(err) // the error lists the valid method names
	}
	mopts := []qxmap.Option{qxmap.WithWorkers(cfg.workers)}
	if cfg.storeDir != "" {
		// The store never changes answers — only where they come from: a
		// cold store leaves every solve untouched (write-through only), a
		// warm one serves identical instances with zero SAT work (the
		// baseline gate's sat_encodes==1 check is for cold runs; warm
		// reruns are asserted separately on cache_tier/sat_encodes).
		mopts = append(mopts, qxmap.WithStore(cfg.storeDir))
	}
	mapper, err := qxmap.NewMapper(mopts...)
	if err != nil {
		fatal(err)
	}
	defer mapper.Close()
	var selected []string
	if cfg.names != "" {
		selected = strings.Split(cfg.names, ",")
	}
	var jobs []qxmap.Job
	for _, b := range revlib.Suite() {
		if len(selected) > 0 && !slices.Contains(selected, b.Name) {
			continue
		}
		jobs = append(jobs, qxmap.Job{
			Name:    b.Name,
			Circuit: b.Circuit,
			Arch:    a,
			Opts: qxmap.Options{
				Method:           method,
				Engine:           cfg.engine,
				Portfolio:        cfg.portfolio,
				Ladder:           cfg.ladder,
				SATBinaryDescent: cfg.satBinary,
				SATThreads:       cfg.satThreads,
				SATNoLowerBound:  cfg.noLowerBound,
				HeuristicRuns:    cfg.runs,
				Seed:             1,
				Lookahead:        0.5,
			},
		})
	}

	start := time.Now()
	results := mapper.MapBatch(ctx, jobs, qxmap.BatchOptions{JobTimeout: cfg.jobTimeout})
	elapsed := time.Since(start)

	snap := batchSnapshot{
		Arch:      a.Name(),
		Method:    method.String(),
		Engine:    cfg.engine.String(),
		SATBinary: cfg.satBinary,
		WallNS:    elapsed.Nanoseconds(),
	}
	if cm := a.Cost(); !cm.IsPaper() {
		snap.CostModel = cm.Summary()
	}
	failures := 0
	for _, br := range results {
		if br.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "qxbench: %s: %v\n", br.Job.Name, br.Err)
			continue
		}
		r := br.Result
		snap.TotalCost += r.Cost
		snap.Benchmarks = append(snap.Benchmarks, snapshotRow{
			Name:    br.Job.Name,
			Cost:    r.Cost,
			Minimal: r.Minimal,
			Stats:   r.Stats.JSON(),
		})
	}

	if cfg.jsonOut {
		b, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("%-12s %6s %6s %8s %6s %7s %7s %9s %7s %6s %4s %7s %6s %7s %10s\n",
			"benchmark", "F", "gates", "engine", "cache", "solves", "encodes", "conflicts", "probes", "jumps", "lb", "pruned", "orbit", "famref", "solve")
		for _, br := range results {
			if br.Err != nil {
				fmt.Printf("%-12s %6s\n", br.Job.Name, "FAIL")
				continue
			}
			r := br.Result
			fmt.Printf("%-12s %6d %6d %8s %6v %7d %7d %9d %7d %6d %4d %7d %6d %7d %10v\n",
				br.Job.Name, r.Cost, r.TotalGates(), r.Stats.Engine, r.CacheHit,
				r.Stats.SATSolves, r.Stats.SATEncodes, r.Stats.SATConflicts,
				r.Stats.BoundProbes, r.Stats.BoundJumps, r.Stats.LowerBound,
				r.Stats.SubsetsPruned, r.Stats.OrbitHits, r.Stats.CoreFamilyRefutations,
				r.Stats.SolveTime.Round(time.Microsecond))
		}
		fmt.Printf("\nbatch: %d jobs (%d failed), method=%s, total added gates F=%d, wall-clock %v\n",
			len(results), failures, method, snap.TotalCost, elapsed.Round(time.Millisecond))
	}
	if cfg.baseline != "" {
		if err := compareBaseline(snap, cfg.baseline); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "qxbench: baseline %s: no encode, probe or cost regressions\n", cfg.baseline)
	}
	if cfg.probeBudget != "" {
		if err := compareProbeBudget(snap, cfg.probeBudget); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "qxbench: probe budget %s: total bound probes within budget at identical costs\n", cfg.probeBudget)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// compareBaseline gates the run against a committed snapshot: every
// benchmark recorded in the baseline must be present in the run (a
// filtered-away or failed row must not pass the gate vacuously) and must
// report sat_encodes == 1 per solved instance (the incremental-descent
// invariant for the plain exact method), a bound-probe count no higher
// than the baseline's, an identical cost, and no lost minimality proof (a
// row the baseline proved minimal must stay proven).
func compareBaseline(snap batchSnapshot, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base batchSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("baseline %s records no benchmarks; the gate would be vacuous", path)
	}
	rows := make(map[string]snapshotRow, len(snap.Benchmarks))
	for _, r := range snap.Benchmarks {
		rows[r.Name] = r
	}
	for _, b := range base.Benchmarks {
		r, ok := rows[b.Name]
		if !ok {
			return fmt.Errorf("baseline regression: %s is in %s but missing from this run (failed or filtered out)", b.Name, path)
		}
		if r.Stats.SATEncodes != 1 {
			return fmt.Errorf("baseline regression: %s encoded %d times, want exactly 1 (incremental descent broke)", b.Name, r.Stats.SATEncodes)
		}
		if r.Stats.BoundProbes > b.Stats.BoundProbes {
			return fmt.Errorf("baseline regression: %s used %d bound probes, baseline %d", b.Name, r.Stats.BoundProbes, b.Stats.BoundProbes)
		}
		if r.Cost != b.Cost {
			return fmt.Errorf("baseline regression: %s cost %d, baseline %d", b.Name, r.Cost, b.Cost)
		}
		if b.Minimal && !r.Minimal {
			return fmt.Errorf("baseline regression: %s lost its minimality proof (baseline proved minimal)", b.Name)
		}
		// §4.1 fan-out instrumentation: a baseline that recorded pruned
		// subsets or orbit transfers must keep them — a drop to below the
		// recorded level means the lower-bound pruning or the automorphism
		// orbit machinery silently stopped firing.
		if got, want := r.Stats.SubsetsPruned+r.Stats.OrbitHits, b.Stats.SubsetsPruned+b.Stats.OrbitHits; got < want {
			return fmt.Errorf("baseline regression: %s retired %d subsets without probes (pruned+orbit), baseline %d", b.Name, got, want)
		}
	}
	return nil
}

// compareProbeBudget gates the run's TOTAL bound-probe spend against
// another committed snapshot — typically the plain exact method's baseline,
// proving the §4.1 shared-instance fan-out covers every connected subset
// without spending more probes than a single-architecture descent. The
// comparison is only meaningful at identical answers, so per-benchmark
// costs must match the budget snapshot exactly.
func compareProbeBudget(snap batchSnapshot, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base batchSnapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("probe budget %s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("probe budget %s records no benchmarks; the gate would be vacuous", path)
	}
	rows := make(map[string]snapshotRow, len(snap.Benchmarks))
	for _, r := range snap.Benchmarks {
		rows[r.Name] = r
	}
	budget, spent := 0, 0
	for _, b := range base.Benchmarks {
		r, ok := rows[b.Name]
		if !ok {
			return fmt.Errorf("probe budget: %s is in %s but missing from this run", b.Name, path)
		}
		if r.Cost != b.Cost {
			return fmt.Errorf("probe budget: %s cost %d, budget snapshot %d — probe totals are only comparable at identical costs", b.Name, r.Cost, b.Cost)
		}
		budget += b.Stats.BoundProbes
		spent += r.Stats.BoundProbes
	}
	if spent > budget {
		return fmt.Errorf("probe budget regression: run spent %d bound probes, budget %s allows %d", spent, path, budget)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qxbench:", err)
	os.Exit(1)
}
