// Command qxbench regenerates the paper's evaluation: Table 1 over the
// 25-benchmark suite and the aggregate claims of §5. Rows fan out across
// cores with -parallel/-workers.
//
// A second mode, -batch <method>, maps the whole suite through
// qxmap.MapBatch instead: one concurrent mapping job per benchmark with a
// bounded worker pool, optional per-job deadlines and fail-soft error
// collection — the service-style execution path rather than the
// paper-table harness.
//
// Usage:
//
//	qxbench [-arch ibmqx4] [-engine dp|sat] [-seed-sat] [-portfolio]
//	        [-runs 5] [-names a,b,c] [-summary] [-timeout 30s]
//	        [-parallel] [-workers 8]
//	qxbench -batch exact [-workers 8] [-job-timeout 10s] [-portfolio]
//	        [-sat-binary]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/revlib"

	qxmap "repro"
)

func main() {
	archName := flag.String("arch", "ibmqx4", "target architecture: "+strings.Join(qxmap.Architectures(), ", "))
	engine := flag.String("engine", "dp", "exact engine: dp or sat")
	seedSAT := flag.Bool("seed-sat", false, "seed SAT descent with the DP cost")
	portfolio := flag.Bool("portfolio", false, "race both engines per instance with heuristic seeding and a result cache (ignores -engine and -seed-sat)")
	runs := flag.Int("runs", 5, "heuristic runs per benchmark (paper: 5)")
	names := flag.String("names", "", "comma-separated benchmark subset (default: all 25)")
	summaryOnly := flag.Bool("summary", false, "print only the aggregate summary")
	parallel := flag.Bool("parallel", false, "evaluate benchmark rows concurrently (one worker per core)")
	workers := flag.Int("workers", 0, "bound the worker pool (implies -parallel; 0 = one per core)")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none), e.g. 30s or 5m")
	batchMethod := flag.String("batch", "", "map the suite through qxmap.MapBatch with this method ("+strings.Join(qxmap.Methods(), ", ")+") instead of running Table 1")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline in -batch mode (0 = none)")
	satBinary := flag.Bool("sat-binary", false, "binary bound search instead of linear descent (-batch mode, SAT engine)")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	a, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	eng, err := qxmap.ParseEngine(*engine)
	if err != nil {
		fatal(err)
	}

	if *batchMethod != "" {
		runBatch(ctx, a, *batchMethod, eng, *portfolio, *satBinary, *runs, *names, *workers, *jobTimeout)
		return
	}

	cfg := bench.Config{
		Arch:          a,
		Engine:        eng,
		HeuristicRuns: *runs,
		SeedSATWithDP: *seedSAT,
		Parallel:      *parallel,
		Workers:       *workers,
		Portfolio:     *portfolio,
	}
	if *names != "" {
		cfg.Names = strings.Split(*names, ",")
	}

	rows, err := bench.RunTable1(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if !*summaryOnly {
		fmt.Println("Table 1 — mapping the benchmark suite to", a.Name(),
			"(engine:", *engine+")")
		fmt.Print(bench.FormatTable(rows))
		fmt.Println()
	}
	fmt.Print(bench.FormatSummary(bench.Summary(rows)))
}

// runBatch maps every suite benchmark as one MapBatch job on a dedicated
// Mapper instance: the suite fans out across cores, failures (including
// per-job deadline expiries) are collected per benchmark, and per-stage
// pipeline timings are reported.
func runBatch(ctx context.Context, a *arch.Arch, methodName string, eng qxmap.Engine,
	portfolio, satBinary bool, runs int, names string, workers int, jobTimeout time.Duration) {

	method, err := qxmap.ParseMethod(methodName)
	if err != nil {
		fatal(err) // the error lists the valid method names
	}
	mapper, err := qxmap.NewMapper(qxmap.WithWorkers(workers))
	if err != nil {
		fatal(err)
	}
	defer mapper.Close()
	var selected []string
	if names != "" {
		selected = strings.Split(names, ",")
	}
	var jobs []qxmap.Job
	for _, b := range revlib.Suite() {
		if len(selected) > 0 && !slices.Contains(selected, b.Name) {
			continue
		}
		jobs = append(jobs, qxmap.Job{
			Name:    b.Name,
			Circuit: b.Circuit,
			Arch:    a,
			Opts: qxmap.Options{
				Method:           method,
				Engine:           eng,
				Portfolio:        portfolio,
				SATBinaryDescent: satBinary,
				HeuristicRuns:    runs,
				Seed:             1,
				Lookahead:        0.5,
			},
		})
	}

	start := time.Now()
	results := mapper.MapBatch(ctx, jobs, qxmap.BatchOptions{JobTimeout: jobTimeout})
	elapsed := time.Since(start)

	fmt.Printf("%-12s %6s %6s %8s %6s %7s %7s %9s %10s\n",
		"benchmark", "F", "gates", "engine", "cache", "solves", "encodes", "conflicts", "solve")
	failures := 0
	totalF := 0
	for _, br := range results {
		if br.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "qxbench: %s: %v\n", br.Job.Name, br.Err)
			fmt.Printf("%-12s %6s\n", br.Job.Name, "FAIL")
			continue
		}
		r := br.Result
		totalF += r.Cost
		fmt.Printf("%-12s %6d %6d %8s %6v %7d %7d %9d %10v\n",
			br.Job.Name, r.Cost, r.TotalGates(), r.Stats.Engine, r.CacheHit,
			r.Stats.SATSolves, r.Stats.SATEncodes, r.Stats.SATConflicts,
			r.Stats.SolveTime.Round(time.Microsecond))
	}
	fmt.Printf("\nbatch: %d jobs (%d failed), method=%s, total added gates F=%d, wall-clock %v\n",
		len(results), failures, method, totalF, elapsed.Round(time.Millisecond))
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qxbench:", err)
	os.Exit(1)
}
