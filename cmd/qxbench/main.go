// Command qxbench regenerates the paper's evaluation: Table 1 over the
// 25-benchmark suite and the aggregate claims of §5.
//
// Usage:
//
//	qxbench [-arch ibmqx4] [-engine dp|sat] [-seed-sat] [-portfolio]
//	        [-runs 5] [-names a,b,c] [-summary] [-timeout 30s]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/exact"
)

func main() {
	archName := flag.String("arch", "ibmqx4", "target architecture")
	engine := flag.String("engine", "dp", "exact engine: dp or sat")
	seedSAT := flag.Bool("seed-sat", false, "seed SAT descent with the DP cost")
	portfolio := flag.Bool("portfolio", false, "race both engines per instance with heuristic seeding and a result cache (ignores -engine and -seed-sat)")
	runs := flag.Int("runs", 5, "heuristic runs per benchmark (paper: 5)")
	names := flag.String("names", "", "comma-separated benchmark subset (default: all 25)")
	summaryOnly := flag.Bool("summary", false, "print only the aggregate summary")
	parallel := flag.Bool("parallel", false, "evaluate benchmark rows concurrently")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline for the whole run (0 = none), e.g. 30s or 5m")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	a, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{Arch: a, HeuristicRuns: *runs, SeedSATWithDP: *seedSAT, Parallel: *parallel, Portfolio: *portfolio}
	switch *engine {
	case "dp":
		cfg.Engine = exact.EngineDP
	case "sat":
		cfg.Engine = exact.EngineSAT
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if *names != "" {
		cfg.Names = strings.Split(*names, ",")
	}

	rows, err := bench.RunTable1(ctx, cfg)
	if err != nil {
		fatal(err)
	}
	if !*summaryOnly {
		fmt.Println("Table 1 — mapping the benchmark suite to", a.Name(),
			"(engine:", *engine+")")
		fmt.Print(bench.FormatTable(rows))
		fmt.Println()
	}
	fmt.Print(bench.FormatSummary(bench.Summary(rows)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qxbench:", err)
	os.Exit(1)
}
