// Command qxbench regenerates the paper's evaluation: Table 1 over the
// 25-benchmark suite and the aggregate claims of §5.
//
// Usage:
//
//	qxbench [-arch ibmqx4] [-engine dp|sat] [-seed-sat] [-runs 5]
//	        [-names a,b,c] [-summary]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/exact"
)

func main() {
	archName := flag.String("arch", "ibmqx4", "target architecture")
	engine := flag.String("engine", "dp", "exact engine: dp or sat")
	seedSAT := flag.Bool("seed-sat", false, "seed SAT descent with the DP cost")
	runs := flag.Int("runs", 5, "heuristic runs per benchmark (paper: 5)")
	names := flag.String("names", "", "comma-separated benchmark subset (default: all 25)")
	summaryOnly := flag.Bool("summary", false, "print only the aggregate summary")
	parallel := flag.Bool("parallel", false, "evaluate benchmark rows concurrently")
	flag.Parse()

	a, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{Arch: a, HeuristicRuns: *runs, SeedSATWithDP: *seedSAT, Parallel: *parallel}
	switch *engine {
	case "dp":
		cfg.Engine = exact.EngineDP
	case "sat":
		cfg.Engine = exact.EngineSAT
	default:
		fatal(fmt.Errorf("unknown engine %q", *engine))
	}
	if *names != "" {
		cfg.Names = strings.Split(*names, ",")
	}

	rows, err := bench.RunTable1(cfg)
	if err != nil {
		fatal(err)
	}
	if !*summaryOnly {
		fmt.Println("Table 1 — mapping the benchmark suite to", a.Name(),
			"(engine:", *engine+")")
		fmt.Print(bench.FormatTable(rows))
		fmt.Println()
	}
	fmt.Print(bench.FormatSummary(bench.Summary(rows)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qxbench:", err)
	os.Exit(1)
}
