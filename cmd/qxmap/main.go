// Command qxmap maps an OpenQASM 2.0 circuit to an IBM QX architecture
// with the minimal number of SWAP and H operations.
//
// Usage:
//
//	qxmap [-arch ibmqx4] [-method exact] [-strategy all|disjoint|odd|triangle]
//	      [-engine sat|dp] [-sat-binary] [-sat-threads 4] [-portfolio] [-timeout 30s]
//	      [-cost-model paper|swap=<n>,h=<n>] [-calibration cal.json]
//	      [-runs 5] [-render] [-stats] [-json] [-o out.qasm] input.qasm
//
// With input "-", the program reads from standard input. The mapped
// circuit is written as QASM to -o (default: stdout), preceded by a cost
// report on stderr. With -json, the output is instead the stable JSON
// encoding of the result (qxmap.ResultJSON, mapped QASM included) — the
// same shape the qxmapd service returns. A -timeout maps to
// context.WithTimeout over the whole solve: exact runs abort within one
// solver restart interval of the deadline instead of relying on ad-hoc
// conflict budgets.
//
// -cost-model replaces the paper's uniform 7/4 objective with rescaled
// units, and -calibration loads per-coupling weights or error rates from
// a JSON file (see examples/calibration/); every method then optimizes
// the weighted objective, and the effective model is echoed in the cost
// report and the JSON encoding.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/exact"
	"repro/internal/render"

	qxmap "repro"
)

func main() {
	archName := flag.String("arch", "ibmqx4", "target architecture: "+strings.Join(qxmap.Architectures(), ", "))
	methodName := flag.String("method", "exact", "mapping method: "+strings.Join(qxmap.Methods(), ", "))
	strategyName := flag.String("strategy", "", "permutation-point restriction (paper §4.2) for exact mapping: "+strings.Join(exact.Strategies(), ", ")+" (selects the matching Table-1 method, §4.1 subsets included; only valid with -method exact)")
	engineName := flag.String("engine", "sat", "exact engine: sat (paper methodology) or dp")
	satBinary := flag.Bool("sat-binary", false, "binary bound search instead of linear descent (SAT engine)")
	satThreads := flag.Int("sat-threads", 1, "clause-sharing SAT portfolio width (capped at GOMAXPROCS); >1 trades run-to-run witness determinism for parallel speed")
	lowerBound := flag.String("lower-bound", "on", "admissible lower-bound seeding of the SAT descent: on or off")
	runs := flag.Int("runs", 5, "heuristic runs (method=heuristic)")
	seed := flag.Int64("seed", 1, "heuristic random seed")
	doRender := flag.Bool("render", false, "render original and mapped circuits as ASCII diagrams on stderr")
	outPath := flag.String("o", "", "output QASM path (default stdout)")
	optimize := flag.Bool("optimize", false, "run post-mapping peephole optimization")
	initial := flag.String("initial", "", "pin the initial layout, e.g. 2,0,1 (logical j on physical value[j])")
	portfolio := flag.Bool("portfolio", false, "race the SAT and DP engines with heuristic bound seeding and a result cache (ignores -engine)")
	ladder := flag.Bool("ladder", false, "degrade a -timeout-starved exact solve to a valid anytime/heuristic plan instead of failing (reported in stats/JSON degradation)")
	costModel := flag.String("cost-model", "", "cost model: paper (default 7/4) or swap=<n>,h=<n> for uniform rescaling")
	calibration := flag.String("calibration", "", "calibration JSON file with per-edge weights or error rates (overrides -cost-model)")
	timeout := flag.Duration("timeout", 0, "solve deadline (0 = none), e.g. 30s or 2m")
	stats := flag.Bool("stats", false, "report per-stage pipeline timings and solver counters on stderr")
	jsonOut := flag.Bool("json", false, "write the stable JSON result encoding (mapped QASM included) instead of bare QASM")
	flag.Parse()

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("expected exactly one input file (or -), got %d args", flag.NArg()))
	}
	// Validate flags before touching the input: a bad -method reports the
	// valid names (via ParseMethod's error) without waiting on stdin.
	method, err := qxmap.ParseMethod(*methodName)
	if err != nil {
		fatal(err)
	}
	if *strategyName != "" {
		// -strategy is sugar for the paper's §4.2 vocabulary: it selects
		// the Table-1 method implementing the restriction. Every strategy
		// column in Table 1 runs with the §4.1 subset optimization, so
		// "all" maps to exact-subsets and the restricted strategies to
		// their like-named methods — comparable semantics across the
		// flag's whole range. A bad name reports ParseStrategy's error,
		// which enumerates the valid ones.
		strategy, err := exact.ParseStrategy(*strategyName)
		if err != nil {
			fatal(err)
		}
		if *methodName != "exact" {
			fatal(fmt.Errorf("-strategy is only valid with -method exact (it selects the strategy's method); got -method %s", *methodName))
		}
		if strategy == exact.StrategyAll {
			method = qxmap.MethodExactSubsets
		} else if method, err = qxmap.ParseMethod(strategy.String()); err != nil {
			fatal(err)
		}
	}
	a, err := qxmap.ArchByName(*archName)
	if err != nil {
		fatal(err)
	}
	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	c, err := qxmap.ParseQASM(src)
	if err != nil {
		fatal(err)
	}
	opts := qxmap.Options{Method: method, HeuristicRuns: *runs, Seed: *seed, Optimize: *optimize, Portfolio: *portfolio, Ladder: *ladder, SATBinaryDescent: *satBinary, SATThreads: *satThreads}
	switch *lowerBound {
	case "on":
	case "off":
		opts.SATNoLowerBound = true
	default:
		fatal(fmt.Errorf("-lower-bound must be on or off, got %q", *lowerBound))
	}
	if *initial != "" {
		layout, err := parseLayout(*initial)
		if err != nil {
			fatal(err)
		}
		opts.InitialLayout = layout
	}
	if opts.Engine, err = qxmap.ParseEngine(*engineName); err != nil {
		fatal(err)
	}
	switch {
	case *calibration != "":
		if opts.CostModel, err = qxmap.LoadCalibration(*calibration); err != nil {
			fatal(err)
		}
	case *costModel != "":
		if opts.CostModel, err = qxmap.ParseCostModel(*costModel); err != nil {
			fatal(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := qxmap.MapContext(ctx, c, a, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Fprintf(os.Stderr, "mapped %d-qubit circuit (%d gates) to %s\n", c.NumQubits(), c.Len(), a)
	fmt.Fprintf(os.Stderr, "method=%s engine=%s cost F=%d (%d SWAPs, %d direction switches)\n",
		res.Method, res.Engine, res.Cost, res.Swaps, res.Switches)
	if res.CostModel != nil {
		fmt.Fprintf(os.Stderr, "cost model: %s\n", res.CostModel.Summary())
	}
	fmt.Fprintf(os.Stderr, "total gates: %d → %d; depth: %d → %d; minimal: %v; runtime: %v\n",
		c.Len(), res.TotalGates(), c.Depth(), res.Mapped.Depth(), res.Minimal, res.Runtime)
	if res.GatesOptimizedAway > 0 {
		fmt.Fprintf(os.Stderr, "peephole optimization removed %d gates\n", res.GatesOptimizedAway)
	}
	if d := res.Stats.Degradation; d != "" {
		fmt.Fprintf(os.Stderr, "degraded: %s (deadline hit; cost is an upper bound", d)
		if res.Stats.BoundGap > 0 {
			fmt.Fprintf(os.Stderr, ", optimum ≥ %d", res.Cost-res.Stats.BoundGap)
		}
		fmt.Fprintln(os.Stderr, ")")
	}
	fmt.Fprintf(os.Stderr, "initial layout: %s\n", render.Mapping(res.InitialLayout))
	fmt.Fprintf(os.Stderr, "final layout:   %s\n", render.Mapping(res.FinalLayout))
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "pipeline: skeleton=%v solve=%v materialize=%v verify=%v optimize=%v\n",
			s.SkeletonTime, s.SolveTime, s.MaterializeTime, s.VerifyTime, s.OptimizeTime)
		fmt.Fprintf(os.Stderr, "solver: %s via %s, cache-hit=%v, sat-solves=%d, sat-encodes=%d, sat-conflicts=%d\n",
			s.Solver, s.Engine, s.CacheHit, s.SATSolves, s.SATEncodes, s.SATConflicts)
		fmt.Fprintf(os.Stderr, "descent: bound-probes=%d, bound-jumps=%d, lower-bound=%d\n",
			s.BoundProbes, s.BoundJumps, s.LowerBound)
		if s.SubsetsPruned > 0 || s.OrbitHits > 0 || s.CoreFamilyRefutations > 0 {
			fmt.Fprintf(os.Stderr, "subsets: pruned=%d, core-family-refutations=%d, orbit-hits=%d\n",
				s.SubsetsPruned, s.CoreFamilyRefutations, s.OrbitHits)
		}
		if s.SATThreads > 1 {
			fmt.Fprintf(os.Stderr, "portfolio: sat-threads=%d, shared-clauses=%d\n",
				s.SATThreads, s.SharedClauses)
		}
	}
	if *doRender {
		fmt.Fprintln(os.Stderr, "\noriginal:")
		fmt.Fprint(os.Stderr, render.Circuit(c))
		fmt.Fprintln(os.Stderr, "\nmapped:")
		fmt.Fprint(os.Stderr, render.Circuit(res.Mapped))
	}

	var out string
	if *jsonOut {
		// The stable wire encoding — identical to a qxmapd /v1/map response.
		j, err := res.JSON(true)
		if err != nil {
			fatal(err)
		}
		b, err := json.MarshalIndent(j, "", "  ")
		if err != nil {
			fatal(err)
		}
		out = string(b) + "\n"
	} else {
		if out, err = qxmap.WriteQASM(res.Mapped); err != nil {
			fatal(err)
		}
	}
	if *outPath == "" {
		fmt.Print(out)
		return
	}
	if err := os.WriteFile(*outPath, []byte(out), 0o644); err != nil {
		fatal(err)
	}
}

// parseLayout parses a comma-separated physical qubit list.
func parseLayout(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad layout entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func readInput(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qxmap:", err)
	os.Exit(1)
}
