// Command qxsynth synthesizes reversible functions into quantum circuits:
// a named benchmark function (or an explicit permutation) is synthesized
// into a multiple-controlled-Toffoli netlist with the transformation-based
// MMD algorithm, optionally decomposed into the IBM-native {u, cx} gate
// set, and written as OpenQASM 2.0 or RevLib .real.
//
// Usage:
//
//	qxsynth -fn 3_17                      # named function → QASM
//	qxsynth -perm 7,1,4,3,0,2,6,5         # explicit permutation
//	qxsynth -fn rd32 -format real         # MCT netlist in .real format
//	qxsynth -fn 4mod5 -elementary=false   # keep MCT gates
//	qxsynth -qft 4                        # QFT circuit
//	qxsynth -list                         # available named functions
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/circuit"
	"repro/internal/qasm"
	"repro/internal/revlib"
)

func main() {
	fn := flag.String("fn", "", "named reversible function (see -list)")
	permSpec := flag.String("perm", "", "explicit permutation, comma-separated outputs")
	qft := flag.Int("qft", 0, "build a QFT on the given number of qubits")
	format := flag.String("format", "qasm", "output format: qasm or real")
	elementary := flag.Bool("elementary", true, "decompose MCT gates into {u, cx}")
	list := flag.Bool("list", false, "list named functions and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0)
		for name := range revlib.Tables() {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	c, err := buildCircuit(*fn, *permSpec, *qft)
	if err != nil {
		fatal(err)
	}
	if *elementary {
		if c, err = revlib.Decompose(c); err != nil {
			fatal(err)
		}
	}

	st := c.Statistics()
	fmt.Fprintf(os.Stderr, "qxsynth: %d qubits, %d gates (%d single-qubit, %d CNOT, %d MCT)\n",
		c.NumQubits(), c.Len(), st.SingleQubit, st.CNOT, st.MCT)

	var out string
	switch *format {
	case "qasm":
		out, err = qasm.Write(c)
	case "real":
		out, err = revlib.WriteReal(c)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

func buildCircuit(fn, permSpec string, qft int) (*circuit.Circuit, error) {
	set := 0
	for _, s := range []bool{fn != "", permSpec != "", qft > 0} {
		if s {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("specify exactly one of -fn, -perm, -qft")
	}
	switch {
	case qft > 0:
		return revlib.BuildQFT(qft).SetName(fmt.Sprintf("qft%d", qft)), nil
	case fn != "":
		tt, ok := revlib.Tables()[fn]
		if !ok {
			return nil, fmt.Errorf("unknown function %q (try -list)", fn)
		}
		return revlib.Synthesize(tt).SetName(fn), nil
	}
	parts := strings.Split(permSpec, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad permutation entry %q", p)
		}
		out[i] = v
	}
	n := 0
	for 1<<uint(n) < len(out) {
		n++
	}
	tt, err := revlib.NewTable(n, out)
	if err != nil {
		return nil, err
	}
	return revlib.Synthesize(tt).SetName("perm"), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qxsynth:", err)
	os.Exit(1)
}
