package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	qxmap "repro"
)

// smokeQASM is a 4-qubit circuit whose CNOTs form a complete interaction
// graph: its minimal cost on IBM QX4 is F = 14 (2 SWAPs), so responses can
// be asserted exactly. The same payload backs the CI service smoke test.
const smokeQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0],q[1];
cx q[2],q[3];
cx q[0],q[2];
cx q[1],q[3];
cx q[0],q[3];
cx q[1],q[2];
`

// bellQASM is a trivial 2-qubit circuit mappable at cost 0.
const bellQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
`

func newTestServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.close() })
	return s
}

// doJSON posts a JSON body and decodes the JSON response.
func doJSON(t *testing.T, s *server, method, path string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	resp := w.Result()
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode != http.StatusNoContent {
		// Errorf, not Fatalf: doJSON is also called from test goroutines.
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Errorf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp
}

// TestMapEndpointSuccess: a synchronous POST /v1/map returns the exact
// minimal cost, the layouts, the mapped QASM and per-stage stats.
func TestMapEndpointSuccess(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	var res qxmap.ResultJSON
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
		QASM: smokeQASM, Arch: "ibmqx4", Method: "exact", Engine: "dp",
	}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if res.Cost != 14 || res.Swaps != 2 || res.Switches != 0 {
		t.Errorf("cost = %d (%d swaps, %d switches), want F=14 (2 swaps)", res.Cost, res.Swaps, res.Switches)
	}
	if !res.Minimal {
		t.Error("exact result not flagged minimal")
	}
	if res.Method != "exact" || res.Engine != "dp" {
		t.Errorf("provenance = %s/%s", res.Method, res.Engine)
	}
	if !strings.Contains(res.QASM, "OPENQASM 2.0;") {
		t.Errorf("response QASM missing header: %q", res.QASM)
	}
	if len(res.InitialLayout) != 4 {
		t.Errorf("initial layout = %v", res.InitialLayout)
	}
	if res.Stats.Solver != "exact" {
		t.Errorf("stats solver = %q", res.Stats.Solver)
	}
}

// TestMapEndpointUnknownMethodAndArch: bad names return 400 and the error
// enumerates every valid name, exactly like the CLI flag errors.
func TestMapEndpointUnknownMethodAndArch(t *testing.T) {
	s := newTestServer(t, serverConfig{})

	var e errorBody
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{QASM: bellQASM, Arch: "ibmqx4", Method: "nope"}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown method: status = %d", resp.StatusCode)
	}
	for _, name := range qxmap.Methods() {
		if !strings.Contains(e.Error, name) {
			t.Errorf("method error %q does not list %q", e.Error, name)
		}
	}

	e = errorBody{}
	resp = doJSON(t, s, "POST", "/v1/map", mapRequest{QASM: bellQASM, Arch: "quantum9000"}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown arch: status = %d", resp.StatusCode)
	}
	for _, name := range qxmap.Architectures() {
		if !strings.Contains(e.Error, name) {
			t.Errorf("arch error %q does not list %q", e.Error, name)
		}
	}
}

// TestMapEndpointBadBody: malformed JSON and unknown fields are 400s.
func TestMapEndpointBadBody(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	for name, body := range map[string]string{
		"malformed":     `{"qasm": `,
		"unknown field": `{"qasm": "x", "arch": "ibmqx4", "wat": 1}`,
		"missing qasm":  `{"arch": "ibmqx4"}`,
		"missing arch":  fmt.Sprintf(`{"qasm": %q}`, bellQASM),
	} {
		req := httptest.NewRequest("POST", "/v1/map", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, w.Code)
		}
	}
}

// TestMapEndpointTimeout: an expired mapping deadline surfaces as 504.
func TestMapEndpointTimeout(t *testing.T) {
	s := newTestServer(t, serverConfig{reqTimeout: time.Nanosecond})
	var e errorBody
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{QASM: smokeQASM, Arch: "ibmqx4"}, &e)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (error %q)", resp.StatusCode, e.Error)
	}
}

// TestBatchEndpointFanOut: a mixed batch returns per-job outcomes in input
// order with fail-soft errors and correct aggregates.
func TestBatchEndpointFanOut(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	var report qxmap.BatchReportJSON
	resp := doJSON(t, s, "POST", "/v1/batch", batchRequest{
		Jobs: []mapRequest{
			{Name: "smoke", QASM: smokeQASM, Arch: "ibmqx4", Method: "exact", Engine: "dp"},
			{Name: "bell", QASM: bellQASM, Arch: "ibmqx4", Method: "exact", Engine: "dp"},
			{Name: "sabre", QASM: smokeQASM, Arch: "ibmqx4", Method: "sabre"},
			// Fail-soft member: 6 qubits cannot map onto a 5-qubit device.
			{Name: "toobig", QASM: "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[6];\ncx q[0],q[5];", Arch: "ibmqx4"},
		},
		Workers: 4,
	}, &report)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(report.Jobs) != 4 {
		t.Fatalf("got %d job reports", len(report.Jobs))
	}
	if report.Succeeded != 3 || report.Failed != 1 {
		t.Errorf("succeeded/failed = %d/%d, want 3/1", report.Succeeded, report.Failed)
	}
	if j := report.Jobs[0]; j.Name != "smoke" || j.Result == nil || j.Result.Cost != 14 {
		t.Errorf("job 0 = %+v, want smoke at F=14", j)
	}
	if j := report.Jobs[1]; j.Result == nil || j.Result.Cost != 0 {
		t.Errorf("job 1 (bell) should map at cost 0, got %+v", j)
	}
	if j := report.Jobs[2]; j.Result == nil || j.Result.Cost < 14 {
		t.Errorf("job 2 (sabre heuristic) cost %+v below exact minimum", j)
	}
	if j := report.Jobs[3]; j.Error == "" || j.Result != nil {
		t.Errorf("job 3 should fail softly, got %+v", j)
	}
	if want := report.Jobs[0].Result.Cost + report.Jobs[1].Result.Cost + report.Jobs[2].Result.Cost; report.TotalCost != want {
		t.Errorf("total cost = %d, want %d", report.TotalCost, want)
	}
}

// TestBatchEndpointValidation: empty batches and invalid members are 400s
// naming the offending job.
func TestBatchEndpointValidation(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	var e errorBody
	resp := doJSON(t, s, "POST", "/v1/batch", batchRequest{}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status = %d", resp.StatusCode)
	}

	e = errorBody{}
	resp = doJSON(t, s, "POST", "/v1/batch", batchRequest{
		Jobs: []mapRequest{
			{QASM: bellQASM, Arch: "ibmqx4"},
			{QASM: bellQASM, Arch: "nonsense"},
		},
	}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad member: status = %d", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "job 1") {
		t.Errorf("error %q does not name the offending job", e.Error)
	}

	// Per-job fields that only exist at the top level are rejected, not
	// silently dropped.
	for field, jobs := range map[string][]mapRequest{
		"async":        {{QASM: bellQASM, Arch: "ibmqx4", Async: true}},
		"timeout_ms":   {{QASM: bellQASM, Arch: "ibmqx4", TimeoutMS: 100}},
		"include_qasm": {{QASM: bellQASM, Arch: "ibmqx4", IncludeQASM: new(bool)}},
	} {
		e = errorBody{}
		resp = doJSON(t, s, "POST", "/v1/batch", batchRequest{Jobs: jobs}, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("member %s: status = %d, want 400", field, resp.StatusCode)
		}
		if !strings.Contains(e.Error, "job 0") {
			t.Errorf("member %s: error %q does not name the job", field, e.Error)
		}
	}
}

// TestAsyncJobEviction: finished job records beyond the retention cap are
// evicted oldest-first; newer records survive.
func TestAsyncJobEviction(t *testing.T) {
	s := newTestServer(t, serverConfig{maxJobs: 2})

	var ids []string
	for i := 0; i < 3; i++ {
		var created jobStatus
		resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
			QASM: bellQASM, Arch: "ibmqx4", Engine: "dp", Async: true,
		}, &created)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status = %d", i, resp.StatusCode)
		}
		ids = append(ids, created.JobID)
		// Finish each job before the next submission so eviction order is
		// deterministic (only done jobs are evicted).
		deadline := time.Now().Add(30 * time.Second)
		for {
			var st jobStatus
			doJSON(t, s, "GET", "/v1/jobs/"+created.JobID, nil, &st)
			if st.State == "done" {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s stuck", created.JobID)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if resp := doJSON(t, s, "GET", "/v1/jobs/"+ids[0], nil, &errorBody{}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest job %s: status = %d, want 404 (evicted)", ids[0], resp.StatusCode)
	}
	for _, id := range ids[1:] {
		var st jobStatus
		if resp := doJSON(t, s, "GET", "/v1/jobs/"+id, nil, &st); resp.StatusCode != http.StatusOK {
			t.Errorf("retained job %s: status = %d", id, resp.StatusCode)
		}
	}
}

// TestAsyncJobLifecycle: async submission returns 202 + a job id; polling
// reaches state "done" with the result; DELETE forgets the job.
func TestAsyncJobLifecycle(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	var created jobStatus
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
		QASM: smokeQASM, Arch: "ibmqx4", Method: "exact", Engine: "dp", Async: true,
	}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if created.JobID == "" {
		t.Fatal("no job id in 202 response")
	}

	deadline := time.Now().Add(30 * time.Second)
	var st jobStatus
	for {
		resp = doJSON(t, s, "GET", "/v1/jobs/"+created.JobID, nil, &st)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status = %d", resp.StatusCode)
		}
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Error != "" {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Result == nil || st.Result.Cost != 14 {
		t.Fatalf("job result = %+v, want F=14", st.Result)
	}
	if st.RunNS <= 0 {
		t.Errorf("run_ns = %d, want > 0", st.RunNS)
	}

	resp = doJSON(t, s, "DELETE", "/v1/jobs/"+created.JobID, nil, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	var e errorBody
	resp = doJSON(t, s, "GET", "/v1/jobs/"+created.JobID, nil, &e)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forgotten job status = %d, want 404", resp.StatusCode)
	}
}

// TestAsyncRequestValidationAndQASMOmission: timeout_ms is rejected on
// async submissions, and include_qasm:false set at submission is honored
// by every later poll of the finished job.
func TestAsyncRequestValidationAndQASMOmission(t *testing.T) {
	s := newTestServer(t, serverConfig{})

	var e errorBody
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
		QASM: bellQASM, Arch: "ibmqx4", Async: true, TimeoutMS: 100,
	}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async timeout_ms: status = %d, want 400", resp.StatusCode)
	}

	noQASM := false
	var created jobStatus
	resp = doJSON(t, s, "POST", "/v1/map", mapRequest{
		QASM: bellQASM, Arch: "ibmqx4", Engine: "dp", Async: true, IncludeQASM: &noQASM,
	}, &created)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	var st jobStatus
	for {
		doJSON(t, s, "GET", "/v1/jobs/"+created.JobID, nil, &st)
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Error != "" || st.Result == nil {
		t.Fatalf("job outcome: %+v", st)
	}
	if st.Result.QASM != "" {
		t.Errorf("poll response carries QASM despite include_qasm:false at submission")
	}
}

// TestJobsUnknownID: polling a never-issued id is a 404.
func TestJobsUnknownID(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	var e errorBody
	resp := doJSON(t, s, "GET", "/v1/jobs/job-999", nil, &e)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestListingsAndHealth: the discovery endpoints mirror the registries and
// healthz reports ok.
func TestListingsAndHealth(t *testing.T) {
	s := newTestServer(t, serverConfig{})

	var methods map[string][]string
	if resp := doJSON(t, s, "GET", "/v1/methods", nil, &methods); resp.StatusCode != http.StatusOK {
		t.Fatalf("methods status = %d", resp.StatusCode)
	}
	if want := qxmap.Methods(); !equalStrings(methods["methods"], want) {
		t.Errorf("methods = %v, want %v", methods["methods"], want)
	}

	var archs struct {
		Archs []archInfo `json:"archs"`
		Names []string   `json:"names"`
	}
	if resp := doJSON(t, s, "GET", "/v1/archs", nil, &archs); resp.StatusCode != http.StatusOK {
		t.Fatalf("archs status = %d", resp.StatusCode)
	}
	if want := qxmap.Architectures(); !equalStrings(archs.Names, want) {
		t.Errorf("names = %v, want %v", archs.Names, want)
	}
	if len(archs.Archs) != len(archs.Names) {
		t.Errorf("structured archs has %d entries, names %d", len(archs.Archs), len(archs.Names))
	}
	for _, ai := range archs.Archs {
		switch ai.Name {
		case "ibmqx4":
			if ai.Qubits != 5 || !ai.Directed || ai.Parameterized || ai.CostModel == "" {
				t.Errorf("ibmqx4 entry = %+v", ai)
			}
		case "heavyhex27":
			if ai.Qubits != 27 || ai.Directed || ai.Parameterized {
				t.Errorf("heavyhex27 entry = %+v", ai)
			}
		case "linear<m>":
			if !ai.Parameterized || ai.Qubits != 0 {
				t.Errorf("linear<m> entry = %+v", ai)
			}
		}
	}

	var health map[string]any
	if resp := doJSON(t, s, "GET", "/healthz", nil, &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
}

// TestConcurrentRequests hammers the handler from many goroutines — sync
// maps, batches, async jobs and listings at once — and checks every
// response. CI runs this under the race detector.
func TestConcurrentRequests(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	const perKind = 8
	var wg sync.WaitGroup

	wg.Add(perKind)
	for i := 0; i < perKind; i++ {
		go func() {
			defer wg.Done()
			var res qxmap.ResultJSON
			resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
				QASM: bellQASM, Arch: "ibmqx4", Method: "exact", Engine: "dp",
			}, &res)
			if resp.StatusCode != http.StatusOK || res.Cost != 0 {
				t.Errorf("concurrent map: status %d cost %d", resp.StatusCode, res.Cost)
			}
		}()
	}

	wg.Add(perKind)
	for i := 0; i < perKind; i++ {
		go func() {
			defer wg.Done()
			var report qxmap.BatchReportJSON
			resp := doJSON(t, s, "POST", "/v1/batch", batchRequest{
				Jobs: []mapRequest{
					{QASM: bellQASM, Arch: "ibmqx4", Engine: "dp"},
					{QASM: bellQASM, Arch: "ibmqx2", Engine: "dp"},
				},
			}, &report)
			if resp.StatusCode != http.StatusOK || report.Failed != 0 {
				t.Errorf("concurrent batch: status %d failed %d", resp.StatusCode, report.Failed)
			}
		}()
	}

	wg.Add(perKind)
	for i := 0; i < perKind; i++ {
		go func() {
			defer wg.Done()
			var created jobStatus
			resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
				QASM: bellQASM, Arch: "ibmqx4", Engine: "dp", Async: true,
			}, &created)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("concurrent async: status %d", resp.StatusCode)
				return
			}
			for {
				var st jobStatus
				doJSON(t, s, "GET", "/v1/jobs/"+created.JobID, nil, &st)
				if st.State == "done" {
					if st.Error != "" || st.Result == nil || st.Result.Cost != 0 {
						t.Errorf("concurrent async job: %+v", st)
					}
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	wg.Add(perKind)
	for i := 0; i < perKind; i++ {
		go func() {
			defer wg.Done()
			var health map[string]any
			if resp := doJSON(t, s, "GET", "/healthz", nil, &health); resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent healthz: status %d", resp.StatusCode)
			}
		}()
	}

	wg.Wait()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
