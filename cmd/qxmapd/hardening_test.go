package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	qxmap "repro"
)

// get performs a body-less GET and returns the raw response.
func get(t *testing.T, s *server, path string) *http.Response {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	resp := w.Result()
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestMetricsEndpoint: /metrics serves parseable Prometheus text whose
// counters move with traffic — the second identical map is a memory-tier
// hit, and with a store attached the store family appears.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, serverConfig{storeDir: t.TempDir()})
	for i := 0; i < 2; i++ {
		var res qxmap.ResultJSON
		if resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
			QASM: bellQASM, Arch: "ibmqx4", Engine: "dp",
		}, &res); resp.StatusCode != http.StatusOK {
			t.Fatalf("map %d: status %d", i, resp.StatusCode)
		}
	}

	resp := get(t, s, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{
		"qxmapd_cache_hits_total{tier=\"memory\"} 1",
		"qxmapd_cache_hits_total{tier=\"disk\"} 0",
		"qxmapd_maps_total 2",
		"qxmapd_map_errors_total 0",
		"qxmapd_rate_limited_total 0",
		"qxmapd_queue_capacity",
		"qxmapd_inflight_jobs 0",
		"qxmapd_store_records 1",
		"qxmapd_store_writes_total 1",
		"# TYPE qxmapd_maps_total counter",
		"# TYPE qxmapd_store_records gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestStatsEndpoint: /v1/stats reports both cache tiers, the cumulative
// totals and the scheduler gauges as JSON.
func TestStatsEndpoint(t *testing.T) {
	s := newTestServer(t, serverConfig{storeDir: t.TempDir()})
	var res qxmap.ResultJSON
	doJSON(t, s, "POST", "/v1/map", mapRequest{QASM: bellQASM, Arch: "ibmqx4", Engine: "dp"}, &res)

	var stats struct {
		Cache  map[string]any `json:"cache"`
		Store  map[string]any `json:"store"`
		Totals map[string]any `json:"totals"`
		Sched  map[string]any `json:"scheduler"`
	}
	if resp := doJSON(t, s, "GET", "/v1/stats", nil, &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats: status %d", resp.StatusCode)
	}
	if stats.Cache == nil || stats.Totals == nil || stats.Sched == nil {
		t.Fatalf("stats missing sections: %+v", stats)
	}
	if got := stats.Totals["maps"].(float64); got != 1 {
		t.Errorf("totals.maps = %v, want 1", got)
	}
	if got := stats.Store["records"].(float64); got != 1 {
		t.Errorf("store.records = %v, want 1", got)
	}
	if _, ok := stats.Sched["queue_capacity"]; !ok {
		t.Error("scheduler.queue_capacity missing")
	}

	// Without a store the section is absent, not zero-filled.
	s2 := newTestServer(t, serverConfig{})
	var bare map[string]any
	doJSON(t, s2, "GET", "/v1/stats", nil, &bare)
	if _, ok := bare["store"]; ok {
		t.Error("storeless /v1/stats has a store section")
	}
}

// TestTenantRateLimit: with a 1-token bucket and a slow refill, a tenant's
// second request is a 429 with Retry-After, while another tenant still has
// its own budget. Without an X-Tenant header requests share "default".
func TestTenantRateLimit(t *testing.T) {
	s := newTestServer(t, serverConfig{tenantRPS: 0.001, tenantBurst: 1})
	req := mapRequest{QASM: bellQASM, Arch: "ibmqx4", Engine: "dp"}

	do := func(tenant string) *http.Response {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/v1/map", strings.NewReader(mustJSON(t, req)))
		if tenant != "" {
			r.Header.Set("X-Tenant", tenant)
		}
		s.ServeHTTP(w, r)
		resp := w.Result()
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := do("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice #1: status %d", resp.StatusCode)
	}
	resp := do("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice #2: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want positive seconds", ra)
	}
	if resp := do("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob #1: status %d (tenants must not share buckets)", resp.StatusCode)
	}
	if resp := do(""); resp.StatusCode != http.StatusOK {
		t.Fatalf("default #1: status %d", resp.StatusCode)
	}
	if resp := do(""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("default #2: status %d, want 429", resp.StatusCode)
	}
	if got := s.rateLimited.Load(); got != 2 {
		t.Errorf("rateLimited counter = %d, want 2", got)
	}
}

// TestTenantQuotaBatchCost: a batch is charged one quota unit per job, so
// a 3-job batch against a 2-job quota is rejected outright and a 2-job
// batch consumes the window.
func TestTenantQuotaBatchCost(t *testing.T) {
	s := newTestServer(t, serverConfig{tenantQuota: 2, tenantWindow: time.Hour})
	job := mapRequest{QASM: bellQASM, Arch: "ibmqx4", Engine: "dp"}

	var body map[string]any
	resp := doJSON(t, s, "POST", "/v1/batch", batchRequest{Jobs: []mapRequest{job, job, job}}, &body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("3-job batch: status %d, want 429", resp.StatusCode)
	}
	var report qxmap.BatchReportJSON
	if resp := doJSON(t, s, "POST", "/v1/batch", batchRequest{Jobs: []mapRequest{job, job}}, &report); resp.StatusCode != http.StatusOK {
		t.Fatalf("2-job batch: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, s, "POST", "/v1/map", job, &body); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-quota map: status %d, want 429", resp.StatusCode)
	}
}

// TestTenantLimiterClock drives the limiter with an injected clock: the
// bucket refills with time, the quota window resets, and the Retry-After
// hint is long enough to succeed.
func TestTenantLimiterClock(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(1.0, 2, 3, 10*time.Second)
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ { // drain the burst
		if ok, _ := l.allow("t", 1); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, wait := l.allow("t", 1)
	if ok {
		t.Fatal("empty bucket admitted a request")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("bucket retry hint %v, want (0, 1s]", wait)
	}
	now = now.Add(wait)
	if ok, _ := l.allow("t", 1); !ok {
		t.Fatal("request rejected after the hinted wait")
	}
	// Quota: 3 of 3 used → the fourth waits for the window to lapse.
	now = now.Add(2 * time.Second) // bucket refilled
	ok, wait = l.allow("t", 1)
	if ok {
		t.Fatal("exhausted quota admitted a request")
	}
	now = now.Add(wait)
	if ok, _ := l.allow("t", 1); !ok {
		t.Fatal("request rejected after the quota window lapsed")
	}
	// Disabled limiter admits everything.
	off := newTenantLimiter(0, 0, 0, 0)
	if ok, _ := off.allow("t", 1_000_000); !ok {
		t.Fatal("disabled limiter rejected a request")
	}
}

// TestJobsListFiltering: GET /v1/jobs lists async jobs with exact-match
// filters on state, method, arch and tenant; an unknown state is a 400.
func TestJobsListFiltering(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	submit := func(name, method, tenant string) {
		w := httptest.NewRecorder()
		r := httptest.NewRequest("POST", "/v1/map", strings.NewReader(mustJSON(t, mapRequest{
			Name: name, QASM: bellQASM, Arch: "ibmqx4", Method: method, Engine: "dp", Async: true,
		})))
		if tenant != "" {
			r.Header.Set("X-Tenant", tenant)
		}
		s.ServeHTTP(w, r)
		if w.Code != http.StatusAccepted {
			t.Fatalf("submit %s: status %d", name, w.Code)
		}
	}
	submit("a", "exact", "alice")
	submit("b", "sabre", "alice")
	submit("c", "exact", "bob")

	// Wait for all three to finish so state filters are deterministic.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var done struct {
			Count int `json:"count"`
		}
		doJSON(t, s, "GET", "/v1/jobs?state=done", nil, &done)
		if done.Count == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not done: %d/3", done.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var list struct {
		Jobs  []jobSummary `json:"jobs"`
		Count int          `json:"count"`
	}
	doJSON(t, s, "GET", "/v1/jobs", nil, &list)
	if list.Count != 3 || len(list.Jobs) != 3 {
		t.Fatalf("unfiltered count = %d, want 3", list.Count)
	}
	if list.Jobs[0].Name != "a" || list.Jobs[0].Method != "exact" ||
		list.Jobs[0].Arch != "ibmqx4" || list.Jobs[0].Tenant != "alice" ||
		list.Jobs[0].Created == "" {
		t.Fatalf("first summary = %+v", list.Jobs[0])
	}

	doJSON(t, s, "GET", "/v1/jobs?method=exact", nil, &list)
	if list.Count != 2 {
		t.Errorf("method=exact count = %d, want 2", list.Count)
	}
	doJSON(t, s, "GET", "/v1/jobs?tenant=bob", nil, &list)
	if list.Count != 1 || list.Jobs[0].Name != "c" {
		t.Errorf("tenant=bob = %+v", list)
	}
	doJSON(t, s, "GET", "/v1/jobs?method=sabre&tenant=alice", nil, &list)
	if list.Count != 1 || list.Jobs[0].Name != "b" {
		t.Errorf("combined filter = %+v", list)
	}
	doJSON(t, s, "GET", "/v1/jobs?arch=ibmq16", nil, &list)
	if list.Count != 0 {
		t.Errorf("arch=ibmq16 count = %d, want 0", list.Count)
	}
	if resp := doJSON(t, s, "GET", "/v1/jobs?state=bogus", nil, &map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("state=bogus status %d, want 400", resp.StatusCode)
	}
}

// TestBodyLimitNamesFlag: a body beyond -max-body is a 413 whose JSON
// error names the limit and the flag.
func TestBodyLimitNamesFlag(t *testing.T) {
	s := newTestServer(t, serverConfig{maxBody: 256})
	big := mapRequest{QASM: bellQASM + strings.Repeat("// padding\n", 100), Arch: "ibmqx4"}
	var body struct {
		Error string `json:"error"`
	}
	resp := doJSON(t, s, "POST", "/v1/map", big, &body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(body.Error, "256-byte") || !strings.Contains(body.Error, "-max-body") {
		t.Fatalf("413 error %q does not name the limit", body.Error)
	}
}

// TestServerStoreRestart: the service-level restart contract — a second
// server process on the same store directory serves the first's solve from
// disk with zero SAT work and the identical cost.
func TestServerStoreRestart(t *testing.T) {
	dir := t.TempDir()
	req := mapRequest{QASM: smokeQASM, Arch: "ibmqx4"}

	s1, err := newServer(serverConfig{storeDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var first qxmap.ResultJSON
	if resp := doJSON(t, s1, "POST", "/v1/map", req, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("first map: status %d", resp.StatusCode)
	}
	if first.CacheHit || first.Cost != 14 {
		t.Fatalf("first map: hit=%v cost=%d, want fresh F=14", first.CacheHit, first.Cost)
	}
	if err := s1.close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, serverConfig{storeDir: dir})
	var second qxmap.ResultJSON
	if resp := doJSON(t, s2, "POST", "/v1/map", req, &second); resp.StatusCode != http.StatusOK {
		t.Fatalf("restart map: status %d", resp.StatusCode)
	}
	if !second.CacheHit || second.CacheTier != "disk" {
		t.Fatalf("restart map: hit=%v tier=%q, want disk hit", second.CacheHit, second.CacheTier)
	}
	if second.Cost != 14 || second.Stats.SATEncodes != 0 {
		t.Fatalf("restart map: cost=%d encodes=%d, want F=14 with zero encodes", second.Cost, second.Stats.SATEncodes)
	}
}

// mustJSON marshals a value for hand-built requests.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
