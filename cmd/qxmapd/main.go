// Command qxmapd serves the qxmap circuit mapper over HTTP/JSON: a
// production-style frontend to the instance-scoped Mapper client API with
// synchronous, batch and asynchronous (job-handle) mapping.
//
// Usage:
//
//	qxmapd [-addr :8080] [-workers 0] [-cache 0] [-portfolio] [-ladder]
//	       [-timeout 60s] [-max-body 8388608] [-lower-bound on|off]
//	       [-sat-threads 4] [-cost-model paper|swap=<n>,h=<n>]
//	       [-calibration cal.json] [-store /var/lib/qxmapd] [-store-sync]
//	       [-tenant-rps 0] [-tenant-burst 10]
//	       [-tenant-quota 0] [-tenant-quota-window 1m]
//
// Endpoints:
//
//	GET    /healthz        — liveness plus worker/cache/job gauges
//	GET    /metrics        — Prometheus text exposition (cache tiers,
//	                         store layout, queue depth, SAT work totals)
//	GET    /v1/methods     — mapping methods in registry order
//	GET    /v1/archs       — structured architecture entries (qubits,
//	                         directionality, cost-model summary) plus the
//	                         legacy name list under "names"
//	GET    /v1/stats       — cache/store/scheduler statistics as JSON
//	POST   /v1/map         — map one QASM circuit; {"async": true} returns
//	                         202 with a job id instead of blocking
//	POST   /v1/batch       — map a batch with fail-soft per-job outcomes
//	GET    /v1/jobs        — list async jobs; ?state=&method=&arch=&tenant=
//	                         filter exact-match
//	GET    /v1/jobs/{id}   — poll an async job (state, timings, result)
//	DELETE /v1/jobs/{id}   — cancel and forget an async job
//
// Responses reuse the stable JSON encodings of the qxmap package
// (ResultJSON, BatchReportJSON) — identical to cmd/qxmap -json output.
// The per-result stats block includes the §4.1 shared-instance fan-out
// counters (subsets_pruned, core_family_refutations, orbit_hits) alongside
// the SAT descent counters.
//
// With -store, exact results are persisted to a crash-safe append-only
// store under the given directory and served across restarts: a request
// whose instance was solved by an earlier process returns cache_hit=true,
// cache_tier="disk" and zero SAT work. The store never changes answers —
// records are CRC-checked and schema-versioned, and anything unreadable is
// re-solved.
//
// -cost-model/-calibration set the server's default weighted cost model:
// every request is solved and priced under it, and the effective
// non-default model is echoed in each result's cost_model field.
//
// The mutating endpoints are rate-limited per tenant (the X-Tenant header;
// requests without one share the "default" tenant): -tenant-rps/-tenant-burst
// shape a token bucket, -tenant-quota/-tenant-quota-window bound total jobs
// per fixed window, and a batch costs one unit per job. Rejections are 429
// with a Retry-After header. Both mechanisms default to off.
//
// Synchronous work is bounded by -timeout; bodies beyond -max-body return
// 413; shutdown on SIGINT/SIGTERM is graceful: the listener drains before
// the mapper, its async jobs and the store are stopped.
//
// Under -ladder (the default) a deadline-starved exact solve degrades to a
// valid, verified plan instead of timing out: the SAT descent's best
// incumbent when one exists (degradation "anytime", with bound_gap
// bracketing the optimum), a heuristic plan otherwise (degradation
// "heuristic"). Only when even that fails does the request return 504 —
// a structured body with degradation "none" and a retry_after_hint
// mirroring the Retry-After header, like the limiter's 429s. Every
// response carries an X-Request-ID; a handler panic is contained to a 500
// naming that id, counted in qxmapd_panics_total, and the process keeps
// serving. Degraded mappings are counted per rung in
// qxmapd_degraded_total{mode=...}.
//
// Example:
//
//	qxmapd -addr :8080 &
//	curl -s localhost:8080/v1/map -d '{
//	  "qasm": "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncx q[0],q[1];",
//	  "arch": "ibmqx4", "method": "exact", "engine": "dp"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	qxmap "repro"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "mapper concurrency bound (0 = one per core)")
	cacheSize := flag.Int("cache", 0, "portfolio cache capacity in entries (0 = library default)")
	portfolio := flag.Bool("portfolio", false, "enable portfolio solving by default (requests may override)")
	ladder := flag.Bool("ladder", true, "degrade deadline-starved exact solves to valid anytime/heuristic plans (degradation field) instead of failing with 504")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request mapping deadline (0 = none); expiry returns 504")
	maxBody := flag.Int64("max-body", 8<<20, "maximum request body size in bytes")
	maxJobs := flag.Int("max-jobs", 1024, "async job records retained for polling (oldest finished evicted beyond this)")
	lowerBound := flag.String("lower-bound", "on", "admissible lower-bound seeding of the SAT descent: on or off")
	satThreads := flag.Int("sat-threads", 1, "clause-sharing SAT portfolio width per solve (capped at GOMAXPROCS); >1 trades witness determinism for parallel speed")
	costModel := flag.String("cost-model", "", "default cost model: paper (default 7/4) or swap=<n>,h=<n> for uniform rescaling")
	calibration := flag.String("calibration", "", "calibration JSON file with per-edge weights or error rates (overrides -cost-model)")
	storeDir := flag.String("store", "", "directory of the persistent result store (empty = in-memory caching only)")
	storeSync := flag.Bool("store-sync", false, "fsync every store write (durability over throughput)")
	tenantRPS := flag.Float64("tenant-rps", 0, "sustained requests/second per tenant on the mutating endpoints (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 10, "token-bucket burst per tenant (with -tenant-rps)")
	tenantQuota := flag.Int("tenant-quota", 0, "jobs per tenant per quota window (0 = unlimited); a batch costs one per job")
	tenantWindow := flag.Duration("tenant-quota-window", time.Minute, "fixed window for -tenant-quota")
	flag.Parse()

	noLowerBound := false
	switch *lowerBound {
	case "on":
	case "off":
		noLowerBound = true
	default:
		fmt.Fprintf(os.Stderr, "qxmapd: -lower-bound must be on or off, got %q\n", *lowerBound)
		os.Exit(1)
	}

	var cm *qxmap.CostModel
	var cmErr error
	switch {
	case *calibration != "":
		cm, cmErr = qxmap.LoadCalibration(*calibration)
	case *costModel != "":
		cm, cmErr = qxmap.ParseCostModel(*costModel)
	}
	if cmErr != nil {
		fmt.Fprintln(os.Stderr, "qxmapd:", cmErr)
		os.Exit(1)
	}

	s, err := newServer(serverConfig{
		workers:      *workers,
		cacheSize:    *cacheSize,
		portfolio:    *portfolio,
		ladder:       *ladder,
		costModel:    cm,
		reqTimeout:   *timeout,
		maxBody:      *maxBody,
		maxJobs:      *maxJobs,
		noLowerBound: noLowerBound,
		satThreads:   *satThreads,
		storeDir:     *storeDir,
		storeSync:    *storeSync,
		tenantRPS:    *tenantRPS,
		tenantBurst:  *tenantBurst,
		tenantQuota:  *tenantQuota,
		tenantWindow: *tenantWindow,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qxmapd:", err)
		os.Exit(1)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("qxmapd listening on %s (workers=%d, timeout=%v)", *addr, s.mapper.Workers(), *timeout)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// The listener failed outright (e.g. address in use).
		log.Fatalf("qxmapd: %v", err)
	case <-ctx.Done():
	}

	log.Print("qxmapd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("qxmapd: shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("qxmapd: serve: %v", err)
	}
	if err := s.close(); err != nil {
		log.Printf("qxmapd: close: %v", err)
	}
}
