package main

import (
	"math"
	"sync"
	"time"
)

// tenantLimiter enforces per-tenant admission control for the mutating
// endpoints, keyed by the X-Tenant request header (requests without the
// header share the "default" tenant). Two independent mechanisms compose:
//
//   - a token bucket (rps sustained rate, burst capacity) that smooths
//     short-term spikes, and
//   - a fixed-window quota (quota jobs per window) that bounds total
//     consumption over a longer horizon.
//
// A request is admitted only when both agree; batch requests cost one
// token/quota unit per job. Either mechanism can be disabled independently
// (rps ≤ 0, quota ≤ 0); with both disabled the limiter admits everything
// and allocates no state.
type tenantLimiter struct {
	rps    float64
	burst  float64
	quota  int
	window time.Duration

	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	tenants map[string]*tenantState
}

// tenantState is one tenant's bucket fill and window consumption.
type tenantState struct {
	tokens      float64
	refilled    time.Time
	used        int
	windowStart time.Time
}

// maxTrackedTenants bounds the limiter's memory against X-Tenant
// cardinality attacks: past it, fully-recovered tenants are evicted (their
// state is indistinguishable from a fresh one, so eviction never grants
// extra budget).
const maxTrackedTenants = 4096

// newTenantLimiter builds a limiter; window defaults to one minute when a
// quota is set without one.
func newTenantLimiter(rps float64, burst, quota int, window time.Duration) *tenantLimiter {
	if burst < 1 {
		burst = 1
	}
	if window <= 0 {
		window = time.Minute
	}
	return &tenantLimiter{
		rps:     rps,
		burst:   float64(burst),
		quota:   quota,
		window:  window,
		now:     time.Now,
		tenants: make(map[string]*tenantState),
	}
}

// enabled reports whether any mechanism is active.
func (l *tenantLimiter) enabled() bool {
	return l != nil && (l.rps > 0 || l.quota > 0)
}

// allow charges the tenant cost units (one per job). On rejection it
// returns the duration after which a retry of the same cost can succeed —
// the Retry-After header value. A cost that can never be admitted (beyond
// burst and quota both) is reported as retryable after the quota window,
// the caller turns it into a 429 either way.
func (l *tenantLimiter) allow(tenant string, cost int) (bool, time.Duration) {
	if !l.enabled() {
		return true, 0
	}
	if cost < 1 {
		cost = 1
	}
	now := l.now()

	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.tenants[tenant]
	if !ok {
		if len(l.tenants) >= maxTrackedTenants {
			l.evictRecoveredLocked(now)
		}
		st = &tenantState{tokens: l.burst, refilled: now, windowStart: now}
		l.tenants[tenant] = st
	}

	var wait time.Duration
	if l.rps > 0 {
		st.tokens = math.Min(l.burst, st.tokens+now.Sub(st.refilled).Seconds()*l.rps)
		st.refilled = now
		if st.tokens < float64(cost) {
			need := float64(cost)
			if need > l.burst {
				need = l.burst // a cost beyond burst: the bucket's best case
			}
			wait = time.Duration((need - st.tokens) / l.rps * float64(time.Second))
		}
	}
	if l.quota > 0 {
		if elapsed := now.Sub(st.windowStart); elapsed >= l.window {
			st.used = 0
			st.windowStart = now
		}
		if st.used+cost > l.quota {
			// Admission needs the next window, however the bucket looks.
			windowWait := st.windowStart.Add(l.window).Sub(now)
			if windowWait > wait {
				wait = windowWait
			}
		}
	}
	if wait > 0 {
		return false, wait
	}
	if l.rps > 0 {
		st.tokens -= float64(cost)
	}
	if l.quota > 0 {
		st.used += cost
	}
	return true, 0
}

// evictRecoveredLocked drops tenants whose bucket is full and whose quota
// window has lapsed — admitting them later from scratch is equivalent.
func (l *tenantLimiter) evictRecoveredLocked(now time.Time) {
	for name, st := range l.tenants {
		fullBucket := l.rps <= 0 || st.tokens+now.Sub(st.refilled).Seconds()*l.rps >= l.burst
		lapsedWindow := l.quota <= 0 || now.Sub(st.windowStart) >= l.window
		if fullBucket && lapsedWindow {
			delete(l.tenants, name)
		}
	}
}
