package main

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (version 0.0.4), hand-emitted — the repository takes no
// third-party dependencies. Counters are cumulative since process start;
// gauges are point-in-time. The store_* family is only emitted when a
// persistent store is attached (-store), so dashboards can key "disk tier
// present" off metric existence.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.mapper.CacheStats()
	tot := s.mapper.Totals()
	qs := s.mapper.QueueStats()
	s.jobMu.RLock()
	tracked := len(s.jobs)
	s.jobMu.RUnlock()

	var b strings.Builder
	counter := func(name, help string, v any, labels string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s%s %v\n", name, help, name, name, labels, v)
	}
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}

	fmt.Fprintf(&b, "# HELP qxmapd_cache_hits_total Mapping requests answered from the result cache, by tier.\n")
	fmt.Fprintf(&b, "# TYPE qxmapd_cache_hits_total counter\n")
	fmt.Fprintf(&b, "qxmapd_cache_hits_total{tier=\"memory\"} %d\n", tot.MemoryHits)
	fmt.Fprintf(&b, "qxmapd_cache_hits_total{tier=\"disk\"} %d\n", tot.DiskHits)

	counter("qxmapd_maps_total", "Pipeline trips completed (successful or failed).", tot.Maps, "")
	counter("qxmapd_map_errors_total", "Pipeline trips that returned an error.", tot.Errors, "")
	counter("qxmapd_sat_solves_total", "CDCL solver invocations across all solves.", tot.SATSolves, "")
	counter("qxmapd_sat_encodes_total", "CNF encodings across all solves.", tot.SATEncodes, "")
	counter("qxmapd_sat_conflicts_total", "CDCL conflicts across all solves.", tot.SATConflicts, "")
	counter("qxmapd_bound_probes_total", "Cost-bound probes across all SAT descents.", tot.BoundProbes, "")
	counter("qxmapd_rate_limited_total", "Requests rejected with 429 by the per-tenant limiter.", s.rateLimited.Load(), "")
	counter("qxmapd_panics_total", "Handler panics contained by the request recover boundary.", s.panics.Load(), "")

	fmt.Fprintf(&b, "# HELP qxmapd_degraded_total Mappings served by a degradation-ladder rung instead of a full exact solve, by rung.\n")
	fmt.Fprintf(&b, "# TYPE qxmapd_degraded_total counter\n")
	fmt.Fprintf(&b, "qxmapd_degraded_total{mode=\"anytime\"} %d\n", tot.DegradedAnytime)
	fmt.Fprintf(&b, "qxmapd_degraded_total{mode=\"heuristic\"} %d\n", tot.DegradedHeuristic)

	gauge("qxmapd_queue_depth", "Async jobs waiting in the scheduler queue.", qs.Depth)
	gauge("qxmapd_queue_capacity", "Scheduler queue capacity.", qs.Capacity)
	gauge("qxmapd_inflight_jobs", "Mapping pipelines executing right now.", qs.InFlight)
	gauge("qxmapd_workers", "Scheduler worker-pool bound.", qs.Workers)
	gauge("qxmapd_tracked_jobs", "Async job records retained for polling.", tracked)
	gauge("qxmapd_cache_entries", "Entries in the in-memory result cache.", cs.Entries)
	gauge("qxmapd_uptime_seconds", "Seconds since process start.", int64(time.Since(s.started)/time.Second))

	if cs.DiskEnabled {
		counter("qxmapd_store_hits_total", "Persistent-store lookups that found a record.", cs.DiskHits, "")
		counter("qxmapd_store_misses_total", "Persistent-store lookups that fell through to a solve.", cs.DiskMisses, "")
		counter("qxmapd_store_writes_total", "Results written through to the persistent store.", cs.DiskWrites, "")
		counter("qxmapd_store_compactions_total", "Completed store compaction passes.", cs.DiskCompactions, "")
		gauge("qxmapd_store_records", "Live records in the persistent store.", cs.DiskRecords)
		gauge("qxmapd_store_segments", "Log segments backing the persistent store.", cs.DiskSegments)
		gauge("qxmapd_store_live_bytes", "Bytes held by live store records.", cs.DiskLiveBytes)
		gauge("qxmapd_store_dead_bytes", "Reclaimable bytes from overwritten store records.", cs.DiskDeadBytes)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
