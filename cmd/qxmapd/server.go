package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	qxmap "repro"
)

// serverConfig tunes one qxmapd instance.
type serverConfig struct {
	// workers bounds the mapper's concurrency (0 = one per core).
	workers int
	// cacheSize bounds the portfolio cache (0 = library default).
	cacheSize int
	// portfolio enables portfolio solving by default (requests may still
	// override per call).
	portfolio bool
	// ladder enables the degradation ladder (-ladder, default on): exact
	// solves that hit the request deadline degrade to a valid anytime or
	// heuristic plan (reported in the result's degradation field) instead
	// of failing with 504.
	ladder bool
	// costModel, when non-nil, makes every request optimize the weighted
	// objective instead of the paper's uniform 7/4 one (-cost-model /
	// -calibration).
	costModel *qxmap.CostModel
	// reqTimeout bounds each synchronous request's mapping work; a request
	// may ask for less via timeout_ms but never for more. Expiry returns
	// 504 Gateway Timeout. 0 disables the bound.
	reqTimeout time.Duration
	// maxBody caps request body size in bytes (default 8 MiB).
	maxBody int64
	// maxJobs caps the async job records retained for polling (default
	// 1024): when exceeded, the oldest finished jobs are evicted. Queued
	// and running jobs are never evicted (they are bounded by the
	// scheduler's queue depth plus the worker count).
	maxJobs int
	// satThreads configures the SAT engine's clause-sharing portfolio
	// width for every solve (-sat-threads; ≤ 1 = single solver).
	satThreads int
	// noLowerBound disables the SAT engine's admissible lower-bound
	// seeding for every request served by this instance (the
	// -lower-bound=off escape hatch).
	noLowerBound bool
	// storeDir, when non-empty, attaches a persistent result store at
	// that directory (-store): exact results survive restarts and the
	// disk tier serves identical instances across processes. storeSync
	// additionally fsyncs every store write (-store-sync).
	storeDir  string
	storeSync bool
	// tenantRPS/tenantBurst rate-limit the mutating endpoints per
	// X-Tenant header with a token bucket (0 rps disables);
	// tenantQuota/tenantWindow bound total jobs per tenant per fixed
	// window (0 quota disables). Rejections are 429 with Retry-After.
	tenantRPS    float64
	tenantBurst  int
	tenantQuota  int
	tenantWindow time.Duration
}

// server is the qxmapd HTTP handler: a thin JSON shell over an
// instance-scoped qxmap.Mapper. Synchronous requests run on the request
// context; asynchronous jobs (async: true) run on the server's lifetime
// context through the mapper's bounded scheduler and are polled via
// GET /v1/jobs/{id}.
type server struct {
	cfg    serverConfig
	mapper *qxmap.Mapper
	mux    *http.ServeMux

	baseCtx    context.Context // async job lifetime: the server's, not the request's
	baseCancel context.CancelFunc

	jobMu   sync.RWMutex
	jobs    map[string]trackedJob
	jobIDs  []string // insertion order, for oldest-finished eviction
	nextJob atomic.Uint64

	// nextReq numbers every request for the X-Request-ID header; panics
	// counts handler panics contained by the ServeHTTP recover boundary.
	nextReq atomic.Uint64
	panics  atomic.Uint64

	limiter     *tenantLimiter
	rateLimited atomic.Uint64

	started time.Time
}

// newServer builds the handler and its dedicated Mapper.
func newServer(cfg serverConfig) (*server, error) {
	if cfg.maxBody <= 0 {
		cfg.maxBody = 8 << 20
	}
	if cfg.maxJobs <= 0 {
		cfg.maxJobs = 1024
	}
	mopts := []qxmap.Option{
		qxmap.WithWorkers(cfg.workers),
		qxmap.WithCacheSize(cfg.cacheSize),
		qxmap.WithPortfolio(cfg.portfolio),
		qxmap.WithLadder(cfg.ladder),
		qxmap.WithCostModel(cfg.costModel),
		qxmap.WithLowerBound(!cfg.noLowerBound),
		qxmap.WithSATThreads(cfg.satThreads),
		// Bounds async jobs too: the mapper applies this at run start to
		// any job context that carries no deadline of its own, so a stuck
		// solve cannot pin a scheduler worker forever. Synchronous
		// requests already carry the request deadline and are unaffected.
		qxmap.WithDefaultTimeout(cfg.reqTimeout),
	}
	if cfg.storeDir != "" {
		mopts = append(mopts, qxmap.WithStore(cfg.storeDir), qxmap.WithStoreSync(cfg.storeSync))
	}
	m, err := qxmap.NewMapper(mopts...)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &server{
		cfg:        cfg,
		mapper:     m,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]trackedJob),
		limiter:    newTenantLimiter(cfg.tenantRPS, cfg.tenantBurst, cfg.tenantQuota, cfg.tenantWindow),
		started:    time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/methods", s.handleMethods)
	mux.HandleFunc("GET /v1/archs", s.handleArchs)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/map", s.handleMap)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux = mux
	return s, nil
}

// ServeHTTP stamps every request with an X-Request-ID and contains handler
// panics: a panicking handler yields a 500 naming the request id (for log
// correlation) while the process keeps serving. The mapping pipeline has
// its own recover boundaries, so this one only catches what slips past
// them — if the handler already streamed part of a response the 500 body
// may append to it, which is the best any post-hoc boundary can do.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := fmt.Sprintf("req-%d", s.nextReq.Add(1))
	w.Header().Set("X-Request-ID", id)
	defer func() {
		if rec := recover(); rec != nil {
			s.panics.Add(1)
			log.Printf("qxmapd: %s: panic serving %s %s: %v", id, r.Method, r.URL.Path, rec)
			s.writeJSON(w, http.StatusInternalServerError, errorBody{
				Error:     fmt.Sprintf("internal error: the request handler panicked (%v)", rec),
				RequestID: id,
			})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// close stops async jobs and the underlying mapper. Called after the HTTP
// listener has drained.
func (s *server) close() error {
	s.baseCancel()
	return s.mapper.Close()
}

// mapRequest is the JSON body of POST /v1/map and of each element of a
// batch request's jobs array. Method, engine and portfolio default to the
// server's configuration when omitted.
type mapRequest struct {
	Name          string  `json:"name,omitempty"`
	QASM          string  `json:"qasm"`
	Arch          string  `json:"arch"`
	Method        string  `json:"method,omitempty"`
	Engine        string  `json:"engine,omitempty"`
	Portfolio     *bool   `json:"portfolio,omitempty"`
	Optimize      bool    `json:"optimize,omitempty"`
	SkipVerify    bool    `json:"skip_verify,omitempty"`
	Runs          int     `json:"runs,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Lookahead     float64 `json:"lookahead,omitempty"`
	InitialLayout []int   `json:"initial_layout,omitempty"`
	// TimeoutMS lowers the server's request timeout for this call.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async (map endpoint only) submits the job to the mapper's scheduler
	// and returns 202 with a job id for GET /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
	// IncludeQASM controls whether the mapped circuit is rendered into the
	// response (default true).
	IncludeQASM *bool `json:"include_qasm,omitempty"`
}

// batchRequest is the JSON body of POST /v1/batch.
type batchRequest struct {
	Jobs         []mapRequest `json:"jobs"`
	Workers      int          `json:"workers,omitempty"`
	JobTimeoutMS int64        `json:"job_timeout_ms,omitempty"`
	IncludeQASM  *bool        `json:"include_qasm,omitempty"`
}

// trackedJob pairs an async job handle with the presentation options and
// the request facts it was submitted with, so GET /v1/jobs can list and
// filter without reaching into the handle's options.
type trackedJob struct {
	h           *qxmap.JobHandle
	includeQASM bool
	name        string
	method      string
	arch        string
	tenant      string
	created     time.Time
}

// jobStatus is the JSON body of GET /v1/jobs/{id} and of 202 responses.
type jobStatus struct {
	JobID    string            `json:"job_id"`
	State    string            `json:"state"`
	QueuedNS int64             `json:"queued_ns"`
	RunNS    int64             `json:"run_ns"`
	Result   *qxmap.ResultJSON `json:"result,omitempty"`
	Error    string            `json:"error,omitempty"`
}

// errorBody is the JSON shape of every non-2xx response. 504s carry the
// degradation fields ("none" means no ladder rung could soften the
// timeout) and a retry hint mirroring the Retry-After header; 500s from
// the panic boundary carry the request id.
type errorBody struct {
	Error          string `json:"error"`
	RequestID      string `json:"request_id,omitempty"`
	Degradation    string `json:"degradation,omitempty"`
	RetryAfterHint int64  `json:"retry_after_hint,omitempty"`
}

func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

func (s *server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error()})
}

// decodeBody strictly decodes one JSON value, bounding the body size.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("bad request body: trailing data after JSON value")
	}
	return nil
}

// writeDecodeError maps a decodeBody failure to its HTTP status: 413 when
// the body blew the -max-body limit (with a message naming the limit, so
// clients know which knob to ask about), 400 for everything else.
func (s *server) writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds the server's %d-byte limit (-max-body)", s.cfg.maxBody))
		return
	}
	s.writeError(w, http.StatusBadRequest, err)
}

// tenantOf resolves the request's tenant: the X-Tenant header, or
// "default" for requests that carry none (they all share one budget).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// admit charges the request's tenant cost units against the rate limiter.
// On rejection it writes the 429 itself — with Retry-After in whole
// seconds (rounded up, minimum 1, as the header cannot express fractions)
// — and returns false.
func (s *server) admit(w http.ResponseWriter, r *http.Request, cost int) bool {
	tenant := tenantOf(r)
	ok, wait := s.limiter.allow(tenant, cost)
	if ok {
		return true
	}
	s.rateLimited.Add(1)
	secs := int64((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	s.writeError(w, http.StatusTooManyRequests,
		fmt.Errorf("tenant %q exceeded its request budget; retry after %ds", tenant, secs))
	return false
}

// buildJob validates one mapRequest into a qxmap.Job. Unknown method or
// architecture names fail with the registry errors, which enumerate every
// valid name.
func (s *server) buildJob(req mapRequest) (qxmap.Job, error) {
	if req.QASM == "" {
		return qxmap.Job{}, errors.New("missing \"qasm\" field")
	}
	if req.Arch == "" {
		return qxmap.Job{}, fmt.Errorf("missing \"arch\" field (valid: %s)", strings.Join(qxmap.Architectures(), ", "))
	}
	a, err := qxmap.ArchByName(req.Arch)
	if err != nil {
		return qxmap.Job{}, err
	}
	c, err := qxmap.ParseQASM(req.QASM)
	if err != nil {
		return qxmap.Job{}, err
	}
	opts := s.mapper.Options()
	if req.Method != "" {
		if opts.Method, err = qxmap.ParseMethod(req.Method); err != nil {
			return qxmap.Job{}, err
		}
	}
	if req.Engine != "" {
		if opts.Engine, err = qxmap.ParseEngine(req.Engine); err != nil {
			return qxmap.Job{}, err
		}
	}
	if req.Portfolio != nil {
		opts.Portfolio = *req.Portfolio
	}
	if req.Optimize {
		opts.Optimize = true
	}
	if req.SkipVerify {
		opts.SkipVerify = true
	}
	if req.Runs > 0 {
		opts.HeuristicRuns = req.Runs
	}
	if req.Seed != 0 {
		opts.Seed = req.Seed
	}
	if req.Lookahead != 0 {
		opts.Lookahead = req.Lookahead
	}
	if req.InitialLayout != nil {
		opts.InitialLayout = req.InitialLayout
	}
	return qxmap.Job{Name: req.Name, Circuit: c, Arch: a, Opts: opts}, nil
}

// requestTimeout resolves the effective deadline of one synchronous call:
// the server's bound, lowered (never raised) by the request's timeout_ms.
func (s *server) requestTimeout(ms int64) time.Duration {
	d := s.cfg.reqTimeout
	if ms > 0 {
		req := time.Duration(ms) * time.Millisecond
		if d == 0 || req < d {
			d = req
		}
	}
	return d
}

// mapStatus translates a mapping failure into an HTTP status: timeouts map
// to 504 Gateway Timeout, cancellation (shutdown, client gone) to 503, and
// everything else — invalid instances, unsatisfiable constraints — to 422.
func mapStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, qxmap.ErrMapperClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// retryAfterSecs suggests when a timed-out request is worth retrying: half
// the server's request budget, clamped to [1s, 60s]. Whole seconds because
// the Retry-After header cannot express fractions.
func (s *server) retryAfterSecs() int64 {
	secs := int64(s.cfg.reqTimeout / (2 * time.Second))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// writeMapError renders a synchronous mapping failure. Timeouts become the
// structured 504 shape — degradation "none" (with the ladder on, a timeout
// reaching this path means even the heuristic rung produced nothing) plus
// a Retry-After header mirrored in retry_after_hint — so clients never
// have to parse error prose to schedule a retry.
func (s *server) writeMapError(w http.ResponseWriter, err error) {
	status := mapStatus(err)
	body := errorBody{Error: err.Error()}
	if status == http.StatusGatewayTimeout {
		secs := s.retryAfterSecs()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		body.Degradation = "none"
		body.RetryAfterHint = secs
	}
	s.writeJSON(w, status, body)
}

func (s *server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req mapRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if !s.admit(w, r, 1) {
		return
	}
	job, err := s.buildJob(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}

	if req.Async {
		if req.TimeoutMS != 0 {
			// An async job's clock starts when it leaves the queue, so a
			// request-scoped timeout_ms cannot be honored; jobs are bounded
			// by the server's -timeout instead. Reject rather than drop.
			s.writeError(w, http.StatusBadRequest,
				errors.New("timeout_ms is not valid with async: true (async jobs are bounded by the server's -timeout)"))
			return
		}
		// TrySubmit on the server's lifetime context: the job must outlive
		// this request, and a full scheduler queue is a retryable 503
		// rather than a handler parked on the queue.
		h, err := s.mapper.TrySubmit(s.baseCtx, job)
		if err != nil {
			s.writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		id := fmt.Sprintf("job-%d", s.nextJob.Add(1))
		s.trackJob(id, trackedJob{
			h:           h,
			includeQASM: req.IncludeQASM == nil || *req.IncludeQASM,
			name:        req.Name,
			method:      job.Opts.Method.String(),
			arch:        req.Arch,
			tenant:      tenantOf(r),
			created:     time.Now(),
		})
		s.writeJSON(w, http.StatusAccepted, jobStatus{JobID: id, State: h.Stats().State.String()})
		return
	}

	ctx := r.Context()
	if d := s.requestTimeout(req.TimeoutMS); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	res, err := s.mapper.MapWith(ctx, job.Circuit, job.Arch, job.Opts)
	if err != nil {
		s.writeMapError(w, err)
		return
	}
	body, err := res.JSON(req.IncludeQASM == nil || *req.IncludeQASM)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeDecodeError(w, err)
		return
	}
	if len(req.Jobs) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch: the \"jobs\" array is required"))
		return
	}
	// A batch consumes one budget unit per job, so splitting work across
	// batch requests and fanning it out inside one are charged the same.
	if !s.admit(w, r, len(req.Jobs)) {
		return
	}
	jobs := make([]qxmap.Job, len(req.Jobs))
	for i, jr := range req.Jobs {
		// Reject per-job fields that only make sense at the top level
		// instead of silently discarding them.
		if jr.Async {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: async jobs are not valid inside a batch", i))
			return
		}
		if jr.TimeoutMS != 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: timeout_ms is not valid inside a batch; use the top-level job_timeout_ms", i))
			return
		}
		if jr.IncludeQASM != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: include_qasm is not valid inside a batch; use the top-level include_qasm", i))
			return
		}
		job, err := s.buildJob(jr)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return
		}
		jobs[i] = job
	}

	ctx := r.Context()
	if s.cfg.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.reqTimeout)
		defer cancel()
	}
	results := s.mapper.MapBatch(ctx, jobs, qxmap.BatchOptions{
		Workers:    req.Workers,
		JobTimeout: time.Duration(req.JobTimeoutMS) * time.Millisecond,
	})
	report, err := qxmap.BatchReport(results, req.IncludeQASM == nil || *req.IncludeQASM)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, report)
}

// trackJob records a job for polling, evicting the oldest finished
// records once the retention cap is exceeded. Unfinished jobs are kept
// regardless (their count is bounded by the scheduler).
func (s *server) trackJob(id string, tj trackedJob) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.jobs[id] = tj
	s.jobIDs = append(s.jobIDs, id)
	// Compact ids orphaned by DELETE /v1/jobs/{id}, which shrinks the map
	// without touching the order slice.
	if len(s.jobIDs) > 2*s.cfg.maxJobs {
		kept := s.jobIDs[:0]
		for _, old := range s.jobIDs {
			if _, ok := s.jobs[old]; ok {
				kept = append(kept, old)
			}
		}
		s.jobIDs = kept
	}
	if len(s.jobs) <= s.cfg.maxJobs {
		return
	}
	kept := s.jobIDs[:0]
	for _, old := range s.jobIDs {
		otj, ok := s.jobs[old]
		if !ok {
			continue // already deleted via DELETE /v1/jobs/{id}
		}
		if len(s.jobs) > s.cfg.maxJobs && otj.h.Stats().State == qxmap.JobDone {
			delete(s.jobs, old)
			continue
		}
		kept = append(kept, old)
	}
	s.jobIDs = kept
}

func (s *server) lookupJob(id string) (trackedJob, bool) {
	s.jobMu.RLock()
	defer s.jobMu.RUnlock()
	tj, ok := s.jobs[id]
	return tj, ok
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tj, ok := s.lookupJob(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job id %q", id))
		return
	}
	st := tj.h.Stats()
	body := jobStatus{
		JobID:    id,
		State:    st.State.String(),
		QueuedNS: st.Queued.Nanoseconds(),
		RunNS:    st.Run.Nanoseconds(),
	}
	if st.State == qxmap.JobDone {
		res, err := tj.h.Wait(r.Context()) // immediate: the job is done
		switch {
		case err != nil:
			body.Error = err.Error()
		default:
			if body.Result, err = res.JSON(tj.includeQASM); err != nil {
				s.writeError(w, http.StatusInternalServerError, err)
				return
			}
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

// jobSummary is one row of GET /v1/jobs.
type jobSummary struct {
	JobID    string `json:"job_id"`
	Name     string `json:"name,omitempty"`
	State    string `json:"state"`
	Method   string `json:"method"`
	Arch     string `json:"arch"`
	Tenant   string `json:"tenant"`
	Created  string `json:"created"`
	QueuedNS int64  `json:"queued_ns"`
	RunNS    int64  `json:"run_ns"`
}

// handleJobsList serves GET /v1/jobs?state=&method=&arch=&tenant=: every
// tracked async job in submission order, optionally filtered. Filters are
// exact-match; an unknown state value is a 400 (silently matching nothing
// would read as "no such jobs").
func (s *server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state, method, archName, tenant := q.Get("state"), q.Get("method"), q.Get("arch"), q.Get("tenant")
	switch state {
	case "", "queued", "running", "done":
	default:
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown state filter %q (valid: queued, running, done)", state))
		return
	}

	s.jobMu.RLock()
	ids := make([]string, len(s.jobIDs))
	copy(ids, s.jobIDs)
	jobs := make(map[string]trackedJob, len(s.jobs))
	for id, tj := range s.jobs {
		jobs[id] = tj
	}
	s.jobMu.RUnlock()

	list := make([]jobSummary, 0, len(jobs))
	for _, id := range ids {
		tj, ok := jobs[id]
		if !ok {
			continue // deleted; its id lingers in the order slice
		}
		st := tj.h.Stats()
		if (state != "" && st.State.String() != state) ||
			(method != "" && tj.method != method) ||
			(archName != "" && tj.arch != archName) ||
			(tenant != "" && tj.tenant != tenant) {
			continue
		}
		list = append(list, jobSummary{
			JobID:    id,
			Name:     tj.name,
			State:    st.State.String(),
			Method:   tj.method,
			Arch:     tj.arch,
			Tenant:   tj.tenant,
			Created:  tj.created.UTC().Format(time.RFC3339Nano),
			QueuedNS: st.Queued.Nanoseconds(),
			RunNS:    st.Run.Nanoseconds(),
		})
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"jobs": list, "count": len(list)})
}

// handleStats serves GET /v1/stats: the mapper's two-tier cache counters,
// cumulative pipeline totals, scheduler load and job tracking — the JSON
// face of the same numbers /metrics exposes for scrapers.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	cs := s.mapper.CacheStats()
	tot := s.mapper.Totals()
	qs := s.mapper.QueueStats()
	s.jobMu.RLock()
	tracked := len(s.jobs)
	s.jobMu.RUnlock()

	cache := map[string]any{
		"hits":    cs.Hits,
		"misses":  cs.Misses,
		"entries": cs.Entries,
	}
	body := map[string]any{
		"uptime_ns": time.Since(s.started).Nanoseconds(),
		"cache":     cache,
		"totals": map[string]any{
			"maps":               tot.Maps,
			"errors":             tot.Errors,
			"memory_hits":        tot.MemoryHits,
			"disk_hits":          tot.DiskHits,
			"sat_solves":         tot.SATSolves,
			"sat_encodes":        tot.SATEncodes,
			"sat_conflicts":      tot.SATConflicts,
			"bound_probes":       tot.BoundProbes,
			"rate_limited":       s.rateLimited.Load(),
			"degraded_anytime":   tot.DegradedAnytime,
			"degraded_heuristic": tot.DegradedHeuristic,
			"panics":             s.panics.Load(),
		},
		"scheduler": map[string]any{
			"queue_depth":    qs.Depth,
			"queue_capacity": qs.Capacity,
			"workers":        qs.Workers,
			"in_flight":      qs.InFlight,
			"tracked_jobs":   tracked,
		},
	}
	if cs.DiskEnabled {
		body["store"] = map[string]any{
			"hits":        cs.DiskHits,
			"misses":      cs.DiskMisses,
			"writes":      cs.DiskWrites,
			"records":     cs.DiskRecords,
			"segments":    cs.DiskSegments,
			"live_bytes":  cs.DiskLiveBytes,
			"dead_bytes":  cs.DiskDeadBytes,
			"compactions": cs.DiskCompactions,
		}
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tj, ok := s.lookupJob(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown job id %q", id))
		return
	}
	tj.h.Cancel()
	s.jobMu.Lock()
	delete(s.jobs, id)
	s.jobMu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleMethods(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string][]string{"methods": qxmap.Methods()})
}

// archInfo is one structured /v1/archs catalog entry. Parameterized
// families ("linear<m>", "ring<m>", "grid<r>x<c>") carry only their
// placeholder name; concrete devices report their size, coupling shape and
// default cost-model summary.
type archInfo struct {
	Name          string `json:"name"`
	Parameterized bool   `json:"parameterized,omitempty"`
	Qubits        int    `json:"qubits,omitempty"`
	Pairs         int    `json:"pairs,omitempty"`
	// Directed reports whether some coupling is one-directional (CNOT
	// reversal there costs H gates in every cost model).
	Directed  bool   `json:"directed,omitempty"`
	CostModel string `json:"cost_model,omitempty"`
}

func (s *server) handleArchs(w http.ResponseWriter, r *http.Request) {
	names := qxmap.Architectures()
	// Requests are solved under the server's default cost model (the
	// -cost-model/-calibration flags) unless a per-request model overrides
	// it, so that is the summary each entry reports.
	defaultCM := s.mapper.Options().CostModel
	infos := make([]archInfo, 0, len(names))
	for _, n := range names {
		info := archInfo{Name: n}
		if a, err := qxmap.ArchByName(n); err == nil {
			info.Qubits = a.NumQubits()
			info.Pairs = len(a.Pairs())
			for _, p := range a.Pairs() {
				if !a.Allows(p.Target, p.Control) {
					info.Directed = true
					break
				}
			}
			cm := defaultCM
			if cm == nil {
				cm = a.Cost()
			}
			info.CostModel = cm.Summary()
		} else {
			// Placeholder spellings don't resolve to a device.
			info.Parameterized = true
		}
		infos = append(infos, info)
	}
	// "names" keeps the original flat list for existing clients; "archs"
	// carries the structured catalog.
	s.writeJSON(w, http.StatusOK, map[string]any{"archs": infos, "names": names})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cs := s.mapper.CacheStats()
	s.jobMu.RLock()
	tracked := len(s.jobs)
	s.jobMu.RUnlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.started).Nanoseconds(),
		"workers":   s.mapper.Workers(),
		"jobs":      tracked,
		"cache": map[string]any{
			"hits":    cs.Hits,
			"misses":  cs.Misses,
			"entries": cs.Entries,
		},
	})
}
