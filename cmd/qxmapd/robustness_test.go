package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	qxmap "repro"
)

// slowQASM returns a deterministic 4-qubit circuit long enough that the
// exact SAT engine cannot even finish encoding it within a 1ms request
// budget, while the heuristic rung maps it comfortably — the regime the
// 504 and ladder tests below need to provoke reliably.
func slowQASM() string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[4];\n")
	state := uint64(9)
	for i := 0; i < 300; i++ {
		state = state*2862933555777941757 + 3037000493
		c := int((state >> 33) % 4)
		state = state*2862933555777941757 + 3037000493
		tg := int((state >> 33) % 4)
		if c == tg {
			tg = (tg + 1) % 4
		}
		fmt.Fprintf(&b, "cx q[%d],q[%d];\n", c, tg)
	}
	return b.String()
}

// TestPanicContainedWith500: a handler panic must become a 500 carrying
// the request id — in the body and the X-Request-ID header — while the
// process keeps serving and /metrics counts the containment.
func TestPanicContainedWith500(t *testing.T) {
	s := newTestServer(t, serverConfig{})
	s.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("chaos: handler dies")
	})

	var eb errorBody
	resp := doJSON(t, s, "GET", "/v1/boom", nil, &eb)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(eb.Error, "chaos: handler dies") {
		t.Errorf("500 body %q does not name the panic value", eb.Error)
	}
	if eb.RequestID == "" || eb.RequestID != resp.Header.Get("X-Request-ID") {
		t.Errorf("request id: body %q, header %q — want equal and non-empty",
			eb.RequestID, resp.Header.Get("X-Request-ID"))
	}

	// The boundary contains, it does not cripple: the next request on the
	// same server must succeed.
	var res qxmap.ResultJSON
	resp = doJSON(t, s, "POST", "/v1/map", mapRequest{QASM: bellQASM, Arch: "ibmqx4"}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map after a contained panic: status %d, want 200", resp.StatusCode)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if body := w.Body.String(); !strings.Contains(body, "qxmapd_panics_total 1") {
		t.Error("metrics do not report the contained panic")
	}
}

// TestTimeoutStructured504: with the ladder off, a request deadline the
// solve cannot meet must come back as the structured 504 — Retry-After
// header, machine-readable retry_after_hint, and an explicit degradation
// "none" so clients know no fallback plan exists.
func TestTimeoutStructured504(t *testing.T) {
	s := newTestServer(t, serverConfig{ladder: false})
	var eb errorBody
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
		QASM: slowQASM(), Arch: "ibmqx4", Method: "exact", Engine: "sat", TimeoutMS: 1,
	}, &eb)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("starved exact solve: status %d (body %+v), want 504", resp.StatusCode, eb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 without a Retry-After header")
	}
	if eb.RetryAfterHint < 1 {
		t.Errorf("retry_after_hint = %d, want ≥ 1", eb.RetryAfterHint)
	}
	if eb.Degradation != "none" {
		t.Errorf("degradation = %q, want the explicit %q", eb.Degradation, "none")
	}
}

// TestLadderServes200Degraded: the same starved request with the ladder
// on must be answered — a 200 whose plan is labelled with the rung that
// produced it — and the degradation must show up in the service totals
// and Prometheus metrics.
func TestLadderServes200Degraded(t *testing.T) {
	s := newTestServer(t, serverConfig{ladder: true})
	var res qxmap.ResultJSON
	resp := doJSON(t, s, "POST", "/v1/map", mapRequest{
		QASM: slowQASM(), Arch: "ibmqx4", Method: "exact", Engine: "sat", TimeoutMS: 1,
	}, &res)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ladder did not soften the starved solve: status %d", resp.StatusCode)
	}
	if res.Degradation == "" {
		t.Fatal("degraded plan not labelled with its rung")
	}
	if res.Minimal {
		t.Error("degraded plan claims minimality")
	}
	if res.Stats.Degradation != res.Degradation {
		t.Errorf("stats degradation does not mirror the top-level field: %+v", res.Stats)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	want := fmt.Sprintf("qxmapd_degraded_total{mode=%q} 1", res.Degradation)
	if body := w.Body.String(); !strings.Contains(body, want) {
		t.Errorf("metrics missing %q", want)
	}
}
