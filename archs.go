package qxmap

import (
	"repro/internal/arch"
	"repro/internal/qasm"
)

// QX4 returns the IBM QX4 ("Tenerife") 5-qubit architecture of paper
// Fig. 2 — the evaluation target of the paper.
func QX4() *Architecture { return arch.QX4() }

// QX2 returns the IBM QX2 ("Yorktown") 5-qubit architecture.
func QX2() *Architecture { return arch.QX2() }

// QX5 returns the IBM QX5 ("Rueschlikon") 16-qubit architecture.
func QX5() *Architecture { return arch.QX5() }

// LinearArch returns a linear-nearest-neighbor architecture on m qubits.
func LinearArch(m int) *Architecture { return arch.Linear(m) }

// Melbourne returns the IBM Q 14 Melbourne architecture.
func Melbourne() *Architecture { return arch.Melbourne() }

// Tokyo returns the IBM Q 20 Tokyo architecture (bidirectional couplings).
func Tokyo() *Architecture { return arch.Tokyo() }

// Architectures returns the canonical architecture names in catalog order
// — the valid inputs to ArchByName and the -arch flags of the CLIs,
// mirroring Methods for mapping algorithms. Parameterized families appear
// with placeholder spellings ("linear<m>", "ring<m>", "grid<r>x<c>").
func Architectures() []string { return arch.Names() }

// ArchByName resolves an architecture name: "ibmqx2", "ibmqx4", "ibmqx5",
// "melbourne", "tokyo", "linear<m>", "ring<m>", "grid<r>x<c>". An unknown
// name fails with an error enumerating every valid name (see
// Architectures).
func ArchByName(name string) (*Architecture, error) { return arch.ByName(name) }

// NewArch builds a custom architecture from directed coupling pairs, each
// [control, target].
func NewArch(name string, m int, pairs [][2]int) (*Architecture, error) {
	ps := make([]arch.Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = arch.Pair{Control: p[0], Target: p[1]}
	}
	return arch.New(name, m, ps)
}

// ParseQASM reads an OpenQASM 2.0 program into a circuit.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// WriteQASM renders a circuit as an OpenQASM 2.0 program.
func WriteQASM(c *Circuit) (string, error) { return qasm.Write(c) }
