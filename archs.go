package qxmap

import (
	"repro/internal/arch"
	"repro/internal/qasm"
)

// QX4 returns the IBM QX4 ("Tenerife") 5-qubit architecture of paper
// Fig. 2 — the evaluation target of the paper.
func QX4() *Architecture { return arch.QX4() }

// QX2 returns the IBM QX2 ("Yorktown") 5-qubit architecture.
func QX2() *Architecture { return arch.QX2() }

// QX5 returns the IBM QX5 ("Rueschlikon") 16-qubit architecture.
func QX5() *Architecture { return arch.QX5() }

// LinearArch returns a linear-nearest-neighbor architecture on m qubits.
func LinearArch(m int) *Architecture { return arch.Linear(m) }

// Melbourne returns the IBM Q 14 Melbourne architecture.
func Melbourne() *Architecture { return arch.Melbourne() }

// Tokyo returns the IBM Q 20 Tokyo architecture (bidirectional couplings).
func Tokyo() *Architecture { return arch.Tokyo() }

// HeavyHex27 returns the 27-qubit IBM heavy-hex architecture (Falcon-class
// devices; bidirectional couplings).
func HeavyHex27() *Architecture { return arch.HeavyHex27() }

// HeavyHex127 returns the 127-qubit IBM heavy-hex architecture
// (Eagle-class devices; bidirectional couplings).
func HeavyHex127() *Architecture { return arch.HeavyHex127() }

// HeavyHexArch generates a heavy-hex lattice with the given number of
// qubit rows and columns per row (rows ≥ 2, cols ≥ 3); HeavyHexArch(7, 15)
// is the 127-qubit Eagle topology.
func HeavyHexArch(rows, cols int) *Architecture { return arch.HeavyHex(rows, cols) }

// CostModel prices the inserted operations: a per-edge SWAP weight and a
// per-directed-pair direction-switch weight. The zero value for an
// architecture (no model attached) is the paper's uniform 7/4 objective.
type CostModel = arch.CostModel

// PaperCostModel returns the paper's cost model: every SWAP costs 7
// elementary gates, every direction switch 4.
func PaperCostModel() *CostModel { return arch.PaperCostModel() }

// NewCostModel builds a uniform cost model with the given SWAP and
// direction-switch units (swapUnit ≥ 1, hUnit ≥ 0); per-edge overrides are
// added with SetSwapWeight/SetHWeight.
func NewCostModel(name string, swapUnit, hUnit int) (*CostModel, error) {
	return arch.NewCostModel(name, swapUnit, hUnit)
}

// ParseCostModel parses a -cost-model style spec: "paper" or
// "swap=<n>,h=<n>".
func ParseCostModel(spec string) (*CostModel, error) { return arch.ParseCostModel(spec) }

// ParseCalibration builds a weighted cost model from calibration JSON:
// default units plus per-edge overrides, given directly as weights or as
// two-qubit error rates (see the README's cost-model section for the
// schema).
func ParseCalibration(data []byte) (*CostModel, error) { return arch.ParseCalibration(data) }

// LoadCalibration reads a calibration JSON file into a cost model.
func LoadCalibration(path string) (*CostModel, error) { return arch.LoadCalibration(path) }

// Architectures returns the canonical architecture names in catalog order
// — the valid inputs to ArchByName and the -arch flags of the CLIs,
// mirroring Methods for mapping algorithms. Parameterized families appear
// with placeholder spellings ("linear<m>", "ring<m>", "grid<r>x<c>").
func Architectures() []string { return arch.Names() }

// ArchByName resolves an architecture name: "ibmqx2", "ibmqx4", "ibmqx5",
// "melbourne", "tokyo", "heavyhex27", "heavyhex127", "linear<m>",
// "ring<m>", "grid<r>x<c>". An unknown name fails with an error
// enumerating every valid name (see Architectures).
func ArchByName(name string) (*Architecture, error) { return arch.ByName(name) }

// NewArch builds a custom architecture from directed coupling pairs, each
// [control, target].
func NewArch(name string, m int, pairs [][2]int) (*Architecture, error) {
	ps := make([]arch.Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = arch.Pair{Control: p[0], Target: p[1]}
	}
	return arch.New(name, m, ps)
}

// ParseQASM reads an OpenQASM 2.0 program into a circuit.
func ParseQASM(src string) (*Circuit, error) { return qasm.Parse(src) }

// WriteQASM renders a circuit as an OpenQASM 2.0 program.
func WriteQASM(c *Circuit) (string, error) { return qasm.Write(c) }
