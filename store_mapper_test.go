package qxmap

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestMapperStorePersistence is the restart-survival acceptance test: a
// Mapper with a store solves an instance once, and after a full
// close/reopen cycle — a fresh Mapper, empty LRU, same store directory —
// the identical request is served from disk with zero SAT work and the
// identical cost.
func TestMapperStorePersistence(t *testing.T) {
	dir := t.TempDir()
	c := Figure1a()
	a := QX4()

	m1, err := NewMapper(WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	first, err := m1.Map(context.Background(), c, a)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first map reported a cache hit on an empty store")
	}
	cs := m1.CacheStats()
	if !cs.DiskEnabled || cs.DiskWrites == 0 {
		t.Fatalf("no write-through recorded: %+v", cs)
	}
	tot := m1.Totals()
	if tot.Maps != 1 || tot.MemoryHits != 0 || tot.DiskHits != 0 {
		t.Fatalf("totals after solve = %+v", tot)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": new process state, same directory.
	m2, err := NewMapper(WithStore(dir))
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer m2.Close()
	second, err := m2.Map(context.Background(), c, a)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.CacheTier != "disk" {
		t.Fatalf("restart map = hit=%v tier=%q, want disk hit", second.CacheHit, second.CacheTier)
	}
	if second.Cost != first.Cost || second.Swaps != first.Swaps || second.Switches != first.Switches {
		t.Fatalf("disk-served cost F=%d differs from solved F=%d", second.Cost, first.Cost)
	}
	if second.Stats.SATEncodes != 0 || second.Stats.SATSolves != 0 {
		t.Fatalf("disk hit did SAT work: %+v", second.Stats)
	}
	if !second.Minimal {
		t.Fatal("disk-served exact result lost its minimality claim")
	}
	if tot := m2.Totals(); tot.DiskHits != 1 {
		t.Fatalf("restart totals = %+v, want DiskHits=1", tot)
	}

	// The promoted entry now serves from memory within the process.
	third, err := m2.Map(context.Background(), c, a)
	if err != nil {
		t.Fatal(err)
	}
	if !third.CacheHit || third.CacheTier != "memory" {
		t.Fatalf("third map = hit=%v tier=%q, want memory hit", third.CacheHit, third.CacheTier)
	}
}

// TestMapperStoreConcurrent hammers one store-backed mapper with identical
// and distinct instances from many goroutines (run under -race in CI): the
// two-tier write-through path must be data-race free and every response
// cost-consistent.
func TestMapperStoreConcurrent(t *testing.T) {
	m, err := NewMapper(WithStore(t.TempDir()), WithEngine(EngineDP))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	a := QX4()
	circuits := []*Circuit{Figure1a(), randomElementary(3, 4, 6), randomElementary(9, 4, 6)}
	want := make([]int, len(circuits))
	for i, c := range circuits {
		r, err := m.Map(context.Background(), c, a)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Cost
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				k := (w + i) % len(circuits)
				r, err := m.Map(context.Background(), circuits[k], a)
				if err != nil {
					errs <- err
					return
				}
				if r.Cost != want[k] {
					t.Errorf("concurrent map cost %d, want %d", r.Cost, want[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cs := m.CacheStats(); cs.DiskRecords != len(circuits) {
		t.Fatalf("store holds %d records, want %d", cs.DiskRecords, len(circuits))
	}
}

// TestWithStoreValidation: an empty directory is rejected at construction,
// and a path that cannot be a store directory fails NewMapper rather than
// building a mapper with a silently dead tier.
func TestWithStoreValidation(t *testing.T) {
	if _, err := NewMapper(WithStore("")); err == nil {
		t.Fatal("NewMapper accepted an empty store directory")
	}
	bad := t.TempDir() + "/file"
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapper(WithStore(bad)); err == nil {
		t.Fatal("NewMapper accepted a file as store directory")
	} else if !strings.Contains(err.Error(), "store") {
		t.Fatalf("unexpected error: %v", err)
	}
}
