package qxmap

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Job is one mapping task of a batch: a circuit, a target architecture and
// the per-job options (any method, any engine — jobs of one batch may mix
// freely).
type Job struct {
	// Name labels the job in reports; it is carried through to the
	// BatchResult untouched (optional).
	Name string
	// Circuit is the input circuit (elementary gates only, as for Map).
	Circuit *Circuit
	// Arch is the target architecture.
	Arch *Architecture
	// Opts configures the job exactly as for Map.
	Opts Options
}

// BatchOptions tunes MapBatch.
type BatchOptions struct {
	// Workers bounds the number of jobs solved concurrently (default:
	// runtime.GOMAXPROCS(0), one worker per available core).
	Workers int
	// JobTimeout is a per-job deadline (0 = none). An expired job fails
	// with an error wrapping context.DeadlineExceeded while the remaining
	// jobs continue — exact and heuristic methods alike observe the
	// deadline through the pipeline's context plumbing.
	JobTimeout time.Duration
}

// BatchResult pairs one job with its outcome. Exactly one of Result and
// Err is non-nil.
type BatchResult struct {
	// Index is the job's position in the input slice (results are
	// returned in input order, so this is also the slice index).
	Index int
	// Job echoes the input job.
	Job Job
	// Result is the pipeline outcome, nil if the job failed.
	Result *Result
	// Err is the job's failure, nil on success. Failures are collected
	// per job (fail-soft): one bad or timed-out job never aborts the
	// batch. Cancelling the batch context fails the jobs not yet
	// finished with an error wrapping ctx.Err().
	Err error
}

// MapBatch maps a batch of independent jobs concurrently on a bounded
// worker pool and returns one BatchResult per job, in input order. Costs
// are identical to running Map on each job sequentially: jobs never share
// mutable state, only the process-wide portfolio cache — so identical
// Portfolio-mode instances across the batch solve once and the rest hit
// the cache (Result.CacheHit).
func MapBatch(ctx context.Context, jobs []Job, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runJob(ctx, i, jobs[i], opts.JobTimeout)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob executes one job under its per-job deadline.
func runJob(ctx context.Context, i int, job Job, timeout time.Duration) BatchResult {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := MapContext(ctx, job.Circuit, job.Arch, job.Opts)
	return BatchResult{Index: i, Job: job, Result: res, Err: err}
}
