package qxmap

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Job is one mapping task: a circuit, a target architecture and the
// per-job options (any method, any engine — jobs of one batch may mix
// freely). Jobs are consumed by Mapper.MapBatch (synchronous fan-out) and
// Mapper.Submit (asynchronous handle).
type Job struct {
	// Name labels the job in reports; it is carried through to the
	// BatchResult untouched (optional).
	Name string
	// Circuit is the input circuit (elementary gates only, as for Map).
	Circuit *Circuit
	// Arch is the target architecture.
	Arch *Architecture
	// Opts configures the job exactly as for Map. It is used verbatim:
	// start from Mapper.Options() to adopt the instance defaults.
	Opts Options
}

// BatchOptions tunes MapBatch.
type BatchOptions struct {
	// Workers bounds the number of jobs solved concurrently (default: the
	// mapper's worker bound — see WithWorkers — which itself defaults to
	// runtime.GOMAXPROCS(0), one worker per available core).
	Workers int
	// JobTimeout is a per-job deadline (0 = none). An expired job fails
	// with an error wrapping context.DeadlineExceeded while the remaining
	// jobs continue — exact and heuristic methods alike observe the
	// deadline through the pipeline's context plumbing.
	JobTimeout time.Duration
}

// BatchResult pairs one job with its outcome. Exactly one of Result and
// Err is non-nil.
type BatchResult struct {
	// Index is the job's position in the input slice (results are
	// returned in input order, so this is also the slice index).
	Index int
	// Job echoes the input job.
	Job Job
	// Result is the pipeline outcome, nil if the job failed.
	Result *Result
	// Err is the job's failure, nil on success. Failures are collected
	// per job (fail-soft): one bad or timed-out job never aborts the
	// batch. Cancelling the batch context fails the jobs not yet
	// finished with an error wrapping ctx.Err().
	Err error
}

// MapBatch maps a batch of independent jobs concurrently on a bounded
// worker pool and returns one BatchResult per job, in input order. Costs
// are identical to running Map on each job sequentially: jobs never share
// mutable state, only this instance's portfolio cache — so identical
// Portfolio-mode instances across the batch solve once and the rest hit
// the cache (Result.CacheHit). The pool is independent of the async
// scheduler's: a batch never starves Submit jobs of workers.
func (m *Mapper) MapBatch(ctx context.Context, jobs []Job, opts BatchOptions) []BatchResult {
	results := make([]BatchResult, len(jobs))
	workers := opts.Workers
	if workers <= 0 {
		workers = m.workers // NewMapper normalizes this to ≥ 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = m.runJob(ctx, i, jobs[i], opts.JobTimeout)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runJob executes one job under its per-job deadline. The pipeline has its
// own recover boundary; this one additionally shields the pool's slot
// bookkeeping, so a panicking job yields an errored BatchResult and the
// workers keep draining the batch.
func (m *Mapper) runJob(ctx context.Context, i int, job Job, timeout time.Duration) (br BatchResult) {
	defer func() {
		if r := recover(); r != nil {
			br = BatchResult{Index: i, Job: job, Err: fmt.Errorf("qxmap: job panicked: %v", r)}
		}
	}()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	res, err := m.MapWith(ctx, job.Circuit, job.Arch, job.Opts)
	return BatchResult{Index: i, Job: job, Result: res, Err: err}
}

// MapBatch maps a batch of jobs on the process-wide default Mapper.
//
// Deprecated: MapBatch delegates to the default Mapper (see Default),
// whose portfolio cache is shared process-wide. New code should create an
// instance with NewMapper and call Mapper.MapBatch.
func MapBatch(ctx context.Context, jobs []Job, opts BatchOptions) []BatchResult {
	return Default().MapBatch(ctx, jobs, opts)
}
