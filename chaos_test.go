package qxmap

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/revlib"
)

// The chaos suite drives the full public pipeline under injected faults
// and asserts the robustness contract end to end: every call returns a
// verified-valid result or an explicit error — never a silently wrong
// cost, never a dead process. Run it with -race; the CI chaos job does.

// chaosReference solves the chaos corpus on a clean mapper and returns
// the per-name minimal costs every faulted run is checked against.
func chaosReference(t *testing.T, jobs []Job) map[string]int {
	t.Helper()
	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ref := make(map[string]int, len(jobs))
	for _, j := range jobs {
		res, err := m.MapWith(context.Background(), j.Circuit, j.Arch, j.Opts)
		if err != nil {
			t.Fatalf("reference solve %s: %v", j.Name, err)
		}
		ref[j.Name] = res.Cost
	}
	return ref
}

func chaosJobs() []Job {
	bm := func(name string) *Circuit {
		b, err := revlib.SuiteByName(name)
		if err != nil {
			panic(err)
		}
		return b.Circuit
	}
	return []Job{
		{Name: "fig1a", Circuit: Figure1a(), Arch: QX4(), Opts: Options{Method: MethodExact, Engine: EngineDP}},
		{Name: "fig1a-sat", Circuit: Figure1a(), Arch: QX4(), Opts: Options{Method: MethodExact, Engine: EngineSAT}},
		{Name: "miller", Circuit: bm("miller_11"), Arch: QX4(), Opts: Options{Method: MethodExact, Engine: EngineDP}},
		{Name: "fig1a-heur", Circuit: Figure1a(), Arch: QX4(), Opts: Options{Method: MethodHeuristic, Seed: 1}},
	}
}

// TestChaosStoreFaultsNeverChangeAnswers: with the persistent tier
// failing on a deterministic schedule — reads and writes alike — batch
// mapping with a store must still answer every job, at exactly the
// reference costs: transient faults are retried, persistent ones read as
// misses and re-solves, and no fault is ever allowed to surface as a
// wrong answer. Runs the batch twice so the second pass exercises faulted
// lookups of records the first pass may or may not have landed.
func TestChaosStoreFaultsNeverChangeAnswers(t *testing.T) {
	jobs := chaosJobs()
	ref := chaosReference(t, jobs)

	m, err := NewMapper(WithStore(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	deactivate := faultinject.Activate(7, faultinject.Plan{
		"store.get": {Err: errors.New("chaos: disk read stall"), Every: 2},
		"store.put": {Err: errors.New("chaos: disk write stall"), Every: 2},
	})
	defer deactivate()

	for pass := 0; pass < 2; pass++ {
		results := m.MapBatch(context.Background(), jobs, BatchOptions{})
		for _, br := range results {
			if br.Err != nil {
				t.Errorf("pass %d %s: store chaos surfaced as a job error: %v", pass, br.Job.Name, br.Err)
				continue
			}
			if br.Result.Cost != ref[br.Job.Name] {
				t.Errorf("pass %d %s: cost %d under store chaos, reference %d",
					pass, br.Job.Name, br.Result.Cost, ref[br.Job.Name])
			}
		}
	}
	if faultinject.Fired("store.get")+faultinject.Fired("store.put") == 0 {
		t.Error("chaos plan never fired; the store hooks are not wired")
	}
}

// TestChaosPipelinePanicContained: a panic inside the mapping pipeline
// must come back as an error from that call — with the panic value in the
// message — while the mapper keeps serving subsequent calls.
func TestChaosPipelinePanicContained(t *testing.T) {
	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	deactivate := faultinject.Activate(1, faultinject.Plan{
		"qxmap.pipeline": {PanicMsg: "chaos: pipeline dies", Limit: 1},
	})
	_, err = m.Map(context.Background(), Figure1a(), QX4())
	deactivate()
	if err == nil || !strings.Contains(err.Error(), "chaos: pipeline dies") {
		t.Fatalf("panicked pipeline returned err = %v, want the panic value as an error", err)
	}

	res, err := m.Map(context.Background(), Figure1a(), QX4())
	if err != nil {
		t.Fatalf("mapper unusable after a contained panic: %v", err)
	}
	if res.Cost < 0 {
		t.Fatalf("implausible post-panic result: %+v", res)
	}
}

// TestChaosSATWorkerPanicFullStack: a SAT portfolio clone panicking
// mid-solve, injected below four layers of API (pool → exact → solver →
// pipeline), must cost nothing observable at the top: the Map call
// returns the verified minimal mapping at the reference cost.
func TestChaosSATWorkerPanicFullStack(t *testing.T) {
	opts := Options{Method: MethodExact, Engine: EngineSAT, SATThreads: 4}
	clean, err := func() (*Result, error) {
		m, err := NewMapper()
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		return m.MapWith(context.Background(), Figure1a(), QX4(), opts)
	}()
	if err != nil {
		t.Fatal(err)
	}

	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	deactivate := faultinject.Activate(1, faultinject.Plan{
		"sat.pool.worker.2": {PanicMsg: "chaos: clone dies"},
	})
	defer deactivate()

	res, err := m.MapWith(context.Background(), Figure1a(), QX4(), opts)
	if err != nil {
		t.Fatalf("worker panic leaked to the caller: %v", err)
	}
	if res.Cost != clean.Cost {
		t.Errorf("cost %d with a dead clone, reference %d", res.Cost, clean.Cost)
	}
	if !res.Minimal {
		t.Error("minimality proof lost to a clone panic (survivors should have finished it)")
	}
}

// TestLadderFullStackAcceptance is the end-to-end degradation acceptance
// check on a Table-1 benchmark: through the public API with the ladder
// enabled, a deadline too short for the full proof must still yield a
// plan that the pipeline's verifier accepted — non-minimal, labelled with
// its rung, and (for the anytime rung) bracketing the true optimum —
// while a generous deadline reproduces the exact minimal cost unchanged.
// The deadline separating the regimes is machine-dependent, so the test
// binary-searches it, validating every run against the trichotomy:
// heuristic rung (deadline below any incumbent), anytime rung (the
// window we are after), or a full minimal solve.
func TestLadderFullStackAcceptance(t *testing.T) {
	bm, err := revlib.SuiteByName("3_17_13")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Method: MethodExact, Engine: EngineSAT, Ladder: true}
	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Generous deadline: the ladder must be invisible — full minimal solve.
	start := time.Now()
	ref, err := m.MapWith(context.Background(), bm.Circuit, QX4(), opts)
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if !ref.Minimal || ref.Stats.Degradation != "" {
		t.Fatalf("generous-deadline ladder run degraded: minimal=%v degradation=%q",
			ref.Minimal, ref.Stats.Degradation)
	}

	lo, hi := time.Duration(0), full // invariant: lo degrades to heuristic, hi solves fully
	for i := 0; i < 14; i++ {
		d := (lo + hi) / 2
		if d <= 0 {
			break
		}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		res, err := m.MapWith(ctx, bm.Circuit, QX4(), opts)
		cancel()
		if err != nil {
			t.Fatalf("deadline %v: ladder let an exhaustion escape: %v", d, err)
		}
		switch res.Stats.Degradation {
		case "heuristic":
			// Below any incumbent: the bottom rung answered. Valid but
			// not the window we are after — search upward.
			if res.Minimal {
				t.Fatalf("deadline %v: heuristic plan claims minimality", d)
			}
			lo = d
		case "":
			if !res.Minimal || res.Cost != ref.Cost {
				t.Fatalf("deadline %v: undegraded plan minimal=%v cost=%d, reference %d",
					d, res.Minimal, res.Cost, ref.Cost)
			}
			hi = d
		case "anytime":
			if res.Minimal {
				t.Errorf("deadline %v: anytime plan claims minimality", d)
			}
			if res.Cost < ref.Cost {
				t.Errorf("deadline %v: anytime cost %d undercuts the optimum %d", d, res.Cost, ref.Cost)
			}
			if res.Cost-res.Stats.BoundGap > ref.Cost {
				t.Errorf("deadline %v: bracket [%d, %d] excludes the optimum %d",
					d, res.Cost-res.Stats.BoundGap, res.Cost, ref.Cost)
			}
			if res.Mapped == nil || len(res.Mapped.Gates()) == 0 {
				t.Errorf("deadline %v: anytime plan carries no mapped circuit", d)
			}
			return
		default:
			t.Fatalf("deadline %v: unknown degradation %q", d, res.Stats.Degradation)
		}
	}
	t.Skip("anytime window between heuristic rung and full proof too narrow on this machine")
}

// TestChaosSubmitHammering: async jobs whose contexts are cancelled or
// deadline-expired at staggered points — before, during and after their
// run — must each settle to exactly one of a result or an error, and the
// mapper must close cleanly afterwards. This is the scheduler's
// valid-or-explicit-error contract under concurrency.
func TestChaosSubmitHammering(t *testing.T) {
	m, err := NewMapper(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 24
	var wg sync.WaitGroup
	errCh := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			switch i % 4 {
			case 0: // already dead at submission
				ctx, cancel = context.WithCancel(ctx)
				cancel()
			case 1: // dies while queued or running
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*time.Millisecond)
				defer cancel()
			case 2: // explicit cancel racing the run
				ctx, cancel = context.WithCancel(ctx)
				go func() { time.Sleep(time.Duration(i) * time.Millisecond); cancel() }()
			}
			h, err := m.Submit(ctx, Job{Circuit: Figure1a(), Arch: QX4(), Opts: Options{Method: MethodExact, Engine: EngineDP}})
			if err != nil {
				return // a rejected submission is an explicit error: fine
			}
			res, err := h.Wait(context.Background())
			if (res == nil) == (err == nil) {
				errCh <- fmt.Errorf("job %d: res=%v err=%v, want exactly one", i, res, err)
				return
			}
			if err == nil && res.Cost < 0 {
				errCh <- fmt.Errorf("job %d: implausible cost %d", i, res.Cost)
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for e := range errCh {
		t.Error(e)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close after hammering: %v", err)
	}
}
