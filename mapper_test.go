package qxmap

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/revlib"
)

// TestNewMapperOptionValidation: bad functional options fail construction
// with a descriptive error instead of building a broken instance.
func TestNewMapperOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"unknown method", WithMethod(Method(99))},
		{"negative cache", WithCacheSize(-1)},
		{"negative workers", WithWorkers(-2)},
		{"zero queue depth", WithQueueDepth(0)},
		{"negative timeout", WithDefaultTimeout(-time.Second)},
		{"negative runs", WithHeuristicRuns(-1)},
	}
	for _, tc := range cases {
		if _, err := NewMapper(tc.opt); err == nil {
			t.Errorf("%s: NewMapper accepted the option", tc.name)
		}
	}
}

// TestNewMapperDefaults: the zero configuration mirrors the package-level
// defaults, and option values land in Options().
func TestNewMapperDefaults(t *testing.T) {
	m, err := NewMapper()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Options(); !reflect.DeepEqual(got, Options{}) {
		t.Errorf("zero-config defaults = %+v, want zero Options", got)
	}
	if m.Workers() < 1 {
		t.Errorf("workers = %d, want ≥ 1", m.Workers())
	}

	m2, err := NewMapper(
		WithMethod(MethodSabre),
		WithEngine(EngineDP),
		WithPortfolio(true),
		WithVerify(false),
		WithOptimize(true),
		WithHeuristicRuns(7),
		WithSeed(42),
		WithLookahead(0.5),
		WithWorkers(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	want := Options{
		Method: MethodSabre, Engine: EngineDP, Portfolio: true,
		SkipVerify: true, Optimize: true, HeuristicRuns: 7, Seed: 42,
		Lookahead: 0.5,
	}
	if got := m2.Options(); !reflect.DeepEqual(got, want) {
		t.Errorf("Options() = %+v, want %+v", got, want)
	}
	if m2.Workers() != 3 {
		t.Errorf("workers = %d, want 3", m2.Workers())
	}
}

// TestMapperMapParity: an instance Map equals the package-level wrapper on
// the same input (both run the identical pipeline).
func TestMapperMapParity(t *testing.T) {
	m, err := NewMapper(WithEngine(EngineDP))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := Figure1a()
	inst, err := m.Map(context.Background(), c, QX4())
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := Map(c, QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if inst.Cost != pkg.Cost || inst.Swaps != pkg.Swaps || inst.Switches != pkg.Switches {
		t.Errorf("instance result (F=%d) differs from package result (F=%d)", inst.Cost, pkg.Cost)
	}
	if !inst.Minimal {
		t.Error("exact instance result not minimal")
	}
}

// TestMapperCacheIsolation is the instance-scoping acceptance test: two
// mappers running concurrently on the identical Portfolio instance must
// each populate and hit only their own cache. With the old process-wide
// cache, the second mapper's first call would have been a hit.
func TestMapperCacheIsolation(t *testing.T) {
	c := randomElementary(7, 4, 8)
	a := QX4()
	opts := Options{Method: MethodExact, Portfolio: true}

	newM := func() *Mapper {
		m, err := NewMapper(WithPortfolio(true), WithCacheSize(16))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m2 := newM(), newM()
	defer m1.Close()
	defer m2.Close()

	const calls = 3
	var wg sync.WaitGroup
	for _, m := range []*Mapper{m1, m2} {
		wg.Add(1)
		go func(m *Mapper) {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				res, err := m.MapWith(context.Background(), c, a, opts)
				if err != nil {
					t.Errorf("map %d: %v", i, err)
					return
				}
				if wantHit := i > 0; res.CacheHit != wantHit {
					t.Errorf("call %d: CacheHit = %v, want %v", i, res.CacheHit, wantHit)
				}
			}
		}(m)
	}
	wg.Wait()

	for i, m := range []*Mapper{m1, m2} {
		cs := m.CacheStats()
		if cs.Misses != 1 || cs.Hits != calls-1 || cs.Entries != 1 {
			t.Errorf("mapper %d cache stats = %+v, want 1 miss, %d hits, 1 entry (instance-scoped)",
				i, cs, calls-1)
		}
	}
}

// TestMapperSubmitWait: the async happy path — Submit, observe Done, Wait,
// and read per-job Stats after completion.
func TestMapperSubmitWait(t *testing.T) {
	m, err := NewMapper(WithWorkers(2), WithEngine(EngineDP))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	opts := m.Options()
	h, err := m.Submit(context.Background(), Job{Name: "fig1a", Circuit: Figure1a(), Arch: QX4(), Opts: opts})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == 0 {
		t.Error("job ID is zero")
	}
	if h.Job().Name != "fig1a" {
		t.Errorf("handle job name = %q", h.Job().Name)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.Done():
	default:
		t.Error("Done() not closed after Wait returned")
	}
	seq, err := Map(Figure1a(), QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != seq.Cost {
		t.Errorf("async cost %d != sync cost %d", res.Cost, seq.Cost)
	}

	st := h.Stats()
	if st.State != JobDone {
		t.Errorf("state = %v, want done", st.State)
	}
	if st.Run <= 0 {
		t.Errorf("run duration = %v, want > 0", st.Run)
	}
	if st.Pipeline.Solver != "exact" {
		t.Errorf("pipeline solver = %q, want exact", st.Pipeline.Solver)
	}

	// Waiting again returns the same outcome; Cancel after done is a no-op.
	h.Cancel()
	res2, err := h.Wait(context.Background())
	if err != nil || res2 != res {
		t.Errorf("second Wait = (%v, %v), want the cached outcome", res2, err)
	}
}

// TestMapperSubmitManyParity: a fan-out of async jobs matches sequential
// costs — the scheduler introduces no cross-job interference.
func TestMapperSubmitManyParity(t *testing.T) {
	m, err := NewMapper(WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	jobs := suite20(MethodExact)
	handles := make([]*JobHandle, len(jobs))
	for i, job := range jobs {
		if handles[i], err = m.Submit(context.Background(), job); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		seq, err := Map(jobs[i].Circuit, jobs[i].Arch, jobs[i].Opts)
		if err != nil {
			t.Fatalf("sequential %d: %v", i, err)
		}
		if res.Cost != seq.Cost {
			t.Errorf("job %d: async cost %d != sequential %d", i, res.Cost, seq.Cost)
		}
	}
}

// TestMapperSubmitPreCanceled: a job whose context is already canceled at
// submission finishes without running, with an error wrapping the cause.
func TestMapperSubmitPreCanceled(t *testing.T) {
	m, err := NewMapper(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Submit still succeeds (the queue has room); the worker observes the
	// dead context before starting the pipeline.
	h, err := m.Submit(ctx, Job{Circuit: Figure1a(), Arch: QX4()})
	if err != nil {
		// Equally acceptable: Submit itself refused the dead context.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit error %v does not wrap context.Canceled", err)
		}
		return
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if _, err := h.Wait(wctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait error %v does not wrap context.Canceled", err)
	}
	st := h.Stats()
	if st.State != JobDone {
		t.Errorf("state = %v, want done", st.State)
	}
	if st.Run != 0 {
		t.Errorf("never-ran job reports run time %v, want 0 (its lifetime is queue wait)", st.Run)
	}
}

// TestMapperTrySubmitBackpressure: with the single worker busy on a slow
// SAT solve and the one-slot queue occupied, TrySubmit fails immediately
// with ErrQueueFull instead of blocking — the signal qxmapd turns into a
// retryable 503. Cancellation then aborts the slow jobs promptly.
func TestMapperTrySubmitBackpressure(t *testing.T) {
	m, err := NewMapper(WithWorkers(1), WithQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// QFT-4 on linear6 via the SAT engine takes seconds — long enough to
	// hold the worker while the queue check below runs in microseconds.
	slowJob := func() Job {
		return Job{
			Circuit: revlib.BuildQFT(4),
			Arch:    LinearArch(6),
			Opts:    Options{Method: MethodExact, Engine: EngineSAT, SkipVerify: true},
		}
	}
	bg := context.Background()
	h1, err := m.Submit(bg, slowJob())
	if err != nil {
		t.Fatal(err)
	}
	// Blocks until the worker dequeues h1, then occupies the only slot.
	h2, err := m.Submit(bg, slowJob())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := m.TrySubmit(bg, Job{Circuit: Figure1a(), Arch: QX4()}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("TrySubmit on full queue = %v, want ErrQueueFull", err)
	}

	h1.Cancel()
	h2.Cancel()
	ctx, cancel := context.WithTimeout(bg, 30*time.Second)
	defer cancel()
	for i, h := range []*JobHandle{h1, h2} {
		if _, err := h.Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("job %d after Cancel: %v, want context.Canceled", i+1, err)
		}
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrySubmit(bg, slowJob()); !errors.Is(err, ErrMapperClosed) {
		t.Errorf("TrySubmit after Close = %v, want ErrMapperClosed", err)
	}
}

// TestMapperDefaultTimeout: WithDefaultTimeout bounds both the sync and
// the async paths; an immediate deadline surfaces context.DeadlineExceeded.
func TestMapperDefaultTimeout(t *testing.T) {
	m, err := NewMapper(WithDefaultTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Map(context.Background(), Figure1a(), QX4()); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("sync error %v does not wrap DeadlineExceeded", err)
	}

	h, err := m.Submit(context.Background(), Job{Circuit: Figure1a(), Arch: QX4()})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := h.Wait(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("async error %v does not wrap DeadlineExceeded", err)
	}

	// A context that already carries a deadline is left alone.
	cctx, ccancel := context.WithTimeout(context.Background(), time.Minute)
	defer ccancel()
	if _, err := m.Map(cctx, Figure1a(), QX4()); err != nil {
		t.Errorf("map with own deadline: %v", err)
	}
}

// TestMapperWaitContextExpiry: Wait honors its own context without
// consuming the job's eventual result.
func TestMapperWaitContextExpiry(t *testing.T) {
	m, err := NewMapper(WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	h, err := m.Submit(context.Background(), Job{Circuit: Figure1a(), Arch: QX4(), Opts: Options{Engine: EngineDP}})
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Wait(expired); !errors.Is(err, context.Canceled) {
		t.Errorf("Wait with dead context: %v", err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if _, err := h.Wait(wctx); err != nil {
		t.Errorf("second Wait: %v", err)
	}
}

// TestMapperClose: Close rejects new submissions, fails queued jobs, and
// is idempotent; every outstanding handle completes.
func TestMapperClose(t *testing.T) {
	m, err := NewMapper(WithWorkers(1), WithQueueDepth(32))
	if err != nil {
		t.Fatal(err)
	}

	var handles []*JobHandle
	for i := 0; i < 8; i++ {
		h, err := m.Submit(context.Background(), Job{Circuit: randomElementary(int64(i), 4, 10), Arch: QX4()})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		handles = append(handles, h)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	if _, err := m.Submit(context.Background(), Job{Circuit: Figure1a(), Arch: QX4()}); !errors.Is(err, ErrMapperClosed) {
		t.Errorf("Submit after Close = %v, want ErrMapperClosed", err)
	}
	if _, err := m.Map(context.Background(), Figure1a(), QX4()); !errors.Is(err, ErrMapperClosed) {
		t.Errorf("Map after Close = %v, want ErrMapperClosed", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, h := range handles {
		res, err := h.Wait(ctx)
		if err == nil && res == nil {
			t.Errorf("handle %d: nil result and nil error", i)
		}
		if err != nil && !errors.Is(err, ErrMapperClosed) && !errors.Is(err, context.Canceled) {
			t.Errorf("handle %d: unexpected error %v", i, err)
		}
	}
}

// TestJobStateStrings pins the wire names used by qxmapd's job endpoint.
func TestJobStateStrings(t *testing.T) {
	for state, want := range map[JobState]string{
		JobQueued: "queued", JobRunning: "running", JobDone: "done",
	} {
		if got := state.String(); got != want {
			t.Errorf("JobState(%d).String() = %q, want %q", int(state), got, want)
		}
	}
}

// TestArchitecturesListing: the architecture registry mirrors Methods —
// a canonical listing, and ArchByName errors that enumerate it.
func TestArchitecturesListing(t *testing.T) {
	names := Architectures()
	if len(names) == 0 {
		t.Fatal("Architectures() is empty")
	}
	if _, err := ArchByName(names[0]); err != nil {
		t.Errorf("first listed architecture %q does not resolve: %v", names[0], err)
	}
	_, err := ArchByName("bogus")
	if err == nil {
		t.Fatal("ArchByName accepted a bogus name")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("ArchByName error %q does not list %q", err, n)
		}
	}
}
