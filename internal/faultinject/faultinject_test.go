package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("no plan active, Enabled() = true")
	}
	if err := Hit("anything"); err != nil {
		t.Fatalf("Hit without a plan = %v", err)
	}
	if got := Fired("anything"); got != 0 {
		t.Fatalf("Fired without a plan = %d", got)
	}
}

func TestErrorEverySchedule(t *testing.T) {
	boom := errors.New("boom")
	off := Activate(1, Plan{"store.get": {Err: boom, Every: 3}})
	defer off()

	var errs int
	for i := 0; i < 9; i++ {
		if err := Hit("store.get"); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("Hit = %v, want boom", err)
			}
			errs++
		}
		if err := Hit("other.point"); err != nil {
			t.Fatalf("unplanned point fired: %v", err)
		}
	}
	if errs != 3 {
		t.Fatalf("Every:3 over 9 visits fired %d times, want 3", errs)
	}
	if got := Fired("store.get"); got != 3 {
		t.Fatalf("Fired = %d, want 3", got)
	}
}

func TestLimitStopsFiring(t *testing.T) {
	boom := errors.New("boom")
	off := Activate(1, Plan{"p": {Err: boom, Limit: 2}})
	defer off()

	var errs int
	for i := 0; i < 10; i++ {
		if Hit("p") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("Limit:2 fired %d times", errs)
	}
}

func TestPanicPoint(t *testing.T) {
	off := Activate(1, Plan{"pool.worker": {PanicMsg: "injected crash"}})
	defer off()

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Hit on a panic point did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "injected crash") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	Hit("pool.worker")
}

func TestDelay(t *testing.T) {
	off := Activate(1, Plan{"slow": {Delay: 20 * time.Millisecond}})
	defer off()

	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("pure-latency point returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Hit returned after %v, want >= 20ms", d)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		off := Activate(seed, Plan{"p": {Err: errors.New("x"), Prob: 0.5}})
		defer off()
		out := make([]bool, 32)
		for i := range out {
			out[i] = Hit("p") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at visit %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical schedules (suspicious)")
	}
}

func TestOverlappingActivatePanics(t *testing.T) {
	off := Activate(1, Plan{})
	defer off()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Activate did not panic")
		}
	}()
	Activate(2, Plan{})
}

func TestDeactivateRestoresNil(t *testing.T) {
	off := Activate(1, Plan{"p": {Err: errors.New("x")}})
	off()
	if Enabled() {
		t.Fatal("plan still active after deactivate")
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("Hit after deactivate = %v", err)
	}
	off() // double-deactivate must be harmless
}
