// Package faultinject provides named fault-injection points for chaos
// testing. Production code calls Hit at I/O and concurrency boundaries;
// the call is a single atomic load returning nil until a test activates
// a Plan, so the hooks cost nothing in normal operation and there is no
// way to switch them on from configuration or the environment.
//
// A Plan maps point names to the fault to inject there: a returned
// error (the caller treats it like a transient failure from the real
// operation), an added latency, or a panic (exercising recover
// boundaries). Schedules are deterministic: a Point fires on every
// Every-th visit (counted per point, starting at the Every-th) up to
// Limit firings, and probabilistic schedules draw from a rand.Rand
// seeded by Activate, so a failing chaos run reproduces from its seed.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Point describes the fault injected at one named site. Exactly one of
// Err and PanicMsg should be set; Delay may accompany either or stand
// alone as pure latency injection.
type Point struct {
	// Err is returned from Hit when the point fires. Callers treat it
	// as a transient failure of the guarded operation.
	Err error
	// PanicMsg, when non-empty, makes Hit panic with this message when
	// the point fires (after Err is found nil).
	PanicMsg string
	// Delay is slept before Hit returns whenever the point fires.
	Delay time.Duration
	// Every fires the point on every n-th visit (1 or 0 = every visit).
	Every int
	// Prob fires the point on each visit with this probability instead
	// of deterministically; draws come from the Activate seed. Zero
	// means the Every schedule applies unconditionally.
	Prob float64
	// Limit stops the point after this many firings (0 = unlimited).
	Limit int
}

// Plan maps point names to their injected faults.
type Plan map[string]Point

type state struct {
	plan Plan

	mu     sync.Mutex
	rng    *rand.Rand
	visits map[string]int
	fired  map[string]int
}

var active atomic.Pointer[state]

// Activate installs plan for the whole process and returns the function
// that removes it. Only tests should call Activate; overlapping
// activations are a test bug and panic. The seed drives every
// probabilistic schedule in the plan.
func Activate(seed int64, plan Plan) (deactivate func()) {
	st := &state{
		plan:   plan,
		rng:    rand.New(rand.NewSource(seed)),
		visits: make(map[string]int),
		fired:  make(map[string]int),
	}
	if !active.CompareAndSwap(nil, st) {
		panic("faultinject: Activate while another plan is active")
	}
	return func() { active.CompareAndSwap(st, nil) }
}

// Enabled reports whether any plan is currently active.
func Enabled() bool { return active.Load() != nil }

// Hit consults the active plan for the named point. With no active plan
// (the production case) it returns nil after one atomic load. When the
// point's schedule fires, Hit sleeps the configured Delay, then returns
// the configured error or panics with the configured message.
func Hit(point string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	return st.hit(point)
}

// Fired reports how many times the named point has fired under the
// active plan (0 when no plan is active).
func Fired(point string) int {
	st := active.Load()
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fired[point]
}

func (st *state) hit(point string) error {
	p, ok := st.plan[point]
	if !ok {
		return nil
	}

	st.mu.Lock()
	st.visits[point]++
	fire := true
	if every := p.Every; every > 1 {
		fire = st.visits[point]%every == 0
	}
	if fire && p.Prob > 0 {
		fire = st.rng.Float64() < p.Prob
	}
	if fire && p.Limit > 0 && st.fired[point] >= p.Limit {
		fire = false
	}
	if fire {
		st.fired[point]++
	}
	st.mu.Unlock()

	if !fire {
		return nil
	}
	if p.Delay > 0 {
		time.Sleep(p.Delay)
	}
	if p.Err != nil {
		return p.Err
	}
	if p.PanicMsg != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", point, p.PanicMsg))
	}
	return nil
}
