// Package bench is the experiment harness reproducing the paper's
// evaluation: Table 1 (all six method columns over the 25-benchmark suite)
// and the aggregate claims of §5 (IBM's heuristic ≈45% above the minimal
// total gate count, ≈104% above the minimal added-gate count F).
package bench

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/portfolio"
	"repro/internal/revlib"
	"repro/internal/solver"
)

// Column is one method's result on one benchmark.
type Column struct {
	// Cost is c: the total gate count of the mapped circuit
	// (original cost + added operations F).
	Cost int
	// Added is F: the number of added elementary operations.
	Added int
	// DeltaMin is Cost − c_min (0 for minimal methods).
	DeltaMin int
	// PermPoints is the paper's |G'| column: permutation points plus one
	// for the free initial mapping (strategy columns only; 0 otherwise).
	PermPoints int
	// Solves, Encodes and Conflicts expose the SAT engine's counters for
	// the column (0 for DP and heuristic runs): encode-count regressions
	// in the incremental descent show up here. BoundProbes/BoundJumps and
	// LowerBound instrument the core-guided descent: guarded bound probes,
	// core-driven multi-step advances, and the admissible seed.
	Solves      int
	Encodes     int
	Conflicts   int64
	BoundProbes int
	BoundJumps  int
	LowerBound  int
	// SubsetsPruned, CoreFamilyRefutations and OrbitHits instrument the
	// §4.1 shared-instance subset fan-out (0 for non-subset columns):
	// subsets retired by their admissible lower bound, UNSAT probes that
	// refuted the whole pending family at once, and subsets proven by their
	// automorphism-orbit representative.
	SubsetsPruned         int
	CoreFamilyRefutations int
	OrbitHits             int
	// Runtime is the wall-clock solving time.
	Runtime time.Duration
}

// Row is one benchmark's full Table 1 row.
type Row struct {
	Name         string
	N            int
	SingleQubit  int
	CNOTs        int
	OriginalCost int

	Minimal  Column // "Min. (Sec. 3)"
	Subsets  Column // "Perf. Opt. (Sec. 4.1)"
	Disjoint Column // "Disjoint qubits"
	Odd      Column // "Odd gates"
	Triangle Column // "Qubit triangle"
	IBM      Column // "IBM [12]" (min of HeuristicRuns runs)
	// AStar is an extension column beyond the paper: the deterministic
	// per-layer A* baseline in the family of the paper's reference [22].
	AStar Column
}

// Config tunes a Table 1 run.
type Config struct {
	// Arch is the target device (default IBM QX4, as in the paper).
	Arch *arch.Arch
	// Engine selects the exact backend for every exact column.
	// IMPORTANT: the zero value is EngineSAT (the paper's methodology),
	// which takes minutes per large row in full descent; pass
	// exact.EngineDP (as cmd/qxbench does by default) or set SeedSATWithDP
	// for routine runs.
	Engine exact.Engine
	// SeedSATWithDP, when Engine is EngineSAT, first runs the DP oracle
	// and seeds the SAT descent with its cost (2 SAT calls per instance:
	// one SAT under the bound, one UNSAT below it).
	SeedSATWithDP bool
	// HeuristicRuns is the number of heuristic seeds, keeping the best
	// (default 5, as in the paper).
	HeuristicRuns int
	// Names restricts the run to the named benchmarks (nil = full suite).
	Names []string
	// Parallel evaluates benchmark rows concurrently on a bounded worker
	// pool. Results are identical to a sequential run (rows are
	// independent).
	Parallel bool
	// Workers bounds the row worker pool (default: one worker per
	// available core). A positive value implies Parallel.
	Workers int
	// Portfolio routes every exact column through internal/portfolio:
	// heuristic-seeded SAT racing the DP oracle, with results memoized in
	// a cache shared across the whole run. The Engine and SeedSATWithDP
	// options are then ignored.
	Portfolio bool
	// NoLowerBound disables the SAT engine's admissible lower-bound
	// seeding (the -lower-bound=off escape hatch of cmd/qxbench).
	NoLowerBound bool
	// SATThreads, when > 1, solves every SAT instance with a clause-sharing
	// portfolio of that many goroutine workers (cmd/qxbench -sat-threads).
	SATThreads int

	// cache is the portfolio memo shared by every row of one run.
	cache *portfolio.Cache
}

func (c Config) withDefaults() Config {
	if c.Arch == nil {
		c.Arch = arch.QX4()
	}
	if c.HeuristicRuns <= 0 {
		c.HeuristicRuns = 5
	}
	if c.Portfolio && c.cache == nil {
		c.cache = portfolio.NewCache(0)
	}
	return c
}

// RunTable1 executes the full evaluation and returns one row per
// benchmark, in table order. Cancelling the context aborts in-flight exact
// solves promptly and fails the run with an error wrapping ctx.Err().
func RunTable1(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	var selected []revlib.Benchmark
	for _, b := range revlib.Suite() {
		if len(cfg.Names) == 0 || slices.Contains(cfg.Names, b.Name) {
			selected = append(selected, b)
		}
	}
	rows := make([]Row, len(selected))
	errs := make([]error, len(selected))
	workers := 1
	if cfg.Parallel || cfg.Workers > 0 {
		workers = cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	if workers > len(selected) {
		workers = len(selected)
	}
	if workers <= 1 {
		for i, b := range selected {
			rows[i], errs[i] = RunRow(ctx, b, cfg)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					rows[i], errs[i] = RunRow(ctx, selected[i], cfg)
				}
			}()
		}
		for i := range selected {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", selected[i].Name, err)
		}
	}
	return rows, nil
}

// RunRow evaluates all method columns (the paper's six plus the A*
// extension) on one benchmark.
func RunRow(ctx context.Context, b revlib.Benchmark, cfg Config) (Row, error) {
	cfg = cfg.withDefaults()
	row := Row{
		Name:         b.Name,
		N:            b.N,
		SingleQubit:  b.SingleQubit,
		CNOTs:        b.CNOTs,
		OriginalCost: b.OriginalCost(),
	}
	sk, err := circuit.ExtractSkeleton(b.Circuit)
	if err != nil {
		return row, err
	}

	// Every column resolves its method by name through the solver
	// registry; no engine- or strategy-specific code lives here.
	solve := func(name string, scfg solver.Config) (*solver.Plan, Column, error) {
		s, err := solver.New(name, scfg)
		if err != nil {
			return nil, Column{}, err
		}
		plan, err := s.Solve(ctx, sk, cfg.Arch)
		if err != nil {
			return nil, Column{}, fmt.Errorf("%s: %w", name, err)
		}
		return plan, Column{
			Cost:                  row.OriginalCost + plan.Cost,
			Added:                 plan.Cost,
			Solves:                plan.SATSolves,
			Encodes:               plan.SATEncodes,
			Conflicts:             plan.SATConflicts,
			BoundProbes:           plan.BoundProbes,
			BoundJumps:            plan.BoundJumps,
			LowerBound:            plan.LowerBound,
			SubsetsPruned:         plan.SubsetsPruned,
			CoreFamilyRefutations: plan.CoreFamilyRefutations,
			OrbitHits:             plan.OrbitHits,
			Runtime:               plan.Runtime,
		}, nil
	}

	// The heuristic column doubles as the portfolio's upper bound, so it is
	// computed first — once per row rather than once per exact column.
	if _, row.IBM, err = solve(solver.NameHeuristic,
		solver.Config{HeuristicRuns: cfg.HeuristicRuns, Seed: 1}); err != nil {
		return row, err
	}

	exactCfg := func(name string) (solver.Config, error) {
		scfg := solver.Config{Engine: cfg.Engine}
		scfg.SAT.NoLowerBound = cfg.NoLowerBound
		scfg.SAT.Threads = cfg.SATThreads
		if cfg.Portfolio {
			scfg.Portfolio = true
			scfg.Cache = cfg.cache
			scfg.UpperBound = row.IBM.Added
			if scfg.UpperBound == 0 {
				scfg.UpperBound = -1 // bounded already: F = 0, skip re-bounding
			}
			return scfg, nil
		}
		if cfg.Engine == exact.EngineSAT && cfg.SeedSATWithDP {
			_, dp, err := solve(name, solver.Config{Engine: exact.EngineDP})
			if err != nil {
				return scfg, err
			}
			scfg.SAT.StartBound = dp.Added
		}
		return scfg, nil
	}
	for _, col := range []struct {
		name string
		dst  *Column
	}{
		{solver.NameExact, &row.Minimal},
		{solver.NameExactSubsets, &row.Subsets},
		{solver.NameDisjoint, &row.Disjoint},
		{solver.NameOdd, &row.Odd},
		{solver.NameTriangle, &row.Triangle},
	} {
		// The column runtime is the method's full cost, including the DP
		// seeding solve of SeedSATWithDP mode — not just the final solve.
		start := time.Now()
		scfg, err := exactCfg(col.name)
		if err != nil {
			return row, err
		}
		plan, c, err := solve(col.name, scfg)
		if err != nil {
			return row, err
		}
		c.Runtime = time.Since(start)
		c.PermPoints = plan.PermPoints + 1 // paper counts the free initial mapping
		*col.dst = c
	}

	if _, row.AStar, err = solve(solver.NameAStar, solver.Config{Lookahead: 0.5}); err != nil {
		return row, err
	}

	cmin := row.Minimal.Cost
	for _, col := range []*Column{&row.Minimal, &row.Subsets, &row.Disjoint, &row.Odd, &row.Triangle, &row.IBM, &row.AStar} {
		col.DeltaMin = col.Cost - cmin
	}
	return row, nil
}

// Stats aggregates the headline claims of paper §5 over a set of rows.
type Stats struct {
	Rows int
	// AvgIBMAboveMinTotal is the average of (IBM cost − c_min)/c_min — the
	// paper reports ≈45 % on the original RevLib circuits.
	AvgIBMAboveMinTotal float64
	// AvgIBMAboveMinAdded is the average of (IBM F − F_min)/F_min over
	// rows with F_min > 0 — the paper reports ≈104 %.
	AvgIBMAboveMinAdded float64
	// MaxIBMAboveMinAdded is the worst row's added-gate overshoot.
	MaxIBMAboveMinAdded float64
	// StrategyMinimalRows counts rows where each §4.2 strategy matched the
	// minimum (paper: disjoint qubits always minimal on the suite).
	DisjointMinimal, OddMinimal, TriangleMinimal int
	// AvgAStarAboveMinAdded is the A* extension baseline's average
	// added-gate overshoot over rows with F_min > 0.
	AvgAStarAboveMinAdded float64
}

// Summary computes the aggregate statistics.
func Summary(rows []Row) Stats {
	var s Stats
	addedRows := 0
	for _, r := range rows {
		s.Rows++
		s.AvgIBMAboveMinTotal += float64(r.IBM.Cost-r.Minimal.Cost) / float64(r.Minimal.Cost)
		if r.Minimal.Added > 0 {
			ratio := float64(r.IBM.Added-r.Minimal.Added) / float64(r.Minimal.Added)
			s.AvgIBMAboveMinAdded += ratio
			if ratio > s.MaxIBMAboveMinAdded {
				s.MaxIBMAboveMinAdded = ratio
			}
			s.AvgAStarAboveMinAdded += float64(r.AStar.Added-r.Minimal.Added) / float64(r.Minimal.Added)
			addedRows++
		}
		if r.Disjoint.DeltaMin == 0 {
			s.DisjointMinimal++
		}
		if r.Odd.DeltaMin == 0 {
			s.OddMinimal++
		}
		if r.Triangle.DeltaMin == 0 {
			s.TriangleMinimal++
		}
	}
	if s.Rows > 0 {
		s.AvgIBMAboveMinTotal /= float64(s.Rows)
	}
	if addedRows > 0 {
		s.AvgIBMAboveMinAdded /= float64(addedRows)
		s.AvgAStarAboveMinAdded /= float64(addedRows)
	}
	return s
}

// FormatTable renders rows in the layout of the paper's Table 1.
func FormatTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %2s %9s | %5s %8s | %5s %8s | %4s %10s | %4s %10s | %4s %10s | %10s\n",
		"Benchmark", "n", "orig", "cmin", "t", "c4.1", "t", "|G'|", "disjoint", "|G'|", "odd", "|G'|", "triangle", "IBM")
	// (An extension A* column is accumulated in Summary; rows keep the
	// paper's exact column layout.)
	b.WriteString(strings.Repeat("-", 132) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %2d %3d+%3d=%3d | %5d %8s | %5d %8s | %4d %4d (%+3d) | %4d %4d (%+3d) | %4d %4d (%+3d) | %4d (%+3d)\n",
			r.Name, r.N, r.SingleQubit, r.CNOTs, r.OriginalCost,
			r.Minimal.Cost, shortDur(r.Minimal.Runtime),
			r.Subsets.Cost, shortDur(r.Subsets.Runtime),
			r.Disjoint.PermPoints, r.Disjoint.Cost, r.Disjoint.DeltaMin,
			r.Odd.PermPoints, r.Odd.Cost, r.Odd.DeltaMin,
			r.Triangle.PermPoints, r.Triangle.Cost, r.Triangle.DeltaMin,
			r.IBM.Cost, r.IBM.DeltaMin)
	}
	return b.String()
}

// FormatSummary renders the aggregate claims.
func FormatSummary(s Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmarks: %d\n", s.Rows)
	fmt.Fprintf(&b, "IBM heuristic above minimum, total gate count: %+.1f%% (paper: ≈45%%)\n", 100*s.AvgIBMAboveMinTotal)
	fmt.Fprintf(&b, "IBM heuristic above minimum, added gates (F):  %+.1f%% (paper: ≈104%%)\n", 100*s.AvgIBMAboveMinAdded)
	fmt.Fprintf(&b, "worst row, added gates:                        %+.1f%%\n", 100*s.MaxIBMAboveMinAdded)
	fmt.Fprintf(&b, "A* baseline above minimum, added gates (F):    %+.1f%% (extension; not in the paper)\n", 100*s.AvgAStarAboveMinAdded)
	fmt.Fprintf(&b, "rows where strategy matched the minimum: disjoint %d/%d, odd %d/%d, triangle %d/%d\n",
		s.DisjointMinimal, s.Rows, s.OddMinimal, s.Rows, s.TriangleMinimal, s.Rows)
	return b.String()
}

func shortDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
	return fmt.Sprintf("%.1fs", d.Seconds())
}
