package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/exact"
	"repro/internal/revlib"
)

func TestRunRowSmall(t *testing.T) {
	b, err := revlib.SuiteByName("ex-1_166")
	if err != nil {
		t.Fatal(err)
	}
	row, err := RunRow(context.Background(), b, Config{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if row.OriginalCost != 19 {
		t.Errorf("orig cost = %d, want 19", row.OriginalCost)
	}
	// Minimal and subsets must agree (paper: §4.1 preserves minimality on
	// the suite).
	if row.Minimal.Cost != row.Subsets.Cost {
		t.Errorf("minimal %d vs subsets %d", row.Minimal.Cost, row.Subsets.Cost)
	}
	// No method can beat the minimum.
	for name, col := range map[string]Column{
		"subsets": row.Subsets, "disjoint": row.Disjoint,
		"odd": row.Odd, "triangle": row.Triangle, "ibm": row.IBM,
	} {
		if col.DeltaMin < 0 {
			t.Errorf("%s beats the minimum by %d", name, -col.DeltaMin)
		}
	}
	if row.Minimal.DeltaMin != 0 {
		t.Error("minimal column must have Δmin = 0")
	}
	// |G'| ordering: all ≥ disjoint ≥ triangle, odd ≈ half.
	if row.Disjoint.PermPoints < row.Triangle.PermPoints {
		t.Errorf("disjoint |G'| %d < triangle %d", row.Disjoint.PermPoints, row.Triangle.PermPoints)
	}
	// Cost identity: c = original + F.
	if row.Minimal.Cost != row.OriginalCost+row.Minimal.Added {
		t.Error("cost identity violated")
	}
}

func TestRunTable1Subset(t *testing.T) {
	rows, err := RunTable1(context.Background(), Config{Engine: exact.EngineDP, Names: []string{"3_17_13", "ham3_102", "4gt11_84"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	s := Summary(rows)
	if s.Rows != 3 {
		t.Errorf("summary rows = %d", s.Rows)
	}
	if s.AvgIBMAboveMinTotal < 0 {
		t.Errorf("IBM below minimum on average: %f", s.AvgIBMAboveMinTotal)
	}
	table := FormatTable(rows)
	for _, want := range []string{"3_17_13", "ham3_102", "Benchmark", "cmin"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q", want)
		}
	}
	sum := FormatSummary(s)
	if !strings.Contains(sum, "paper") {
		t.Errorf("summary missing paper reference:\n%s", sum)
	}
}

func TestSATEngineMatchesDPOnRow(t *testing.T) {
	// The methodology cross-check at harness level: the seeded SAT engine
	// must reproduce the DP costs on a small benchmark.
	b, err := revlib.SuiteByName("ex-1_166")
	if err != nil {
		t.Fatal(err)
	}
	dpRow, err := RunRow(context.Background(), b, Config{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	satRow, err := RunRow(context.Background(), b, Config{Engine: exact.EngineSAT, SeedSATWithDP: true})
	if err != nil {
		t.Fatal(err)
	}
	if dpRow.Minimal.Cost != satRow.Minimal.Cost {
		t.Errorf("minimal: dp %d vs sat %d", dpRow.Minimal.Cost, satRow.Minimal.Cost)
	}
	if dpRow.Triangle.Cost != satRow.Triangle.Cost {
		t.Errorf("triangle: dp %d vs sat %d", dpRow.Triangle.Cost, satRow.Triangle.Cost)
	}
}

func TestSummaryGuardsZeroAdded(t *testing.T) {
	rows := []Row{{
		OriginalCost: 10,
		Minimal:      Column{Cost: 10, Added: 0},
		IBM:          Column{Cost: 12, Added: 2},
	}}
	s := Summary(rows)
	if s.AvgIBMAboveMinAdded != 0 {
		t.Errorf("zero-F row should be excluded from added average, got %f", s.AvgIBMAboveMinAdded)
	}
	if s.AvgIBMAboveMinTotal != 0.2 {
		t.Errorf("total ratio = %f, want 0.2", s.AvgIBMAboveMinTotal)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Arch == nil || cfg.Arch.Name() != "ibmqx4" {
		t.Error("default arch should be QX4")
	}
	if cfg.HeuristicRuns != 5 {
		t.Errorf("default heuristic runs = %d", cfg.HeuristicRuns)
	}
}

func TestParallelTableMatchesSequential(t *testing.T) {
	names := []string{"ex-1_166", "4gt11_84", "4mod5-v0_20"}
	seq, err := RunTable1(context.Background(), Config{Engine: exact.EngineDP, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunTable1(context.Background(), Config{Engine: exact.EngineDP, Names: names, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Name != par[i].Name || seq[i].Minimal.Cost != par[i].Minimal.Cost ||
			seq[i].IBM.Cost != par[i].IBM.Cost || seq[i].Triangle.Cost != par[i].Triangle.Cost {
			t.Errorf("row %s differs between parallel and sequential", seq[i].Name)
		}
	}
}

// TestRunRowPortfolio checks that routing a Table-1 row through the
// portfolio layer reproduces the lone DP engine's costs column for column.
func TestRunRowPortfolio(t *testing.T) {
	b, err := revlib.SuiteByName("ex-1_166")
	if err != nil {
		t.Fatal(err)
	}
	lone, err := RunRow(context.Background(), b, Config{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	port, err := RunRow(context.Background(), b, Config{Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]Column{
		"minimal":  {lone.Minimal, port.Minimal},
		"subsets":  {lone.Subsets, port.Subsets},
		"disjoint": {lone.Disjoint, port.Disjoint},
		"odd":      {lone.Odd, port.Odd},
		"triangle": {lone.Triangle, port.Triangle},
	} {
		if pair[0].Cost != pair[1].Cost {
			t.Errorf("%s: lone engine cost %d, portfolio cost %d", name, pair[0].Cost, pair[1].Cost)
		}
	}
}

// TestRunTable1Cancelled aborts a run via context and expects the error to
// surface promptly.
func TestRunTable1Cancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunTable1(ctx, Config{Engine: exact.EngineDP, Names: []string{"3_17_13"}})
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
}
