// Package perm provides permutations, injective logical→physical qubit
// mappings, and minimal token-swap distances over coupling graphs.
//
// The mapping of a circuit's n logical qubits onto an architecture's m ≥ n
// physical qubits is an injective function σ with σ(j) = the physical qubit
// holding logical qubit j. Inserting a SWAP on a coupling-graph edge (a, b)
// exchanges the states of physical qubits a and b, transforming σ into σ'
// with the roles of a and b exchanged. The paper's swaps(π) function
// (§3.2, Eq. 5) — the minimal number of SWAP operations realizing a
// permutation π of physical-qubit states — is computed here once per
// architecture by breadth-first search (the paper's "exhaustive search ...
// conducted only once").
package perm

import "fmt"

// Perm is a permutation of {0, …, m−1}. p[i] = j means the state of
// physical qubit i moves to physical qubit j (paper Definition 5).
type Perm []int

// Identity returns the identity permutation on m elements.
func Identity(m int) Perm {
	p := make(Perm, m)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a bijection on {0, …, len(p)−1}.
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// IsIdentity reports whether p fixes every element.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Compose returns the permutation q∘p: first apply p, then q.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic("perm: composing permutations of different sizes")
	}
	r := make(Perm, len(p))
	for i, v := range p {
		r[i] = q[v]
	}
	return r
}

// Inverse returns p⁻¹.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for i, v := range p {
		r[v] = i
	}
	return r
}

// Equal reports whether two permutations are identical.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i, v := range p {
		if q[i] != v {
			return false
		}
	}
	return true
}

// Copy returns a copy of p.
func (p Perm) Copy() Perm { return append(Perm(nil), p...) }

// String renders the permutation in one-line notation, e.g. "(2 0 1)".
func (p Perm) String() string {
	s := "("
	for i, v := range p {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}

// All enumerates every permutation of m elements in lexicographic order.
// It panics for m > 8 to guard against accidental factorial blow-ups; the
// architectures whose permutation groups are enumerated exhaustively in this
// library have m ≤ 5 relevant qubits (paper evaluates on IBM QX4).
func All(m int) []Perm {
	if m < 0 || m > 8 {
		panic(fmt.Sprintf("perm: refusing to enumerate %d! permutations", m))
	}
	var out []Perm
	cur := Identity(m)
	var rec func(k int)
	rec = func(k int) {
		if k == m {
			out = append(out, cur.Copy())
			return
		}
		for i := k; i < m; i++ {
			cur[k], cur[i] = cur[i], cur[k]
			rec(k + 1)
			cur[k], cur[i] = cur[i], cur[k]
		}
	}
	rec(0)
	return out
}

// MinTranspositions returns the minimal number of arbitrary (unrestricted)
// transpositions whose product is p: len(p) minus the number of cycles.
// This lower-bounds the coupling-restricted swap count.
func (p Perm) MinTranspositions() int {
	seen := make([]bool, len(p))
	cycles := 0
	for i := range p {
		if seen[i] {
			continue
		}
		cycles++
		for j := i; !seen[j]; j = p[j] {
			seen[j] = true
		}
	}
	return len(p) - cycles
}
