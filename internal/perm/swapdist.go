package perm

import "fmt"

// Edge is an undirected coupling-graph edge between two physical qubits.
// SWAP operations are insertable on any coupled pair regardless of CNOT
// direction (a SWAP decomposes into 3 CNOTs + 4 H in either orientation,
// paper Fig. 3).
type Edge struct{ A, B int }

// Normalize returns the edge with A ≤ B.
func (e Edge) Normalize() Edge {
	if e.A > e.B {
		return Edge{e.B, e.A}
	}
	return e
}

// SwapTable holds all-pairs minimal swap distances between the injective
// mappings of a Space under a fixed set of coupling edges. It realizes the
// paper's swaps(π) cost function (Eq. 5) generalized to partial mappings
// (n < m), where unoccupied physical qubits may be used as routing space.
type SwapTable struct {
	Space *Space
	Edges []Edge
	// dist[a][b] = minimal number of SWAPs transforming mapping a into b,
	// or -1 if unreachable (disconnected coupling graph).
	dist [][]int16
	// next[a][b] = edge index of a distance-decreasing first swap on a
	// shortest path from a to b, or -1.
	next [][]int16
}

// NewSwapTable computes the all-pairs swap-distance table by breadth-first
// search from every mapping. Complexity O(|Space|² + |Space|·|Edges|),
// trivial for the ≤120-mapping spaces of the 5-qubit IBM QX devices.
func NewSwapTable(space *Space, edges []Edge) *SwapTable {
	t := &SwapTable{Space: space}
	seen := make(map[Edge]bool)
	for _, e := range edges {
		n := e.Normalize()
		if n.A == n.B || n.A < 0 || n.B >= space.M {
			panic(fmt.Sprintf("perm: invalid edge %+v for m=%d", e, space.M))
		}
		if !seen[n] {
			seen[n] = true
			t.Edges = append(t.Edges, n)
		}
	}
	size := space.Size()
	t.dist = make([][]int16, size)
	t.next = make([][]int16, size)

	// Precompute the neighbor structure once: neighbor[a][e] is the index
	// of the mapping obtained from mapping a by swapping edge e.
	neighbor := make([][]int32, size)
	for a := 0; a < size; a++ {
		neighbor[a] = make([]int32, len(t.Edges))
		ma := space.Mapping(a)
		for ei, e := range t.Edges {
			neighbor[a][ei] = int32(space.Index(ma.ApplySwap(e.A, e.B)))
		}
	}

	queue := make([]int32, 0, size)
	for src := 0; src < size; src++ {
		d := make([]int16, size)
		nx := make([]int16, size)
		for i := range d {
			d[i] = -1
			nx[i] = -1
		}
		d[src] = 0
		queue = queue[:0]
		queue = append(queue, int32(src))
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for ei := range t.Edges {
				b := neighbor[a][ei]
				if d[b] == -1 {
					d[b] = d[a] + 1
					queue = append(queue, b)
				}
			}
		}
		// BFS gives dist from src to every target; store per-source row.
		t.dist[src] = d
		t.next[src] = nx
	}
	// Fill first-move table using the completed distance matrix:
	// next[a][b] = an edge e with dist(swap_e(a), b) == dist(a,b) − 1.
	for a := 0; a < size; a++ {
		for b := 0; b < size; b++ {
			if a == b || t.dist[a][b] <= 0 {
				continue
			}
			for ei := range t.Edges {
				nb := neighbor[a][ei]
				if t.dist[nb][b] == t.dist[a][b]-1 {
					t.next[a][b] = int16(ei)
					break
				}
			}
		}
	}
	return t
}

// MinSwaps returns the minimal number of SWAP operations transforming
// mapping from into mapping to, or −1 if unreachable.
func (t *SwapTable) MinSwaps(from, to Mapping) int {
	a, b := t.Space.Index(from), t.Space.Index(to)
	if a < 0 || b < 0 {
		panic("perm: mapping not in space")
	}
	return int(t.dist[a][b])
}

// MinSwapsIdx is MinSwaps on dense indices.
func (t *SwapTable) MinSwapsIdx(a, b int) int { return int(t.dist[a][b]) }

// SwapPath returns a minimal sequence of edges whose successive application
// transforms from into to. It returns nil, false if to is unreachable.
func (t *SwapTable) SwapPath(from, to Mapping) ([]Edge, bool) {
	a, b := t.Space.Index(from), t.Space.Index(to)
	if a < 0 || b < 0 {
		panic("perm: mapping not in space")
	}
	if t.dist[a][b] < 0 {
		return nil, false
	}
	var path []Edge
	cur := from.Copy()
	ci := a
	for ci != b {
		ei := t.next[ci][b]
		if ei < 0 {
			return nil, false
		}
		e := t.Edges[ei]
		path = append(path, e)
		cur = cur.ApplySwap(e.A, e.B)
		ci = t.Space.Index(cur)
	}
	return path, true
}

// Reachable reports whether any mapping can be transformed into any other
// (true iff the coupling graph restricted to the space is connected enough).
func (t *SwapTable) Reachable(from, to Mapping) bool {
	return t.MinSwaps(from, to) >= 0
}

// PermSwaps computes swaps(π) for a full permutation π of the space's
// physical qubits: the minimal number of coupling-edge SWAPs realizing π.
// It requires a full space (n == m); the result is independent of the
// starting mapping. Returns −1 if π is unrealizable.
func (t *SwapTable) PermSwaps(p Perm) int {
	if t.Space.N != t.Space.M {
		panic("perm: PermSwaps requires a full mapping space (n == m)")
	}
	if len(p) != t.Space.M {
		panic("perm: permutation size mismatch")
	}
	id := IdentityMapping(t.Space.M)
	return t.MinSwaps(id, Mapping(p))
}

// MaxDistance returns the diameter of the swap graph (the largest finite
// pairwise distance), useful for sizing cost encodings.
func (t *SwapTable) MaxDistance() int {
	maxD := 0
	for _, row := range t.dist {
		for _, d := range row {
			if int(d) > maxD {
				maxD = int(d)
			}
		}
	}
	return maxD
}
