package perm

import (
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	p := Identity(4)
	if !p.IsIdentity() || !p.Valid() {
		t.Errorf("Identity(4) = %v", p)
	}
	if Identity(0).String() != "()" {
		t.Errorf("empty perm string = %q", Identity(0).String())
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p    Perm
		want bool
	}{
		{Perm{0, 1, 2}, true},
		{Perm{2, 0, 1}, true},
		{Perm{0, 0, 1}, false},
		{Perm{0, 3, 1}, false},
		{Perm{-1, 0, 1}, false},
		{Perm{}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("%v.Valid() = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestComposeInverse(t *testing.T) {
	p := Perm{1, 2, 0, 4, 3}
	inv := p.Inverse()
	if !p.Compose(inv).IsIdentity() {
		t.Errorf("p∘p⁻¹ = %v", p.Compose(inv))
	}
	if !inv.Compose(p).IsIdentity() {
		t.Errorf("p⁻¹∘p = %v", inv.Compose(p))
	}
	// Compose order: (p.Compose(q))[i] = q[p[i]].
	q := Perm{2, 1, 0, 3, 4}
	r := p.Compose(q)
	for i := range p {
		if r[i] != q[p[i]] {
			t.Errorf("compose[%d] = %d, want %d", i, r[i], q[p[i]])
		}
	}
}

func TestComposePanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Perm{0, 1}.Compose(Perm{0})
}

func TestAll(t *testing.T) {
	for m, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24, 5: 120} {
		perms := All(m)
		if len(perms) != want {
			t.Errorf("All(%d) has %d perms, want %d", m, len(perms), want)
		}
		seen := map[string]bool{}
		for _, p := range perms {
			if !p.Valid() {
				t.Errorf("All(%d) produced invalid %v", m, p)
			}
			if seen[p.String()] {
				t.Errorf("All(%d) produced duplicate %v", m, p)
			}
			seen[p.String()] = true
		}
	}
}

func TestAllPanicsOnLargeM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m=9")
		}
	}()
	All(9)
}

func TestMinTranspositions(t *testing.T) {
	cases := []struct {
		p    Perm
		want int
	}{
		{Identity(5), 0},
		{Perm{1, 0, 2}, 1},       // one 2-cycle
		{Perm{1, 2, 0}, 2},       // one 3-cycle
		{Perm{1, 0, 3, 2}, 2},    // two 2-cycles
		{Perm{4, 0, 1, 2, 3}, 4}, // one 5-cycle
	}
	for _, tc := range cases {
		if got := tc.p.MinTranspositions(); got != tc.want {
			t.Errorf("%v.MinTranspositions() = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// Property: inverse of inverse is the original; compose with inverse is id.
func TestPermProperties(t *testing.T) {
	perms := All(5)
	f := func(i, j uint) bool {
		p := perms[int(i%uint(len(perms)))]
		q := perms[int(j%uint(len(perms)))]
		if !p.Inverse().Inverse().Equal(p) {
			return false
		}
		// (p∘q)⁻¹ = q⁻¹∘p⁻¹ under our Compose convention: p.Compose(q)
		// applies p first, so its inverse applies q⁻¹ first.
		lhs := p.Compose(q).Inverse()
		rhs := q.Inverse().Compose(p.Inverse())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCopyIndependent(t *testing.T) {
	p := Perm{1, 0}
	c := p.Copy()
	c[0] = 0
	if p[0] != 1 {
		t.Error("Copy shares storage")
	}
}
