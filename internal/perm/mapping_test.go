package perm

import (
	"testing"
	"testing/quick"
)

func TestMappingBasics(t *testing.T) {
	mp := IdentityMapping(3)
	if !mp.Valid(5) {
		t.Error("identity mapping should be valid")
	}
	if !mp.Valid(3) {
		t.Error("identity mapping should be valid with m=n")
	}
	if (Mapping{0, 0}).Valid(3) {
		t.Error("non-injective mapping should be invalid")
	}
	if (Mapping{0, 5}).Valid(3) {
		t.Error("out-of-range mapping should be invalid")
	}
}

func TestPhysToLogical(t *testing.T) {
	mp := Mapping{2, 0} // q0→p2, q1→p0
	r := mp.PhysToLogical(4)
	want := []int{1, -1, 0, -1}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("PhysToLogical = %v, want %v", r, want)
			break
		}
	}
}

func TestApplySwap(t *testing.T) {
	mp := Mapping{2, 0}
	got := mp.ApplySwap(2, 3) // logical 0 moves from p2 to p3
	if !got.Equal(Mapping{3, 0}) {
		t.Errorf("ApplySwap = %v", got)
	}
	// Swapping two occupied qubits exchanges them.
	got = mp.ApplySwap(0, 2)
	if !got.Equal(Mapping{0, 2}) {
		t.Errorf("ApplySwap = %v", got)
	}
	// Swapping two unoccupied qubits is a no-op.
	got = mp.ApplySwap(1, 3)
	if !got.Equal(mp) {
		t.Errorf("ApplySwap = %v", got)
	}
	// Original must be unchanged.
	if !mp.Equal(Mapping{2, 0}) {
		t.Error("ApplySwap mutated receiver")
	}
}

func TestApplyPerm(t *testing.T) {
	mp := Mapping{2, 0}
	p := Perm{1, 2, 0} // p0→p1, p1→p2, p2→p0
	got := mp.ApplyPerm(p)
	if !got.Equal(Mapping{0, 1}) {
		t.Errorf("ApplyPerm = %v, want [0 1]", got)
	}
}

func TestMappingString(t *testing.T) {
	if s := (Mapping{2, 0}).String(); s != "q0→p2 q1→p0" {
		t.Errorf("String = %q", s)
	}
}

func TestSpaceSizes(t *testing.T) {
	cases := []struct{ m, n, want int }{
		{5, 5, 120},
		{5, 4, 120},
		{5, 3, 60},
		{5, 2, 20},
		{4, 4, 24},
		{3, 0, 1},
	}
	for _, tc := range cases {
		s := NewSpace(tc.m, tc.n)
		if s.Size() != tc.want {
			t.Errorf("Space(%d,%d).Size = %d, want %d", tc.m, tc.n, s.Size(), tc.want)
		}
	}
}

func TestSpaceIndexRoundTrip(t *testing.T) {
	s := NewSpace(5, 3)
	for idx := 0; idx < s.Size(); idx++ {
		mp := s.Mapping(idx)
		if got := s.Index(mp); got != idx {
			t.Fatalf("Index(Mapping(%d)) = %d", idx, got)
		}
	}
	if s.Index(Mapping{0, 1}) != -1 {
		t.Error("wrong-length mapping should have index -1")
	}
	if s.Index(Mapping{0, 0, 1}) != -1 {
		t.Error("non-injective mapping should have index -1")
	}
}

func TestSpacePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSpace(2, 3) },
		func() { NewSpace(16, 12) }, // > 10M mappings
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: ApplySwap is an involution and preserves validity.
func TestApplySwapProperties(t *testing.T) {
	s := NewSpace(5, 3)
	f := func(idx, a, b uint) bool {
		mp := s.Mapping(int(idx % uint(s.Size())))
		pa, pb := int(a%5), int(b%5)
		if pa == pb {
			return true
		}
		swapped := mp.ApplySwap(pa, pb)
		return swapped.Valid(5) && swapped.ApplySwap(pa, pb).Equal(mp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
