package perm

import "testing"

// lineDist builds the hop-distance matrix of a path graph on m nodes.
func lineDist(m int) [][]int {
	d := make([][]int, m)
	for i := range d {
		d[i] = make([]int, m)
		for j := range d[i] {
			if i > j {
				d[i][j] = i - j
			} else {
				d[i][j] = j - i
			}
		}
	}
	return d
}

func TestPlacementLowerBound(t *testing.T) {
	d := lineDist(5)
	// Logical 0 at one end, logical 1 at the other: distance 4 → 3 swaps.
	if got := PlacementLowerBound(d, Mapping{0, 4}, []Edge{{A: 0, B: 1}}); got != 3 {
		t.Errorf("single distant pair: %d, want 3", got)
	}
	// Adjacent pair: no deficit.
	if got := PlacementLowerBound(d, Mapping{0, 1}, []Edge{{A: 0, B: 1}}); got != 0 {
		t.Errorf("adjacent pair: %d, want 0", got)
	}
	// Two disjoint distant pairs: matching sum 1+1 → ⌈2/2⌉ = 1, but the
	// single-pair bound is also 1; both pairs at distance 2.
	if got := PlacementLowerBound(d, Mapping{0, 2, 4, 2}, nil); got != 0 {
		t.Errorf("no pairs: %d, want 0", got)
	}
	// Disconnected pair reports −1.
	disc := [][]int{{0, -1}, {-1, 0}}
	if got := PlacementLowerBound(disc, Mapping{0, 1}, []Edge{{A: 0, B: 1}}); got != -1 {
		t.Errorf("disconnected pair: %d, want -1", got)
	}
}

func TestInteractionLowerBoundTriangleOnLine(t *testing.T) {
	// A triangle interaction graph cannot embed in a path: any placement
	// leaves one pair at distance ≥ 2, so at least one SWAP is forced.
	d := lineDist(3)
	pairs := []Edge{{A: 0, B: 1}, {A: 1, B: 2}, {A: 0, B: 2}}
	if got := InteractionLowerBound(d, 3, pairs); got != 1 {
		t.Errorf("triangle on a line: %d, want 1", got)
	}
	// A path interaction graph embeds: bound 0.
	if got := InteractionLowerBound(d, 3, pairs[:2]); got != 0 {
		t.Errorf("path on a line: %d, want 0", got)
	}
}

func TestInteractionLowerBoundMatching(t *testing.T) {
	// Star K1,4 on a 5-path: the center must be adjacent to 4 leaves but a
	// path has degree ≤ 2, so at least two pairs start at distance ≥ 2.
	d := lineDist(5)
	pairs := []Edge{{A: 0, B: 1}, {A: 0, B: 2}, {A: 0, B: 3}, {A: 0, B: 4}}
	if got := InteractionLowerBound(d, 5, pairs); got < 1 {
		t.Errorf("K1,4 on a path: %d, want ≥ 1", got)
	}
}

func TestInteractionLowerBoundTooLarge(t *testing.T) {
	// Oversized placement spaces fall back to the trivial bound.
	d := lineDist(16)
	pairs := []Edge{{A: 0, B: 1}}
	if got := InteractionLowerBound(d, 12, pairs); got != 0 {
		t.Errorf("oversized space: %d, want 0", got)
	}
}
