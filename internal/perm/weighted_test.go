package perm

import "testing"

// pathEdges of a 4-vertex path graph 0–1–2–3.
var pathEdges = []Edge{{0, 1}, {1, 2}, {2, 3}}

// TestWeightedTableUniformMatchesBFS: with every weight equal to w the
// weighted table must be exactly w times the BFS swap-count table, with
// identical swap counts along the chosen paths.
func TestWeightedTableUniformMatchesBFS(t *testing.T) {
	const w = 7
	space := NewSpace(4, 3)
	bfs := NewSwapTable(space, pathEdges)
	wt := NewWeightedSwapTable(space, pathEdges, func(Edge) int { return w })
	for a := 0; a < space.Size(); a++ {
		for b := 0; b < space.Size(); b++ {
			d := bfs.MinSwapsIdx(a, b)
			wd, ws := wt.MinWeightIdx(a, b), wt.SwapsAlongIdx(a, b)
			switch {
			case d < 0:
				if wd >= 0 {
					t.Fatalf("(%d,%d): BFS unreachable but weighted dist %d", a, b, wd)
				}
			case wd != w*d || ws != d:
				t.Fatalf("(%d,%d): weighted %d/%d swaps, want %d/%d", a, b, wd, ws, w*d, d)
			}
		}
	}
	if got, want := wt.MaxWeight(), w*bfs.MaxDistance(); got != want {
		t.Errorf("MaxWeight = %d, want %d", got, want)
	}
}

// TestWeightedTableDetour: on a triangle with one expensive edge the
// cheapest realization of a transposition routes around it, spending more
// swaps for less weight.
func TestWeightedTableDetour(t *testing.T) {
	tri := []Edge{{0, 1}, {1, 2}, {0, 2}}
	weightOf := func(e Edge) int {
		if e.Normalize() == (Edge{A: 0, B: 1}) {
			return 25 // dearer than the two-swap detour (2 + 2... see below)
		}
		return 7
	}
	space := NewSpace(3, 3)
	wt := NewWeightedSwapTable(space, tri, weightOf)

	// π swapping logical 0 and 1 directly costs 25 on edge {0,1}; the
	// detour swap(0,2), swap(1,2), swap(0,2) costs 21. Weighted distance
	// picks the detour, swaps-along reports its length 3.
	p := Perm{1, 0, 2}
	if got := wt.PermWeight(p); got != 21 {
		t.Errorf("PermWeight = %d, want 21 (detour)", got)
	}
	if got := wt.PermSwapsAlong(p); got != 3 {
		t.Errorf("PermSwapsAlong = %d, want 3", got)
	}

	// SwapPath materializes exactly that path: length matches
	// SwapsAlongIdx, applying it lands on the target, never touching the
	// expensive edge, and total weight equals MinWeight.
	from, to := IdentityMapping(3), Mapping(p)
	path, ok := wt.SwapPath(from, to)
	if !ok {
		t.Fatal("SwapPath failed on a connected space")
	}
	if len(path) != 3 {
		t.Fatalf("path length %d, want 3", len(path))
	}
	cur, total := from.Copy(), 0
	for _, e := range path {
		if e.Normalize() == (Edge{A: 0, B: 1}) {
			t.Fatalf("path %v uses the expensive edge", path)
		}
		total += weightOf(e)
		cur = cur.ApplySwap(e.A, e.B)
	}
	if !cur.Equal(to) {
		t.Fatalf("path %v ends at %v, want %v", path, cur, to)
	}
	if total != wt.MinWeight(from, to) {
		t.Errorf("path weight %d != MinWeight %d", total, wt.MinWeight(from, to))
	}
}

// TestWeightedTablePartialSpaceUnreachable: in a partial mapping space on a
// disconnected graph, mappings across components are unreachable (−1), and
// SwapPath reports false.
func TestWeightedTableUnreachable(t *testing.T) {
	space := NewSpace(4, 1) // one logical qubit on 4 physical
	wt := NewWeightedSwapTable(space, []Edge{{0, 1}, {2, 3}}, func(Edge) int { return 7 })
	from := Mapping{0} // logical 0 on physical 0
	to := Mapping{2}   // ... on physical 2, in the other component
	if got := wt.MinWeight(from, to); got != -1 {
		t.Errorf("MinWeight across components = %d, want -1", got)
	}
	if _, ok := wt.SwapPath(from, to); ok {
		t.Error("SwapPath across components succeeded")
	}
}

func TestWeightedTableRejectsBadWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("weight 0 did not panic")
		}
	}()
	NewWeightedSwapTable(NewSpace(2, 2), []Edge{{0, 1}}, func(Edge) int { return 0 })
}
