package perm

import (
	"testing"
	"testing/quick"
)

// qx4Edges is the undirected edge set of IBM QX4 (paper Fig. 2), 0-based:
// p1..p5 → 0..4. CM = {(1,0),(2,0),(2,1),(3,2),(3,4),(4,2)}.
func qx4Edges() []Edge {
	return []Edge{{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {4, 2}}
}

func TestNewSwapTableDedupesEdges(t *testing.T) {
	s := NewSpace(3, 3)
	tbl := NewSwapTable(s, []Edge{{0, 1}, {1, 0}, {0, 1}, {1, 2}})
	if len(tbl.Edges) != 2 {
		t.Errorf("got %d edges, want 2", len(tbl.Edges))
	}
}

func TestNewSwapTablePanicsOnBadEdge(t *testing.T) {
	s := NewSpace(3, 3)
	for _, e := range []Edge{{0, 0}, {0, 5}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edge %+v should panic", e)
				}
			}()
			NewSwapTable(s, []Edge{e})
		}()
	}
}

func TestLineGraphDistances(t *testing.T) {
	// Path 0-1-2 with 3 tokens: moving token from one end to the other.
	s := NewSpace(3, 3)
	tbl := NewSwapTable(s, []Edge{{0, 1}, {1, 2}})
	id := IdentityMapping(3)
	// Adjacent transposition: 1 swap.
	if got := tbl.MinSwaps(id, Mapping{1, 0, 2}); got != 1 {
		t.Errorf("adjacent swap distance = %d, want 1", got)
	}
	// Reversal (0↔2 with middle fixed) on a path of 3 needs 3 swaps.
	if got := tbl.MinSwaps(id, Mapping{2, 1, 0}); got != 3 {
		t.Errorf("reversal distance = %d, want 3", got)
	}
	// Rotation by one: 2 swaps.
	if got := tbl.MinSwaps(id, Mapping{1, 2, 0}); got != 2 {
		t.Errorf("rotation distance = %d, want 2", got)
	}
}

func TestDisconnectedGraphUnreachable(t *testing.T) {
	// Vertices {0,1} and {2,3} disconnected; moving a token across is
	// impossible.
	s := NewSpace(4, 1)
	tbl := NewSwapTable(s, []Edge{{0, 1}, {2, 3}})
	if tbl.Reachable(Mapping{0}, Mapping{2}) {
		t.Error("token should not cross disconnected components")
	}
	if !tbl.Reachable(Mapping{0}, Mapping{1}) {
		t.Error("token should move within component")
	}
	if _, ok := tbl.SwapPath(Mapping{0}, Mapping{3}); ok {
		t.Error("SwapPath should fail across components")
	}
}

func TestQX4PermSwapsTable(t *testing.T) {
	// Full permutation space on QX4. Every permutation must be realizable
	// (the graph is connected), identity costs 0, single edge swaps cost 1.
	s := NewSpace(5, 5)
	tbl := NewSwapTable(s, qx4Edges())
	if got := tbl.PermSwaps(Identity(5)); got != 0 {
		t.Errorf("identity swaps = %d", got)
	}
	for _, e := range qx4Edges() {
		p := Identity(5)
		p[e.A], p[e.B] = p[e.B], p[e.A]
		if got := tbl.PermSwaps(p); got != 1 {
			t.Errorf("edge swap %+v costs %d, want 1", e, got)
		}
	}
	// A transposition of non-adjacent qubits costs at least 2; p0↔p4
	// (graph distance 2) costs 3 swaps (move there and back restoring the
	// middle).
	p := Identity(5)
	p[0], p[4] = p[4], p[0]
	if got := tbl.PermSwaps(p); got != 3 {
		t.Errorf("p0↔p4 swaps = %d, want 3", got)
	}
	// Every permutation realizable; swaps(π) ≥ unrestricted lower bound.
	for _, pp := range All(5) {
		sw := tbl.PermSwaps(pp)
		if sw < 0 {
			t.Fatalf("perm %v unrealizable on connected QX4", pp)
		}
		if sw < pp.MinTranspositions() {
			t.Fatalf("perm %v: swaps %d below free lower bound %d", pp, sw, pp.MinTranspositions())
		}
	}
}

func TestSwapPathRealizesMapping(t *testing.T) {
	s := NewSpace(5, 4)
	tbl := NewSwapTable(s, qx4Edges())
	f := func(ai, bi uint) bool {
		a := s.Mapping(int(ai % uint(s.Size())))
		b := s.Mapping(int(bi % uint(s.Size())))
		path, ok := tbl.SwapPath(a, b)
		if !ok {
			return false // QX4 connected: everything reachable
		}
		if len(path) != tbl.MinSwaps(a, b) {
			return false
		}
		cur := a.Copy()
		for _, e := range path {
			cur = cur.ApplySwap(e.A, e.B)
		}
		return cur.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: swap distance is a metric (symmetry + triangle inequality).
func TestSwapDistanceMetric(t *testing.T) {
	s := NewSpace(5, 3)
	tbl := NewSwapTable(s, qx4Edges())
	f := func(ai, bi, ci uint) bool {
		a := int(ai % uint(s.Size()))
		b := int(bi % uint(s.Size()))
		c := int(ci % uint(s.Size()))
		dab := tbl.MinSwapsIdx(a, b)
		dba := tbl.MinSwapsIdx(b, a)
		dac := tbl.MinSwapsIdx(a, c)
		dcb := tbl.MinSwapsIdx(c, b)
		if dab != dba {
			return false
		}
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMaxDistanceQX4(t *testing.T) {
	s := NewSpace(5, 5)
	tbl := NewSwapTable(s, qx4Edges())
	d := tbl.MaxDistance()
	// The QX4 token-swapping diameter is small but positive; it bounds the
	// per-permutation-point cost in the encoder (7·d).
	if d < 3 || d > 8 {
		t.Errorf("QX4 diameter = %d, outside plausible range [3,8]", d)
	}
	t.Logf("QX4 full-permutation token-swap diameter: %d", d)
}

func TestPermSwapsPanics(t *testing.T) {
	s := NewSpace(5, 3)
	tbl := NewSwapTable(s, qx4Edges())
	defer func() {
		if recover() == nil {
			t.Error("PermSwaps on partial space should panic")
		}
	}()
	tbl.PermSwaps(Identity(5))
}
