package perm

// Admissible SWAP lower bounds from coupling-graph distances (paper §2's
// cost argument). Every SWAP moves the states of at most two physical
// qubits one coupling edge apart, so for a logical pair interacting via a
// CNOT whose endpoints start at physical distance d, at least d−1 SWAPs
// must move one of its endpoints before the pair can become adjacent to
// execute. Two consequences bound any run from below, for a fixed initial
// placement φ:
//
//   - single pair:   SWAPs ≥ max over pairs of (d_φ(pair) − 1)
//   - disjoint set:  each SWAP moves ≤ 2 logical tokens, and tokens belong
//     to ≤ 1 pair of a matching, so SWAPs ≥ ⌈Σ_M (d_φ(pair) − 1) / 2⌉ for
//     any matching M of the interaction graph.
//
// Since the initial placement is free, minimizing the combined bound over
// all injective placements yields an admissible lower bound on the SWAPs of
// every valid mapping run — the seed for the SAT descent's lower end.

// maxLowerBoundPlacements caps the placement enumeration. The SAT engine
// only ever solves instances with m ≤ 6 physical qubits (≤ 720 placements);
// anything larger falls back to the trivial bound 0.
const maxLowerBoundPlacements = 50000

// PlacementLowerBound returns the admissible SWAP lower bound for a fixed
// initial placement: place[j] is the physical qubit of logical qubit j,
// dist the physical hop-distance matrix (−1 = disconnected), and pairs the
// distinct interacting logical pairs. It returns −1 when some interacting
// pair is disconnected under the placement (no run can start there).
func PlacementLowerBound(dist [][]int, place Mapping, pairs []Edge) int {
	deficits := make([]int, len(pairs))
	maxDef := 0
	for i, p := range pairs {
		d := dist[place[p.A]][place[p.B]]
		if d < 0 {
			return -1
		}
		if d > 1 {
			deficits[i] = d - 1
			if deficits[i] > maxDef {
				maxDef = deficits[i]
			}
		}
	}
	if maxDef == 0 {
		return 0
	}
	lb := (maxWeightMatching(pairs, deficits) + 1) / 2
	if maxDef > lb {
		lb = maxDef
	}
	return lb
}

// InteractionLowerBound minimizes PlacementLowerBound over every injective
// placement of n logical qubits into the m = len(dist) physical qubits. It
// returns 0 (the trivial bound) when the placement space is too large to
// enumerate or when no placement connects all interacting pairs (the run
// will discover unsatisfiability itself).
func InteractionLowerBound(dist [][]int, n int, pairs []Edge) int {
	m := len(dist)
	if n > m || len(pairs) == 0 {
		return 0
	}
	count := 1
	for i := 0; i < n; i++ {
		count *= m - i
		if count > maxLowerBoundPlacements {
			return 0
		}
	}

	best := -1
	place := make(Mapping, n)
	used := make([]bool, m)
	var rec func(j int) bool // returns true once a 0 bound is found
	rec = func(j int) bool {
		if j == n {
			lb := PlacementLowerBound(dist, place, pairs)
			if lb >= 0 && (best < 0 || lb < best) {
				best = lb
			}
			return best == 0
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			place[j] = i
			done := rec(j + 1)
			used[i] = false
			if done {
				return true
			}
		}
		return false
	}
	rec(0)
	if best < 0 {
		return 0 // every placement leaves some pair disconnected
	}
	return best
}

// InteractionLowerBoundWeighted is the admissible weighted-cost analogue
// of InteractionLowerBound: with per-edge SWAP weights all ≥ minSwapWeight,
// every SWAP of any run costs at least minSwapWeight, so the count bound
// scaled by it is a valid lower bound on the weighted SWAP cost. (Using the
// minimum keeps the bound admissible even when the cheap edges are nowhere
// near the interacting qubits.)
func InteractionLowerBoundWeighted(dist [][]int, n int, pairs []Edge, minSwapWeight int) int {
	if minSwapWeight < 1 {
		minSwapWeight = 1
	}
	return InteractionLowerBound(dist, n, pairs) * minSwapWeight
}

// PlacementLowerBoundWeighted scales PlacementLowerBound by the minimum
// per-edge SWAP weight; −1 propagates (disconnected pair).
func PlacementLowerBoundWeighted(dist [][]int, place Mapping, pairs []Edge, minSwapWeight int) int {
	lb := PlacementLowerBound(dist, place, pairs)
	if lb <= 0 || minSwapWeight < 1 {
		return lb
	}
	return lb * minSwapWeight
}

// maxWeightMatching returns the maximum total weight of a set of pairwise
// token-disjoint pairs, by branching over the pair list (≤ n(n−1)/2 ≤ 15
// pairs for the m ≤ 6 instances this package sees).
func maxWeightMatching(pairs []Edge, weights []int) int {
	var rec func(i int, used uint64) int
	rec = func(i int, used uint64) int {
		for ; i < len(pairs); i++ {
			if weights[i] > 0 {
				break
			}
		}
		if i == len(pairs) {
			return 0
		}
		// Skip pair i.
		bestW := rec(i+1, used)
		// Take pair i when both tokens are free.
		bits := uint64(1)<<uint(pairs[i].A) | uint64(1)<<uint(pairs[i].B)
		if used&bits == 0 {
			if w := weights[i] + rec(i+1, used|bits); w > bestW {
				bestW = w
			}
		}
		return bestW
	}
	return rec(0, 0)
}
