package perm

import "fmt"

// Mapping is an injective assignment of logical qubits to physical qubits:
// m[j] = i means logical qubit j is held by physical qubit i. A Mapping over
// n logical and m physical qubits has length n with distinct values in
// [0, m).
type Mapping []int

// IdentityMapping returns the mapping j ↦ j for n logical qubits.
func IdentityMapping(n int) Mapping {
	m := make(Mapping, n)
	for j := range m {
		m[j] = j
	}
	return m
}

// Valid reports whether the mapping is injective with all values in [0, m).
func (mp Mapping) Valid(m int) bool {
	seen := make([]bool, m)
	for _, i := range mp {
		if i < 0 || i >= m || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// Copy returns a copy of the mapping.
func (mp Mapping) Copy() Mapping { return append(Mapping(nil), mp...) }

// Equal reports whether two mappings are identical.
func (mp Mapping) Equal(o Mapping) bool {
	if len(mp) != len(o) {
		return false
	}
	for j, i := range mp {
		if o[j] != i {
			return false
		}
	}
	return true
}

// PhysToLogical returns the inverse view: r[i] = logical qubit held by
// physical qubit i, or −1 if i is unoccupied.
func (mp Mapping) PhysToLogical(m int) []int {
	r := make([]int, m)
	for i := range r {
		r[i] = -1
	}
	for j, i := range mp {
		r[i] = j
	}
	return r
}

// ApplySwap returns the mapping after exchanging the states of physical
// qubits a and b: any logical qubit on a moves to b and vice versa.
func (mp Mapping) ApplySwap(a, b int) Mapping {
	r := mp.Copy()
	for j, i := range r {
		switch i {
		case a:
			r[j] = b
		case b:
			r[j] = a
		}
	}
	return r
}

// ApplyPerm returns π∘σ: the mapping after permuting physical-qubit states
// by π (paper Eq. 3: logical j on physical i moves to physical π(i)).
func (mp Mapping) ApplyPerm(p Perm) Mapping {
	r := make(Mapping, len(mp))
	for j, i := range mp {
		r[j] = p[i]
	}
	return r
}

// String renders the mapping as "q0→p2 q1→p0 …".
func (mp Mapping) String() string {
	s := ""
	for j, i := range mp {
		if j > 0 {
			s += " "
		}
		s += fmt.Sprintf("q%d→p%d", j, i)
	}
	return s
}

// Key packs a mapping into a uint64 usable as a map key (4 bits per
// logical qubit; sufficient for m ≤ 16, n ≤ 16).
func (mp Mapping) Key() uint64 { return mp.key() }

// key packs a mapping into a uint64 for table lookups (4 bits per logical
// qubit; sufficient for m ≤ 16, n ≤ 16).
func (mp Mapping) key() uint64 {
	var k uint64
	for j, i := range mp {
		k |= uint64(i) << (4 * uint(j))
	}
	return k
}

// Space enumerates all injective mappings of n logical qubits into m
// physical qubits and assigns each a dense index, enabling O(1) lookups in
// precomputed distance tables. The total count is m!/(m−n)!.
type Space struct {
	M, N     int
	Mappings []Mapping
	index    map[uint64]int
}

// NewSpace builds the mapping space for n logical and m physical qubits.
// It panics if the space would exceed 10 million mappings (the architectures
// evaluated exhaustively here have m ≤ 5: at most 120 mappings).
func NewSpace(m, n int) *Space {
	if n < 0 || m < n {
		panic(fmt.Sprintf("perm: invalid mapping space m=%d n=%d", m, n))
	}
	count := 1
	for i := 0; i < n; i++ {
		count *= m - i
		if count > 10_000_000 {
			panic(fmt.Sprintf("perm: mapping space m=%d n=%d too large", m, n))
		}
	}
	s := &Space{M: m, N: n, index: make(map[uint64]int, count)}
	cur := make(Mapping, n)
	used := make([]bool, m)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			s.index[cur.key()] = len(s.Mappings)
			s.Mappings = append(s.Mappings, cur.Copy())
			return
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			cur[j] = i
			rec(j + 1)
			used[i] = false
		}
	}
	rec(0)
	return s
}

// Size returns the number of mappings in the space.
func (s *Space) Size() int { return len(s.Mappings) }

// Index returns the dense index of mp, or −1 if mp is not in the space.
func (s *Space) Index(mp Mapping) int {
	if len(mp) != s.N {
		return -1
	}
	idx, ok := s.index[mp.key()]
	if !ok {
		return -1
	}
	return idx
}

// Mapping returns the mapping with dense index idx.
func (s *Space) Mapping(idx int) Mapping { return s.Mappings[idx] }
