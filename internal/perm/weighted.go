package perm

import (
	"container/heap"
	"fmt"
)

// WeightedSwapTable is the SwapTable generalized to per-edge SWAP weights:
// dist minimizes total weight instead of swap count, realizing the
// calibration-weighted swaps_w(π) cost. Ties in weight break toward fewer
// swaps, and the swap count along the chosen minimum-weight path is stored
// alongside the weight so decoded solutions can be rematerialized into an
// operation sequence of exactly that length.
//
// With all weights equal to w the table degenerates to w · SwapTable.dist
// — callers should prefer the plain BFS table in that case (it is cheaper
// and the canonical count-minimal path shape).
type WeightedSwapTable struct {
	Space *Space
	Edges []Edge
	// weight[ei] is the SWAP weight of Edges[ei] (≥ 1).
	weight []int
	// dist[a][b] = minimal total weight transforming mapping a into b, or
	// -1 if unreachable.
	dist [][]int32
	// swaps[a][b] = number of SWAPs on the (weight, swaps)-lexicographically
	// minimal path, or -1.
	swaps [][]int16
	// next[a][b] = edge index of the first swap on that path, or -1.
	next [][]int16
}

// wstItem is a priority-queue entry for the Dijkstra sweep.
type wstItem struct {
	w    int32
	s    int16
	node int32
}

type wstHeap []wstItem

func (h wstHeap) Len() int { return len(h) }
func (h wstHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w < h[j].w
	}
	return h[i].s < h[j].s
}
func (h wstHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wstHeap) Push(x any)   { *h = append(*h, x.(wstItem)) }
func (h *wstHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// NewWeightedSwapTable computes the all-pairs weighted swap-distance table
// by a Dijkstra sweep from every mapping, with weight(e) the SWAP weight
// of coupling edge e (must be ≥ 1 so paths strictly descend).
func NewWeightedSwapTable(space *Space, edges []Edge, weight func(Edge) int) *WeightedSwapTable {
	t := &WeightedSwapTable{Space: space}
	seen := make(map[Edge]bool)
	for _, e := range edges {
		n := e.Normalize()
		if n.A == n.B || n.A < 0 || n.B >= space.M {
			panic(fmt.Sprintf("perm: invalid edge %+v for m=%d", e, space.M))
		}
		if !seen[n] {
			seen[n] = true
			w := weight(n)
			if w < 1 {
				panic(fmt.Sprintf("perm: swap weight %d on %+v must be >= 1", w, n))
			}
			t.Edges = append(t.Edges, n)
			t.weight = append(t.weight, w)
		}
	}
	size := space.Size()
	t.dist = make([][]int32, size)
	t.swaps = make([][]int16, size)
	t.next = make([][]int16, size)

	neighbor := make([][]int32, size)
	for a := 0; a < size; a++ {
		neighbor[a] = make([]int32, len(t.Edges))
		ma := space.Mapping(a)
		for ei, e := range t.Edges {
			neighbor[a][ei] = int32(space.Index(ma.ApplySwap(e.A, e.B)))
		}
	}

	for src := 0; src < size; src++ {
		d := make([]int32, size)
		s := make([]int16, size)
		for i := range d {
			d[i] = -1
			s[i] = -1
		}
		d[src], s[src] = 0, 0
		h := &wstHeap{{0, 0, int32(src)}}
		for h.Len() > 0 {
			it := heap.Pop(h).(wstItem)
			a := it.node
			if it.w != d[a] || it.s != s[a] {
				continue // stale entry
			}
			for ei := range t.Edges {
				b := neighbor[a][ei]
				nw := d[a] + int32(t.weight[ei])
				ns := s[a] + 1
				if d[b] == -1 || nw < d[b] || (nw == d[b] && ns < s[b]) {
					d[b], s[b] = nw, ns
					heap.Push(h, wstItem{nw, ns, b})
				}
			}
		}
		t.dist[src] = d
		t.swaps[src] = s
	}
	// First-move table from the completed matrices: next[a][b] = the lowest
	// edge index whose swap steps onto the (weight, swaps)-minimal path.
	for a := 0; a < size; a++ {
		nx := make([]int16, size)
		for i := range nx {
			nx[i] = -1
		}
		for b := 0; b < size; b++ {
			if a == b || t.dist[a][b] <= 0 {
				continue
			}
			for ei := range t.Edges {
				nb := neighbor[a][ei]
				if t.dist[nb][b] == t.dist[a][b]-int32(t.weight[ei]) &&
					t.swaps[nb][b] == t.swaps[a][b]-1 {
					nx[b] = int16(ei)
					break
				}
			}
		}
		t.next[a] = nx
	}
	return t
}

// MinWeight returns the minimal total SWAP weight transforming mapping
// from into mapping to, or −1 if unreachable.
func (t *WeightedSwapTable) MinWeight(from, to Mapping) int {
	a, b := t.Space.Index(from), t.Space.Index(to)
	if a < 0 || b < 0 {
		panic("perm: mapping not in space")
	}
	return int(t.dist[a][b])
}

// MinWeightIdx is MinWeight on dense indices.
func (t *WeightedSwapTable) MinWeightIdx(a, b int) int { return int(t.dist[a][b]) }

// SwapsAlongIdx returns the SWAP count of the chosen minimum-weight path
// between dense indices, or −1 if unreachable.
func (t *WeightedSwapTable) SwapsAlongIdx(a, b int) int { return int(t.swaps[a][b]) }

// SwapPath returns the edge sequence of the (weight, swaps)-minimal path
// from from to to; its length equals SwapsAlongIdx of the pair. It returns
// nil, false if to is unreachable.
func (t *WeightedSwapTable) SwapPath(from, to Mapping) ([]Edge, bool) {
	a, b := t.Space.Index(from), t.Space.Index(to)
	if a < 0 || b < 0 {
		panic("perm: mapping not in space")
	}
	if t.dist[a][b] < 0 {
		return nil, false
	}
	var path []Edge
	cur := from.Copy()
	ci := a
	for ci != b {
		ei := t.next[ci][b]
		if ei < 0 {
			return nil, false
		}
		e := t.Edges[ei]
		path = append(path, e)
		cur = cur.ApplySwap(e.A, e.B)
		ci = t.Space.Index(cur)
	}
	return path, true
}

// PermWeight computes swaps_w(π) for a full permutation π: the minimal
// total SWAP weight realizing π. Requires a full space (n == m); −1 if π
// is unrealizable.
func (t *WeightedSwapTable) PermWeight(p Perm) int {
	if t.Space.N != t.Space.M {
		panic("perm: PermWeight requires a full mapping space (n == m)")
	}
	if len(p) != t.Space.M {
		panic("perm: permutation size mismatch")
	}
	return t.MinWeight(IdentityMapping(t.Space.M), Mapping(p))
}

// PermSwapsAlong returns the SWAP count of the minimum-weight realization
// of π (the length of the path Ops will rebuild), or −1 if unrealizable.
func (t *WeightedSwapTable) PermSwapsAlong(p Perm) int {
	if t.Space.N != t.Space.M {
		panic("perm: PermSwapsAlong requires a full mapping space (n == m)")
	}
	id := IdentityMapping(t.Space.M)
	a, b := t.Space.Index(id), t.Space.Index(Mapping(p))
	return int(t.swaps[a][b])
}

// MaxWeight returns the largest finite pairwise weighted distance, for
// sizing cost encodings.
func (t *WeightedSwapTable) MaxWeight() int {
	maxD := 0
	for _, row := range t.dist {
		for _, d := range row {
			if int(d) > maxD {
				maxD = int(d)
			}
		}
	}
	return maxD
}
