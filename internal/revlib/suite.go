package revlib

import (
	"fmt"

	"repro/internal/circuit"
)

// Benchmark is one row of the paper's Table 1 workload: a named circuit
// with the original's logical qubit count and gate-count profile.
type Benchmark struct {
	Name string
	// N is the number of logical qubits.
	N int
	// SingleQubit and CNOTs are the gate counts of the paper's original
	// circuit ("original cost" column = SingleQubit + CNOTs).
	SingleQubit int
	CNOTs       int
	// Circuit is the elementary (1q + CNOT) circuit with exactly that
	// profile. See DESIGN.md: the module is offline, so circuits are
	// deterministic profile-matched stand-ins for the RevLib originals,
	// except the QFT entries which are real QFT prefixes.
	Circuit *circuit.Circuit
}

// OriginalCost returns the paper's "original cost" column value.
func (b Benchmark) OriginalCost() int { return b.SingleQubit + b.CNOTs }

// suiteSpec mirrors Table 1's first three columns exactly.
var suiteSpec = []struct {
	name     string
	n        int
	oneQ, cx int
}{
	{"3_17_13", 3, 19, 17},
	{"ex-1_166", 3, 10, 9},
	{"ham3_102", 3, 9, 11},
	{"miller_11", 3, 27, 23},
	{"4gt11_84", 4, 9, 9},
	{"rd32-v0_66", 4, 18, 16},
	{"rd32-v1_68", 4, 20, 16},
	{"4gt11_82", 5, 9, 18},
	{"4gt11_83", 5, 9, 14},
	{"4gt13_92", 5, 36, 30},
	{"4mod5-v0_19", 5, 19, 16},
	{"4mod5-v0_20", 5, 10, 10},
	{"4mod5-v1_22", 5, 10, 11},
	{"4mod5-v1_24", 5, 20, 16},
	{"alu-v0_27", 5, 19, 17},
	{"alu-v1_28", 5, 19, 18},
	{"alu-v1_29", 5, 20, 17},
	{"alu-v2_33", 5, 20, 17},
	{"alu-v3_34", 5, 28, 24},
	{"alu-v3_35", 5, 19, 18},
	{"alu-v4_37", 5, 19, 18},
	{"mod5d1_63", 5, 9, 13},
	{"mod5mils_65", 5, 19, 16},
	{"qe_qft_4", 5, 44, 27},
	{"qe_qft_5", 5, 69, 38},
}

// Suite returns the 25 benchmarks of the paper's Table 1 in table order.
func Suite() []Benchmark {
	out := make([]Benchmark, 0, len(suiteSpec))
	for _, s := range suiteSpec {
		out = append(out, Benchmark{
			Name:        s.name,
			N:           s.n,
			SingleQubit: s.oneQ,
			CNOTs:       s.cx,
			Circuit:     benchmarkCircuit(s.name, s.n, s.oneQ, s.cx),
		})
	}
	return out
}

// SuiteByName returns the named benchmark.
func SuiteByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("revlib: unknown benchmark %q", name)
}

// benchmarkCircuit builds the circuit for one suite entry: a truncated/
// padded QFT for the qe_qft entries, a deterministic profile-matched
// stand-in otherwise.
func benchmarkCircuit(name string, n, oneQ, cx int) *circuit.Circuit {
	if name == "qe_qft_4" || name == "qe_qft_5" {
		qn := 4
		if name == "qe_qft_5" {
			qn = 5
		}
		return qftProfile(name, n, qn, oneQ, cx)
	}
	return profileCircuit(name, n, oneQ, cx)
}

// qftProfile embeds a QFT on qn qubits into n lines and pads with
// deterministic gates to reach the target profile.
func qftProfile(name string, n, qn, oneQ, cx int) *circuit.Circuit {
	base := BuildQFT(qn)
	c := circuit.New(n)
	c.SetName(name)
	st := base.Statistics()
	// Fill any remaining budget with profile padding, then append the QFT.
	pad := profileCircuit(name+"/pad", n, maxInt(0, oneQ-st.SingleQubit), maxInt(0, cx-st.CNOT))
	if err := c.Extend(pad); err != nil {
		panic(err)
	}
	if err := c.Extend(base); err != nil {
		panic(err)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RandomCircuit deterministically generates an elementary circuit over n
// qubits with exactly oneQ single-qubit gates and cx CNOTs, seeded by the
// given string — the workload generator behind the Table 1 suite, exported
// for users who need reproducible synthetic workloads.
func RandomCircuit(seed string, n, oneQ, cx int) *circuit.Circuit {
	return profileCircuit(seed, n, oneQ, cx)
}

// profileCircuit deterministically generates an elementary circuit over n
// qubits with exactly oneQ single-qubit gates and cx CNOTs, interleaved the
// way decomposed reversible netlists are (T/T†/H-dominated single-qubit
// population, CNOTs between varying pairs). The generator is seeded by the
// benchmark name, so the suite is stable across runs and platforms.
func profileCircuit(name string, n, oneQ, cx int) *circuit.Circuit {
	c := circuit.New(n)
	c.SetName(name)
	state := fnv64(name)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	remaining1q, remainingCX := oneQ, cx
	for remaining1q+remainingCX > 0 {
		// Interleave proportionally to the remaining budget.
		pickCX := remainingCX > 0 &&
			(remaining1q == 0 || next(remaining1q+remainingCX) < remainingCX)
		if pickCX {
			a := next(n)
			b := (a + 1 + next(n-1)) % n
			c.AddCNOT(a, b)
			remainingCX--
			continue
		}
		q := next(n)
		switch next(4) {
		case 0:
			c.AddH(q)
		case 1:
			c.AddT(q)
		case 2:
			c.AddTdg(q)
		default:
			c.AddX(q)
		}
		remaining1q--
	}
	return c
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Tables returns reversible functions for the benchmark families whose
// semantics are documented, for use with Synthesize (cmd/qxsynth and
// tests). The "3_17" entry is the classic RevLib 3-bit benchmark
// permutation; the others are semantic reconstructions (see DESIGN.md).
func Tables() map[string]*TruthTable {
	tables := map[string]*TruthTable{
		// RevLib 3_17: the canonical 3-bit benchmark function.
		"3_17": MustTable(3, []int{7, 1, 4, 3, 0, 2, 6, 5}),
	}
	// rd32: Hamming weight of 3 input bits; reversible embedding keeping
	// inputs a,b on lines 0–1, parity on line 2, majority XORed onto the
	// carry line 3.
	rd32, err := FromFunc(4, func(x int) int {
		a, b, cbit, d := x&1, x>>1&1, x>>2&1, x>>3&1
		parity := a ^ b ^ cbit
		maj := a&b | a&cbit | b&cbit
		return a | b<<1 | parity<<2 | (d^maj)<<3
	})
	if err != nil {
		panic(err)
	}
	tables["rd32"] = rd32
	// 4mod5: flag whether the 4-bit input is divisible by 5, XORed onto
	// the 5th line.
	mod5, err := FromFunc(5, func(x int) int {
		v := x & 0xf
		flag := 0
		if v%5 == 0 {
			flag = 1
		}
		return x ^ flag<<4
	})
	if err != nil {
		panic(err)
	}
	tables["4mod5"] = mod5
	// 4gt11: flag whether the 4-bit input exceeds 11.
	gt11, err := FromFunc(5, func(x int) int {
		flag := 0
		if x&0xf > 11 {
			flag = 1
		}
		return x ^ flag<<4
	})
	if err != nil {
		panic(err)
	}
	tables["4gt11"] = gt11
	// mod5d1: the 4-bit input's residue class mod 5 tested against 1.
	mod5d1, err := FromFunc(5, func(x int) int {
		flag := 0
		if (x&0xf)%5 == 1 {
			flag = 1
		}
		return x ^ flag<<4
	})
	if err != nil {
		panic(err)
	}
	tables["mod5d1"] = mod5d1
	return tables
}
