package revlib

import (
	"fmt"
	"math"

	"repro/internal/circuit"
)

// Decompose rewrites every non-elementary gate of the circuit (SWAP, MCT)
// into the IBM QX native set of single-qubit gates and CNOTs, leaving
// elementary gates untouched. The result is simulation-verified equivalent
// to the input (see tests).
func Decompose(c *circuit.Circuit) (*circuit.Circuit, error) {
	out := circuit.New(c.NumQubits())
	out.SetName(c.Name())
	for i, g := range c.Gates() {
		switch {
		case g.Kind.IsSingleQubit() || g.Kind == circuit.KindCNOT:
			out.MustAppend(g.Copy())
		case g.Kind == circuit.KindSWAP:
			a, b := g.Qubits[0], g.Qubits[1]
			out.AddCNOT(a, b).AddCNOT(b, a).AddCNOT(a, b)
		case g.Kind == circuit.KindMCT:
			if err := decomposeMCT(out, g.Controls(), g.Target()); err != nil {
				return nil, fmt.Errorf("revlib: gate %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("revlib: gate %d: cannot decompose kind %s", i, g.Kind)
		}
	}
	return out, nil
}

// decomposeMCT appends an MCT realization over {1q, CNOT} to out.
func decomposeMCT(out *circuit.Circuit, controls []int, target int) error {
	switch len(controls) {
	case 0:
		out.AddX(target)
		return nil
	case 1:
		out.AddCNOT(controls[0], target)
		return nil
	case 2:
		toffoli(out, controls[0], controls[1], target)
		return nil
	}
	// Barenco recursion: C^k(X^α) for α = 1 with
	// C^k(X^α) = C(X^(α/2))(c_k,t) · C^{k-1}X(c₁..c_{k-1}, c_k) ·
	//            C(X^(−α/2))(c_k,t) · C^{k-1}X(c₁..c_{k-1}, c_k) ·
	//            C^{k-1}(X^(α/2))(c₁..c_{k-1}, t).
	return controlledXPow(out, controls, target, 1)
}

// controlledXPow appends a multi-controlled X^alpha.
func controlledXPow(out *circuit.Circuit, controls []int, target int, alpha float64) error {
	switch len(controls) {
	case 0:
		// X^α = H · P(πα) · H up to the global phase e^{-iπα/2}, which is
		// harmless only when uncontrolled... keep phase exact instead:
		// X^α = e^{iπα/2} · H·Rz(πα)·H; realize via u3/u1 with explicit
		// phase: use H · u1(πα) · H then compensate the global phase
		// e^{-iπα/2}? An uncontrolled global phase is unobservable, so
		// H·P(πα)·H·(phase) is fine here — but this branch is only ever
		// reached for uncontrolled calls, which do not occur from
		// decomposeMCT.
		out.AddH(target)
		out.AddU(target, 0, 0, math.Pi*alpha)
		out.AddH(target)
		return nil
	case 1:
		controlledXPow1(out, controls[0], target, alpha)
		return nil
	}
	k := len(controls)
	rest, last := controls[:k-1], controls[k-1]
	controlledXPow1(out, last, target, alpha/2)
	if err := decomposeMCT(out, rest, last); err != nil {
		return err
	}
	controlledXPow1(out, last, target, -alpha/2)
	if err := decomposeMCT(out, rest, last); err != nil {
		return err
	}
	return controlledXPow(out, rest, target, alpha/2)
}

// controlledXPow1 appends a singly-controlled X^alpha:
// C(X^α) = H(t) · CP(πα)(c,t) · H(t), with the controlled phase
// CP(θ) = P(θ/2)(c) · P(θ/2)(t) · CNOT(c,t) · P(−θ/2)(t) · CNOT(c,t)
// (exact, including phases; P(θ) = u1(θ) = diag(1, e^{iθ})).
func controlledXPow1(out *circuit.Circuit, control, target int, alpha float64) {
	theta := math.Pi * alpha
	out.AddH(target)
	out.AddU(control, 0, 0, theta/2)
	out.AddU(target, 0, 0, theta/2)
	out.AddCNOT(control, target)
	out.AddU(target, 0, 0, -theta/2)
	out.AddCNOT(control, target)
	out.AddH(target)
}

// toffoli appends the standard 15-gate Clifford+T realization of the
// two-control Toffoli (6 CNOT + 2 H + 7 T/T†).
func toffoli(out *circuit.Circuit, a, b, t int) {
	out.AddH(t)
	out.AddCNOT(b, t)
	out.AddTdg(t)
	out.AddCNOT(a, t)
	out.AddT(t)
	out.AddCNOT(b, t)
	out.AddTdg(t)
	out.AddCNOT(a, t)
	out.AddT(b)
	out.AddT(t)
	out.AddH(t)
	out.AddCNOT(a, b)
	out.AddT(a)
	out.AddTdg(b)
	out.AddCNOT(a, b)
}
