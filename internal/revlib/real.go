package revlib

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// ParseReal reads a RevLib .real file: the netlist format the benchmark
// collection distributes reversible functions in. Supported gate types are
// tN (multiple-controlled Toffoli, last line is the target) and fN
// (multiple-controlled Fredkin, last two lines are the swapped pair,
// expanded into three MCTs). Header directives other than .numvars and
// .variables are accepted and ignored.
func ParseReal(src string) (*circuit.Circuit, error) {
	var vars []string
	varIndex := map[string]int{}
	numvars := -1
	var c *circuit.Circuit
	inBody := false

	lookup := func(name string) (int, error) {
		if i, ok := varIndex[name]; ok {
			return i, nil
		}
		return 0, fmt.Errorf("revlib: unknown variable %q", name)
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key := fields[0]
		switch {
		case key == ".version", key == ".inputs", key == ".outputs",
			key == ".constants", key == ".garbage", key == ".inputbus",
			key == ".outputbus", key == ".define", key == ".module":
			// Metadata; ignored.
		case key == ".numvars":
			if len(fields) != 2 {
				return nil, fmt.Errorf("revlib: line %d: malformed .numvars", lineNo+1)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("revlib: line %d: bad variable count %q", lineNo+1, fields[1])
			}
			numvars = v
		case key == ".variables":
			vars = fields[1:]
			for i, name := range vars {
				varIndex[name] = i
			}
		case key == ".begin":
			if numvars < 0 {
				numvars = len(vars)
			}
			if numvars == 0 {
				return nil, fmt.Errorf("revlib: no variables declared before .begin")
			}
			if len(vars) == 0 {
				// Default variable names x0..x{n-1}.
				for i := 0; i < numvars; i++ {
					name := fmt.Sprintf("x%d", i)
					vars = append(vars, name)
					varIndex[name] = i
				}
			}
			if len(vars) != numvars {
				return nil, fmt.Errorf("revlib: .numvars %d but %d variables", numvars, len(vars))
			}
			c = circuit.New(numvars)
			inBody = true
		case key == ".end":
			if c == nil {
				return nil, fmt.Errorf("revlib: .end before .begin")
			}
			return c, nil
		case inBody && (key[0] == 't' || key[0] == 'f'):
			arity, err := strconv.Atoi(key[1:])
			if err != nil || arity < 1 {
				return nil, fmt.Errorf("revlib: line %d: bad gate %q", lineNo+1, key)
			}
			if len(fields)-1 != arity {
				return nil, fmt.Errorf("revlib: line %d: gate %s expects %d lines, has %d",
					lineNo+1, key, arity, len(fields)-1)
			}
			qubits := make([]int, arity)
			for i, name := range fields[1:] {
				q, err := lookup(name)
				if err != nil {
					return nil, fmt.Errorf("revlib: line %d: %w", lineNo+1, err)
				}
				qubits[i] = q
			}
			if key[0] == 't' {
				if err := c.Append(circuit.MCT(qubits[:arity-1], qubits[arity-1])); err != nil {
					return nil, fmt.Errorf("revlib: line %d: %w", lineNo+1, err)
				}
			} else {
				// Fredkin: controlled swap of the last two lines =
				// CNOT(b,a)-like triple of MCTs sharing the controls.
				if arity < 2 {
					return nil, fmt.Errorf("revlib: line %d: fredkin needs 2 lines", lineNo+1)
				}
				ctrls := qubits[:arity-2]
				a, b := qubits[arity-2], qubits[arity-1]
				for _, g := range []circuit.Gate{
					circuit.MCT(append(append([]int{}, ctrls...), a), b),
					circuit.MCT(append(append([]int{}, ctrls...), b), a),
					circuit.MCT(append(append([]int{}, ctrls...), a), b),
				} {
					if err := c.Append(g); err != nil {
						return nil, fmt.Errorf("revlib: line %d: %w", lineNo+1, err)
					}
				}
			}
		default:
			return nil, fmt.Errorf("revlib: line %d: unexpected %q", lineNo+1, line)
		}
	}
	if c != nil {
		return nil, fmt.Errorf("revlib: missing .end")
	}
	return nil, fmt.Errorf("revlib: no circuit body found")
}

// WriteReal renders an MCT/X/CNOT/SWAP circuit in .real format.
func WriteReal(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString(".version 2.0\n")
	fmt.Fprintf(&b, ".numvars %d\n", c.NumQubits())
	b.WriteString(".variables")
	for i := 0; i < c.NumQubits(); i++ {
		fmt.Fprintf(&b, " x%d", i)
	}
	b.WriteString("\n.begin\n")
	for i, g := range c.Gates() {
		switch g.Kind {
		case circuit.KindX:
			fmt.Fprintf(&b, "t1 x%d\n", g.Qubits[0])
		case circuit.KindCNOT:
			fmt.Fprintf(&b, "t2 x%d x%d\n", g.Qubits[0], g.Qubits[1])
		case circuit.KindSWAP:
			fmt.Fprintf(&b, "f2 x%d x%d\n", g.Qubits[0], g.Qubits[1])
		case circuit.KindMCT:
			fmt.Fprintf(&b, "t%d", len(g.Qubits))
			for _, q := range g.Qubits {
				fmt.Fprintf(&b, " x%d", q)
			}
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("revlib: gate %d (%s) has no .real representation", i, g.Kind)
		}
	}
	b.WriteString(".end\n")
	return b.String(), nil
}
