package revlib

import "repro/internal/circuit"

// Synthesize produces a multiple-controlled-Toffoli netlist computing the
// truth table, using the basic transformation-based algorithm of Miller,
// Maslov and Dueck (DAC 2003): walk the inputs in increasing order and
// apply output-side MCT gates making f(x) = x without disturbing already-
// fixed smaller inputs; the collected gates in reverse order realize f.
//
// Gate choices follow the classic invariant argument: "set" gates (turning
// a 0 of f(x) into 1 where x has 1) are controlled by the current 1-bits of
// f(x), "clear" gates by the 1-bits of x — either control set can never be
// a subset of a smaller already-fixed input's bits.
func Synthesize(t *TruthTable) *circuit.Circuit {
	n := t.N
	f := append([]int(nil), t.Out...)
	var gates []circuit.Gate

	// applyOut composes an MCT on the output side: f ← G∘f.
	applyOut := func(controls []int, target int) {
		var cmask int
		for _, c := range controls {
			cmask |= 1 << uint(c)
		}
		tb := 1 << uint(target)
		for x := range f {
			if f[x]&cmask == cmask {
				f[x] ^= tb
			}
		}
		gates = append(gates, circuit.MCT(append([]int(nil), controls...), target))
	}

	// Step 0: fix f(0) = 0 with unconditional NOTs.
	for j := 0; j < n; j++ {
		if f[0]>>uint(j)&1 == 1 {
			applyOut(nil, j)
		}
	}
	for x := 1; x < len(f); x++ {
		y := f[x]
		if y == x {
			continue
		}
		// Phase (a): set bits where x has 1 but y has 0, controlled by the
		// 1-bits of the evolving y.
		for j := 0; j < n; j++ {
			if x>>uint(j)&1 == 1 && f[x]>>uint(j)&1 == 0 {
				var controls []int
				for k := 0; k < n; k++ {
					if k != j && f[x]>>uint(k)&1 == 1 {
						controls = append(controls, k)
					}
				}
				applyOut(controls, j)
			}
		}
		// Phase (b): clear bits where y has 1 but x has 0, controlled by
		// the 1-bits of x.
		for j := 0; j < n; j++ {
			if x>>uint(j)&1 == 0 && f[x]>>uint(j)&1 == 1 {
				var controls []int
				for k := 0; k < n; k++ {
					if k != j && x>>uint(k)&1 == 1 {
						controls = append(controls, k)
					}
				}
				applyOut(controls, j)
			}
		}
	}

	// The output-side gates in reverse order realize f as a circuit.
	c := circuit.New(n)
	for i := len(gates) - 1; i >= 0; i-- {
		c.MustAppend(gates[i])
	}
	return c
}
