// Package revlib is the reversible-logic substrate standing in for the
// RevLib benchmark collection the paper draws its circuits from: truth
// tables of reversible functions, transformation-based (MMD) synthesis into
// multiple-controlled-Toffoli (MCT) netlists, decomposition of MCT gates
// into the IBM-native {U, CNOT} set, a parser/writer for the RevLib .real
// format, a QFT builder, and the 25-circuit benchmark suite of the paper's
// Table 1.
//
// The module is offline, so the original RevLib circuit files cannot be
// downloaded; see DESIGN.md for how the suite substitutes them.
package revlib

import (
	"fmt"

	"repro/internal/circuit"
)

// TruthTable is a reversible boolean function on n bits: a permutation of
// {0, …, 2^n−1}. Out[x] is the function value on input x.
type TruthTable struct {
	N   int
	Out []int
}

// NewIdentityTable returns the identity function on n bits (n ≤ 16).
func NewIdentityTable(n int) *TruthTable {
	if n < 1 || n > 16 {
		panic(fmt.Sprintf("revlib: table size %d outside [1,16]", n))
	}
	t := &TruthTable{N: n, Out: make([]int, 1<<uint(n))}
	for i := range t.Out {
		t.Out[i] = i
	}
	return t
}

// NewTable builds a truth table from an explicit output list, validating
// that it is a permutation of the right size.
func NewTable(n int, out []int) (*TruthTable, error) {
	size := 1 << uint(n)
	if len(out) != size {
		return nil, fmt.Errorf("revlib: table for %d bits needs %d entries, has %d", n, size, len(out))
	}
	seen := make([]bool, size)
	for x, y := range out {
		if y < 0 || y >= size {
			return nil, fmt.Errorf("revlib: entry %d: value %d out of range", x, y)
		}
		if seen[y] {
			return nil, fmt.Errorf("revlib: value %d appears twice (not reversible)", y)
		}
		seen[y] = true
	}
	return &TruthTable{N: n, Out: append([]int(nil), out...)}, nil
}

// MustTable is NewTable panicking on error, for static benchmark specs.
func MustTable(n int, out []int) *TruthTable {
	t, err := NewTable(n, out)
	if err != nil {
		panic(err)
	}
	return t
}

// FromFunc builds a truth table by evaluating f on every input. The result
// is validated to be a permutation.
func FromFunc(n int, f func(x int) int) (*TruthTable, error) {
	size := 1 << uint(n)
	out := make([]int, size)
	for x := range out {
		out[x] = f(x)
	}
	return NewTable(n, out)
}

// Eval applies the function to x.
func (t *TruthTable) Eval(x int) int { return t.Out[x] }

// Inverse returns the inverse permutation.
func (t *TruthTable) Inverse() *TruthTable {
	inv := &TruthTable{N: t.N, Out: make([]int, len(t.Out))}
	for x, y := range t.Out {
		inv.Out[y] = x
	}
	return inv
}

// Compose returns the table computing o(t(x)).
func (t *TruthTable) Compose(o *TruthTable) (*TruthTable, error) {
	if t.N != o.N {
		return nil, fmt.Errorf("revlib: composing %d-bit with %d-bit table", t.N, o.N)
	}
	out := make([]int, len(t.Out))
	for x := range out {
		out[x] = o.Out[t.Out[x]]
	}
	return &TruthTable{N: t.N, Out: out}, nil
}

// IsIdentity reports whether the table fixes every input.
func (t *TruthTable) IsIdentity() bool {
	for x, y := range t.Out {
		if x != y {
			return false
		}
	}
	return true
}

// Equal reports whether two tables compute the same function.
func (t *TruthTable) Equal(o *TruthTable) bool {
	if t.N != o.N {
		return false
	}
	for x, y := range t.Out {
		if o.Out[x] != y {
			return false
		}
	}
	return true
}

// CircuitTable computes the truth table realized by a circuit of X, CNOT,
// SWAP and MCT gates (the classical reversible subset). Gates with
// non-classical kinds produce an error.
func CircuitTable(c *circuit.Circuit) (*TruthTable, error) {
	t := NewIdentityTable(c.NumQubits())
	for gi, g := range c.Gates() {
		for x := range t.Out {
			y := t.Out[x]
			switch g.Kind {
			case circuit.KindX:
				t.Out[x] = y ^ 1<<uint(g.Qubits[0])
			case circuit.KindCNOT:
				if y>>uint(g.Qubits[0])&1 == 1 {
					t.Out[x] = y ^ 1<<uint(g.Qubits[1])
				}
			case circuit.KindSWAP:
				a, b := uint(g.Qubits[0]), uint(g.Qubits[1])
				ba, bb := y>>a&1, y>>b&1
				if ba != bb {
					t.Out[x] = y ^ 1<<a ^ 1<<b
				}
			case circuit.KindMCT:
				all := true
				for _, cq := range g.Qubits[:len(g.Qubits)-1] {
					if y>>uint(cq)&1 == 0 {
						all = false
						break
					}
				}
				if all {
					t.Out[x] = y ^ 1<<uint(g.Target())
				}
			default:
				return nil, fmt.Errorf("revlib: gate %d (%s) is not classical-reversible", gi, g.Kind)
			}
		}
	}
	return t, nil
}
