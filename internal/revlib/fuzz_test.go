package revlib

import "testing"

// FuzzParseReal exercises the .real parser: no panics, and accepted
// netlists must round-trip through WriteReal with identical classical
// semantics (when small enough to tabulate).
func FuzzParseReal(f *testing.F) {
	seeds := []string{
		"",
		".version 2.0\n.numvars 3\n.variables a b c\n.begin\nt1 a\nt2 a b\nt3 a b c\n.end\n",
		".numvars 2\n.begin\nf2 x0 x1\n.end\n",
		".numvars 1\n.begin\n.end\n",
		"# comment only\n",
		".numvars 4\n.begin\nt4 x0 x1 x2 x3\nf3 x0 x1 x2\n.end\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseReal(src)
		if err != nil {
			return
		}
		out, err := WriteReal(c)
		if err != nil {
			t.Fatalf("accepted netlist failed to serialize: %v", err)
		}
		back, err := ParseReal(out)
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, out)
		}
		if c.NumQubits() <= 10 {
			t1, err1 := CircuitTable(c)
			t2, err2 := CircuitTable(back)
			if err1 != nil || err2 != nil {
				t.Fatalf("tabulation failed: %v %v", err1, err2)
			}
			if !t1.Equal(t2) {
				t.Fatal("round trip changed the function")
			}
		}
	})
}

// FuzzSynthesize checks the MMD synthesizer against random permutations
// supplied as byte strings: whatever valid permutation the bytes encode
// must synthesize into a circuit computing exactly that permutation.
func FuzzSynthesize(f *testing.F) {
	f.Add([]byte{1, 0, 3, 2})
	f.Add([]byte{7, 1, 4, 3, 0, 2, 6, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		for 1<<uint(n) < len(data) {
			n++
		}
		if n < 1 || n > 4 || 1<<uint(n) != len(data) {
			return
		}
		out := make([]int, len(data))
		for i, b := range data {
			out[i] = int(b)
		}
		tt, err := NewTable(n, out)
		if err != nil {
			return // not a permutation
		}
		got, err := CircuitTable(Synthesize(tt))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(tt) {
			t.Fatal("synthesis computes wrong function")
		}
	})
}
