package revlib

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestTruthTableBasics(t *testing.T) {
	id := NewIdentityTable(3)
	if !id.IsIdentity() {
		t.Error("identity should be identity")
	}
	tt := MustTable(2, []int{1, 0, 3, 2})
	if tt.Eval(0) != 1 || tt.Eval(3) != 2 {
		t.Error("Eval wrong")
	}
	inv := tt.Inverse()
	comp, err := tt.Compose(inv)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.IsIdentity() {
		t.Error("t∘t⁻¹ should be identity")
	}
	if !tt.Equal(tt) || tt.Equal(id) {
		t.Error("Equal wrong")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(2, []int{0, 1, 2}); err == nil {
		t.Error("short table should fail")
	}
	if _, err := NewTable(2, []int{0, 1, 2, 2}); err == nil {
		t.Error("non-bijection should fail")
	}
	if _, err := NewTable(2, []int{0, 1, 2, 7}); err == nil {
		t.Error("out of range should fail")
	}
}

func TestCircuitTable(t *testing.T) {
	// CNOT(0,1): bit1 ^= bit0.
	c := circuit.New(2).AddCNOT(0, 1)
	tt, err := CircuitTable(c)
	if err != nil {
		t.Fatal(err)
	}
	want := MustTable(2, []int{0, 3, 2, 1})
	if !tt.Equal(want) {
		t.Errorf("CNOT table = %v", tt.Out)
	}
	// Non-classical gate rejected.
	if _, err := CircuitTable(circuit.New(1).AddH(0)); err == nil {
		t.Error("H should be rejected")
	}
}

func TestSynthesizeRealizesFunction(t *testing.T) {
	tables := Tables()
	for name, tt := range tables {
		c := Synthesize(tt)
		got, err := CircuitTable(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(tt) {
			t.Errorf("%s: synthesized circuit computes wrong function", name)
		}
	}
}

// Property: MMD synthesis is correct on random permutations.
func TestSynthesizeRandomPermutations(t *testing.T) {
	f := func(seed int64, nRaw uint) bool {
		n := 2 + int(nRaw%3) // 2..4 bits
		size := 1 << uint(n)
		// Fisher-Yates with an LCG.
		state := uint64(seed)
		next := func(mod int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(mod))
		}
		out := make([]int, size)
		for i := range out {
			out[i] = i
		}
		for i := size - 1; i > 0; i-- {
			j := next(i + 1)
			out[i], out[j] = out[j], out[i]
		}
		tt := MustTable(n, out)
		got, err := CircuitTable(Synthesize(tt))
		return err == nil && got.Equal(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeIdentityIsEmpty(t *testing.T) {
	if c := Synthesize(NewIdentityTable(3)); c.Len() != 0 {
		t.Errorf("identity synthesis has %d gates", c.Len())
	}
}

// equivalentCircuits checks unitary equality by basis-state simulation.
func equivalentCircuits(t *testing.T, a, b *circuit.Circuit, n int) {
	t.Helper()
	for basis := 0; basis < 1<<uint(n); basis++ {
		sa := sim.NewBasisState(n, basis)
		if err := sa.Run(a); err != nil {
			t.Fatal(err)
		}
		sb := sim.NewBasisState(n, basis)
		if err := sb.Run(b); err != nil {
			t.Fatal(err)
		}
		ok, _ := sa.EqualUpToPhase(sb, 1e-9)
		if !ok {
			t.Fatalf("basis %d: circuits differ", basis)
		}
	}
}

func TestDecomposeToffoli(t *testing.T) {
	mct := circuit.New(3).AddMCT([]int{0, 1}, 2)
	dec, err := Decompose(mct)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.IsElementary() {
		t.Fatal("decomposition not elementary")
	}
	st := dec.Statistics()
	if st.CNOT != 6 {
		t.Errorf("Toffoli decomposition uses %d CNOTs, want 6", st.CNOT)
	}
	equivalentCircuits(t, mct, dec, 3)
}

func TestDecomposeSWAP(t *testing.T) {
	sw := circuit.New(2).AddSWAP(0, 1)
	dec, err := Decompose(sw)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Statistics().CNOT != 3 {
		t.Errorf("SWAP decomposition = %d CNOTs", dec.Statistics().CNOT)
	}
	equivalentCircuits(t, sw, dec, 2)
}

func TestDecomposeLargeMCT(t *testing.T) {
	for controls := 3; controls <= 4; controls++ {
		n := controls + 1
		ctrl := make([]int, controls)
		for i := range ctrl {
			ctrl[i] = i
		}
		mct := circuit.New(n).AddMCT(ctrl, controls)
		dec, err := Decompose(mct)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.IsElementary() {
			t.Fatal("decomposition not elementary")
		}
		equivalentCircuits(t, mct, dec, n)
	}
}

func TestDecomposePermutedQubits(t *testing.T) {
	// Controls/target in arbitrary positions.
	mct := circuit.New(4).AddMCT([]int{3, 1}, 0)
	dec, err := Decompose(mct)
	if err != nil {
		t.Fatal(err)
	}
	equivalentCircuits(t, mct, dec, 4)
}

func TestSynthesizeThenDecomposeEndToEnd(t *testing.T) {
	tt := Tables()["3_17"]
	mct := Synthesize(tt)
	dec, err := Decompose(mct)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.IsElementary() {
		t.Fatal("not elementary")
	}
	// The decomposed circuit must compute the same classical function.
	for x := 0; x < 8; x++ {
		s := sim.NewBasisState(3, x)
		if err := s.Run(dec); err != nil {
			t.Fatal(err)
		}
		want := tt.Eval(x)
		if a := s.Amplitude(want); real(a)*real(a)+imag(a)*imag(a) < 1-1e-9 {
			t.Fatalf("input %d: amplitude at %d is %v", x, want, a)
		}
	}
}

func TestBuildQFT(t *testing.T) {
	// QFT on 2 qubits maps |00⟩ to the uniform superposition.
	q := BuildQFT(2)
	if !q.IsElementary() {
		t.Fatal("QFT not elementary")
	}
	s := sim.NewState(2)
	if err := s.Run(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a := s.Amplitude(i)
		if mag := real(a)*real(a) + imag(a)*imag(a); mag < 0.24 || mag > 0.26 {
			t.Errorf("QFT|00⟩ amp %d magnitude² = %f", i, mag)
		}
	}
	// Gate counts: n H gates + n(n−1)/2 CP, each CP = 2 CNOT + 3 u1.
	st := BuildQFT(4).Statistics()
	if st.CNOT != 12 {
		t.Errorf("QFT4 CNOTs = %d, want 12", st.CNOT)
	}
	if st.SingleQubit != 4+18 {
		t.Errorf("QFT4 1q = %d, want 22", st.SingleQubit)
	}
}

func TestQFTInverseViaSimulation(t *testing.T) {
	// QFT applied to |x⟩ then inverse-checked through inner products with
	// the expected Fourier state: spot-check amplitudes of QFT|1⟩ on 3
	// qubits: amplitude k = ω^k/√8 with ω = e^{2πi/8}.
	q := BuildQFT(3)
	s := sim.NewBasisState(3, 1)
	if err := s.Run(q); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		a := s.Amplitude(k)
		if mag := real(a)*real(a) + imag(a)*imag(a); mag < 0.124 || mag > 0.126 {
			t.Errorf("QFT|1⟩ amp %d magnitude² = %f", k, mag)
		}
	}
}

func TestSuiteMatchesTable1Profiles(t *testing.T) {
	suite := Suite()
	if len(suite) != 25 {
		t.Fatalf("suite has %d entries, want 25", len(suite))
	}
	for _, b := range suite {
		st := b.Circuit.Statistics()
		if st.SingleQubit != b.SingleQubit || st.CNOT != b.CNOTs {
			t.Errorf("%s: profile %d+%d, want %d+%d",
				b.Name, st.SingleQubit, st.CNOT, b.SingleQubit, b.CNOTs)
		}
		if b.Circuit.NumQubits() != b.N {
			t.Errorf("%s: qubits %d, want %d", b.Name, b.Circuit.NumQubits(), b.N)
		}
		if !b.Circuit.IsElementary() {
			t.Errorf("%s: not elementary", b.Name)
		}
		if b.OriginalCost() != st.OriginalCost {
			t.Errorf("%s: original cost mismatch", b.Name)
		}
	}
	// Determinism: regenerating gives identical circuits.
	again := Suite()
	for i := range suite {
		if !suite[i].Circuit.Equal(again[i].Circuit) {
			t.Errorf("%s: suite not deterministic", suite[i].Name)
		}
	}
}

func TestSuiteByName(t *testing.T) {
	b, err := SuiteByName("3_17_13")
	if err != nil || b.N != 3 || b.OriginalCost() != 36 {
		t.Errorf("3_17_13 lookup: %+v, %v", b, err)
	}
	if _, err := SuiteByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestParseRealRoundTrip(t *testing.T) {
	src := `# sample
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.begin
t1 a
t2 a b
t3 a b c
f2 b c
.end
`
	c, err := ParseReal(src)
	if err != nil {
		t.Fatal(err)
	}
	// t1, t2, t3, and f2 expanded to 3 MCTs → 6 gates.
	if c.Len() != 6 {
		t.Fatalf("gates = %d, want 6", c.Len())
	}
	out, err := WriteReal(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReal(out)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, out)
	}
	t1, err := CircuitTable(c)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := CircuitTable(back)
	if err != nil {
		t.Fatal(err)
	}
	if !t1.Equal(t2) {
		t.Error("round trip changed function")
	}
}

func TestParseRealDefaultsVariables(t *testing.T) {
	src := ".numvars 2\n.begin\nt2 x0 x1\n.end\n"
	c, err := ParseReal(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 2 || c.Len() != 1 {
		t.Errorf("parsed %d qubits, %d gates", c.NumQubits(), c.Len())
	}
}

func TestParseRealErrors(t *testing.T) {
	cases := map[string]string{
		"no end":         ".numvars 1\n.begin\nt1 x0\n",
		"no begin":       ".numvars 1\n.end\n",
		"unknown var":    ".numvars 1\n.begin\nt1 y9\n.end\n",
		"bad arity":      ".numvars 2\n.begin\nt3 x0 x1\n.end\n",
		"bad gate":       ".numvars 1\n.begin\nq1 x0\n.end\n",
		"no vars":        ".begin\nt1 x0\n.end\n",
		"numvars string": ".numvars xyz\n.begin\n.end\n",
	}
	for name, src := range cases {
		if _, err := ParseReal(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteRealRejectsNonClassical(t *testing.T) {
	if _, err := WriteReal(circuit.New(1).AddH(0)); err == nil {
		t.Error("H should have no .real form")
	}
}

func TestFredkinSemantics(t *testing.T) {
	// f3 a b c: swap b,c when a=1.
	src := ".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end\n"
	c, err := ParseReal(src)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := CircuitTable(c)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FromFunc(3, func(x int) int {
		if x&1 == 1 {
			b, cb := x>>1&1, x>>2&1
			return 1 | cb<<1 | b<<2
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Equal(want) {
		t.Errorf("fredkin table = %v", tt.Out)
	}
}

func TestWriteRealHeader(t *testing.T) {
	out, err := WriteReal(circuit.New(2).AddCNOT(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".numvars 2", ".variables x0 x1", "t2 x0 x1", ".begin", ".end"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestParseRealDuplicateQubit(t *testing.T) {
	// Regression (found by fuzzing): duplicate lines in one gate must be
	// a parse error, not a panic.
	for _, src := range []string{
		".numvars 2\n.begin\nt2 x0 x0\n.end\n",
		".numvars 2\n.begin\nf2 x1 x1\n.end\n",
	} {
		if _, err := ParseReal(src); err == nil {
			t.Errorf("duplicate qubit accepted: %q", src)
		}
	}
}

func TestRandomCircuitExported(t *testing.T) {
	c := RandomCircuit("workload-7", 4, 12, 9)
	st := c.Statistics()
	if st.SingleQubit != 12 || st.CNOT != 9 {
		t.Errorf("profile %d+%d, want 12+9", st.SingleQubit, st.CNOT)
	}
	if !c.Equal(RandomCircuit("workload-7", 4, 12, 9)) {
		t.Error("generator not deterministic")
	}
	if c.Equal(RandomCircuit("workload-8", 4, 12, 9)) {
		t.Error("different seeds should differ")
	}
}
