package revlib

import (
	"math"

	"repro/internal/circuit"
)

// BuildQFT returns the quantum Fourier transform on n qubits, decomposed
// into the IBM-native gate set: H gates and controlled-phase rotations
// CP(π/2^k), each realized exactly as 2 CNOTs and 3 u1 rotations. The
// customary trailing qubit-reversal SWAPs are omitted (as in the QFT
// benchmark circuits of the paper's suite, where reversal is a relabeling).
func BuildQFT(n int) *circuit.Circuit {
	c := circuit.New(n)
	for j := 0; j < n; j++ {
		c.AddH(j)
		for k := j + 1; k < n; k++ {
			appendCP(c, k, j, math.Pi/math.Pow(2, float64(k-j)))
		}
	}
	return c
}

// appendCP appends an exact controlled-phase CP(θ) between control and
// target (symmetric in its qubits).
func appendCP(c *circuit.Circuit, control, target int, theta float64) {
	c.AddU(control, 0, 0, theta/2)
	c.AddU(target, 0, 0, theta/2)
	c.AddCNOT(control, target)
	c.AddU(target, 0, 0, -theta/2)
	c.AddCNOT(control, target)
}
