// Package verify establishes that mapped circuits are correct: compliant
// with the target architecture's CNOT constraints, structurally faithful to
// the original gate sequence, and semantically equivalent to the original
// circuit under the chosen initial/final qubit layouts.
//
// Three independent layers are provided, from cheap to exhaustive:
//
//  1. CouplingCompliant — static constraint check (paper Definition 2).
//  2. OpStream / SkeletonOps — structural and GF(2)-linear replay of a
//     mapped op stream against the CNOT skeleton.
//  3. Equivalent — full unitary equivalence by basis-state simulation.
package verify

import (
	"fmt"
	"math/cmplx"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/perm"
	"repro/internal/sim"
)

// CouplingCompliant checks that the circuit uses only elementary gates and
// that every CNOT's (control, target) pair is natively allowed by the
// architecture. SWAP gates are rejected: a compliant circuit must have them
// decomposed.
func CouplingCompliant(c *circuit.Circuit, a *arch.Arch) error {
	if c.NumQubits() > a.NumQubits() {
		return fmt.Errorf("verify: circuit has %d qubits, %s has %d", c.NumQubits(), a, a.NumQubits())
	}
	for i, g := range c.Gates() {
		switch {
		case g.Kind.IsSingleQubit():
			// Always executable.
		case g.Kind == circuit.KindCNOT:
			if !a.Allows(g.Qubits[0], g.Qubits[1]) {
				return fmt.Errorf("verify: gate %d: CNOT(p%d→p%d) violates coupling map of %s",
					i, g.Qubits[0], g.Qubits[1], a.Name())
			}
		default:
			return fmt.Errorf("verify: gate %d: %s is not elementary", i, g.Kind)
		}
	}
	return nil
}

// OpStream replays a mapped op stream against the skeleton, checking that
// SWAPs use coupled pairs, CNOT ops realize the skeleton gates in order
// under the evolving layout, and executed directions are natively allowed.
// It returns the final layout.
func OpStream(sk *circuit.Skeleton, a *arch.Arch, ops []circuit.MappedOp, initial perm.Mapping) (perm.Mapping, error) {
	if len(initial) != sk.NumQubits {
		return nil, fmt.Errorf("verify: initial mapping has %d entries for %d qubits", len(initial), sk.NumQubits)
	}
	if !initial.Valid(a.NumQubits()) {
		return nil, fmt.Errorf("verify: initial mapping %v invalid", initial)
	}
	mp := initial.Copy()
	next := 0
	for oi, op := range ops {
		if op.Swap {
			if !a.AllowsEitherDirection(op.A, op.B) {
				return nil, fmt.Errorf("verify: op %d: SWAP(p%d,p%d) on uncoupled pair", oi, op.A, op.B)
			}
			mp = mp.ApplySwap(op.A, op.B)
			continue
		}
		if next >= sk.Len() {
			return nil, fmt.Errorf("verify: op %d: more CNOT ops than skeleton gates", oi)
		}
		g := sk.Gates[next]
		if op.GateIndex != next {
			return nil, fmt.Errorf("verify: op %d: implements gate %d, expected %d", oi, op.GateIndex, next)
		}
		next++
		if !a.Allows(op.Control, op.Target) {
			return nil, fmt.Errorf("verify: op %d: CNOT(p%d→p%d) violates coupling map", oi, op.Control, op.Target)
		}
		pc, pt := mp[g.Control], mp[g.Target]
		if op.Switched {
			if op.Control != pt || op.Target != pc {
				return nil, fmt.Errorf("verify: op %d: switched CNOT(p%d→p%d) does not realize g%d under layout %v",
					oi, op.Control, op.Target, next, mp)
			}
		} else if op.Control != pc || op.Target != pt {
			return nil, fmt.Errorf("verify: op %d: CNOT(p%d→p%d) does not realize g%d under layout %v",
				oi, op.Control, op.Target, next, mp)
		}
	}
	if next != sk.Len() {
		return nil, fmt.Errorf("verify: only %d of %d skeleton gates realized", next, sk.Len())
	}
	return mp, nil
}

// SkeletonOps performs the GF(2)-linear equivalence check: the net linear
// action of the op stream on the physical qubits must equal the skeleton's
// linear action on the logical qubits, conjugated by the initial and final
// layouts. Unused physical qubits must come out as a permutation of unused
// inputs. This check is independent of OpStream's structural replay and
// scales to arbitrarily long circuits.
func SkeletonOps(sk *circuit.Skeleton, m int, ops []circuit.MappedOp, initial, final perm.Mapping) error {
	if m > 64 {
		return fmt.Errorf("verify: GF(2) check limited to 64 physical qubits")
	}
	// Physical net map: a switched CNOT op surrounded by 4 H gates still
	// implements the logical CNOT with control on the qubit holding the
	// logical control (paper Fig. 3).
	phys := sim.NewLinearIdentity(m)
	for _, op := range ops {
		if op.Swap {
			phys.ApplySWAP(op.A, op.B)
			continue
		}
		c, t := op.Control, op.Target
		if op.Switched {
			c, t = t, c
		}
		phys.ApplyCNOT(c, t)
	}
	// Logical reference map.
	logical := sim.NewLinearIdentity(sk.NumQubits)
	for _, g := range sk.Gates {
		logical.ApplyCNOT(g.Control, g.Target)
	}
	// Compare: row of phys at final[j] must equal logical row j translated
	// through the initial layout.
	usedIn := make([]bool, m)
	usedOut := make([]bool, m)
	for j := 0; j < sk.NumQubits; j++ {
		usedIn[initial[j]] = true
		usedOut[final[j]] = true
		var want uint64
		for j2 := 0; j2 < sk.NumQubits; j2++ {
			if logical.Rows[j]>>uint(j2)&1 == 1 {
				want |= 1 << uint(initial[j2])
			}
		}
		if got := phys.Rows[final[j]]; got != want {
			return fmt.Errorf("verify: GF(2) mismatch for logical q%d: row %b, want %b", j, got, want)
		}
	}
	// Unused outputs must be single unused input bits, pairwise distinct.
	seen := make(map[uint64]bool)
	for i := 0; i < m; i++ {
		if usedOut[i] {
			continue
		}
		row := phys.Rows[i]
		if row == 0 || row&(row-1) != 0 {
			return fmt.Errorf("verify: unused physical qubit %d has non-trivial row %b", i, row)
		}
		bit := 0
		for row>>uint(bit)&1 == 0 {
			bit++
		}
		if usedIn[bit] {
			return fmt.Errorf("verify: unused output %d reads used input %d", i, bit)
		}
		if seen[row] {
			return fmt.Errorf("verify: unused input read twice")
		}
		seen[row] = true
	}
	return nil
}

// Equivalent performs full unitary equivalence checking by basis-state
// simulation: for every computational basis state of the logical qubits,
// the mapped circuit (over the architecture's physical qubits, starting
// from the layout-translated basis state) must produce the same state as
// the original, relocated by the final layout, up to one uniform global
// phase. Unused physical qubits must start and end in |0⟩.
//
// Cost is O(2^n · 2^m) amplitudes; intended for the ≤ 5-qubit circuits and
// devices of the paper's evaluation (hard limit sim.MaxQubits).
func Equivalent(original, mapped *circuit.Circuit, m int, initial, final perm.Mapping) error {
	n := original.NumQubits()
	if m > sim.MaxQubits {
		return fmt.Errorf("verify: %d physical qubits exceed simulator limit %d", m, sim.MaxQubits)
	}
	if len(initial) != n || len(final) != n {
		return fmt.Errorf("verify: layout sizes %d/%d for %d qubits", len(initial), len(final), n)
	}
	const eps = 1e-9
	var phase complex128
	for b := 0; b < 1<<uint(n); b++ {
		orig := sim.NewBasisState(n, b)
		if err := orig.Run(original); err != nil {
			return fmt.Errorf("verify: simulating original: %w", err)
		}
		idx := 0
		for j := 0; j < n; j++ {
			if b>>uint(j)&1 == 1 {
				idx |= 1 << uint(initial[j])
			}
		}
		mapState := sim.NewBasisState(m, idx)
		if err := mapState.Run(mapped); err != nil {
			return fmt.Errorf("verify: simulating mapped: %w", err)
		}
		// Build the expected state: original amplitudes relocated through
		// the final layout, unused qubits |0⟩.
		exp := make([]complex128, 1<<uint(m))
		for x := 0; x < 1<<uint(n); x++ {
			y := 0
			for j := 0; j < n; j++ {
				if x>>uint(j)&1 == 1 {
					y |= 1 << uint(final[j])
				}
			}
			exp[y] = orig.Amplitude(x)
		}
		var ip complex128
		for y, want := range exp {
			ip += cmplx.Conj(want) * mapState.Amplitude(y)
		}
		if d := cmplx.Abs(ip); d < 1-eps {
			return fmt.Errorf("verify: basis %d: fidelity %.12f < 1", b, d)
		}
		if b == 0 {
			phase = ip
		} else if cmplx.Abs(ip-phase) > 1e-6 {
			return fmt.Errorf("verify: basis %d: phase %.6f differs from %.6f (not a uniform global phase)", b, ip, phase)
		}
	}
	return nil
}
