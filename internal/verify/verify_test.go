package verify

import (
	"context"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/perm"
)

func TestCouplingCompliant(t *testing.T) {
	a := arch.QX4()
	good := circuit.New(5).AddH(0).AddCNOT(1, 0).AddCNOT(3, 2)
	if err := CouplingCompliant(good, a); err != nil {
		t.Errorf("compliant circuit rejected: %v", err)
	}
	bad := circuit.New(5).AddCNOT(0, 1) // (0,1) ∉ CM (only (1,0) is)
	if err := CouplingCompliant(bad, a); err == nil {
		t.Error("reversed CNOT should be rejected")
	}
	swapful := circuit.New(5).AddSWAP(0, 1)
	if err := CouplingCompliant(swapful, a); err == nil {
		t.Error("undec SWAP should be rejected")
	}
	tooBig := circuit.New(6).AddH(5)
	if err := CouplingCompliant(tooBig, a); err == nil {
		t.Error("oversized circuit should be rejected")
	}
}

// exactOps solves Figure 1b on QX4 and returns everything for verification.
func exactOps(t *testing.T) (*circuit.Skeleton, *exact.Result, []circuit.MappedOp) {
	t.Helper()
	sk := circuit.Figure1b()
	r, err := exact.Solve(context.Background(), sk, arch.QX4(), exact.Options{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	ops, err := r.Ops(sk)
	if err != nil {
		t.Fatal(err)
	}
	return sk, r, ops
}

func TestOpStreamAcceptsExactResult(t *testing.T) {
	sk, r, ops := exactOps(t)
	final, err := OpStream(sk, arch.QX4(), ops, r.InitialMapping())
	if err != nil {
		t.Fatal(err)
	}
	if !final.Equal(r.FinalMapping()) {
		t.Errorf("final = %v, want %v", final, r.FinalMapping())
	}
}

func TestOpStreamRejectsCorruption(t *testing.T) {
	sk, r, ops := exactOps(t)
	a := arch.QX4()

	// Dropping a CNOT: too few gates.
	var chopped []circuit.MappedOp
	for _, op := range ops {
		if !op.Swap && op.GateIndex == sk.Len()-1 {
			continue
		}
		chopped = append(chopped, op)
	}
	if _, err := OpStream(sk, a, chopped, r.InitialMapping()); err == nil {
		t.Error("missing gate should be caught")
	}

	// Flipping a direction without the Switched flag.
	flipped := append([]circuit.MappedOp(nil), ops...)
	for i, op := range flipped {
		if !op.Swap {
			flipped[i].Control, flipped[i].Target = op.Target, op.Control
			break
		}
	}
	if _, err := OpStream(sk, a, flipped, r.InitialMapping()); err == nil {
		t.Error("flipped CNOT should be caught")
	}

	// Bad initial mapping length.
	if _, err := OpStream(sk, a, ops, perm.Mapping{0, 1}); err == nil {
		t.Error("short mapping should be caught")
	}
}

func TestSkeletonOpsAcceptsExactResult(t *testing.T) {
	sk, r, ops := exactOps(t)
	if err := SkeletonOps(sk, 5, ops, r.InitialMapping(), r.FinalMapping()); err != nil {
		t.Fatal(err)
	}
}

func TestSkeletonOpsAcceptsHeuristicResult(t *testing.T) {
	sk := circuit.Figure1b()
	h, err := heuristic.Map(context.Background(), sk, arch.QX4(), heuristic.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := SkeletonOps(sk, 5, h.Ops, h.InitialMapping, h.FinalMapping); err != nil {
		t.Fatal(err)
	}
}

func TestSkeletonOpsCatchesWrongGate(t *testing.T) {
	sk, r, ops := exactOps(t)
	bad := append([]circuit.MappedOp(nil), ops...)
	for i, op := range bad {
		if !op.Swap {
			// Pretend the gate was switched when it was not (or vice
			// versa): the GF(2) semantics change.
			bad[i].Switched = !op.Switched
			break
		}
	}
	if err := SkeletonOps(sk, 5, bad, r.InitialMapping(), r.FinalMapping()); err == nil {
		t.Error("wrong switch flag should fail the GF(2) check")
	}
}

func TestEquivalentOnHandBuiltMapping(t *testing.T) {
	// Original: CNOT(q0→q1). Mapped to QX4 with q0→p1, q1→p0: CNOT(p1→p0)
	// is natively allowed; identity layouts elsewhere.
	orig := circuit.New(2).AddCNOT(0, 1)
	mapped := circuit.New(5).AddCNOT(1, 0)
	if err := Equivalent(orig, mapped, 5, perm.Mapping{1, 0}, perm.Mapping{1, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentDirectionSwitch(t *testing.T) {
	// Original CNOT(q0→q1) with q0→p0, q1→p1 on QX4 needs the 4-H trick:
	// H p0, H p1, CNOT(p1→p0), H p0, H p1.
	orig := circuit.New(2).AddCNOT(0, 1)
	mapped := circuit.New(5).
		AddH(0).AddH(1).AddCNOT(1, 0).AddH(0).AddH(1)
	if err := Equivalent(orig, mapped, 5, perm.Mapping{0, 1}, perm.Mapping{0, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentCatchesWrongCircuit(t *testing.T) {
	orig := circuit.New(2).AddCNOT(0, 1)
	wrong := circuit.New(5).AddCNOT(1, 0).AddX(2) // stray X on unused qubit
	err := Equivalent(orig, wrong, 5, perm.Mapping{1, 0}, perm.Mapping{1, 0})
	if err == nil {
		t.Fatal("stray gate should break equivalence")
	}
	if !strings.Contains(err.Error(), "fidelity") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestEquivalentWithSwapRelocation(t *testing.T) {
	// Original: CNOT(q0→q1) twice with a swap in between is just two
	// CNOTs; simpler: verify a mapped circuit whose final layout differs
	// from the initial one. Original: CNOT(q0→q1). Mapped: SWAP p0,p1
	// implemented as 3 CNOTs (only directions allowed by QX4), then
	// CNOT realizing the logical gate from the new layout.
	orig := circuit.New(2).AddCNOT(0, 1)
	// SWAP p0,p1 on QX4: CNOT(1→0), H-switched CNOT(0→1), CNOT(1→0);
	// then the logical CNOT itself from the post-swap layout.
	mapped := circuit.New(5).
		AddCNOT(1, 0).
		AddH(0).AddH(1).AddCNOT(1, 0).AddH(0).AddH(1).
		AddCNOT(1, 0).
		AddCNOT(1, 0)
	// Initial q0→p0, q1→p1; after the SWAP q0→p1, q1→p0; the final
	// CNOT(p1→p0) realizes CNOT(q0→q1).
	if err := Equivalent(orig, mapped, 5, perm.Mapping{0, 1}, perm.Mapping{1, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentRejectsOversized(t *testing.T) {
	orig := circuit.New(2).AddCNOT(0, 1)
	mapped := circuit.New(13).AddCNOT(1, 0)
	if err := Equivalent(orig, mapped, 13, perm.Mapping{1, 0}, perm.Mapping{1, 0}); err == nil {
		t.Error("13 qubits should exceed simulator limit")
	}
}

func TestOpStreamMoreCorruption(t *testing.T) {
	sk, r, ops := exactOps(t)
	a := arch.QX4()

	// Extra CNOT op beyond the skeleton.
	extra := append(append([]circuit.MappedOp(nil), ops...),
		circuit.MappedOp{GateIndex: sk.Len(), Control: 1, Target: 0})
	if _, err := OpStream(sk, a, extra, r.InitialMapping()); err == nil {
		t.Error("extra op should be caught")
	}

	// Wrong gate index ordering.
	reordered := append([]circuit.MappedOp(nil), ops...)
	for i, op := range reordered {
		if !op.Swap {
			reordered[i].GateIndex = op.GateIndex + 1
			break
		}
	}
	if _, err := OpStream(sk, a, reordered, r.InitialMapping()); err == nil {
		t.Error("wrong gate index should be caught")
	}

	// SWAP on an uncoupled pair.
	badSwap := append([]circuit.MappedOp{{Swap: true, A: 0, B: 4}}, ops...)
	if _, err := OpStream(sk, a, badSwap, r.InitialMapping()); err == nil {
		t.Error("uncoupled SWAP should be caught")
	}

	// Non-injective initial mapping.
	if _, err := OpStream(sk, a, ops, perm.Mapping{0, 0, 1, 2}); err == nil {
		t.Error("invalid mapping should be caught")
	}
}

func TestSkeletonOpsCatchesExtraSwap(t *testing.T) {
	sk, r, ops := exactOps(t)
	// A stray SWAP between used and unused qubits changes the final
	// permutation and must fail the GF(2) check against the same layouts.
	bad := append(append([]circuit.MappedOp(nil), ops...),
		circuit.MappedOp{Swap: true, A: r.FinalMapping()[0], B: unusedPhys(r.FinalMapping(), 5)})
	if err := SkeletonOps(sk, 5, bad, r.InitialMapping(), r.FinalMapping()); err == nil {
		t.Error("stray SWAP should fail GF(2) check")
	}
}

// unusedPhys returns a physical qubit not present in mp.
func unusedPhys(mp perm.Mapping, m int) int {
	used := map[int]bool{}
	for _, i := range mp {
		used[i] = true
	}
	for i := 0; i < m; i++ {
		if !used[i] {
			return i
		}
	}
	panic("no unused qubit")
}

func TestEquivalentLayoutSizeMismatch(t *testing.T) {
	orig := circuit.New(2).AddCNOT(0, 1)
	mapped := circuit.New(5).AddCNOT(1, 0)
	if err := Equivalent(orig, mapped, 5, perm.Mapping{1}, perm.Mapping{1, 0}); err == nil {
		t.Error("short layout should be rejected")
	}
}

func TestSkeletonOpsRejectsHuge(t *testing.T) {
	sk := &circuit.Skeleton{NumQubits: 2, Gates: []circuit.CNOTGate{{Control: 0, Target: 1}}}
	if err := SkeletonOps(sk, 65, nil, perm.Mapping{0, 1}, perm.Mapping{0, 1}); err == nil {
		t.Error("m > 64 should be rejected")
	}
}
