package sat

import "testing"

// BenchmarkPigeonhole87 measures raw CDCL throughput on the PHP(8,7) UNSAT
// proof — the standard stress profile for propagation, conflict analysis and
// clause-database maintenance.
func BenchmarkPigeonhole87(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		pigeonhole(s, 8, 7)
		if s.Solve() != Unsat {
			b.Fatal("PHP(8,7) must be UNSAT")
		}
	}
}

// BenchmarkIncrementalAssumptions measures the incremental probing pattern
// of the exact engine: one instance, repeated solves under tightening
// assumption sets.
func BenchmarkIncrementalAssumptions(b *testing.B) {
	const pigeons, holes = 7, 9
	for i := 0; i < b.N; i++ {
		s := NewSolver()
		pigeonhole(s, pigeons, holes)
		guards := newVars(s, holes)
		for h := 0; h < holes; h++ {
			// Guard h forbids hole h for every pigeon, so assuming the first
			// k guards shrinks the instance to PHP(7, 9−k) — the descending
			// bound-probe pattern of the exact engine.
			for p := 0; p < pigeons; p++ {
				s.AddClause(guards[h].Neg(), Var(p*holes+h).Neg())
			}
		}
		var assumptions []Lit
		for k := 1; k <= 3; k++ {
			assumptions = append(assumptions, guards[k-1].Pos())
			want := Sat
			if holes-k < pigeons {
				want = Unsat
			}
			if got := s.Solve(assumptions...); got != want {
				b.Fatalf("PHP(7,%d) = %v, want %v", holes-k, got, want)
			}
		}
	}
}
