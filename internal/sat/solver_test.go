package sat

import (
	"context"
	"testing"
	"testing/quick"
	"time"
)

// newVars allocates n variables and returns them.
func newVars(s *Solver, n int) []Var {
	vs := make([]Var, n)
	for i := range vs {
		vs[i] = s.NewVar()
	}
	return vs
}

func TestTrivialSat(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Pos(), v[1].Pos())
	s.AddClause(v[0].Neg())
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Value(v[0]) {
		t.Error("v0 should be false")
	}
	if !s.Value(v[1]) {
		t.Error("v1 should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 1)
	s.AddClause(v[0].Pos())
	if ok := s.AddClause(v[0].Neg()); ok {
		t.Error("adding contradicting unit should report false")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyFormulaIsSat(t *testing.T) {
	s := NewSolver()
	newVars(s, 3)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestEmptyClauseIsUnsat(t *testing.T) {
	s := NewSolver()
	if ok := s.AddClause(); ok {
		t.Error("empty clause should report false")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestTautologyDropped(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 1)
	s.AddClause(v[0].Pos(), v[0].Neg())
	if s.NumClauses() != 0 {
		t.Error("tautology should not be stored")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestDuplicateLiteralsMerged(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Pos(), v[0].Pos(), v[1].Pos())
	if s.NumClauses() != 1 {
		t.Fatalf("clauses = %d", s.NumClauses())
	}
}

func TestXorChain(t *testing.T) {
	// x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, x0 = x2 forced equal; satisfiable.
	s := NewSolver()
	v := newVars(s, 3)
	xor := func(a, b Var) {
		s.AddClause(a.Pos(), b.Pos())
		s.AddClause(a.Neg(), b.Neg())
	}
	xor(v[0], v[1])
	xor(v[1], v[2])
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
	if s.Value(v[0]) != s.Value(v[2]) || s.Value(v[0]) == s.Value(v[1]) {
		t.Error("xor chain model wrong")
	}
}

// pigeonhole adds the classic PHP(n+1, n) instance: n+1 pigeons in n holes,
// provably UNSAT and a standard CDCL stress test.
func pigeonhole(s *Solver, pigeons, holes int) {
	vars := make([][]Var, pigeons)
	for p := range vars {
		vars[p] = newVars(s, holes)
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = vars[p][h].Pos()
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(vars[p1][h].Neg(), vars[p2][h].Neg())
			}
		}
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := NewSolver()
		pigeonhole(s, n+1, n)
		if got := s.Solve(); got != Unsat {
			t.Errorf("PHP(%d,%d) = %v, want UNSAT", n+1, n, got)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 5, 5)
	if got := s.Solve(); got != Sat {
		t.Fatalf("PHP(5,5) = %v, want SAT", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(v[0].Neg(), v[1].Pos()) // v0 → v1
	s.AddClause(v[1].Neg(), v[2].Pos()) // v1 → v2

	if got := s.Solve(v[0].Pos()); got != Sat {
		t.Fatalf("assume v0: %v", got)
	}
	if !s.Value(v[1]) || !s.Value(v[2]) {
		t.Error("implication chain not propagated under assumption")
	}
	if got := s.Solve(v[0].Pos(), v[2].Neg()); got != Unsat {
		t.Fatalf("assume v0 ∧ ¬v2: %v, want UNSAT", got)
	}
	// Solver stays usable after assumption failure.
	if got := s.Solve(v[2].Neg()); got != Sat {
		t.Fatalf("assume ¬v2: %v", got)
	}
	if s.Value(v[0]) {
		t.Error("¬v2 forces ¬v0")
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 1)
	if got := s.Solve(v[0].Pos(), v[0].Neg()); got != Unsat {
		t.Fatalf("contradictory assumptions = %v", got)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("solver unusable after contradictory assumptions: %v", got)
	}
}

func TestIncrementalAddAfterSolve(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Pos(), v[1].Pos())
	if s.Solve() != Sat {
		t.Fatal("initial solve")
	}
	s.AddClause(v[0].Neg())
	s.AddClause(v[1].Neg())
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after narrowing = %v", got)
	}
}

func TestMaxConflictsReturnsUnknown(t *testing.T) {
	s := New(Options{MaxConflicts: 1})
	pigeonhole(s, 8, 7)
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted solve = %v, want Unknown", got)
	}
	// The same instance without a budget must complete.
	u := NewSolver()
	pigeonhole(u, 8, 7)
	if got := u.Solve(); got != Unsat {
		t.Fatalf("unbudgeted solve = %v", got)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLitBasics(t *testing.T) {
	v := Var(3)
	if v.Pos().Var() != 3 || v.Neg().Var() != 3 {
		t.Error("Var round trip")
	}
	if !v.Pos().IsPos() || v.Neg().IsPos() {
		t.Error("polarity")
	}
	if v.Pos().Not() != v.Neg() || v.Neg().Not() != v.Pos() {
		t.Error("Not")
	}
	if v.Lit(true) != v.Pos() || v.Lit(false) != v.Neg() {
		t.Error("Lit")
	}
	if v.Pos().String() != "v3" || v.Neg().String() != "¬v3" || LitUndef.String() != "undef" {
		t.Error("String")
	}
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Error("Status.String")
	}
}

// lcg is a small deterministic generator for property tests.
type lcg uint64

func (r *lcg) next(mod int) int {
	*r = *r*6364136223846793005 + 1442695040888963407
	return int((uint64(*r) >> 33) % uint64(mod))
}

// randomCNF generates a random 3-SAT instance.
func randomCNF(seed int64, nVars, nClauses int) [][]Lit {
	r := lcg(seed)
	cnf := make([][]Lit, nClauses)
	for i := range cnf {
		cl := make([]Lit, 3)
		for j := range cl {
			v := Var(r.next(nVars))
			cl[j] = v.Lit(r.next(2) == 0)
		}
		cnf[i] = cl
	}
	return cnf
}

// bruteForceSat decides satisfiability by enumeration (nVars ≤ 20).
func bruteForceSat(cnf [][]Lit, nVars int) bool {
	for mask := 0; mask < 1<<uint(nVars); mask++ {
		ok := true
		for _, cl := range cnf {
			clauseSat := false
			for _, l := range cl {
				bit := mask>>uint(l.Var())&1 == 1
				if bit == l.IsPos() {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce cross-checks the CDCL solver against
// exhaustive enumeration on hundreds of random instances near the phase
// transition (clause/var ≈ 4.3).
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		const nVars = 9
		nClauses := 20 + int(uint(seed)%20) // 20..39
		cnf := randomCNF(seed, nVars, nClauses)
		s := NewSolver()
		newVars(s, nVars)
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForceSat(cnf, nVars)
		if want != (got == Sat) {
			return false
		}
		if got == Sat {
			// The reported model must satisfy every clause.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					if s.Value(l.Var()) == l.IsPos() {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomIncrementalAssumptions verifies that solving under unit
// assumptions matches solving a copy with those units added as clauses.
func TestRandomIncrementalAssumptions(t *testing.T) {
	f := func(seed int64) bool {
		const nVars = 8
		cnf := randomCNF(seed, nVars, 18)
		r := lcg(seed ^ 0x5eed)
		var assumptions []Lit
		for i := 0; i < 3; i++ {
			v := Var(r.next(nVars))
			assumptions = append(assumptions, v.Lit(r.next(2) == 0))
		}

		s := NewSolver()
		newVars(s, nVars)
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		gotAssumed := s.Solve(assumptions...)

		ref := NewSolver()
		newVars(ref, nVars)
		for _, cl := range cnf {
			ref.AddClause(cl...)
		}
		for _, a := range assumptions {
			ref.AddClause(a)
		}
		want := ref.Solve()
		if gotAssumed != want {
			return false
		}
		// Assumptions must not pollute later unassumed solves.
		return s.Solve() == Sat == bruteForceSat(cnf, nVars)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 6, 5)
	s.Solve()
	if st := s.Snapshot(); st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
}

func TestAddClausePanicsOnUnknownVar(t *testing.T) {
	s := NewSolver()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unallocated variable")
		}
	}()
	s.AddClause(Var(5).Pos())
}

// TestHardRandomInstancesStressReduceDB pushes the solver through larger
// random instances near the phase transition so that clause-database
// reduction, restarts and rescaling all trigger.
func TestHardRandomInstancesStressReduceDB(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s := NewSolver()
		const nVars = 60
		nClauses := nVars * 426 / 100 // clause/var ratio ≈ 4.26 (phase transition)
		newVars(s, nVars)
		for _, cl := range randomCNF(seed, nVars, nClauses) {
			s.AddClause(cl...)
		}
		st := s.Solve()
		if st == Unknown {
			t.Fatalf("seed %d: unexpected Unknown", seed)
		}
		if st == Sat {
			// Verify the model against every stored clause.
			for _, cl := range randomCNF(seed, nVars, nClauses) {
				ok := false
				for _, l := range cl {
					if s.Value(l.Var()) == l.IsPos() {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("seed %d: model violates a clause", seed)
				}
			}
		}
	}
}

// TestIncrementalAssumptionStress alternates assumption sets on one solver
// instance, checking consistency with fresh solvers.
func TestIncrementalAssumptionStress(t *testing.T) {
	const nVars = 12
	cnf := randomCNF(99, nVars, 30)
	shared := NewSolver()
	newVars(shared, nVars)
	for _, cl := range cnf {
		shared.AddClause(cl...)
	}
	r := lcg(4242)
	for round := 0; round < 40; round++ {
		var assumptions []Lit
		for i := 0; i < 1+r.next(3); i++ {
			v := Var(r.next(nVars))
			assumptions = append(assumptions, v.Lit(r.next(2) == 0))
		}
		got := shared.Solve(assumptions...)

		fresh := NewSolver()
		newVars(fresh, nVars)
		for _, cl := range cnf {
			fresh.AddClause(cl...)
		}
		for _, a := range assumptions {
			fresh.AddClause(a)
		}
		want := fresh.Solve()
		if got != want {
			t.Fatalf("round %d: incremental %v vs fresh %v (assumptions %v)", round, got, want, assumptions)
		}
	}
}

// TestSolveContextCancellation cancels an in-flight solve of a hard UNSAT
// instance and requires the solver to stop at the next restart boundary.
func TestSolveContextCancellation(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 10, 9) // far beyond what solves instantly
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Status, 1)
	go func() { done <- s.SolveContext(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case got := <-done:
		if got != Unknown && got != Unsat {
			t.Fatalf("cancelled solve = %v, want Unknown (or Unsat if it finished first)", got)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not stop within 30s of cancellation")
	}
}

// TestSolveContextPreCancelled must return without any search work.
func TestSolveContextPreCancelled(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 10, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := s.SolveContext(ctx); got != Unknown {
		t.Fatalf("pre-cancelled solve = %v, want Unknown", got)
	}
	if d := s.Snapshot().Decisions; d != 0 {
		t.Errorf("pre-cancelled solve made %d decisions, want 0", d)
	}
}

// TestUnsatFromAssumptions distinguishes assumption-caused UNSAT (the
// instance is still satisfiable without the assumption) from genuine
// unsatisfiability of the clause set — the bound-relaxation logic of the
// incremental descent depends on the attribution.
func TestUnsatFromAssumptions(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Neg(), v[1].Pos()) // v0 → v1

	if got := s.Solve(v[0].Pos(), v[1].Neg()); got != Unsat {
		t.Fatalf("assume v0 ∧ ¬v1: %v, want UNSAT", got)
	}
	if !s.UnsatFromAssumptions() {
		t.Error("assumption-caused UNSAT not attributed to assumptions")
	}
	if fa := s.FailedAssumption(); fa != v[1].Neg() {
		t.Errorf("FailedAssumption = %v, want %v", fa, v[1].Neg())
	}

	// A successful solve clears the attribution.
	if got := s.Solve(v[0].Pos()); got != Sat {
		t.Fatalf("relaxed solve: %v", got)
	}
	if s.UnsatFromAssumptions() || s.FailedAssumption() != LitUndef {
		t.Error("attribution not cleared by a Sat result")
	}

	// Genuine unsatisfiability is NOT attributed to assumptions.
	s.AddClause(v[0].Pos())
	s.AddClause(v[0].Neg())
	if got := s.Solve(v[1].Pos()); got != Unsat {
		t.Fatalf("genuinely unsat: %v", got)
	}
	if s.UnsatFromAssumptions() {
		t.Error("genuine UNSAT misattributed to assumptions")
	}
}

// TestUnsatFromAssumptionsLearned: the attribution also holds when the
// assumption failure is only discovered through conflict analysis (learnt
// units), not direct propagation of the assumption literals.
func TestUnsatFromAssumptionsLearned(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 4)
	// v3 → (v0 ∨ v1), v3 → ¬v0, v3 → ¬v1: assuming v3 is inconsistent,
	// but only after resolving the three clauses.
	s.AddClause(v[3].Neg(), v[0].Pos(), v[1].Pos())
	s.AddClause(v[3].Neg(), v[0].Neg())
	s.AddClause(v[3].Neg(), v[1].Neg())
	if got := s.Solve(v[3].Pos(), v[2].Pos()); got != Unsat {
		t.Fatalf("assume v3: %v, want UNSAT", got)
	}
	if !s.UnsatFromAssumptions() {
		t.Error("learned assumption failure not attributed to assumptions")
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("instance must stay satisfiable without assumptions: %v", got)
	}
}
