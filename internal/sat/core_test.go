package sat

import (
	"context"
	"testing"
	"time"
)

// coreSet normalizes a core into a set for order-independent assertions.
func coreSet(core []Lit) map[Lit]bool {
	m := make(map[Lit]bool, len(core))
	for _, l := range core {
		m[l] = true
	}
	return m
}

// TestUnsatCoreBasic: the core over an implication chain must contain the
// participating assumptions and exclude irrelevant ones.
func TestUnsatCoreBasic(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 4)
	s.AddClause(v[0].Neg(), v[1].Pos()) // v0 → v1
	s.AddClause(v[1].Neg(), v[2].Pos()) // v1 → v2

	// v3 is an unrelated assumption and must not appear in the core.
	if got := s.Solve(v[3].Pos(), v[0].Pos(), v[2].Neg()); got != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", got)
	}
	if !s.UnsatFromAssumptions() {
		t.Fatal("UNSAT not attributed to assumptions")
	}
	core := s.UnsatCore()
	want := coreSet([]Lit{v[0].Pos(), v[2].Neg()})
	if got := coreSet(core); len(got) != len(want) {
		t.Fatalf("core = %v, want {v0, ¬v2}", core)
	} else {
		for l := range want {
			if !got[l] {
				t.Fatalf("core = %v, want {v0, ¬v2}", core)
			}
		}
	}

	// The core's conjunction must really be inconsistent with the clauses.
	if got := s.Solve(core...); got != Unsat {
		t.Fatalf("re-solving the core = %v, want UNSAT", got)
	}
	// And a Sat result clears the attribution.
	if got := s.Solve(v[0].Pos()); got != Sat {
		t.Fatalf("relaxed solve = %v", got)
	}
	if s.UnsatCore() != nil {
		t.Errorf("core not cleared by Sat: %v", s.UnsatCore())
	}
}

// TestUnsatCoreMinimized: literal-removal minimization must drop an
// assumption that participated in the conflict but is semantically
// redundant — here the "loose" guard gL, because the "tight" guard gT is
// inconsistent on its own. Removal runs in reverse assumption order, so
// passing the loose guard first makes the tight one the first removal
// candidate (the nested-bound probing pattern of the exact engine).
func TestUnsatCoreMinimized(t *testing.T) {
	s := NewSolver()
	x, y := s.NewVar(), s.NewVar()
	gL, gT := s.NewVar(), s.NewVar()
	s.AddClause(x.Pos(), y.Pos())  // base: x ∨ y
	s.AddClause(gL.Neg(), x.Neg()) // gL → ¬x
	s.AddClause(gT.Neg(), x.Neg()) // gT → ¬x
	s.AddClause(gT.Neg(), y.Neg()) // gT → ¬y
	if got := s.Solve(gL.Pos(), gT.Pos()); got != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", got)
	}
	core := s.UnsatCore()
	if len(core) != 1 || core[0] != gT.Pos() {
		t.Fatalf("core = %v, want the minimized {gT}", core)
	}
	if fa := s.FailedAssumption(); fa != gT.Pos() {
		t.Errorf("FailedAssumption = %v, want gT", fa)
	}
	// The instance stays reusable and SAT under the loose guard alone.
	if got := s.Solve(gL.Pos()); got != Sat {
		t.Fatalf("solve under gL = %v, want SAT", got)
	}
}

// TestUnsatCoreGenuineUnsat: a clause-set contradiction yields no core.
func TestUnsatCoreGenuineUnsat(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Pos())
	s.AddClause(v[0].Neg())
	if got := s.Solve(v[1].Pos()); got != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", got)
	}
	if s.UnsatFromAssumptions() || s.UnsatCore() != nil {
		t.Errorf("genuine UNSAT must not report a core (got %v)", s.UnsatCore())
	}
}

// TestUnsatCoreSingleAssumption: a self-sufficient failed assumption yields
// a singleton core without any minimization probes.
func TestUnsatCoreSingleAssumption(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Neg()) // ¬v0 at root
	if got := s.Solve(v[1].Pos(), v[0].Pos()); got != Unsat {
		t.Fatalf("Solve = %v, want UNSAT", got)
	}
	core := s.UnsatCore()
	if len(core) != 1 || core[0] != v[0].Pos() {
		t.Fatalf("core = %v, want {v0}", core)
	}
}

// TestUnsatCoreConjunctionProperty: on random instances, every reported
// core must itself be inconsistent with the clause set when re-asserted.
func TestUnsatCoreConjunctionProperty(t *testing.T) {
	r := lcg(777)
	for round := 0; round < 60; round++ {
		const nVars = 8
		cnf := randomCNF(int64(round)*31+7, nVars, 18)
		s := NewSolver()
		newVars(s, nVars)
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		var assumptions []Lit
		for i := 0; i < 2+r.next(3); i++ {
			v := Var(r.next(nVars))
			assumptions = append(assumptions, v.Lit(r.next(2) == 0))
		}
		if s.Solve(assumptions...) != Unsat || !s.UnsatFromAssumptions() {
			continue
		}
		core := append([]Lit(nil), s.UnsatCore()...)
		if len(core) == 0 {
			t.Fatalf("round %d: empty core for assumption-caused UNSAT", round)
		}
		members := coreSet(assumptions)
		for _, l := range core {
			if !members[l] {
				t.Fatalf("round %d: core literal %v not among the assumptions %v", round, l, assumptions)
			}
		}
		ref := NewSolver()
		newVars(ref, nVars)
		for _, cl := range cnf {
			ref.AddClause(cl...)
		}
		for _, l := range core {
			ref.AddClause(l)
		}
		if got := ref.Solve(); got != Unsat {
			t.Fatalf("round %d: core %v is not inconsistent (fresh solve = %v)", round, core, got)
		}
	}
}

// conflictCancelCtx cancels itself once the observed solver has passed a
// conflict threshold. Err is only ever called from the solving goroutine,
// so reading Stats is race-free; this makes the cancellation latency test
// fully deterministic.
type conflictCancelCtx struct {
	s     *Solver
	limit int64
}

func (c *conflictCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *conflictCancelCtx) Done() <-chan struct{}       { return nil }
func (c *conflictCancelCtx) Value(any) any               { return nil }
func (c *conflictCancelCtx) Err() error {
	if c.s.Snapshot().Conflicts >= c.limit {
		return context.Canceled
	}
	return nil
}

// TestSolveContextCancellationLatency: once the context reports expiry, the
// solver must stop within Options.CtxPollConflicts conflicts — not merely at
// the next restart boundary, whose late-Luby budgets run thousands of
// conflicts.
func TestSolveContextCancellationLatency(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 10, 9) // hard UNSAT: far more conflicts than the limit
	const limit = 4000
	ctx := &conflictCancelCtx{s: s, limit: limit}
	if got := s.SolveContext(ctx); got != Unknown {
		t.Fatalf("cancelled solve = %v, want Unknown", got)
	}
	poll := int64((Options{}).withDefaults().CtxPollConflicts)
	if over := s.Snapshot().Conflicts - limit; over > poll {
		t.Errorf("solver ran %d conflicts past cancellation, want ≤ %d", over, poll)
	}
	if got := s.Snapshot().Conflicts; got < limit {
		t.Fatalf("instance finished in %d conflicts; raise the hardness of the test instance", got)
	}
}
