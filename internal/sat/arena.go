package sat

import "math"

// ClauseRef is a clause handle: the offset of the clause's header inside the
// solver's flat clause arena. Refs are stable between garbage collections;
// a GC (triggered by reduceDB once enough of the slab is dead) relocates
// live clauses and rewrites every stored ref (clause lists, watcher lists,
// reason slots).
type ClauseRef int32

// NilRef is the "no clause" sentinel, used for decision/assumption reasons.
const NilRef ClauseRef = -1

// Arena clause layout, in int32 words starting at the ref:
//
//	[ref+0] size<<2 | learnt<<1 | deleted
//	[ref+1] LBD (learnt clauses; 0 for problem clauses)
//	[ref+2] activity bits (float32; learnt clauses only)
//	[ref+3 … ref+3+size) literals
//
// The uniform 3-word header keeps relocation trivial: a clause's full extent
// is always headerWords+size regardless of tier. Literals are stored as Lit
// (an int32), so the slab is a single []Lit and lits() is a zero-copy
// subslice — propagation walks contiguous memory instead of chasing a
// per-clause slice header to a separately allocated backing array.
const headerWords = 3

const (
	flagLearnt  = 1 << 1
	flagDeleted = 1 << 0
	flagBits    = 2
)

// arena is the flat clause slab. The zero value is ready to use.
type arena struct {
	data []Lit
	// wasted counts the words occupied by deleted clauses; the solver
	// triggers a compacting GC when it crosses a fraction of the slab.
	wasted int
}

// alloc appends a clause and returns its ref.
func (a *arena) alloc(lits []Lit, learnt bool) ClauseRef {
	ref := ClauseRef(len(a.data))
	hdr := Lit(len(lits) << flagBits)
	if learnt {
		hdr |= flagLearnt
	}
	a.data = append(a.data, hdr, 0, 0)
	a.data = append(a.data, lits...)
	return ref
}

func (a *arena) size(c ClauseRef) int    { return int(a.data[c]) >> flagBits }
func (a *arena) learnt(c ClauseRef) bool { return a.data[c]&flagLearnt != 0 }

func (a *arena) deleted(c ClauseRef) bool { return a.data[c]&flagDeleted != 0 }

// markDeleted tombstones the clause; the words are reclaimed at the next GC.
func (a *arena) markDeleted(c ClauseRef) {
	if a.data[c]&flagDeleted == 0 {
		a.data[c] |= flagDeleted
		a.wasted += headerWords + a.size(c)
	}
}

// lits returns the clause's literal block — a live view into the slab.
func (a *arena) lits(c ClauseRef) []Lit {
	start := int(c) + headerWords
	return a.data[start : start+a.size(c)]
}

func (a *arena) lbd(c ClauseRef) int         { return int(a.data[c+1]) }
func (a *arena) setLBD(c ClauseRef, lbd int) { a.data[c+1] = Lit(lbd) }

func (a *arena) activity(c ClauseRef) float64 {
	return float64(math.Float32frombits(uint32(a.data[c+2])))
}

func (a *arena) setActivity(c ClauseRef, v float64) {
	a.data[c+2] = Lit(int32(math.Float32bits(float32(v))))
}

// shrink drops the literal at index i ≥ 2 (self-subsumption strengthening),
// compacting the literal block in place. The freed word is tombstone waste.
func (a *arena) shrink(c ClauseRef, i int) {
	n := a.size(c)
	ls := a.lits(c)
	ls[i] = ls[n-1]
	a.data[c] = Lit((n-1)<<flagBits) | (a.data[c] & (flagLearnt | flagDeleted))
	// The trailing word is now dead; make it an innocuous zero and account
	// for it so GC pressure still builds up.
	a.data[int(c)+headerWords+n-1] = 0
	a.wasted++
}

// gcInto copies every live clause reachable from refs into dst (in list
// order), rewriting each list entry, and returns a forwarding map for refs
// stored elsewhere (reason slots). Deleted clauses are dropped from the
// lists they appear in.
func (a *arena) gcInto(dst *arena, lists ...*[]ClauseRef) map[ClauseRef]ClauseRef {
	forward := make(map[ClauseRef]ClauseRef)
	for _, list := range lists {
		kept := (*list)[:0]
		for _, c := range *list {
			if a.deleted(c) {
				continue
			}
			nc, ok := forward[c]
			if !ok {
				nc = dst.alloc(a.lits(c), a.learnt(c))
				dst.data[nc+1] = a.data[c+1]
				dst.data[nc+2] = a.data[c+2]
				forward[c] = nc
			}
			kept = append(kept, nc)
		}
		*list = kept
	}
	return forward
}
