package sat

// RestartStrategy selects the restart-interval schedule.
type RestartStrategy int

const (
	// RestartLuby grows conflict budgets along the Luby sequence scaled by
	// RestartBase (the default; MiniSat's schedule).
	RestartLuby RestartStrategy = iota
	// RestartGeometric multiplies the budget by RestartFactor after every
	// restart, starting from RestartBase.
	RestartGeometric
)

// Polarity selects the phase assigned to a fresh decision variable.
type Polarity int

const (
	// PolaritySaved branches on the variable's last assigned phase
	// (phase saving; initial phase false). The default.
	PolaritySaved Polarity = iota
	// PolarityFalse always tries the negative literal first.
	PolarityFalse
	// PolarityTrue always tries the positive literal first.
	PolarityTrue
	// PolarityRandom draws each decision's phase from the solver's seeded
	// generator — the cheapest portfolio diversifier.
	PolarityRandom
)

// Options tunes a Solver at construction. The zero value reproduces the
// classic configuration (Luby restarts base 100, saved phases, activity +
// LBD tiered reduction, context polls every 256 conflicts), so
// NewSolver() == New(Options{}).
type Options struct {
	// Restart selects the restart schedule (default RestartLuby).
	Restart RestartStrategy
	// RestartBase scales the schedule: the Luby sequence multiplier, or the
	// geometric schedule's first budget (default 100 conflicts).
	RestartBase int
	// RestartFactor is the geometric schedule's growth rate (default 1.5;
	// ignored by RestartLuby).
	RestartFactor float64
	// Polarity selects decision phases (default PolaritySaved).
	Polarity Polarity
	// Seed seeds the solver's random generator, used by PolarityRandom and
	// RandomVarFreq. Two solvers with different seeds explore different
	// orbits of the search space — the portfolio workers rely on this.
	Seed int64
	// RandomVarFreq, in [0,1), is the probability that a decision picks a
	// uniformly random unassigned variable instead of the VSIDS maximum
	// (default 0: pure activity order).
	RandomVarFreq float64
	// ReduceBase is the initial learnt-clause budget added on top of
	// NumClauses/3 before the tiered reduction fires (default 100). Lower
	// values reduce more aggressively.
	ReduceBase int
	// CtxPollConflicts is the conflict interval at which an in-flight
	// search polls its context (default 256). Restart boundaries alone are
	// not enough: late Luby restarts run thousands of conflicts.
	CtxPollConflicts int
	// MaxConflicts, when positive, bounds the total conflicts per Solve
	// call; exceeding it returns Unknown.
	MaxConflicts int64
}

// withDefaults resolves zero fields to the documented defaults.
func (o Options) withDefaults() Options {
	if o.RestartBase <= 0 {
		o.RestartBase = 100
	}
	if o.RestartFactor <= 1 {
		o.RestartFactor = 1.5
	}
	if o.ReduceBase <= 0 {
		o.ReduceBase = 100
	}
	if o.CtxPollConflicts <= 0 {
		o.CtxPollConflicts = 256
	}
	if o.RandomVarFreq < 0 || o.RandomVarFreq >= 1 {
		o.RandomVarFreq = 0
	}
	return o
}

// xorshift64 is the solver's deterministic random source (seeded by
// Options.Seed); good enough for phase/branch diversification and far
// cheaper than math/rand behind a mutex.
type xorshift64 uint64

func newRng(seed int64) xorshift64 {
	// Avoid the all-zeros fixed point; fold the seed so 0 and 1 differ.
	return xorshift64(uint64(seed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D)
}

func (r *xorshift64) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = xorshift64(x)
	return x
}

// intn returns a uniform value in [0, n).
func (r *xorshift64) intn(n int) int { return int(r.next() % uint64(n)) }

// chance reports true with probability p (p in [0,1)).
func (r *xorshift64) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)/(1<<53) < p
}
