package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a CNF formula in DIMACS format into a fresh solver.
// Comment lines (c …) are skipped; the problem line (p cnf V C) is
// validated when present. Literal i > 0 denotes variable i−1 positive,
// i < 0 its negation; clauses terminate with 0.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := NewSolver()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	declaredVars, declaredClauses := -1, -1
	var clause []Lit
	clauses := 0

	ensureVar := func(v int) error {
		if v <= 0 {
			return fmt.Errorf("sat: dimacs: non-positive variable %d", v)
		}
		for s.NumVars() < v {
			s.NewVar()
		}
		return nil
	}

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: dimacs: malformed problem line %q", line)
			}
			var err1, err2 error
			declaredVars, err1 = strconv.Atoi(fields[2])
			declaredClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || declaredVars < 0 || declaredClauses < 0 {
				return nil, fmt.Errorf("sat: dimacs: malformed problem line %q", line)
			}
			if err := ensureVar(declaredVars); declaredVars > 0 && err != nil {
				return nil, err
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("sat: dimacs: bad token %q", tok)
			}
			if v == 0 {
				s.AddClause(clause...)
				clause = clause[:0]
				clauses++
				continue
			}
			abs := v
			if abs < 0 {
				abs = -abs
			}
			if err := ensureVar(abs); err != nil {
				return nil, err
			}
			l := Var(abs - 1).Pos()
			if v < 0 {
				l = l.Not()
			}
			clause = append(clause, l)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(clause) > 0 {
		return nil, fmt.Errorf("sat: dimacs: last clause not terminated with 0")
	}
	if declaredClauses >= 0 && clauses != declaredClauses {
		return nil, fmt.Errorf("sat: dimacs: declared %d clauses, found %d", declaredClauses, clauses)
	}
	return s, nil
}

// WriteDIMACS renders the solver's problem clauses (not learnt clauses) in
// DIMACS CNF format, so instances built by the encoder can be exported to
// external solvers. Level-0 unit assignments are emitted as unit clauses.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s.unsat {
		// A contradiction was already derived at level 0; the offending
		// clause was never stored, so emit an explicit empty clause to
		// keep the exported instance equisatisfiable.
		if _, err := fmt.Fprintf(bw, "p cnf %d 1\n0\n", s.NumVars()); err != nil {
			return err
		}
		return bw.Flush()
	}
	units := 0
	if len(s.trailLim) == 0 {
		units = len(s.trail)
	} else {
		units = s.trailLim[0]
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+units); err != nil {
		return err
	}
	writeLit := func(l Lit) error {
		v := int(l.Var()) + 1
		if !l.IsPos() {
			v = -v
		}
		_, err := fmt.Fprintf(bw, "%d ", v)
		return err
	}
	for i := 0; i < units; i++ {
		if err := writeLit(s.trail[i]); err != nil {
			return err
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	for _, c := range s.clauses {
		for _, l := range s.ca.lits(c) {
			if err := writeLit(l); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("0\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
