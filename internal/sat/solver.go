package sat

import (
	"context"
	"sort"
)

// watcher pairs a watching clause with a blocker literal: if the blocker is
// already true the clause is satisfied and need not be inspected.
type watcher struct {
	ref     ClauseRef
	blocker Lit
}

// Stats is a value snapshot of solver counters, obtained from
// Solver.Snapshot. Counters accumulate across Solve calls.
type Stats struct {
	Decisions    int64
	Propagations int64
	Conflicts    int64
	Restarts     int64
	Learnt       int64
	Removed      int64
	// Subsumed counts learnt clauses deleted by on-the-fly self-subsumption
	// during conflict analysis.
	Subsumed int64
	// ArenaGCs counts compacting garbage collections of the clause arena.
	ArenaGCs int64
	// SharedExports / SharedImports count clauses exchanged with portfolio
	// peers (exports actually accepted by the channel, imports installed).
	SharedExports int64
	SharedImports int64
	// LBDHist buckets learnt clauses by LBD at learn time:
	// 1, 2, 3, 4–5, 6–9, 10+.
	LBDHist [6]int64
}

// lbdBucket maps an LBD value to its LBDHist index.
func lbdBucket(lbd int) int {
	switch {
	case lbd <= 1:
		return 0
	case lbd == 2:
		return 1
	case lbd == 3:
		return 2
	case lbd <= 5:
		return 3
	case lbd <= 9:
		return 4
	default:
		return 5
	}
}

// Solver is an incremental CDCL SAT solver. Create with New (or NewSolver
// for defaults), allocate variables with NewVar, add clauses with AddClause,
// and call Solve (optionally under assumptions). After Sat, query the model
// with Value.
//
// Clauses live in a flat int32 arena (see arena.go) and are addressed by
// ClauseRef; watcher lists and reason slots hold refs, and reduceDB
// compacts the slab once enough of it is tombstoned.
type Solver struct {
	opts Options
	rng  xorshift64

	ca      arena
	clauses []ClauseRef // problem clauses
	learnts []ClauseRef
	watches [][]watcher

	assigns  []lbool
	polarity []bool // saved phase per variable
	reason   []ClauseRef
	level    []int32
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	claInc   float64
	order    *varHeap
	seen     []byte

	// levelMark/lbdStamp implement O(size) LBD computation: a level counts
	// once per stamp epoch.
	levelMark []int64
	lbdStamp  int64

	unsat bool    // empty clause derived at level 0
	model []lbool // last satisfying assignment

	// unsatAssumptions / failedAssumption record why the last Solve
	// returned Unsat: a falsified assumption literal (and which one), or
	// genuine unsatisfiability of the clause set itself. unsatCore is the
	// minimized subset of the assumptions that final-conflict analysis
	// proved jointly inconsistent with the clause set.
	unsatAssumptions bool
	failedAssumption Lit
	unsatCore        []Lit

	// Portfolio hooks (set by Pool, nil for a standalone solver): export
	// offers a freshly learnt clause to peers and reports whether it was
	// accepted; importLearnts returns peer clauses to install, called only
	// at restart boundaries (decision level 0).
	export        func(lits []Lit, lbd int) bool
	importLearnts func() [][]Lit

	stats Stats
}

// New returns an empty solver configured by opts (zero fields take the
// documented defaults).
func New(opts Options) *Solver {
	o := opts.withDefaults()
	s := &Solver{opts: o, rng: newRng(o.Seed), varInc: 1, claInc: 1}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewSolver returns an empty solver with default options; it is equivalent
// to New(Options{}).
func NewSolver() *Solver { return New(Options{}) }

// Snapshot returns a copy of the solver's counters. The copy is decoupled:
// later solving does not mutate it.
func (s *Solver) Snapshot() Stats { return s.stats }

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem (non-learnt) clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable.
func (s *Solver) NewVar() Var {
	v := Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, false)
	s.reason = append(s.reason, NilRef)
	s.level = append(s.level, 0)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil) // one list per literal
	s.order.push(v)
	return v
}

func (s *Solver) value(l Lit) lbool { return litValue(s.assigns[l.Var()], l) }

// Value returns the model value of v after a Sat result. Variables created
// after the last Solve report false.
func (s *Solver) Value(v Var) bool {
	if int(v) >= len(s.model) {
		return false
	}
	return s.model[v] == lTrue
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state at level 0 (adding is then a
// no-op). Tautologies are silently dropped; duplicate literals are merged;
// literals already false at level 0 are removed.
func (s *Solver) AddClause(lits ...Lit) bool {
	if s.unsat {
		return false
	}
	s.cancelUntil(0)
	// Normalize: sort, dedupe, drop false literals, detect tautology and
	// satisfied clauses.
	ls := append([]Lit(nil), lits...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev Lit = LitUndef
	for _, l := range ls {
		if l.Var() < 0 || int(l.Var()) >= s.NumVars() {
			panic("sat: literal references unallocated variable")
		}
		if l == prev {
			continue
		}
		if l == prev.Not() && prev != LitUndef {
			return true // tautology
		}
		switch s.value(l) {
		case lTrue:
			return true // satisfied at level 0
		case lFalse:
			continue // drop
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.unsat = true
		return false
	case 1:
		s.enqueue(out[0], NilRef)
		if s.propagate() != NilRef {
			s.unsat = true
			return false
		}
		return true
	}
	c := s.ca.alloc(out, false)
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

func (s *Solver) watchClause(c ClauseRef) {
	ls := s.ca.lits(c)
	s.watches[ls[0].Not()] = append(s.watches[ls[0].Not()], watcher{c, ls[1]})
	s.watches[ls[1].Not()] = append(s.watches[ls[1].Not()], watcher{c, ls[0]})
}

func (s *Solver) detachClause(c ClauseRef) {
	ls := s.ca.lits(c)
	for _, wl := range [2]Lit{ls[0].Not(), ls[1].Not()} {
		ws := s.watches[wl]
		for i, w := range ws {
			if w.ref == c {
				ws[i] = ws[len(ws)-1]
				s.watches[wl] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// enqueue assigns literal l (making it true) with the given reason clause.
func (s *Solver) enqueue(l Lit, from ClauseRef) {
	v := l.Var()
	s.assigns[v] = boolToLbool(l.IsPos())
	s.polarity[v] = l.IsPos()
	s.reason[v] = from
	s.level[v] = int32(s.decisionLevel())
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation over the two-watched-literal scheme.
// It returns a conflicting clause ref, or NilRef if no conflict occurred.
func (s *Solver) propagate() ClauseRef {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p became true; the literal ¬p is now false
		s.qhead++
		s.stats.Propagations++
		falseLit := p.Not()
		// Clauses watching a literal w live in watches[w.Not()], so the
		// clauses watching ¬p are found under watches[p].
		ws := s.watches[p]
		kept := ws[:0]
		confl := NilRef
		for wi := 0; wi < len(ws); wi++ {
			w := ws[wi]
			if s.value(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			c := w.ref
			ls := s.ca.lits(c)
			// Ensure the falsified literal is at position 1.
			if ls[0] == falseLit {
				ls[0], ls[1] = ls[1], ls[0]
			}
			first := ls[0]
			if first != w.blocker && s.value(first) == lTrue {
				kept = append(kept, watcher{c, first})
				continue
			}
			// Look for a new literal to watch.
			found := false
			for k := 2; k < len(ls); k++ {
				if s.value(ls[k]) != lFalse {
					ls[1], ls[k] = ls[k], ls[1]
					s.watches[ls[1].Not()] = append(s.watches[ls[1].Not()], watcher{c, first})
					found = true
					break
				}
			}
			if found {
				continue
			}
			// Clause is unit or conflicting.
			kept = append(kept, watcher{c, first})
			if s.value(first) == lFalse {
				confl = c
				// Copy remaining watchers and stop propagating.
				for wi++; wi < len(ws); wi++ {
					kept = append(kept, ws[wi])
				}
				s.qhead = len(s.trail)
				break
			}
			s.enqueue(first, c)
		}
		s.watches[p] = kept
		if confl != NilRef {
			return confl
		}
	}
	return NilRef
}

// cancelUntil backtracks to the given decision level, unassigning variables
// and saving their phases.
func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	limit := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = NilRef
		s.order.push(v)
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

// bumpVar increases a variable's VSIDS activity.
func (s *Solver) bumpVar(v Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
		s.order.rebuild()
	}
	s.order.update(v)
}

// bumpClause increases a learnt clause's activity.
func (s *Solver) bumpClause(c ClauseRef) {
	act := s.ca.activity(c) + s.claInc
	s.ca.setActivity(c, act)
	if act > 1e20 {
		for _, lc := range s.learnts {
			s.ca.setActivity(lc, s.ca.activity(lc)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

const (
	varDecay    = 1 / 0.95
	clauseDecay = 1 / 0.999
)

// clauseLBD computes the literal block distance of a clause whose literals
// are all assigned: the number of distinct non-zero decision levels.
func (s *Solver) clauseLBD(lits []Lit) int {
	s.lbdStamp++
	lbd := 0
	for _, l := range lits {
		lvl := int(s.level[l.Var()])
		if lvl == 0 {
			continue
		}
		for lvl >= len(s.levelMark) {
			s.levelMark = append(s.levelMark, 0)
		}
		if s.levelMark[lvl] != s.lbdStamp {
			s.levelMark[lvl] = s.lbdStamp
			lbd++
		}
	}
	if lbd == 0 {
		lbd = 1
	}
	return lbd
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first), the backtrack level, and the clause's LBD
// (computed here, while every literal is still assigned).
func (s *Solver) analyze(confl ClauseRef) ([]Lit, int, int) {
	learnt := []Lit{LitUndef} // slot 0 for the asserting literal
	pathC := 0
	p := LitUndef
	index := len(s.trail) - 1
	for {
		ls := s.ca.lits(confl)
		if s.ca.learnt(confl) {
			s.bumpClause(confl)
			// Glucose-style refresh: a reused clause whose literals now
			// span fewer levels is promoted toward the core tier. Clauses
			// already at core LBD can't be demoted, so skip the recompute.
			if s.ca.lbd(confl) > coreLBD {
				if lbd := s.clauseLBD(ls); lbd < s.ca.lbd(confl) {
					s.ca.setLBD(confl, lbd)
				}
			}
		}
		start := 0
		if p != LitUndef {
			start = 1 // skip the asserting literal of the reason clause
		}
		for _, q := range ls[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = 1
				if int(s.level[v]) == s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to expand from the trail.
		for s.seen[s.trail[index].Var()] == 0 {
			index--
		}
		p = s.trail[index]
		index--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Clause minimization: drop literals whose reason is subsumed by the
	// remaining learnt clause (simple non-recursive check). Keep the full
	// pre-minimization list so every seen flag is cleared afterwards.
	toClear := append([]Lit(nil), learnt...)
	minimized := learnt[:1]
	for _, q := range learnt[1:] {
		if !s.litRedundant(q) {
			minimized = append(minimized, q)
		}
	}
	learnt = minimized
	lbd := s.clauseLBD(learnt)

	// Compute backtrack level: the second-highest level in the clause.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, q := range toClear {
		s.seen[q.Var()] = 0
	}
	return learnt, btLevel, lbd
}

// litRedundant reports whether literal q in a learnt clause is implied by
// the other marked literals (one-step self-subsumption).
func (s *Solver) litRedundant(q Lit) bool {
	r := s.reason[q.Var()]
	if r == NilRef {
		return false
	}
	for _, l := range s.ca.lits(r) {
		if l == q.Not() {
			continue
		}
		v := l.Var()
		if s.seen[v] == 0 && s.level[v] > 0 {
			return false
		}
	}
	return true
}

// otfSubsumeMaxSize bounds the subset check of on-the-fly self-subsumption;
// beyond it the quadratic literal comparison stops paying for itself.
const otfSubsumeMaxSize = 32

// otfSubsume deletes the conflicting clause when the freshly learnt clause
// strictly subsumes it (every learnt literal occurs in it). Sound because
// the learnt clause is implied by the formula, so replacing a superset by
// it preserves equivalence. Restricted to learnt-tier conflicts: problem
// clauses must survive verbatim for WriteDIMACS and NumClauses, and
// core-tier learnts (LBD ≤ coreLBD) are spared — they encode tight
// cross-level structure whose deletion measurably degrades the search even
// when a logically stronger clause replaces them. A conflicting clause has
// all literals false, hence is never a reason.
func (s *Solver) otfSubsume(confl ClauseRef, learnt []Lit) {
	if !s.ca.learnt(confl) || s.ca.lbd(confl) <= coreLBD {
		return
	}
	cl := s.ca.lits(confl)
	if len(learnt) >= len(cl) || len(cl) > otfSubsumeMaxSize {
		return
	}
	for _, q := range learnt {
		found := false
		for _, l := range cl {
			if l == q {
				found = true
				break
			}
		}
		if !found {
			return
		}
	}
	s.detachClause(confl)
	s.ca.markDeleted(confl)
	s.stats.Subsumed++
}

// shareMaxLBD / shareMaxSize gate portfolio clause export: only short,
// low-glue learnts are worth a peer's propagation cycles.
const (
	shareMaxLBD  = 4
	shareMaxSize = 30
)

// recordLearnt installs a learnt clause with the given LBD and enqueues its
// asserting literal.
func (s *Solver) recordLearnt(learnt []Lit, lbd int) {
	s.stats.Learnt++
	s.stats.LBDHist[lbdBucket(lbd)]++
	if s.export != nil && lbd <= shareMaxLBD && len(learnt) <= shareMaxSize {
		if s.export(append([]Lit(nil), learnt...), lbd) {
			s.stats.SharedExports++
		}
	}
	if len(learnt) == 1 {
		s.enqueue(learnt[0], NilRef)
		return
	}
	c := s.ca.alloc(learnt, true)
	s.ca.setLBD(c, lbd)
	s.learnts = append(s.learnts, c)
	s.bumpClause(c)
	s.watchClause(c)
	s.enqueue(learnt[0], c)
}

// coreLBD is the tier boundary: learnt clauses at or below this glue are
// kept forever (they encode tight cross-level structure and re-derive
// themselves anyway if deleted).
const coreLBD = 3

// locked reports whether c is the reason of its first literal's assignment.
func (s *Solver) locked(c ClauseRef) bool {
	l0 := s.ca.lits(c)[0]
	return s.value(l0) == lTrue && s.reason[l0.Var()] == c
}

// reduceDB removes roughly half of the reducible learnt clauses. The core
// tier (LBD ≤ coreLBD), binary clauses, and locked (reason) clauses are
// exempt; the rest is ranked by (LBD ascending, activity descending) and the
// worse half is tombstoned. A compacting GC runs when enough of the arena
// is dead.
func (s *Solver) reduceDB() {
	cands := make([]ClauseRef, 0, len(s.learnts))
	for _, c := range s.learnts {
		if s.ca.deleted(c) || s.ca.size(c) == 2 || s.ca.lbd(c) <= coreLBD || s.locked(c) {
			continue
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		li, lj := s.ca.lbd(cands[i]), s.ca.lbd(cands[j])
		if li != lj {
			return li < lj
		}
		return s.ca.activity(cands[i]) > s.ca.activity(cands[j])
	})
	for _, c := range cands[len(cands)/2:] {
		s.detachClause(c)
		s.ca.markDeleted(c)
		s.stats.Removed++
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !s.ca.deleted(c) {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	if s.ca.wasted > len(s.ca.data)/4 {
		s.garbageCollect()
	}
}

// garbageCollect compacts the clause arena: live clauses are copied into a
// fresh slab in clause-list order, reason slots are remapped through the
// forwarding map, and watcher lists are rebuilt from the relocated watch
// pairs (positions 0 and 1 are preserved by relocation, so the two-watched
// invariant carries over even mid-search).
func (s *Solver) garbageCollect() {
	var dst arena
	dst.data = make([]Lit, 0, len(s.ca.data)-s.ca.wasted)
	forward := s.ca.gcInto(&dst, &s.clauses, &s.learnts)
	for v := range s.reason {
		if r := s.reason[v]; r != NilRef {
			s.reason[v] = forward[r]
		}
	}
	for i := range s.watches {
		s.watches[i] = s.watches[i][:0]
	}
	s.ca = dst
	for _, c := range s.clauses {
		s.watchClause(c)
	}
	for _, c := range s.learnts {
		s.watchClause(c)
	}
	s.stats.ArenaGCs++
}

// pickBranchVar selects the next decision variable: usually the activity
// maximum, with an Options.RandomVarFreq chance of a uniformly random
// unassigned variable (portfolio diversification).
func (s *Solver) pickBranchVar() Var {
	if s.opts.RandomVarFreq > 0 && s.rng.chance(s.opts.RandomVarFreq) {
		for t := 0; t < 8; t++ {
			v := Var(s.rng.intn(len(s.assigns)))
			if s.assigns[v] == lUndef {
				return v
			}
		}
	}
	for !s.order.empty() {
		v := s.order.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// decisionPhase selects the phase for a decision on v per Options.Polarity.
func (s *Solver) decisionPhase(v Var) bool {
	switch s.opts.Polarity {
	case PolarityTrue:
		return true
	case PolarityFalse:
		return false
	case PolarityRandom:
		return s.rng.next()&1 == 1
	default:
		return s.polarity[v]
	}
}

// luby computes the Luby restart sequence element for 0-based index x:
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
func luby(x int64) int64 {
	var size, seq int64 = 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return 1 << uint(seq)
}

// Solve determines satisfiability of the clause set under the given
// assumption literals. It returns Sat, Unsat, or Unknown (only if
// Options.MaxConflicts was exceeded). The model after Sat is read with
// Value.
func (s *Solver) Solve(assumptions ...Lit) Status {
	return s.SolveContext(context.Background(), assumptions...)
}

// SolveContext is Solve with cancellation support: the context is checked
// at every restart boundary and additionally every Options.CtxPollConflicts
// conflicts within a restart, so cancellation takes effect promptly even
// inside the long late-Luby restart intervals. A cancelled or expired
// context yields Unknown; callers distinguish it from conflict-budget
// exhaustion via ctx.Err().
//
// When the result is Unsat because of the assumptions, the minimized
// inconsistent subset of the assumptions is available from UnsatCore.
func (s *Solver) SolveContext(ctx context.Context, assumptions ...Lit) Status {
	st := s.solveLimited(ctx, assumptions, s.opts.MaxConflicts)
	if st == Unsat && s.unsatAssumptions && len(s.unsatCore) > 1 {
		s.minimizeCore(ctx, assumptions)
	}
	return st
}

// solveLimited runs the restart loop under the given conflict budget
// (0 = unlimited) without core minimization.
func (s *Solver) solveLimited(ctx context.Context, assumptions []Lit, maxConflicts int64) Status {
	s.unsatAssumptions = false
	s.failedAssumption = LitUndef
	s.unsatCore = nil
	if s.unsat {
		return Unsat
	}
	s.cancelUntil(0)
	if s.propagate() != NilRef {
		s.unsat = true
		return Unsat
	}

	var totalConflicts int64
	restart := int64(-1)
	geomBudget := float64(s.opts.RestartBase)
	maxLearnts := len(s.clauses)/3 + s.opts.ReduceBase

	for {
		if ctx.Err() != nil {
			s.cancelUntil(0)
			return Unknown
		}
		// Restart boundary: the trail is at level 0, the only point where
		// peer clauses can be installed without backtracking bookkeeping.
		if s.importLearnts != nil && !s.drainImports() {
			s.unsat = true
			return Unsat
		}
		restart++
		var budget int64
		if s.opts.Restart == RestartGeometric {
			budget = int64(geomBudget)
			geomBudget *= s.opts.RestartFactor
		} else {
			budget = int64(s.opts.RestartBase) * luby(restart)
		}
		st := s.search(ctx, assumptions, budget, &totalConflicts, maxConflicts, maxLearnts)
		switch st {
		case Sat, Unsat:
			s.cancelUntilRoot(st)
			return st
		}
		s.stats.Restarts++
		if maxConflicts > 0 && totalConflicts >= maxConflicts {
			s.cancelUntil(0)
			return Unknown
		}
		maxLearnts += maxLearnts / 10
	}
}

// drainImports installs clauses offered by portfolio peers. Called at
// decision level 0 only. Returns false if an import (necessarily sound —
// learnt clauses never depend on assumptions) exposed level-0
// unsatisfiability.
func (s *Solver) drainImports() bool {
	for _, lits := range s.importLearnts() {
		if !s.addImported(lits) {
			return false
		}
	}
	return true
}

// addImported installs one peer-learnt clause at level 0, applying the same
// normalization as AddClause but storing the clause in the learnt tier so
// the problem clause set (NumClauses, WriteDIMACS) is unchanged.
func (s *Solver) addImported(lits []Lit) bool {
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var() < 0 || int(l.Var()) >= s.NumVars() {
			return true // references a variable this solver hasn't synced yet
		}
		switch s.value(l) {
		case lTrue:
			return true // already satisfied at level 0
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	s.stats.SharedImports++
	switch len(out) {
	case 0:
		return false
	case 1:
		s.enqueue(out[0], NilRef)
		return s.propagate() == NilRef
	}
	c := s.ca.alloc(out, true)
	s.ca.setLBD(c, len(out)) // pessimistic; refreshed on first reuse
	s.learnts = append(s.learnts, c)
	s.watchClause(c)
	return true
}

// cancelUntilRoot backtracks to level 0 after a Solve, preserving the model
// if the result was Sat.
func (s *Solver) cancelUntilRoot(st Status) {
	if st == Sat {
		if cap(s.model) < len(s.assigns) {
			s.model = make([]lbool, len(s.assigns))
		}
		s.model = s.model[:len(s.assigns)]
		copy(s.model, s.assigns)
	}
	s.cancelUntil(0)
}

// UnsatFromAssumptions reports whether the last Solve's Unsat was caused by
// a falsified assumption literal rather than by the clause set itself. When
// it returns true the instance may still be satisfiable under weaker (or
// no) assumptions — the incremental bound descent in internal/exact relies
// on this to relax an over-tight cost bound without re-encoding.
func (s *Solver) UnsatFromAssumptions() bool { return s.unsatAssumptions }

// FailedAssumption returns the assumption literal whose falsification
// caused the last Unsat, or LitUndef when the clause set itself is
// unsatisfiable (or the last result was not Unsat).
func (s *Solver) FailedAssumption() Lit { return s.failedAssumption }

// UnsatCore returns the minimized unsat core over the assumptions of the
// last Solve: a subset of the assumption literals whose conjunction is
// already inconsistent with the clause set. It is non-empty exactly when
// UnsatFromAssumptions reports true. Final-conflict analysis walks the
// implication graph from the falsified assumption back to assumption-level
// decisions (collecting only the assumptions that actually participated in
// the conflict), and the result is then shrunk by recursive literal-removal
// minimization: each literal is tentatively dropped and the rest re-solved
// under a small conflict budget on the same instance — removal attempts run
// in reverse assumption order, so callers probing nested constraints should
// pass the weakest (most likely redundant-making) assumptions first.
//
// The returned slice is owned by the solver and valid until the next Solve.
func (s *Solver) UnsatCore() []Lit { return s.unsatCore }

// analyzeFinal computes the subset of the current assumptions that implies
// ¬p, given that assumption p was found falsified while re-establishing the
// assumption levels. It walks the trail from the top down to the first
// decision, expanding reasons of marked variables; marked decisions are
// assumption literals (the only decisions below the failure point) and join
// the core alongside p itself.
func (s *Solver) analyzeFinal(p Lit) []Lit {
	core := []Lit{p}
	if s.decisionLevel() == 0 {
		return core
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if r := s.reason[v]; r == NilRef {
			// A decision below the failure point is an assumption, recorded
			// on the trail exactly as it was passed to Solve.
			core = append(core, s.trail[i])
		} else {
			for _, l := range s.ca.lits(r) {
				if s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
	return core
}

// minimizeCoreConflicts bounds each literal-removal probe of the core
// minimization. A probe that exceeds it keeps its literal — minimization
// only ever shrinks a correct core, so truncation stays sound.
const minimizeCoreConflicts = 1000

// minimizeCore shrinks unsatCore by recursive literal removal: drop one
// literal, re-solve the remainder under a conflict budget on the same
// instance (learnt clauses make these probes cheap), and on Unsat adopt the
// probe's own — possibly much smaller — core. Candidates are tried in
// reverse order of the original assumption list. Total minimization work is
// bounded: each probe gets at most minimizeCoreConflicts conflicts, and the
// whole pass stops once it has spent either Options.MaxConflicts (when the
// caller budgeted the solve — minimization must not blow a latency
// contract) or a few probes' worth of conflicts, whichever is smaller.
func (s *Solver) minimizeCore(ctx context.Context, assumptions []Lit) {
	pos := make(map[Lit]int, len(assumptions))
	for i, a := range assumptions {
		pos[a] = i
	}
	core := append([]Lit(nil), s.unsatCore...)
	sort.Slice(core, func(i, j int) bool { return pos[core[i]] > pos[core[j]] })
	failed := s.failedAssumption

	perProbe := int64(minimizeCoreConflicts)
	allowance := 8 * perProbe
	if s.opts.MaxConflicts > 0 && s.opts.MaxConflicts < allowance {
		allowance = s.opts.MaxConflicts
	}
	if perProbe > allowance {
		perProbe = allowance
	}
	spent := s.stats.Conflicts

	for i := 0; i < len(core) && len(core) > 1; {
		if s.stats.Conflicts-spent >= allowance {
			break // minimization allowance exhausted; the core stays sound
		}
		trial := make([]Lit, 0, len(core)-1)
		trial = append(trial, core[:i]...)
		trial = append(trial, core[i+1:]...)
		st := s.solveLimited(ctx, trial, perProbe)
		switch {
		case st == Unsat && s.unsatAssumptions:
			// Still inconsistent without core[i]; adopt the probe's core
			// (a subset of trial, possibly dropping several literals) and
			// rescan from the front.
			core = append(core[:0], s.unsatCore...)
			sort.Slice(core, func(a, b int) bool { return pos[core[a]] > pos[core[b]] })
			i = 0
		case st == Unsat:
			// The probe derived genuine unsatisfiability of the clause set:
			// no assumption subset is to blame anymore.
			s.unsatAssumptions = false
			s.failedAssumption = LitUndef
			s.unsatCore = nil
			return
		default:
			i++ // Sat or budget/ctx truncation: the literal stays
		}
	}

	// Restore the attribution the probes overwrote.
	s.unsatAssumptions = true
	s.unsatCore = core
	s.failedAssumption = core[0]
	for _, l := range core {
		if l == failed {
			s.failedAssumption = failed
			break
		}
	}
}

// search runs CDCL until a result, a conflict budget exhaustion (returns
// Unknown to trigger a restart), a context cancellation (also Unknown; the
// caller re-checks ctx), or an assumption failure.
func (s *Solver) search(ctx context.Context, assumptions []Lit, budget int64, totalConflicts *int64, maxConflicts int64, maxLearnts int) Status {
	var conflicts int64
	ctxPoll := int64(s.opts.CtxPollConflicts)
	for {
		confl := s.propagate()
		if confl != NilRef {
			conflicts++
			*totalConflicts++
			s.stats.Conflicts++
			if s.decisionLevel() == 0 {
				s.unsat = true
				return Unsat
			}
			learnt, btLevel, lbd := s.analyze(confl)
			s.otfSubsume(confl, learnt)
			// Never backtrack past the assumption levels' prefix that
			// remains consistent; cancelUntil handles any level, and the
			// assumption re-decision logic below re-establishes them.
			s.cancelUntil(btLevel)
			s.recordLearnt(learnt, lbd)
			s.varInc *= varDecay
			s.claInc *= clauseDecay
			if len(s.learnts) >= maxLearnts+len(s.trail) {
				s.reduceDB()
			}
			if conflicts >= budget || (maxConflicts > 0 && *totalConflicts >= maxConflicts) {
				s.cancelUntil(0)
				return Unknown
			}
			if conflicts%ctxPoll == 0 && ctx.Err() != nil {
				s.cancelUntil(0)
				return Unknown
			}
			continue
		}
		// Decision: first re-establish assumptions, then branch.
		var next Lit = LitUndef
		for s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.value(a) {
			case lTrue:
				// Already satisfied; open an empty decision level so
				// each assumption owns one level.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// Conflicts with current clauses: unsatisfiable under
				// assumptions (the clause set itself may still be SAT).
				// Final-conflict analysis pins down which assumptions
				// actually participated.
				s.unsatAssumptions = true
				s.failedAssumption = a
				s.unsatCore = s.analyzeFinal(a)
				return Unsat
			}
			next = a
			break
		}
		if next == LitUndef {
			v := s.pickBranchVar()
			if v < 0 {
				return Sat // all variables assigned
			}
			s.stats.Decisions++
			next = v.Lit(s.decisionPhase(v))
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(next, NilRef)
	}
}
