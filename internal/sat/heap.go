package sat

// varHeap is an indexed binary max-heap of variables ordered by VSIDS
// activity. It supports decrease/increase-key via the position index, as
// required when activities are bumped during conflict analysis.
type varHeap struct {
	activity *[]float64 // points at the solver's activity slice
	heap     []Var
	pos      []int32 // pos[v] = index of v in heap, or -1
}

func newVarHeap(activity *[]float64) *varHeap {
	return &varHeap{activity: activity}
}

func (h *varHeap) less(a, b Var) bool {
	return (*h.activity)[a] > (*h.activity)[b]
}

// grow ensures the position index covers variable v.
func (h *varHeap) grow(v Var) {
	for int(v) >= len(h.pos) {
		h.pos = append(h.pos, -1)
	}
}

func (h *varHeap) contains(v Var) bool {
	return int(v) < len(h.pos) && h.pos[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) push(v Var) {
	h.grow(v)
	if h.contains(v) {
		return
	}
	h.pos[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() Var {
	top := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.pos[h.heap[0]] = 0
	h.heap = h.heap[:last]
	h.pos[top] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return top
}

// update restores heap order after v's activity increased.
func (h *varHeap) update(v Var) {
	if h.contains(v) {
		h.up(int(h.pos[v]))
	}
}

// rebuild restores heap order after all activities were rescaled.
// Rescaling divides everything by the same constant, so relative order is
// unchanged and no action is needed; the method exists for clarity at call
// sites.
func (h *varHeap) rebuild() {}

func (h *varHeap) up(i int) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(v, h.heap[parent]) {
			break
		}
		h.heap[i] = h.heap[parent]
		h.pos[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}

func (h *varHeap) down(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		best := left
		if right := left + 1; right < n && h.less(h.heap[right], h.heap[left]) {
			best = right
		}
		if !h.less(h.heap[best], v) {
			break
		}
		h.heap[i] = h.heap[best]
		h.pos[h.heap[i]] = int32(i)
		i = best
	}
	h.heap[i] = v
	h.pos[v] = int32(i)
}
