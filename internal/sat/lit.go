// Package sat implements a conflict-driven clause-learning (CDCL) Boolean
// satisfiability solver in pure Go: two-watched-literal propagation, VSIDS
// variable ordering with phase saving, first-UIP conflict analysis, Luby
// restarts, learnt-clause database reduction, and incremental solving under
// assumptions.
//
// It is the "reasoning engine" of the paper (which used Z3): the symbolic
// mapping formulation of paper §3.2 is encoded to CNF by internal/cnf and
// internal/encoder, and minimized by iteratively tightening a cost bound
// until unsatisfiability proves minimality.
package sat

import "fmt"

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: variable with polarity. The encoding is 2·v for the
// positive literal and 2·v+1 for the negation, following MiniSat.
type Lit int32

// LitUndef is the sentinel "no literal" value.
const LitUndef Lit = -1

// Pos returns the positive literal of v.
func (v Var) Pos() Lit { return Lit(v << 1) }

// Neg returns the negative literal of v.
func (v Var) Neg() Lit { return Lit(v<<1 | 1) }

// Lit returns the literal of v with the given polarity (true = positive).
func (v Var) Lit(positive bool) Lit {
	if positive {
		return v.Pos()
	}
	return v.Neg()
}

// Var returns the literal's variable.
func (l Lit) Var() Var { return Var(l >> 1) }

// IsPos reports whether the literal is positive.
func (l Lit) IsPos() bool { return l&1 == 0 }

// Not returns the negation of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// String renders the literal as "v3" or "¬v3".
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	if l.IsPos() {
		return fmt.Sprintf("v%d", l.Var())
	}
	return fmt.Sprintf("¬v%d", l.Var())
}

// lbool is a three-valued boolean.
type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func boolToLbool(b bool) lbool {
	if b {
		return lTrue
	}
	return lFalse
}

// litValue computes the value of a literal given its variable's value.
func litValue(assign lbool, l Lit) lbool {
	if assign == lUndef {
		return lUndef
	}
	if l.IsPos() == (assign == lTrue) {
		return lTrue
	}
	return lFalse
}

// Status is the result of a Solve call.
type Status int

const (
	// Unknown means the solver was interrupted by budget before deciding.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula (under the given assumptions) is
	// unsatisfiable.
	Unsat
)

// String returns "SAT", "UNSAT" or "UNKNOWN".
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	}
	return "UNKNOWN"
}
