package sat

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDIMACSBasic(t *testing.T) {
	src := `c sample instance
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 3 {
		t.Errorf("vars = %d", s.NumVars())
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestParseDIMACSUnsat(t *testing.T) {
	src := "p cnf 1 2\n1 0\n-1 0\n"
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve = %v", got)
	}
}

func TestParseDIMACSImplicitVars(t *testing.T) {
	// No problem line: variables are allocated on demand.
	s, err := ParseDIMACS(strings.NewReader("4 -7 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 7 {
		t.Errorf("vars = %d, want 7", s.NumVars())
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"bad problem line": "p cnf x 3\n1 0\n",
		"bad token":        "p cnf 1 1\none 0\n",
		"unterminated":     "p cnf 2 1\n1 2\n",
		"clause mismatch":  "p cnf 2 5\n1 0\n",
		"not cnf":          "p sat 2 1\n1 0\n",
	}
	for name, src := range cases {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 4)
	s.AddClause(v[0].Pos(), v[1].Neg(), v[2].Pos())
	s.AddClause(v[3].Neg())
	s.AddClause(v[1].Pos(), v[3].Pos(), v[0].Neg())
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if got, want := back.Solve(), s.Solve(); got != want {
		t.Fatalf("round trip: %v, want %v", got, want)
	}
}

// Property: random 3-SAT instances round-trip through DIMACS with the same
// satisfiability verdict.
func TestDIMACSRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		const nVars = 8
		cnf := randomCNF(seed, nVars, 25)
		s := NewSolver()
		newVars(s, nVars)
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		var buf bytes.Buffer
		if err := s.WriteDIMACS(&buf); err != nil {
			return false
		}
		back, err := ParseDIMACS(&buf)
		if err != nil {
			return false
		}
		return back.Solve() == s.Solve()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestWriteDIMACSIncludesUnits(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Pos()) // becomes a level-0 assignment, not a clause
	s.AddClause(v[0].Neg(), v[1].Pos())
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 0") {
		t.Errorf("unit missing from:\n%s", buf.String())
	}
}

func TestWriteDIMACSUnsatSolver(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 1)
	s.AddClause(v[0].Pos())
	s.AddClause(v[0].Neg()) // drives the solver UNSAT at level 0
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Solve(); got != Unsat {
		t.Fatalf("round trip of UNSAT solver = %v", got)
	}
}
