package sat

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestPoolClonePanicBenched: a clone panicking mid-solve must cost the
// portfolio one worker, not the answer or the process — the survivors
// finish the solve, the panic is counted, and later solves skip the
// benched clone.
func TestPoolClonePanicBenched(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(v[0].Pos(), v[1].Pos())
	p := NewPool(s, 4)

	deactivate := faultinject.Activate(1, faultinject.Plan{
		"sat.pool.worker.2": {PanicMsg: "chaos: clone dies", Limit: 1},
	})
	got := p.Solve()
	deactivate()
	if got != Sat {
		t.Fatalf("solve with a panicking clone = %v, want SAT", got)
	}
	if n := p.Panics(); n != 1 {
		t.Errorf("Panics() = %d, want 1", n)
	}
	if n := p.DeadWorkers(); n != 1 {
		t.Errorf("DeadWorkers() = %d, want 1", n)
	}

	// The benched clone stays out of later solves; the survivors still
	// answer correctly under assumptions.
	if got := p.Solve(v[0].Neg()); got != Sat {
		t.Fatalf("post-panic solve = %v, want SAT", got)
	}
	if !p.Value(v[1]) {
		t.Error("post-panic model violates the clause under the assumption")
	}
	if n := p.DeadWorkers(); n != 1 {
		t.Errorf("DeadWorkers() after clean solve = %d, want still 1", n)
	}
	if n := p.Panics(); n != 1 {
		t.Errorf("Panics() after clean solve = %d, want still 1", n)
	}
}

// TestPoolMasterPanicPropagates: worker 0 IS the master — after a
// mid-search panic its trail cannot be trusted, so the pool must
// repropagate rather than answer from a corrupt solver. The exact layer's
// recover boundary turns this into an error.
func TestPoolMasterPanicPropagates(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 2)
	s.AddClause(v[0].Pos(), v[1].Pos())
	p := NewPool(s, 2)

	defer faultinject.Activate(1, faultinject.Plan{
		"sat.pool.worker.0": {PanicMsg: "chaos: master dies", Limit: 1},
	})()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("master panic was swallowed; the corrupt master must not be reused")
		}
		if !strings.Contains(fmt.Sprint(r), "master dies") {
			t.Errorf("repropagated panic = %v, want the injected one", r)
		}
		if n := p.Panics(); n != 1 {
			t.Errorf("Panics() = %d, want 1 (master panic counted before repropagation)", n)
		}
	}()
	p.Solve()
	t.Fatal("unreachable: Solve must repropagate the master panic")
}
