package sat

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestPoolSatAndUnsat: the portfolio must agree with the single-thread
// answer on both polarities and expose a valid witness through the master.
func TestPoolSatAndUnsat(t *testing.T) {
	sat := NewPool(func() *Solver { s := NewSolver(); pigeonhole(s, 5, 5); return s }(), 4)
	if got := sat.Solve(); got != Sat {
		t.Fatalf("PHP(5,5) portfolio = %v, want SAT", got)
	}
	unsat := NewPool(func() *Solver { s := NewSolver(); pigeonhole(s, 6, 5); return s }(), 4)
	if got := unsat.Solve(); got != Unsat {
		t.Fatalf("PHP(6,5) portfolio = %v, want UNSAT", got)
	}
	if unsat.UnsatFromAssumptions() {
		t.Error("genuine UNSAT misattributed to assumptions")
	}
}

// TestPoolAssumptionCore: a portfolio UNSAT under assumptions must install
// the winning worker's minimized core into the master's query surface.
func TestPoolAssumptionCore(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 4)
	s.AddClause(v[0].Neg(), v[1].Pos()) // v0 → v1
	s.AddClause(v[1].Neg(), v[2].Pos()) // v1 → v2
	p := NewPool(s, 4)
	if got := p.Solve(v[3].Pos(), v[0].Pos(), v[2].Neg()); got != Unsat {
		t.Fatalf("portfolio = %v, want UNSAT", got)
	}
	if !p.UnsatFromAssumptions() {
		t.Fatal("UNSAT not attributed to assumptions")
	}
	core := p.UnsatCore()
	members := coreSet([]Lit{v[3].Pos(), v[0].Pos(), v[2].Neg()})
	if len(core) == 0 {
		t.Fatal("empty core")
	}
	for _, l := range core {
		if !members[l] {
			t.Fatalf("core literal %v is not an assumption", l)
		}
	}
	if members[v[3].Pos()] && len(core) == 3 {
		t.Errorf("core %v not minimized: irrelevant v3 retained", core)
	}
	// The master remains usable and consistent after adoption.
	if got := p.Solve(v[0].Pos()); got != Sat {
		t.Fatalf("relaxed portfolio solve = %v, want SAT", got)
	}
	if !p.Value(v[2]) {
		t.Error("implication chain lost after portfolio adoption")
	}
}

// TestPoolClauseSharing: on a hard UNSAT instance the workers must actually
// exchange learnt clauses — exports accepted into peer inboxes and imports
// installed at restart boundaries.
func TestPoolClauseSharing(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 8, 7)
	p := NewPool(s, 4)
	if got := p.Solve(); got != Unsat {
		t.Fatalf("PHP(8,7) portfolio = %v, want UNSAT", got)
	}
	snap := p.Snapshot()
	if snap.SharedExports == 0 {
		t.Error("no clauses exported on a multi-thousand-conflict instance")
	}
	if snap.SharedImports == 0 {
		t.Error("no clauses imported on a multi-thousand-conflict instance")
	}
	if snap.Conflicts == 0 || snap.Learnt == 0 {
		t.Errorf("implausible aggregate stats: %+v", snap)
	}
}

// TestPoolCancellation: a pre-expired context must stop every worker with
// Unknown, and the pool must stay fully usable afterwards.
func TestPoolCancellation(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 8, 7)
	p := NewPool(s, 4)
	ctx, cancel := context.WithCancel(bgCtx)
	cancel()
	if got := p.SolveContext(ctx); got != Unknown {
		t.Fatalf("cancelled portfolio = %v, want Unknown", got)
	}
	if got := p.SolveContext(bgCtx); got != Unsat {
		t.Fatalf("portfolio after cancellation = %v, want UNSAT", got)
	}
}

// TestPoolConcurrentCancelHammer exercises the racy corners — concurrent
// export/import traffic while an external goroutine cancels mid-search —
// repeatedly, so `go test -race` patrols the sharing channels and the
// winner-adoption path. Any status is legal under a racing cancel; the
// invariants are no data race, no deadlock, and a correct definitive answer
// once the noise stops.
func TestPoolConcurrentCancelHammer(t *testing.T) {
	for round := 0; round < 6; round++ {
		s := NewSolver()
		pigeonhole(s, 8, 7)
		p := NewPool(s, 4)
		ctx, cancel := context.WithCancel(bgCtx)
		var wg sync.WaitGroup
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			time.Sleep(d)
			cancel()
		}(time.Duration(round) * 2 * time.Millisecond)
		if got := p.SolveContext(ctx); got == Sat {
			t.Fatalf("round %d: PHP(8,7) reported SAT", round)
		}
		wg.Wait()
		cancel()
		if got := p.SolveContext(bgCtx); got != Unsat {
			t.Fatalf("round %d: post-cancel solve = %v, want UNSAT", round, got)
		}
	}
}

// TestPoolIncrementalGrowth drives the sync cursors: the master's encoding
// grows (new vars, clauses, root units) between portfolio solves, exactly
// like the exact engine's lazily materialized cost bounds.
func TestPoolIncrementalGrowth(t *testing.T) {
	s := NewSolver()
	v := newVars(s, 3)
	s.AddClause(v[0].Pos(), v[1].Pos(), v[2].Pos())
	p := NewPool(s, 3)
	if got := p.Solve(); got != Sat {
		t.Fatalf("initial portfolio solve = %v", got)
	}
	// Grow: a new variable, clauses tying it down, and a narrowing unit.
	w := s.NewVar()
	s.AddClause(w.Neg(), v[0].Neg())
	s.AddClause(w.Pos()) // root unit after propagation
	if got := p.Solve(); got != Sat {
		t.Fatalf("portfolio after growth = %v, want SAT", got)
	}
	if p.Value(v[0]) || !p.Value(w) {
		t.Error("model ignores the narrowed instance")
	}
	s.AddClause(v[1].Neg())
	s.AddClause(v[2].Neg())
	if got := p.Solve(); got != Unsat {
		t.Fatalf("portfolio after contradiction = %v, want UNSAT", got)
	}
	// Once the master is root-unsat every further solve short-circuits.
	if got := p.Solve(); got != Unsat {
		t.Fatalf("portfolio on dead master = %v, want UNSAT", got)
	}
}

// TestPoolSingleThreadPassThrough: threads ≤ 1 must behave exactly like the
// bare master — no clones, no channels, bit-for-bit deterministic.
func TestPoolSingleThreadPassThrough(t *testing.T) {
	s := NewSolver()
	pigeonhole(s, 6, 5)
	p := NewPool(s, 1)
	if got := p.Solve(); got != Unsat {
		t.Fatalf("pass-through = %v, want UNSAT", got)
	}
	if p.workers != nil {
		t.Error("threads=1 pool spawned workers")
	}
	ref := NewSolver()
	pigeonhole(ref, 6, 5)
	ref.Solve()
	if a, b := p.Snapshot().Conflicts, ref.Snapshot().Conflicts; a != b {
		t.Errorf("pass-through diverged from bare master: %d vs %d conflicts", a, b)
	}
}
