package sat

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// differentialConfigs is the set of option profiles the differential tests
// run side by side: the default profile plus the portfolio's diversification
// table, so every restart/polarity/randomization combination the Pool can
// spawn is also exercised in isolation against the same instances.
func differentialConfigs() map[string]Options {
	return map[string]Options{
		"default":         {},
		"geometric-rand":  {Restart: RestartGeometric, RestartBase: 100, RestartFactor: 1.5, Seed: 11, RandomVarFreq: 0.02},
		"luby-true":       {Restart: RestartLuby, RestartBase: 50, Polarity: PolarityTrue, Seed: 22},
		"geometric-polar": {Restart: RestartGeometric, RestartBase: 500, RestartFactor: 2, Polarity: PolarityRandom, Seed: 33},
		"luby-false-rand": {Restart: RestartLuby, RestartBase: 200, Polarity: PolarityFalse, Seed: 44, RandomVarFreq: 0.05},
	}
}

// loadDIMACSClauses parses a testdata CNF through ParseDIMACS and extracts
// the raw clause list (root units plus problem clauses) so the same formula
// can be replayed into many independently configured solvers.
func loadDIMACSClauses(t *testing.T, path string) (nVars int, cnf [][]Lit) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	s, err := ParseDIMACS(f)
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	units := len(s.trail)
	if len(s.trailLim) > 0 {
		units = s.trailLim[0]
	}
	for i := 0; i < units; i++ {
		cnf = append(cnf, []Lit{s.trail[i]})
	}
	for _, c := range s.clauses {
		cnf = append(cnf, append([]Lit(nil), s.ca.lits(c)...))
	}
	return s.NumVars(), cnf
}

// modelSatisfies checks a Sat witness against the raw clause list.
func modelSatisfies(s interface{ Value(Var) bool }, cnf [][]Lit) bool {
	for _, cl := range cnf {
		ok := false
		for _, l := range cl {
			if s.Value(l.Var()) == l.IsPos() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// TestDIMACSDifferential drives every testdata instance through the default
// solver, each diversified option profile, and a 4-thread Pool, asserting
// that all agree with the status encoded in the filename and that every Sat
// witness actually satisfies the formula.
func TestDIMACSDifferential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.cnf"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata CNFs found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			want := Unsat
			if strings.HasSuffix(path, ".sat.cnf") {
				want = Sat
			} else if !strings.HasSuffix(path, ".unsat.cnf") {
				t.Fatalf("testdata file %s must end in .sat.cnf or .unsat.cnf", path)
			}
			nVars, cnf := loadDIMACSClauses(t, path)

			for name, opts := range differentialConfigs() {
				s := New(opts)
				newVars(s, nVars)
				for _, cl := range cnf {
					s.AddClause(cl...)
				}
				if got := s.Solve(); got != want {
					t.Errorf("%s: status %v, want %v", name, got, want)
				} else if want == Sat && !modelSatisfies(s, cnf) {
					t.Errorf("%s: Sat witness violates the formula", name)
				}
			}

			master := NewSolver()
			newVars(master, nVars)
			for _, cl := range cnf {
				master.AddClause(cl...)
			}
			pool := NewPool(master, 4)
			if got := pool.Solve(); got != want {
				t.Errorf("pool: status %v, want %v", got, want)
			} else if want == Sat && !modelSatisfies(pool, cnf) {
				t.Errorf("pool: Sat witness violates the formula")
			}
		})
	}
}

// bruteForceUnder decides satisfiability of cnf ∧ assumptions by enumeration.
func bruteForceUnder(cnf [][]Lit, nVars int, assumptions []Lit) bool {
	all := append([][]Lit{}, cnf...)
	for _, l := range assumptions {
		all = append(all, []Lit{l})
	}
	return bruteForceSat(all, nVars)
}

// TestDifferentialAssumptionsParity fuzzes random instances under random
// assumption sets: every profile and the Pool must agree with brute-force
// enumeration, Sat witnesses must honor the assumptions, and every reported
// core must be a subset of the assumptions that is itself inconsistent.
func TestDifferentialAssumptionsParity(t *testing.T) {
	r := lcg(20260808)
	configs := differentialConfigs()
	for round := 0; round < 120; round++ {
		const nVars = 8
		nClauses := 16 + r.next(16)
		cnf := randomCNF(int64(round)*97+13, nVars, nClauses)
		var assumptions []Lit
		for i := 0; i < 1+r.next(3); i++ {
			v := Var(r.next(nVars))
			assumptions = append(assumptions, v.Lit(r.next(2) == 0))
		}
		want := Sat
		if !bruteForceUnder(cnf, nVars, assumptions) {
			want = Unsat
		}

		check := func(name string, s interface {
			Solve(...Lit) Status
			Value(Var) bool
			UnsatFromAssumptions() bool
			UnsatCore() []Lit
		}) {
			t.Helper()
			got := s.Solve(assumptions...)
			if got != want {
				t.Fatalf("round %d %s: status %v, want %v (assumptions %v)", round, name, got, want, assumptions)
			}
			if got == Sat {
				if !modelSatisfies(s, cnf) {
					t.Fatalf("round %d %s: witness violates formula", round, name)
				}
				for _, l := range assumptions {
					if s.Value(l.Var()) != l.IsPos() {
						t.Fatalf("round %d %s: witness violates assumption %v", round, name, l)
					}
				}
				return
			}
			if !s.UnsatFromAssumptions() {
				// The clause set alone may be inconsistent; then no core is owed.
				if bruteForceSat(cnf, nVars) {
					t.Fatalf("round %d %s: assumption-caused UNSAT not attributed", round, name)
				}
				return
			}
			core := s.UnsatCore()
			if len(core) == 0 {
				t.Fatalf("round %d %s: empty core", round, name)
			}
			members := coreSet(assumptions)
			for _, l := range core {
				if !members[l] {
					t.Fatalf("round %d %s: core literal %v not an assumption", round, name, l)
				}
			}
			if bruteForceUnder(cnf, nVars, core) {
				t.Fatalf("round %d %s: core %v is not inconsistent with the formula", round, name, core)
			}
		}

		for name, opts := range configs {
			s := New(opts)
			newVars(s, nVars)
			for _, cl := range cnf {
				s.AddClause(cl...)
			}
			check(name, s)
		}

		master := NewSolver()
		newVars(master, nVars)
		for _, cl := range cnf {
			master.AddClause(cl...)
		}
		check("pool", NewPool(master, 3))
	}
}

// TestDifferentialIncremental replays an incremental session — interleaved
// clause additions and assumption probes — against a fresh-solver oracle at
// every step, covering the encoder's grow-as-you-tighten usage pattern.
func TestDifferentialIncremental(t *testing.T) {
	r := lcg(4242)
	for round := 0; round < 40; round++ {
		const nVars = 7
		s := New(differentialConfigs()["geometric-rand"])
		newVars(s, nVars)
		var sofar [][]Lit
		for step := 0; step < 6; step++ {
			for i := 0; i < 2+r.next(4); i++ {
				cl := randomCNF(int64(round*100+step*10+i), nVars, 1)[0]
				sofar = append(sofar, cl)
				s.AddClause(cl...)
			}
			v := Var(r.next(nVars))
			assumption := v.Lit(r.next(2) == 0)
			want := Sat
			if !bruteForceUnder(sofar, nVars, []Lit{assumption}) {
				want = Unsat
			}
			if got := s.Solve(assumption); got != want {
				t.Fatalf("round %d step %d: status %v, want %v", round, step, got, want)
			}
			if got, wantBare := s.Solve(), boolStatus(bruteForceSat(sofar, nVars)); got != wantBare {
				t.Fatalf("round %d step %d: bare status %v, want %v", round, step, got, wantBare)
			}
		}
	}
}

func boolStatus(sat bool) Status {
	if sat {
		return Sat
	}
	return Unsat
}

// bgCtx avoids repeating context.Background() at call sites below.
var bgCtx = context.Background()
