package sat

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// inboxCap bounds each worker's import channel. Exports are non-blocking:
// when a peer's inbox is full the clause is simply not delivered there —
// sharing is an optimization, never a synchronization point.
const inboxCap = 256

// Pool is a clause-sharing thread portfolio over one incremental instance.
// Worker 0 is the master solver itself (the caller's options, the
// deterministic anchor); workers 1…N−1 are clones diversified by restart
// schedule, polarity mode, and random seed. During SolveContext every
// worker searches concurrently, exporting low-LBD learnt clauses to its
// peers' inboxes and importing at restart boundaries; the first definitive
// answer cancels the rest.
//
// The pool presents the master's query surface (Value, UnsatCore, …): after
// a portfolio solve the winning worker's model or core is installed into
// the master, so existing decoding paths keep reading one solver.
//
// Soundness: learnt clauses are consequences of the problem clauses alone —
// assumptions enter the search as scoped decisions, never as clauses — so a
// clause learnt by any worker under any assumption set is importable by
// every peer. Determinism caveat: the SAT/UNSAT status is identical across
// schedules, but with N > 1 the surviving model (or minimized core) depends
// on which worker answers first.
type Pool struct {
	master  *Solver
	opts    Options
	threads int

	workers []*Solver    // workers[0] == master; nil until first solve
	inboxes []chan []Lit // one per worker

	// Incremental sync cursors per worker: how much of the master's
	// problem-clause list and level-0 trail each clone has replayed.
	syncedClauses []int
	syncedUnits   []int

	// dead marks clones that panicked mid-solve: their internal state is
	// untrusted, so they are excluded from every future solve and sync and
	// the portfolio continues on the survivors. dead[0] is never set — a
	// master panic poisons the whole pool and is repropagated instead.
	dead []bool
	// panicked counts worker panics contained over the pool's lifetime.
	panicked atomic.Uint64
}

// NewPool wraps master in a portfolio of threads workers (threads ≥ 1;
// values ≤ 1 degrade to a pass-through around the master). The master must
// not be solved directly while the pool owns it.
func NewPool(master *Solver, threads int) *Pool {
	if threads < 1 {
		threads = 1
	}
	return &Pool{master: master, opts: master.opts, threads: threads}
}

// Threads returns the configured worker count.
func (p *Pool) Threads() int { return p.threads }

// diversify derives worker i's options from the master's. Worker 0 keeps
// the caller's configuration verbatim.
func diversify(base Options, i int) Options {
	o := base
	o.Seed = base.Seed*1099511628211 + int64(i)
	switch i % 4 {
	case 1:
		o.Restart = RestartGeometric
		o.RestartBase = 100
		o.RestartFactor = 1.5
		o.RandomVarFreq = 0.02
	case 2:
		o.Restart = RestartLuby
		o.RestartBase = 50
		o.Polarity = PolarityTrue
	case 3:
		o.Restart = RestartGeometric
		o.RestartBase = 500
		o.RestartFactor = 2
		o.Polarity = PolarityRandom
	default: // i ≥ 4, i ≡ 0 (mod 4)
		o.Restart = RestartLuby
		o.RestartBase = 200
		o.Polarity = PolarityFalse
		o.RandomVarFreq = 0.05
	}
	return o
}

// start lazily clones the workers and wires the sharing channels. Called at
// the first portfolio solve so the clones inherit the fully built encoding
// (and any learnt clauses the master accumulated before the pool took over).
func (p *Pool) start() {
	if p.workers != nil {
		return
	}
	p.workers = make([]*Solver, p.threads)
	p.inboxes = make([]chan []Lit, p.threads)
	p.dead = make([]bool, p.threads)
	p.syncedClauses = make([]int, p.threads)
	p.syncedUnits = make([]int, p.threads)
	p.workers[0] = p.master
	for i := 1; i < p.threads; i++ {
		p.workers[i] = p.master.clone(diversify(p.opts, i))
		p.syncedClauses[i] = len(p.master.clauses)
		p.syncedUnits[i] = p.master.rootUnits()
	}
	for i := range p.workers {
		p.inboxes[i] = make(chan []Lit, inboxCap)
		w, inbox := p.workers[i], p.inboxes[i]
		w.export = p.exportFrom(i)
		w.importLearnts = func() [][]Lit {
			var out [][]Lit
			for {
				select {
				case lits := <-inbox:
					out = append(out, lits)
				default:
					return out
				}
			}
		}
	}
}

// exportFrom builds worker i's export hook: fan the clause out to every
// peer inbox without blocking, reporting whether any peer accepted it. The
// exported slice is a fresh copy owned jointly by the receivers, which only
// read it.
func (p *Pool) exportFrom(i int) func([]Lit, int) bool {
	return func(lits []Lit, lbd int) bool {
		accepted := false
		for j, ch := range p.inboxes {
			if j == i {
				continue
			}
			select {
			case ch <- lits:
				accepted = true
			default:
			}
		}
		return accepted
	}
}

// rootUnits returns the number of level-0 trail assignments.
func (s *Solver) rootUnits() int {
	if len(s.trailLim) > 0 {
		return s.trailLim[0]
	}
	return len(s.trail)
}

// sync replays the master's growth since the last solve — new variables,
// new problem clauses, new root-level units — into every clone. The
// incremental encoder extends the master between probes (CostAtMostLit
// lazily materializes each new bound), so this runs before every solve.
func (p *Pool) sync() {
	m := p.master
	for i := 1; i < len(p.workers); i++ {
		if p.dead[i] {
			continue
		}
		w := p.workers[i]
		for w.NumVars() < m.NumVars() {
			w.NewVar()
		}
		if m.unsat {
			w.unsat = true
			continue
		}
		for _, c := range m.clauses[p.syncedClauses[i]:] {
			w.AddClause(m.ca.lits(c)...)
		}
		p.syncedClauses[i] = len(m.clauses)
		units := m.rootUnits()
		for _, l := range m.trail[p.syncedUnits[i]:units] {
			w.AddClause(l)
		}
		p.syncedUnits[i] = units
	}
}

// Solve is SolveContext with a background context.
func (p *Pool) Solve(assumptions ...Lit) Status {
	return p.SolveContext(context.Background(), assumptions...)
}

// SolveContext runs the portfolio on the current instance under the given
// assumptions. The first worker to reach Sat or Unsat cancels the rest; its
// model (or minimized assumption core) is installed into the master. If
// every worker exhausts its conflict budget or the context expires, the
// result is Unknown.
func (p *Pool) SolveContext(ctx context.Context, assumptions ...Lit) Status {
	if p.threads <= 1 || p.master.unsat {
		return p.master.SolveContext(ctx, assumptions...)
	}
	p.start()
	p.sync()

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	statuses := make([]Status, len(p.workers))
	panics := make([]any, len(p.workers))
	var wg sync.WaitGroup
	for i := range p.workers {
		if p.dead[i] {
			continue // a clone that panicked earlier stays benched
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// A panicking worker must not kill the process: its verdict
			// stays Unknown and the peers keep searching — a portfolio
			// member crashing is a narrower portfolio, not a failed solve.
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
					p.panicked.Add(1)
				}
			}()
			_ = faultinject.Hit(fmt.Sprintf("sat.pool.worker.%d", i))
			st := p.workers[i].SolveContext(cctx, assumptions...)
			statuses[i] = st
			if st == Sat || st == Unsat {
				cancel() // first definitive answer wins; peers stop at their next poll
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(p.workers); i++ {
		if panics[i] != nil {
			p.dead[i] = true
		}
	}
	if panics[0] != nil {
		// The master's trail/arena cannot be trusted after a mid-search
		// panic, and every query surface reads through it. Repropagate so
		// the caller's recover boundary (the exact layer) turns the whole
		// solve into an error instead of silently reusing a corrupt solver.
		panic(panics[0])
	}

	winner := -1
	for i, st := range statuses {
		if st == Sat || st == Unsat {
			winner = i
			break // lowest definitive index: a stable tie-break across runs
		}
	}
	if winner < 0 {
		return Unknown
	}
	if winner > 0 {
		p.adopt(p.workers[winner], statuses[winner])
	}
	return statuses[winner]
}

// adopt installs a non-master winner's verdict into the master so the
// pool's query surface (backed by the master) reflects the answer.
func (p *Pool) adopt(w *Solver, st Status) {
	m := p.master
	m.unsatAssumptions = w.unsatAssumptions
	m.failedAssumption = w.failedAssumption
	m.unsatCore = append([]Lit(nil), w.unsatCore...)
	if len(w.unsatCore) == 0 {
		m.unsatCore = nil
	}
	switch st {
	case Sat:
		if cap(m.model) < len(w.model) {
			m.model = make([]lbool, len(w.model))
		}
		m.model = m.model[:len(w.model)]
		copy(m.model, w.model)
	case Unsat:
		if !w.unsatAssumptions {
			m.unsat = true
		}
	}
}

// Panics reports how many worker panics the pool has contained over its
// lifetime (including a master panic, which is repropagated after counting).
func (p *Pool) Panics() uint64 { return p.panicked.Load() }

// DeadWorkers reports how many clones have been benched after panicking
// mid-solve; the portfolio keeps answering on the survivors.
func (p *Pool) DeadWorkers() int {
	n := 0
	for _, d := range p.dead {
		if d {
			n++
		}
	}
	return n
}

// Value returns the master's model value for v (the winning worker's model
// is installed there after each Sat).
func (p *Pool) Value(v Var) bool { return p.master.Value(v) }

// UnsatFromAssumptions reports whether the last solve's Unsat was caused by
// the assumptions; see Solver.UnsatFromAssumptions.
func (p *Pool) UnsatFromAssumptions() bool { return p.master.UnsatFromAssumptions() }

// FailedAssumption returns the assumption whose falsification caused the
// last Unsat; see Solver.FailedAssumption.
func (p *Pool) FailedAssumption() Lit { return p.master.FailedAssumption() }

// UnsatCore returns the minimized assumption core of the last Unsat; see
// Solver.UnsatCore.
func (p *Pool) UnsatCore() []Lit { return p.master.UnsatCore() }

// Snapshot aggregates counters across every worker (the master included).
// Call only between solves; workers are quiescent then.
func (p *Pool) Snapshot() Stats {
	if p.workers == nil {
		return p.master.Snapshot()
	}
	var t Stats
	for _, w := range p.workers {
		s := w.Snapshot()
		t.Decisions += s.Decisions
		t.Propagations += s.Propagations
		t.Conflicts += s.Conflicts
		t.Restarts += s.Restarts
		t.Learnt += s.Learnt
		t.Removed += s.Removed
		t.Subsumed += s.Subsumed
		t.ArenaGCs += s.ArenaGCs
		t.SharedExports += s.SharedExports
		t.SharedImports += s.SharedImports
		for i := range s.LBDHist {
			t.LBDHist[i] += s.LBDHist[i]
		}
	}
	return t
}

// clone deep-copies the solver's state — arena, clause lists, watch lists,
// assignment trail, activities — into a fresh solver configured by opts.
// The receiver must be at decision level 0 (i.e. outside Solve).
func (s *Solver) clone(opts Options) *Solver {
	n := New(opts)
	n.ca.data = append([]Lit(nil), s.ca.data...)
	n.ca.wasted = s.ca.wasted
	n.clauses = append([]ClauseRef(nil), s.clauses...)
	n.learnts = append([]ClauseRef(nil), s.learnts...)
	n.watches = make([][]watcher, len(s.watches))
	for i, ws := range s.watches {
		n.watches[i] = append([]watcher(nil), ws...)
	}
	n.assigns = append([]lbool(nil), s.assigns...)
	n.polarity = append([]bool(nil), s.polarity...)
	n.reason = append([]ClauseRef(nil), s.reason...)
	n.level = append([]int32(nil), s.level...)
	n.trail = append([]Lit(nil), s.trail...)
	n.qhead = s.qhead
	n.activity = append([]float64(nil), s.activity...)
	n.seen = make([]byte, len(s.seen))
	n.varInc, n.claInc = s.varInc, s.claInc
	n.unsat = s.unsat
	for v := 0; v < n.NumVars(); v++ {
		if n.assigns[v] == lUndef {
			n.order.push(Var(v))
		}
	}
	return n
}
