// Package cnf provides a structured CNF construction layer on top of the
// CDCL solver: Tseitin-encoded logic gates, cardinality constraints
// (at-most-one / exactly-one), one-hot constant selection, ripple-carry
// adders, and comparisons of bit vectors against constants.
//
// It is the bridge between the paper's symbolic formulation (Eqs. 1–5,
// built in internal/encoder) and the raw clause interface of internal/sat.
// In particular, the cost function F of Eq. 5 is materialized as a binary
// adder tree whose output is compared against a decreasing bound to prove
// minimality.
package cnf

import "repro/internal/sat"

// Builder wraps a sat.Solver with fresh-variable management and Tseitin
// gate encodings. The zero value is not usable; construct with NewBuilder.
type Builder struct {
	S *sat.Solver

	trueLit sat.Lit // literal fixed to true
}

// NewBuilder returns a Builder over the given solver. It allocates one
// variable fixed to true so that Boolean constants can be represented as
// ordinary literals in gate and adder inputs.
func NewBuilder(s *sat.Solver) *Builder {
	b := &Builder{S: s}
	v := s.NewVar()
	b.trueLit = v.Pos()
	s.AddClause(b.trueLit)
	return b
}

// True returns the constant-true literal.
func (b *Builder) True() sat.Lit { return b.trueLit }

// False returns the constant-false literal.
func (b *Builder) False() sat.Lit { return b.trueLit.Not() }

// IsTrue reports whether l is the constant-true literal.
func (b *Builder) IsTrue(l sat.Lit) bool { return l == b.trueLit }

// IsFalse reports whether l is the constant-false literal.
func (b *Builder) IsFalse(l sat.Lit) bool { return l == b.trueLit.Not() }

// NewLit allocates a fresh variable and returns its positive literal.
func (b *Builder) NewLit() sat.Lit { return b.S.NewVar().Pos() }

// AddClause forwards a clause to the solver.
func (b *Builder) AddClause(lits ...sat.Lit) { b.S.AddClause(lits...) }

// Implies asserts a → b.
func (b *Builder) Implies(a, c sat.Lit) { b.S.AddClause(a.Not(), c) }

// Equiv asserts a ↔ b.
func (b *Builder) Equiv(a, c sat.Lit) {
	b.S.AddClause(a.Not(), c)
	b.S.AddClause(a, c.Not())
}

// AddGuardedClause asserts g → (l₁ ∨ l₂ ∨ …): the clause weakened by ¬g.
// Assuming g in a Solve call activates the clause for that call only, so one
// instance can carry many alternative constraint sets (e.g. one per §4.1
// subset) selected by assumption — the shared-instance analogue of the bound
// guards minted by LessEqConstGuard.
func (b *Builder) AddGuardedClause(g sat.Lit, lits ...sat.Lit) {
	clause := make([]sat.Lit, 0, len(lits)+1)
	clause = append(clause, g.Not())
	clause = append(clause, lits...)
	b.S.AddClause(clause...)
}

// GuardedEquiv asserts g → (a ↔ c).
func (b *Builder) GuardedEquiv(g, a, c sat.Lit) {
	b.S.AddClause(g.Not(), a.Not(), c)
	b.S.AddClause(g.Not(), a, c.Not())
}

// And returns a literal equivalent to the conjunction of lits.
// Constant inputs are simplified away.
func (b *Builder) And(lits ...sat.Lit) sat.Lit {
	var ins []sat.Lit
	for _, l := range lits {
		if b.IsFalse(l) {
			return b.False()
		}
		if !b.IsTrue(l) {
			ins = append(ins, l)
		}
	}
	switch len(ins) {
	case 0:
		return b.True()
	case 1:
		return ins[0]
	}
	out := b.NewLit()
	// out → each input; all inputs → out.
	long := make([]sat.Lit, 0, len(ins)+1)
	for _, l := range ins {
		b.S.AddClause(out.Not(), l)
		long = append(long, l.Not())
	}
	long = append(long, out)
	b.S.AddClause(long...)
	return out
}

// Or returns a literal equivalent to the disjunction of lits.
func (b *Builder) Or(lits ...sat.Lit) sat.Lit {
	var ins []sat.Lit
	for _, l := range lits {
		if b.IsTrue(l) {
			return b.True()
		}
		if !b.IsFalse(l) {
			ins = append(ins, l)
		}
	}
	switch len(ins) {
	case 0:
		return b.False()
	case 1:
		return ins[0]
	}
	out := b.NewLit()
	long := make([]sat.Lit, 0, len(ins)+1)
	for _, l := range ins {
		b.S.AddClause(out, l.Not())
		long = append(long, l)
	}
	long = append(long, out.Not())
	b.S.AddClause(long...)
	return out
}

// Xor returns a literal equivalent to a ⊕ c.
func (b *Builder) Xor(a, c sat.Lit) sat.Lit {
	switch {
	case b.IsFalse(a):
		return c
	case b.IsTrue(a):
		return c.Not()
	case b.IsFalse(c):
		return a
	case b.IsTrue(c):
		return a.Not()
	case a == c:
		return b.False()
	case a == c.Not():
		return b.True()
	}
	out := b.NewLit()
	b.S.AddClause(out.Not(), a, c)
	b.S.AddClause(out.Not(), a.Not(), c.Not())
	b.S.AddClause(out, a.Not(), c)
	b.S.AddClause(out, a, c.Not())
	return out
}

// Iff returns a literal equivalent to a ↔ c.
func (b *Builder) Iff(a, c sat.Lit) sat.Lit { return b.Xor(a, c).Not() }

// Majority returns a literal equivalent to the majority of a, c, d
// (the carry-out of a full adder).
func (b *Builder) Majority(a, c, d sat.Lit) sat.Lit {
	// Simplify constants: maj(false,x,y) = x∧y; maj(true,x,y) = x∨y.
	switch {
	case b.IsFalse(a):
		return b.And(c, d)
	case b.IsTrue(a):
		return b.Or(c, d)
	case b.IsFalse(c):
		return b.And(a, d)
	case b.IsTrue(c):
		return b.Or(a, d)
	case b.IsFalse(d):
		return b.And(a, c)
	case b.IsTrue(d):
		return b.Or(a, c)
	}
	out := b.NewLit()
	b.S.AddClause(out, a.Not(), c.Not())
	b.S.AddClause(out, a.Not(), d.Not())
	b.S.AddClause(out, c.Not(), d.Not())
	b.S.AddClause(out.Not(), a, c)
	b.S.AddClause(out.Not(), a, d)
	b.S.AddClause(out.Not(), c, d)
	return out
}

// Xor3 returns a ⊕ c ⊕ d (the sum bit of a full adder).
func (b *Builder) Xor3(a, c, d sat.Lit) sat.Lit { return b.Xor(b.Xor(a, c), d) }

// AtMostOne asserts that at most one of the literals is true, using the
// pairwise encoding for few literals and the Sinz sequential encoding
// otherwise.
func (b *Builder) AtMostOne(lits ...sat.Lit) {
	n := len(lits)
	if n <= 1 {
		return
	}
	if n <= 5 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.S.AddClause(lits[i].Not(), lits[j].Not())
			}
		}
		return
	}
	// Sequential encoding (Sinz 2005): s_i ↔ "some lit among the first
	// i+1 is true", with conflict clauses preventing a second one.
	s := make([]sat.Lit, n-1)
	for i := range s {
		s[i] = b.NewLit()
	}
	b.S.AddClause(lits[0].Not(), s[0])
	for i := 1; i < n-1; i++ {
		b.S.AddClause(lits[i].Not(), s[i])
		b.S.AddClause(s[i-1].Not(), s[i])
		b.S.AddClause(lits[i].Not(), s[i-1].Not())
	}
	b.S.AddClause(lits[n-1].Not(), s[n-2].Not())
}

// ExactlyOne asserts that exactly one of the literals is true.
func (b *Builder) ExactlyOne(lits ...sat.Lit) {
	b.S.AddClause(lits...)
	b.AtMostOne(lits...)
}
