package cnf

import (
	"testing"
	"testing/quick"

	"repro/internal/sat"
)

func TestWidth(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 255: 8, 256: 9}
	for v, w := range cases {
		if got := Width(v); got != w {
			t.Errorf("Width(%d) = %d, want %d", v, got, w)
		}
	}
}

func TestConstVec(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	v := b.ConstVec(13, 5)
	assertSat(t, s, sat.Sat, "const vec")
	if got := b.Value(v); got != 13 {
		t.Errorf("Value = %d, want 13", got)
	}
}

func TestConstVecPanics(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	for _, f := range []func(){
		func() { b.ConstVec(-1, 4) },
		func() { b.ConstVec(16, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// freeVec allocates a vector of free variables.
func freeVec(b *Builder, width int) BitVec {
	v := make(BitVec, width)
	for i := range v {
		v[i] = b.NewLit()
	}
	return v
}

// assumeValue returns assumptions fixing vector x to value.
func assumeValue(x BitVec, value int) []sat.Lit {
	out := make([]sat.Lit, len(x))
	for i, l := range x {
		if value>>uint(i)&1 == 1 {
			out[i] = l
		} else {
			out[i] = l.Not()
		}
	}
	return out
}

func TestAddExhaustive(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x := freeVec(b, 3)
	y := freeVec(b, 4)
	sum := b.Add(x, y)
	if len(sum) != 5 {
		t.Fatalf("sum width = %d, want 5", len(sum))
	}
	for xv := 0; xv < 8; xv++ {
		for yv := 0; yv < 16; yv++ {
			assumptions := append(assumeValue(x, xv), assumeValue(y, yv)...)
			if got := s.Solve(assumptions...); got != sat.Sat {
				t.Fatalf("x=%d y=%d: %v", xv, yv, got)
			}
			if got := b.Value(sum); got != xv+yv {
				t.Fatalf("x=%d y=%d: sum = %d, want %d", xv, yv, got, xv+yv)
			}
		}
	}
}

func TestSumVecs(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	vals := []int{3, 7, 1, 12, 5}
	var vecs []BitVec
	for _, v := range vals {
		vecs = append(vecs, b.ConstVec(v, 4))
	}
	total := b.SumVecs(vecs)
	assertSat(t, s, sat.Sat, "sum vecs")
	if got := b.Value(total); got != 28 {
		t.Errorf("total = %d, want 28", got)
	}
	// Empty sum is zero.
	if got := b.Value(b.SumVecs(nil)); got != 0 {
		t.Errorf("empty sum = %d", got)
	}
}

func TestSelectConst(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	sel := []sat.Lit{b.NewLit(), b.NewLit(), b.NewLit()}
	vals := []int{0, 7, 21}
	out := b.SelectConst(sel, vals, 5)
	b.ExactlyOne(sel...)
	for i, v := range vals {
		if got := s.Solve(sel[i]); got != sat.Sat {
			t.Fatalf("select %d: %v", i, got)
		}
		if got := b.Value(out); got != v {
			t.Errorf("select %d: value = %d, want %d", i, got, v)
		}
	}
}

func TestSelectConstPanics(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	b.SelectConst([]sat.Lit{b.NewLit()}, []int{1, 2}, 3)
}

func TestScaleByLit(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	l := b.NewLit()
	v := b.ScaleByLit(l, 9, 4)
	if got := s.Solve(l); got != sat.Sat {
		t.Fatal(got)
	}
	if got := b.Value(v); got != 9 {
		t.Errorf("scaled(true) = %d, want 9", got)
	}
	if got := s.Solve(l.Not()); got != sat.Sat {
		t.Fatal(got)
	}
	if got := b.Value(v); got != 0 {
		t.Errorf("scaled(false) = %d, want 0", got)
	}
}

func TestAssertLessEqConstExhaustive(t *testing.T) {
	// For every bound, a free 4-bit vector must admit exactly the values
	// 0..min(bound,15).
	for bound := 0; bound <= 17; bound++ {
		s := sat.NewSolver()
		b := NewBuilder(s)
		x := freeVec(b, 4)
		b.AssertLessEqConst(x, bound)
		for v := 0; v < 16; v++ {
			want := sat.Sat
			if v > bound {
				want = sat.Unsat
			}
			if got := s.Solve(assumeValue(x, v)...); got != want {
				t.Errorf("bound=%d v=%d: %v, want %v", bound, v, got, want)
			}
		}
	}
}

func TestAssertLessEqNegativeBound(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x := freeVec(b, 3)
	b.AssertLessEqConst(x, -1)
	assertSat(t, s, sat.Unsat, "negative bound")
}

// Property: sum of random constants compared against random bounds behaves
// like integer arithmetic.
func TestArithmeticProperty(t *testing.T) {
	f := func(aRaw, bRaw, boundRaw uint) bool {
		av := int(aRaw % 32)
		bv := int(bRaw % 32)
		bound := int(boundRaw % 80)
		s := sat.NewSolver()
		bld := NewBuilder(s)
		sum := bld.Add(bld.ConstVec(av, 6), bld.ConstVec(bv, 6))
		bld.AssertLessEqConst(sum, bound)
		want := sat.Sat
		if av+bv > bound {
			want = sat.Unsat
		}
		return s.Solve() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLessEqConstGuardExhaustive: g → (x ≤ bound) must hold exactly when g
// is assumed, for every bound and every value of a 4-bit vector, all on ONE
// solver instance — the incremental reuse the guards exist for.
func TestLessEqConstGuardExhaustive(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x := freeVec(b, 4)
	guards := make([]sat.Lit, 16)
	for bound := range guards {
		guards[bound] = b.LessEqConstGuard(x, bound)
	}
	for bound := 0; bound < 16; bound++ {
		for v := 0; v < 16; v++ {
			assumptions := append(assumeValue(x, v), guards[bound])
			want := sat.Sat
			if v > bound {
				want = sat.Unsat
			}
			if got := s.Solve(assumptions...); got != want {
				t.Fatalf("bound=%d v=%d: %v, want %v", bound, v, got, want)
			}
			if want == sat.Unsat && !s.UnsatFromAssumptions() {
				t.Fatalf("bound=%d v=%d: UNSAT not attributed to assumptions", bound, v)
			}
		}
	}
	// Without any guard assumed, every value remains reachable: the bound
	// clauses are inert and the instance is not poisoned.
	for v := 0; v < 16; v++ {
		if got := s.Solve(assumeValue(x, v)...); got != sat.Sat {
			t.Fatalf("unguarded v=%d: %v, want SAT", v, got)
		}
	}
}

// TestLessEqConstGuardInfeasible: a negative bound makes the guard itself
// unsatisfiable, but only under assumption.
func TestLessEqConstGuardInfeasible(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x := freeVec(b, 3)
	g := b.LessEqConstGuard(x, -1)
	if got := s.Solve(g); got != sat.Unsat {
		t.Fatalf("assumed infeasible guard: %v, want UNSAT", got)
	}
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("instance poisoned by infeasible guard: %v", got)
	}
}

// TestLessEqConstGuardVacuous: a bound covering the whole range constrains
// nothing.
func TestLessEqConstGuardVacuous(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x := freeVec(b, 3)
	g := b.LessEqConstGuard(x, 7)
	for v := 0; v < 8; v++ {
		if got := s.Solve(append(assumeValue(x, v), g)...); got != sat.Sat {
			t.Fatalf("vacuous bound v=%d: %v", v, got)
		}
	}
}
