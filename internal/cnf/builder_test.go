package cnf

import (
	"testing"
	"testing/quick"

	"repro/internal/sat"
)

// assertSat solves and fails the test on anything but the expected status.
func assertSat(t *testing.T, s *sat.Solver, want sat.Status, msg string) {
	t.Helper()
	if got := s.Solve(); got != want {
		t.Fatalf("%s: Solve = %v, want %v", msg, got, want)
	}
}

func litVal(s *sat.Solver, l sat.Lit) bool {
	v := s.Value(l.Var())
	if !l.IsPos() {
		v = !v
	}
	return v
}

func TestConstants(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	assertSat(t, s, sat.Sat, "fresh builder")
	if !litVal(s, b.True()) || litVal(s, b.False()) {
		t.Error("constants have wrong values")
	}
	if !b.IsTrue(b.True()) || !b.IsFalse(b.False()) || b.IsTrue(b.False()) {
		t.Error("constant recognizers wrong")
	}
}

// enumerate checks a gate function against a truth table by solving with
// unit assumptions for each input combination.
func enumerate(t *testing.T, nIn int, build func(b *Builder, ins []sat.Lit) sat.Lit, want func(bits []bool) bool) {
	t.Helper()
	s := sat.NewSolver()
	b := NewBuilder(s)
	ins := make([]sat.Lit, nIn)
	for i := range ins {
		ins[i] = b.NewLit()
	}
	out := build(b, ins)
	for mask := 0; mask < 1<<uint(nIn); mask++ {
		assumptions := make([]sat.Lit, nIn)
		bits := make([]bool, nIn)
		for i := range ins {
			bits[i] = mask>>uint(i)&1 == 1
			if bits[i] {
				assumptions[i] = ins[i]
			} else {
				assumptions[i] = ins[i].Not()
			}
		}
		if got := s.Solve(assumptions...); got != sat.Sat {
			t.Fatalf("mask %b: %v", mask, got)
		}
		if got := litVal(s, out); got != want(bits) {
			t.Errorf("mask %b: out = %v, want %v", mask, got, want(bits))
		}
	}
}

func TestAndGate(t *testing.T) {
	enumerate(t, 3, func(b *Builder, ins []sat.Lit) sat.Lit { return b.And(ins...) },
		func(bits []bool) bool { return bits[0] && bits[1] && bits[2] })
}

func TestOrGate(t *testing.T) {
	enumerate(t, 3, func(b *Builder, ins []sat.Lit) sat.Lit { return b.Or(ins...) },
		func(bits []bool) bool { return bits[0] || bits[1] || bits[2] })
}

func TestXorGate(t *testing.T) {
	enumerate(t, 2, func(b *Builder, ins []sat.Lit) sat.Lit { return b.Xor(ins[0], ins[1]) },
		func(bits []bool) bool { return bits[0] != bits[1] })
}

func TestIffGate(t *testing.T) {
	enumerate(t, 2, func(b *Builder, ins []sat.Lit) sat.Lit { return b.Iff(ins[0], ins[1]) },
		func(bits []bool) bool { return bits[0] == bits[1] })
}

func TestMajorityGate(t *testing.T) {
	enumerate(t, 3, func(b *Builder, ins []sat.Lit) sat.Lit { return b.Majority(ins[0], ins[1], ins[2]) },
		func(bits []bool) bool {
			n := 0
			for _, x := range bits {
				if x {
					n++
				}
			}
			return n >= 2
		})
}

func TestXor3Gate(t *testing.T) {
	enumerate(t, 3, func(b *Builder, ins []sat.Lit) sat.Lit { return b.Xor3(ins[0], ins[1], ins[2]) },
		func(bits []bool) bool { return bits[0] != bits[1] != bits[2] })
}

func TestGateConstantSimplification(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x := b.NewLit()
	if got := b.And(x, b.True()); got != x {
		t.Error("And(x, true) should simplify to x")
	}
	if got := b.And(x, b.False()); !b.IsFalse(got) {
		t.Error("And(x, false) should be false")
	}
	if got := b.Or(x, b.False()); got != x {
		t.Error("Or(x, false) should simplify to x")
	}
	if got := b.Or(x, b.True()); !b.IsTrue(got) {
		t.Error("Or(x, true) should be true")
	}
	if got := b.Xor(x, b.False()); got != x {
		t.Error("Xor(x, false) should be x")
	}
	if got := b.Xor(x, b.True()); got != x.Not() {
		t.Error("Xor(x, true) should be ¬x")
	}
	if got := b.Xor(x, x); !b.IsFalse(got) {
		t.Error("Xor(x, x) should be false")
	}
	if got := b.Xor(x, x.Not()); !b.IsTrue(got) {
		t.Error("Xor(x, ¬x) should be true")
	}
	if got := b.And(); !b.IsTrue(got) {
		t.Error("empty And should be true")
	}
	if got := b.Or(); !b.IsFalse(got) {
		t.Error("empty Or should be false")
	}
}

func TestImpliesEquiv(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	x, y := b.NewLit(), b.NewLit()
	b.Implies(x, y)
	if got := s.Solve(x, y.Not()); got != sat.Unsat {
		t.Error("x ∧ ¬y should violate x→y")
	}
	if got := s.Solve(x.Not(), y.Not()); got != sat.Sat {
		t.Error("¬x ∧ ¬y should satisfy x→y")
	}
	z, w := b.NewLit(), b.NewLit()
	b.Equiv(z, w)
	if got := s.Solve(z, w.Not()); got != sat.Unsat {
		t.Error("z ∧ ¬w should violate z↔w")
	}
	if got := s.Solve(z.Not(), w.Not()); got != sat.Sat {
		t.Error("¬z ∧ ¬w should satisfy z↔w")
	}
}

// countSolutions counts models over the given literals by blocking clauses.
func countSolutions(s *sat.Solver, lits []sat.Lit) int {
	count := 0
	for s.Solve() == sat.Sat {
		count++
		if count > 1000 {
			panic("too many solutions")
		}
		block := make([]sat.Lit, len(lits))
		for i, l := range lits {
			if litVal(s, l) {
				block[i] = l.Not()
			} else {
				block[i] = l
			}
		}
		s.AddClause(block...)
	}
	return count
}

func TestAtMostOneCounts(t *testing.T) {
	// For n literals, at-most-one has exactly n+1 models.
	for _, n := range []int{2, 4, 5, 6, 9} { // spans pairwise and sequential
		s := sat.NewSolver()
		b := NewBuilder(s)
		lits := make([]sat.Lit, n)
		for i := range lits {
			lits[i] = b.NewLit()
		}
		b.AtMostOne(lits...)
		if got := countSolutions(s, lits); got != n+1 {
			t.Errorf("n=%d: %d models, want %d", n, got, n+1)
		}
	}
}

func TestExactlyOneCounts(t *testing.T) {
	for _, n := range []int{1, 3, 5, 8} {
		s := sat.NewSolver()
		b := NewBuilder(s)
		lits := make([]sat.Lit, n)
		for i := range lits {
			lits[i] = b.NewLit()
		}
		b.ExactlyOne(lits...)
		if got := countSolutions(s, lits); got != n {
			t.Errorf("n=%d: %d models, want %d", n, got, n)
		}
	}
}

func TestAtMostOneTrivial(t *testing.T) {
	s := sat.NewSolver()
	b := NewBuilder(s)
	b.AtMostOne()           // no literals: no constraint
	b.AtMostOne(b.NewLit()) // single literal: no constraint
	assertSat(t, s, sat.Sat, "trivial AMO")
}

// Property: AtMostOne never admits two true literals (sequential encoding).
func TestAtMostOnePairProperty(t *testing.T) {
	f := func(nRaw, iRaw, jRaw uint) bool {
		n := 6 + int(nRaw%6) // 6..11: sequential encoding
		i := int(iRaw % uint(n))
		j := int(jRaw % uint(n))
		if i == j {
			return true
		}
		s := sat.NewSolver()
		b := NewBuilder(s)
		lits := make([]sat.Lit, n)
		for k := range lits {
			lits[k] = b.NewLit()
		}
		b.AtMostOne(lits...)
		return s.Solve(lits[i], lits[j]) == sat.Unsat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
