package cnf

import "repro/internal/sat"

// A BitVec is an unsigned binary number as a little-endian literal vector:
// element 0 is the least significant bit. Constant bits are represented by
// the builder's True/False literals.
type BitVec []sat.Lit

// ConstVec returns a bit vector holding the constant value with the given
// width. It panics if the value does not fit.
func (b *Builder) ConstVec(value, width int) BitVec {
	if value < 0 || (width < 64 && value >= 1<<uint(width)) {
		panic("cnf: constant does not fit in width")
	}
	v := make(BitVec, width)
	for i := range v {
		if value>>uint(i)&1 == 1 {
			v[i] = b.True()
		} else {
			v[i] = b.False()
		}
	}
	return v
}

// Width returns the number of bits needed to represent value.
func Width(value int) int {
	w := 0
	for value > 0 {
		w++
		value >>= 1
	}
	if w == 0 {
		w = 1
	}
	return w
}

// Add returns a bit vector equal to x + y, one bit wider than the wider
// input (ripple-carry).
func (b *Builder) Add(x, y BitVec) BitVec {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	get := func(v BitVec, i int) sat.Lit {
		if i < len(v) {
			return v[i]
		}
		return b.False()
	}
	out := make(BitVec, n+1)
	carry := b.False()
	for i := 0; i < n; i++ {
		a, c := get(x, i), get(y, i)
		out[i] = b.Xor3(a, c, carry)
		carry = b.Majority(a, c, carry)
	}
	out[n] = carry
	return out
}

// SumVecs returns the sum of all vectors as a balanced adder tree, which
// keeps intermediate widths (and hence clause counts) small.
func (b *Builder) SumVecs(vecs []BitVec) BitVec {
	if len(vecs) == 0 {
		return BitVec{b.False()}
	}
	for len(vecs) > 1 {
		var next []BitVec
		for i := 0; i+1 < len(vecs); i += 2 {
			next = append(next, b.Add(vecs[i], vecs[i+1]))
		}
		if len(vecs)%2 == 1 {
			next = append(next, vecs[len(vecs)-1])
		}
		vecs = next
	}
	return vecs[0]
}

// SelectConst returns a bit vector equal to values[i] when selectors[i] is
// true. The caller must separately guarantee that exactly one selector is
// true (or that the zero vector is acceptable when none is). Bit j of the
// result is the disjunction of the selectors whose value has bit j set.
func (b *Builder) SelectConst(selectors []sat.Lit, values []int, width int) BitVec {
	if len(selectors) != len(values) {
		panic("cnf: selector/value length mismatch")
	}
	out := make(BitVec, width)
	for j := 0; j < width; j++ {
		var ons []sat.Lit
		for i, v := range values {
			if v < 0 || (width < 64 && v >= 1<<uint(width)) {
				panic("cnf: selected value does not fit in width")
			}
			if v>>uint(j)&1 == 1 {
				ons = append(ons, selectors[i])
			}
		}
		out[j] = b.Or(ons...)
	}
	return out
}

// ScaleByLit returns a vector equal to value when l is true and 0 when l is
// false.
func (b *Builder) ScaleByLit(l sat.Lit, value, width int) BitVec {
	return b.SelectConst([]sat.Lit{l}, []int{value}, width)
}

// AssertLessEqConst asserts x ≤ bound for a constant bound.
//
// The encoding forbids every "violating prefix": for each bit position i
// where the bound has a 0, if x matches the bound on all higher 1-bits then
// x must have a 0 at position i as well.
func (b *Builder) AssertLessEqConst(x BitVec, bound int) {
	b.lessEqConst(x, bound, nil)
}

// LessEqConstGuard returns a fresh activation literal g together with
// clauses encoding g → (x ≤ bound): the comparison clauses of
// AssertLessEqConst, each weakened by ¬g. Assuming g in a Solve call
// activates the bound; leaving it unassumed (or assuming ¬g) deactivates
// it without removing clauses, so a tightening-then-relaxing minimization
// driver can probe many bounds on ONE incremental solver instance while
// keeping every learnt clause. An infeasible bound (< 0) makes g itself
// unsatisfiable; a vacuous bound (covering x's whole range) returns an
// unconstrained literal.
func (b *Builder) LessEqConstGuard(x BitVec, bound int) sat.Lit {
	g := b.NewLit()
	if bound < 0 {
		b.S.AddClause(g.Not())
		return g
	}
	b.lessEqConst(x, bound, []sat.Lit{g.Not()})
	return g
}

// lessEqConst emits the x ≤ bound clauses, each prefixed by the optional
// guard disjunct.
func (b *Builder) lessEqConst(x BitVec, bound int, guard []sat.Lit) {
	if bound < 0 {
		b.S.AddClause(guard...) // empty (or guard-only) clause: unsatisfiable
		return
	}
	// If the bound covers the whole range of x the constraint is vacuous
	// (and the per-bit clauses below would be wrong, since they assume all
	// 1-bits of the bound are within x's width).
	if len(x) < 63 && bound >= 1<<uint(len(x))-1 {
		return
	}
	for i := len(x) - 1; i >= 0; i-- {
		if bound>>uint(i)&1 == 1 {
			continue
		}
		clause := append(append([]sat.Lit(nil), guard...), x[i].Not())
		for j := i + 1; j < len(x); j++ {
			if bound>>uint(j)&1 == 1 {
				clause = append(clause, x[j].Not())
			}
		}
		b.S.AddClause(clause...)
	}
}

// Value reads the numeric value of a bit vector from the solver's model
// after a Sat result.
func (b *Builder) Value(x BitVec) int {
	v := 0
	for i, l := range x {
		bit := b.S.Value(l.Var())
		if !l.IsPos() {
			bit = !bit
		}
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v
}
