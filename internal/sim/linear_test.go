package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

func TestLinearIdentity(t *testing.T) {
	m := NewLinearIdentity(4)
	for x := uint64(0); x < 16; x++ {
		if m.Eval(x) != x {
			t.Fatalf("identity(%d) = %d", x, m.Eval(x))
		}
	}
}

func TestLinearCNOT(t *testing.T) {
	m := NewLinearIdentity(3)
	m.ApplyCNOT(0, 2)
	// bit2' = bit2 ⊕ bit0.
	cases := map[uint64]uint64{0b000: 0b000, 0b001: 0b101, 0b100: 0b100, 0b101: 0b001}
	for in, want := range cases {
		if got := m.Eval(in); got != want {
			t.Errorf("Eval(%03b) = %03b, want %03b", in, got, want)
		}
	}
}

func TestLinearSWAPEqualsThreeCNOTs(t *testing.T) {
	a := NewLinearIdentity(2)
	a.ApplySWAP(0, 1)
	b := NewLinearIdentity(2)
	b.ApplyCNOT(0, 1)
	b.ApplyCNOT(1, 0)
	b.ApplyCNOT(0, 1)
	if !a.Equal(b) {
		t.Error("SWAP ≠ 3 CNOTs over GF(2)")
	}
}

func TestLinearMatchesStateVector(t *testing.T) {
	// GF(2) semantics must agree with the state-vector simulator on basis
	// states for random CNOT/SWAP circuits.
	f := func(seed int64, count uint) bool {
		const n = 4
		lin := NewLinearIdentity(n)
		type gate struct {
			swap bool
			a, b int
		}
		var gates []gate
		state := uint64(seed)
		next := func(mod int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(mod))
		}
		for i := 0; i < int(count%15)+1; i++ {
			a, b := next(n), next(n)
			if a == b {
				b = (b + 1) % n
			}
			sw := next(2) == 0
			gates = append(gates, gate{sw, a, b})
			if sw {
				lin.ApplySWAP(a, b)
			} else {
				lin.ApplyCNOT(a, b)
			}
		}
		for basis := 0; basis < 1<<n; basis++ {
			s := NewBasisState(n, basis)
			for _, g := range gates {
				if g.swap {
					s.Apply(circuit.SWAP(g.a, g.b))
				} else {
					s.Apply(circuit.CNOT(g.a, g.b))
				}
			}
			want := int(lin.Eval(uint64(basis)))
			if !approx(s.Amplitude(want), 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinearPanics(t *testing.T) {
	for _, n := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLinearIdentity(%d) should panic", n)
				}
			}()
			NewLinearIdentity(n)
		}()
	}
}

func TestLinearEqualSizes(t *testing.T) {
	if NewLinearIdentity(2).Equal(NewLinearIdentity(3)) {
		t.Error("different sizes should not be equal")
	}
}
