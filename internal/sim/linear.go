package sim

import "fmt"

// LinearMap is an invertible linear transformation over GF(2)^n, the exact
// semantics of a CNOT/SWAP-only circuit: output bit i is the XOR of the
// input bits j with Rows[i] bit j set.
type LinearMap struct {
	N    int
	Rows []uint64 // Rows[i] = bitmask of input bits feeding output bit i
}

// NewLinearIdentity returns the identity map on n ≤ 64 bits.
func NewLinearIdentity(n int) *LinearMap {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("sim: linear map size %d outside [1,64]", n))
	}
	m := &LinearMap{N: n, Rows: make([]uint64, n)}
	for i := range m.Rows {
		m.Rows[i] = 1 << uint(i)
	}
	return m
}

// ApplyCNOT composes a CNOT(control→target) after the current map:
// the target's defining row absorbs the control's.
func (m *LinearMap) ApplyCNOT(control, target int) {
	m.Rows[target] ^= m.Rows[control]
}

// ApplySWAP exchanges two wires.
func (m *LinearMap) ApplySWAP(a, b int) {
	m.Rows[a], m.Rows[b] = m.Rows[b], m.Rows[a]
}

// Equal reports whether two maps are identical.
func (m *LinearMap) Equal(o *LinearMap) bool {
	if m.N != o.N {
		return false
	}
	for i, r := range m.Rows {
		if o.Rows[i] != r {
			return false
		}
	}
	return true
}

// Eval applies the map to an input bit vector.
func (m *LinearMap) Eval(input uint64) uint64 {
	var out uint64
	for i, row := range m.Rows {
		if parity(row&input) == 1 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func parity(x uint64) int {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return int(x & 1)
}
