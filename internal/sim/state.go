// Package sim provides two circuit simulators used for verification:
// a full state-vector simulator over the library's gate set (exact
// semantics for up to ~12 qubits), and a GF(2) linear-reversible simulator
// for CNOT/SWAP circuits that scales to any size the mapper handles.
//
// The mapped circuits produced by this library are verified against the
// originals through these simulators (internal/verify), so the paper's
// minimality results are established over provably equivalent circuits.
package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/circuit"
)

// MaxQubits bounds the state-vector simulator's size (2^12 amplitudes).
const MaxQubits = 12

// State is a quantum state over n qubits. Qubit k corresponds to bit k of
// the amplitude index (qubit 0 is the least significant bit).
type State struct {
	n    int
	amps []complex128
}

// NewState returns the all-zeros computational basis state |0…0⟩.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("sim: %d qubits outside [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s
}

// NewBasisState returns the computational basis state |index⟩.
func NewBasisState(n, index int) *State {
	s := NewState(n)
	if index < 0 || index >= len(s.amps) {
		panic("sim: basis index out of range")
	}
	s.amps[0] = 0
	s.amps[index] = 1
	return s
}

// NumQubits returns the number of qubits.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of basis state |index⟩.
func (s *State) Amplitude(index int) complex128 { return s.amps[index] }

// Copy returns a deep copy of the state.
func (s *State) Copy() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps))}
	copy(c.amps, s.amps)
	return c
}

// uMatrix returns the 2×2 matrix of U(θ,φ,λ) = Rz(φ)Ry(θ)Rz(λ) in the IBM
// convention: [[cos(θ/2), −e^{iλ}·sin(θ/2)], [e^{iφ}·sin(θ/2),
// e^{i(φ+λ)}·cos(θ/2)]].
func uMatrix(theta, phi, lambda float64) [2][2]complex128 {
	c, sn := math.Cos(theta/2), math.Sin(theta/2)
	return [2][2]complex128{
		{complex(c, 0), -cmplx.Exp(complex(0, lambda)) * complex(sn, 0)},
		{cmplx.Exp(complex(0, phi)) * complex(sn, 0), cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0)},
	}
}

// applySingle applies a 2×2 matrix to qubit q.
func (s *State) applySingle(q int, m [2][2]complex128) {
	bit := 1 << uint(q)
	for i := range s.amps {
		if i&bit != 0 {
			continue
		}
		a0, a1 := s.amps[i], s.amps[i|bit]
		s.amps[i] = m[0][0]*a0 + m[0][1]*a1
		s.amps[i|bit] = m[1][0]*a0 + m[1][1]*a1
	}
}

// Apply applies one gate to the state.
func (s *State) Apply(g circuit.Gate) error {
	if err := g.Validate(s.n); err != nil {
		return err
	}
	switch g.Kind {
	case circuit.KindCNOT:
		s.applyCNOT(g.Qubits[0], g.Qubits[1])
	case circuit.KindSWAP:
		s.applySWAP(g.Qubits[0], g.Qubits[1])
	case circuit.KindMCT:
		s.applyMCT(g.Qubits[:len(g.Qubits)-1], g.Qubits[len(g.Qubits)-1])
	default:
		u, ok := g.AsU()
		if !ok {
			return fmt.Errorf("sim: unsupported gate %s", g)
		}
		s.applySingle(u.Qubits[0], uMatrix(u.Theta, u.Phi, u.Lambda))
	}
	return nil
}

func (s *State) applyCNOT(control, target int) {
	cb, tb := 1<<uint(control), 1<<uint(target)
	for i := range s.amps {
		if i&cb != 0 && i&tb == 0 {
			s.amps[i], s.amps[i|tb] = s.amps[i|tb], s.amps[i]
		}
	}
}

func (s *State) applySWAP(a, b int) {
	ab, bb := 1<<uint(a), 1<<uint(b)
	for i := range s.amps {
		if i&ab != 0 && i&bb == 0 {
			j := i&^ab | bb
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

func (s *State) applyMCT(controls []int, target int) {
	var cmask int
	for _, c := range controls {
		cmask |= 1 << uint(c)
	}
	tb := 1 << uint(target)
	for i := range s.amps {
		if i&cmask == cmask && i&tb == 0 {
			s.amps[i], s.amps[i|tb] = s.amps[i|tb], s.amps[i]
		}
	}
}

// Run applies every gate of the circuit in order.
func (s *State) Run(c *circuit.Circuit) error {
	if c.NumQubits() > s.n {
		return fmt.Errorf("sim: circuit needs %d qubits, state has %d", c.NumQubits(), s.n)
	}
	for _, g := range c.Gates() {
		if err := s.Apply(g); err != nil {
			return err
		}
	}
	return nil
}

// InnerProduct returns ⟨s|o⟩.
func (s *State) InnerProduct(o *State) complex128 {
	if s.n != o.n {
		panic("sim: inner product of different sizes")
	}
	var total complex128
	for i, a := range s.amps {
		total += cmplx.Conj(a) * o.amps[i]
	}
	return total
}

// Norm returns the state's 2-norm (should be 1 for valid evolutions).
func (s *State) Norm() float64 {
	total := 0.0
	for _, a := range s.amps {
		total += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(total)
}

// EqualUpToPhase reports whether two states are equal up to a global phase
// within tolerance eps (|⟨s|o⟩| ≥ 1−eps) and returns the phase factor.
func (s *State) EqualUpToPhase(o *State, eps float64) (bool, complex128) {
	ip := s.InnerProduct(o)
	return cmplx.Abs(ip) >= 1-eps, ip
}
