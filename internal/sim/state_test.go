package sim

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
)

const eps = 1e-12

func approx(a, b complex128) bool { return cmplx.Abs(a-b) < 1e-9 }

func TestNewState(t *testing.T) {
	s := NewState(3)
	if s.NumQubits() != 3 || s.Amplitude(0) != 1 {
		t.Fatal("initial state wrong")
	}
	if math.Abs(s.Norm()-1) > eps {
		t.Fatal("norm != 1")
	}
}

func TestNewStatePanics(t *testing.T) {
	for _, n := range []int{0, MaxQubits + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewState(%d) should panic", n)
				}
			}()
			NewState(n)
		}()
	}
}

func TestXGate(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.X(0))
	if !approx(s.Amplitude(1), 1) {
		t.Errorf("X|00⟩: amp(01) = %v", s.Amplitude(1))
	}
	s.Apply(circuit.X(1))
	if !approx(s.Amplitude(3), 1) {
		t.Errorf("amp(11) = %v", s.Amplitude(3))
	}
}

func TestHGate(t *testing.T) {
	s := NewState(1)
	s.Apply(circuit.H(0))
	r := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), r) || !approx(s.Amplitude(1), r) {
		t.Errorf("H|0⟩ = (%v, %v)", s.Amplitude(0), s.Amplitude(1))
	}
	// H is self-inverse.
	s.Apply(circuit.H(0))
	if !approx(s.Amplitude(0), 1) {
		t.Errorf("HH|0⟩ = %v", s.Amplitude(0))
	}
}

func TestTGatePhase(t *testing.T) {
	s := NewState(1)
	s.Apply(circuit.X(0))
	s.Apply(circuit.T(0))
	want := cmplx.Exp(complex(0, math.Pi/4))
	if !approx(s.Amplitude(1), want) {
		t.Errorf("T|1⟩ = %v, want %v", s.Amplitude(1), want)
	}
	s2 := NewState(1)
	s2.Apply(circuit.X(0))
	s2.Apply(circuit.T(0))
	s2.Apply(circuit.Tdg(0))
	if !approx(s2.Amplitude(1), 1) {
		t.Error("T·T† should be identity")
	}
}

func TestCNOT(t *testing.T) {
	// CNOT(0→1): |01⟩ (q0=1) → |11⟩.
	s := NewState(2)
	s.Apply(circuit.X(0))
	s.Apply(circuit.CNOT(0, 1))
	if !approx(s.Amplitude(3), 1) {
		t.Errorf("CNOT|01⟩: amp(11) = %v", s.Amplitude(3))
	}
	// Control 0: no effect.
	s2 := NewState(2)
	s2.Apply(circuit.CNOT(0, 1))
	if !approx(s2.Amplitude(0), 1) {
		t.Error("CNOT|00⟩ should stay |00⟩")
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.Apply(circuit.H(0))
	s.Apply(circuit.CNOT(0, 1))
	r := complex(1/math.Sqrt2, 0)
	if !approx(s.Amplitude(0), r) || !approx(s.Amplitude(3), r) ||
		!approx(s.Amplitude(1), 0) || !approx(s.Amplitude(2), 0) {
		t.Errorf("Bell state wrong: %v %v %v %v",
			s.Amplitude(0), s.Amplitude(1), s.Amplitude(2), s.Amplitude(3))
	}
}

func TestSWAPGate(t *testing.T) {
	s := NewState(3)
	s.Apply(circuit.X(0))
	s.Apply(circuit.SWAP(0, 2))
	if !approx(s.Amplitude(4), 1) {
		t.Errorf("SWAP moved excitation wrong: amp(100) = %v", s.Amplitude(4))
	}
}

func TestSwapDecompositionIdentity(t *testing.T) {
	// Paper Fig. 3: SWAP = CNOT(a,b)·CNOT(b,a)·CNOT(a,b) — verify on all
	// basis states of a 2-qubit system.
	for b := 0; b < 4; b++ {
		viaSwap := NewBasisState(2, b)
		viaSwap.Apply(circuit.SWAP(0, 1))
		viaCNOTs := NewBasisState(2, b)
		viaCNOTs.Apply(circuit.CNOT(0, 1))
		viaCNOTs.Apply(circuit.CNOT(1, 0))
		viaCNOTs.Apply(circuit.CNOT(0, 1))
		if ok, _ := viaSwap.EqualUpToPhase(viaCNOTs, 1e-9); !ok {
			t.Errorf("basis %d: 3-CNOT decomposition differs from SWAP", b)
		}
	}
}

func TestHHCNOTHHReversesDirection(t *testing.T) {
	// Paper Fig. 3 (middle): (H⊗H)·CNOT(a→b)·(H⊗H) = CNOT(b→a), the
	// 4-H direction switch whose cost is 4.
	for b := 0; b < 4; b++ {
		lhs := NewBasisState(2, b)
		lhs.Apply(circuit.H(0))
		lhs.Apply(circuit.H(1))
		lhs.Apply(circuit.CNOT(0, 1))
		lhs.Apply(circuit.H(0))
		lhs.Apply(circuit.H(1))
		rhs := NewBasisState(2, b)
		rhs.Apply(circuit.CNOT(1, 0))
		if ok, _ := lhs.EqualUpToPhase(rhs, 1e-9); !ok {
			t.Errorf("basis %d: HH·CNOT·HH ≠ reversed CNOT", b)
		}
	}
}

func TestMCT(t *testing.T) {
	// Toffoli: flips target only when both controls are 1.
	for b := 0; b < 8; b++ {
		s := NewBasisState(3, b)
		s.Apply(circuit.MCT([]int{0, 1}, 2))
		want := b
		if b&3 == 3 {
			want = b ^ 4
		}
		if !approx(s.Amplitude(want), 1) {
			t.Errorf("MCT|%03b⟩: amp(%03b) = %v", b, want, s.Amplitude(want))
		}
	}
}

func TestRunCircuitAndErrors(t *testing.T) {
	c := circuit.New(2).AddH(0).AddCNOT(0, 1)
	s := NewState(2)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	big := circuit.New(5).AddH(4)
	if err := NewState(2).Run(big); err == nil {
		t.Error("oversized circuit should fail")
	}
	if err := NewState(2).Apply(circuit.CNOT(0, 7)); err == nil {
		t.Error("invalid gate should fail")
	}
}

// Property: every gate preserves the norm (unitarity).
func TestUnitarity(t *testing.T) {
	gates := []circuit.Gate{
		circuit.H(0), circuit.X(1), circuit.Y(2), circuit.Z(0),
		circuit.S(1), circuit.T(2), circuit.Rz(0, 0.777),
		circuit.U(1, 0.3, 1.1, 2.2), circuit.CNOT(0, 2),
		circuit.SWAP(1, 2), circuit.MCT([]int{0, 1}, 2),
	}
	f := func(seed int64, count uint) bool {
		s := NewState(3)
		// Scramble into a generic state first.
		s.Apply(circuit.H(0))
		s.Apply(circuit.U(1, 0.5, 0.25, 0.125))
		s.Apply(circuit.CNOT(0, 1))
		state := uint64(seed)
		for i := 0; i < int(count%20); i++ {
			state = state*6364136223846793005 + 1442695040888963407
			s.Apply(gates[int((state>>33)%uint64(len(gates)))])
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInnerProductPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewState(2).InnerProduct(NewState(3))
}
