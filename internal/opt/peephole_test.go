package opt

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// equivalent checks unitary equality by basis-state simulation.
func equivalent(t *testing.T, a, b *circuit.Circuit) {
	t.Helper()
	n := a.NumQubits()
	for basis := 0; basis < 1<<uint(n); basis++ {
		sa := sim.NewBasisState(n, basis)
		if err := sa.Run(a); err != nil {
			t.Fatal(err)
		}
		sb := sim.NewBasisState(n, basis)
		if err := sb.Run(b); err != nil {
			t.Fatal(err)
		}
		if ok, _ := sa.EqualUpToPhase(sb, 1e-9); !ok {
			t.Fatalf("basis %d: simplification changed semantics", basis)
		}
	}
}

func TestCancelAdjacentPairs(t *testing.T) {
	cases := []struct {
		name string
		c    *circuit.Circuit
		want int // remaining gates
	}{
		{"HH", circuit.New(1).AddH(0).AddH(0), 0},
		{"XX", circuit.New(1).AddX(0).AddX(0), 0},
		{"TTdg", circuit.New(1).AddT(0).AddTdg(0), 0},
		{"SdgS", circuit.New(1).AddSdg(0).AddS(0), 0},
		{"CNOTCNOT", circuit.New(2).AddCNOT(0, 1).AddCNOT(0, 1), 0},
		{"SWAPSWAP", circuit.New(2).AddSWAP(0, 1).AddSWAP(0, 1), 0},
		{"reversed CNOTs stay", circuit.New(2).AddCNOT(0, 1).AddCNOT(1, 0), 2},
		{"different qubits stay", circuit.New(2).AddH(0).AddH(1), 2},
		{"chain collapses", circuit.New(1).AddH(0).AddT(0).AddTdg(0).AddH(0), 0},
	}
	for _, tc := range cases {
		out, _ := Simplify(tc.c)
		if out.Len() != tc.want {
			t.Errorf("%s: %d gates remain, want %d", tc.name, out.Len(), tc.want)
		}
		equivalent(t, tc.c, out)
	}
}

func TestBlockingGatePreventsCancellation(t *testing.T) {
	// H q0 · CNOT(0,1) · H q0: the CNOT touches q0, so the H's must stay.
	c := circuit.New(2).AddH(0).AddCNOT(0, 1).AddH(0)
	out, _ := Simplify(c)
	if out.Len() != 3 {
		t.Errorf("gates = %d, want 3", out.Len())
	}
	// A gate on an unrelated qubit does not block.
	c2 := circuit.New(2).AddH(0).AddT(1).AddH(0)
	out2, _ := Simplify(c2)
	if out2.Len() != 1 {
		t.Errorf("gates = %d, want 1 (just the T)", out2.Len())
	}
	equivalent(t, c2, out2)
}

func TestMergeRotations(t *testing.T) {
	c := circuit.New(1).AddT(0).AddT(0) // T·T = S
	out, st := Simplify(c)
	if out.Len() != 1 {
		t.Fatalf("gates = %d, want 1", out.Len())
	}
	if st.MergedRotations != 1 {
		t.Errorf("merged = %d", st.MergedRotations)
	}
	g := out.Gate(0)
	if g.Kind != circuit.KindU || math.Abs(g.Lambda-math.Pi/2) > 1e-12 {
		t.Errorf("merged gate = %v", g)
	}
	equivalent(t, c, out)

	// Four T gates collapse into Z (via successive merges).
	c4 := circuit.New(1).AddT(0).AddT(0).AddT(0).AddT(0)
	out4, _ := Simplify(c4)
	if out4.Len() != 1 {
		t.Fatalf("4T: %d gates", out4.Len())
	}
	equivalent(t, c4, out4)
}

func TestDropIdentityRotation(t *testing.T) {
	c := circuit.New(1).AddRz(0, 0).AddU(0, 0, 0, 2*math.Pi).AddH(0)
	out, st := Simplify(c)
	if out.Len() != 1 {
		t.Errorf("gates = %d, want 1", out.Len())
	}
	if st.DroppedIdentity != 2 {
		t.Errorf("dropped = %d, want 2", st.DroppedIdentity)
	}
}

func TestOppositeRzCancel(t *testing.T) {
	c := circuit.New(1).AddRz(0, 0.7).AddRz(0, -0.7)
	out, _ := Simplify(c)
	if out.Len() != 0 {
		t.Errorf("gates = %d, want 0", out.Len())
	}
}

func TestUGateNotFalselyCancelled(t *testing.T) {
	// Regression: a U gate following a named gate must not be treated as
	// its inverse via map zero values.
	c := circuit.New(1).AddH(0).AddU(0, 0.5, 0.5, 0.5)
	out, _ := Simplify(c)
	if out.Len() != 2 {
		t.Errorf("gates = %d, want 2", out.Len())
	}
	equivalent(t, c, out)
}

func TestMCTSelfInverse(t *testing.T) {
	c := circuit.New(3).AddMCT([]int{0, 1}, 2).AddMCT([]int{0, 1}, 2)
	out, _ := Simplify(c)
	if out.Len() != 0 {
		t.Errorf("gates = %d, want 0", out.Len())
	}
	// Different target: stays.
	c2 := circuit.New(3).AddMCT([]int{0, 1}, 2).AddMCT([]int{0, 2}, 1)
	out2, _ := Simplify(c2)
	if out2.Len() != 2 {
		t.Errorf("gates = %d, want 2", out2.Len())
	}
}

func TestStatsGatesRemoved(t *testing.T) {
	c := circuit.New(1).AddH(0).AddH(0).AddT(0).AddT(0).AddRz(0, 0)
	out, st := Simplify(c)
	if got := c.Len() - out.Len(); got != st.GatesRemoved() {
		t.Errorf("GatesRemoved = %d, actual shrink %d", st.GatesRemoved(), got)
	}
}

// Property: Simplify preserves semantics and never grows circuits, on
// random elementary circuits.
func TestSimplifyProperty(t *testing.T) {
	f := func(seed int64, count uint) bool {
		state := uint64(seed)
		next := func(mod int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(mod))
		}
		const n = 3
		c := circuit.New(n)
		for i := 0; i < int(count%30)+1; i++ {
			switch next(5) {
			case 0:
				c.AddH(next(n))
			case 1:
				c.AddT(next(n))
			case 2:
				c.AddTdg(next(n))
			case 3:
				a := next(n)
				c.AddCNOT(a, (a+1+next(n-1))%n)
			case 4:
				c.AddRz(next(n), float64(next(8))*math.Pi/4)
			}
		}
		out, _ := Simplify(c)
		if out.Len() > c.Len() {
			return false
		}
		for basis := 0; basis < 1<<n; basis++ {
			sa := sim.NewBasisState(n, basis)
			sa.Run(c)
			sb := sim.NewBasisState(n, basis)
			sb.Run(out)
			if ok, _ := sa.EqualUpToPhase(sb, 1e-9); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
