// Package opt provides post-mapping peephole optimization — the gate-level
// cleanup step the paper's cost model deliberately factors out (§3,
// footnote 2) but which completes the practical pipeline of its references
// [12, 23]: cancellation of adjacent self-inverse gate pairs, merging of
// consecutive z-rotations, and removal of identity rotations.
//
// All rewrites strictly remove or merge gates on identical qubit sets, so
// a coupling-compliant circuit stays compliant, and equivalence is exact
// (verified by simulation in tests).
package opt

import (
	"math"

	"repro/internal/circuit"
)

// Stats reports what Simplify removed.
type Stats struct {
	CancelledPairs  int
	MergedRotations int
	DroppedIdentity int
	// Passes is the number of fixpoint iterations performed.
	Passes int
}

// GatesRemoved returns the total reduction in gate count.
func (s Stats) GatesRemoved() int {
	return 2*s.CancelledPairs + s.MergedRotations + s.DroppedIdentity
}

// Simplify applies peephole rules until a fixpoint and returns the
// simplified circuit (the input is not modified).
func Simplify(c *circuit.Circuit) (*circuit.Circuit, Stats) {
	gates := make([]circuit.Gate, 0, c.Len())
	for _, g := range c.Gates() {
		gates = append(gates, g.Copy())
	}
	var stats Stats
	for {
		stats.Passes++
		changed := false
		gates, changed = pass(gates, &stats)
		if !changed {
			break
		}
	}
	out := circuit.New(c.NumQubits())
	out.SetName(c.Name())
	out.MustAppend(gates...)
	return out, stats
}

// pass performs one left-to-right sweep.
func pass(gates []circuit.Gate, stats *Stats) ([]circuit.Gate, bool) {
	alive := make([]bool, len(gates))
	for i := range alive {
		alive[i] = true
	}
	changed := false

	// nextTouching returns the next live gate after i that shares a qubit
	// with gates[i], or -1.
	nextTouching := func(i int) int {
		for j := i + 1; j < len(gates); j++ {
			if !alive[j] {
				continue
			}
			if sharesQubit(gates[i], gates[j]) {
				return j
			}
		}
		return -1
	}

	for i := 0; i < len(gates); i++ {
		if !alive[i] {
			continue
		}
		g := gates[i]
		// Drop identity rotations outright.
		if isIdentityRotation(g) {
			alive[i] = false
			stats.DroppedIdentity++
			changed = true
			continue
		}
		j := nextTouching(i)
		if j < 0 {
			continue
		}
		h := gates[j]
		switch {
		case inversePair(g, h) && sameQubits(g, h):
			alive[i], alive[j] = false, false
			stats.CancelledPairs++
			changed = true
		case isZRotation(g) && isZRotation(h) && g.Qubits[0] == h.Qubits[0]:
			// Merge into a single rotation at position j.
			gates[j] = circuit.U(g.Qubits[0], 0, 0, zAngle(g)+zAngle(h))
			alive[i] = false
			stats.MergedRotations++
			changed = true
		}
	}
	if !changed {
		return gates, false
	}
	out := gates[:0:0]
	for i, g := range gates {
		if alive[i] {
			out = append(out, g)
		}
	}
	return out, true
}

func sharesQubit(a, b circuit.Gate) bool {
	for _, qa := range a.Qubits {
		for _, qb := range b.Qubits {
			if qa == qb {
				return true
			}
		}
	}
	return false
}

func sameQubits(a, b circuit.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			return false
		}
	}
	return true
}

// isZRotation recognizes diagonal single-qubit gates expressible as
// U(0,0,λ): Z, S, S†, T, T†, Rz and U with θ = φ = 0.
func isZRotation(g circuit.Gate) bool {
	switch g.Kind {
	case circuit.KindZ, circuit.KindS, circuit.KindSdg, circuit.KindT, circuit.KindTdg, circuit.KindRz:
		return true
	case circuit.KindU:
		return g.Theta == 0 && g.Phi == 0
	}
	return false
}

// zAngle returns the rotation angle of a z-rotation gate.
func zAngle(g circuit.Gate) float64 {
	switch g.Kind {
	case circuit.KindZ:
		return math.Pi
	case circuit.KindS:
		return math.Pi / 2
	case circuit.KindSdg:
		return -math.Pi / 2
	case circuit.KindT:
		return math.Pi / 4
	case circuit.KindTdg:
		return -math.Pi / 4
	case circuit.KindRz, circuit.KindU:
		return g.Lambda
	}
	panic("opt: not a z rotation")
}

// isIdentityRotation recognizes rotations by multiples of 2π (up to phase)
// and U(0,0,0).
func isIdentityRotation(g circuit.Gate) bool {
	if !isZRotation(g) {
		return false
	}
	a := math.Mod(zAngle(g), 2*math.Pi)
	return math.Abs(a) < 1e-12 || math.Abs(math.Abs(a)-2*math.Pi) < 1e-12
}

// inversePair reports whether two gates of equal qubit sets cancel.
func inversePair(a, b circuit.Gate) bool {
	selfInverse := map[circuit.Kind]bool{
		circuit.KindH: true, circuit.KindX: true, circuit.KindY: true,
		circuit.KindZ: true, circuit.KindCNOT: true, circuit.KindSWAP: true,
	}
	if a.Kind == b.Kind && selfInverse[a.Kind] {
		return true
	}
	inv := map[circuit.Kind]circuit.Kind{
		circuit.KindS: circuit.KindSdg, circuit.KindSdg: circuit.KindS,
		circuit.KindT: circuit.KindTdg, circuit.KindTdg: circuit.KindT,
	}
	if k, ok := inv[a.Kind]; ok && k == b.Kind {
		return true
	}
	// Opposite z-rotations.
	if isZRotation(a) && isZRotation(b) {
		return math.Abs(zAngle(a)+zAngle(b)) < 1e-12
	}
	// MCT gates are self-inverse on identical control/target sets.
	if a.Kind == circuit.KindMCT && b.Kind == circuit.KindMCT {
		return true // qubit equality is checked by the caller
	}
	return false
}
