package portfolio

import (
	"context"
	"errors"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/perm"
)

// Degradation rung names, reported through solver.Plan.Degradation,
// qxmap.Stats.Degradation and the degradation wire field.
const (
	// DegradationAnytime marks a valid mapping whose minimality proof was
	// truncated by a deadline or conflict budget: the cost is an upper
	// bound on the optimum, bracketed by exact.Result.BoundGap.
	DegradationAnytime = "anytime"
	// DegradationHeuristic marks a plan from the ladder's last rung: the
	// exact engines produced no model at all before exhaustion, so a
	// heuristic mapper built one. Valid, but with no optimality bracket.
	DegradationHeuristic = "heuristic"
)

// heuristicRungTimeout caps the last rung's detached run: by the time the
// ladder reaches it the caller's deadline has usually already expired, so
// the fallback gets its own short budget rather than none. A variable so
// tests can shrink it.
var heuristicRungTimeout = 2 * time.Second

// Exhausted reports whether err is a resource-exhaustion failure the
// degradation ladder may soften: a context deadline or a SAT conflict
// budget running dry. Caller-initiated cancellation and genuine failures
// (unsatisfiable instance, encode error) are never softened.
func Exhausted(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, exact.ErrBudgetExhausted)
}

// HeuristicFallback is the ladder's last rung: a deterministic A* plan,
// falling back to the stochastic mapper when A* cannot route the instance,
// priced under the architecture's active cost model (both heuristics have
// been cost-model-aware since the weighted-objective work). It runs on a
// short deadline detached from the caller's context — which has typically
// already expired when this rung is reached — so the caller still gets a
// valid answer instead of a second deadline error. The result carries no
// optimality guarantee of any kind.
func HeuristicFallback(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, seed int64, initial []int) (*heuristic.Result, error) {
	hctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), heuristicRungTimeout)
	defer cancel()
	var pin perm.Mapping
	if initial != nil {
		pin = perm.Mapping(initial)
	}
	h, aerr := heuristic.MapAStar(hctx, sk, a, heuristic.AStarOptions{Initial: pin})
	if aerr == nil {
		return h, nil
	}
	h, serr := heuristic.MapBest(hctx, sk, a, 2, heuristic.Options{Seed: seed, Initial: pin})
	if serr == nil {
		return h, nil
	}
	return nil, errors.Join(aerr, serr)
}
