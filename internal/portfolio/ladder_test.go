package portfolio

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
)

// flakyStore wraps a mapStore and fails the next N gets/puts before
// letting the real operation through — the shape of a transient I/O
// stall, as opposed to mapStore.failGets which fails forever.
type flakyStore struct {
	mu           sync.Mutex
	inner        *mapStore
	failGetsLeft int
	failPutsLeft int
}

func (s *flakyStore) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	fail := s.failGetsLeft > 0
	if fail {
		s.failGetsLeft--
	}
	s.mu.Unlock()
	if fail {
		return nil, false, errors.New("injected transient get failure")
	}
	return s.inner.Get(key)
}

func (s *flakyStore) Put(key, value []byte) error {
	s.mu.Lock()
	fail := s.failPutsLeft > 0
	if fail {
		s.failPutsLeft--
	}
	s.mu.Unlock()
	if fail {
		return errors.New("injected transient put failure")
	}
	return s.inner.Put(key, value)
}

// shrinkRetryBackoff makes the store retry loop effectively instant for
// the duration of one test.
func shrinkRetryBackoff(t *testing.T) {
	t.Helper()
	oldBase := storeRetryBase
	storeRetryBase = time.Microsecond
	t.Cleanup(func() { storeRetryBase = oldBase })
}

// TestRetryStoreRecoversTransient: a persistent-tier failure that clears
// within the retry budget must end in a hit (Get) or a durable record
// (Put); one that outlasts the budget stays a miss / dropped write with
// no error escaping.
func TestRetryStoreRecoversTransient(t *testing.T) {
	shrinkRetryBackoff(t)
	r, a := solveOnce(t)
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	fp := Fingerprint(sk, a, exact.Options{})
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}

	// Get: two failures then success — within the 3-attempt budget.
	inner := newMapStore()
	if err := inner.Put(StoreKey(fp), data); err != nil {
		t.Fatal(err)
	}
	flaky := &flakyStore{inner: inner, failGetsLeft: storeAttempts - 1}
	if _, tier, ok := (Tiered{Disk: flaky}).Lookup(fp); !ok || tier != TierDisk {
		t.Errorf("lookup through %d transient failures: ok=%v tier=%q, want a disk hit", storeAttempts-1, ok, tier)
	}

	// Get: failures outlasting the budget read as a clean miss.
	flaky = &flakyStore{inner: inner, failGetsLeft: storeAttempts}
	if _, _, ok := (Tiered{Disk: flaky}).Lookup(fp); ok {
		t.Error("lookup hit through more failures than the retry budget")
	}

	// Put: transient failures within budget still land the record.
	flaky = &flakyStore{inner: newMapStore(), failPutsLeft: storeAttempts - 1}
	(Tiered{Disk: flaky}).Store(fp, r)
	if _, ok := flaky.inner.m[string(StoreKey(fp))]; !ok {
		t.Error("write dropped despite retries within budget")
	}

	// Put: exhaustion drops the write silently (a cache write is best
	// effort; the result was already served).
	flaky = &flakyStore{inner: newMapStore(), failPutsLeft: storeAttempts}
	(Tiered{Disk: flaky}).Store(fp, r)
	if len(flaky.inner.m) != 0 {
		t.Error("write landed despite failures outlasting the retry budget")
	}
}

// ladderSkeleton builds an instance sized so that within a ~100ms deadline
// NEITHER exact engine can answer: encoding its 2000 gates alone costs the
// SAT engine far more (the cancellation tests calibrate 60 gates past
// 30ms), and the DP engine faces hundreds of O(720²) frame transitions.
// The heuristic rung, running per layer, maps it comfortably inside its
// own 2s budget — exactly the regime the ladder exists for.
func ladderSkeleton() (*circuit.Skeleton, *arch.Arch) {
	sk := &circuit.Skeleton{NumQubits: 6}
	state := uint64(42)
	for i := 0; i < 2000; i++ {
		state = state*2862933555777941757 + 3037000493
		c := int((state >> 33) % 6)
		state = state*2862933555777941757 + 3037000493
		tg := int((state >> 33) % 6)
		if c == tg {
			tg = (tg + 1) % 6
		}
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: c, Target: tg, Index: i})
	}
	return sk, arch.Ring(6)
}

// ladderCtx returns a context whose deadline starves both exact engines on
// the ladderSkeleton instance.
func ladderCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(bg, 100*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestLadderHeuristicFallback(t *testing.T) {
	sk, a := ladderSkeleton()
	opts := Options{HeuristicRuns: -1} // no bounding phase: keep the failure path pure

	// Without the ladder the deadline surfaces as an exhaustion error.
	_, err := Solve(ladderCtx(t), sk, a, opts)
	if err == nil {
		t.Fatal("expected both engines to fail without the ladder")
	}
	if !Exhausted(err) {
		t.Fatalf("engine failure %v is not recognized as exhaustion", err)
	}

	opts.Ladder = true
	res, err := Solve(ladderCtx(t), sk, a, opts)
	if err != nil {
		t.Fatalf("ladder did not soften the exhaustion: %v", err)
	}
	if res.Degradation != DegradationHeuristic || res.Winner != "heuristic" {
		t.Errorf("degradation=%q winner=%q, want %q/%q", res.Degradation, res.Winner, DegradationHeuristic, "heuristic")
	}
	if res.Heuristic == nil || res.Result != nil {
		t.Fatalf("heuristic rung must set Heuristic and leave Result nil (got %v/%v)", res.Heuristic, res.Result)
	}
	if len(res.Heuristic.Ops) == 0 {
		t.Error("heuristic fallback produced no ops for a non-empty circuit")
	}
}

// TestLadderNeverSoftensRealFailures: unsatisfiable instances and
// caller-initiated cancels are genuine failures — the ladder must let
// them through untouched rather than masking them with a heuristic plan.
func TestLadderNeverSoftensRealFailures(t *testing.T) {
	disc := arch.MustNew("disc", 4, []arch.Pair{{Control: 0, Target: 1}, {Control: 2, Target: 3}})
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	_, err := Solve(bg, sk, disc, Options{Ladder: true, HeuristicRuns: -1})
	if !errors.Is(err, exact.ErrUnsatisfiable) {
		t.Errorf("unsatisfiable instance under the ladder: err = %v, want ErrUnsatisfiable", err)
	}
}

// TestLadderDegradedNotCached: a ladder answer (here the heuristic rung)
// must never be memoized — a later generous run of the same fingerprint
// has to solve for real, not read back a degraded answer as the optimum.
func TestLadderDegradedNotCached(t *testing.T) {
	sk, a := ladderSkeleton()
	opts := Options{HeuristicRuns: -1, Ladder: true, Cache: NewCache(0)}
	disk := newMapStore()
	opts.Store = disk

	res, err := Solve(ladderCtx(t), sk, a, opts)
	if err != nil || res.Degradation != DegradationHeuristic {
		t.Fatalf("res=%+v err=%v, want a heuristic-rung answer", res, err)
	}
	fp := Fingerprint(sk, a, opts.Exact)
	if _, ok := opts.Cache.Get(fp); ok {
		t.Error("degraded answer memoized in the memory tier")
	}
	if len(disk.m) != 0 {
		t.Error("degraded answer written through to the persistent tier")
	}
}
