package portfolio

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
)

// Fingerprint returns a canonical hash of a mapping instance: the CNOT
// skeleton, the architecture's coupling structure and cost model, and
// every semantic option that influences the solution (strategy, §4.1
// subsets, pinned initial mapping). Engine choice, parallelism and SAT
// tuning are excluded: they change how the minimum is found, not what it
// is. Two calls with equal fingerprints are guaranteed to have equal
// minimal cost, which makes the fingerprint a sound memoization key. The
// cost model enters via its canonical byte form (units plus sorted
// effective overrides), so two models pricing every edge identically
// fingerprint identically regardless of name or construction order.
func Fingerprint(sk *circuit.Skeleton, a *arch.Arch, opts exact.Options) string {
	h := sha256.New()
	var buf [8]byte
	w := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	h.Write([]byte("qxmap-portfolio-v2"))
	w(sk.NumQubits)
	w(sk.Len())
	for _, g := range sk.Gates {
		w(g.Control)
		w(g.Target)
	}
	w(a.NumQubits())
	pairs := append([]arch.Pair(nil), a.Pairs()...)
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Control != pairs[j].Control {
			return pairs[i].Control < pairs[j].Control
		}
		return pairs[i].Target < pairs[j].Target
	})
	w(len(pairs))
	for _, p := range pairs {
		w(p.Control)
		w(p.Target)
	}
	h.Write(a.Cost().AppendFingerprint(nil))
	w(int(opts.Strategy))
	if opts.UseSubsets {
		w(1)
	} else {
		w(0)
	}
	w(len(opts.InitialMapping))
	for _, i := range opts.InitialMapping {
		w(i)
	}
	return hex.EncodeToString(h.Sum(nil))
}
