package portfolio

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/exact"
)

func mkResult(cost int) *exact.Result {
	return &exact.Result{Cost: cost, Engine: "dp"}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", mkResult(1))
	c.Put("b", mkResult(2))
	c.Put("c", mkResult(3)) // evicts "a"
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	if r, ok := c.Get("b"); !ok || r.Cost != 2 {
		t.Error("recent entry was evicted")
	}
	// "b" is now most recent; inserting "d" must evict "c".
	c.Put("d", mkResult(4))
	if _, ok := c.Get("c"); ok {
		t.Error("LRU order ignores Get recency")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", mkResult(1))
	c.Put("a", mkResult(9))
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if r, _ := c.Get("a"); r.Cost != 9 {
		t.Errorf("cost = %d, want refreshed 9", r.Cost)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := NewCache(0)
	for i := 0; i < DefaultCacheSize+10; i++ {
		c.Put(fmt.Sprintf("k%d", i), mkResult(i))
	}
	if c.Len() != DefaultCacheSize {
		t.Errorf("len = %d, want %d", c.Len(), DefaultCacheSize)
	}
}

// TestCacheConcurrency hammers the cache from many goroutines; run under
// -race this checks the locking discipline.
func TestCacheConcurrency(t *testing.T) {
	c := NewCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%64)
				if r, ok := c.Get(key); ok && r == nil {
					t.Error("nil result cached")
				}
				c.Put(key, mkResult(i))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("len = %d exceeds capacity", c.Len())
	}
	hits, misses := c.Stats()
	if hits+misses != 8*500 {
		t.Errorf("stats account for %d lookups, want %d", hits+misses, 8*500)
	}
}
