package portfolio

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/exact"
)

// mapStore is an in-memory ResultStore double. failGets/failPuts make
// every operation error, to prove store failures read as misses.
type mapStore struct {
	mu       sync.Mutex
	m        map[string][]byte
	failGets bool
	failPuts bool
	gets     int
	puts     int
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string][]byte)} }

func (s *mapStore) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	if s.failGets {
		return nil, false, errors.New("injected get failure")
	}
	v, ok := s.m[string(key)]
	return v, ok, nil
}

func (s *mapStore) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if s.failPuts {
		return errors.New("injected put failure")
	}
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

// solveOnce produces a real exact result for the codec tests.
func solveOnce(t *testing.T) (*exact.Result, *arch.Arch) {
	t.Helper()
	a := arch.QX4()
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	r, err := exact.Solve(bg, sk, a, exact.Options{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	return r, a
}

func TestPersistRoundTrip(t *testing.T) {
	r, _ := solveOnce(t)
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatalf("EncodeResult: %v", err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatalf("DecodeResult: %v", err)
	}
	if got.Cost != r.Cost || got.Engine != r.Engine || got.Minimal != r.Minimal || got.PermPoints != r.PermPoints {
		t.Fatalf("decoded scalars diverge: %+v vs %+v", got, r)
	}
	if !reflect.DeepEqual(got.Solution.FrameMappings, r.Solution.FrameMappings) ||
		!reflect.DeepEqual(got.Solution.GateFrame, r.Solution.GateFrame) ||
		!reflect.DeepEqual(got.Solution.PermSwaps, r.Solution.PermSwaps) ||
		!reflect.DeepEqual(got.Solution.Switched, r.Solution.Switched) {
		t.Fatal("decoded solution diverges")
	}
	if got.WorkArch.Name() != r.WorkArch.Name() || got.WorkArch.NumQubits() != r.WorkArch.NumQubits() {
		t.Fatalf("decoded arch %v, want %v", got.WorkArch, r.WorkArch)
	}
	// The decoded result must materialize the exact same op stream — the
	// property the whole persistent tier rests on.
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	wantOps, err := r.Ops(sk)
	if err != nil {
		t.Fatal(err)
	}
	gotOps, err := got.Ops(sk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotOps, wantOps) {
		t.Fatal("decoded result materializes different ops")
	}
	// Work counters are never persisted: a disk hit did no solving.
	if got.Solves != 0 || got.Encodes != 0 || got.Conflicts != 0 || got.BoundProbes != 0 {
		t.Fatalf("decoded result carries work counters: %+v", got)
	}
}

func TestDecodeResultRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0x01}, []byte("not a gob stream at all")} {
		if _, err := DecodeResult(data); err == nil {
			t.Fatalf("DecodeResult(%q) succeeded", data)
		}
	}
}

func TestStoreKeySchemaTagged(t *testing.T) {
	k := string(StoreKey("abc123"))
	if k != SchemaVersion+"/abc123" {
		t.Fatalf("StoreKey = %q, want schema-tagged key", k)
	}
}

func TestTieredDiskHitPromotesAndZeroCounters(t *testing.T) {
	r, a := solveOnce(t)
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	fp := Fingerprint(sk, a, exact.Options{})

	disk := newMapStore()
	warm := Tiered{Mem: NewCache(0), Disk: disk}
	warm.Store(fp, r)
	if disk.puts != 1 {
		t.Fatalf("write-through puts = %d, want 1", disk.puts)
	}

	// Fresh memory tier, same disk: first lookup hits disk and promotes,
	// second is a memory hit without touching the store again.
	cold := Tiered{Mem: NewCache(0), Disk: disk}
	got, tier, ok := cold.Lookup(fp)
	if !ok || tier != TierDisk {
		t.Fatalf("Lookup = ok=%v tier=%q, want disk hit", ok, tier)
	}
	if got.Cost != r.Cost || got.Encodes != 0 {
		t.Fatalf("disk hit cost=%d encodes=%d, want cost=%d encodes=0", got.Cost, got.Encodes, r.Cost)
	}
	gets := disk.gets
	if _, tier, ok := cold.Lookup(fp); !ok || tier != TierMemory {
		t.Fatalf("second lookup tier=%q ok=%v, want memory hit", tier, ok)
	}
	if disk.gets != gets {
		t.Fatal("memory hit still touched the disk tier")
	}
}

func TestTieredStoreFailuresAreMisses(t *testing.T) {
	r, a := solveOnce(t)
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	fp := Fingerprint(sk, a, exact.Options{})

	// Failing Get: miss, not an error.
	failing := newMapStore()
	failing.failGets = true
	tiers := Tiered{Disk: failing}
	if _, _, ok := tiers.Lookup(fp); ok {
		t.Fatal("failing store produced a hit")
	}
	// Failing Put: Store must not panic or propagate.
	failing.failPuts = true
	tiers.Store(fp, r)

	// Corrupt bytes under the right key: decode failure is a miss too.
	corrupt := newMapStore()
	if err := corrupt.Put(StoreKey(fp), []byte("garbage bytes")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := (Tiered{Disk: corrupt}).Lookup(fp); ok {
		t.Fatal("corrupt record produced a hit")
	}

	// A record written under a different schema version must not be found.
	stale := newMapStore()
	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := stale.Put([]byte("qxr-v0/"+fp), data); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := (Tiered{Disk: stale}).Lookup(fp); ok {
		t.Fatal("stale-schema record produced a hit")
	}
}

// TestSolveUsesDiskTier drives the full portfolio path: solve once with a
// disk tier, then resolve the same instance with a fresh memory cache —
// the result must come from disk, cost-identical, flagged CacheHit with
// Tier "disk".
func TestSolveUsesDiskTier(t *testing.T) {
	a := arch.QX4()
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	disk := newMapStore()

	first, err := Solve(bg, sk, a, Options{Cache: NewCache(0), Store: disk})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit || first.Tier != "" {
		t.Fatalf("first solve reported a cache hit (%+v)", first)
	}
	if disk.puts == 0 {
		t.Fatal("solve did not write through to the store")
	}

	second, err := Solve(bg, sk, a, Options{Cache: NewCache(0), Store: disk})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Tier != TierDisk || second.Winner != "cache" {
		t.Fatalf("second solve = hit=%v tier=%q winner=%q, want disk-tier cache hit", second.CacheHit, second.Tier, second.Winner)
	}
	if second.Cost != first.Cost {
		t.Fatalf("disk-tier cost %d, solved cost %d", second.Cost, first.Cost)
	}
	if second.Encodes != 0 || second.BoundProbes != 0 {
		t.Fatalf("disk-tier hit carries work counters: %+v", second.Result)
	}

	// Conflict-budgeted solves bypass both tiers entirely.
	puts := disk.puts
	budgeted := Options{Cache: NewCache(0), Store: disk}
	budgeted.Exact.SAT.MaxConflicts = 1 << 30
	if _, err := Solve(bg, sk, a, budgeted); err != nil {
		t.Fatal(err)
	}
	if disk.puts != puts {
		t.Fatal("budgeted solve wrote to the persistent tier")
	}
}
