package portfolio

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/exact"
)

// weightedQX4 returns QX4 with a non-uniform calibration attached.
func weightedQX4(t *testing.T) *arch.Arch {
	t.Helper()
	cm, err := arch.NewCostModel("test-cal", arch.PaperSwapUnit, arch.PaperHUnit)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.SetSwapWeight(1, 2, 14); err != nil {
		t.Fatal(err)
	}
	if err := cm.SetHWeight(2, 4, 8); err != nil {
		t.Fatal(err)
	}
	a, err := arch.QX4().WithCostModel(cm)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFingerprintDistinguishesCostModels is the collision regression for
// the qxr-v2 schema: the same instance under different weights must never
// share a store key (a v1-style collision would serve a plan optimized for
// the wrong objective), while cosmetic model differences must still hit.
func TestFingerprintDistinguishesCostModels(t *testing.T) {
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	plain := arch.QX4()
	weighted := weightedQX4(t)

	base := Fingerprint(sk, plain, exact.Options{})
	if got := Fingerprint(sk, weighted, exact.Options{}); got == base {
		t.Error("cost model change did not alter the fingerprint")
	}

	// An explicitly-attached paper model is the same objective as none.
	paper, err := plain.WithCostModel(arch.PaperCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(sk, paper, exact.Options{}); got != base {
		t.Error("explicit paper model altered the fingerprint")
	}

	// The model's display name is cosmetic: same weights, same key.
	renamed, err := arch.NewCostModel("other-name", arch.PaperSwapUnit, arch.PaperHUnit)
	if err != nil {
		t.Fatal(err)
	}
	renamed.SetSwapWeight(1, 2, 14)
	renamed.SetHWeight(2, 4, 8)
	if got := Fingerprint(sk, plain.MustWithCostModel(renamed), exact.Options{}); got != Fingerprint(sk, weighted, exact.Options{}) {
		t.Error("rename of an identical model missed the cache key")
	}

	// But an actual weight difference must miss.
	tweaked := renamed.Clone()
	tweaked.SetHWeight(2, 4, 9)
	if got := Fingerprint(sk, plain.MustWithCostModel(tweaked), exact.Options{}); got == Fingerprint(sk, weighted, exact.Options{}) {
		t.Error("differing H weights collided")
	}
}

// TestPersistRoundTripKeepsCostModel: a weighted result written to the
// disk tier must come back with the calibration attached to its working
// architecture — Ops() re-derives swap paths from it on the hit path.
func TestPersistRoundTripKeepsCostModel(t *testing.T) {
	a := weightedQX4(t)
	sk := mkSkeleton(4, [2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2}, [2]int{1, 3})
	r, err := exact.Solve(bg, sk, a, exact.Options{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}

	data, err := EncodeResult(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	cm := got.WorkArch.Cost()
	if cm == nil {
		t.Fatal("decoded result lost its cost model")
	}
	wantCM := a.Cost()
	if cm.SwapUnit() != wantCM.SwapUnit() || cm.HUnit() != wantCM.HUnit() {
		t.Errorf("units %d/%d, want %d/%d", cm.SwapUnit(), cm.HUnit(), wantCM.SwapUnit(), wantCM.HUnit())
	}
	if got := cm.SwapWeight(1, 2); got != 14 {
		t.Errorf("decoded SwapWeight(1,2) = %d, want 14", got)
	}
	if got := cm.HWeight(2, 4); got != 8 {
		t.Errorf("decoded HWeight(2,4) = %d, want 8", got)
	}
	if got.Cost != r.Cost {
		t.Errorf("decoded cost %d, want %d", got.Cost, r.Cost)
	}
	ops1, err := r.Ops(sk)
	if err != nil {
		t.Fatal(err)
	}
	ops2, err := got.Ops(sk)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops1, ops2) {
		t.Error("decoded result rematerializes different ops")
	}

	// A paper-model result stays lean: no model block persisted, and the
	// decoded arch carries none.
	r2, err := exact.Solve(bg, sk, arch.QX4(), exact.Options{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	data2, err := EncodeResult(r2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodeResult(data2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.WorkArch.Cost() != nil {
		t.Error("paper-model result decoded with a cost model attached")
	}
}
