package portfolio

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/arch"
	"repro/internal/encoder"
	"repro/internal/exact"
	"repro/internal/perm"
)

// SchemaVersion tags every persisted result record. It is baked into the
// store key, so bumping it makes every record written under the old schema
// an instant miss: stale results self-invalidate instead of being decoded
// under wrong assumptions, and compaction eventually drops their bytes.
// Bump whenever the persisted layout, the encoder's solution semantics or
// the solver's cost model changes. v2 added the working architecture's
// cost model to the record (a v1 record decoded under v2 would silently
// drop a non-uniform model, so the old schema is fully invalidated).
const SchemaVersion = "qxr-v2"

// StoreKey derives the persistent-tier key for an instance fingerprint:
// the schema tag joined with the content hash. Records written under a
// different schema version occupy different keys and are never read back.
func StoreKey(fingerprint string) []byte {
	return []byte(SchemaVersion + "/" + fingerprint)
}

// persistedResult is the gob-serializable mirror of the exact.Result
// fields a cache hit needs: the solution itself, the (possibly
// subset-restricted) working architecture it is expressed over, and the
// provenance facts (engine, minimality, |G'|). Work counters (solves,
// encodes, conflicts, probes) are deliberately not persisted — a result
// served from disk did no solving in this process, so its counters are
// zero by construction.
type persistedResult struct {
	Cost          int
	FrameMappings [][]int
	GateFrame     []int
	Perms         [][]int
	PermSwaps     []int
	Switched      []bool
	ArchName      string
	ArchQubits    int
	ArchPairs     []arch.Pair
	SubsetBack    []int
	PermPoints    int
	Engine        string
	Minimal       bool
	// Cost model of the working architecture (absent for the default
	// paper model — HasCostModel false). Persisted so a disk-tier hit
	// reconstructs the exact objective the result was proven under;
	// dropping it would make Result.Ops re-derive swap paths against the
	// wrong weights.
	HasCostModel  bool
	CostName      string
	CostSwapUnit  int
	CostHUnit     int
	CostSwapEdges []perm.Edge
	CostSwapWs    []int
	CostHPairs    []arch.Pair
	CostHWs       []int
}

// EncodeResult serializes a cacheable exact result for the persistent
// tier.
func EncodeResult(r *exact.Result) ([]byte, error) {
	if r == nil || r.Solution == nil || r.WorkArch == nil {
		return nil, fmt.Errorf("portfolio: result not persistable (missing solution or arch)")
	}
	p := persistedResult{
		Cost:          r.Cost,
		FrameMappings: make([][]int, len(r.Solution.FrameMappings)),
		GateFrame:     r.Solution.GateFrame,
		Perms:         make([][]int, len(r.Solution.Perms)),
		PermSwaps:     r.Solution.PermSwaps,
		Switched:      r.Solution.Switched,
		ArchName:      r.WorkArch.Name(),
		ArchQubits:    r.WorkArch.NumQubits(),
		ArchPairs:     r.WorkArch.Pairs(),
		SubsetBack:    r.SubsetBack,
		PermPoints:    r.PermPoints,
		Engine:        r.Engine,
		Minimal:       r.Minimal,
	}
	for i, m := range r.Solution.FrameMappings {
		p.FrameMappings[i] = []int(m)
	}
	for i, pm := range r.Solution.Perms {
		p.Perms[i] = []int(pm)
	}
	if cm := r.WorkArch.Cost(); !cm.IsPaper() {
		p.HasCostModel = true
		p.CostName = cm.Name()
		p.CostSwapUnit = cm.SwapUnit()
		p.CostHUnit = cm.HUnit()
		p.CostSwapEdges, p.CostSwapWs = cm.SwapOverrides()
		p.CostHPairs, p.CostHWs = cm.HOverrides()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("portfolio: encoding result: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeResult deserializes a persistent-tier record back into an
// exact.Result, rebuilding the working architecture from its stored
// coupling pairs. The decoded result carries zero work counters: no
// solving happened in this process. Any structural violation — a decode
// error, an invalid architecture, mismatched slice lengths — returns an
// error; callers treat it as a cache miss, never as an answer.
func DecodeResult(data []byte) (*exact.Result, error) {
	var p persistedResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, fmt.Errorf("portfolio: decoding result: %w", err)
	}
	a, err := arch.New(p.ArchName, p.ArchQubits, p.ArchPairs)
	if err != nil {
		return nil, fmt.Errorf("portfolio: decoding result arch: %w", err)
	}
	if p.HasCostModel {
		if len(p.CostSwapEdges) != len(p.CostSwapWs) || len(p.CostHPairs) != len(p.CostHWs) {
			return nil, fmt.Errorf("portfolio: decoded result cost-model override mismatch")
		}
		cm, err := arch.NewCostModel(p.CostName, p.CostSwapUnit, p.CostHUnit)
		if err != nil {
			return nil, fmt.Errorf("portfolio: decoding result cost model: %w", err)
		}
		for i, e := range p.CostSwapEdges {
			if err := cm.SetSwapWeight(e.A, e.B, p.CostSwapWs[i]); err != nil {
				return nil, fmt.Errorf("portfolio: decoding result cost model: %w", err)
			}
		}
		for i, pr := range p.CostHPairs {
			if err := cm.SetHWeight(pr.Control, pr.Target, p.CostHWs[i]); err != nil {
				return nil, fmt.Errorf("portfolio: decoding result cost model: %w", err)
			}
		}
		if a, err = a.WithCostModel(cm); err != nil {
			return nil, fmt.Errorf("portfolio: decoding result cost model: %w", err)
		}
	}
	if len(p.FrameMappings) == 0 {
		return nil, fmt.Errorf("portfolio: decoded result has no frames")
	}
	// Perms is optional (the DP engine never materializes it — swap paths
	// are recovered from the frame mappings), but when present it must
	// align with the transitions, and PermSwaps always must.
	if len(p.PermSwaps) != len(p.FrameMappings)-1 || (len(p.Perms) != 0 && len(p.Perms) != len(p.PermSwaps)) {
		return nil, fmt.Errorf("portfolio: decoded result frame/perm mismatch (%d frames, %d perms, %d swap counts)",
			len(p.FrameMappings), len(p.Perms), len(p.PermSwaps))
	}
	if len(p.GateFrame) != len(p.Switched) {
		return nil, fmt.Errorf("portfolio: decoded result gate/switch mismatch (%d vs %d)",
			len(p.GateFrame), len(p.Switched))
	}
	if p.SubsetBack != nil && len(p.SubsetBack) != p.ArchQubits {
		return nil, fmt.Errorf("portfolio: decoded result subset-back length %d, arch has %d qubits",
			len(p.SubsetBack), p.ArchQubits)
	}
	sol := &encoder.Solution{
		Cost:          p.Cost,
		FrameMappings: make([]perm.Mapping, len(p.FrameMappings)),
		GateFrame:     p.GateFrame,
		Perms:         make([]perm.Perm, len(p.Perms)),
		PermSwaps:     p.PermSwaps,
		Switched:      p.Switched,
	}
	for i, m := range p.FrameMappings {
		if len(m) == 0 {
			return nil, fmt.Errorf("portfolio: decoded result frame %d is empty", i)
		}
		sol.FrameMappings[i] = perm.Mapping(m)
	}
	for i, pm := range p.Perms {
		sol.Perms[i] = perm.Perm(pm)
	}
	return &exact.Result{
		Cost:       p.Cost,
		Solution:   sol,
		WorkArch:   a,
		SubsetBack: p.SubsetBack,
		PermPoints: p.PermPoints,
		Engine:     p.Engine,
		Minimal:    p.Minimal,
	}, nil
}
