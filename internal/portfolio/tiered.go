package portfolio

import (
	"time"

	"repro/internal/exact"
)

// Transient persistent-tier failures are retried with exponential backoff
// before Lookup reads them as a miss or Store drops the write: disk I/O
// under pressure (or an injected chaos fault) often clears within
// milliseconds, and a retry is far cheaper than re-solving the instance.
// Corruption is NOT transient — a record that reads but fails CRC or
// decode stays a miss with no retry, since rereading corrupt bytes cannot
// help. Package variables rather than constants so chaos tests can shrink
// the waits.
var (
	storeAttempts  = 3
	storeRetryBase = 2 * time.Millisecond
)

// retryStore runs op up to storeAttempts times, sleeping storeRetryBase,
// then twice that, … between attempts, and returns the last error.
func retryStore(op func() error) error {
	var err error
	for a := 0; a < storeAttempts; a++ {
		if a > 0 {
			time.Sleep(storeRetryBase << (a - 1))
		}
		if err = op(); err == nil {
			return nil
		}
	}
	return err
}

// Cache tier names, reported up the stack (solver.Plan.CacheTier,
// qxmap.Stats.CacheTier, the cache_tier wire field).
const (
	// TierMemory marks a hit in the in-process LRU.
	TierMemory = "memory"
	// TierDisk marks a hit in the persistent store, promoted into the LRU.
	TierDisk = "disk"
)

// ResultStore is the persistent tier's contract: a byte-oriented key-value
// store with durable Put. *store.Store satisfies it; the indirection keeps
// this package free of the store's file-format concerns and lets tests
// substitute fakes (including failing ones — every store error must read
// as a miss, never as an answer).
type ResultStore interface {
	Get(key []byte) ([]byte, bool, error)
	Put(key, value []byte) error
}

// Tiered is the two-tier result cache: a fast in-process LRU over a
// persistent fingerprint-keyed store. Either tier may be nil. Lookups go
// memory → disk (with promotion into the LRU); stores write through to
// both, so identical requests are served from memory within a process and
// from disk across restarts and replicas.
type Tiered struct {
	Mem  *Cache
	Disk ResultStore
}

// Lookup consults the tiers in order for the fingerprint and returns the
// result, the tier that served it (TierMemory or TierDisk) and whether it
// hit. A disk hit is decoded, validated and promoted into the memory tier.
// Disk errors — I/O failures, schema-stale bytes, decode violations — are
// misses: the caller re-solves and overwrites the record. Transient I/O
// errors get storeAttempts tries with backoff before the miss; corrupt
// bytes are never retried.
func (t Tiered) Lookup(fp string) (*exact.Result, string, bool) {
	if t.Mem != nil {
		if res, ok := t.Mem.Get(fp); ok {
			return res, TierMemory, true
		}
	}
	if t.Disk == nil {
		return nil, "", false
	}
	var (
		data []byte
		ok   bool
	)
	err := retryStore(func() error {
		var e error
		data, ok, e = t.Disk.Get(StoreKey(fp))
		return e
	})
	if err != nil || !ok {
		return nil, "", false
	}
	res, err := DecodeResult(data)
	if err != nil {
		return nil, "", false
	}
	if t.Mem != nil {
		t.Mem.Put(fp, res)
	}
	return res, TierDisk, true
}

// Store writes the result through both tiers under the fingerprint. The
// persistent write is best-effort: a full disk must not fail a solve that
// already succeeded, so errors are dropped (after bounded retries) and the
// record is simply re-attempted on the next solve of the same instance.
func (t Tiered) Store(fp string, res *exact.Result) {
	if t.Mem != nil {
		t.Mem.Put(fp, res)
	}
	if t.Disk == nil {
		return
	}
	data, err := EncodeResult(res)
	if err != nil {
		return
	}
	_ = retryStore(func() error { return t.Disk.Put(StoreKey(fp), data) })
}

// Enabled reports whether any tier is configured.
func (t Tiered) Enabled() bool { return t.Mem != nil || t.Disk != nil }
