// Package portfolio orchestrates the repository's solving engines into a
// single entry point. A Solve call
//
//  1. consults an optional LRU cache keyed by a canonical fingerprint of
//     the instance (skeleton, architecture, strategy, subsets, pin),
//  2. runs the cheap stochastic heuristic to obtain an upper bound on the
//     cost F and seeds the SAT engine's descent with it
//     (exact.SATOptions.StartBound) — the engine independently derives an
//     admissible lower bound from coupling-graph distances
//     (exact.SATOptions.LowerBound), so the descent is squeezed from both
//     ends: the heuristic caps the first model, the distance bound floors
//     the final UNSAT proof — and
//  3. races the SAT and DP exact engines concurrently: the first engine to
//     return a valid minimal result wins and the loser is cancelled via
//     context, which it notices within one restart interval (SAT) or one
//     frame transition (DP).
//
// Because both engines are exact for the same cost function, the winning
// cost is independent of which engine finishes first — racing trades
// redundant CPU for the latency of whichever backend happens to be faster
// on the instance (DP on the tiny QX mapping spaces, SAT on instances
// whose state space overflows the DP bound).
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/heuristic"
)

// Options configures a portfolio Solve.
type Options struct {
	// Exact carries the instance options shared by both engines: Strategy,
	// UseSubsets, Parallel, InitialMapping and SAT tuning. The Engine
	// field is ignored — the portfolio races both engines.
	Exact exact.Options
	// HeuristicRuns is the number of stochastic-heuristic seeds used to
	// derive the SAT engine's starting upper bound (default 2). Negative
	// disables the bounding phase entirely.
	HeuristicRuns int
	// UpperBound, when positive, supplies an externally known upper bound
	// on F (e.g. from a heuristic the caller already ran); the bounding
	// phase is skipped and this value seeds the SAT descent instead. An
	// unsound bound is safe: the SAT engine relaxes the bound assumption
	// in place when it undercuts the instance's optimum.
	UpperBound int
	// Seed seeds the bounding heuristic's random source.
	Seed int64
	// Cache, when non-nil, memoizes results across Solve calls. Only
	// minimality-guaranteed runs (no conflict budget) are cached.
	Cache *Cache
	// Store, when non-nil, is the persistent tier under the Cache: misses
	// fall through to it (hits are promoted into the Cache) and solved
	// results are written through, so identical instances are served from
	// disk across process restarts. Subject to the same cacheability rule
	// as the Cache.
	Store ResultStore
	// Ladder enables the deadline-aware degradation ladder. Rung 1 is the
	// normal exact race. Rung 2 is the anytime incumbent: the SAT descent
	// runs with exact.SATOptions.Anytime, so a deadline that expires after
	// a model was found returns that model as a valid non-minimal result
	// (Result.Degradation "anytime"). Rung 3, when even that fails on a
	// deadline or conflict-budget exhaustion, is a heuristic plan — A*
	// first, the stochastic mapper as backup — priced under the
	// architecture's active cost model (Result.Degradation "heuristic",
	// Result.Heuristic set, Result.Result nil). With generous deadlines
	// the ladder never engages and results are bit-identical to a run
	// without it. Degraded results are never written to the caches.
	Ladder bool
}

// Result is the outcome of a portfolio Solve.
type Result struct {
	// Result is the winning engine's solution (shared with the cache when
	// caching is enabled; treat as immutable).
	*exact.Result
	// Winner names the source of the result: "sat", "dp", "cache" or
	// "heuristic" (the ladder's last rung).
	Winner string
	// Degradation names the ladder rung that produced the result: "" for
	// a full exact solve or cache hit, DegradationAnytime for a truncated
	// descent's incumbent, DegradationHeuristic for the heuristic
	// fallback.
	Degradation string
	// Heuristic is the fallback plan when Degradation is
	// DegradationHeuristic; Result is nil in that case (and only then).
	Heuristic *heuristic.Result
	// CacheHit reports whether the result was served from the cache;
	// Tier names the serving tier (TierMemory or TierDisk, "" on a solve).
	CacheHit bool
	Tier     string
	// UpperBound is the heuristic upper bound fed into the SAT descent
	// (0 when the bounding phase was skipped or found nothing).
	UpperBound int
	// Runtime is the wall-clock time of this Solve call, including the
	// bounding phase (and nearly zero on cache hits).
	Runtime time.Duration
}

// attempt is one engine's outcome in the race.
type attempt struct {
	res    *exact.Result
	err    error
	engine exact.Engine
}

// Solve maps the skeleton to the architecture by racing the exact engines,
// seeded by the stochastic heuristic and memoized in opts.Cache. The
// returned result is minimal exactly when a lone exact.Solve run with the
// same options would be. Cancelling the context aborts the bounding phase
// and both engines promptly; Solve then returns an error wrapping
// ctx.Err().
func Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) (*Result, error) {
	start := time.Now()
	if sk == nil || sk.Len() == 0 {
		return nil, fmt.Errorf("portfolio: circuit has no CNOT gates; nothing to map")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("portfolio: solve canceled: %w", err)
	}

	if opts.Ladder {
		// Rung 2 of the ladder lives inside the SAT descent: keep the
		// incumbent on deadline expiry instead of erroring.
		opts.Exact.SAT.Anytime = true
	}

	// Conflict-budgeted runs may return non-minimal best-effort results,
	// which must never be memoized as if they were the instance's optimum.
	tiers := Tiered{Mem: opts.Cache, Disk: opts.Store}
	cacheable := tiers.Enabled() && opts.Exact.SAT.MaxConflicts == 0
	var key string
	if cacheable {
		key = Fingerprint(sk, a, opts.Exact)
		if cached, tier, ok := tiers.Lookup(key); ok {
			cp := *cached
			return &Result{
				Result:   &cp,
				Winner:   "cache",
				CacheHit: true,
				Tier:     tier,
				Runtime:  time.Since(start),
			}, nil
		}
	}

	bound := opts.UpperBound
	if bound <= 0 && opts.HeuristicRuns >= 0 {
		bound = heuristicBound(ctx, sk, a, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("portfolio: solve canceled: %w", err)
	}

	winner, err := race(ctx, sk, a, opts, bound)
	if err != nil {
		if opts.Ladder && Exhausted(err) {
			if h, herr := HeuristicFallback(ctx, sk, a, opts.Seed, opts.Exact.InitialMapping); herr == nil {
				return &Result{
					Winner:      "heuristic",
					Degradation: DegradationHeuristic,
					Heuristic:   h,
					UpperBound:  bound,
					Runtime:     time.Since(start),
				}, nil
			}
			// No rung left; surface the exhaustion itself, not the
			// fallback's failure — the caller retries against the former.
		}
		return nil, err
	}
	// Degraded (anytime) results are valid but non-minimal: serve them,
	// never memoize them — a later generous run must not read a truncated
	// cost back as the optimum.
	degradation := ""
	if winner.res.Degraded {
		degradation = DegradationAnytime
	}
	if cacheable && !winner.res.Degraded {
		tiers.Store(key, winner.res)
	}
	cp := *winner.res
	return &Result{
		Result:      &cp,
		Winner:      winner.engine.String(),
		Degradation: degradation,
		UpperBound:  bound,
		Runtime:     time.Since(start),
	}, nil
}

// race runs both exact engines concurrently and returns the first to
// produce a proven-minimal result, cancelling the other. Minimality is
// judged by what the run itself proved (exact.Result.Minimal): a
// conflict-budgeted SAT success whose descent was truncated is a
// best-effort model and is held back until the DP oracle — whose successes
// are always minimal — either wins the race or fails, while a budgeted
// descent that completed its UNSAT proof within budget wins immediately.
// Because every proven-minimal result has the same cost, the returned cost
// stays deterministic and equal to a lone engine's run.
func race(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options, bound int) (attempt, error) {
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	engines := []exact.Engine{exact.EngineDP, exact.EngineSAT}
	ch := make(chan attempt, len(engines))
	for _, eng := range engines {
		go func(eng exact.Engine) {
			// The exact layer has its own recover boundaries, but this
			// goroutine must survive whatever slips past them: a panicking
			// engine is a lost race entry, not a dead process.
			defer func() {
				if r := recover(); r != nil {
					ch <- attempt{err: fmt.Errorf("engine panic: %v", r), engine: eng}
				}
			}()
			ch <- runEngine(raceCtx, sk, a, opts, eng, bound)
		}(eng)
	}

	var bestEffort *attempt
	var errs []error
	for range engines {
		at := <-ch
		if at.err == nil {
			if at.res.Minimal {
				// Proven minimal: stop the loser. It exits within one
				// restart interval / frame transition and writes to the
				// buffered channel, so no goroutine blocks behind us.
				cancel()
				return at, nil
			}
			bestEffort = &at // truncated SAT: only wins if the oracle fails
			continue
		}
		errs = append(errs, fmt.Errorf("%s: %w", at.engine, at.err))
	}
	if bestEffort != nil {
		return *bestEffort, nil
	}
	if err := ctx.Err(); err != nil {
		return attempt{}, fmt.Errorf("portfolio: solve canceled: %w", err)
	}
	return attempt{}, fmt.Errorf("portfolio: all engines failed: %w", errors.Join(errs...))
}

// runEngine executes one engine of the race. The SAT engine is seeded with
// the heuristic upper bound. Restricted strategies (§4.2 odd / triangle)
// and the §4.1 subset restriction are not guaranteed to admit the
// heuristic's solution, but an unsound bound is harmless: the incremental
// engine enforces StartBound as a guard assumption and relaxes it in place
// on the same solver when it proves too tight — the old "retry unbounded"
// re-encode dance is gone.
func runEngine(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options, eng exact.Engine, bound int) attempt {
	eo := opts.Exact
	eo.Engine = eng
	if eng == exact.EngineSAT && bound > 0 && (eo.SAT.StartBound <= 0 || bound < eo.SAT.StartBound) {
		eo.SAT.StartBound = bound
	}
	r, err := exact.Solve(ctx, sk, a, eo)
	return attempt{res: r, err: err, engine: eng}
}

// heuristicBound derives a cheap upper bound on F from the stochastic
// heuristic. It returns 0 when no sound bound is available: disconnected
// architectures, a pinned initial mapping (the heuristic cannot route away
// from its pin, so its cost may undercut no valid exact solution — the pin
// semantics differ), or a cancelled context (the heuristic observes the
// context between layers and swap-search trials).
func heuristicBound(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) int {
	if sk.NumQubits > a.NumQubits() || !a.Connected() || opts.Exact.InitialMapping != nil {
		return 0
	}
	runs := opts.HeuristicRuns
	if runs == 0 {
		runs = 2
	}
	h, err := heuristic.MapBest(ctx, sk, a, runs, heuristic.Options{Seed: opts.Seed})
	if err != nil {
		return 0
	}
	return h.Cost
}
