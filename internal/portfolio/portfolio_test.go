package portfolio

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/revlib"
)

var bg = context.Background()

func mkSkeleton(n int, pairs ...[2]int) *circuit.Skeleton {
	sk := &circuit.Skeleton{NumQubits: n}
	for i, p := range pairs {
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: p[0], Target: p[1], Index: i})
	}
	return sk
}

// TestTable1Parity is the acceptance check: on the paper's Table-1 suite,
// the portfolio returns exactly the minimal cost of a lone exact engine for
// every instance, regardless of which engine happens to win the race.
func TestTable1Parity(t *testing.T) {
	a := arch.QX4()
	for _, b := range revlib.Suite() {
		if testing.Short() && b.CNOTs > 18 {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			sk, err := circuit.ExtractSkeleton(b.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			want, err := exact.Solve(bg, sk, a, exact.Options{Engine: exact.EngineDP})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Solve(bg, sk, a, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Errorf("portfolio cost = %d (winner %s), lone DP engine = %d", got.Cost, got.Winner, want.Cost)
			}
			if got.Winner != "sat" && got.Winner != "dp" {
				t.Errorf("winner = %q, want sat or dp", got.Winner)
			}
			if got.UpperBound > 0 && got.UpperBound < got.Cost {
				t.Errorf("heuristic upper bound %d below minimal cost %d", got.UpperBound, got.Cost)
			}
		})
	}
}

// TestStrategyParity races the engines under every §4.2 restriction and the
// §4.1 subset optimization; the portfolio must reproduce the lone engine's
// restricted optimum (the heuristic bound may be unsound under odd/triangle
// restrictions, exercising the bound-retry path).
func TestStrategyParity(t *testing.T) {
	a := arch.QX4()
	b, err := revlib.SuiteByName("ex-1_166")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(b.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []exact.Options{
		{Strategy: exact.StrategyAll, UseSubsets: true},
		{Strategy: exact.StrategyDisjoint, UseSubsets: true},
		{Strategy: exact.StrategyOdd, UseSubsets: true},
		{Strategy: exact.StrategyTriangle, UseSubsets: true},
	} {
		cfg := cfg
		t.Run(cfg.Strategy.String(), func(t *testing.T) {
			t.Parallel()
			cfg.Engine = exact.EngineDP
			want, err := exact.Solve(bg, sk, a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Solve(bg, sk, a, Options{Exact: cfg})
			if err != nil {
				t.Fatal(err)
			}
			if got.Cost != want.Cost {
				t.Errorf("portfolio cost = %d, lone engine = %d", got.Cost, want.Cost)
			}
		})
	}
}

func TestCacheHitMiss(t *testing.T) {
	a := arch.QX4()
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	cache := NewCache(8)

	first, err := Solve(bg, sk, a, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first solve reported a cache hit")
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 1 {
		t.Errorf("after first solve: hits=%d misses=%d, want 0/1", hits, misses)
	}

	second, err := Solve(bg, sk, a, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.Winner != "cache" {
		t.Errorf("second solve: CacheHit=%v Winner=%q, want hit from cache", second.CacheHit, second.Winner)
	}
	if second.Cost != first.Cost {
		t.Errorf("cached cost %d != solved cost %d", second.Cost, first.Cost)
	}
	if hits, _ := cache.Stats(); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}

	// A different strategy is a different instance.
	third, err := Solve(bg, sk, a, Options{Cache: cache, Exact: exact.Options{Strategy: exact.StrategyOdd}})
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different strategy must not hit the cache")
	}
	if cache.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", cache.Len())
	}
}

// TestCacheSkipsBudgetedRuns ensures conflict-budgeted (possibly
// non-minimal) results are never memoized.
func TestCacheSkipsBudgetedRuns(t *testing.T) {
	a := arch.QX4()
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	cache := NewCache(8)
	opts := Options{Cache: cache}
	opts.Exact.SAT.MaxConflicts = 1 << 20
	if _, err := Solve(bg, sk, a, opts); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Errorf("budgeted run was cached (%d entries)", cache.Len())
	}
}

func TestCancelledContextFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	_, err := Solve(ctx, sk, arch.QX4(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeadlineStopsRunningSolve cancels mid-solve on an instance large
// enough that both engines are still working, and requires the portfolio to
// return well within the test's patience (the solver notices at the next
// restart boundary, the DP engine at the next frame transition).
func TestDeadlineStopsRunningSolve(t *testing.T) {
	a := arch.Ring(6)
	sk := &circuit.Skeleton{NumQubits: 6}
	state := uint64(42)
	for i := 0; i < 60; i++ {
		state = state*2862933555777941757 + 3037000493
		c := int((state >> 33) % 6)
		t2 := (c + 1 + int((state>>13)%5)) % 6
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: c, Target: t2, Index: i})
	}
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Solve(ctx, sk, a, Options{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v; want well under 10s", elapsed)
	}
}

func TestFingerprintDistinguishesInstances(t *testing.T) {
	qx4 := arch.QX4()
	sk1 := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	sk2 := mkSkeleton(3, [2]int{0, 1}, [2]int{2, 1}) // swapped control/target
	base := Fingerprint(sk1, qx4, exact.Options{})

	if got := Fingerprint(sk1, qx4, exact.Options{}); got != base {
		t.Error("fingerprint is not deterministic")
	}
	distinct := map[string]string{
		"gate direction": Fingerprint(sk2, qx4, exact.Options{}),
		"strategy":       Fingerprint(sk1, qx4, exact.Options{Strategy: exact.StrategyOdd}),
		"subsets":        Fingerprint(sk1, qx4, exact.Options{UseSubsets: true}),
		"initial pin":    Fingerprint(sk1, qx4, exact.Options{InitialMapping: []int{0, 1, 2}}),
		"architecture":   Fingerprint(sk1, arch.QX2(), exact.Options{}),
	}
	for what, fp := range distinct {
		if fp == base {
			t.Errorf("%s change did not alter the fingerprint", what)
		}
	}
	// Engine and parallelism do not affect the solution.
	if got := Fingerprint(sk1, qx4, exact.Options{Engine: exact.EngineDP, Parallel: true}); got != base {
		t.Error("engine/parallel options must not alter the fingerprint")
	}
}

// TestBudgetedRaceStaysMinimal guards the race arbitration: with a conflict
// budget the SAT engine may return a truncated best-effort model, which
// must never outrank the DP oracle's guaranteed minimum — only a run that
// PROVED its minimum may win the race.
func TestBudgetedRaceStaysMinimal(t *testing.T) {
	a := arch.QX4()
	b, err := revlib.SuiteByName("4gt13_92")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(b.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Solve(bg, sk, a, exact.Options{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 1 << 10} {
		opts := Options{}
		opts.Exact.SAT.MaxConflicts = budget
		got, err := Solve(bg, sk, a, opts)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if got.Cost != want.Cost {
			t.Errorf("budget %d: cost = %d (winner %s), want minimal %d", budget, got.Cost, got.Winner, want.Cost)
		}
		if !got.Minimal {
			t.Errorf("budget %d: winner %q result not proven minimal (truncated SAT must not win while DP succeeds)", budget, got.Winner)
		}
	}
}

// TestExternalUpperBound supplies a caller-provided bound and checks it is
// used verbatim (no bounding phase) without affecting minimality.
func TestExternalUpperBound(t *testing.T) {
	a := arch.QX4()
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0}, [2]int{0, 2})
	want, err := exact.Solve(bg, sk, a, exact.Options{Engine: exact.EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(bg, sk, a, Options{UpperBound: want.Cost + 21, HeuristicRuns: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Errorf("cost = %d, want %d", got.Cost, want.Cost)
	}
	if got.UpperBound != want.Cost+21 {
		t.Errorf("UpperBound = %d, want caller's %d", got.UpperBound, want.Cost+21)
	}
	// An undercutting (unsound) external bound must be survived via the
	// unbounded retry, not reported as unsatisfiable.
	if want.Cost > 1 {
		got, err = Solve(bg, sk, a, Options{UpperBound: want.Cost - 1, HeuristicRuns: -1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Cost != want.Cost {
			t.Errorf("undercut bound: cost = %d, want %d", got.Cost, want.Cost)
		}
	}
}
