package portfolio

import (
	"container/list"
	"sync"

	"repro/internal/exact"
)

// DefaultCacheSize is the capacity NewCache falls back to when given a
// non-positive value.
const DefaultCacheSize = 256

// Cache is a concurrency-safe LRU cache of exact mapping results, keyed by
// Fingerprint. Cached *exact.Result values are shared between callers and
// must be treated as immutable; Solve hands out shallow copies so that
// per-call fields (Runtime) never mutate a cached entry.
type Cache struct {
	mu           sync.Mutex
	capacity     int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key string
	res *exact.Result
}

// NewCache returns an empty LRU cache holding at most capacity entries
// (DefaultCacheSize when capacity ≤ 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached result for the key, marking it most recently used.
func (c *Cache) Get(key string) (*exact.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores a result under the key, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, res *exact.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: res})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
