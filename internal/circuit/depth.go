package circuit

// Depth returns the circuit depth: the length of the longest chain of
// gates connected by shared qubits (gates on disjoint qubits execute in
// parallel). Depth is the execution-time analogue of the gate-count cost
// the paper minimizes, and is reported alongside F by the extension
// metrics.
func (c *Circuit) Depth() int {
	clock := make([]int, c.numQubits)
	depth := 0
	for _, g := range c.gates {
		t := 0
		for _, q := range g.Qubits {
			if clock[q] > t {
				t = clock[q]
			}
		}
		t++
		for _, q := range g.Qubits {
			clock[q] = t
		}
		if t > depth {
			depth = t
		}
	}
	return depth
}

// TwoQubitDepth returns the depth counting only multi-qubit gates — the
// error-dominating layers on NISQ devices. Single-qubit gates are ignored
// entirely.
func (c *Circuit) TwoQubitDepth() int {
	clock := make([]int, c.numQubits)
	depth := 0
	for _, g := range c.gates {
		if g.Kind.IsSingleQubit() {
			continue
		}
		t := 0
		for _, q := range g.Qubits {
			if clock[q] > t {
				t = clock[q]
			}
		}
		t++
		for _, q := range g.Qubits {
			clock[q] = t
		}
		if t > depth {
			depth = t
		}
	}
	return depth
}
