package circuit

import "fmt"

// MappedOp is one element of a mapped gate stream — the common output
// format of the exact and heuristic mappers: either a SWAP between two
// physical qubits or a (possibly direction-switched) CNOT implementing a
// skeleton gate. All qubit indices are physical.
type MappedOp struct {
	// Swap marks a SWAP operation on physical qubits A and B.
	Swap bool
	A, B int
	// For CNOT ops: GateIndex is the skeleton gate index this op
	// implements, Control/Target the physical qubits of the CNOT as
	// executed, and Switched whether the logical direction was reversed
	// (requiring 4 H gates around the physical CNOT).
	GateIndex int
	Control   int
	Target    int
	Switched  bool
}

// String renders the op compactly.
func (o MappedOp) String() string {
	if o.Swap {
		return fmt.Sprintf("swap p%d,p%d", o.A, o.B)
	}
	if o.Switched {
		return fmt.Sprintf("cx p%d,p%d (switched, g%d)", o.Control, o.Target, o.GateIndex+1)
	}
	return fmt.Sprintf("cx p%d,p%d (g%d)", o.Control, o.Target, o.GateIndex+1)
}

// OpStreamCost returns the added-operation cost of an op stream under the
// paper's metric: 7 per SWAP and 4 per direction switch.
func OpStreamCost(ops []MappedOp) int {
	cost := 0
	for _, o := range ops {
		switch {
		case o.Swap:
			cost += 7
		case o.Switched:
			cost += 4
		}
	}
	return cost
}
