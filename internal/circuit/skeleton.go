package circuit

import "fmt"

// CNOTGate is one gate of a CNOT skeleton: a control/target pair over
// logical qubits, together with the index of the originating gate in the
// full circuit (so inserted SWAP/H operations can be spliced back).
type CNOTGate struct {
	Control int
	Target  int
	// Index is the position of this CNOT in the original (full) circuit.
	Index int
}

// Qubits returns the two qubits the gate acts on, control first.
func (g CNOTGate) Qubits() [2]int { return [2]int{g.Control, g.Target} }

// Skeleton is the CNOT-only view of a circuit (paper Fig. 1b): single-qubit
// gates never violate coupling constraints, so the mapping problem is
// formulated over the CNOT sequence alone (paper Definition 4).
type Skeleton struct {
	NumQubits int
	Gates     []CNOTGate
}

// ExtractSkeleton returns the CNOT skeleton of the circuit. MCT gates with
// exactly one control are treated as CNOTs; larger MCTs and SWAP gates are
// rejected because they must be decomposed before mapping.
func ExtractSkeleton(c *Circuit) (*Skeleton, error) {
	sk := &Skeleton{NumQubits: c.NumQubits()}
	for i, g := range c.Gates() {
		switch {
		case g.Kind.IsSingleQubit():
			// Ignored for mapping purposes (paper §3.2).
		case g.Kind == KindCNOT:
			sk.Gates = append(sk.Gates, CNOTGate{Control: g.Qubits[0], Target: g.Qubits[1], Index: i})
		case g.Kind == KindMCT && len(g.Qubits) == 2:
			sk.Gates = append(sk.Gates, CNOTGate{Control: g.Qubits[0], Target: g.Qubits[1], Index: i})
		default:
			return nil, fmt.Errorf("circuit: gate %d (%s) is not elementary; decompose before mapping", i, g.Kind)
		}
	}
	return sk, nil
}

// Len returns the number of CNOT gates in the skeleton.
func (s *Skeleton) Len() int { return len(s.Gates) }

// UsedQubits returns the sorted qubits touched by at least one CNOT.
func (s *Skeleton) UsedQubits() []int {
	used := make([]bool, s.NumQubits)
	for _, g := range s.Gates {
		used[g.Control] = true
		used[g.Target] = true
	}
	var qs []int
	for q, u := range used {
		if u {
			qs = append(qs, q)
		}
	}
	return qs
}

// DisjointLayers greedily clusters the skeleton into maximal runs of
// consecutive gates acting on pairwise-disjoint qubit sets (the "layers" of
// heuristic mappers; paper §4.2, strategy "disjoint qubits"). Each element
// of the result is a slice of skeleton gate indices (0-based, contiguous).
func (s *Skeleton) DisjointLayers() [][]int {
	var layers [][]int
	var cur []int
	inLayer := make(map[int]bool)
	for i, g := range s.Gates {
		if inLayer[g.Control] || inLayer[g.Target] {
			layers = append(layers, cur)
			cur = nil
			inLayer = make(map[int]bool)
		}
		cur = append(cur, i)
		inLayer[g.Control] = true
		inLayer[g.Target] = true
	}
	if len(cur) > 0 {
		layers = append(layers, cur)
	}
	return layers
}

// QubitClusters greedily clusters consecutive gates so that the union of
// qubits touched within a cluster has size at most maxQubits (paper §4.2,
// strategy "qubit triangle" with maxQubits = 3). Each element of the result
// is a slice of contiguous skeleton gate indices.
func (s *Skeleton) QubitClusters(maxQubits int) [][]int {
	if maxQubits < 2 {
		panic("circuit: QubitClusters needs maxQubits >= 2")
	}
	var clusters [][]int
	var cur []int
	inCluster := make(map[int]bool)
	for i, g := range s.Gates {
		added := 0
		if !inCluster[g.Control] {
			added++
		}
		if !inCluster[g.Target] {
			added++
		}
		if len(inCluster)+added > maxQubits && len(cur) > 0 {
			clusters = append(clusters, cur)
			cur = nil
			inCluster = make(map[int]bool)
		}
		cur = append(cur, i)
		inCluster[g.Control] = true
		inCluster[g.Target] = true
	}
	if len(cur) > 0 {
		clusters = append(clusters, cur)
	}
	return clusters
}

// InteractionPairs returns the set of (control, target) qubit pairs that
// appear in the skeleton, useful for architecture-compatibility heuristics.
func (s *Skeleton) InteractionPairs() map[[2]int]int {
	pairs := make(map[[2]int]int)
	for _, g := range s.Gates {
		pairs[[2]int{g.Control, g.Target}]++
	}
	return pairs
}
