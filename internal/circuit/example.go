package circuit

// Figure1a returns the paper's running example (Fig. 1a): a 4-qubit circuit
// with 8 gates — three single-qubit gates (H on q2, H on q3, T on q1) and
// five CNOTs. The CNOT skeleton (Fig. 1b) is reconstructed to be consistent
// with every statement the paper makes about it:
//
//   - Example 10 (disjoint qubits): g1 and g2 act on disjoint qubit sets, so
//     G' = {g3, g4, g5}.
//   - Example 10 (odd gates): G' = {g3, g5}.
//   - Example 10 (qubit triangle): g2..g5 act on only {q1,q2,q3}, so
//     G' = {g2}.
//   - Example 7 / Fig. 5: minimal mapping cost to IBM QX4 is F = 4
//     (asserted by integration tests against both exact engines).
//
// Qubits are 0-based here: paper q1..q4 correspond to 0..3.
func Figure1a() *Circuit {
	c := New(4).SetName("fig1a")
	c.AddH(1)       // H q2
	c.AddH(2)       // H q3
	c.AddCNOT(2, 3) // g1: CNOT(q3, q4)
	c.AddCNOT(0, 1) // g2: CNOT(q1, q2)
	c.AddT(0)       // T q1
	c.AddCNOT(1, 2) // g3: CNOT(q2, q3)
	c.AddCNOT(0, 2) // g4: CNOT(q1, q3)
	c.AddCNOT(2, 0) // g5: CNOT(q3, q1)
	return c
}

// Figure1b returns the CNOT skeleton of the running example (Fig. 1b):
// the five CNOT gates of Figure1a with single-qubit gates removed.
func Figure1b() *Skeleton {
	sk, err := ExtractSkeleton(Figure1a())
	if err != nil {
		panic("circuit: Figure1a is not elementary: " + err.Error())
	}
	return sk
}
