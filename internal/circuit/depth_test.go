package circuit

import (
	"testing"
	"testing/quick"
)

func TestDepthBasics(t *testing.T) {
	if got := New(2).Depth(); got != 0 {
		t.Errorf("empty depth = %d", got)
	}
	// Parallel single-qubit gates: depth 1.
	if got := New(3).AddH(0).AddH(1).AddH(2).Depth(); got != 1 {
		t.Errorf("parallel depth = %d, want 1", got)
	}
	// Serial chain on one qubit: depth = length.
	if got := New(1).AddH(0).AddT(0).AddH(0).Depth(); got != 3 {
		t.Errorf("serial depth = %d, want 3", got)
	}
	// CNOT chains serialize through the shared qubit.
	c := New(3).AddCNOT(0, 1).AddCNOT(1, 2).AddCNOT(0, 1)
	if got := c.Depth(); got != 3 {
		t.Errorf("cnot chain depth = %d, want 3", got)
	}
	// Disjoint CNOTs are parallel.
	if got := New(4).AddCNOT(0, 1).AddCNOT(2, 3).Depth(); got != 1 {
		t.Errorf("disjoint depth = %d, want 1", got)
	}
}

func TestTwoQubitDepth(t *testing.T) {
	c := New(2).AddH(0).AddH(0).AddCNOT(0, 1).AddT(1).AddCNOT(0, 1)
	if got := c.TwoQubitDepth(); got != 2 {
		t.Errorf("2q depth = %d, want 2", got)
	}
	if got := New(2).AddH(0).TwoQubitDepth(); got != 0 {
		t.Errorf("1q-only 2q depth = %d", got)
	}
}

func TestFigure1aDepth(t *testing.T) {
	// q2: H, g1(2,3), g3(1,2), g4(0,2), g5(2,0) → depth ≥ 5 through q2.
	d := Figure1a().Depth()
	if d != 5 {
		t.Errorf("Figure1a depth = %d, want 5", d)
	}
	if got := Figure1b(); got.Len() != 5 {
		t.Fatal("skeleton changed")
	}
}

// Property: depth ≤ gate count; depth ≥ 2q-depth; depth ≥ per-qubit load.
func TestDepthProperties(t *testing.T) {
	f := func(seed int64, count uint) bool {
		state := uint64(seed)
		next := func(mod int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(mod))
		}
		const n = 4
		c := New(n)
		load := make([]int, n)
		for i := 0; i < int(count%40); i++ {
			if next(2) == 0 {
				q := next(n)
				c.AddH(q)
				load[q]++
			} else {
				a := next(n)
				b := (a + 1 + next(n-1)) % n
				c.AddCNOT(a, b)
				load[a]++
				load[b]++
			}
		}
		d := c.Depth()
		if d > c.Len() || c.TwoQubitDepth() > d {
			return false
		}
		for _, l := range load {
			if d < l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
