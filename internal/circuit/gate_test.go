package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindU:    "u",
		KindH:    "h",
		KindX:    "x",
		KindCNOT: "cx",
		KindSWAP: "swap",
		KindMCT:  "mct",
		KindTdg:  "tdg",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("invalid kind string = %q, want to mention 99", got)
	}
}

func TestKindValid(t *testing.T) {
	if Kind(-1).Valid() {
		t.Error("Kind(-1) should be invalid")
	}
	if Kind(numKinds).Valid() {
		t.Error("Kind(numKinds) should be invalid")
	}
	if !KindCNOT.Valid() {
		t.Error("KindCNOT should be valid")
	}
}

func TestIsSingleQubit(t *testing.T) {
	single := []Kind{KindU, KindH, KindX, KindY, KindZ, KindS, KindSdg, KindT, KindTdg, KindRz}
	for _, k := range single {
		if !k.IsSingleQubit() {
			t.Errorf("%s should be single-qubit", k)
		}
	}
	for _, k := range []Kind{KindCNOT, KindSWAP, KindMCT} {
		if k.IsSingleQubit() {
			t.Errorf("%s should not be single-qubit", k)
		}
	}
}

func TestGateConstructors(t *testing.T) {
	g := CNOT(2, 5)
	if g.Control() != 2 || g.Target() != 5 {
		t.Errorf("CNOT(2,5): control=%d target=%d", g.Control(), g.Target())
	}
	if got := H(3).Target(); got != 3 {
		t.Errorf("H(3).Target() = %d", got)
	}
	m := MCT([]int{0, 1, 2}, 4)
	if m.Target() != 4 {
		t.Errorf("MCT target = %d, want 4", m.Target())
	}
	if ctrls := m.Controls(); len(ctrls) != 3 || ctrls[0] != 0 || ctrls[2] != 2 {
		t.Errorf("MCT controls = %v", ctrls)
	}
	u := U(1, 0.1, 0.2, 0.3)
	if u.Theta != 0.1 || u.Phi != 0.2 || u.Lambda != 0.3 {
		t.Errorf("U params = %g,%g,%g", u.Theta, u.Phi, u.Lambda)
	}
	r := Rz(0, 1.5)
	if r.Lambda != 1.5 {
		t.Errorf("Rz lambda = %g", r.Lambda)
	}
}

func TestGatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Control on H", func() { H(0).Control() })
	mustPanic("Target on SWAP", func() { SWAP(0, 1).Target() })
	mustPanic("Controls on H", func() { H(0).Controls() })
}

func TestGateValidate(t *testing.T) {
	cases := []struct {
		name    string
		g       Gate
		n       int
		wantErr bool
	}{
		{"valid cnot", CNOT(0, 1), 2, false},
		{"out of range", CNOT(0, 5), 2, true},
		{"negative qubit", H(-1), 2, true},
		{"duplicate qubits", Gate{Kind: KindCNOT, Qubits: []int{1, 1}}, 3, true},
		{"wrong arity 1q", Gate{Kind: KindH, Qubits: []int{0, 1}}, 3, true},
		{"wrong arity cnot", Gate{Kind: KindCNOT, Qubits: []int{0}}, 3, true},
		{"empty mct", Gate{Kind: KindMCT}, 3, true},
		{"mct no controls ok", MCT(nil, 0), 1, false},
		{"invalid kind", Gate{Kind: Kind(42), Qubits: []int{0}}, 1, true},
		{"valid swap", SWAP(0, 2), 3, false},
	}
	for _, tc := range cases {
		err := tc.g.Validate(tc.n)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: Validate err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

func TestGateEqualAndCopy(t *testing.T) {
	g := U(1, 0.5, 0.25, 0.125)
	if !g.Equal(g.Copy()) {
		t.Error("copy should equal original")
	}
	c := g.Copy()
	c.Qubits[0] = 2
	if g.Qubits[0] != 1 {
		t.Error("Copy must not share qubit storage")
	}
	if g.Equal(U(1, 0.5, 0.25, 0.126)) {
		t.Error("different lambda should not be equal")
	}
	if g.Equal(H(1)) {
		t.Error("different kinds should not be equal")
	}
	if CNOT(0, 1).Equal(CNOT(1, 0)) {
		t.Error("reversed CNOT should not be equal")
	}
}

func TestGateString(t *testing.T) {
	cases := []struct {
		g    Gate
		want string
	}{
		{CNOT(0, 1), "cx q0,q1"},
		{H(2), "h q2"},
		{Rz(0, 0.5), "rz(0.5) q0"},
		{U(3, 1, 2, 3), "u(1,2,3) q3"},
	}
	for _, tc := range cases {
		if got := tc.g.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestAsU(t *testing.T) {
	// Every named single-qubit gate must convert to a U gate; 2-qubit
	// gates must not.
	for _, g := range []Gate{H(0), X(0), Y(0), Z(0), S(0), Sdg(0), T(0), Tdg(0), Rz(0, 0.7), U(0, 1, 2, 3)} {
		u, ok := g.AsU()
		if !ok {
			t.Errorf("%s: AsU failed", g)
			continue
		}
		if u.Kind != KindU || u.Qubits[0] != 0 {
			t.Errorf("%s: AsU gave %v", g, u)
		}
	}
	// Spot-check parameters for H.
	u, _ := H(0).AsU()
	if math.Abs(u.Theta-math.Pi/2) > 1e-15 || math.Abs(u.Lambda-math.Pi) > 1e-15 {
		t.Errorf("H as U: theta=%g lambda=%g", u.Theta, u.Lambda)
	}
	if _, ok := CNOT(0, 1).AsU(); ok {
		t.Error("CNOT.AsU should fail")
	}
	if _, ok := SWAP(0, 1).AsU(); ok {
		t.Error("SWAP.AsU should fail")
	}
}

func TestGateArity(t *testing.T) {
	if H(0).Arity() != 1 || CNOT(0, 1).Arity() != 2 || MCT([]int{0, 1}, 2).Arity() != 3 {
		t.Error("unexpected arity")
	}
}
