package circuit

import (
	"testing"
	"testing/quick"
)

func TestExtractSkeletonFigure1(t *testing.T) {
	sk := Figure1b()
	if sk.NumQubits != 4 {
		t.Fatalf("NumQubits = %d, want 4", sk.NumQubits)
	}
	if sk.Len() != 5 {
		t.Fatalf("Len = %d, want 5", sk.Len())
	}
	// Paper Fig. 1b gate sequence (0-based qubits).
	want := []CNOTGate{
		{Control: 2, Target: 3, Index: 2},
		{Control: 0, Target: 1, Index: 3},
		{Control: 1, Target: 2, Index: 5},
		{Control: 0, Target: 2, Index: 6},
		{Control: 2, Target: 0, Index: 7},
	}
	for i, g := range sk.Gates {
		if g != want[i] {
			t.Errorf("gate %d = %+v, want %+v", i, g, want[i])
		}
	}
}

func TestExtractSkeletonRejectsNonElementary(t *testing.T) {
	if _, err := ExtractSkeleton(New(2).AddSWAP(0, 1)); err == nil {
		t.Error("SWAP should be rejected")
	}
	if _, err := ExtractSkeleton(New(3).AddMCT([]int{0, 1}, 2)); err == nil {
		t.Error("3-qubit MCT should be rejected")
	}
	// A 2-qubit MCT is exactly a CNOT and must be accepted.
	sk, err := ExtractSkeleton(New(2).AddMCT([]int{0}, 1))
	if err != nil {
		t.Fatalf("2-qubit MCT rejected: %v", err)
	}
	if sk.Len() != 1 || sk.Gates[0].Control != 0 || sk.Gates[0].Target != 1 {
		t.Errorf("skeleton = %+v", sk.Gates)
	}
}

func TestDisjointLayersFigure1(t *testing.T) {
	// Paper Example 10: g1,g2 share no qubits; g3, g4, g5 each start a new
	// layer. Layers: {g1,g2}, {g3}, {g4}, {g5}.
	layers := Figure1b().DisjointLayers()
	want := [][]int{{0, 1}, {2}, {3}, {4}}
	if len(layers) != len(want) {
		t.Fatalf("got %d layers %v, want %d", len(layers), layers, len(want))
	}
	for i := range want {
		if len(layers[i]) != len(want[i]) {
			t.Fatalf("layer %d = %v, want %v", i, layers[i], want[i])
		}
		for j := range want[i] {
			if layers[i][j] != want[i][j] {
				t.Errorf("layer %d = %v, want %v", i, layers[i], want[i])
			}
		}
	}
}

func TestQubitClustersFigure1(t *testing.T) {
	// Paper Example 10 (qubit triangle): g1 = {q3,q4}; g2..g5 all fit in
	// {q1,q2,q3}. Clusters: {g1}, {g2,g3,g4,g5}.
	clusters := Figure1b().QubitClusters(3)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters %v, want 2", len(clusters), clusters)
	}
	if len(clusters[0]) != 1 || clusters[0][0] != 0 {
		t.Errorf("cluster 0 = %v, want [0]", clusters[0])
	}
	if len(clusters[1]) != 4 {
		t.Errorf("cluster 1 = %v, want [1 2 3 4]", clusters[1])
	}
}

func TestQubitClustersPanicsOnBadLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QubitClusters(1) should panic")
		}
	}()
	Figure1b().QubitClusters(1)
}

func TestSkeletonUsedQubits(t *testing.T) {
	sk := &Skeleton{NumQubits: 6, Gates: []CNOTGate{{Control: 4, Target: 1}}}
	got := sk.UsedQubits()
	if len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("UsedQubits = %v", got)
	}
}

func TestInteractionPairs(t *testing.T) {
	sk := Figure1b()
	pairs := sk.InteractionPairs()
	if pairs[[2]int{2, 3}] != 1 || pairs[[2]int{0, 2}] != 1 {
		t.Errorf("pairs = %v", pairs)
	}
	if len(pairs) != 5 {
		t.Errorf("got %d distinct pairs, want 5", len(pairs))
	}
}

// Property: layers always partition gate indices contiguously in order, and
// gates within one layer act on pairwise disjoint qubits.
func TestDisjointLayersProperty(t *testing.T) {
	f := func(seed int64) bool {
		sk := randomSkeleton(seed, 6, 30)
		layers := sk.DisjointLayers()
		next := 0
		for _, layer := range layers {
			seen := map[int]bool{}
			for _, gi := range layer {
				if gi != next {
					return false
				}
				next++
				g := sk.Gates[gi]
				if seen[g.Control] || seen[g.Target] {
					return false
				}
				seen[g.Control] = true
				seen[g.Target] = true
			}
		}
		return next == sk.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: qubit clusters never exceed the qubit budget and preserve order.
func TestQubitClustersProperty(t *testing.T) {
	f := func(seed int64) bool {
		sk := randomSkeleton(seed, 6, 30)
		clusters := sk.QubitClusters(3)
		next := 0
		for _, cl := range clusters {
			qubits := map[int]bool{}
			for _, gi := range cl {
				if gi != next {
					return false
				}
				next++
				qubits[sk.Gates[gi].Control] = true
				qubits[sk.Gates[gi].Target] = true
			}
			if len(qubits) > 3 {
				return false
			}
		}
		return next == sk.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomSkeleton builds a deterministic pseudo-random skeleton from a seed
// using a simple LCG so tests do not depend on math/rand stability.
func randomSkeleton(seed int64, n, maxGates int) *Skeleton {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(mod))
	}
	sk := &Skeleton{NumQubits: n}
	gates := next(maxGates) + 1
	for i := 0; i < gates; i++ {
		c := next(n)
		t := next(n)
		if c == t {
			t = (t + 1) % n
		}
		sk.Gates = append(sk.Gates, CNOTGate{Control: c, Target: t, Index: i})
	}
	return sk
}
