package circuit

import (
	"fmt"
	"strings"
)

// Circuit is an ordered sequence of gates over NumQubits logical qubits,
// the quantum-circuit representation of paper Definition 1.
//
// The zero value is an empty circuit over zero qubits. Use New to create a
// circuit with a fixed qubit count and the fluent builder methods to append
// gates.
type Circuit struct {
	numQubits int
	gates     []Gate
	name      string
}

// New returns an empty circuit over n qubits. It panics if n is negative.
func New(n int) *Circuit {
	if n < 0 {
		panic("circuit: negative qubit count")
	}
	return &Circuit{numQubits: n}
}

// NumQubits returns the number of logical qubits of the circuit.
func (c *Circuit) NumQubits() int { return c.numQubits }

// Len returns the number of gates in the circuit.
func (c *Circuit) Len() int { return len(c.gates) }

// Gates returns the circuit's gate sequence. The returned slice is the
// circuit's backing storage; callers must not modify it.
func (c *Circuit) Gates() []Gate { return c.gates }

// Gate returns the k-th gate (0-based).
func (c *Circuit) Gate(k int) Gate { return c.gates[k] }

// Name returns the optional circuit name (e.g. the benchmark name).
func (c *Circuit) Name() string { return c.name }

// SetName sets the circuit name and returns the circuit for chaining.
func (c *Circuit) SetName(name string) *Circuit {
	c.name = name
	return c
}

// Append validates g against the circuit and appends it.
func (c *Circuit) Append(g Gate) error {
	if err := g.Validate(c.numQubits); err != nil {
		return err
	}
	c.gates = append(c.gates, g)
	return nil
}

// MustAppend appends g, panicking if it is invalid. It returns the circuit
// so gate construction can be chained fluently.
func (c *Circuit) MustAppend(gs ...Gate) *Circuit {
	for _, g := range gs {
		if err := c.Append(g); err != nil {
			panic(err)
		}
	}
	return c
}

// AddU appends a U(θ,φ,λ) gate on qubit q.
func (c *Circuit) AddU(q int, theta, phi, lambda float64) *Circuit {
	return c.MustAppend(U(q, theta, phi, lambda))
}

// AddH appends a Hadamard gate on qubit q.
func (c *Circuit) AddH(q int) *Circuit { return c.MustAppend(H(q)) }

// AddX appends a NOT gate on qubit q.
func (c *Circuit) AddX(q int) *Circuit { return c.MustAppend(X(q)) }

// AddT appends a T gate on qubit q.
func (c *Circuit) AddT(q int) *Circuit { return c.MustAppend(T(q)) }

// AddTdg appends a T† gate on qubit q.
func (c *Circuit) AddTdg(q int) *Circuit { return c.MustAppend(Tdg(q)) }

// AddS appends an S gate on qubit q.
func (c *Circuit) AddS(q int) *Circuit { return c.MustAppend(S(q)) }

// AddSdg appends an S† gate on qubit q.
func (c *Circuit) AddSdg(q int) *Circuit { return c.MustAppend(Sdg(q)) }

// AddRz appends an Rz(λ) gate on qubit q.
func (c *Circuit) AddRz(q int, lambda float64) *Circuit { return c.MustAppend(Rz(q, lambda)) }

// AddCNOT appends a CNOT gate with the given control and target.
func (c *Circuit) AddCNOT(control, target int) *Circuit {
	return c.MustAppend(CNOT(control, target))
}

// AddSWAP appends a SWAP gate on qubits a and b.
func (c *Circuit) AddSWAP(a, b int) *Circuit { return c.MustAppend(SWAP(a, b)) }

// AddMCT appends a multi-controlled Toffoli gate.
func (c *Circuit) AddMCT(controls []int, target int) *Circuit {
	return c.MustAppend(MCT(controls, target))
}

// Extend appends all gates of other to c. The circuits must have compatible
// qubit counts (other's qubits must fit in c).
func (c *Circuit) Extend(other *Circuit) error {
	if other.numQubits > c.numQubits {
		return fmt.Errorf("circuit: cannot extend %d-qubit circuit with %d-qubit circuit",
			c.numQubits, other.numQubits)
	}
	for _, g := range other.gates {
		if err := c.Append(g.Copy()); err != nil {
			return err
		}
	}
	return nil
}

// Copy returns a deep copy of the circuit.
func (c *Circuit) Copy() *Circuit {
	gates := make([]Gate, len(c.gates))
	for i, g := range c.gates {
		gates[i] = g.Copy()
	}
	return &Circuit{numQubits: c.numQubits, gates: gates, name: c.name}
}

// Equal reports whether two circuits have the same qubit count and an
// identical gate sequence (names are ignored).
func (c *Circuit) Equal(o *Circuit) bool {
	if c.numQubits != o.numQubits || len(c.gates) != len(o.gates) {
		return false
	}
	for i, g := range c.gates {
		if !g.Equal(o.gates[i]) {
			return false
		}
	}
	return true
}

// Validate re-checks every gate in the circuit.
func (c *Circuit) Validate() error {
	for i, g := range c.gates {
		if err := g.Validate(c.numQubits); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
	}
	return nil
}

// String renders the circuit one gate per line, suitable for debugging.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %q (%d qubits, %d gates)\n", c.name, c.numQubits, len(c.gates))
	for i, g := range c.gates {
		fmt.Fprintf(&b, "  g%-3d %s\n", i+1, g)
	}
	return b.String()
}

// Stats summarizes the gate composition of a circuit. OriginalCost is the
// paper's "original cost" column: single-qubit gates plus CNOT gates before
// mapping (SWAP and MCT gates, which are not elementary on IBM QX, are
// counted separately and are zero for decomposed circuits).
type Stats struct {
	SingleQubit  int
	CNOT         int
	SWAP         int
	MCT          int
	OriginalCost int
}

// Statistics computes gate-composition statistics for the circuit.
func (c *Circuit) Statistics() Stats {
	var s Stats
	for _, g := range c.gates {
		switch {
		case g.Kind.IsSingleQubit():
			s.SingleQubit++
		case g.Kind == KindCNOT:
			s.CNOT++
		case g.Kind == KindSWAP:
			s.SWAP++
		case g.Kind == KindMCT:
			s.MCT++
		}
	}
	s.OriginalCost = s.SingleQubit + s.CNOT
	return s
}

// IsElementary reports whether the circuit contains only gates natively
// supported by the IBM QX architectures (single-qubit gates and CNOT).
func (c *Circuit) IsElementary() bool {
	for _, g := range c.gates {
		if !g.Kind.IsSingleQubit() && g.Kind != KindCNOT {
			return false
		}
	}
	return true
}

// UsedQubits returns the sorted list of qubits touched by at least one gate.
func (c *Circuit) UsedQubits() []int {
	used := make([]bool, c.numQubits)
	for _, g := range c.gates {
		for _, q := range g.Qubits {
			used[q] = true
		}
	}
	var qs []int
	for q, u := range used {
		if u {
			qs = append(qs, q)
		}
	}
	return qs
}
