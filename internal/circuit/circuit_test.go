package circuit

import (
	"strings"
	"testing"
)

func TestNewAndBuilders(t *testing.T) {
	c := New(3)
	c.AddH(0).AddT(1).AddCNOT(0, 1).AddCNOT(1, 2).AddX(2)
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	if c.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d, want 3", c.NumQubits())
	}
	if g := c.Gate(2); g.Kind != KindCNOT || g.Control() != 0 || g.Target() != 1 {
		t.Errorf("gate 2 = %v", g)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestAppendValidates(t *testing.T) {
	c := New(2)
	if err := c.Append(CNOT(0, 5)); err == nil {
		t.Error("Append of out-of-range gate should fail")
	}
	if c.Len() != 0 {
		t.Error("failed Append must not modify circuit")
	}
	if err := c.Append(CNOT(0, 1)); err != nil {
		t.Errorf("valid Append failed: %v", err)
	}
}

func TestMustAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAppend of invalid gate should panic")
		}
	}()
	New(1).MustAppend(CNOT(0, 1))
}

func TestAllBuilders(t *testing.T) {
	c := New(4)
	c.AddU(0, 1, 2, 3).AddH(1).AddX(2).AddT(3).AddTdg(0).
		AddS(1).AddSdg(2).AddRz(3, 0.5).AddCNOT(0, 1).
		AddSWAP(2, 3).AddMCT([]int{0, 1}, 2)
	if c.Len() != 11 {
		t.Fatalf("Len = %d, want 11", c.Len())
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCopyIsDeep(t *testing.T) {
	c := New(2).SetName("orig")
	c.AddCNOT(0, 1)
	d := c.Copy()
	if !c.Equal(d) {
		t.Fatal("copy should equal original")
	}
	d.AddH(0)
	if c.Len() != 1 {
		t.Error("modifying copy changed original length")
	}
	d.Gates()[0].Qubits[0] = 1
	if c.Gate(0).Qubits[0] != 0 {
		t.Error("copy shares gate qubit storage")
	}
	if d.Name() != "orig" {
		t.Error("copy should preserve name")
	}
}

func TestEqual(t *testing.T) {
	a := New(2).AddCNOT(0, 1)
	b := New(2).AddCNOT(0, 1)
	if !a.Equal(b) {
		t.Error("identical circuits should be equal")
	}
	if a.Equal(New(3).AddCNOT(0, 1)) {
		t.Error("different qubit counts should differ")
	}
	if a.Equal(New(2).AddCNOT(1, 0)) {
		t.Error("different gates should differ")
	}
	if a.Equal(New(2)) {
		t.Error("different lengths should differ")
	}
}

func TestExtend(t *testing.T) {
	a := New(3).AddH(0)
	b := New(2).AddCNOT(0, 1)
	if err := a.Extend(b); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	if a.Len() != 2 {
		t.Fatalf("Len after extend = %d", a.Len())
	}
	big := New(5).AddH(4)
	if err := b.Extend(big); err == nil {
		t.Error("extending 2-qubit circuit with 5-qubit circuit should fail")
	}
}

func TestStatistics(t *testing.T) {
	c := Figure1a()
	s := c.Statistics()
	if s.SingleQubit != 3 {
		t.Errorf("SingleQubit = %d, want 3", s.SingleQubit)
	}
	if s.CNOT != 5 {
		t.Errorf("CNOT = %d, want 5", s.CNOT)
	}
	if s.OriginalCost != 8 {
		t.Errorf("OriginalCost = %d, want 8", s.OriginalCost)
	}
	if s.SWAP != 0 || s.MCT != 0 {
		t.Errorf("SWAP=%d MCT=%d, want 0,0", s.SWAP, s.MCT)
	}
}

func TestIsElementary(t *testing.T) {
	if !Figure1a().IsElementary() {
		t.Error("Figure1a should be elementary")
	}
	if New(2).AddSWAP(0, 1).IsElementary() {
		t.Error("SWAP is not elementary")
	}
	if New(3).AddMCT([]int{0, 1}, 2).IsElementary() {
		t.Error("MCT is not elementary")
	}
}

func TestUsedQubits(t *testing.T) {
	c := New(5).AddH(1).AddCNOT(3, 1)
	got := c.UsedQubits()
	want := []int{1, 3}
	if len(got) != len(want) || got[0] != 1 || got[1] != 3 {
		t.Errorf("UsedQubits = %v, want %v", got, want)
	}
}

func TestCircuitString(t *testing.T) {
	s := New(2).SetName("demo").AddCNOT(0, 1).String()
	for _, want := range []string{"demo", "cx q0,q1", "2 qubits", "1 gates"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := New(2).AddCNOT(0, 1)
	c.Gates()[0].Qubits[1] = 9 // simulate external corruption
	if err := c.Validate(); err == nil {
		t.Error("Validate should catch out-of-range qubit")
	}
}
