// Package circuit provides the quantum-circuit intermediate representation
// used throughout the mapper: gates, circuits, builders, statistics, and the
// structural analyses (CNOT skeleton, disjoint-qubit layering) that the
// mapping algorithms of the paper operate on.
package circuit

import (
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the gate types understood by the library. The IBM QX
// architectures natively support U(θ,φ,λ) and CNOT; the named single-qubit
// gates are common aliases for specific U instances, and MCT (multi-controlled
// Toffoli) is the gate type produced by reversible-logic synthesis before
// decomposition into the native set.
type Kind int

const (
	// KindU is the universal IBM single-qubit gate U(θ,φ,λ) = Rz(φ)Ry(θ)Rz(λ).
	KindU Kind = iota
	// KindH is the Hadamard gate, U(π/2, 0, π).
	KindH
	// KindX is the Pauli-X (NOT) gate, U(π, 0, π).
	KindX
	// KindY is the Pauli-Y gate.
	KindY
	// KindZ is the Pauli-Z gate, U(0, 0, π).
	KindZ
	// KindS is the phase gate S = U(0, 0, π/2).
	KindS
	// KindSdg is the inverse phase gate S† = U(0, 0, -π/2).
	KindSdg
	// KindT is the π/8 gate T = U(0, 0, π/4).
	KindT
	// KindTdg is the inverse π/8 gate T† = U(0, 0, -π/4).
	KindTdg
	// KindRz is a rotation about the z axis, U(0, 0, λ).
	KindRz
	// KindCNOT is the controlled-NOT gate. Qubits[0] is the control,
	// Qubits[1] the target.
	KindCNOT
	// KindSWAP exchanges the states of two physical qubits. It is not
	// native on IBM QX and decomposes into 3 CNOT + 4 H (cost 7).
	KindSWAP
	// KindMCT is a multi-controlled Toffoli: Qubits[:len-1] are controls,
	// Qubits[len-1] is the target. Zero controls is X, one control CNOT.
	KindMCT
	numKinds
)

var kindNames = [numKinds]string{
	KindU:    "u",
	KindH:    "h",
	KindX:    "x",
	KindY:    "y",
	KindZ:    "z",
	KindS:    "s",
	KindSdg:  "sdg",
	KindT:    "t",
	KindTdg:  "tdg",
	KindRz:   "rz",
	KindCNOT: "cx",
	KindSWAP: "swap",
	KindMCT:  "mct",
}

// String returns the lower-case OpenQASM-style mnemonic for the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Valid reports whether k is a defined gate kind.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// IsSingleQubit reports whether the kind acts on exactly one qubit.
func (k Kind) IsSingleQubit() bool {
	switch k {
	case KindU, KindH, KindX, KindY, KindZ, KindS, KindSdg, KindT, KindTdg, KindRz:
		return true
	}
	return false
}

// Gate is a single quantum operation applied to an ordered list of qubits.
//
// For KindCNOT, Qubits is [control, target]. For KindMCT, the last entry is
// the target and all preceding entries are controls. For single-qubit kinds,
// Qubits has exactly one entry. Theta, Phi and Lambda are only meaningful for
// KindU (all three) and KindRz (Lambda only).
type Gate struct {
	Kind   Kind
	Qubits []int
	Theta  float64
	Phi    float64
	Lambda float64
}

// U returns a universal single-qubit gate U(θ,φ,λ) on qubit q.
func U(q int, theta, phi, lambda float64) Gate {
	return Gate{Kind: KindU, Qubits: []int{q}, Theta: theta, Phi: phi, Lambda: lambda}
}

// H returns a Hadamard gate on qubit q.
func H(q int) Gate { return Gate{Kind: KindH, Qubits: []int{q}} }

// X returns a NOT gate on qubit q.
func X(q int) Gate { return Gate{Kind: KindX, Qubits: []int{q}} }

// Y returns a Pauli-Y gate on qubit q.
func Y(q int) Gate { return Gate{Kind: KindY, Qubits: []int{q}} }

// Z returns a Pauli-Z gate on qubit q.
func Z(q int) Gate { return Gate{Kind: KindZ, Qubits: []int{q}} }

// S returns a phase gate on qubit q.
func S(q int) Gate { return Gate{Kind: KindS, Qubits: []int{q}} }

// Sdg returns an inverse phase gate on qubit q.
func Sdg(q int) Gate { return Gate{Kind: KindSdg, Qubits: []int{q}} }

// T returns a T gate on qubit q.
func T(q int) Gate { return Gate{Kind: KindT, Qubits: []int{q}} }

// Tdg returns an inverse T gate on qubit q.
func Tdg(q int) Gate { return Gate{Kind: KindTdg, Qubits: []int{q}} }

// Rz returns a z-rotation by lambda on qubit q.
func Rz(q int, lambda float64) Gate {
	return Gate{Kind: KindRz, Qubits: []int{q}, Lambda: lambda}
}

// CNOT returns a controlled-NOT with the given control and target qubits.
func CNOT(control, target int) Gate {
	return Gate{Kind: KindCNOT, Qubits: []int{control, target}}
}

// SWAP returns a SWAP gate exchanging qubits a and b.
func SWAP(a, b int) Gate { return Gate{Kind: KindSWAP, Qubits: []int{a, b}} }

// MCT returns a multi-controlled Toffoli gate with the given controls and
// target. controls may be empty (plain X) or a single qubit (CNOT-equivalent).
func MCT(controls []int, target int) Gate {
	qs := make([]int, 0, len(controls)+1)
	qs = append(qs, controls...)
	qs = append(qs, target)
	return Gate{Kind: KindMCT, Qubits: qs}
}

// Arity returns the number of qubits the gate acts on.
func (g Gate) Arity() int { return len(g.Qubits) }

// Control returns the control qubit of a CNOT gate.
// It panics if the gate is not a CNOT.
func (g Gate) Control() int {
	if g.Kind != KindCNOT {
		panic("circuit: Control on non-CNOT gate " + g.Kind.String())
	}
	return g.Qubits[0]
}

// Target returns the target qubit. For CNOT and MCT this is the last qubit;
// for single-qubit gates it is the only qubit. It panics for SWAP, which has
// no distinguished target.
func (g Gate) Target() int {
	switch {
	case g.Kind == KindSWAP:
		panic("circuit: Target on SWAP gate")
	case len(g.Qubits) == 0:
		panic("circuit: Target on empty gate")
	}
	return g.Qubits[len(g.Qubits)-1]
}

// Controls returns the control qubits of an MCT or CNOT gate (possibly empty
// for a zero-control MCT). It panics for other kinds.
func (g Gate) Controls() []int {
	switch g.Kind {
	case KindCNOT, KindMCT:
		return g.Qubits[:len(g.Qubits)-1]
	}
	panic("circuit: Controls on gate kind " + g.Kind.String())
}

// Validate checks structural well-formedness of the gate against a circuit
// with numQubits qubits: correct arity for the kind, all qubit indices in
// range and pairwise distinct.
func (g Gate) Validate(numQubits int) error {
	if !g.Kind.Valid() {
		return fmt.Errorf("circuit: invalid gate kind %d", int(g.Kind))
	}
	switch {
	case g.Kind.IsSingleQubit():
		if len(g.Qubits) != 1 {
			return fmt.Errorf("circuit: %s gate needs 1 qubit, has %d", g.Kind, len(g.Qubits))
		}
	case g.Kind == KindCNOT || g.Kind == KindSWAP:
		if len(g.Qubits) != 2 {
			return fmt.Errorf("circuit: %s gate needs 2 qubits, has %d", g.Kind, len(g.Qubits))
		}
	case g.Kind == KindMCT:
		if len(g.Qubits) < 1 {
			return fmt.Errorf("circuit: mct gate needs at least a target")
		}
	}
	seen := make(map[int]bool, len(g.Qubits))
	for _, q := range g.Qubits {
		if q < 0 || q >= numQubits {
			return fmt.Errorf("circuit: qubit %d out of range [0,%d)", q, numQubits)
		}
		if seen[q] {
			return fmt.Errorf("circuit: duplicate qubit %d in %s gate", q, g.Kind)
		}
		seen[q] = true
	}
	return nil
}

// Equal reports whether two gates are identical (same kind, qubits in the
// same order, and parameters equal to within 1e-12).
func (g Gate) Equal(o Gate) bool {
	if g.Kind != o.Kind || len(g.Qubits) != len(o.Qubits) {
		return false
	}
	for i, q := range g.Qubits {
		if o.Qubits[i] != q {
			return false
		}
	}
	const eps = 1e-12
	return math.Abs(g.Theta-o.Theta) < eps &&
		math.Abs(g.Phi-o.Phi) < eps &&
		math.Abs(g.Lambda-o.Lambda) < eps
}

// Copy returns a deep copy of the gate.
func (g Gate) Copy() Gate {
	c := g
	c.Qubits = append([]int(nil), g.Qubits...)
	return c
}

// String renders the gate in a compact QASM-like form, e.g. "cx q0,q1".
func (g Gate) String() string {
	var b strings.Builder
	switch g.Kind {
	case KindU:
		fmt.Fprintf(&b, "u(%g,%g,%g)", g.Theta, g.Phi, g.Lambda)
	case KindRz:
		fmt.Fprintf(&b, "rz(%g)", g.Lambda)
	default:
		b.WriteString(g.Kind.String())
	}
	b.WriteByte(' ')
	for i, q := range g.Qubits {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "q%d", q)
	}
	return b.String()
}

// uParams maps each named single-qubit kind to its U(θ,φ,λ) parameters.
// KindU and KindRz are handled separately because they carry parameters.
func uParams(k Kind) (theta, phi, lambda float64, ok bool) {
	switch k {
	case KindH:
		return math.Pi / 2, 0, math.Pi, true
	case KindX:
		return math.Pi, 0, math.Pi, true
	case KindY:
		return math.Pi, math.Pi / 2, math.Pi / 2, true
	case KindZ:
		return 0, 0, math.Pi, true
	case KindS:
		return 0, 0, math.Pi / 2, true
	case KindSdg:
		return 0, 0, -math.Pi / 2, true
	case KindT:
		return 0, 0, math.Pi / 4, true
	case KindTdg:
		return 0, 0, -math.Pi / 4, true
	}
	return 0, 0, 0, false
}

// AsU rewrites any single-qubit gate as an equivalent KindU gate. Gates that
// are not single-qubit are returned unchanged with ok = false.
func (g Gate) AsU() (Gate, bool) {
	switch g.Kind {
	case KindU:
		return g, true
	case KindRz:
		return U(g.Qubits[0], 0, 0, g.Lambda), true
	}
	if th, ph, la, ok := uParams(g.Kind); ok {
		return U(g.Qubits[0], th, ph, la), true
	}
	return g, false
}
