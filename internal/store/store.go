// Package store is a crash-safe, embedded, pure-stdlib key-value store for
// small content-addressed records: a segmented append-only log with an
// in-memory index, in the bitcask tradition.
//
// Layout: a store is a directory of numbered segment files
// (00000001.seg, 00000002.seg, …). Every mutation appends one CRC-checked
// record (see record.go) to the newest ("active") segment, which rotates
// once it exceeds Options.MaxSegmentBytes. Open replays every segment in
// order to rebuild the key → latest-record index; a torn record at the
// tail of the last segment — the only place a single-writer crash can
// leave one — is truncated away, so a crash between append and sync costs
// at most the unsynced suffix, never the store.
//
// Overwritten and deleted records become dead bytes. Once they exceed
// Options.CompactFraction of the log (and Options.MinCompactBytes), a
// background compaction rewrites the live records into fresh segments and
// deletes the old files; readers and writers only wait while the rewrite
// itself runs.
//
// Concurrency: a Store is safe for concurrent use by one process (Get
// takes a read lock; Put/Delete a write lock). The on-disk format has a
// single-writer design — replicas may share a store directory read-mostly
// (one writer process, any number of Open-then-Get readers of a quiescent
// copy), but two writer processes on one directory are not supported.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// segmentSuffix names segment files: fmt.Sprintf("%08d"+segmentSuffix, id).
const segmentSuffix = ".seg"

// Options tunes a Store. The zero value selects the defaults.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). Smaller segments bound the cost of a tail replay and
	// let compaction drop whole files sooner.
	MaxSegmentBytes int64
	// CompactFraction triggers background compaction when
	// deadBytes/totalBytes exceeds it (default 0.5). Values ≥ 1 disable
	// automatic compaction; Compact can still be called explicitly.
	CompactFraction float64
	// MinCompactBytes is the dead-byte floor below which compaction never
	// triggers (default 64 KiB), so small stores don't churn.
	MinCompactBytes int64
	// SyncWrites fsyncs the active segment after every Put/Delete. Off by
	// default: the store syncs on rotation, compaction and Close, and the
	// CRC-checked log makes an unsynced tail a clean truncation, not
	// corruption.
	SyncWrites bool
}

// withDefaults fills the zero fields.
func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.CompactFraction <= 0 {
		o.CompactFraction = 0.5
	}
	if o.MinCompactBytes <= 0 {
		o.MinCompactBytes = 64 << 10
	}
	return o
}

// Stats is a point-in-time snapshot of a store's counters and sizes.
type Stats struct {
	// Records is the number of live keys; Segments the number of log files.
	Records  int
	Segments int
	// LiveBytes is the encoded size of the live records; DeadBytes the
	// overwritten/deleted remainder that compaction can reclaim.
	LiveBytes int64
	DeadBytes int64
	// Gets/Hits/Puts/Deletes count operations since Open.
	Gets, Hits, Puts, Deletes uint64
	// Compactions counts completed compaction passes since Open;
	// TailTruncations counts torn tail records dropped by Open.
	Compactions     uint64
	TailTruncations uint64
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// recordLoc locates one encoded record inside a segment.
type recordLoc struct {
	seg  uint32
	off  int64
	size int64
}

// segment is one open log file.
type segment struct {
	id   uint32
	f    *os.File
	size int64
}

// Store is the embedded key-value store. See the package comment for the
// design; construct with Open.
type Store struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	index    map[string]recordLoc
	segments map[uint32]*segment
	active   *segment
	nextID   uint32
	live     int64
	total    int64
	closed   bool

	compacting atomic.Bool
	wg         sync.WaitGroup

	gets, hits, puts, deletes atomic.Uint64
	compactions, tailTruncs   atomic.Uint64
}

// Open opens (creating if necessary) the store rooted at dir, replaying
// every segment to rebuild the index. A torn record at the tail of the
// newest segment is truncated away (Stats.TailTruncations counts these); a
// bad record anywhere else is real corruption and fails the open.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts.withDefaults(),
		index:    make(map[string]recordLoc),
		segments: make(map[uint32]*segment),
		nextID:   1,
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		if err := s.replaySegment(id, i == len(ids)-1); err != nil {
			s.closeFiles()
			return nil, err
		}
		s.nextID = id + 1
	}
	if len(ids) > 0 {
		s.active = s.segments[ids[len(ids)-1]]
	} else if err := s.rotateLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// listSegments returns the segment ids found in dir, ascending.
func listSegments(dir string) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	var ids []uint32
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != segmentSuffix {
			continue
		}
		var id uint32
		if _, err := fmt.Sscanf(name, "%08d"+segmentSuffix, &id); err != nil || id == 0 {
			return nil, fmt.Errorf("store: unrecognized segment file %q in %s", name, dir)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// segmentPath names segment id's file.
func (s *Store) segmentPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("%08d%s", id, segmentSuffix))
}

// replaySegment opens one segment and replays its records into the index.
// When the segment is the store's last, a bad or truncated record marks a
// torn tail: everything from it on is truncated away. Elsewhere the same
// condition is unrecoverable corruption.
func (s *Store) replaySegment(id uint32, last bool) error {
	path := s.segmentPath(id)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: open segment: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: replay segment: %w", err)
	}
	var off int64
	for off < int64(len(data)) {
		kind, key, _, n, err := decodeRecord(data[off:])
		if err != nil {
			if !last {
				f.Close()
				return fmt.Errorf("store: segment %s corrupt at offset %d: %w", path, off, err)
			}
			// Torn tail of the newest segment: drop it and continue from
			// the last intact record.
			if err := f.Truncate(off); err != nil {
				f.Close()
				return fmt.Errorf("store: truncating torn tail of %s: %w", path, err)
			}
			s.tailTruncs.Add(1)
			data = data[:off]
			break
		}
		s.applyReplay(kind, string(key), recordLoc{seg: id, off: off, size: n})
		off += n
	}
	seg := &segment{id: id, f: f, size: int64(len(data))}
	if _, err := f.Seek(seg.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking segment %s: %w", path, err)
	}
	s.segments[id] = seg
	s.total += seg.size
	return nil
}

// applyReplay folds one replayed record into the index and live-byte count.
func (s *Store) applyReplay(kind byte, key string, loc recordLoc) {
	if old, ok := s.index[key]; ok {
		s.live -= old.size
	}
	if kind == recordPut {
		s.index[key] = loc
		s.live += loc.size
	} else {
		delete(s.index, key)
	}
}

// Get returns the value stored under key (a fresh copy) and whether it
// exists. The record is re-verified against its checksum on every read.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	if err := faultinject.Hit("store.get"); err != nil {
		return nil, false, fmt.Errorf("store: injected read fault: %w", err)
	}
	s.gets.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	loc, ok := s.index[string(key)]
	if !ok {
		return nil, false, nil
	}
	val, err := s.readValueLocked(loc)
	if err != nil {
		return nil, false, err
	}
	s.hits.Add(1)
	return val, true, nil
}

// readValueLocked reads and checksum-verifies the record at loc, returning
// its value. Callers hold at least the read lock.
func (s *Store) readValueLocked(loc recordLoc) ([]byte, error) {
	seg, ok := s.segments[loc.seg]
	if !ok {
		return nil, fmt.Errorf("store: index points at missing segment %d", loc.seg)
	}
	buf := make([]byte, loc.size)
	if _, err := seg.f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("store: reading segment %d@%d: %w", loc.seg, loc.off, err)
	}
	_, _, val, _, err := decodeRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("store: segment %d@%d: %w", loc.seg, loc.off, err)
	}
	return val, nil
}

// Put stores value under key, appending one record to the active segment
// and updating the index. Overwriting a key turns its previous record into
// dead bytes, which background compaction eventually reclaims.
func (s *Store) Put(key, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range [1,%d]", len(key), maxKeyLen)
	}
	if len(value) > maxValueLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(value), maxValueLen)
	}
	if err := faultinject.Hit("store.put"); err != nil {
		return fmt.Errorf("store: injected write fault: %w", err)
	}
	s.puts.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	loc, err := s.appendLocked(recordPut, key, value)
	if err != nil {
		return err
	}
	s.applyReplay(recordPut, string(key), loc)
	s.maybeCompactLocked()
	return nil
}

// Delete removes key, appending a tombstone when the key exists. Deleting
// an absent key is a no-op.
func (s *Store) Delete(key []byte) error {
	s.deletes.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.index[string(key)]; !ok {
		return nil
	}
	if _, err := s.appendLocked(recordDelete, key, nil); err != nil {
		return err
	}
	s.applyReplay(recordDelete, string(key), recordLoc{})
	s.maybeCompactLocked()
	return nil
}

// appendLocked writes one record to the active segment (rotating first
// when it is full) and returns its location. Callers hold the write lock.
func (s *Store) appendLocked(kind byte, key, value []byte) (recordLoc, error) {
	size := recordSize(len(key), len(value))
	if s.active.size > 0 && s.active.size+size > s.opts.MaxSegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return recordLoc{}, err
		}
	}
	rec := appendRecord(make([]byte, 0, size), kind, key, value)
	if _, err := s.active.f.Write(rec); err != nil {
		return recordLoc{}, fmt.Errorf("store: appending to segment %d: %w", s.active.id, err)
	}
	if s.opts.SyncWrites {
		if err := s.active.f.Sync(); err != nil {
			return recordLoc{}, fmt.Errorf("store: syncing segment %d: %w", s.active.id, err)
		}
	}
	loc := recordLoc{seg: s.active.id, off: s.active.size, size: size}
	s.active.size += size
	s.total += size
	return loc, nil
}

// rotateLocked syncs the current active segment and opens a fresh one.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		if err := s.active.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing segment %d: %w", s.active.id, err)
		}
	}
	id := s.nextID
	f, err := os.OpenFile(s.segmentPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating segment: %w", err)
	}
	s.nextID++
	s.active = &segment{id: id, f: f}
	s.segments[id] = s.active
	return nil
}

// maybeCompactLocked launches a background compaction when the dead-byte
// share exceeds the configured fraction. Callers hold the write lock.
func (s *Store) maybeCompactLocked() {
	dead := s.total - s.live
	if dead < s.opts.MinCompactBytes || s.opts.CompactFraction >= 1 {
		return
	}
	if float64(dead) < s.opts.CompactFraction*float64(s.total) {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return // one pass at a time
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.compacting.Store(false)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return
		}
		_ = s.compactLocked() // best effort; the log stays valid on failure
	}()
}

// Compact rewrites the live records into fresh segments and deletes the
// old files, reclaiming all dead bytes. It blocks readers and writers for
// the duration of the rewrite.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked copies every live record, ordered by its current (segment,
// offset) position for sequential reads, into new segments numbered after
// all existing ones, syncs them, swaps the index over and removes the old
// files. A crash mid-compaction leaves both generations on disk: replay
// order (old before new) makes the copied records win, so the store
// reopens consistently. Callers hold the write lock.
func (s *Store) compactLocked() error {
	type liveRec struct {
		key string
		loc recordLoc
	}
	live := make([]liveRec, 0, len(s.index))
	for k, loc := range s.index {
		live = append(live, liveRec{key: k, loc: loc})
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].loc.seg != live[j].loc.seg {
			return live[i].loc.seg < live[j].loc.seg
		}
		return live[i].loc.off < live[j].loc.off
	})

	oldSegs := s.segments
	oldActive := s.active
	// Fresh generation: compaction output continues the segment numbering,
	// so replay order stays append order even across a crash.
	s.segments = make(map[uint32]*segment, 1)
	s.active = nil
	s.total, s.live = 0, 0
	newIndex := make(map[string]recordLoc, len(live))

	restore := func() {
		for _, seg := range s.segments {
			seg.f.Close()
			os.Remove(s.segmentPath(seg.id))
		}
		s.segments = oldSegs
		s.active = oldActive
		s.total, s.live = 0, 0
		for _, seg := range oldSegs {
			s.total += seg.size
		}
		for _, loc := range s.index {
			s.live += loc.size
		}
	}

	if err := s.rotateLocked(); err != nil {
		restore()
		return err
	}
	for _, lr := range live {
		oldSeg, ok := oldSegs[lr.loc.seg]
		if !ok {
			restore()
			return fmt.Errorf("store: compact: missing segment %d", lr.loc.seg)
		}
		buf := make([]byte, lr.loc.size)
		if _, err := oldSeg.f.ReadAt(buf, lr.loc.off); err != nil {
			restore()
			return fmt.Errorf("store: compact: reading segment %d@%d: %w", lr.loc.seg, lr.loc.off, err)
		}
		kind, key, value, _, err := decodeRecord(buf)
		if err != nil || kind != recordPut {
			restore()
			return fmt.Errorf("store: compact: segment %d@%d: %w", lr.loc.seg, lr.loc.off, err)
		}
		loc, err := s.appendLocked(recordPut, key, value)
		if err != nil {
			restore()
			return err
		}
		newIndex[lr.key] = loc
		s.live += loc.size
	}
	for _, seg := range s.segments {
		if err := seg.f.Sync(); err != nil {
			restore()
			return fmt.Errorf("store: compact: syncing segment %d: %w", seg.id, err)
		}
	}

	// The new generation is durable: point the index at it and drop the
	// old files. Removal failures are ignored — stray old segments only
	// waste space and replay harmlessly before the new generation.
	s.index = newIndex
	for _, seg := range oldSegs {
		seg.f.Close()
		_ = os.Remove(s.segmentPath(seg.id))
	}
	s.compactions.Add(1)
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters and sizes.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Records:         len(s.index),
		Segments:        len(s.segments),
		LiveBytes:       s.live,
		DeadBytes:       s.total - s.live,
		Gets:            s.gets.Load(),
		Hits:            s.hits.Load(),
		Puts:            s.puts.Load(),
		Deletes:         s.deletes.Load(),
		Compactions:     s.compactions.Load(),
		TailTruncations: s.tailTruncs.Load(),
	}
}

// Sync flushes the active segment to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.active.f.Sync()
}

// Close waits for any background compaction, syncs the active segment and
// closes every file. Close is idempotent; all other methods fail with
// ErrClosed afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	s.wg.Wait() // let an in-flight compaction finish or bail

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.active != nil {
		err = s.active.f.Sync()
	}
	s.closeFiles()
	return err
}

// closeFiles closes every open segment handle.
func (s *Store) closeFiles() {
	for _, seg := range s.segments {
		seg.f.Close()
	}
}

// IsCorruption reports whether err marks a corrupt (non-tail) record — the
// condition under which a caller may decide to rebuild the store from
// scratch rather than fail.
func IsCorruption(err error) bool {
	return errors.Is(err, errBadRecord)
}
