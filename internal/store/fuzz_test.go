package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it must
// never panic or over-read, must reject anything whose checksum does not
// validate, and on success must re-encode to exactly the bytes it
// consumed (canonical round trip).
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, recordHeaderSize))
	f.Add(appendRecord(nil, recordPut, []byte("key"), []byte("value")))
	f.Add(appendRecord(nil, recordDelete, []byte("gone"), nil))
	f.Add(appendRecord(appendRecord(nil, recordPut, []byte("a"), []byte("1")), recordPut, []byte("b"), []byte("2")))
	torn := appendRecord(nil, recordPut, []byte("torn"), bytes.Repeat([]byte("v"), 100))
	f.Add(torn[:len(torn)-7])

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, key, value, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > int64(len(data)) {
			t.Fatalf("decoded length %d out of range [1,%d]", n, len(data))
		}
		if kind != recordPut && kind != recordDelete {
			t.Fatalf("accepted unknown kind %d", kind)
		}
		if len(key) == 0 {
			t.Fatal("accepted empty key")
		}
		if kind == recordDelete && len(value) != 0 {
			t.Fatal("accepted delete record with a value")
		}
		re := appendRecord(nil, kind, key, value)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
		}
	})
}
