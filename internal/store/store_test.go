package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openT opens a store in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	defer s.Close()

	if _, ok, err := s.Get([]byte("missing")); err != nil || ok {
		t.Fatalf("Get(missing) = ok=%v err=%v, want miss", ok, err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, i+1)
		if err := s.Put([]byte(k), v); err != nil {
			t.Fatalf("Put(%s): %v", k, err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v, ok, err := s.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("Get(%s) = ok=%v err=%v", k, ok, err)
		}
		if want := bytes.Repeat([]byte{byte(i)}, i+1); !bytes.Equal(v, want) {
			t.Fatalf("Get(%s) = %v, want %v", k, v, want)
		}
	}
	if got := s.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	st := s.Stats()
	if st.Records != 100 || st.Hits != 100 || st.Gets != 101 || st.Puts != 100 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put([]byte("a"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("b"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("a"), []byte("uno")); err != nil { // overwrite
		t.Fatal(err)
	}
	if err := s.Delete([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	v, ok, err := s2.Get([]byte("a"))
	if err != nil || !ok || string(v) != "uno" {
		t.Fatalf("after reopen Get(a) = %q ok=%v err=%v, want uno", v, ok, err)
	}
	if _, ok, _ := s2.Get([]byte("b")); ok {
		t.Fatal("deleted key b survived reopen")
	}
	if st := s2.Stats(); st.Records != 1 || st.DeadBytes == 0 {
		t.Fatalf("reopen Stats = %+v, want 1 record with dead bytes", st)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 256})
	defer s.Close()
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		if err := s.Put([]byte(k), bytes.Repeat([]byte("x"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 5 {
		t.Fatalf("Segments = %d, want several at 256-byte rotation", st.Segments)
	}
	// Every key must still be readable across segments, and after reopen.
	check := func(s *Store) {
		t.Helper()
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("k%02d", i)
			if _, ok, err := s.Get([]byte(k)); err != nil || !ok {
				t.Fatalf("Get(%s) = ok=%v err=%v", k, ok, err)
			}
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{MaxSegmentBytes: 256})
	defer s2.Close()
	check(s2)
}

// TestTornTailRecovery simulates a crash mid-append: garbage or a short
// record at the end of the newest segment must be truncated on Open, with
// every record before it intact.
func TestTornTailRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(data []byte) []byte
	}{
		{"short-suffix", func(data []byte) []byte {
			return data[:len(data)-3] // crash mid-write: last record torn
		}},
		{"garbage-appended", func(data []byte) []byte {
			return append(data, 0xde, 0xad, 0xbe, 0xef, 0x01)
		}},
		{"zero-filled-tail", func(data []byte) []byte {
			return append(data, make([]byte, 64)...) // preallocated zeros
		}},
		{"flipped-bit-in-last-record", func(data []byte) []byte {
			out := append([]byte(nil), data...)
			out[len(out)-1] ^= 0x40
			return out
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, Options{})
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("key-%d", i)
				if err := s.Put([]byte(k), []byte(fmt.Sprintf("val-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			seg := filepath.Join(dir, "00000001.seg")
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, tc.tear(data), 0o644); err != nil {
				t.Fatal(err)
			}

			s2 := openT(t, dir, Options{})
			defer s2.Close()
			if st := s2.Stats(); st.TailTruncations != 1 {
				t.Fatalf("TailTruncations = %d, want 1", st.TailTruncations)
			}
			// All records except (at most) the torn last one survive.
			for i := 0; i < 9; i++ {
				k := fmt.Sprintf("key-%d", i)
				v, ok, err := s2.Get([]byte(k))
				if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
					t.Fatalf("after recovery Get(%s) = %q ok=%v err=%v", k, v, ok, err)
				}
			}
			// Writes keep working after a recovery, and the re-put key is
			// readable across one more reopen (the truncation left a clean
			// append point).
			if err := s2.Put([]byte("key-9"), []byte("val-9b")); err != nil {
				t.Fatalf("Put after recovery: %v", err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := openT(t, dir, Options{})
			defer s3.Close()
			if v, ok, _ := s3.Get([]byte("key-9")); !ok || string(v) != "val-9b" {
				t.Fatalf("Get(key-9) after re-put = %q ok=%v", v, ok)
			}
		})
	}
}

// TestCorruptionMidSegmentFailsOpen: a bad record anywhere but the newest
// segment's tail is corruption, not a torn write, and must fail Open.
func TestCorruptionMidSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("y"), 30)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Segments < 2 {
		t.Fatal("test needs at least two segments")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded on a corrupt non-tail segment")
	} else if !IsCorruption(err) {
		t.Fatalf("Open error %v is not flagged as corruption", err)
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	// CompactFraction ≥ 1 disables the automatic pass so the test drives
	// compaction deterministically.
	s := openT(t, dir, Options{MaxSegmentBytes: 512, CompactFraction: 1})
	defer s.Close()
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("key-%d", i)
			if err := s.Put([]byte(k), bytes.Repeat([]byte{byte(round)}, 50)); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("overwrites produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("DeadBytes = %d after compaction, want 0", after.DeadBytes)
	}
	if after.Records != 10 || after.Compactions != 1 {
		t.Fatalf("after compaction Stats = %+v", after)
	}
	if after.Segments >= before.Segments {
		t.Fatalf("Segments %d → %d: compaction did not drop files", before.Segments, after.Segments)
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok, err := s.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte{19}, 50)) {
			t.Fatalf("after compaction Get(%s) = %v ok=%v err=%v", k, v, ok, err)
		}
	}
	// The compacted store must reopen cleanly.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("reopened Len = %d, want 10", s2.Len())
	}
}

func TestBackgroundCompactionTriggers(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 1 << 20, CompactFraction: 0.5, MinCompactBytes: 1024})
	defer s.Close()
	// Hammer one key: almost everything becomes dead bytes, so the
	// threshold must fire at least once.
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte("hot"), bytes.Repeat([]byte("z"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil { // waits for the background pass
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	v, ok, err := s2.Get([]byte("hot"))
	if err != nil || !ok || len(v) != 100 {
		t.Fatalf("Get(hot) = len %d ok=%v err=%v", len(v), ok, err)
	}
	// Dead share must have been brought under control: with 200 overwrites
	// of ~120 bytes and a 0.5 trigger, an uncompacted log would carry
	// ~24 KB dead; a compacted one far less.
	if st := s2.Stats(); st.DeadBytes > 13*1024 {
		t.Fatalf("DeadBytes = %d after background compaction, want pressure released", st.DeadBytes)
	}
}

// TestConcurrentHammer drives concurrent writers and readers (run under
// -race in CI) across overlapping keys with rotation and compaction live.
func TestConcurrentHammer(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{MaxSegmentBytes: 4096, CompactFraction: 0.5, MinCompactBytes: 2048})
	defer s.Close()

	const (
		workers = 8
		keys    = 32
		rounds  = 100
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				k := []byte(fmt.Sprintf("key-%d", rng.Intn(keys)))
				switch rng.Intn(4) {
				case 0:
					if err := s.Put(k, bytes.Repeat([]byte{byte(r)}, 1+rng.Intn(64))); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					if err := s.Delete(k); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				default:
					if _, _, err := s.Get(k); err != nil {
						t.Errorf("Get: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Whatever survived must round-trip a reopen intact.
	type kv struct {
		v  []byte
		ok bool
	}
	snapshot := make(map[string]kv)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok, err := s.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		snapshot[k] = kv{v: v, ok: ok}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	defer s2.Close()
	for k, want := range snapshot {
		v, ok, err := s2.Get([]byte(k))
		if err != nil || ok != want.ok || !bytes.Equal(v, want.v) {
			t.Fatalf("reopen Get(%s) = %v ok=%v err=%v, want %v ok=%v", k, v, ok, err, want.v, want.ok)
		}
	}
}

func TestClosedStoreFails(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
}

func TestKeyValidation(t *testing.T) {
	s := openT(t, t.TempDir(), Options{})
	defer s.Close()
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Fatal("Put with empty key succeeded")
	}
	if err := s.Put(bytes.Repeat([]byte("k"), maxKeyLen+1), []byte("v")); err == nil {
		t.Fatal("Put with oversized key succeeded")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		key := make([]byte, 1+rng.Intn(100))
		val := make([]byte, rng.Intn(1000))
		rng.Read(key)
		rng.Read(val)
		kind := byte(recordPut)
		if len(val) == 0 && i%2 == 0 {
			kind = recordDelete
		}
		var v []byte
		if kind == recordPut {
			v = val
		}
		buf := appendRecord(nil, kind, key, v)
		k2, key2, val2, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if k2 != kind || !bytes.Equal(key2, key) || !bytes.Equal(val2, v) || n != int64(len(buf)) {
			t.Fatalf("round trip mismatch: kind %d/%d, n %d/%d", kind, k2, len(buf), n)
		}
		// Any single-bit flip must be caught.
		pos := rng.Intn(len(buf))
		buf[pos] ^= 1 << uint(rng.Intn(8))
		if _, _, _, _, err := decodeRecord(buf); err == nil {
			t.Fatalf("bit flip at %d undetected", pos)
		}
	}
}
