package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk record layout (little-endian), the unit of the append-only log:
//
//	offset  size  field
//	0       4     CRC-32 (IEEE) over bytes [4, end) of the record
//	4       1     kind (recordPut or recordDelete)
//	5       4     key length
//	9       4     value length (0 for recordDelete)
//	13      k     key bytes
//	13+k    v     value bytes
//
// The CRC covers the kind, both lengths and the payload, so a torn write —
// a crash mid-append leaves a short or zero-filled tail — is detected as a
// checksum or framing failure and the tail is truncated on Open. Records
// carry no segment-level framing beyond this: replay walks a segment
// record by record from offset 0.
const (
	recordHeaderSize = 13

	recordPut    = byte(1)
	recordDelete = byte(2)

	// maxKeyLen and maxValueLen bound what decodeRecord will allocate.
	// Anything larger is treated as corruption, not as a huge record: the
	// store's workload (content-addressed mapping results) is kilobytes,
	// and a corrupt length field must not drive a gigabyte allocation.
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 26
)

// errBadRecord marks any framing, bound or checksum violation found while
// decoding. Open treats it (and io.ErrUnexpectedEOF) at the tail of the
// last segment as a torn write to truncate, anywhere else as corruption.
var errBadRecord = errors.New("store: bad record")

// appendRecord serializes one record onto buf and returns the extended
// slice. kind is recordPut or recordDelete; value must be empty for
// deletes.
func appendRecord(buf []byte, kind byte, key, value []byte) []byte {
	start := len(buf)
	var hdr [recordHeaderSize]byte
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(value)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	crc := crc32.ChecksumIEEE(buf[start+4:])
	binary.LittleEndian.PutUint32(buf[start:start+4], crc)
	return buf
}

// recordSize returns the encoded size of a record with the given payload.
func recordSize(keyLen, valueLen int) int64 {
	return int64(recordHeaderSize + keyLen + valueLen)
}

// decodeRecord parses the record starting at data[0]. It returns the kind,
// key and value (sub-slices of data, not copies) and the total encoded
// length consumed. A record that overruns data, blows the length bounds or
// fails its checksum returns errBadRecord.
func decodeRecord(data []byte) (kind byte, key, value []byte, n int64, err error) {
	if len(data) < recordHeaderSize {
		return 0, nil, nil, 0, fmt.Errorf("%w: short header (%d bytes)", errBadRecord, len(data))
	}
	kind = data[4]
	keyLen := binary.LittleEndian.Uint32(data[5:9])
	valLen := binary.LittleEndian.Uint32(data[9:13])
	if kind != recordPut && kind != recordDelete {
		return 0, nil, nil, 0, fmt.Errorf("%w: unknown kind %d", errBadRecord, kind)
	}
	if keyLen == 0 || keyLen > maxKeyLen {
		return 0, nil, nil, 0, fmt.Errorf("%w: key length %d out of range", errBadRecord, keyLen)
	}
	if valLen > maxValueLen {
		return 0, nil, nil, 0, fmt.Errorf("%w: value length %d out of range", errBadRecord, valLen)
	}
	if kind == recordDelete && valLen != 0 {
		return 0, nil, nil, 0, fmt.Errorf("%w: delete record carries %d value bytes", errBadRecord, valLen)
	}
	total := recordSize(int(keyLen), int(valLen))
	if int64(len(data)) < total {
		return 0, nil, nil, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", errBadRecord, len(data), total)
	}
	rec := data[:total]
	if crc32.ChecksumIEEE(rec[4:]) != binary.LittleEndian.Uint32(rec[0:4]) {
		return 0, nil, nil, 0, fmt.Errorf("%w: checksum mismatch", errBadRecord)
	}
	key = rec[recordHeaderSize : recordHeaderSize+keyLen]
	value = rec[recordHeaderSize+keyLen : total]
	return kind, key, value, total, nil
}
