package qasm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/circuit"
)

// Write renders the circuit as an OpenQASM 2.0 program over a single
// register q. MCT gates with more than two controls are rejected: they must
// be decomposed (internal/revlib) before export.
func Write(c *circuit.Circuit) (string, error) {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	if name := c.Name(); name != "" {
		fmt.Fprintf(&b, "// circuit: %s\n", name)
	}
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NumQubits())

	for i, g := range c.Gates() {
		switch g.Kind {
		case circuit.KindU:
			fmt.Fprintf(&b, "u3(%s,%s,%s) q[%d];\n",
				angle(g.Theta), angle(g.Phi), angle(g.Lambda), g.Qubits[0])
		case circuit.KindRz:
			fmt.Fprintf(&b, "rz(%s) q[%d];\n", angle(g.Lambda), g.Qubits[0])
		case circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
			circuit.KindS, circuit.KindSdg, circuit.KindT, circuit.KindTdg:
			fmt.Fprintf(&b, "%s q[%d];\n", g.Kind, g.Qubits[0])
		case circuit.KindCNOT:
			fmt.Fprintf(&b, "cx q[%d],q[%d];\n", g.Qubits[0], g.Qubits[1])
		case circuit.KindSWAP:
			fmt.Fprintf(&b, "swap q[%d],q[%d];\n", g.Qubits[0], g.Qubits[1])
		case circuit.KindMCT:
			switch len(g.Qubits) {
			case 1:
				fmt.Fprintf(&b, "x q[%d];\n", g.Qubits[0])
			case 2:
				fmt.Fprintf(&b, "cx q[%d],q[%d];\n", g.Qubits[0], g.Qubits[1])
			case 3:
				fmt.Fprintf(&b, "ccx q[%d],q[%d],q[%d];\n", g.Qubits[0], g.Qubits[1], g.Qubits[2])
			default:
				return "", fmt.Errorf("qasm: gate %d: MCT with %d controls has no QASM form; decompose first",
					i, len(g.Qubits)-1)
			}
		default:
			return "", fmt.Errorf("qasm: gate %d: unsupported kind %s", i, g.Kind)
		}
	}
	return b.String(), nil
}

// angle renders a float with the shortest representation that round-trips.
func angle(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
