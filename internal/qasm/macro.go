package qasm

import (
	"fmt"

	"repro/internal/circuit"
)

// gateDefStmt parses a `gate name(params) qubits { body }` definition and
// registers it as a macro. Bodies may reference previously defined macros.
func (p *parser) gateDefStmt() error {
	p.advance() // consume "gate"
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	def := &gateDef{name: nameTok.text}

	// Optional formal parameter list.
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.advance()
		if t := p.peek(); t.kind == tokSymbol && t.text == ")" {
			p.advance()
		} else {
			for {
				param, err := p.expectIdent()
				if err != nil {
					return err
				}
				def.params = append(def.params, param.text)
				t := p.advance()
				if t.kind == tokSymbol && t.text == ")" {
					break
				}
				if t.kind != tokSymbol || t.text != "," {
					return p.errf(t, "expected ',' or ')' in gate parameters")
				}
			}
		}
	}
	// Formal qubit list.
	for {
		q, err := p.expectIdent()
		if err != nil {
			return err
		}
		def.qubits = append(def.qubits, q.text)
		t := p.peek()
		if t.kind == tokSymbol && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol("{"); err != nil {
		return err
	}
	// Body: gate applications over formal names until '}'.
	for {
		t := p.peek()
		if t.kind == tokSymbol && t.text == "}" {
			p.advance()
			break
		}
		if t.kind == tokEOF {
			return p.errf(t, "unterminated gate body for %q", def.name)
		}
		if t.kind == tokIdent && t.text == "barrier" {
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return err
			}
			continue
		}
		mg, err := p.macroGateStmt()
		if err != nil {
			return err
		}
		def.body = append(def.body, mg)
	}
	if p.macros == nil {
		p.macros = map[string]*gateDef{}
	}
	p.macros[def.name] = def
	return nil
}

// macroGateStmt parses one body statement of a gate definition, keeping
// angle expressions as raw token slices for later substitution.
func (p *parser) macroGateStmt() (macroGate, error) {
	nameTok, err := p.expectIdent()
	if err != nil {
		return macroGate{}, err
	}
	mg := macroGate{name: nameTok.text}
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.advance()
		depth := 0
		var cur []token
		for {
			t := p.advance()
			switch {
			case t.kind == tokEOF:
				return macroGate{}, p.errf(t, "unterminated parameter list")
			case t.kind == tokSymbol && t.text == "(":
				depth++
				cur = append(cur, t)
			case t.kind == tokSymbol && t.text == ")" && depth > 0:
				depth--
				cur = append(cur, t)
			case t.kind == tokSymbol && t.text == ")":
				mg.exprs = append(mg.exprs, cur)
				goto qubits
			case t.kind == tokSymbol && t.text == "," && depth == 0:
				mg.exprs = append(mg.exprs, cur)
				cur = nil
			default:
				cur = append(cur, t)
			}
		}
	}
qubits:
	for {
		q, err := p.expectIdent()
		if err != nil {
			return macroGate{}, err
		}
		mg.qubits = append(mg.qubits, q.text)
		t := p.advance()
		if t.kind == tokSymbol && t.text == ";" {
			return mg, nil
		}
		if t.kind != tokSymbol || t.text != "," {
			return macroGate{}, p.errf(t, "expected ',' or ';' in gate body")
		}
	}
}

// evalMacroExpr evaluates a tokenized angle expression with formal
// parameters bound to values.
func (p *parser) evalMacroExpr(toks []token, bindings map[string]float64) (float64, error) {
	// Substitute bound identifiers by number tokens, then reuse the
	// expression parser on a temporary token stream.
	sub := make([]token, 0, len(toks)+1)
	for _, t := range toks {
		if t.kind == tokIdent && t.text != "pi" {
			v, ok := bindings[t.text]
			if !ok {
				return 0, p.errf(t, "unknown parameter %q in gate body", t.text)
			}
			sub = append(sub, token{kind: tokNumber, text: fmt.Sprintf("%.17g", v), line: t.line})
			continue
		}
		sub = append(sub, t)
	}
	sub = append(sub, token{kind: tokEOF})
	tmp := &parser{toks: sub}
	v, err := tmp.expr()
	if err != nil {
		return 0, err
	}
	if t := tmp.peek(); t.kind != tokEOF {
		return 0, p.errf(t, "trailing tokens in angle expression")
	}
	return v, nil
}

// expandMacro recursively expands a user-defined gate application into
// elementary circuit gates.
func (p *parser) expandMacro(def *gateDef, params []float64, qubits []int, depth int) ([]circuit.Gate, error) {
	if depth > 32 {
		return nil, fmt.Errorf("qasm: gate %q expansion exceeds depth 32 (recursive definition?)", def.name)
	}
	if len(params) != len(def.params) {
		return nil, fmt.Errorf("qasm: gate %q needs %d parameters, has %d", def.name, len(def.params), len(params))
	}
	if len(qubits) != len(def.qubits) {
		return nil, fmt.Errorf("qasm: gate %q needs %d qubits, has %d", def.name, len(def.qubits), len(qubits))
	}
	angleBind := map[string]float64{}
	for i, name := range def.params {
		angleBind[name] = params[i]
	}
	qubitBind := map[string]int{}
	for i, name := range def.qubits {
		qubitBind[name] = qubits[i]
	}

	var out []circuit.Gate
	for _, mg := range def.body {
		var angles []float64
		for _, e := range mg.exprs {
			v, err := p.evalMacroExpr(e, angleBind)
			if err != nil {
				return nil, err
			}
			angles = append(angles, v)
		}
		qs := make([]int, len(mg.qubits))
		for i, name := range mg.qubits {
			q, ok := qubitBind[name]
			if !ok {
				return nil, fmt.Errorf("qasm: gate %q body references unknown qubit %q", def.name, name)
			}
			qs[i] = q
		}
		if inner, ok := p.macros[mg.name]; ok {
			gates, err := p.expandMacro(inner, angles, qs, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, gates...)
			continue
		}
		g, err := buildGate(mg.name, angles, qs)
		if err != nil {
			return nil, fmt.Errorf("qasm: in gate %q: %w", def.name, err)
		}
		out = append(out, g)
	}
	return out, nil
}
