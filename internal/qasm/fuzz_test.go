package qasm

import "testing"

// FuzzParse exercises the QASM parser with arbitrary inputs: it must never
// panic, and anything it accepts must re-serialize and re-parse cleanly
// (when the circuit is expressible, i.e. contains no >2-control MCTs —
// ccx is the largest gate the parser produces, so that always holds).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];",
		"qreg q[2]; u3(pi/2,0,pi) q[0]; ccx q[0],q[1],q[0];",
		"qreg a[1]; qreg b[2]; cx a[0],b[1]; measure a[0] -> c[0];",
		"qreg q[1]; u1(-(pi+1)/2*3) q[0]; barrier q[0];",
		"p cnf // not qasm at all",
		"qreg q[9999];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		out, err := Write(c)
		if err != nil {
			t.Fatalf("accepted circuit failed to serialize: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, out)
		}
		if back.Len() != c.Len() || back.NumQubits() != c.NumQubits() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
				back.NumQubits(), back.Len(), c.NumQubits(), c.Len())
		}
	})
}
