package qasm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestParseBasicProgram(t *testing.T) {
	src := `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
t q[2];
tdg q[1];
ccx q[0],q[1],q[2];
measure q[0] -> c[0];
barrier q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 3 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	if c.Len() != 5 {
		t.Fatalf("gates = %d, want 5 (measure/barrier ignored)", c.Len())
	}
	if g := c.Gate(1); g.Kind != circuit.KindCNOT || g.Control() != 0 || g.Target() != 1 {
		t.Errorf("gate 1 = %v", g)
	}
	if g := c.Gate(4); g.Kind != circuit.KindMCT || len(g.Qubits) != 3 {
		t.Errorf("gate 4 = %v", g)
	}
}

func TestParseAngleExpressions(t *testing.T) {
	src := `qreg q[1];
u3(pi/2, 0, pi) q[0];
u1(-pi/4) q[0];
u2(0, pi) q[0];
rz(3*pi/2) q[0];
u3(1.5e-3, -(pi+1)/2, 2*0.25) q[0];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		idx  int
		f    func(circuit.Gate) float64
		want float64
	}{
		{0, func(g circuit.Gate) float64 { return g.Theta }, math.Pi / 2},
		{0, func(g circuit.Gate) float64 { return g.Lambda }, math.Pi},
		{1, func(g circuit.Gate) float64 { return g.Lambda }, -math.Pi / 4},
		{2, func(g circuit.Gate) float64 { return g.Theta }, math.Pi / 2},
		{3, func(g circuit.Gate) float64 { return g.Lambda }, 3 * math.Pi / 2},
		{4, func(g circuit.Gate) float64 { return g.Theta }, 1.5e-3},
		{4, func(g circuit.Gate) float64 { return g.Phi }, -(math.Pi + 1) / 2},
		{4, func(g circuit.Gate) float64 { return g.Lambda }, 0.5},
	}
	for _, tc := range checks {
		if got := tc.f(c.Gate(tc.idx)); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("gate %d: angle = %g, want %g", tc.idx, got, tc.want)
		}
	}
}

func TestParseMultipleRegisters(t *testing.T) {
	src := `qreg a[2]; qreg b[2]; cx a[1],b[0];`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 4 {
		t.Fatalf("qubits = %d", c.NumQubits())
	}
	if g := c.Gate(0); g.Control() != 1 || g.Target() != 2 {
		t.Errorf("flattening wrong: %v", g)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no registers":       `h q[0];`,
		"unknown register":   `qreg q[2]; h r[0];`,
		"index out of range": `qreg q[2]; h q[5];`,
		"unknown gate":       `qreg q[2]; foo q[0];`,
		"bad arity":          `qreg q[2]; cx q[0];`,
		"unterminated str":   `include "qelib1.inc`,
		"division by zero":   `qreg q[1]; u1(1/0) q[0];`,
		"missing semicolon":  `qreg q[2]`,
		"bad char":           `qreg q[2]; h q[0]; @`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestWriteBasic(t *testing.T) {
	c := circuit.New(2).SetName("demo").AddH(0).AddCNOT(0, 1).AddT(1)
	out, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPENQASM 2.0;", "qreg q[2];", "h q[0];", "cx q[0],q[1];", "t q[1];", "demo"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteRejectsBigMCT(t *testing.T) {
	c := circuit.New(5).AddMCT([]int{0, 1, 2}, 4)
	if _, err := Write(c); err == nil {
		t.Error("3-control MCT should be rejected")
	}
}

func TestRoundTripPreservesSemantics(t *testing.T) {
	// Write → Parse must reproduce an equivalent circuit (simulated).
	orig := circuit.New(3).
		AddH(0).AddU(1, 0.3, -1.2, 2.5).AddCNOT(0, 1).
		AddRz(2, math.Pi/3).AddTdg(0).AddSWAP(1, 2).
		AddMCT([]int{0, 1}, 2).AddSdg(2)
	out, err := Write(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if back.NumQubits() != 3 || back.Len() != orig.Len() {
		t.Fatalf("shape changed: %d qubits, %d gates", back.NumQubits(), back.Len())
	}
	for b := 0; b < 8; b++ {
		s1 := sim.NewBasisState(3, b)
		if err := s1.Run(orig); err != nil {
			t.Fatal(err)
		}
		s2 := sim.NewBasisState(3, b)
		if err := s2.Run(back); err != nil {
			t.Fatal(err)
		}
		if ok, _ := s1.EqualUpToPhase(s2, 1e-9); !ok {
			t.Fatalf("basis %d: round trip changed semantics", b)
		}
	}
}

// Property: random circuits round-trip through QASM with identical
// structure.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, count uint) bool {
		state := uint64(seed)
		next := func(mod int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(mod))
		}
		const n = 4
		c := circuit.New(n)
		for i := 0; i < int(count%25)+1; i++ {
			switch next(6) {
			case 0:
				c.AddH(next(n))
			case 1:
				c.AddT(next(n))
			case 2:
				c.AddU(next(n), float64(next(100))/25, float64(next(100))/25, float64(next(100))/25)
			case 3:
				a := next(n)
				c.AddCNOT(a, (a+1+next(n-1))%n)
			case 4:
				c.AddRz(next(n), float64(next(100))/10)
			case 5:
				a := next(n)
				c.AddSWAP(a, (a+1+next(n-1))%n)
			}
		}
		out, err := Write(c)
		if err != nil {
			return false
		}
		back, err := Parse(out)
		if err != nil || back.Len() != c.Len() || back.NumQubits() != n {
			return false
		}
		// Structural identity gate by gate (named 1q gates stay named,
		// U stays U with identical parameters).
		for i, g := range c.Gates() {
			bg := back.Gate(i)
			if g.Kind != bg.Kind && !(g.Kind == circuit.KindU && bg.Kind == circuit.KindU) {
				return false
			}
			if len(g.Qubits) != len(bg.Qubits) {
				return false
			}
			for k := range g.Qubits {
				if g.Qubits[k] != bg.Qubits[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWriteAllNamedGates(t *testing.T) {
	c := circuit.New(2).
		AddH(0).AddX(0).AddT(0).AddTdg(0).AddS(0).AddSdg(0)
	c.MustAppend(circuit.Y(1), circuit.Z(1))
	out, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"h q[0]", "x q[0]", "t q[0]", "tdg q[0]", "s q[0]", "sdg q[0]", "y q[1]", "z q[1]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	back, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != c.Len() {
		t.Errorf("round trip %d gates, want %d", back.Len(), c.Len())
	}
}

func TestWriteMCTForms(t *testing.T) {
	c := circuit.New(3)
	c.MustAppend(circuit.MCT(nil, 0))         // → x
	c.MustAppend(circuit.MCT([]int{0}, 1))    // → cx
	c.MustAppend(circuit.MCT([]int{0, 1}, 2)) // → ccx
	out, err := Write(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"x q[0]", "cx q[0],q[1]", "ccx q[0],q[1],q[2]"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestParseIdGate(t *testing.T) {
	c, err := Parse("qreg q[1]; id q[0];")
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gate(0)
	if g.Kind != circuit.KindU || g.Theta != 0 || g.Lambda != 0 {
		t.Errorf("id parsed as %v", g)
	}
}

func TestParseUGateAlias(t *testing.T) {
	for _, name := range []string{"u3", "u", "U"} {
		c, err := Parse("qreg q[1]; " + name + "(1,2,3) q[0];")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Gate(0).Kind != circuit.KindU {
			t.Errorf("%s not parsed as U", name)
		}
	}
}
