package qasm

import (
	"math"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func TestGateDefinitionExpansion(t *testing.T) {
	src := `
OPENQASM 2.0;
gate mycx c,t { cx c,t; }
gate bell a,b { h a; mycx a,b; }
qreg q[2];
bell q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("gates = %d, want 2 (h + cx)", c.Len())
	}
	if c.Gate(0).Kind != circuit.KindH || c.Gate(1).Kind != circuit.KindCNOT {
		t.Errorf("expanded gates: %v, %v", c.Gate(0), c.Gate(1))
	}
	// Semantics: Bell state.
	s := sim.NewState(2)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	a0, a3 := s.Amplitude(0), s.Amplitude(3)
	if real(a0) < 0.7 || real(a3) < 0.7 {
		t.Errorf("not a Bell state: %v %v", a0, a3)
	}
}

func TestGateDefinitionWithParams(t *testing.T) {
	// qelib1-style definitions with parameter arithmetic.
	src := `
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
gate halfrzz(theta) a,b { rzz(theta/2) a,b; }
qreg q[2];
rzz(pi/2) q[0],q[1];
halfrzz(pi) q[0],q[1];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 6 {
		t.Fatalf("gates = %d, want 6", c.Len())
	}
	// Both applications produce u1(pi/4 * 2 = pi/2)... rzz(pi/2) → u1(pi/2);
	// halfrzz(pi) → rzz(pi/2) → u1(pi/2).
	for _, idx := range []int{1, 4} {
		g := c.Gate(idx)
		if g.Kind != circuit.KindU || math.Abs(g.Lambda-math.Pi/2) > 1e-12 {
			t.Errorf("gate %d = %v, want u1(pi/2)", idx, g)
		}
	}
}

func TestGateDefinitionErrors(t *testing.T) {
	cases := map[string]string{
		"unterminated body": "gate foo a { h a;",
		"unknown qubit":     "gate foo a { h b; }\nqreg q[1];\nfoo q[0];",
		"wrong arity":       "gate foo a { h a; }\nqreg q[2];\nfoo q[0],q[1];",
		"wrong params":      "gate foo(x) a { u1(x) a; }\nqreg q[1];\nfoo q[0];",
		"unknown param":     "gate foo a { u1(y) a; }\nqreg q[1];\nfoo q[0];",
		"unknown inner":     "gate foo a { zzz a; }\nqreg q[1];\nfoo q[0];",
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestOpaqueIgnored(t *testing.T) {
	c, err := Parse("opaque magic a,b;\nqreg q[2];\nh q[0];")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("gates = %d", c.Len())
	}
}

func TestQelib1StyleHeader(t *testing.T) {
	// A realistic file carrying its own qelib1-subset definitions (as
	// files exported with inlined headers do).
	src := `
OPENQASM 2.0;
gate u2(phi,lambda) q { u3(pi/2,phi,lambda) q; }
gate cz a,b { h b; cx a,b; h b; }
qreg q[3];
u2(0,pi) q[0];
cz q[0],q[2];
`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// u2 → 1 gate; cz → 3 gates.
	if c.Len() != 4 {
		t.Fatalf("gates = %d, want 4", c.Len())
	}
	// User definitions shadow nothing built-in here; u2 resolves to the
	// user macro (equivalent semantics).
	g := c.Gate(0)
	if g.Kind != circuit.KindU || math.Abs(g.Theta-math.Pi/2) > 1e-12 {
		t.Errorf("u2 expansion = %v", g)
	}
}
