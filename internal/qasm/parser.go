package qasm

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/circuit"
)

// Parse reads an OpenQASM 2.0 program and returns the corresponding
// circuit. Multiple quantum registers are flattened into one qubit index
// space in declaration order; classical registers, barriers, measures and
// resets are ignored.
func Parse(src string) (*circuit.Circuit, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.program()
}

type qreg struct {
	name   string
	offset int
	size   int
}

type parser struct {
	toks   []token
	pos    int
	regs   []qreg
	n      int
	macros map[string]*gateDef
}

// gateDef is a user-defined gate from a `gate` block: a parametrized macro
// over formal qubit arguments, expanded at application time.
type gateDef struct {
	name   string
	params []string // formal parameter names (angles)
	qubits []string // formal qubit names
	body   []macroGate
}

// macroGate is one statement inside a gate body: a gate name, angle
// expressions over the formal parameters, and formal qubit operands.
type macroGate struct {
	name   string
	exprs  [][]token // tokenized angle expressions, evaluated at expansion
	qubits []string
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("qasm: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	t := p.advance()
	if t.kind != tokSymbol || t.text != s {
		return p.errf(t, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, got %q", t.text)
	}
	return t, nil
}

func (p *parser) program() (*circuit.Circuit, error) {
	// Optional "OPENQASM 2.0;" header.
	if t := p.peek(); t.kind == tokIdent && t.text == "OPENQASM" {
		p.advance()
		if v := p.advance(); v.kind != tokNumber {
			return nil, p.errf(v, "expected version number")
		}
		if err := p.expectSymbol(";"); err != nil {
			return nil, err
		}
	}
	// First pass: collect register declarations and gate statements.
	var c *circuit.Circuit
	var pending []func(*circuit.Circuit) error

	for {
		t := p.peek()
		if t.kind == tokEOF {
			break
		}
		if t.kind != tokIdent {
			return nil, p.errf(t, "expected statement, got %q", t.text)
		}
		switch t.text {
		case "include":
			p.advance()
			if s := p.advance(); s.kind != tokString {
				return nil, p.errf(s, "expected include path string")
			}
			if err := p.expectSymbol(";"); err != nil {
				return nil, err
			}
		case "qreg":
			p.advance()
			name, size, err := p.regDecl()
			if err != nil {
				return nil, err
			}
			p.regs = append(p.regs, qreg{name: name, offset: p.n, size: size})
			p.n += size
		case "creg":
			p.advance()
			if _, _, err := p.regDecl(); err != nil {
				return nil, err
			}
		case "gate":
			if err := p.gateDefStmt(); err != nil {
				return nil, err
			}
		case "opaque":
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return nil, err
			}
		case "barrier":
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return nil, err
			}
		case "measure", "reset":
			p.advance()
			if err := p.skipToSemicolon(); err != nil {
				return nil, err
			}
		default:
			fn, err := p.gateStmt(t)
			if err != nil {
				return nil, err
			}
			pending = append(pending, fn)
		}
	}
	if p.n == 0 {
		return nil, fmt.Errorf("qasm: no quantum registers declared")
	}
	c = circuit.New(p.n)
	for _, fn := range pending {
		if err := fn(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// regDecl parses `name[size];` after the qreg/creg keyword.
func (p *parser) regDecl() (string, int, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", 0, err
	}
	if err := p.expectSymbol("["); err != nil {
		return "", 0, err
	}
	sz := p.advance()
	if sz.kind != tokNumber {
		return "", 0, p.errf(sz, "expected register size")
	}
	size, err := strconv.Atoi(sz.text)
	if err != nil || size <= 0 {
		return "", 0, p.errf(sz, "invalid register size %q", sz.text)
	}
	if err := p.expectSymbol("]"); err != nil {
		return "", 0, err
	}
	if err := p.expectSymbol(";"); err != nil {
		return "", 0, err
	}
	return name.text, size, nil
}

func (p *parser) skipToSemicolon() error {
	for {
		t := p.advance()
		if t.kind == tokEOF {
			return p.errf(t, "unexpected end of input")
		}
		if t.kind == tokSymbol && t.text == ";" {
			return nil
		}
	}
}

// qubitRef parses `name[idx]` and returns the flattened qubit index.
func (p *parser) qubitRef() (int, error) {
	name, err := p.expectIdent()
	if err != nil {
		return 0, err
	}
	var reg *qreg
	for i := range p.regs {
		if p.regs[i].name == name.text {
			reg = &p.regs[i]
			break
		}
	}
	if reg == nil {
		return 0, p.errf(name, "unknown register %q", name.text)
	}
	if err := p.expectSymbol("["); err != nil {
		return 0, err
	}
	idx := p.advance()
	if idx.kind != tokNumber {
		return 0, p.errf(idx, "expected qubit index")
	}
	i, err := strconv.Atoi(idx.text)
	if err != nil || i < 0 || i >= reg.size {
		return 0, p.errf(idx, "qubit index %q out of range [0,%d)", idx.text, reg.size)
	}
	if err := p.expectSymbol("]"); err != nil {
		return 0, err
	}
	return reg.offset + i, nil
}

// gateStmt parses one gate application and returns a closure appending it.
func (p *parser) gateStmt(nameTok token) (func(*circuit.Circuit) error, error) {
	name := p.advance().text // the identifier itself

	// Optional parameter list.
	var params []float64
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		p.advance()
		for {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			params = append(params, v)
			t := p.advance()
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			if t.kind != tokSymbol || t.text != "," {
				return nil, p.errf(t, "expected ',' or ')' in parameter list")
			}
		}
	}

	// Qubit operands.
	var qubits []int
	for {
		q, err := p.qubitRef()
		if err != nil {
			return nil, err
		}
		qubits = append(qubits, q)
		t := p.advance()
		if t.kind == tokSymbol && t.text == ";" {
			break
		}
		if t.kind != tokSymbol || t.text != "," {
			return nil, p.errf(t, "expected ',' or ';' after qubit")
		}
	}

	if def, ok := p.macros[name]; ok {
		gates, err := p.expandMacro(def, params, qubits, 0)
		if err != nil {
			return nil, p.errf(nameTok, "%v", err)
		}
		return func(c *circuit.Circuit) error {
			for _, g := range gates {
				if err := c.Append(g); err != nil {
					return err
				}
			}
			return nil
		}, nil
	}
	g, err := buildGate(name, params, qubits)
	if err != nil {
		return nil, p.errf(nameTok, "%v", err)
	}
	return func(c *circuit.Circuit) error { return c.Append(g) }, nil
}

// buildGate translates a qelib1-style gate name into the circuit IR.
func buildGate(name string, params []float64, qubits []int) (circuit.Gate, error) {
	needParams := func(k int) error {
		if len(params) != k {
			return fmt.Errorf("gate %s needs %d parameters, has %d", name, k, len(params))
		}
		return nil
	}
	needQubits := func(k int) error {
		if len(qubits) != k {
			return fmt.Errorf("gate %s needs %d qubits, has %d", name, k, len(qubits))
		}
		return nil
	}
	switch name {
	case "u3", "u", "U":
		if err := needParams(3); err != nil {
			return circuit.Gate{}, err
		}
		if err := needQubits(1); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.U(qubits[0], params[0], params[1], params[2]), nil
	case "u2":
		if err := needParams(2); err != nil {
			return circuit.Gate{}, err
		}
		if err := needQubits(1); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.U(qubits[0], math.Pi/2, params[0], params[1]), nil
	case "u1":
		if err := needParams(1); err != nil {
			return circuit.Gate{}, err
		}
		if err := needQubits(1); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.U(qubits[0], 0, 0, params[0]), nil
	case "rz":
		if err := needParams(1); err != nil {
			return circuit.Gate{}, err
		}
		if err := needQubits(1); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.Rz(qubits[0], params[0]), nil
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "id":
		if err := needParams(0); err != nil {
			return circuit.Gate{}, err
		}
		if err := needQubits(1); err != nil {
			return circuit.Gate{}, err
		}
		switch name {
		case "h":
			return circuit.H(qubits[0]), nil
		case "x":
			return circuit.X(qubits[0]), nil
		case "y":
			return circuit.Y(qubits[0]), nil
		case "z":
			return circuit.Z(qubits[0]), nil
		case "s":
			return circuit.S(qubits[0]), nil
		case "sdg":
			return circuit.Sdg(qubits[0]), nil
		case "t":
			return circuit.T(qubits[0]), nil
		case "tdg":
			return circuit.Tdg(qubits[0]), nil
		default: // id
			return circuit.U(qubits[0], 0, 0, 0), nil
		}
	case "cx", "CX":
		if err := needQubits(2); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.CNOT(qubits[0], qubits[1]), nil
	case "swap":
		if err := needQubits(2); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.SWAP(qubits[0], qubits[1]), nil
	case "ccx":
		if err := needQubits(3); err != nil {
			return circuit.Gate{}, err
		}
		return circuit.MCT(qubits[:2], qubits[2]), nil
	}
	return circuit.Gate{}, fmt.Errorf("unsupported gate %q", name)
}

// expr parses a constant angle expression: + - * / over numbers and pi,
// with unary minus and parentheses.
func (p *parser) expr() (float64, error) {
	return p.addExpr()
}

func (p *parser) addExpr() (float64, error) {
	v, err := p.mulExpr()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return v, nil
		}
		p.advance()
		rhs, err := p.mulExpr()
		if err != nil {
			return 0, err
		}
		if t.text == "+" {
			v += rhs
		} else {
			v -= rhs
		}
	}
}

func (p *parser) mulExpr() (float64, error) {
	v, err := p.unaryExpr()
	if err != nil {
		return 0, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return v, nil
		}
		p.advance()
		rhs, err := p.unaryExpr()
		if err != nil {
			return 0, err
		}
		if t.text == "*" {
			v *= rhs
		} else {
			if rhs == 0 {
				return 0, p.errf(t, "division by zero in angle expression")
			}
			v /= rhs
		}
	}
}

func (p *parser) unaryExpr() (float64, error) {
	t := p.advance()
	switch {
	case t.kind == tokSymbol && t.text == "-":
		v, err := p.unaryExpr()
		return -v, err
	case t.kind == tokSymbol && t.text == "+":
		return p.unaryExpr()
	case t.kind == tokSymbol && t.text == "(":
		v, err := p.addExpr()
		if err != nil {
			return 0, err
		}
		return v, p.expectSymbol(")")
	case t.kind == tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, p.errf(t, "bad number %q", t.text)
		}
		return v, nil
	case t.kind == tokIdent && t.text == "pi":
		return math.Pi, nil
	}
	return 0, p.errf(t, "unexpected %q in angle expression", t.text)
}
