// Package qasm reads and writes the OpenQASM 2.0 subset used by the RevLib
// and IBM QX benchmark circuits: qreg/creg declarations, the standard
// qelib1 single-qubit gates (u1/u2/u3, h, x, y, z, s, sdg, t, tdg, rz), cx,
// swap and ccx, with constant angle expressions over pi. Barriers, measures
// and comments are accepted and ignored.
package qasm

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single-char punctuation: ; , ( ) [ ] { } + - * / ->
)

type token struct {
	kind tokenKind
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
	}
	return r
}

// next returns the next token, skipping whitespace and // comments.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.advance()
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	start := l.line
	r := l.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		var b strings.Builder
		for l.pos < len(l.src) {
			r := l.peekRune()
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			b.WriteRune(l.advance())
		}
		return token{kind: tokIdent, text: b.String(), line: start}, nil
	case unicode.IsDigit(r) || r == '.':
		var b strings.Builder
		seenE := false
		for l.pos < len(l.src) {
			r := l.peekRune()
			if unicode.IsDigit(r) || r == '.' {
				b.WriteRune(l.advance())
				continue
			}
			if (r == 'e' || r == 'E') && !seenE {
				seenE = true
				b.WriteRune(l.advance())
				if l.peekRune() == '+' || l.peekRune() == '-' {
					b.WriteRune(l.advance())
				}
				continue
			}
			break
		}
		return token{kind: tokNumber, text: b.String(), line: start}, nil
	case r == '"':
		l.advance()
		var b strings.Builder
		for l.pos < len(l.src) && l.peekRune() != '"' {
			b.WriteRune(l.advance())
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("qasm: line %d: unterminated string", start)
		}
		l.advance()
		return token{kind: tokString, text: b.String(), line: start}, nil
	case strings.ContainsRune(";,()[]{}+-*/", r):
		l.advance()
		// Recognize "->" used by measure statements.
		if r == '-' && l.peekRune() == '>' {
			l.advance()
			return token{kind: tokSymbol, text: "->", line: start}, nil
		}
		return token{kind: tokSymbol, text: string(r), line: start}, nil
	}
	return token{}, fmt.Errorf("qasm: line %d: unexpected character %q", start, r)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
