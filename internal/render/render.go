// Package render draws circuits and coupling maps as ASCII diagrams,
// regenerating the paper's illustrative figures (Figs. 1, 2, 3, 5) in
// textual form for documentation, examples and the benchmark harness.
package render

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// Circuit renders a circuit as one row per qubit with one column per gate,
// in the paper's visual conventions: single-qubit gates as letter boxes,
// CNOT controls as '*', targets as '@', with '|' connecting them.
func Circuit(c *circuit.Circuit) string {
	n := c.NumQubits()
	if n == 0 {
		return "(empty circuit)\n"
	}
	const colWidth = 4
	rows := make([][]byte, 2*n-1) // gate rows interleaved with link rows
	label := func(q int) string { return fmt.Sprintf("q%-2d ", q) }
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", len(label(0))))
		if i%2 == 0 {
			copy(rows[i], label(i/2))
		}
	}
	appendCol := func(cells map[int]string, links map[int]bool) {
		for i := range rows {
			var cell string
			if i%2 == 0 {
				q := i / 2
				if s, ok := cells[q]; ok {
					cell = s
				} else {
					cell = "-"
				}
				cell = padCenter(cell, colWidth, '-')
			} else {
				if links[i/2] { // link between qubit i/2 and i/2+1
					cell = padCenter("|", colWidth, ' ')
				} else {
					cell = strings.Repeat(" ", colWidth)
				}
			}
			rows[i] = append(rows[i], cell...)
		}
	}
	for _, g := range c.Gates() {
		cells := map[int]string{}
		links := map[int]bool{}
		mark := func(lo, hi int) {
			for k := lo; k < hi; k++ {
				links[k] = true
			}
		}
		switch {
		case g.Kind.IsSingleQubit():
			name := strings.ToUpper(g.Kind.String())
			if g.Kind == circuit.KindU {
				name = "U"
			}
			cells[g.Qubits[0]] = name
		case g.Kind == circuit.KindCNOT:
			cells[g.Qubits[0]] = "*"
			cells[g.Qubits[1]] = "@"
			lo, hi := minMax(g.Qubits[0], g.Qubits[1])
			mark(lo, hi)
		case g.Kind == circuit.KindSWAP:
			cells[g.Qubits[0]] = "x"
			cells[g.Qubits[1]] = "x"
			lo, hi := minMax(g.Qubits[0], g.Qubits[1])
			mark(lo, hi)
		case g.Kind == circuit.KindMCT:
			for _, q := range g.Controls() {
				cells[q] = "*"
			}
			cells[g.Target()] = "@"
			lo, hi := g.Qubits[0], g.Qubits[0]
			for _, q := range g.Qubits {
				if q < lo {
					lo = q
				}
				if q > hi {
					hi = q
				}
			}
			mark(lo, hi)
		}
		appendCol(cells, links)
	}
	var b strings.Builder
	if c.Name() != "" {
		fmt.Fprintf(&b, "circuit %s:\n", c.Name())
	}
	for _, r := range rows {
		b.Write(r)
		b.WriteByte('\n')
	}
	return b.String()
}

func minMax(a, b int) (int, int) {
	if a < b {
		return a, b
	}
	return b, a
}

func padCenter(s string, width int, fill byte) string {
	pad := width - len(s)
	if pad <= 0 {
		return s[:width]
	}
	left := pad / 2
	return strings.Repeat(string(fill), left) + s + strings.Repeat(string(fill), pad-left)
}

// Coupling renders an architecture's directed coupling map (paper Fig. 2)
// as an arrow list plus degree summary.
func Coupling(a *arch.Arch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s coupling map (control -> target):\n", a.Name())
	for _, p := range a.Pairs() {
		fmt.Fprintf(&b, "  p%d -> p%d\n", p.Control, p.Target)
	}
	fmt.Fprintf(&b, "%d physical qubits, %d directed couplings\n", a.NumQubits(), len(a.Pairs()))
	return b.String()
}

// Mapping renders a logical→physical assignment.
func Mapping(mp []int) string {
	parts := make([]string, len(mp))
	for j, i := range mp {
		parts[j] = fmt.Sprintf("q%d->p%d", j, i)
	}
	return strings.Join(parts, " ")
}

// CouplingDOT renders the coupling map in Graphviz DOT format, for users
// who want a visual rendition of paper Fig. 2 (dot -Tpng …).
func CouplingDOT(a *arch.Arch) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name())
	b.WriteString("  rankdir=LR;\n  node [shape=circle];\n")
	for _, p := range a.Pairs() {
		fmt.Fprintf(&b, "  p%d -> p%d;\n", p.Control, p.Target)
	}
	b.WriteString("}\n")
	return b.String()
}
