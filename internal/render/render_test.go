package render

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

func TestCircuitFigure1a(t *testing.T) {
	out := Circuit(circuit.Figure1a())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 qubit rows + 3 link rows.
	if len(lines) != 8 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "q0") || !strings.Contains(out, "q3") {
		t.Errorf("missing qubit labels:\n%s", out)
	}
	if !strings.Contains(out, "H") || !strings.Contains(out, "T") {
		t.Errorf("missing single-qubit boxes:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "@") {
		t.Errorf("missing CNOT marks:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Errorf("missing link marks:\n%s", out)
	}
}

func TestCircuitAllKinds(t *testing.T) {
	c := circuit.New(3).
		AddU(0, 1, 2, 3).AddSWAP(0, 2).AddMCT([]int{0, 1}, 2)
	out := Circuit(c)
	if !strings.Contains(out, "U") || !strings.Contains(out, "x") {
		t.Errorf("missing U/swap marks:\n%s", out)
	}
	// Rows must all have equal width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[0]) {
			t.Fatalf("ragged row %d:\n%s", i, out)
		}
	}
}

func TestCircuitEmpty(t *testing.T) {
	if out := Circuit(circuit.New(0)); !strings.Contains(out, "empty") {
		t.Errorf("empty render = %q", out)
	}
}

func TestCoupling(t *testing.T) {
	out := Coupling(arch.QX4())
	for _, want := range []string{"ibmqx4", "p1 -> p0", "p3 -> p4", "5 physical qubits", "6 directed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMapping(t *testing.T) {
	if got := Mapping([]int{2, 0}); got != "q0->p2 q1->p0" {
		t.Errorf("Mapping = %q", got)
	}
}

func TestCouplingDOT(t *testing.T) {
	out := CouplingDOT(arch.QX4())
	for _, want := range []string{"digraph", "p1 -> p0", "p4 -> p2", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}
