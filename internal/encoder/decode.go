package encoder

import (
	"fmt"

	"repro/internal/perm"
	"repro/internal/sat"
)

// Solution is the decoded content of a satisfying assignment: everything
// needed to materialize the mapped circuit (paper Fig. 5).
type Solution struct {
	// Cost is F: the total number of elementary operations added.
	Cost int
	// FrameMappings[f] is the logical→physical mapping active during
	// frame f; FrameMappings[0] is the initial mapping.
	FrameMappings []perm.Mapping
	// GateFrame[k] is the frame of skeleton gate k.
	GateFrame []int
	// Perms[t] is the physical-state permutation applied between frames t
	// and t+1, with PermSwaps[t] the SWAP count of its chosen realization:
	// swaps(π) under the paper model, the length of the cheapest weighted
	// swap path under a non-uniform cost model.
	Perms     []perm.Perm
	PermSwaps []int
	// Switched[k] reports whether skeleton gate k is executed with
	// reversed direction (4 inserted H gates).
	Switched []bool
}

// MappingBeforeGate returns the active mapping just before skeleton gate k.
func (s *Solution) MappingBeforeGate(k int) perm.Mapping {
	return s.FrameMappings[s.GateFrame[k]]
}

// FinalMapping returns the mapping after the last gate.
func (s *Solution) FinalMapping() perm.Mapping {
	return s.FrameMappings[len(s.FrameMappings)-1]
}

// SwapCount returns the total number of SWAP operations inserted.
func (s *Solution) SwapCount() int {
	total := 0
	for _, sw := range s.PermSwaps {
		total += sw
	}
	return total
}

// SwitchCount returns the number of direction-switched CNOTs.
func (s *Solution) SwitchCount() int {
	total := 0
	for _, sw := range s.Switched {
		if sw {
			total++
		}
	}
	return total
}

// Decode reads the solver model into a Solution, validating internal
// consistency (well-formed mappings, permutation links, recomputed cost).
// It must only be called after the underlying solver returned Sat.
func (e *Encoding) Decode() (*Solution, error) {
	n := e.prob.Skeleton.NumQubits
	m := e.prob.Arch.NumQubits()
	sol := &Solution{GateFrame: append([]int(nil), e.gateFrame...)}

	for f := range e.X {
		mp := make(perm.Mapping, n)
		for j := 0; j < n; j++ {
			mp[j] = -1
			for i := 0; i < m; i++ {
				if e.litTrue(e.X[f][i][j]) {
					if mp[j] != -1 {
						return nil, fmt.Errorf("encoder: frame %d maps q%d twice", f, j)
					}
					mp[j] = i
				}
			}
			if mp[j] == -1 {
				return nil, fmt.Errorf("encoder: frame %d leaves q%d unmapped", f, j)
			}
		}
		if !mp.Valid(m) {
			return nil, fmt.Errorf("encoder: frame %d mapping %v not injective", f, mp)
		}
		sol.FrameMappings = append(sol.FrameMappings, mp)
	}

	cost := 0
	for t, ys := range e.Y {
		chosen := -1
		for pi, y := range ys {
			if e.litTrue(y) {
				if chosen != -1 {
					return nil, fmt.Errorf("encoder: perm point %d selects two permutations", t)
				}
				chosen = pi
			}
		}
		if chosen == -1 {
			return nil, fmt.Errorf("encoder: perm point %d selects no permutation", t)
		}
		pp := e.perms[chosen]
		// The selected permutation must transform frame t into frame t+1.
		if got := sol.FrameMappings[t].ApplyPerm(pp); !got.Equal(sol.FrameMappings[t+1]) {
			return nil, fmt.Errorf("encoder: perm point %d: π%v maps %v to %v, frame has %v",
				t, pp, sol.FrameMappings[t], got, sol.FrameMappings[t+1])
		}
		sol.Perms = append(sol.Perms, pp.Copy())
		sol.PermSwaps = append(sol.PermSwaps, e.permSw[chosen])
		cost += e.permW[chosen]
	}

	for k := range e.Z {
		sw := e.litTrue(e.Z[k])
		sol.Switched = append(sol.Switched, sw)
		// Verify executability against the coupling map.
		g := e.prob.Skeleton.Gates[k]
		mp := sol.MappingBeforeGate(k)
		pc, pt := mp[g.Control], mp[g.Target]
		if sw {
			// The gate executes reversed on coupling pair (pt, pc): charge
			// that pair's direction-switch weight (4 in the paper model).
			cost += e.cm.HWeight(pt, pc)
			if !e.prob.Arch.Allows(pt, pc) {
				return nil, fmt.Errorf("encoder: gate %d switched but (%d,%d) not in CM", k, pt, pc)
			}
		} else if !e.prob.Arch.Allows(pc, pt) {
			return nil, fmt.Errorf("encoder: gate %d forward but (%d,%d) not in CM", k, pc, pt)
		}
	}

	sol.Cost = cost
	if fromBits := e.B.Value(e.CostBits); fromBits != cost {
		return nil, fmt.Errorf("encoder: cost bits say %d, recomputed %d", fromBits, cost)
	}
	return sol, nil
}

func (e *Encoding) litTrue(l sat.Lit) bool {
	v := e.B.S.Value(l.Var())
	if !l.IsPos() {
		v = !v
	}
	return v
}
