// Package encoder builds the paper's symbolic formulation of the mapping
// problem (§3.2, Definitions 4–5, Equations 1–5) as a CNF instance.
//
// Mapping variables x^k_ij state that, before CNOT gate k, logical qubit j
// is mapped to physical qubit i. Permutation variables y^k_π select which
// permutation of physical-qubit states is applied before gate k, and
// switching variables z^k record whether gate k's CNOT direction must be
// reversed (at a cost of 4 H gates). The cost function
//
//	F = Σ_k Σ_π 7·swaps(π)·y^k_π + Σ_k 4·z^k          (Eq. 5)
//
// is materialized as a binary adder tree; minimality is obtained by the
// driver in internal/exact via iterative bound tightening.
//
// Consecutive gates between which no permutation is allowed share one
// x-variable frame, so restricting the permutation points G' (paper §4.2)
// directly shrinks the encoding.
package encoder

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/perm"
	"repro/internal/sat"
)

// SwapCost and HCost are the paper's cost-model constants: a SWAP
// decomposes into 7 elementary gates, a direction switch into 4 H gates
// (paper §2.2, Fig. 3). They are the default weights of arch.CostModel;
// every cost computed here flows through the model attached to the
// problem's architecture, so a calibration-weighted model changes the
// objective while the paper model reproduces these constants exactly.
const (
	SwapCost = arch.PaperSwapUnit
	HCost    = arch.PaperHUnit
)

// Problem is one mapping instance to encode.
type Problem struct {
	Skeleton *circuit.Skeleton
	Arch     *arch.Arch
	// PermBefore[k] reports whether the mapping may change (a permutation
	// may be inserted) immediately before skeleton gate k. Index 0 is
	// ignored: the initial mapping is free (paper §3.2). A nil slice means
	// permutations are allowed before every gate — the minimality-
	// guaranteeing configuration of §3.
	PermBefore []bool
	// InitialMapping, when non-nil, pins the layout at the very start of
	// the circuit (before any inserted SWAPs) instead of leaving it to the
	// solver — an extension for mapping circuit fragments whose
	// predecessor already placed the qubits. A permutation point is then
	// allowed before the first gate, so the solver may route away from the
	// pin at the usual SWAP cost.
	InitialMapping perm.Mapping
}

// Encoding is the CNF materialization of a Problem.
type Encoding struct {
	B *cnf.Builder

	prob   Problem
	cm     *arch.CostModel         // cost model (nil = paper 7/4)
	space  *perm.Space             // full permutation space (n = m) for swaps(π)
	swaps  *perm.SwapTable         // swap-distance table (uniform swap weights)
	wswaps *perm.WeightedSwapTable // weighted table (non-uniform swap weights)
	perms  []perm.Perm             // Π, indexed as in Y
	permSw []int                   // SWAP count of the chosen realization of π
	permW  []int                   // weighted cost of π (SwapCost·permSw when uniform)
	// gateRev[k][p] is the "gate k sits reversed on coupling pair p" literal
	// (aligned with Arch.Pairs()), kept for per-pair H-weight cost terms.
	gateRev [][]sat.Lit

	// frames[f] = index of the first skeleton gate of frame f; gates of
	// frame f are [frames[f], frames[f+1]) (last frame ends at |G|).
	frames []int
	// gateFrame[k] = frame index of skeleton gate k.
	gateFrame []int

	// X[f][i][j]: in frame f, logical qubit j sits on physical qubit i.
	X [][][]sat.Lit
	// Y[t][p]: permutation p (index into perms) is applied at permutation
	// point t, which sits between frames t and t+1.
	Y [][]sat.Lit
	// Z[k]: skeleton gate k is executed with switched direction.
	Z []sat.Lit

	// CostBits is the binary value of F.
	CostBits cnf.BitVec
	// MaxCost is the largest value F can take in this encoding.
	MaxCost int

	// costGuards memoizes the activation literal per bound handed out by
	// CostAtMostLit, so repeated probes of the same bound reuse both the
	// guard variable and its clauses; guardBounds is the reverse index, so
	// an unsat core over guard assumptions can be mapped back to the bounds
	// it refutes (GuardBound).
	costGuards  map[int]sat.Lit
	guardBounds map[sat.Lit]int
}

// Encode builds the CNF instance for the problem on the given builder. The
// context is checked between construction phases and while the permutation
// links — the dominant share of the clauses — are generated, so encoding a
// large instance under an already-expired deadline aborts promptly with
// ctx.Err().
func Encode(ctx context.Context, p Problem, b *cnf.Builder) (*Encoding, error) {
	n := p.Skeleton.NumQubits
	m := p.Arch.NumQubits()
	if n > m {
		return nil, fmt.Errorf("encoder: circuit has %d logical qubits but %s has only %d physical", n, p.Arch, m)
	}
	if n == 0 || p.Skeleton.Len() == 0 {
		return nil, fmt.Errorf("encoder: empty problem (n=%d, gates=%d)", n, p.Skeleton.Len())
	}
	if p.PermBefore != nil && len(p.PermBefore) != p.Skeleton.Len() {
		return nil, fmt.Errorf("encoder: PermBefore has %d entries for %d gates", len(p.PermBefore), p.Skeleton.Len())
	}
	if m > 6 {
		return nil, fmt.Errorf("encoder: exhaustive permutation enumeration infeasible for m=%d physical qubits; restrict to a subset first (paper §4.1)", m)
	}
	if p.InitialMapping != nil && (len(p.InitialMapping) != n || !p.InitialMapping.Valid(m)) {
		return nil, fmt.Errorf("encoder: invalid initial mapping %v for n=%d, m=%d", p.InitialMapping, n, m)
	}

	e := &Encoding{B: b, prob: p, cm: p.Arch.Cost()}
	e.space = perm.NewSpace(m, m)
	if e.cm.UniformSwap() {
		e.swaps = perm.NewSwapTable(e.space, p.Arch.UndirectedEdges())
		for _, pp := range perm.All(m) {
			sw := e.swaps.PermSwaps(pp)
			e.perms = append(e.perms, pp)
			e.permSw = append(e.permSw, sw)
			if sw > 0 {
				e.permW = append(e.permW, e.cm.SwapUnit()*sw)
			} else {
				e.permW = append(e.permW, sw)
			}
		}
	} else {
		e.wswaps = perm.NewWeightedSwapTable(e.space, p.Arch.UndirectedEdges(), e.cm.EdgeSwapWeight)
		for _, pp := range perm.All(m) {
			e.perms = append(e.perms, pp)
			e.permSw = append(e.permSw, e.wswaps.PermSwapsAlong(pp))
			e.permW = append(e.permW, e.wswaps.PermWeight(pp))
		}
	}

	e.buildFrames()
	e.buildMappingVars()
	e.pinInitialMapping()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.buildGateConstraints()
	if err := e.buildPermutationLinks(ctx); err != nil {
		return nil, err
	}
	e.buildCost()
	return e, nil
}

// PermAllowed reports whether a permutation may occur before gate k.
// Index 0 always reports false: the initial mapping is free rather than
// produced by a permutation.
func (p Problem) PermAllowed(k int) bool {
	if k == 0 {
		return false // initial mapping is free; no permutation "before" g1
	}
	if p.PermBefore == nil {
		return true
	}
	return p.PermBefore[k]
}

func (e *Encoding) buildFrames() {
	e.gateFrame = make([]int, e.prob.Skeleton.Len())
	if e.prob.InitialMapping != nil {
		// Virtual gate-free frame holding the pinned layout, separated
		// from the first gate's frame by a permutation point.
		e.frames = append(e.frames, -1)
	}
	for k := 0; k < e.prob.Skeleton.Len(); k++ {
		if k == 0 || e.prob.PermAllowed(k) {
			e.frames = append(e.frames, k)
		}
		e.gateFrame[k] = len(e.frames) - 1
	}
}

// NumFrames returns the number of distinct x-variable frames.
func (e *Encoding) NumFrames() int { return len(e.frames) }

// NumPermPoints returns |G'| + 0: the number of places a permutation may be
// inserted (paper column |G'|; one per frame boundary).
func (e *Encoding) NumPermPoints() int { return len(e.frames) - 1 }

func (e *Encoding) buildMappingVars() {
	n := e.prob.Skeleton.NumQubits
	m := e.prob.Arch.NumQubits()
	e.X = make([][][]sat.Lit, len(e.frames))
	for f := range e.X {
		e.X[f] = make([][]sat.Lit, m)
		for i := 0; i < m; i++ {
			e.X[f][i] = make([]sat.Lit, n)
			for j := 0; j < n; j++ {
				e.X[f][i][j] = e.B.NewLit()
			}
		}
		// Eq. (1): each logical qubit on exactly one physical qubit...
		for j := 0; j < n; j++ {
			col := make([]sat.Lit, m)
			for i := 0; i < m; i++ {
				col[i] = e.X[f][i][j]
			}
			e.B.ExactlyOne(col...)
		}
		// ...and each physical qubit holds at most one logical qubit.
		for i := 0; i < m; i++ {
			e.B.AtMostOne(e.X[f][i]...)
		}
	}
}

// pinInitialMapping adds unit clauses fixing frame 0 when the problem
// specifies a fixed initial mapping.
func (e *Encoding) pinInitialMapping() {
	if e.prob.InitialMapping == nil {
		return
	}
	for j, i := range e.prob.InitialMapping {
		e.B.AddClause(e.X[0][i][j])
	}
}

// buildGateConstraints adds Eq. (2) (executability) and Eq. (4) (direction
// switching) for every skeleton gate.
func (e *Encoding) buildGateConstraints() {
	e.Z = make([]sat.Lit, e.prob.Skeleton.Len())
	e.gateRev = make([][]sat.Lit, e.prob.Skeleton.Len())
	for k, g := range e.prob.Skeleton.Gates {
		x := e.X[e.gateFrame[k]]
		var fwds, revs []sat.Lit
		for _, pr := range e.prob.Arch.Pairs() {
			// Forward: control on pr.Control, target on pr.Target.
			fwds = append(fwds, e.B.And(x[pr.Control][g.Control], x[pr.Target][g.Target]))
			// Reversed: control/target switched relative to the coupling
			// entry — executable after inserting 4 H gates.
			revs = append(revs, e.B.And(x[pr.Control][g.Target], x[pr.Target][g.Control]))
		}
		fwd := e.B.Or(fwds...)
		rev := e.B.Or(revs...)
		// Eq. (2): some orientation must be executable.
		e.B.AddClause(fwd, rev)
		// Eq. (4): the direction is switched exactly when the forward
		// orientation is not available. (On the antisymmetric IBM coupling
		// maps this is equivalent to the paper's z ↔ rev; for architectures
		// with bidirectional couplings it correctly avoids charging 4 H
		// when the forward direction works.)
		z := e.B.And(rev, fwd.Not())
		e.Z[k] = z
		e.gateRev[k] = revs
	}
}

// buildPermutationLinks adds Eq. (3): the y^k_π selectors and their
// consistency with adjacent x frames. Following footnote 5, the implication
// is left-handed (y → consistency) combined with an exactly-one constraint,
// which also handles n < m, where the permutation on unoccupied physical
// qubits is not determined by the mappings.
func (e *Encoding) buildPermutationLinks(ctx context.Context) error {
	n := e.prob.Skeleton.NumQubits
	m := e.prob.Arch.NumQubits()
	e.Y = make([][]sat.Lit, e.NumPermPoints())
	for t := 0; t < e.NumPermPoints(); t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		before, after := e.X[t], e.X[t+1]
		ys := make([]sat.Lit, len(e.perms))
		for pi, pp := range e.perms {
			y := e.B.NewLit()
			ys[pi] = y
			if e.permSw[pi] < 0 {
				// Unrealizable permutation (disconnected graph).
				e.B.AddClause(y.Not())
				continue
			}
			// y → (x^{k-1}_ij ↔ x^k_{π(i)j}) for all i, j.
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					e.B.AddClause(y.Not(), before[i][j].Not(), after[pp[i]][j])
					e.B.AddClause(y.Not(), before[i][j], after[pp[i]][j].Not())
				}
			}
		}
		e.B.ExactlyOne(ys...)
		e.Y[t] = ys
	}
	return nil
}

// buildCost assembles Eq. (5) as a bit vector, generalized to the cost
// model: each permutation selector contributes its (possibly weighted)
// realization cost, each switched gate its direction-switch weight. Under
// the paper model this is exactly 7·swaps(π) per selector and 4 per
// switch, producing the identical CNF as before the model existed.
func (e *Encoding) buildCost() {
	maxSwap := 0
	costs := make([]int, len(e.perms))
	for pi, w := range e.permW {
		if w > 0 {
			costs[pi] = w
			if w > maxSwap {
				maxSwap = w
			}
		}
	}
	uniformH := e.cm.UniformH()
	maxH := e.cm.HUnit()
	if !uniformH {
		maxH = e.cm.MaxHWeight(e.prob.Arch.Pairs())
	}
	e.MaxCost = e.NumPermPoints()*maxSwap + len(e.Z)*maxH
	width := cnf.Width(e.MaxCost)

	var vecs []cnf.BitVec
	for _, ys := range e.Y {
		vecs = append(vecs, e.B.SelectConst(ys, costs, width))
	}
	for k, z := range e.Z {
		if uniformH {
			vecs = append(vecs, e.B.ScaleByLit(z, e.cm.HUnit(), width))
		} else {
			vecs = append(vecs, e.gateHCostVec(k, width))
		}
	}
	e.CostBits = e.B.SumVecs(vecs)
}

// gateHCostVec builds the switch-cost vector of gate k under per-pair H
// weights: the gate's logical pair occupies exactly one coupling pair, and
// at most one of the gateRev literals is true (the mapping is injective),
// so conditioned on Z[k] the vector selects the hosting pair's weight —
// a per-gate SelectConst over z∧rev_p terms.
func (e *Encoding) gateHCostVec(k, width int) cnf.BitVec {
	pairs := e.prob.Arch.Pairs()
	zrev := make([]sat.Lit, len(pairs))
	weights := make([]int, len(pairs))
	for p, pr := range pairs {
		zrev[p] = e.B.And(e.Z[k], e.gateRev[k][p])
		weights[p] = e.cm.HWeight(pr.Control, pr.Target)
	}
	return e.B.SelectConst(zrev, weights, width)
}

// AssertCostAtMost permanently adds the constraint F ≤ bound. Successive
// calls must use non-increasing bounds (a permanently tightened instance
// cannot be relaxed). The incremental minimization driver uses
// CostAtMostLit instead, which leaves the instance reusable.
func (e *Encoding) AssertCostAtMost(bound int) {
	e.B.AssertLessEqConst(e.CostBits, bound)
}

// CostAtMostLit returns an activation literal g encoding g → (F ≤ bound).
// Passing g as a Solve assumption enforces the bound for that call only:
// an UNSAT probe does not poison the instance, and learnt clauses survive
// across probes of different bounds — the incremental §3.3 descent in
// internal/exact drives every probe through these guards on one solver.
// Guards are memoized per bound. A bound ≥ MaxCost is vacuous and returns
// the constant-true literal.
func (e *Encoding) CostAtMostLit(bound int) sat.Lit {
	if bound >= e.MaxCost {
		return e.B.True()
	}
	if g, ok := e.costGuards[bound]; ok {
		return g
	}
	g := e.B.LessEqConstGuard(e.CostBits, bound)
	if e.costGuards == nil {
		e.costGuards = make(map[int]sat.Lit)
		e.guardBounds = make(map[sat.Lit]int)
	}
	e.costGuards[bound] = g
	e.guardBounds[g] = bound
	return g
}

// GuardBound maps a guard literal minted by CostAtMostLit back to the bound
// it activates. The incremental descent uses it to translate an unsat core
// over guard assumptions into the tightest cost bound the conflict actually
// refuted. Non-guard literals (including the vacuous constant-true literal
// returned for bounds ≥ MaxCost) report false.
func (e *Encoding) GuardBound(g sat.Lit) (int, bool) {
	b, ok := e.guardBounds[g]
	return b, ok
}
