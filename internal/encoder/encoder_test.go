package encoder

import (
	"context"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/sat"
)

var bg = context.Background()

// mkSkeleton builds a skeleton from (control, target) pairs.
func mkSkeleton(n int, pairs ...[2]int) *circuit.Skeleton {
	sk := &circuit.Skeleton{NumQubits: n}
	for i, p := range pairs {
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: p[0], Target: p[1], Index: i})
	}
	return sk
}

// encode is a test helper building a fresh solver + encoding.
func encode(t *testing.T, p Problem) (*sat.Solver, *Encoding) {
	t.Helper()
	s := sat.NewSolver()
	b := cnf.NewBuilder(s)
	e, err := Encode(bg, p, b)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return s, e
}

// minimize drives the bound-tightening loop and returns the minimal cost.
func minimize(t *testing.T, s *sat.Solver, e *Encoding) (*Solution, int) {
	t.Helper()
	if s.Solve() != sat.Sat {
		return nil, -1
	}
	best, err := e.Decode()
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for best.Cost > 0 {
		e.AssertCostAtMost(best.Cost - 1)
		if s.Solve() != sat.Sat {
			break
		}
		sol, err := e.Decode()
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if sol.Cost >= best.Cost {
			t.Fatalf("cost did not decrease: %d → %d", best.Cost, sol.Cost)
		}
		best = sol
	}
	return best, best.Cost
}

func TestEncodeErrors(t *testing.T) {
	b := cnf.NewBuilder(sat.NewSolver())
	qx4 := arch.QX4()
	if _, err := Encode(bg, Problem{Skeleton: mkSkeleton(6, [2]int{0, 1}), Arch: qx4}, b); err == nil {
		t.Error("n > m should fail")
	}
	if _, err := Encode(bg, Problem{Skeleton: mkSkeleton(2), Arch: qx4}, b); err == nil {
		t.Error("empty skeleton should fail")
	}
	if _, err := Encode(bg, Problem{Skeleton: mkSkeleton(2, [2]int{0, 1}), Arch: arch.QX5()}, b); err == nil {
		t.Error("m=16 should be rejected (needs subset restriction)")
	}
	bad := Problem{Skeleton: mkSkeleton(2, [2]int{0, 1}), Arch: qx4, PermBefore: []bool{true, true}}
	if _, err := Encode(bg, bad, b); err == nil {
		t.Error("wrong PermBefore length should fail")
	}
}

func TestFigure4VariableCounts(t *testing.T) {
	// Paper Fig. 4 / Example 8: mapping the 4-qubit, 5-CNOT example to QX4
	// uses n·m·|G| = 4·5·5 = 100 mapping variables (5 frames of 20).
	_, e := encode(t, Problem{Skeleton: circuit.Figure1b(), Arch: arch.QX4()})
	if e.NumFrames() != 5 {
		t.Errorf("frames = %d, want 5", e.NumFrames())
	}
	if e.NumPermPoints() != 4 {
		t.Errorf("perm points = %d, want 4", e.NumPermPoints())
	}
	xVars := 0
	for _, frame := range e.X {
		for _, row := range frame {
			xVars += len(row)
		}
	}
	if xVars != 100 {
		t.Errorf("x variables = %d, want 100", xVars)
	}
	if len(e.Z) != 5 {
		t.Errorf("z variables = %d, want 5", len(e.Z))
	}
	for _, ys := range e.Y {
		if len(ys) != 120 {
			t.Errorf("y variables per point = %d, want 120 (5!)", len(ys))
		}
	}
}

func TestSingleCNOTZeroCost(t *testing.T) {
	// One CNOT: the initial mapping can always place control/target on a
	// coupled pair in forward orientation → cost 0.
	s, e := encode(t, Problem{Skeleton: mkSkeleton(2, [2]int{0, 1}), Arch: arch.QX4()})
	sol, cost := minimize(t, s, e)
	if cost != 0 {
		t.Fatalf("cost = %d, want 0", cost)
	}
	if sol.SwapCount() != 0 || sol.SwitchCount() != 0 {
		t.Errorf("swaps=%d switches=%d", sol.SwapCount(), sol.SwitchCount())
	}
	// The initial mapping must place the pair on an allowed coupling.
	mp := sol.FrameMappings[0]
	if !arch.QX4().Allows(mp[0], mp[1]) {
		t.Errorf("initial mapping %v not forward-executable", mp)
	}
}

func TestOppositeCNOTsNeedFourH(t *testing.T) {
	// CNOT(a,b) then CNOT(b,a): one of them must be direction-switched on
	// an antisymmetric coupling map; switching costs 4, a SWAP would cost 7.
	sk := mkSkeleton(2, [2]int{0, 1}, [2]int{1, 0})
	s, e := encode(t, Problem{Skeleton: sk, Arch: arch.QX4()})
	sol, cost := minimize(t, s, e)
	if cost != HCost {
		t.Fatalf("cost = %d, want %d", cost, HCost)
	}
	if sol.SwitchCount() != 1 || sol.SwapCount() != 0 {
		t.Errorf("swaps=%d switches=%d, want 0,1", sol.SwapCount(), sol.SwitchCount())
	}
}

func TestFigure5MinimalCostIsFour(t *testing.T) {
	// Paper Example 7 / Fig. 5: the running example maps to QX4 with
	// minimal cost F = 4.
	s, e := encode(t, Problem{Skeleton: circuit.Figure1b(), Arch: arch.QX4()})
	_, cost := minimize(t, s, e)
	if cost != 4 {
		t.Fatalf("minimal cost = %d, want 4 (paper Example 7)", cost)
	}
}

func TestThreeQubitOnFiveQubitArch(t *testing.T) {
	// n < m exercises footnote 5 (left-handed implication + exactly-one).
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	s, e := encode(t, Problem{Skeleton: sk, Arch: arch.QX4()})
	sol, cost := minimize(t, s, e)
	if cost < 0 {
		t.Fatal("unsatisfiable")
	}
	// A 3-cycle of CNOTs fits on a QX4 triangle; at most direction fixes.
	if sol.SwapCount() != 0 {
		t.Errorf("swaps = %d, want 0 (triangle placement exists)", sol.SwapCount())
	}
	if cost > 3*HCost {
		t.Errorf("cost = %d, want ≤ %d", cost, 3*HCost)
	}
}

func TestNoPermutationsMayBeUnsat(t *testing.T) {
	// K4 interaction graph cannot be hosted by any fixed mapping on QX4
	// (no 4 physical qubits are pairwise coupled), so with all permutation
	// points disabled the instance is unsatisfiable.
	sk := mkSkeleton(4,
		[2]int{0, 1}, [2]int{2, 3}, [2]int{0, 2},
		[2]int{1, 3}, [2]int{0, 3}, [2]int{1, 2})
	noPerms := make([]bool, sk.Len())
	s, _ := encode(t, Problem{Skeleton: sk, Arch: arch.QX4(), PermBefore: noPerms})
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("fixed-mapping K4 = %v, want UNSAT", got)
	}
	// With permutations allowed the same instance is satisfiable.
	s2, e2 := encode(t, Problem{Skeleton: sk, Arch: arch.QX4()})
	_, cost := minimize(t, s2, e2)
	if cost < 0 {
		t.Fatal("K4 with permutations should be satisfiable")
	}
	if cost == 0 {
		t.Error("K4 cannot be free")
	}
}

func TestPermBeforeReducesFrames(t *testing.T) {
	sk := circuit.Figure1b()
	// Permutations only before gate 2 (paper Example 10, qubit triangle
	// G' = {g2} — 0-based gate index 1).
	pb := make([]bool, sk.Len())
	pb[1] = true
	_, e := encode(t, Problem{Skeleton: sk, Arch: arch.QX4(), PermBefore: pb})
	if e.NumFrames() != 2 {
		t.Errorf("frames = %d, want 2", e.NumFrames())
	}
	if e.NumPermPoints() != 1 {
		t.Errorf("perm points = %d, want 1", e.NumPermPoints())
	}
}

func TestRestrictedStrategiesStillFindFour(t *testing.T) {
	// Paper Example 10: all three G' strategies still achieve F = 4 on the
	// running example.
	sk := circuit.Figure1b()
	cases := map[string][]int{
		"disjoint": {2, 3, 4}, // G' = {g3, g4, g5}
		"odd":      {2, 4},    // G' = {g3, g5}
		"triangle": {1},       // G' = {g2}
	}
	for name, gprime := range cases {
		pb := make([]bool, sk.Len())
		for _, k := range gprime {
			pb[k] = true
		}
		s, e := encode(t, Problem{Skeleton: sk, Arch: arch.QX4(), PermBefore: pb})
		_, cost := minimize(t, s, e)
		if cost != 4 {
			t.Errorf("%s strategy: cost = %d, want 4", name, cost)
		}
	}
}

func TestDecodedSolutionInternallyConsistent(t *testing.T) {
	sk := mkSkeleton(4,
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0}, [2]int{0, 2})
	s, e := encode(t, Problem{Skeleton: sk, Arch: arch.QX4()})
	sol, cost := minimize(t, s, e)
	if cost < 0 {
		t.Fatal("unsat")
	}
	// Decode already validates perm links and coupling compliance; check
	// the cost bookkeeping identity.
	if sol.Cost != SwapCost*sol.SwapCount()+HCost*sol.SwitchCount() {
		t.Errorf("cost identity violated: %d vs 7·%d+4·%d", sol.Cost, sol.SwapCount(), sol.SwitchCount())
	}
	if len(sol.Switched) != sk.Len() {
		t.Errorf("Switched length %d", len(sol.Switched))
	}
	if !sol.FinalMapping().Valid(5) {
		t.Error("final mapping invalid")
	}
}

func TestMaxCostBoundIsSat(t *testing.T) {
	// Asserting F ≤ MaxCost must not change satisfiability, and the
	// decoded cost always fits the advertised bound.
	s, e := encode(t, Problem{Skeleton: circuit.Figure1b(), Arch: arch.QX4()})
	e.AssertCostAtMost(e.MaxCost)
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("bounded by MaxCost: %v", got)
	}
	sol, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost > e.MaxCost {
		t.Errorf("cost %d exceeds MaxCost %d", sol.Cost, e.MaxCost)
	}
}

func TestPinnedInitialMappingEncoding(t *testing.T) {
	// Pinning creates a leading frame and permutation point.
	pin := []int{4, 2, 0, 3}
	_, e := encode(t, Problem{
		Skeleton:       circuit.Figure1b(),
		Arch:           arch.QX4(),
		InitialMapping: pin,
	})
	if e.NumFrames() != 6 {
		t.Errorf("frames = %d, want 6 (5 + leading pinned frame)", e.NumFrames())
	}
	s := e.B.S
	if got := s.Solve(); got != sat.Sat {
		t.Fatalf("pinned instance: %v", got)
	}
	sol, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for j, want := range pin {
		if sol.FrameMappings[0][j] != want {
			t.Fatalf("frame 0 = %v, want pin %v", sol.FrameMappings[0], pin)
		}
	}
}

func TestEncodeRejectsBadPin(t *testing.T) {
	b := cnf.NewBuilder(sat.NewSolver())
	_, err := Encode(bg, Problem{
		Skeleton:       circuit.Figure1b(),
		Arch:           arch.QX4(),
		InitialMapping: []int{0, 0, 1, 2},
	}, b)
	if err == nil {
		t.Error("non-injective pin should be rejected")
	}
}

// TestCostGuardRelaxAfterTighten drives one solver + one encoding through a
// tighten-relax-tighten sequence of bound assumptions: UNSAT under a bound
// below the optimum must not poison the instance — the same solver must
// afterwards satisfy the relaxed bound, refute the tight one again, and
// still solve unbounded.
func TestCostGuardRelaxAfterTighten(t *testing.T) {
	s, e := encode(t, Problem{Skeleton: circuit.Figure1b(), Arch: arch.QX4()})
	if s.Solve() != sat.Sat {
		t.Fatal("instance should be satisfiable")
	}
	sol, err := e.Decode()
	if err != nil {
		t.Fatal(err)
	}
	// Descend to the optimum via guards only.
	best := sol
	for {
		g := e.CostAtMostLit(best.Cost - 1)
		if s.Solve(g) != sat.Sat {
			break
		}
		if best, err = e.Decode(); err != nil {
			t.Fatal(err)
		}
	}
	if best.Cost != 4 {
		t.Fatalf("guard descent found %d, want 4 (paper Example 7)", best.Cost)
	}

	tight := e.CostAtMostLit(best.Cost - 1)
	relaxed := e.CostAtMostLit(best.Cost)
	if s.Solve(tight) != sat.Unsat {
		t.Fatal("bound below optimum must be UNSAT")
	}
	if !s.UnsatFromAssumptions() {
		t.Error("bound UNSAT not attributed to the guard assumption")
	}
	if s.Solve(relaxed) != sat.Sat {
		t.Fatal("relaxing the bound on the same solver must be SAT again")
	}
	if sol, err := e.Decode(); err != nil || sol.Cost != best.Cost {
		t.Fatalf("relaxed model cost = %v/%v, want %d", sol, err, best.Cost)
	}
	if s.Solve(tight) != sat.Unsat {
		t.Fatal("re-tightening must be UNSAT again")
	}
	if s.Solve() != sat.Sat {
		t.Fatal("unbounded solve must still succeed on the same instance")
	}
	// Guards are memoized: probing the same bound reuses the literal.
	if e.CostAtMostLit(best.Cost-1) != tight {
		t.Error("CostAtMostLit did not memoize the guard")
	}
	// A vacuous bound is the constant-true literal.
	if g := e.CostAtMostLit(e.MaxCost); s.Solve(g) != sat.Sat {
		t.Error("vacuous bound must not constrain the instance")
	}
}

// TestGuardBoundIndex: CostAtMostLit's guards must map back to their bounds
// through GuardBound, vacuous and foreign literals must not, and an unsat
// core over several nested guards must resolve to the loosest refuted
// bound (the core-guided jump the descent relies on).
func TestGuardBoundIndex(t *testing.T) {
	s, e := encode(t, Problem{Skeleton: circuit.Figure1b(), Arch: arch.QX4()})
	if s.Solve() != sat.Sat {
		t.Fatal("instance should be satisfiable")
	}
	g3 := e.CostAtMostLit(3)
	if b, ok := e.GuardBound(g3); !ok || b != 3 {
		t.Fatalf("GuardBound(g3) = %d, %v; want 3, true", b, ok)
	}
	if _, ok := e.GuardBound(e.B.True()); ok {
		t.Error("the vacuous constant-true literal must not map to a bound")
	}
	if _, ok := e.GuardBound(e.Z[0]); ok {
		t.Error("a non-guard literal must not map to a bound")
	}

	// The optimum is 4 (paper Example 7): probing {3, 1, 0} loose→tight is
	// jointly UNSAT, and the minimized core must name bound 3 — every
	// probed bound is below the optimum, so the loosest alone is refutable.
	assume := []sat.Lit{e.CostAtMostLit(3), e.CostAtMostLit(1), e.CostAtMostLit(0)}
	if s.Solve(assume...) != sat.Unsat || !s.UnsatFromAssumptions() {
		t.Fatal("bounds below the optimum must be UNSAT via assumptions")
	}
	loosest := -1
	for _, g := range s.UnsatCore() {
		b, ok := e.GuardBound(g)
		if !ok {
			t.Fatalf("core literal %v is not a cost guard", g)
		}
		if loosest < 0 || b < loosest {
			loosest = b
		}
	}
	if loosest != 3 {
		t.Errorf("minimized core refutes bound %d, want 3 (the loosest probed)", loosest)
	}
}
