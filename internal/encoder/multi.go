// The §4.1 subset optimization enumerates every connected n-qubit subset of
// the architecture. Encoding each subset as its own CNF instance discards
// learnt clauses, unsat cores and bound guards at every subset boundary;
// this file instead encodes ALL subsets into ONE instance. Every subset's
// restricted architecture acts on the same n "slot" indices (a connected
// n-subset renumbered 0..n−1), so the mapping variables X, the permutation
// selectors Y with their frame-link consistency clauses, the switch
// variables Z, and the whole cost adder tree are shared verbatim; only the
// coupling-map-dependent constraints differ per subset, and those are
// guarded by a fresh selector literal s_i (cnf.Builder.AddGuardedClause).
// Assuming s_i activates subset i's gate-executability, direction-switch and
// permutation-cost semantics for that call only — learnt clauses and cost
// bounds transfer across subsets, and an unsat core over {selector, bound}
// assumptions refutes whole families of subsets at once.
package encoder

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/perm"
	"repro/internal/sat"
)

// SubsetProblem is a family of mapping instances sharing one skeleton and
// permutation-point strategy, differing only in the (restricted)
// architecture. All architectures must have exactly Skeleton.NumQubits
// physical qubits — the §4.1 slot space.
type SubsetProblem struct {
	Skeleton *circuit.Skeleton
	// PermBefore has Problem.PermBefore's semantics (strategy restriction);
	// it is architecture-independent and therefore shared by all subsets.
	PermBefore []bool
	// Archs holds one restricted architecture per subset (arch.Restrict of
	// a connected n-subset).
	Archs []*arch.Arch
}

// PermAllowed mirrors Problem.PermAllowed for the shared frame layout.
func (p SubsetProblem) PermAllowed(k int) bool {
	return Problem{Skeleton: p.Skeleton, PermBefore: p.PermBefore}.PermAllowed(k)
}

// MultiEncoding is the CNF materialization of a SubsetProblem: one shared
// instance carrying every subset behind selector assumptions.
type MultiEncoding struct {
	B *cnf.Builder

	prob  SubsetProblem
	perms []perm.Perm // Π over the n slots, shared by all subsets
	// permSw[i][pi] = SWAP count of permutation pi's chosen realization on
	// subset i's coupling graph (−1 when unrealizable there); permW[i][pi]
	// its cost under subset i's cost model (SwapCost·permSw when uniform).
	permSw [][]int
	permW  [][]int
	// cms[i] is subset i's cost model; uniformH reports whether every
	// subset charges the same constant per direction switch, in which case
	// the H cost terms are shared unguarded exactly as in the paper model.
	cms      []*arch.CostModel
	uniformH bool
	hUnit    int

	frames    []int
	gateFrame []int

	// X, Y, Z as in Encoding, over the n×n slot space. The Eq. 1 mapping
	// constraints and the Eq. 3 permutation-consistency links are pure
	// index bookkeeping, independent of any coupling map, so they are
	// shared unguarded. Z is a vector of free variables whose meaning is
	// fixed per subset by guarded equivalences.
	X [][][]sat.Lit
	Y [][]sat.Lit
	Z []sat.Lit

	// Selectors[i] activates subset i's guarded constraints.
	Selectors []sat.Lit
	selSubset map[sat.Lit]int

	// C[t] is the shared per-permutation-point swap-cost vector: free bits
	// linked per subset by s_i → (C[t][j] ↔ ⋁ y's whose 7·swaps_i(π) has
	// bit j). The adder tree over C and Z is built once, so every cost
	// bound guard (CostAtMostLit) is shared by all subsets — a bound
	// refuted under one selector seeds the conflict analysis for the next.
	C []cnf.BitVec
	// HV[k] is the free per-gate switch-cost vector, allocated only when
	// some subset carries per-pair H weights (otherwise the shared
	// ScaleByLit(Z[k], hUnit) terms suffice). Linked per subset like C.
	HV []cnf.BitVec

	CostBits cnf.BitVec
	MaxCost  int

	costGuards  map[int]sat.Lit
	guardBounds map[sat.Lit]int
}

// EncodeSubsets builds the shared instance. The context is checked between
// subsets and permutation points, so encoding a large family under an
// expired deadline aborts promptly.
func EncodeSubsets(ctx context.Context, p SubsetProblem, b *cnf.Builder) (*MultiEncoding, error) {
	n := p.Skeleton.NumQubits
	if n == 0 || p.Skeleton.Len() == 0 {
		return nil, fmt.Errorf("encoder: empty problem (n=%d, gates=%d)", n, p.Skeleton.Len())
	}
	if len(p.Archs) == 0 {
		return nil, fmt.Errorf("encoder: no subset architectures to encode")
	}
	if p.PermBefore != nil && len(p.PermBefore) != p.Skeleton.Len() {
		return nil, fmt.Errorf("encoder: PermBefore has %d entries for %d gates", len(p.PermBefore), p.Skeleton.Len())
	}
	if n > 6 {
		return nil, fmt.Errorf("encoder: exhaustive permutation enumeration infeasible for n=%d qubits (paper §4.1 subsets must stay ≤ 6)", n)
	}
	for i, a := range p.Archs {
		if a.NumQubits() != n {
			return nil, fmt.Errorf("encoder: subset %d has %d physical qubits, want exactly n=%d", i, a.NumQubits(), n)
		}
	}

	e := &MultiEncoding{B: b, prob: p}
	space := perm.NewSpace(n, n)
	e.perms = perm.All(n)
	e.permSw = make([][]int, len(p.Archs))
	e.permW = make([][]int, len(p.Archs))
	e.cms = make([]*arch.CostModel, len(p.Archs))
	e.uniformH = true
	e.hUnit = p.Archs[0].Cost().HUnit()
	for i, a := range p.Archs {
		cm := a.Cost()
		e.cms[i] = cm
		if !cm.UniformH() || cm.HUnit() != e.hUnit {
			e.uniformH = false
		}
		sw := make([]int, len(e.perms))
		w := make([]int, len(e.perms))
		if cm.UniformSwap() {
			table := perm.NewSwapTable(space, a.UndirectedEdges())
			for pi, pp := range e.perms {
				sw[pi] = table.PermSwaps(pp)
				if sw[pi] > 0 {
					w[pi] = cm.SwapUnit() * sw[pi]
				} else {
					w[pi] = sw[pi]
				}
			}
		} else {
			table := perm.NewWeightedSwapTable(space, a.UndirectedEdges(), cm.EdgeSwapWeight)
			for pi, pp := range e.perms {
				sw[pi] = table.PermSwapsAlong(pp)
				w[pi] = table.PermWeight(pp)
			}
		}
		e.permSw[i] = sw
		e.permW[i] = w
	}

	e.buildFrames()
	e.buildMappingVars()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.buildPermutationLinks(ctx); err != nil {
		return nil, err
	}
	e.Z = make([]sat.Lit, p.Skeleton.Len())
	for k := range e.Z {
		e.Z[k] = b.NewLit()
	}
	e.Selectors = make([]sat.Lit, len(p.Archs))
	e.selSubset = make(map[sat.Lit]int, len(p.Archs))
	for i := range p.Archs {
		s := b.NewLit()
		e.Selectors[i] = s
		e.selSubset[s] = i
	}
	e.buildSharedCost()
	for i := range p.Archs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.buildSubsetConstraints(i)
	}
	return e, nil
}

func (e *MultiEncoding) buildFrames() {
	e.gateFrame = make([]int, e.prob.Skeleton.Len())
	for k := 0; k < e.prob.Skeleton.Len(); k++ {
		if k == 0 || e.prob.PermAllowed(k) {
			e.frames = append(e.frames, k)
		}
		e.gateFrame[k] = len(e.frames) - 1
	}
}

// NumFrames returns the number of distinct x-variable frames.
func (e *MultiEncoding) NumFrames() int { return len(e.frames) }

// NumPermPoints returns |G'|, shared by every subset (the strategy is
// architecture-independent).
func (e *MultiEncoding) NumPermPoints() int { return len(e.frames) - 1 }

// NumSubsets returns the number of encoded subsets.
func (e *MultiEncoding) NumSubsets() int { return len(e.prob.Archs) }

// Selector returns subset i's activation literal.
func (e *MultiEncoding) Selector(i int) sat.Lit { return e.Selectors[i] }

// SelectorSubset maps a selector literal back to its subset index — the
// inverse of Selector, used to read unsat cores over selector assumptions.
func (e *MultiEncoding) SelectorSubset(l sat.Lit) (int, bool) {
	i, ok := e.selSubset[l]
	return i, ok
}

// TrueSelector returns the lowest-indexed subset whose selector is true in
// the current model (after a Sat result). When the driver assumes a family
// guard r → (s_a ∨ s_b ∨ …), the model commits to at least one subset; ties
// (several selectors true at once) resolve to the smallest index, which is
// deterministic for the single-threaded solver.
func (e *MultiEncoding) TrueSelector() (int, bool) {
	for i, s := range e.Selectors {
		if e.litTrue(s) {
			return i, true
		}
	}
	return -1, false
}

// buildMappingVars adds the shared Eq. 1 constraints over the n slots; with
// n logical qubits on n slots every frame mapping is a bijection.
func (e *MultiEncoding) buildMappingVars() {
	n := e.prob.Skeleton.NumQubits
	e.X = make([][][]sat.Lit, len(e.frames))
	for f := range e.X {
		e.X[f] = make([][]sat.Lit, n)
		for i := 0; i < n; i++ {
			e.X[f][i] = make([]sat.Lit, n)
			for j := 0; j < n; j++ {
				e.X[f][i][j] = e.B.NewLit()
			}
		}
		for j := 0; j < n; j++ {
			col := make([]sat.Lit, n)
			for i := 0; i < n; i++ {
				col[i] = e.X[f][i][j]
			}
			e.B.ExactlyOne(col...)
		}
		for i := 0; i < n; i++ {
			e.B.AtMostOne(e.X[f][i]...)
		}
	}
}

// buildPermutationLinks adds the shared Eq. 3 selectors and consistency
// links. Which permutations are REALIZABLE differs per subset and is
// asserted in buildSubsetConstraints; the y → (x ↔ x′) transport clauses
// are pure permutation semantics and shared.
func (e *MultiEncoding) buildPermutationLinks(ctx context.Context) error {
	n := e.prob.Skeleton.NumQubits
	e.Y = make([][]sat.Lit, e.NumPermPoints())
	for t := 0; t < e.NumPermPoints(); t++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		before, after := e.X[t], e.X[t+1]
		ys := make([]sat.Lit, len(e.perms))
		for pi, pp := range e.perms {
			y := e.B.NewLit()
			ys[pi] = y
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					e.B.AddClause(y.Not(), before[i][j].Not(), after[pp[i]][j])
					e.B.AddClause(y.Not(), before[i][j], after[pp[i]][j].Not())
				}
			}
		}
		e.B.ExactlyOne(ys...)
		e.Y[t] = ys
	}
	return nil
}

// buildSharedCost allocates the free per-point cost vectors C[t] and the
// Eq. 5 adder tree over them — ONCE for every subset. MaxCost covers the
// most expensive subset so a single bit width fits all.
func (e *MultiEncoding) buildSharedCost() {
	maxSwap := 0
	for _, ws := range e.permW {
		for _, w := range ws {
			if w > maxSwap {
				maxSwap = w
			}
		}
	}
	maxH := e.hUnit
	if !e.uniformH {
		maxH = 0
		for i, a := range e.prob.Archs {
			if h := e.cms[i].MaxHWeight(a.Pairs()); h > maxH {
				maxH = h
			}
		}
	}
	e.MaxCost = e.NumPermPoints()*maxSwap + len(e.Z)*maxH
	width := cnf.Width(e.MaxCost)

	var vecs []cnf.BitVec
	e.C = make([]cnf.BitVec, e.NumPermPoints())
	for t := range e.C {
		v := make(cnf.BitVec, width)
		for j := range v {
			v[j] = e.B.NewLit()
		}
		e.C[t] = v
		vecs = append(vecs, v)
	}
	if e.uniformH {
		for _, z := range e.Z {
			vecs = append(vecs, e.B.ScaleByLit(z, e.hUnit, width))
		}
	} else {
		// Per-pair H weights: the switch cost of a gate depends on which
		// coupling pair hosts it, which only subset i's constraints know —
		// so allocate free per-gate vectors and link them per subset.
		e.HV = make([]cnf.BitVec, len(e.Z))
		for k := range e.Z {
			v := make(cnf.BitVec, width)
			for j := range v {
				v[j] = e.B.NewLit()
			}
			e.HV[k] = v
			vecs = append(vecs, v)
		}
	}
	e.CostBits = e.B.SumVecs(vecs)
}

// buildSubsetConstraints emits subset i's coupling-map-dependent semantics,
// every clause guarded by the selector s_i:
//
//   - Eq. 2 executability and Eq. 4 direction switching on subset i's
//     coupling pairs (the fwd/rev Tseitin definitions are unguarded — they
//     merely name conjunctions — while the assertions tying them to the
//     shared Z are guarded);
//   - ¬y for permutations unrealizable on subset i's graph;
//   - the links fixing the shared cost bits C[t] to 7·swaps_i(π) of the
//     selected permutation.
func (e *MultiEncoding) buildSubsetConstraints(i int) {
	s := e.Selectors[i]
	a := e.prob.Archs[i]
	cm := e.cms[i]

	for k, g := range e.prob.Skeleton.Gates {
		x := e.X[e.gateFrame[k]]
		var fwds, revs []sat.Lit
		for _, pr := range a.Pairs() {
			fwds = append(fwds, e.B.And(x[pr.Control][g.Control], x[pr.Target][g.Target]))
			revs = append(revs, e.B.And(x[pr.Control][g.Target], x[pr.Target][g.Control]))
		}
		fwd := e.B.Or(fwds...)
		rev := e.B.Or(revs...)
		e.B.AddGuardedClause(s, fwd, rev)
		e.B.GuardedEquiv(s, e.Z[k], e.B.And(rev, fwd.Not()))
		if e.HV != nil {
			// Link gate k's free switch-cost vector under s: at most one
			// rev literal is true (the mapping is injective), so z∧rev_p
			// selects the hosting pair's H weight, as in gateHCostVec.
			pairs := a.Pairs()
			zrev := make([]sat.Lit, len(pairs))
			for p := range pairs {
				zrev[p] = e.B.And(e.Z[k], revs[p])
			}
			for j := 0; j < len(e.HV[k]); j++ {
				var ons []sat.Lit
				for p, pr := range pairs {
					if cm.HWeight(pr.Control, pr.Target)>>uint(j)&1 == 1 {
						ons = append(ons, zrev[p])
					}
				}
				e.B.GuardedEquiv(s, e.HV[k][j], e.B.Or(ons...))
			}
		}
	}

	costs := make([]int, len(e.perms))
	for pi, w := range e.permW[i] {
		if w > 0 {
			costs[pi] = w // unrealizable (−1) perms are forced ¬y below
		}
	}
	for t, ys := range e.Y {
		for pi := range e.perms {
			if e.permSw[i][pi] < 0 {
				e.B.AddGuardedClause(s, ys[pi].Not())
			}
		}
		// Guarded SelectConst: bit j of C[t] ↔ some y with bit j set in
		// its cost, under s. The Or gates are unguarded definitions.
		for j := 0; j < len(e.C[t]); j++ {
			var ons []sat.Lit
			for pi, c := range costs {
				if c>>uint(j)&1 == 1 {
					ons = append(ons, ys[pi])
				}
			}
			e.B.GuardedEquiv(s, e.C[t][j], e.B.Or(ons...))
		}
	}
}

// CostAtMostLit returns the shared activation literal for g → (F ≤ bound),
// memoized per bound exactly as Encoding.CostAtMostLit. Because the cost
// tree is shared, the same guard (and everything learnt while probing it)
// serves every subset.
func (e *MultiEncoding) CostAtMostLit(bound int) sat.Lit {
	if bound >= e.MaxCost {
		return e.B.True()
	}
	if g, ok := e.costGuards[bound]; ok {
		return g
	}
	g := e.B.LessEqConstGuard(e.CostBits, bound)
	if e.costGuards == nil {
		e.costGuards = make(map[int]sat.Lit)
		e.guardBounds = make(map[sat.Lit]int)
	}
	e.costGuards[bound] = g
	e.guardBounds[g] = bound
	return g
}

// GuardBound maps a cost guard back to its bound (see Encoding.GuardBound).
func (e *MultiEncoding) GuardBound(g sat.Lit) (int, bool) {
	b, ok := e.guardBounds[g]
	return b, ok
}

// DecodeSubset reads the solver model into a Solution interpreted on subset
// i's architecture. It must only be called after Sat, and only for a subset
// whose selector was true in the model (assumed or decided) — otherwise the
// guarded semantics the decoder validates were never active.
func (e *MultiEncoding) DecodeSubset(i int) (*Solution, error) {
	if !e.litTrue(e.Selectors[i]) {
		return nil, fmt.Errorf("encoder: subset %d's selector is false in the model", i)
	}
	n := e.prob.Skeleton.NumQubits
	a := e.prob.Archs[i]
	sol := &Solution{GateFrame: append([]int(nil), e.gateFrame...)}

	for f := range e.X {
		mp := make(perm.Mapping, n)
		for j := 0; j < n; j++ {
			mp[j] = -1
			for slot := 0; slot < n; slot++ {
				if e.litTrue(e.X[f][slot][j]) {
					if mp[j] != -1 {
						return nil, fmt.Errorf("encoder: frame %d maps q%d twice", f, j)
					}
					mp[j] = slot
				}
			}
			if mp[j] == -1 {
				return nil, fmt.Errorf("encoder: frame %d leaves q%d unmapped", f, j)
			}
		}
		if !mp.Valid(n) {
			return nil, fmt.Errorf("encoder: frame %d mapping %v not injective", f, mp)
		}
		sol.FrameMappings = append(sol.FrameMappings, mp)
	}

	cost := 0
	for t, ys := range e.Y {
		chosen := -1
		for pi, y := range ys {
			if e.litTrue(y) {
				if chosen != -1 {
					return nil, fmt.Errorf("encoder: perm point %d selects two permutations", t)
				}
				chosen = pi
			}
		}
		if chosen == -1 {
			return nil, fmt.Errorf("encoder: perm point %d selects no permutation", t)
		}
		if e.permSw[i][chosen] < 0 {
			return nil, fmt.Errorf("encoder: perm point %d selects a permutation unrealizable on subset %d", t, i)
		}
		pp := e.perms[chosen]
		if got := sol.FrameMappings[t].ApplyPerm(pp); !got.Equal(sol.FrameMappings[t+1]) {
			return nil, fmt.Errorf("encoder: perm point %d: π%v maps %v to %v, frame has %v",
				t, pp, sol.FrameMappings[t], got, sol.FrameMappings[t+1])
		}
		sol.Perms = append(sol.Perms, pp.Copy())
		sol.PermSwaps = append(sol.PermSwaps, e.permSw[i][chosen])
		cost += e.permW[i][chosen]
	}

	for k := range e.Z {
		sw := e.litTrue(e.Z[k])
		sol.Switched = append(sol.Switched, sw)
		g := e.prob.Skeleton.Gates[k]
		mp := sol.MappingBeforeGate(k)
		pc, pt := mp[g.Control], mp[g.Target]
		if sw {
			cost += e.cms[i].HWeight(pt, pc)
			if !a.Allows(pt, pc) {
				return nil, fmt.Errorf("encoder: gate %d switched but (%d,%d) not in subset %d's CM", k, pt, pc, i)
			}
		} else if !a.Allows(pc, pt) {
			return nil, fmt.Errorf("encoder: gate %d forward but (%d,%d) not in subset %d's CM", k, pc, pt, i)
		}
	}

	sol.Cost = cost
	if fromBits := e.B.Value(e.CostBits); fromBits != cost {
		return nil, fmt.Errorf("encoder: cost bits say %d, subset %d recomputed %d", fromBits, i, cost)
	}
	return sol, nil
}

func (e *MultiEncoding) litTrue(l sat.Lit) bool {
	v := e.B.S.Value(l.Var())
	if !l.IsPos() {
		v = !v
	}
	return v
}
