// Package exact determines minimal (or close-to-minimal) mappings of
// quantum circuits to IBM QX architectures, implementing the paper's
// methodology (§3) and its performance improvements (§4):
//
//   - A SAT engine that hands the symbolic formulation of internal/encoder
//     to the CDCL solver and tightens a cost bound until unsatisfiability
//     proves minimality.
//   - An independent dynamic-programming engine over (frame × mapping)
//     states, exact for the small mapping spaces of the 5-qubit IBM
//     devices, used both standalone and as a cross-check of the SAT engine.
//   - The physical-qubit subset optimization (§4.1).
//   - The permutation-restriction strategies (§4.2): disjoint qubits, odd
//     gates, and qubit triangle.
package exact

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
)

// Strategy selects the set G' of gates before which the mapping may change
// (paper §4.2). StrategyAll guarantees minimality; the others trade
// optimality guarantees for smaller search spaces.
type Strategy int

const (
	// StrategyAll allows permutations before every gate (paper §3):
	// minimality is guaranteed.
	StrategyAll Strategy = iota
	// StrategyDisjoint allows permutations only before each cluster of
	// consecutive gates acting on disjoint qubit sets.
	StrategyDisjoint
	// StrategyOdd allows permutations only before gates with an odd
	// 1-based index (except g1).
	StrategyOdd
	// StrategyTriangle clusters the circuit into sequences acting on at
	// most three qubits, which fit a coupling triangle; permutations occur
	// only between clusters.
	StrategyTriangle
)

// strategyNames is the single ordered definition of the strategy names,
// indexed by the Strategy constants. String, ParseStrategy and Strategies
// all derive from it, matching the ParseMethod/ParseEngine idiom: ordered
// (deterministic) scans and errors that enumerate the valid names.
var strategyNames = [...]string{
	StrategyAll:      "all",
	StrategyDisjoint: "disjoint",
	StrategyOdd:      "odd",
	StrategyTriangle: "triangle",
}

// String returns the strategy's short name.
func (s Strategy) String() string {
	if s >= 0 && int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Strategies returns the canonical strategy names in constant order — the
// valid inputs to ParseStrategy (and the CLIs' -strategy flags).
func Strategies() []string {
	return append([]string(nil), strategyNames[:]...)
}

// ParseStrategy converts a short name to a Strategy. The scan over the
// ordered name table is deterministic, and the error lists every valid
// name.
func ParseStrategy(name string) (Strategy, error) {
	for i, n := range strategyNames {
		if n == name {
			return Strategy(i), nil
		}
	}
	return 0, fmt.Errorf("exact: unknown strategy %q (valid: %s)", name, strings.Join(Strategies(), ", "))
}

// PermBefore computes the permutation-point vector for a skeleton under the
// strategy: PermBefore[k] is true iff gate k ∈ G'. Index 0 is always false
// (the initial mapping is free).
func PermBefore(sk *circuit.Skeleton, s Strategy) []bool {
	pb := make([]bool, sk.Len())
	switch s {
	case StrategyAll:
		for k := 1; k < len(pb); k++ {
			pb[k] = true
		}
	case StrategyDisjoint:
		for _, layer := range sk.DisjointLayers() {
			if first := layer[0]; first > 0 {
				pb[first] = true
			}
		}
	case StrategyOdd:
		// 1-based odd gate indices except g1: g3, g5, … → 0-based 2, 4, …
		for k := 2; k < len(pb); k += 2 {
			pb[k] = true
		}
	case StrategyTriangle:
		for _, cluster := range sk.QubitClusters(3) {
			if first := cluster[0]; first > 0 {
				pb[first] = true
			}
		}
	default:
		panic("exact: unknown strategy")
	}
	return pb
}

// CountPermPoints returns |G'|: the number of gates before which a
// permutation is allowed. (The paper's |G'| table column additionally
// counts the free initial mapping, i.e. reports this value plus one.)
func CountPermPoints(pb []bool) int {
	n := 0
	for k := 1; k < len(pb); k++ {
		if pb[k] {
			n++
		}
	}
	return n
}
