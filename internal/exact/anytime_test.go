package exact

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/revlib"
)

// TestAnytimeCancelNeverSoftened: anytime mode softens deadline expiry
// only. A caller-initiated cancel must keep erroring with context.Canceled
// — single instance and §4.1 fan-out alike — so an operator abort never
// comes back disguised as a degraded answer.
func TestAnytimeCancelNeverSoftened(t *testing.T) {
	ctx, cancel := context.WithCancel(bg)
	cancel()
	_, err := Solve(ctx, circuit.Figure1b(), arch.QX4(),
		Options{Engine: EngineSAT, SAT: SATOptions{Anytime: true}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("single instance: err = %v, want context.Canceled", err)
	}
	_, err = Solve(ctx, randomSkeleton(3, 4, 12), arch.QX5(),
		Options{Engine: EngineSAT, UseSubsets: true, SAT: SATOptions{Anytime: true}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("subset fan-out: err = %v, want context.Canceled", err)
	}
}

// TestAnytimeBudgetBracketsOptimum: a conflict budget that truncates the
// descent after a first model yields a Degraded incumbent whose
// [Cost−BoundGap, Cost] bracket contains the true optimum (proven by the
// DP oracle) and whose solution still materializes into valid ops.
func TestAnytimeBudgetBracketsOptimum(t *testing.T) {
	a := arch.QX4()
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		sk := randomSkeleton(seed, 4, 10)
		ref, err := Solve(bg, sk, a, Options{Engine: EngineDP})
		if err != nil {
			t.Fatal(err)
		}
		for budget := int64(1); budget <= 1<<14; budget *= 2 {
			r, err := Solve(bg, sk, a, Options{Engine: EngineSAT,
				SAT: SATOptions{MaxConflicts: budget, Anytime: true}})
			if err != nil {
				if !errors.Is(err, ErrBudgetExhausted) {
					t.Fatalf("seed %d budget %d: err = %v, want ErrBudgetExhausted", seed, budget, err)
				}
				continue // no model before exhaustion; try a bigger budget
			}
			if r.Minimal {
				if r.Degraded {
					t.Errorf("seed %d budget %d: proven-minimal result marked degraded", seed, budget)
				}
				if r.Cost != ref.Cost {
					t.Errorf("seed %d budget %d: minimal cost %d != oracle %d", seed, budget, r.Cost, ref.Cost)
				}
				break // larger budgets only finish the proof sooner
			}
			found = true
			if !r.Degraded {
				t.Errorf("seed %d budget %d: truncated result not marked Degraded", seed, budget)
			}
			if r.BoundGap < 0 {
				t.Errorf("seed %d budget %d: negative BoundGap %d", seed, budget, r.BoundGap)
			}
			if r.Cost < ref.Cost {
				t.Errorf("seed %d budget %d: incumbent cost %d undercuts the optimum %d", seed, budget, r.Cost, ref.Cost)
			}
			if r.Cost-r.BoundGap > ref.Cost {
				t.Errorf("seed %d budget %d: bracket [%d, %d] excludes the optimum %d",
					seed, budget, r.Cost-r.BoundGap, r.Cost, ref.Cost)
			}
			if _, err := r.Ops(sk); err != nil {
				t.Errorf("seed %d budget %d: degraded result does not materialize: %v", seed, budget, err)
			}
			break
		}
	}
	if !found {
		t.Skip("no budget truncated the descent after a first model on this corpus")
	}
}

// TestAnytimeDeadlineIncumbent is the anytime acceptance check on a real
// Table-1 instance: between "too short for any model" (an error) and "long
// enough for the full proof" (the known minimal cost) there is a window
// where the deadline fires mid-descent and the engine must hand back its
// incumbent — Degraded, non-minimal, bracket containing the optimum —
// instead of erroring. The window's location is machine-dependent, so the
// test binary-searches the deadline and verifies every run it makes
// against the trichotomy; it only skips if the window is unobservably
// narrow on this machine.
func TestAnytimeDeadlineIncumbent(t *testing.T) {
	bm, err := revlib.SuiteByName("3_17_13")
	if err != nil {
		t.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(bm.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.QX4()

	start := time.Now()
	ref, err := Solve(bg, sk, a, Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if !ref.Minimal {
		t.Fatalf("unbounded reference run not minimal (cost %d)", ref.Cost)
	}

	lo, hi := time.Duration(0), full // invariant: lo errors, hi completes
	for i := 0; i < 14; i++ {
		d := (lo + hi) / 2
		if d <= 0 {
			break
		}
		ctx, cancel := context.WithTimeout(bg, d)
		r, err := Solve(ctx, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{Anytime: true}})
		cancel()
		switch {
		case err != nil:
			// Too short for even one model: exactly the historical failure
			// mode, still correct when there is nothing to salvage.
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("deadline %v: err = %v, want context.DeadlineExceeded", d, err)
			}
			lo = d
		case r.Minimal:
			if r.Cost != ref.Cost {
				t.Fatalf("deadline %v: minimal cost %d != reference %d", d, r.Cost, ref.Cost)
			}
			hi = d
		default:
			// The anytime window: a valid incumbent under a blown deadline.
			if !r.Degraded {
				t.Errorf("deadline %v: non-minimal deadline result not marked Degraded", d)
			}
			if r.Cost < ref.Cost {
				t.Errorf("deadline %v: incumbent cost %d undercuts the optimum %d", d, r.Cost, ref.Cost)
			}
			if r.Cost-r.BoundGap > ref.Cost {
				t.Errorf("deadline %v: bracket [%d, %d] excludes the optimum %d",
					d, r.Cost-r.BoundGap, r.Cost, ref.Cost)
			}
			if _, err := r.Ops(sk); err != nil {
				t.Errorf("deadline %v: degraded result does not materialize: %v", d, err)
			}
			return
		}
	}
	t.Skip("anytime window between first model and full proof too narrow to hit on this machine")
}

// TestSubsetFanoutExhaustionKeepsIncumbent is the §4.1 best-effort
// aggregation regression: when the family deadline expires mid-fan-out
// after some subset already produced a mapping, the fan-out must aggregate
// that incumbent into a Degraded result instead of discarding it —
// exhaustion on one subset must never kill the whole family. Like the
// deadline test above, the window is found by binary search.
func TestSubsetFanoutExhaustionKeepsIncumbent(t *testing.T) {
	a := arch.QX5()
	sk := randomSkeleton(11, 4, 14)

	start := time.Now()
	ref, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)

	lo, hi := time.Duration(0), full
	for i := 0; i < 14; i++ {
		d := (lo + hi) / 2
		if d <= 0 {
			break
		}
		ctx, cancel := context.WithTimeout(bg, d)
		r, err := Solve(ctx, sk, a, Options{Engine: EngineSAT, UseSubsets: true, Parallel: true,
			SAT: SATOptions{Anytime: true}})
		cancel()
		switch {
		case err != nil:
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrBudgetExhausted) {
				t.Fatalf("deadline %v: err = %v, want deadline/budget exhaustion", d, err)
			}
			lo = d
		case r.Minimal:
			if r.Cost != ref.Cost {
				t.Fatalf("deadline %v: minimal cost %d != reference %d", d, r.Cost, ref.Cost)
			}
			hi = d
		default:
			if !r.Degraded {
				t.Errorf("deadline %v: non-minimal fan-out result not marked Degraded", d)
			}
			if r.Cost < ref.Cost {
				t.Errorf("deadline %v: family incumbent %d undercuts the fan-out optimum %d", d, r.Cost, ref.Cost)
			}
			if _, err := r.Ops(sk); err != nil {
				t.Errorf("deadline %v: degraded fan-out result does not materialize: %v", d, err)
			}
			return
		}
	}
	t.Skip("fan-out anytime window too narrow to hit on this machine")
}
