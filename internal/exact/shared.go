package exact

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/encoder"
	"repro/internal/sat"
)

// subsetInstance is one orbit representative in the shared §4.1 fan-out.
type subsetInstance struct {
	sub  *arch.Arch // restricted architecture (n qubits, slot indices)
	back []int      // slot index → original physical qubit
	lb   int        // admissible lower bound on F for this subset
}

// solveSubsetsShared runs the §4.1 physical-qubit subset optimization on ONE
// shared incremental SAT instance instead of one encode+solver per subset.
//
// The connected n-subsets are first bucketed into coupling-graph
// automorphism orbits (arch.SubsetOrbits): subsets related by a symmetry of
// the directed coupling map have identical optimal cost, so only one
// representative per orbit is encoded and the proof transfers to the members
// (Result.OrbitHits). Every representative's architecture-dependent
// constraints enter the instance guarded by a fresh selector literal s_i
// (encoder.EncodeSubsets); the mapping variables, permutation links and the
// whole cost adder tree are shared, so learnt clauses and cost-bound guards
// carry across subsets.
//
// The descent then treats the representatives as ONE minimization problem:
// each probe assumes a family guard r → (s_a ∨ s_b ∨ …) over the subsets
// still able to beat the incumbent, plus the usual cost-bound guards. A SAT
// answer is a model on whichever subset the solver chose — a new incumbent
// that immediately retires every representative whose admissible lower bound
// says it cannot do better (Result.SubsetsPruned). An UNSAT answer refutes
// the bound for the WHOLE pending family in one conflict analysis
// (Result.CoreFamilyRefutations) — the per-subset "strict incumbent probe"
// round of the old fan-out collapses into a single call, and the unsat core
// still names the loosest refuted bound for multi-bound jumps. The last
// model standing is the §4.1 optimum, with minimality proven for every
// subset: probed families by UNSAT, retired ones by their admissible bounds,
// orbit members by symmetry.
//
// Parallel no longer multiplies subset encodes: it widens the clause-sharing
// portfolio (sat.Pool) over the one instance, i.e. bound-probe parallelism,
// clamped into the ThreadBudget.
func solveSubsetsShared(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, pb []bool, opts Options) (out *Result, err error) {
	// One recover boundary for the whole shared fan-out: an encoder or
	// descent bug fails this solve with an error instead of propagating.
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("exact: shared subset fan-out panic: %v", r)
		}
	}()
	start := time.Now()
	n := sk.NumQubits
	subsets := a.ConnectedSubsets(n)
	if len(subsets) == 0 {
		return nil, fmt.Errorf("exact: %w: no connected subset of %d qubits in %s", ErrUnsatisfiable, n, a)
	}

	orbits := arch.SubsetOrbits(subsets, a.Automorphisms(0))
	orbitHits := len(subsets) - len(orbits)

	insts := make([]*subsetInstance, 0, len(orbits))
	prePruned := 0
	strict := opts.SAT.StrictBound && opts.SAT.StartBound > 0
	minLb := math.MaxInt
	for _, orbit := range orbits {
		sub, back := a.Restrict(subsets[orbit[0]])
		lb := opts.SAT.LowerBound
		if lb <= 0 {
			lb = 0
			if !opts.SAT.NoLowerBound {
				lb = admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: sub, PermBefore: pb})
			}
		}
		if lb < minLb {
			minLb = lb
		}
		if strict && lb > opts.SAT.StartBound {
			// This representative (and its whole orbit) cannot meet the
			// externally asserted cap: refuted without entering the
			// encoding at all, exactly like PR 5's per-subset early refute.
			prePruned++
			continue
		}
		insts = append(insts, &subsetInstance{sub: sub, back: back, lb: lb})
	}
	if len(insts) == 0 {
		res := &Result{
			WorkArch: a, Engine: EngineSAT.String(), LowerBound: minLb, Minimal: true,
			SubsetsPruned: prePruned, OrbitHits: orbitHits, Runtime: time.Since(start),
		}
		return res, fmt.Errorf("exact: %w (admissible lower bound %d exceeds the strict bound %d on every connected %d-subset)",
			ErrUnsatisfiable, minLb, opts.SAT.StartBound, n)
	}

	solver := sat.New(sat.Options{MaxConflicts: opts.SAT.MaxConflicts})
	b := cnf.NewBuilder(solver)
	archs := make([]*arch.Arch, len(insts))
	for i, inst := range insts {
		archs[i] = inst.sub
	}
	menc, err := encoder.EncodeSubsets(ctx, encoder.SubsetProblem{Skeleton: sk, PermBefore: pb, Archs: archs}, b)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("exact: solve canceled: %w", ctxErr)
		}
		return nil, err
	}

	// Parallel means bound-probe parallelism here: one shared instance,
	// portfolio width from the thread budget (the fan-out itself is a
	// single lane).
	threads := opts.SAT.Threads
	if opts.Parallel && threads <= 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	budget := opts.SAT.Budget
	budget.Threads = threads
	threads = budget.Clamp().Threads
	var prober satProber = solver
	if threads > 1 {
		prober = sat.NewPool(solver, threads)
	}

	res := &Result{
		WorkArch:      a,
		PermPoints:    menc.NumPermPoints(),
		Engine:        EngineSAT.String(),
		Encodes:       1,
		LowerBound:    minLb,
		SATThreads:    threads,
		SubsetsPruned: prePruned,
		OrbitHits:     orbitHits,
	}

	d := &sharedDescent{
		menc:     menc,
		prober:   prober,
		b:        b,
		res:      res,
		opts:     opts.SAT,
		insts:    insts,
		pruned:   make([]bool, len(insts)),
		families: make(map[string]sat.Lit),
		floor:    minLb - 1,
	}
	var best *encoder.Solution
	bestIdx := -1
	if opts.SAT.BinaryDescent {
		best, bestIdx, err = d.minimizeBinary(ctx)
	} else {
		best, bestIdx, err = d.minimizeLinear(ctx)
	}
	snap := prober.Snapshot()
	res.Conflicts = snap.Conflicts
	res.SharedClauses = snap.SharedImports
	if err != nil {
		return res, err
	}
	if best == nil {
		if strict {
			return res, fmt.Errorf("exact: %w (no connected %d-subset admits a mapping with cost ≤ %d)",
				ErrUnsatisfiable, n, opts.SAT.StartBound)
		}
		return res, fmt.Errorf("exact: %w on any connected %d-subset of %s", ErrUnsatisfiable, n, a)
	}
	res.Solution = best
	res.Cost = best.Cost
	res.WorkArch = insts[bestIdx].sub
	res.SubsetBack = insts[bestIdx].back
	if res.Cost == 0 {
		res.Minimal = true
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// sharedDescent drives the bound descent over the shared §4.1 instance.
type sharedDescent struct {
	menc   *encoder.MultiEncoding
	prober satProber
	b      *cnf.Builder
	res    *Result
	opts   SATOptions
	insts  []*subsetInstance
	pruned []bool
	// families memoizes the guard literal per pending-subset family, so
	// re-probing the same family (common: consecutive bounds between
	// incumbent changes) reuses the guard and everything learnt under it.
	families map[string]sat.Lit
	// floor is the largest bound refuted before any probing: the minimum
	// admissible lower bound over the representatives, minus one.
	floor int
}

// pendingFor returns the indices of representatives still able to host a
// mapping of cost ≤ bound: not retired by an earlier incumbent and with an
// admissible lower bound permitting the target.
func (d *sharedDescent) pendingFor(bound int) []int {
	var out []int
	for i, inst := range d.insts {
		if !d.pruned[i] && inst.lb <= bound {
			out = append(out, i)
		}
	}
	return out
}

// familyGuard returns the activation literal r with r → (s_i ∨ …) over the
// pending representatives, minting (and memoizing) it on first use.
// Assuming r forces the model onto one of the family's subsets.
func (d *sharedDescent) familyGuard(pending []int) sat.Lit {
	key := make([]byte, 0, 2*len(pending))
	for _, i := range pending {
		key = append(key, byte(i>>8), byte(i))
	}
	if r, ok := d.families[string(key)]; ok {
		return r
	}
	r := d.b.NewLit()
	sels := make([]sat.Lit, len(pending))
	for j, i := range pending {
		sels[j] = d.menc.Selector(i)
	}
	d.b.AddGuardedClause(r, sels...)
	d.families[string(key)] = r
	return r
}

// pruneAtLeast retires every representative whose admissible lower bound
// proves it cannot beat the new incumbent cost. Retired representatives
// leave the pending families — no probe is ever spent on them again — and
// their orbits are covered by the same bound argument.
func (d *sharedDescent) pruneAtLeast(cost int) {
	for i, inst := range d.insts {
		if !d.pruned[i] && inst.lb >= cost {
			d.pruned[i] = true
			d.res.SubsetsPruned++
		}
	}
}

// decodeWinner reads the model's chosen subset and its solution.
func (d *sharedDescent) decodeWinner() (*encoder.Solution, int, error) {
	w, ok := d.menc.TrueSelector()
	if !ok {
		return nil, -1, fmt.Errorf("exact: satisfying model activates no subset selector")
	}
	sol, err := d.menc.DecodeSubset(w)
	if err != nil {
		return nil, -1, err
	}
	return sol, w, nil
}

// minimizeLinear is minimizeLinear over the shared family: each probe
// assumes the family guard of the subsets still in the running plus the
// usual primary/optimistic cost-bound guards.
func (d *sharedDescent) minimizeLinear(ctx context.Context) (*encoder.Solution, int, error) {
	var best *encoder.Solution
	bestIdx := -1
	lo := d.floor
	bounds := startAssumptions(d.menc, d.opts)
	for {
		primary := math.MaxInt
		if best != nil {
			primary = best.Cost - 1
		}
		pending := d.pendingFor(primary)
		if len(pending) == 0 {
			// Every un-retired representative's admissible bound meets or
			// exceeds the incumbent: minimal without a closing probe.
			d.res.Minimal = true
			return best, bestIdx, nil
		}
		assume := append([]sat.Lit{d.familyGuard(pending)}, bounds...)
		d.res.Solves++
		if len(bounds) > 0 {
			d.res.BoundProbes++
		}
		status := d.prober.SolveContext(ctx, assume...)
		switch status {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				if !anytimeReturn(d.opts, best != nil, err) {
					return nil, -1, fmt.Errorf("exact: solve canceled: %w", err)
				}
				d.res.markAnytime(best.Cost, lo)
				return best, bestIdx, nil // deadline hit: best incumbent across the family
			}
			if best == nil {
				return nil, -1, ErrBudgetExhausted
			}
			d.res.markAnytime(best.Cost, lo)
			return best, bestIdx, nil // budget exhausted: best-effort, proof truncated
		case sat.Unsat:
			if relaxable(d.prober, d.opts, len(bounds) > 0, best != nil) {
				// The caller's StartBound undercut the family optimum; drop
				// the bound guards and keep descending on the same instance.
				bounds = nil
				continue
			}
			if best == nil {
				d.res.Minimal = true // no pending subset admits any mapping
				return nil, -1, nil
			}
			if len(pending) > 1 {
				// One conflict analysis refuted the bound for every subset
				// in the family — the shared-instance replacement for a
				// per-subset round of strict-incumbent probes.
				d.res.CoreFamilyRefutations++
			}
			refuted, jumped := coreRefutedBound(d.prober, d.menc, assume)
			if jumped {
				d.res.BoundJumps++
			}
			if refuted > lo {
				lo = refuted
			}
			if lo >= best.Cost-1 {
				d.res.Minimal = true
				return best, bestIdx, nil
			}
			bounds = probeAssumptions(d.menc, best.Cost-1, lo, d.opts)
			continue
		}
		sol, w, err := d.decodeWinner()
		if err != nil {
			return nil, -1, err
		}
		best, bestIdx = sol, w
		d.pruneAtLeast(sol.Cost)
		if sol.Cost-1 <= lo {
			d.res.Minimal = true
			return best, bestIdx, nil
		}
		bounds = probeAssumptions(d.menc, sol.Cost-1, lo, d.opts)
	}
}

// minimizeBinary is minimizeBinary over the shared family. Midpoints whose
// pending family is empty are refuted by the admissible bounds alone — the
// floor advances without a solver call.
func (d *sharedDescent) minimizeBinary(ctx context.Context) (*encoder.Solution, int, error) {
	pending := d.pendingFor(math.MaxInt)
	bounds := startAssumptions(d.menc, d.opts)
	assume := append([]sat.Lit{d.familyGuard(pending)}, bounds...)
	d.res.Solves++
	if len(bounds) > 0 {
		d.res.BoundProbes++
	}
	status := d.prober.SolveContext(ctx, assume...)
	if status == sat.Unsat && relaxable(d.prober, d.opts, len(bounds) > 0, false) {
		d.res.Solves++
		status = d.prober.SolveContext(ctx, d.familyGuard(pending))
	}
	if status == sat.Unknown {
		// No model exists yet: nothing for anytime mode to salvage.
		if err := ctx.Err(); err != nil {
			return nil, -1, fmt.Errorf("exact: solve canceled: %w", err)
		}
		return nil, -1, ErrBudgetExhausted
	}
	if status != sat.Sat {
		d.res.Minimal = true // no subset admits any mapping (or any under the strict bound)
		return nil, -1, nil
	}
	best, bestIdx, err := d.decodeWinner()
	if err != nil {
		return nil, -1, err
	}
	d.pruneAtLeast(best.Cost)
	lo := d.floor
	for best.Cost > lo+1 {
		mid := lo + (best.Cost-lo)/2
		pending := d.pendingFor(mid)
		if len(pending) == 0 {
			// No un-retired representative can even reach mid: the
			// admissible bounds refute it without a probe.
			lo = mid
			continue
		}
		bounds := probeAssumptions(d.menc, mid, lo, d.opts)
		assume := append([]sat.Lit{d.familyGuard(pending)}, bounds...)
		d.res.Solves++
		d.res.BoundProbes++
		switch d.prober.SolveContext(ctx, assume...) {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				if !anytimeReturn(d.opts, best != nil, err) {
					return nil, -1, fmt.Errorf("exact: solve canceled: %w", err)
				}
			}
			d.res.markAnytime(best.Cost, lo)
			return best, bestIdx, nil // exhausted mid-search: best-effort
		case sat.Unsat:
			if len(pending) > 1 {
				d.res.CoreFamilyRefutations++
			}
			refuted, jumped := coreRefutedBound(d.prober, d.menc, assume)
			if jumped {
				d.res.BoundJumps++
			}
			if refuted > lo {
				lo = refuted
			}
		case sat.Sat:
			sol, w, err := d.decodeWinner()
			if err != nil {
				return nil, -1, err
			}
			best, bestIdx = sol, w
			d.pruneAtLeast(best.Cost)
		}
	}
	d.res.Minimal = true
	return best, bestIdx, nil
}
