package exact

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
	"repro/internal/perm"
)

// Result is the outcome of an exact (or strategy-restricted) mapping run.
type Result struct {
	// Cost is the minimal F found under the architecture's cost model:
	// 7·(SWAPs) + 4·(direction switches) in the paper model, the weighted
	// sum of per-edge SWAP and switch weights under a calibration model.
	Cost int
	// Solution holds the frame mappings, permutations and switch flags.
	// Its physical-qubit indices refer to WorkArch.
	Solution *encoder.Solution
	// WorkArch is the architecture the instance was solved on — either the
	// original or a restricted subset (paper §4.1).
	WorkArch *arch.Arch
	// SubsetBack maps WorkArch physical indices back to the original
	// architecture's indices; nil when no restriction was applied.
	SubsetBack []int
	// PermPoints is |G'| (free initial mapping not counted).
	PermPoints int
	// Engine names the solving engine ("sat" or "dp").
	Engine string
	// Solves counts reasoning-engine invocations (SAT engine only).
	Solves int
	// Encodes counts encoder.Encode calls behind this result (SAT engine
	// only; 0 for the DP engine). The incremental descent encodes exactly
	// once per SolveSAT call, so a plain run reports 1 and a §4.1 subset
	// run reports one per attempted subset instance — except subsets whose
	// admissible lower bound already exceeded the shared incumbent's strict
	// bound, which are refuted without encoding at all.
	Encodes int
	// Conflicts counts CDCL conflicts across all solver invocations of the
	// run (SAT engine only; 0 for the DP engine).
	Conflicts int64
	// BoundProbes counts solver invocations that probed a cost bound via
	// guard assumptions — the descent steps proper, excluding unbounded
	// initial solves (SAT engine only). A §4.1 run aggregates the probes of
	// every attempted subset.
	BoundProbes int
	// BoundJumps counts UNSAT probes where core analysis paid off: the
	// minimized assumption core refuted a looser bound than the tightest
	// one assumed, so the floor advanced past what the probe's conjunction
	// alone implies (SAT engine only).
	BoundJumps int
	// SATThreads is the portfolio width the SAT engine solved with (1 for
	// the plain deterministic solver; 0 for the DP engine).
	SATThreads int
	// SharedClauses counts learnt clauses imported across portfolio workers
	// during the run (sat.Stats.SharedImports aggregated over all workers;
	// 0 when SATThreads ≤ 1). A §4.1 run sums every subset's imports.
	SharedClauses int64
	// LowerBound is the admissible lower bound on F that seeded the
	// descent (0 when disabled or trivial; SAT engine only). For a §4.1
	// run it is the bound the shared descent's floor was seeded from —
	// the minimum over the attempted subsets' own bounds.
	LowerBound int
	// SubsetsPruned counts §4.1 subsets retired without any solver probe of
	// their own: their admissible lower bound showed they could not beat
	// the incumbent (or an externally asserted strict bound), so they were
	// dropped from the shared instance's pending family. 0 outside the
	// subset fan-out.
	SubsetsPruned int
	// CoreFamilyRefutations counts UNSAT probes on the shared §4.1
	// instance whose assumption core refuted the whole pending subset
	// family at once — one conflict analysis standing in for a per-subset
	// round of probes. 0 outside the subset fan-out.
	CoreFamilyRefutations int
	// OrbitHits counts §4.1 subsets whose result was transferred from
	// their coupling-graph automorphism orbit's representative instead of
	// being re-proven: symmetric architectures (rings, grids) collapse
	// many subsets onto one proof. 0 on asymmetric architectures and
	// outside the subset fan-out.
	OrbitHits int
	// Minimal reports whether Cost is PROVEN minimal for this instance by
	// the run itself: the SAT descent reached UNSAT below Cost (or Cost is
	// 0), or the DP/brute oracle ran to completion. A conflict-budgeted
	// descent that was truncated reports false even when its best model
	// happens to be optimal. Note this is per-instance proof — a
	// strategy-restricted instance's proven optimum may still exceed the
	// unrestricted minimum.
	Minimal bool
	// Degraded reports that the run hit its context deadline or conflict
	// budget and returned the best incumbent instead of a proven optimum
	// (anytime mode, SATOptions.Anytime). The Solution is a fully valid
	// mapping; only the minimality proof is missing, so Minimal is always
	// false when Degraded is set.
	Degraded bool
	// BoundGap bounds a Degraded result's distance from the true optimum:
	// the descent had refuted every bound below Cost−BoundGap when it was
	// cut off, so the optimum lies in [Cost−BoundGap, Cost] (cost-model
	// units). 0 when the proof completed — or when the truncation happened
	// before any floor was established, in which case BoundGap equals Cost
	// (the trivial gap).
	BoundGap int
	// Runtime is the wall-clock solving time.
	Runtime time.Duration
}

// markAnytime records a best-effort truncation on the result: the incumbent
// of the given cost is being handed back with its proof unfinished, and lo —
// the largest bound known refuted — dates how far the proof got. Minimal is
// cleared (a truncated descent proves nothing) and BoundGap set so the true
// optimum is bracketed in [cost−BoundGap, cost].
func (r *Result) markAnytime(cost, lo int) {
	r.Minimal = false
	r.Degraded = true
	r.BoundGap = 0
	if gap := cost - 1 - lo; gap > 0 {
		r.BoundGap = gap
	}
}

// translate maps a WorkArch physical index to the original architecture.
func (r *Result) translate(i int) int {
	if r.SubsetBack == nil {
		return i
	}
	return r.SubsetBack[i]
}

// InitialMapping returns the initial logical→physical mapping in original
// architecture indices.
func (r *Result) InitialMapping() perm.Mapping {
	mp := r.Solution.FrameMappings[0].Copy()
	for j, i := range mp {
		mp[j] = r.translate(i)
	}
	return mp
}

// FinalMapping returns the mapping after the last gate in original indices.
func (r *Result) FinalMapping() perm.Mapping {
	mp := r.Solution.FinalMapping().Copy()
	for j, i := range mp {
		mp[j] = r.translate(i)
	}
	return mp
}

// Ops materializes the mapped skeleton as a stream of SWAP and CNOT
// operations on the original architecture's physical qubits. The SWAP
// sequences realizing each inter-frame permutation are recovered from the
// swap-distance table of the working architecture — the weighted table
// when its cost model is non-uniform, so the rebuilt paths follow the
// same cheapest edges the solver charged for — and their count equals the
// solution's SwapCount (preserving the optimal cost).
func (r *Result) Ops(sk *circuit.Skeleton) ([]circuit.MappedOp, error) {
	sol := r.Solution
	n := sk.NumQubits
	space := perm.NewSpace(r.WorkArch.NumQubits(), n)
	cm := r.WorkArch.Cost()
	var swapPath func(from, to perm.Mapping) ([]perm.Edge, bool)
	if cm.UniformSwap() {
		table := perm.NewSwapTable(space, r.WorkArch.UndirectedEdges())
		swapPath = table.SwapPath
	} else {
		table := perm.NewWeightedSwapTable(space, r.WorkArch.UndirectedEdges(), cm.EdgeSwapWeight)
		swapPath = table.SwapPath
	}

	var ops []circuit.MappedOp
	frame := 0
	for k, g := range sk.Gates {
		// Emit the permutation's swaps when entering a new frame.
		for frame < sol.GateFrame[k] {
			path, ok := swapPath(sol.FrameMappings[frame], sol.FrameMappings[frame+1])
			if !ok {
				return nil, fmt.Errorf("exact: frames %d→%d unreachable by swaps", frame, frame+1)
			}
			if len(path) != sol.PermSwaps[frame] {
				// A proven-minimal model always charges each transition its
				// cheapest realization, so any mismatch there is a decode
				// bug. A truncated descent's incumbent (Degraded) may charge
				// more swaps than the cheapest path needs — materialize the
				// cheap path; the emitted circuit only undercuts the
				// reported upper-bound cost, never exceeds it.
				if !r.Degraded || len(path) > sol.PermSwaps[frame] {
					return nil, fmt.Errorf("exact: frame %d swap path length %d, solution says %d",
						frame, len(path), sol.PermSwaps[frame])
				}
			}
			for _, e := range path {
				ops = append(ops, circuit.MappedOp{Swap: true, A: r.translate(e.A), B: r.translate(e.B)})
			}
			frame++
		}
		mp := sol.FrameMappings[sol.GateFrame[k]]
		pc, pt := mp[g.Control], mp[g.Target]
		op := circuit.MappedOp{GateIndex: k, Control: r.translate(pc), Target: r.translate(pt), Switched: sol.Switched[k]}
		if sol.Switched[k] {
			op.Control, op.Target = op.Target, op.Control
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("cost=%d (swaps=%d, switches=%d) engine=%s |G'|=%d t=%v",
		r.Cost, r.Solution.SwapCount(), r.Solution.SwitchCount(), r.Engine, r.PermPoints, r.Runtime)
}
