package exact

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/revlib"
)

func BenchmarkMiller11SAT(b *testing.B) {
	bm, err := revlib.SuiteByName("miller_11")
	if err != nil {
		b.Fatal(err)
	}
	sk, err := circuit.ExtractSkeleton(bm.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	a := arch.QX4()
	for i := 0; i < b.N; i++ {
		r, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{BinaryDescent: true}})
		if err != nil || r.Cost != 26 {
			b.Fatalf("cost=%v err=%v", r, err)
		}
	}
}
