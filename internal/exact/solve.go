package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
)

// ErrUnsatisfiable marks a problem with no valid mapping: the interaction
// graph does not embed in the coupling graph (on any tried subset), or an
// externally asserted strict SATOptions.StartBound is below the instance's
// true optimum. Test with errors.Is.
var ErrUnsatisfiable = errors.New("no valid mapping exists")

// errBudgetExhausted marks a SAT run whose conflict budget ran out before
// any model was found — there is no best-effort result to return.
var errBudgetExhausted = errors.New("exact: conflict budget exhausted before any mapping was found")

// Engine selects the reasoning backend.
type Engine int

const (
	// EngineSAT uses the paper's symbolic formulation with the CDCL solver.
	EngineSAT Engine = iota
	// EngineDP uses the dynamic-programming oracle.
	EngineDP
)

// String returns "sat" or "dp".
func (e Engine) String() string {
	if e == EngineDP {
		return "dp"
	}
	return "sat"
}

// ParseEngine converts an engine name back into an Engine. It round-trips
// with Engine.String, which is the single definition of the names — every
// layer (portfolio winners, result provenance, CLI flags) resolves through
// these two functions instead of scattered string literals.
func ParseEngine(name string) (Engine, error) {
	for _, e := range []Engine{EngineSAT, EngineDP} {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("exact: unknown engine %q (valid: %s, %s)", name, EngineSAT, EngineDP)
}

// Options configures a Solve run.
type Options struct {
	// Engine selects the backend (default EngineSAT).
	Engine Engine
	// Strategy selects the permutation-point restriction (default
	// StrategyAll, which guarantees minimality).
	Strategy Strategy
	// UseSubsets enables the physical-qubit subset optimization (paper
	// §4.1): all connected n-subsets of the architecture are tried
	// separately and the best result returned.
	UseSubsets bool
	// SAT carries SAT-engine tuning; ignored by the DP engine.
	SAT SATOptions
	// InitialMapping, when non-nil, pins the layout before the first gate
	// (extension; incompatible with UseSubsets since the pin refers to the
	// full architecture's physical indices).
	InitialMapping []int
	// Parallel solves the §4.1 subset instances concurrently on a worker
	// pool bounded by GOMAXPROCS. Workers share a best-cost-so-far bound:
	// with the SAT engine each subset instance starts under the guard
	// assumption F ≤ best−1, so subsets that cannot beat the incumbent are
	// refuted cheaply instead of being solved to their own optimum. The
	// cost is identical to the sequential run; when several subsets tie,
	// the pruning may select a different (equal-cost) witness mapping than
	// sequential enumeration order would.
	Parallel bool
}

// DefaultOptions returns the minimality-guaranteeing configuration of §3.
func DefaultOptions() Options {
	return Options{Engine: EngineSAT, Strategy: StrategyAll}
}

// Solve maps the skeleton to the architecture under the given options and
// returns the best result found. An error is returned for malformed inputs
// or when no valid mapping exists (ErrUnsatisfiable). On a SAT-engine
// failure the accompanying Result, when non-nil, carries only the run's
// counters (Solves/Encodes/Conflicts) — never a Solution. Cancelling the
// context aborts the run — including every in-flight §4.1 subset instance —
// and returns an error wrapping ctx.Err().
func Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) (*Result, error) {
	if sk.Len() == 0 {
		return nil, fmt.Errorf("exact: circuit has no CNOT gates; nothing to map")
	}
	pb := PermBefore(sk, opts.Strategy)
	if opts.InitialMapping != nil && opts.UseSubsets {
		return nil, fmt.Errorf("exact: InitialMapping cannot be combined with UseSubsets")
	}
	if !opts.UseSubsets || sk.NumQubits >= a.NumQubits() {
		return solveOne(ctx, sk, a, pb, opts)
	}
	return solveSubsets(ctx, sk, a, pb, opts)
}

// solveSubsets runs the §4.1 physical-qubit subset optimization: every
// connected n-subset of the architecture is solved as an independent
// instance on a worker pool bounded by GOMAXPROCS (one worker when
// Options.Parallel is false), and the cheapest result wins.
//
// The workers share a best-cost-so-far bound (atomic): a subset picked up
// after an incumbent of cost B is known starts under the SAT engine's
// strict guard assumption F ≤ B−1, so instances that cannot win are
// refuted — usually after a handful of conflicts — instead of being solved
// to their own optimum, and once a zero-cost incumbent exists the
// remaining subsets are skipped outright. This cross-instance pruning is
// sound for the returned cost: a strict-bound UNSAT only ever discards
// mappings that could not have improved on the incumbent.
//
// Error handling: ErrUnsatisfiable means "this subset admits no (winning)
// mapping — try the others". A conflict-budget exhaustion before any model
// voids the minimality proof but keeps the fan-out alive: an incumbent in
// hand is returned as a best-effort result (Minimal false), and only when
// NO subset yields a model does the budget error surface — never disguised
// as unsatisfiability. Any other solveOne failure — an encode failure, an
// unknown engine — is a real error: it cancels the remaining subsets and
// surfaces verbatim.
func solveSubsets(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, pb []bool, opts Options) (*Result, error) {
	start := time.Now()
	subsets := a.ConnectedSubsets(sk.NumQubits)
	if len(subsets) == 0 {
		return nil, fmt.Errorf("exact: %w: no connected subset of %d qubits in %s", ErrUnsatisfiable, sk.NumQubits, a)
	}

	var best atomic.Int64
	best.Store(math.MaxInt64)
	var unproven atomic.Bool // a subset's budget ran dry: optimum unconfirmed
	var solves, encodes, conflicts, boundProbes, boundJumps, sharedClauses atomic.Int64
	results := make([]*Result, len(subsets))
	errs := make([]error, len(subsets))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	solveSubset := func(i int) error {
		incumbent := best.Load()
		if incumbent == 0 {
			return nil // a zero-cost incumbent cannot be beaten; skip
		}
		sub, back := a.Restrict(subsets[i])
		so := opts
		if so.Engine == EngineSAT && incumbent != math.MaxInt64 {
			// b > 0 only excludes incumbents 1..3, which the cost model
			// cannot produce (F is a sum of 7s and 4s, so the smallest
			// positive cost is 4); StartBound 0 stays "disabled".
			if b := int(incumbent) - 1; b > 0 && (so.SAT.StartBound <= 0 || b < so.SAT.StartBound) {
				so.SAT.StartBound = b
				so.SAT.StrictBound = true
			}
		}
		r, err := solveOne(runCtx, sk, sub, pb, so)
		if r != nil {
			// Charge the subset's work to the run totals whether it won,
			// was refuted, or ran out of budget — the counters exist to
			// expose the real cost, pruned probes included.
			solves.Add(int64(r.Solves))
			encodes.Add(int64(r.Encodes))
			conflicts.Add(r.Conflicts)
			boundProbes.Add(int64(r.BoundProbes))
			boundJumps.Add(int64(r.BoundJumps))
			sharedClauses.Add(r.SharedClauses)
		}
		if err != nil {
			if errors.Is(err, ErrUnsatisfiable) {
				// No mapping on this subset beats the incumbent (or exists
				// at all); other subsets may still work.
				return nil
			}
			if errors.Is(err, errBudgetExhausted) {
				// The budget ran out before this subset produced any
				// model. It might still have beaten the incumbent, so the
				// minimality proof is voided — but an incumbent in hand
				// remains a valid best-effort answer, matching the
				// engine's own budget semantics; if NO subset yields a
				// model the budget error surfaces after the loop.
				unproven.Store(true)
				return nil
			}
			return err
		}
		r.SubsetBack = back
		results[i] = r
		for {
			cur := best.Load()
			if int64(r.Cost) >= cur || best.CompareAndSwap(cur, int64(r.Cost)) {
				return nil
			}
		}
	}

	workers := 1
	if opts.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > len(subsets) {
			workers = len(subsets)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain after cancellation
				}
				if err := solveSubset(i); err != nil {
					errs[i] = err
					cancel() // a real failure aborts the remaining subsets
				}
			}
		}()
	}
	for i := range subsets {
		idx <- i
	}
	close(idx)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exact: solve canceled: %w", err)
	}
	for _, err := range errs {
		// Siblings cancelled by another subset's failure report context
		// errors; the originating error is the one to surface.
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}

	var win *Result
	minimal := true
	for _, r := range results {
		if r == nil {
			continue
		}
		minimal = minimal && r.Minimal
		if win == nil || r.Cost < win.Cost {
			win = r
		}
	}
	if win == nil {
		if unproven.Load() {
			// Every subset either had no mapping or hit the budget; a
			// budget starvation must not masquerade as unsatisfiability.
			return nil, errBudgetExhausted
		}
		return nil, fmt.Errorf("exact: %w on any connected %d-subset of %s", ErrUnsatisfiable, sk.NumQubits, a)
	}
	// The counters aggregate every subset attempt — wins, refutations and
	// truncated probes alike — and minimality is claimed only when every
	// solved instance proved its own (pruned subsets are proven by their
	// strict-bound UNSAT) and no subset's budget ran dry. A zero-cost
	// winner is trivially optimal whatever happened elsewhere.
	win.Solves = int(solves.Load())
	win.Encodes = int(encodes.Load())
	win.Conflicts = conflicts.Load()
	win.BoundProbes = int(boundProbes.Load())
	win.BoundJumps = int(boundJumps.Load())
	win.SharedClauses = sharedClauses.Load()
	win.Minimal = win.Cost == 0 || (minimal && !unproven.Load())
	win.Runtime = time.Since(start)
	return win, nil
}

func solveOne(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, pb []bool, opts Options) (*Result, error) {
	p := encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb, InitialMapping: opts.InitialMapping}
	switch opts.Engine {
	case EngineDP:
		return SolveDP(ctx, p)
	case EngineSAT:
		return SolveSAT(ctx, p, opts.SAT)
	}
	return nil, fmt.Errorf("exact: unknown engine %d", int(opts.Engine))
}
