package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
)

// ErrUnsatisfiable marks a problem with no valid mapping: the interaction
// graph does not embed in the coupling graph (on any tried subset), or an
// externally asserted strict SATOptions.StartBound is below the instance's
// true optimum. Test with errors.Is.
var ErrUnsatisfiable = errors.New("no valid mapping exists")

// ErrBudgetExhausted marks a SAT run whose conflict budget ran out before
// any model was found — there is no best-effort result to return. Test with
// errors.Is; the portfolio's degradation ladder keys its heuristic fallback
// on it (alongside context.DeadlineExceeded).
var ErrBudgetExhausted = errors.New("exact: conflict budget exhausted before any mapping was found")

// Engine selects the reasoning backend.
type Engine int

const (
	// EngineSAT uses the paper's symbolic formulation with the CDCL solver.
	EngineSAT Engine = iota
	// EngineDP uses the dynamic-programming oracle.
	EngineDP
)

// String returns "sat" or "dp".
func (e Engine) String() string {
	if e == EngineDP {
		return "dp"
	}
	return "sat"
}

// ParseEngine converts an engine name back into an Engine. It round-trips
// with Engine.String, which is the single definition of the names — every
// layer (portfolio winners, result provenance, CLI flags) resolves through
// these two functions instead of scattered string literals.
func ParseEngine(name string) (Engine, error) {
	for _, e := range []Engine{EngineSAT, EngineDP} {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("exact: unknown engine %q (valid: %s, %s)", name, EngineSAT, EngineDP)
}

// Options configures a Solve run.
type Options struct {
	// Engine selects the backend (default EngineSAT).
	Engine Engine
	// Strategy selects the permutation-point restriction (default
	// StrategyAll, which guarantees minimality).
	Strategy Strategy
	// UseSubsets enables the physical-qubit subset optimization (paper
	// §4.1): all connected n-subsets of the architecture are tried
	// separately and the best result returned.
	UseSubsets bool
	// SAT carries SAT-engine tuning; ignored by the DP engine.
	SAT SATOptions
	// InitialMapping, when non-nil, pins the layout before the first gate
	// (extension; incompatible with UseSubsets since the pin refers to the
	// full architecture's physical indices).
	InitialMapping []int
	// Parallel widens the §4.1 fan-out within the ThreadBudget. With the
	// SAT engine the fan-out runs on ONE shared incremental instance, so
	// Parallel means bound-probe parallelism: the clause-sharing portfolio
	// (sat.Pool) widens to the budget instead of subset-level encode
	// multiplication. With the DP engine the orbit-representative
	// instances are solved concurrently on a worker pool. The cost is
	// identical to the sequential run; when several subsets tie, the
	// witness mapping may differ.
	Parallel bool
}

// DefaultOptions returns the minimality-guaranteeing configuration of §3.
func DefaultOptions() Options {
	return Options{Engine: EngineSAT, Strategy: StrategyAll}
}

// Solve maps the skeleton to the architecture under the given options and
// returns the best result found. An error is returned for malformed inputs
// or when no valid mapping exists (ErrUnsatisfiable). On a SAT-engine
// failure the accompanying Result, when non-nil, carries only the run's
// counters (Solves/Encodes/Conflicts) — never a Solution. Cancelling the
// context aborts the run — including every in-flight §4.1 subset instance —
// and returns an error wrapping ctx.Err().
func Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) (*Result, error) {
	if sk.Len() == 0 {
		return nil, fmt.Errorf("exact: circuit has no CNOT gates; nothing to map")
	}
	pb := PermBefore(sk, opts.Strategy)
	if opts.InitialMapping != nil && opts.UseSubsets {
		return nil, fmt.Errorf("exact: InitialMapping cannot be combined with UseSubsets")
	}
	if !opts.UseSubsets || sk.NumQubits >= a.NumQubits() {
		return solveOne(ctx, sk, a, pb, opts)
	}
	if opts.Engine == EngineSAT {
		return solveSubsetsShared(ctx, sk, a, pb, opts)
	}
	return solveSubsets(ctx, sk, a, pb, opts)
}

// solveSubsets runs the §4.1 physical-qubit subset optimization for the
// non-SAT engines (the SAT engine routes to solveSubsetsShared, which fuses
// the whole fan-out into one incremental instance): one orbit representative
// per coupling-graph automorphism orbit is solved as an independent instance
// on a worker pool, and the cheapest result wins. Orbit members beyond the
// representative inherit its cost and proof (Result.OrbitHits) — an
// automorphism of the directed coupling map carries any mapping on one
// subset to an equal-cost mapping on the other.
//
// The workers share a best-cost-so-far bound (atomic): once a zero-cost
// incumbent exists the remaining representatives are skipped outright
// (Result.SubsetsPruned). The worker count comes from the ThreadBudget, so
// subset lanes and any engine-internal parallelism share one GOMAXPROCS
// budget instead of multiplying.
//
// Error handling: ErrUnsatisfiable means "this subset admits no mapping —
// try the others". A conflict-budget exhaustion before any model voids the
// minimality proof but keeps the fan-out alive: an incumbent in hand is
// returned as a best-effort result (Minimal false), and only when NO subset
// yields a model does the budget error surface — never disguised as
// unsatisfiability. Any other solveOne failure — an encode failure, an
// unknown engine — is a real error: it cancels the remaining subsets and
// surfaces verbatim.
func solveSubsets(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, pb []bool, opts Options) (*Result, error) {
	start := time.Now()
	subsets := a.ConnectedSubsets(sk.NumQubits)
	if len(subsets) == 0 {
		return nil, fmt.Errorf("exact: %w: no connected subset of %d qubits in %s", ErrUnsatisfiable, sk.NumQubits, a)
	}
	orbits := arch.SubsetOrbits(subsets, a.Automorphisms(0))
	orbitHits := len(subsets) - len(orbits)
	reps := make([][]int, len(orbits))
	for oi, orbit := range orbits {
		reps[oi] = subsets[orbit[0]]
	}

	var best atomic.Int64
	best.Store(math.MaxInt64)
	var unproven atomic.Bool // a subset's budget ran dry: optimum unconfirmed
	var solves, encodes, conflicts, boundProbes, boundJumps, sharedClauses, subsetsPruned atomic.Int64
	results := make([]*Result, len(reps))
	errs := make([]error, len(reps))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	solveSubset := func(i int) error {
		if best.Load() == 0 {
			subsetsPruned.Add(1)
			return nil // a zero-cost incumbent cannot be beaten; skip
		}
		sub, back := a.Restrict(reps[i])
		r, err := solveOne(runCtx, sk, sub, pb, opts)
		if r != nil {
			// Charge the subset's work to the run totals whether it won,
			// was refuted, or ran out of budget — the counters exist to
			// expose the real cost, pruned probes included.
			solves.Add(int64(r.Solves))
			encodes.Add(int64(r.Encodes))
			conflicts.Add(r.Conflicts)
			boundProbes.Add(int64(r.BoundProbes))
			boundJumps.Add(int64(r.BoundJumps))
			sharedClauses.Add(r.SharedClauses)
		}
		if err != nil {
			if errors.Is(err, ErrUnsatisfiable) {
				// No mapping on this subset beats the incumbent (or exists
				// at all); other subsets may still work.
				return nil
			}
			if errors.Is(err, ErrBudgetExhausted) {
				// The budget ran out before this subset produced any
				// model. It might still have beaten the incumbent, so the
				// minimality proof is voided — but an incumbent in hand
				// remains a valid best-effort answer, matching the
				// engine's own budget semantics; if NO subset yields a
				// model the budget error surfaces after the loop.
				unproven.Store(true)
				return nil
			}
			return err
		}
		r.SubsetBack = back
		results[i] = r
		for {
			cur := best.Load()
			if int64(r.Cost) >= cur || best.CompareAndSwap(cur, int64(r.Cost)) {
				return nil
			}
		}
	}

	workers := 1
	if opts.Parallel {
		// One budget across the fan-out: subset lanes × per-lane solver
		// threads must fit in GOMAXPROCS.
		workers = ThreadBudget{Workers: runtime.GOMAXPROCS(0), Threads: opts.SAT.Threads}.Clamp().Workers
		if workers > len(reps) {
			workers = len(reps)
		}
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain after cancellation
				}
				if err := safeSolveSubset(solveSubset, i); err != nil {
					errs[i] = err
					cancel() // a real failure aborts the remaining subsets
				}
			}
		}()
	}
	for i := range reps {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var win *Result
	minimal := true
	for _, r := range results {
		if r == nil {
			continue
		}
		minimal = minimal && r.Minimal
		if win == nil || r.Cost < win.Cost {
			win = r
		}
	}

	if err := ctx.Err(); err != nil {
		// The family's deadline expired mid-fan-out. A subset that already
		// produced an incumbent makes this a best-effort aggregation, not a
		// failure — exhaustion on one subset must never discard another's
		// valid mapping (anytime mode only; historically this erred).
		if !anytimeReturn(opts.SAT, win != nil, err) {
			return nil, fmt.Errorf("exact: solve canceled: %w", err)
		}
		unproven.Store(true)
	}
	for _, err := range errs {
		// Siblings cancelled by another subset's failure report context
		// errors; the originating error is the one to surface.
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}

	if win == nil {
		if unproven.Load() {
			// Every subset either had no mapping or hit the budget; a
			// budget starvation must not masquerade as unsatisfiability.
			return nil, ErrBudgetExhausted
		}
		return nil, fmt.Errorf("exact: %w on any connected %d-subset of %s", ErrUnsatisfiable, sk.NumQubits, a)
	}
	// The counters aggregate every representative attempt — wins,
	// refutations and truncated probes alike — and minimality is claimed
	// only when every solved instance proved its own (orbit members are
	// proven by their representative) and no subset's budget ran dry. A
	// zero-cost winner is trivially optimal whatever happened elsewhere.
	win.Solves = int(solves.Load())
	win.Encodes = int(encodes.Load())
	win.Conflicts = conflicts.Load()
	win.BoundProbes = int(boundProbes.Load())
	win.BoundJumps = int(boundJumps.Load())
	win.SharedClauses = sharedClauses.Load()
	win.SubsetsPruned = int(subsetsPruned.Load())
	win.OrbitHits = orbitHits
	win.Minimal = win.Cost == 0 || (minimal && !unproven.Load())
	if !win.Minimal && unproven.Load() {
		// Exhaustion elsewhere in the family: the winner's mapping is valid,
		// but an unattempted subset could in principle have been cheaper, so
		// only the trivial gap is known.
		win.markAnytime(win.Cost, -1)
	}
	win.Runtime = time.Since(start)
	return win, nil
}

// safeSolveSubset shields a fan-out worker lane from a panicking engine:
// the panic becomes that subset's error (aborting the family like any other
// real failure) instead of killing the worker goroutine and the process.
func safeSolveSubset(solve func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exact: subset %d worker panic: %v", i, r)
		}
	}()
	return solve(i)
}

func solveOne(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, pb []bool, opts Options) (*Result, error) {
	p := encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb, InitialMapping: opts.InitialMapping}
	switch opts.Engine {
	case EngineDP:
		return SolveDP(ctx, p)
	case EngineSAT:
		return SolveSAT(ctx, p, opts.SAT)
	}
	return nil, fmt.Errorf("exact: unknown engine %d", int(opts.Engine))
}
