package exact

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
)

// ErrUnsatisfiable marks a problem with no valid mapping: the interaction
// graph does not embed in the coupling graph (on any tried subset), or an
// externally asserted SATOptions.StartBound is below the instance's true
// optimum. Test with errors.Is.
var ErrUnsatisfiable = errors.New("no valid mapping exists")

// Engine selects the reasoning backend.
type Engine int

const (
	// EngineSAT uses the paper's symbolic formulation with the CDCL solver.
	EngineSAT Engine = iota
	// EngineDP uses the dynamic-programming oracle.
	EngineDP
)

// String returns "sat" or "dp".
func (e Engine) String() string {
	if e == EngineDP {
		return "dp"
	}
	return "sat"
}

// ParseEngine converts an engine name back into an Engine. It round-trips
// with Engine.String, which is the single definition of the names — every
// layer (portfolio winners, result provenance, CLI flags) resolves through
// these two functions instead of scattered string literals.
func ParseEngine(name string) (Engine, error) {
	for _, e := range []Engine{EngineSAT, EngineDP} {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("exact: unknown engine %q (valid: %s, %s)", name, EngineSAT, EngineDP)
}

// Options configures a Solve run.
type Options struct {
	// Engine selects the backend (default EngineSAT).
	Engine Engine
	// Strategy selects the permutation-point restriction (default
	// StrategyAll, which guarantees minimality).
	Strategy Strategy
	// UseSubsets enables the physical-qubit subset optimization (paper
	// §4.1): all connected n-subsets of the architecture are tried
	// separately and the best result returned.
	UseSubsets bool
	// SAT carries SAT-engine tuning; ignored by the DP engine.
	SAT SATOptions
	// InitialMapping, when non-nil, pins the layout before the first gate
	// (extension; incompatible with UseSubsets since the pin refers to the
	// full architecture's physical indices).
	InitialMapping []int
	// Parallel solves the §4.1 subset instances concurrently, one
	// goroutine per connected subset. The result is identical to the
	// sequential run (ties broken by subset enumeration order).
	Parallel bool
}

// DefaultOptions returns the minimality-guaranteeing configuration of §3.
func DefaultOptions() Options {
	return Options{Engine: EngineSAT, Strategy: StrategyAll}
}

// Solve maps the skeleton to the architecture under the given options and
// returns the best result found. An error is returned for malformed inputs
// or when no valid mapping exists (ErrUnsatisfiable). Cancelling the
// context aborts the run — including every in-flight §4.1 subset instance —
// and returns an error wrapping ctx.Err().
func Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) (*Result, error) {
	if sk.Len() == 0 {
		return nil, fmt.Errorf("exact: circuit has no CNOT gates; nothing to map")
	}
	pb := PermBefore(sk, opts.Strategy)
	if opts.InitialMapping != nil && opts.UseSubsets {
		return nil, fmt.Errorf("exact: InitialMapping cannot be combined with UseSubsets")
	}
	if !opts.UseSubsets || sk.NumQubits >= a.NumQubits() {
		return solveOne(ctx, sk, a, pb, opts)
	}

	start := time.Now()
	subsets := a.ConnectedSubsets(sk.NumQubits)
	if len(subsets) == 0 {
		return nil, fmt.Errorf("exact: %w: no connected subset of %d qubits in %s", ErrUnsatisfiable, sk.NumQubits, a)
	}
	results := make([]*Result, len(subsets))
	if opts.Parallel {
		var wg sync.WaitGroup
		for i, subset := range subsets {
			wg.Add(1)
			go func(i int, subset []int) {
				defer wg.Done()
				sub, back := a.Restrict(subset)
				r, err := solveOne(ctx, sk, sub, pb, opts)
				if err != nil {
					return // subset admits no valid mapping (or run canceled)
				}
				r.SubsetBack = back
				results[i] = r
			}(i, subset)
		}
		wg.Wait()
	} else {
		for i, subset := range subsets {
			if ctx.Err() != nil {
				break
			}
			sub, back := a.Restrict(subset)
			r, err := solveOne(ctx, sk, sub, pb, opts)
			if err != nil {
				// This subset admits no valid mapping (e.g. the interaction
				// graph does not embed); other subsets may still work.
				continue
			}
			r.SubsetBack = back
			results[i] = r
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exact: solve canceled: %w", err)
	}
	var best *Result
	for _, r := range results {
		if r != nil && (best == nil || r.Cost < best.Cost) {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("exact: %w on any connected %d-subset of %s", ErrUnsatisfiable, sk.NumQubits, a)
	}
	best.Runtime = time.Since(start)
	return best, nil
}

func solveOne(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, pb []bool, opts Options) (*Result, error) {
	p := encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb, InitialMapping: opts.InitialMapping}
	switch opts.Engine {
	case EngineDP:
		return SolveDP(ctx, p)
	case EngineSAT:
		return SolveSAT(ctx, p, opts.SAT)
	}
	return nil, fmt.Errorf("exact: unknown engine %d", int(opts.Engine))
}
