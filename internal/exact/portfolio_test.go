package exact

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
)

// TestSATThreadsParity: the clause-sharing portfolio must reproduce the
// single-thread minimal cost and minimality proof on every instance — only
// the witness (and hence the concrete ops) may differ — and the thread
// count and sharing counters must surface in the result. GOMAXPROCS is
// raised so the engine's width cap doesn't degrade the portfolio to a
// pass-through on small CI boxes.
func TestSATThreadsParity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	a := arch.QX4()
	instances := []*circuit.Skeleton{
		circuit.Figure1b(),
		randomSkeleton(7, 5, 8),
		randomSkeleton(21, 5, 10),
	}
	for i, sk := range instances {
		single, err := Solve(bg, sk, a, Options{Engine: EngineSAT})
		if err != nil {
			t.Fatalf("instance %d single-thread: %v", i, err)
		}
		multi, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{Threads: 4}})
		if err != nil {
			t.Fatalf("instance %d 4-thread: %v", i, err)
		}
		if multi.Cost != single.Cost {
			t.Errorf("instance %d: portfolio cost %d, single-thread cost %d", i, multi.Cost, single.Cost)
		}
		if !multi.Minimal {
			t.Errorf("instance %d: portfolio lost the minimality proof", i)
		}
		if multi.Encodes != 1 {
			t.Errorf("instance %d: portfolio re-encoded (%d encodes)", i, multi.Encodes)
		}
		if single.SATThreads != 1 || multi.SATThreads != 4 {
			t.Errorf("instance %d: SATThreads = %d/%d, want 1/4", i, single.SATThreads, multi.SATThreads)
		}
		if single.SharedClauses != 0 {
			t.Errorf("instance %d: single-thread run reported %d shared clauses", i, single.SharedClauses)
		}
		// The portfolio's witness must still realize a valid solution.
		if _, err := multi.Ops(sk); err != nil {
			t.Errorf("instance %d: portfolio ops: %v", i, err)
		}
	}
}

// TestSATThreadsDefaultSingle: Threads unset (or ≤ 1) must keep the fully
// deterministic single-solver path.
func TestSATThreadsDefaultSingle(t *testing.T) {
	r1, err := Solve(bg, circuit.Figure1b(), arch.QX4(), Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(bg, circuit.Figure1b(), arch.QX4(), Options{Engine: EngineSAT, SAT: SATOptions{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || r1.Conflicts != r2.Conflicts || r1.BoundProbes != r2.BoundProbes {
		t.Errorf("threads=1 diverged from default: cost %d/%d, conflicts %d/%d, probes %d/%d",
			r1.Cost, r2.Cost, r1.Conflicts, r2.Conflicts, r1.BoundProbes, r2.BoundProbes)
	}
	if r1.SharedClauses != 0 || r2.SharedClauses != 0 {
		t.Errorf("single-thread runs reported clause sharing: %d, %d", r1.SharedClauses, r2.SharedClauses)
	}
}
