package exact

import (
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/revlib"
)

// table1Skeletons returns the small Table-1 benchmarks the perf snapshots
// (BENCH_6/BENCH_7) run, as skeletons.
func table1Skeletons(t *testing.T) map[string]*circuit.Skeleton {
	t.Helper()
	names := []string{"3_17_13", "ex-1_166", "ham3_102", "miller_11", "4gt11_84"}
	out := make(map[string]*circuit.Skeleton, len(names))
	for _, b := range revlib.Suite() {
		for _, n := range names {
			if b.Name == n {
				sk, err := circuit.ExtractSkeleton(b.Circuit)
				if err != nil {
					t.Fatalf("%s: %v", n, err)
				}
				out[n] = sk
			}
		}
	}
	if len(out) != len(names) {
		t.Fatalf("found %d of %d benchmarks", len(out), len(names))
	}
	return out
}

// TestSharedSubsetsDifferentialTable1 is the differential gate for the
// shared-instance §4.1 fan-out: on every small Table-1 benchmark and every
// permutation strategy, the shared SAT path must reproduce the per-subset
// DP fan-out's cost, yield a valid op stream, keep its minimality proof,
// and encode exactly once.
func TestSharedSubsetsDifferentialTable1(t *testing.T) {
	a := arch.QX4()
	sks := table1Skeletons(t)
	for name, sk := range sks {
		for _, strat := range []Strategy{StrategyAll, StrategyDisjoint, StrategyOdd, StrategyTriangle} {
			dp, errD := Solve(bg, sk, a, Options{Engine: EngineDP, Strategy: strat, UseSubsets: true})
			st, errS := Solve(bg, sk, a, Options{Engine: EngineSAT, Strategy: strat, UseSubsets: true})
			if (errD == nil) != (errS == nil) {
				t.Fatalf("%s/%v: DP err=%v, SAT err=%v", name, strat, errD, errS)
			}
			if errD != nil {
				continue // both engines agree the restricted instance has no mapping
			}
			if dp.Cost != st.Cost {
				t.Fatalf("%s/%v: DP cost %d, shared SAT cost %d", name, strat, dp.Cost, st.Cost)
			}
			if !st.Minimal {
				t.Errorf("%s/%v: shared SAT run lost the minimality proof", name, strat)
			}
			if st.Encodes != 1 {
				t.Errorf("%s/%v: shared fan-out encoded %d times, want 1", name, strat, st.Encodes)
			}
			if st.SubsetBack == nil {
				t.Errorf("%s/%v: shared result should carry the subset back-mapping", name, strat)
			}
			applyOps(t, sk, a, st)
		}
	}
}

// TestSharedSubsetsParallelParity: Parallel on the shared instance means
// bound-probe parallelism — same single encode, same cost, valid ops.
func TestSharedSubsetsParallelParity(t *testing.T) {
	a := arch.QX4()
	for name, sk := range table1Skeletons(t) {
		seq, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		par, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true, Parallel: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if seq.Cost != par.Cost {
			t.Fatalf("%s: sequential %d vs parallel %d", name, seq.Cost, par.Cost)
		}
		if par.Encodes != 1 {
			t.Errorf("%s: parallel shared fan-out encoded %d times, want 1", name, par.Encodes)
		}
		if !par.Minimal {
			t.Errorf("%s: parallel shared run lost the minimality proof", name)
		}
		applyOps(t, sk, a, par)
	}
}

// TestSharedSubsetsBinaryDescentParity: the binary bound search over the
// shared family matches the linear descent's cost and proof.
func TestSharedSubsetsBinaryDescentParity(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 8; seed++ {
		sk := randomSkeleton(seed, 3, 6)
		lin, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		bin, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true, SAT: SATOptions{BinaryDescent: true}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if lin.Cost != bin.Cost {
			t.Fatalf("seed %d: linear=%d binary=%d", seed, lin.Cost, bin.Cost)
		}
		if !bin.Minimal || bin.Encodes != 1 {
			t.Errorf("seed %d: binary minimal=%v encodes=%d", seed, bin.Minimal, bin.Encodes)
		}
		applyOps(t, sk, a, bin)
	}
}

// TestSharedSubsetsOrbitTransferRing: on a symmetric architecture the
// fan-out collapses to one orbit representative. A 6-ring has six connected
// 3-subsets in a single rotation orbit, so five results transfer
// (OrbitHits = 5) and the run still matches the DP fan-out's cost.
func TestSharedSubsetsOrbitTransferRing(t *testing.T) {
	a := arch.Ring(6)
	for seed := int64(0); seed < 4; seed++ {
		sk := randomSkeleton(seed, 3, 5)
		st, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.Cost != dp.Cost {
			t.Fatalf("seed %d: shared SAT %d vs DP %d", seed, st.Cost, dp.Cost)
		}
		if st.OrbitHits != 5 {
			t.Errorf("seed %d: OrbitHits = %d, want 5 (6 subsets, 1 rotation orbit)", seed, st.OrbitHits)
		}
		if st.OrbitHits+st.SubsetsPruned == 0 {
			t.Errorf("seed %d: symmetric architecture retired no subsets without probes", seed)
		}
		if st.Encodes != 1 {
			t.Errorf("seed %d: encodes = %d, want 1", seed, st.Encodes)
		}
		applyOps(t, sk, a, st)
	}
}

// TestSharedSubsetsOrbitTransferGrid: the 2×2 grid's automorphism pairs its
// four connected 3-subsets into two orbits — two results transfer.
func TestSharedSubsetsOrbitTransferGrid(t *testing.T) {
	a := arch.Grid(2, 2)
	subsets := a.ConnectedSubsets(3)
	orbits := arch.SubsetOrbits(subsets, a.Automorphisms(0))
	wantHits := len(subsets) - len(orbits)
	if wantHits == 0 {
		t.Fatalf("grid 2x2 should have non-trivial subset orbits (%d subsets, %d orbits)", len(subsets), len(orbits))
	}
	sk := randomSkeleton(7, 3, 5)
	st, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.OrbitHits != wantHits {
		t.Errorf("OrbitHits = %d, want %d", st.OrbitHits, wantHits)
	}
	dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cost != dp.Cost {
		t.Fatalf("shared SAT %d vs DP %d", st.Cost, dp.Cost)
	}
	applyOps(t, sk, a, st)
}

// TestSharedSubsetsAsymmetricNoOrbits: QX4's directed coupling map has a
// trivial automorphism group, so nothing transfers — every proof must be
// earned by the descent itself.
func TestSharedSubsetsAsymmetricNoOrbits(t *testing.T) {
	a := arch.QX4()
	sk := randomSkeleton(3, 3, 5)
	st, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.OrbitHits != 0 {
		t.Errorf("OrbitHits = %d on an asymmetric architecture, want 0", st.OrbitHits)
	}
}

// TestThreadBudgetClamp pins the unified budget arithmetic: lanes × width
// never exceeds GOMAXPROCS (width shrinks first, lanes stay), and
// degenerate inputs normalize to 1.
func TestThreadBudgetClamp(t *testing.T) {
	max := runtime.GOMAXPROCS(0)
	if got := (ThreadBudget{}).Clamp(); got.Workers != 1 || got.Threads != 1 {
		t.Errorf("zero budget clamps to %+v, want {1 1}", got)
	}
	for _, in := range []ThreadBudget{
		{Workers: 0, Threads: 0},
		{Workers: 1, Threads: 1 << 20},
		{Workers: 1 << 20, Threads: 1 << 20},
		{Workers: 4, Threads: 4},
		{Workers: max, Threads: 2},
	} {
		got := in.Clamp()
		if got.Workers < 1 || got.Threads < 1 {
			t.Errorf("Clamp(%+v) = %+v: lanes and width must stay ≥ 1", in, got)
		}
		if got.Workers > max {
			t.Errorf("Clamp(%+v) = %+v: lanes exceed GOMAXPROCS=%d", in, got, max)
		}
		if got.Threads > 1 && got.Workers*got.Threads > max {
			t.Errorf("Clamp(%+v) = %+v: product exceeds GOMAXPROCS=%d", in, got, max)
		}
		if in.Workers >= 1 && in.Workers <= max && got.Workers != in.Workers {
			t.Errorf("Clamp(%+v) = %+v: in-budget lane count must be preserved (width shrinks first)", in, got)
		}
	}
}
