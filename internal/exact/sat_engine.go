package exact

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/encoder"
	"repro/internal/sat"
)

// SATOptions tunes the SAT-based engine.
type SATOptions struct {
	// StartBound, when positive, enforces F ≤ StartBound on the first
	// solve (e.g. a known upper bound from the DP engine or a heuristic).
	// Zero or negative disables it; a genuine zero bound is unnecessary
	// because the descent reaches it anyway. The bound is applied as a
	// guard assumption, never as permanent clauses, so a StartBound below
	// the true optimum of the (possibly strategy-restricted) instance is
	// safe by default: the engine detects the failed assumption, relaxes
	// the bound in place on the same solver, and continues — no caller-side
	// re-encode is needed (the old "retry unbounded" dance).
	StartBound int
	// StrictBound changes the StartBound failure mode: a bound-induced
	// UNSAT is reported as ErrUnsatisfiable instead of being relaxed. The
	// §4.1 fan-out sets it to prune subset instances that cannot beat the
	// shared incumbent cost — for pruning, "no mapping under the bound"
	// IS the answer.
	StrictBound bool
	// BinaryDescent switches the minimization loop from linear descent
	// (assume F ≤ cost−1 after each model) to binary search on the bound.
	// Both modes run on one solver and one encoding, probing bounds via
	// guard assumptions.
	BinaryDescent bool
	// MaxConflicts bounds each individual solver call; 0 means unlimited.
	// When the budget is exhausted the best model so far is returned with
	// Result.Minimal false (the proof was truncated).
	MaxConflicts int64
}

// SolveSAT finds the minimal-cost mapping for the problem using the paper's
// symbolic formulation and the CDCL solver: solve, decode the model's cost
// C, enforce F ≤ C−1, and repeat until UNSAT — the last model is minimal
// (§3.3, realized by bound tightening instead of a native optimizer).
//
// The descent is fully incremental: the instance is encoded exactly once
// (Result.Encodes == 1) and every bound — the caller's StartBound, each
// linear tightening step, each binary-search midpoint — is enforced by
// passing the bound's activation literal (Encoding.CostAtMostLit) as a
// solver assumption. UNSAT probes therefore never poison the instance and
// learnt clauses survive across all probes. The context cancels the run:
// the solver notices within one restart interval and SolveSAT returns
// ctx.Err() (wrapped).
func SolveSAT(ctx context.Context, p encoder.Problem, opts SATOptions) (*Result, error) {
	start := time.Now()
	solver := sat.NewSolver()
	solver.MaxConflicts = opts.MaxConflicts
	b := cnf.NewBuilder(solver)
	enc, err := encoder.Encode(ctx, p, b)
	if err != nil {
		return nil, err
	}
	res := &Result{
		WorkArch:   p.Arch,
		PermPoints: enc.NumPermPoints(),
		Engine:     EngineSAT.String(),
		Encodes:    1,
	}

	var best *encoder.Solution
	if opts.BinaryDescent {
		best, err = minimizeBinary(ctx, solver, enc, res, opts)
	} else {
		best, err = minimizeLinear(ctx, solver, enc, res, opts)
	}
	res.Conflicts = solver.Stats.Conflicts
	// Failures past this point still return the Result so callers can
	// aggregate the run's counters (the §4.1 fan-out charges refuted and
	// truncated subsets to its totals); only a nil error carries a
	// Solution.
	if err != nil {
		return res, err
	}
	if best == nil {
		if opts.StrictBound && opts.StartBound > 0 {
			return res, fmt.Errorf("exact: %w (no mapping with cost ≤ %d)", ErrUnsatisfiable, opts.StartBound)
		}
		return res, fmt.Errorf("exact: %w (unsatisfiable instance)", ErrUnsatisfiable)
	}
	res.Solution = best
	res.Cost = best.Cost
	res.Runtime = time.Since(start)
	return res, nil
}

// startAssumptions returns the initial bound assumption derived from
// SATOptions.StartBound (nil when disabled).
func startAssumptions(enc *encoder.Encoding, opts SATOptions) []sat.Lit {
	if opts.StartBound <= 0 {
		return nil
	}
	return []sat.Lit{enc.CostAtMostLit(opts.StartBound)}
}

// relaxable reports whether an Unsat under the current assumptions may be
// relaxed: no model has been found yet, the only active bound is the
// caller's unproven StartBound (not a descent-derived one), relaxation is
// permitted, and the solver blames the assumption rather than the clause
// set.
func relaxable(solver *sat.Solver, opts SATOptions, assumed, haveModel bool) bool {
	return assumed && !haveModel && !opts.StrictBound && solver.UnsatFromAssumptions()
}

// minimizeLinear performs linear bound descent on one solver instance:
// each satisfying model's cost C is followed by a probe under the guard
// assumption F ≤ C−1 until UNSAT, which proves minimality of the last
// model (Result.Minimal).
func minimizeLinear(ctx context.Context, solver *sat.Solver, enc *encoder.Encoding, res *Result, opts SATOptions) (*encoder.Solution, error) {
	var best *encoder.Solution
	assume := startAssumptions(enc, opts)
	for {
		res.Solves++
		status := solver.SolveContext(ctx, assume...)
		switch status {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exact: solve canceled: %w", err)
			}
			if best == nil {
				return nil, errBudgetExhausted
			}
			return best, nil // budget exhausted: best-effort, Minimal stays false
		case sat.Unsat:
			if relaxable(solver, opts, len(assume) > 0, best != nil) {
				// The caller's StartBound undercut the true optimum; drop
				// the assumption and continue on the same instance, keeping
				// everything learnt while refuting the bound.
				assume = nil
				continue
			}
			res.Minimal = true // UNSAT below best proves it (or the instance is UNSAT)
			return best, nil
		}
		sol, err := enc.Decode()
		if err != nil {
			return nil, err
		}
		best = sol
		if sol.Cost == 0 {
			res.Minimal = true
			return best, nil
		}
		assume = []sat.Lit{enc.CostAtMostLit(sol.Cost - 1)}
	}
}

// minimizeBinary performs binary search on the cost bound (the "binary
// search" alternative mentioned in paper §3.3) on the SAME solver and
// encoding as the initial solve: each midpoint probe assumes the guard
// literal of F ≤ mid, so an UNSAT probe merely fails an assumption instead
// of poisoning the instance, and no per-midpoint re-encode is needed. SAT
// probes lower the upper end to the model's cost; UNSAT probes raise the
// lower end; convergence proves minimality.
func minimizeBinary(ctx context.Context, solver *sat.Solver, enc *encoder.Encoding, res *Result, opts SATOptions) (*encoder.Solution, error) {
	assume := startAssumptions(enc, opts)
	res.Solves++
	status := solver.SolveContext(ctx, assume...)
	if status == sat.Unsat && relaxable(solver, opts, len(assume) > 0, false) {
		res.Solves++
		status = solver.SolveContext(ctx)
	}
	if status == sat.Unknown {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exact: solve canceled: %w", err)
		}
		return nil, errBudgetExhausted
	}
	if status != sat.Sat {
		res.Minimal = true // the instance (or strict bound) is proven UNSAT
		return nil, nil
	}
	best, err := enc.Decode()
	if err != nil {
		return nil, err
	}
	lo := -1 // largest bound proven UNSAT
	for best.Cost > lo+1 {
		mid := lo + (best.Cost-lo)/2
		res.Solves++
		switch solver.SolveContext(ctx, enc.CostAtMostLit(mid)) {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exact: solve canceled: %w", err)
			}
			return best, nil // budget exhausted: best-effort, Minimal stays false
		case sat.Unsat:
			lo = mid
		case sat.Sat:
			sol, err := enc.Decode()
			if err != nil {
				return nil, err
			}
			best = sol
		}
	}
	res.Minimal = true
	return best, nil
}
