package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/cnf"
	"repro/internal/encoder"
	"repro/internal/sat"
)

// SATOptions tunes the SAT-based engine.
type SATOptions struct {
	// StartBound, when positive, enforces F ≤ StartBound on the first
	// solve (e.g. a known upper bound from the DP engine or a heuristic).
	// Zero or negative disables it; a genuine zero bound is unnecessary
	// because the descent reaches it anyway. The bound is applied as a
	// guard assumption, never as permanent clauses, so a StartBound below
	// the true optimum of the (possibly strategy-restricted) instance is
	// safe by default: the engine detects the failed assumption, relaxes
	// the bound in place on the same solver, and continues — no caller-side
	// re-encode is needed (the old "retry unbounded" dance).
	StartBound int
	// StrictBound changes the StartBound failure mode: a bound-induced
	// UNSAT is reported as ErrUnsatisfiable instead of being relaxed. The
	// §4.1 fan-out sets it to prune subset instances that cannot beat the
	// shared incumbent cost — for pruning, "no mapping under the bound"
	// IS the answer.
	StrictBound bool
	// BinaryDescent switches the minimization loop from linear descent
	// (assume F ≤ cost−1 after each model) to binary search on the bound.
	// Both modes run on one solver and one encoding, probing bounds via
	// guard assumptions.
	BinaryDescent bool
	// MaxConflicts bounds each individual solver call; 0 means unlimited.
	// When the budget is exhausted the best model so far is returned with
	// Result.Minimal false (the proof was truncated).
	MaxConflicts int64
	// LowerBound, when positive, is an admissible lower bound on F: the
	// descent treats every bound below it as already refuted (seeding the
	// binary search's lower end) and accepts a model matching it without a
	// final UNSAT probe. An inadmissible value (above the true optimum)
	// silently voids the minimality guarantee, so only pass proven bounds.
	// When zero, the engine computes the coupling-graph distance bound
	// itself (see NoLowerBound).
	LowerBound int
	// NoLowerBound disables the automatic admissible lower-bound
	// computation when LowerBound is zero — the escape hatch behind the
	// CLIs' -lower-bound=off flags, and the baseline configuration for
	// probe-count comparisons.
	NoLowerBound bool
	// NoCoreJumps restricts every descent probe to a single bound guard,
	// disabling the unsat-core-guided multi-bound probing. With
	// NoLowerBound it reproduces the pre-core bound-per-probe descent;
	// kept as an escape hatch and for regression benchmarking.
	NoCoreJumps bool
	// Anytime changes the resource-exhaustion failure mode of the descent:
	// when the context deadline expires (or the conflict budget runs dry)
	// after at least one satisfying model has been found, the run returns
	// that incumbent as a valid non-minimal Result — Degraded true,
	// BoundGap bracketing the unproven range — instead of an error.
	// Without an incumbent in hand the usual error is still returned, and
	// a caller-initiated cancellation (context.Canceled) always errors:
	// anytime is for deadlines, not for aborts. Off by default, so
	// deadline expiry keeps its historical error semantics.
	Anytime bool
	// Threads, when > 1, runs every solver call as a clause-sharing
	// portfolio of that many diversified goroutine workers over the one
	// incremental encoding (sat.Pool), capped by the ThreadBudget so that
	// workers × portfolio width never exceeds runtime.GOMAXPROCS (an
	// oversubscribed portfolio only steals cycles from its own winner).
	// The minimal cost and the minimality proof are unaffected, but the
	// witness mapping may differ between runs — the default (≤ 1) keeps
	// the fully deterministic single solver.
	Threads int
	// Budget caps the run's total parallelism. Workers is the number of
	// concurrent solver lanes the CALLER runs (e.g. the DP fan-out's
	// subset workers); SolveSAT multiplies its portfolio width into the
	// same budget, so lanes × width ≤ GOMAXPROCS holds end to end instead
	// of each layer claiming GOMAXPROCS independently. The zero value
	// means one lane.
	Budget ThreadBudget
}

// ThreadBudget is the process-wide parallelism budget shared by every layer
// of a solve: subset/probe worker lanes × SAT portfolio width must not
// exceed runtime.GOMAXPROCS. Each layer fills in its dimension and calls
// Clamp; the portfolio width shrinks first (a narrower portfolio still
// answers correctly), then the lane count.
type ThreadBudget struct {
	// Workers is the number of concurrent solver lanes (≥ 1 after Clamp).
	Workers int
	// Threads is the clause-sharing portfolio width per lane (≥ 1 after
	// Clamp).
	Threads int
}

// Clamp normalizes the budget so Workers ≥ 1, Threads ≥ 1 and
// Workers × Threads ≤ runtime.GOMAXPROCS(0), shrinking Threads before
// Workers.
func (tb ThreadBudget) Clamp() ThreadBudget {
	if tb.Workers < 1 {
		tb.Workers = 1
	}
	if tb.Threads < 1 {
		tb.Threads = 1
	}
	max := runtime.GOMAXPROCS(0)
	if tb.Workers > max {
		tb.Workers = max
	}
	for tb.Threads > 1 && tb.Workers*tb.Threads > max {
		tb.Threads--
	}
	return tb
}

// satProber is the solving surface the bound descent needs; both the plain
// *sat.Solver and the portfolio *sat.Pool implement it, so the descent,
// core jumps and guard relaxation run unchanged on either.
type satProber interface {
	SolveContext(ctx context.Context, assumptions ...sat.Lit) sat.Status
	UnsatFromAssumptions() bool
	UnsatCore() []sat.Lit
	Snapshot() sat.Stats
}

// boundGuards is the cost-guard surface the descent helpers need; both the
// single-architecture *encoder.Encoding and the shared §4.1
// *encoder.MultiEncoding provide it, so bound probing and core-to-bound
// translation are written once.
type boundGuards interface {
	CostAtMostLit(bound int) sat.Lit
	GuardBound(g sat.Lit) (int, bool)
}

// SolveSAT finds the minimal-cost mapping for the problem using the paper's
// symbolic formulation and the CDCL solver: solve, decode the model's cost
// C, enforce F ≤ C−1, and repeat until UNSAT — the last model is minimal
// (§3.3, realized by bound tightening instead of a native optimizer).
//
// The descent is fully incremental: the instance is encoded exactly once
// (Result.Encodes == 1) and every bound — the caller's StartBound, each
// linear tightening step, each binary-search midpoint — is enforced by
// passing the bound's activation literal (Encoding.CostAtMostLit) as a
// solver assumption. UNSAT probes therefore never poison the instance and
// learnt clauses survive across all probes.
//
// Two mechanisms cut the number of probes further. The descent's lower end
// is seeded with an admissible lower bound from the coupling-graph distance
// sum (Result.LowerBound): bounds below it are never probed, and a model
// meeting it is accepted as minimal without the closing UNSAT call. And
// unless NoCoreJumps is set, each probe assumes the primary bound plus one
// or two optimistic bounds below it; on UNSAT the solver's minimized
// assumption core (sat.Solver.UnsatCore) names the loosest bound that is
// actually inconsistent, so a single call can refute a whole range
// (Result.BoundJumps counts these multi-step advances).
//
// The context cancels the run: the solver notices within a few hundred
// conflicts and SolveSAT returns ctx.Err() (wrapped) — unless
// SATOptions.Anytime is set and an incumbent model exists, in which case a
// deadline expiry returns that incumbent as a Degraded best-effort Result.
func SolveSAT(ctx context.Context, p encoder.Problem, opts SATOptions) (res *Result, err error) {
	// A solver or encoder bug must fail this one solve, not whatever
	// goroutine pool the caller runs it on: panics become errors here.
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("exact: SAT engine panic: %v", r)
		}
	}()
	start := time.Now()
	lb := opts.LowerBound
	if lb <= 0 {
		lb = 0
		if !opts.NoLowerBound {
			lb = admissibleLowerBound(p)
		}
	}
	if opts.StrictBound && opts.StartBound > 0 && lb > opts.StartBound {
		// The admissible lower bound already exceeds the strict cap: no
		// mapping under the bound exists, no encode or probe needed. The
		// §4.1 fan-out hits this when a subset's geometry cannot beat the
		// shared incumbent.
		res := &Result{WorkArch: p.Arch, Engine: EngineSAT.String(), LowerBound: lb, Minimal: true}
		return res, fmt.Errorf("exact: %w (admissible lower bound %d exceeds the strict bound %d)",
			ErrUnsatisfiable, lb, opts.StartBound)
	}

	solver := sat.New(sat.Options{MaxConflicts: opts.MaxConflicts})
	b := cnf.NewBuilder(solver)
	enc, err := encoder.Encode(ctx, p, b)
	if err != nil {
		return nil, err
	}
	// Portfolio workers are CPU-bound; spawning more than the runtime can
	// schedule in parallel is pure overhead (every worker burns cycles the
	// winner needs), so the width is clamped into the shared ThreadBudget:
	// the caller's concurrent lanes × this portfolio's width stays within
	// GOMAXPROCS. Result.SATThreads reports the effective width.
	budget := opts.Budget
	budget.Threads = opts.Threads
	threads := budget.Clamp().Threads
	var prober satProber = solver
	if threads > 1 {
		// The pool clones the fully built encoding lazily at the first
		// probe and installs the winning worker's model/core back into the
		// master, so enc.Decode and the guard bookkeeping stay untouched.
		prober = sat.NewPool(solver, threads)
	}
	res = &Result{
		WorkArch:   p.Arch,
		PermPoints: enc.NumPermPoints(),
		Engine:     EngineSAT.String(),
		Encodes:    1,
		LowerBound: lb,
		SATThreads: threads,
	}

	var best *encoder.Solution
	if opts.BinaryDescent {
		best, err = minimizeBinary(ctx, prober, enc, res, opts, lb)
	} else {
		best, err = minimizeLinear(ctx, prober, enc, res, opts, lb)
	}
	snap := prober.Snapshot()
	res.Conflicts = snap.Conflicts
	res.SharedClauses = snap.SharedImports
	// Failures past this point still return the Result so callers can
	// aggregate the run's counters (the §4.1 fan-out charges refuted and
	// truncated subsets to its totals); only a nil error carries a
	// Solution.
	if err != nil {
		return res, err
	}
	if best == nil {
		if opts.StrictBound && opts.StartBound > 0 {
			return res, fmt.Errorf("exact: %w (no mapping with cost ≤ %d)", ErrUnsatisfiable, opts.StartBound)
		}
		return res, fmt.Errorf("exact: %w (unsatisfiable instance)", ErrUnsatisfiable)
	}
	res.Solution = best
	res.Cost = best.Cost
	res.Runtime = time.Since(start)
	return res, nil
}

// startAssumptions returns the initial bound assumption derived from
// SATOptions.StartBound (nil when disabled).
func startAssumptions(enc boundGuards, opts SATOptions) []sat.Lit {
	if opts.StartBound <= 0 {
		return nil
	}
	return []sat.Lit{enc.CostAtMostLit(opts.StartBound)}
}

// relaxable reports whether an Unsat under the current assumptions may be
// relaxed: no model has been found yet, the only active bound is the
// caller's unproven StartBound (not a descent-derived one), relaxation is
// permitted, and the solver blames the assumption rather than the clause
// set.
func relaxable(solver satProber, opts SATOptions, assumed, haveModel bool) bool {
	return assumed && !haveModel && !opts.StrictBound && solver.UnsatFromAssumptions()
}

// anytimeReturn reports whether a descent cut off by its context should hand
// back the incumbent instead of erroring: anytime mode is on, a model is in
// hand, and the context died of its deadline. A caller-initiated cancel
// (context.Canceled) always errors — anytime softens deadlines, not aborts.
func anytimeReturn(opts SATOptions, haveModel bool, ctxErr error) bool {
	return opts.Anytime && haveModel && errors.Is(ctxErr, context.DeadlineExceeded)
}

// probeAssumptions builds the guard set for probing `bound` given `lo`, the
// largest bound already refuted: the primary guard first, then (unless core
// jumps are disabled) up to two optimistic bounds halfway and quarter-way
// down towards lo. The order matters: the solver's core minimization tries
// to remove later assumptions first, so listing loose→tight steers the
// minimized core towards the loosest refutable bound — the biggest jump.
func probeAssumptions(enc boundGuards, bound, lo int, opts SATOptions) []sat.Lit {
	assume := []sat.Lit{enc.CostAtMostLit(bound)}
	if opts.NoCoreJumps {
		return assume
	}
	if b1 := lo + (bound-lo)/2; b1 > lo && b1 < bound {
		assume = append(assume, enc.CostAtMostLit(b1))
		if b2 := lo + (b1-lo)/2; b2 > lo && b2 < b1 {
			assume = append(assume, enc.CostAtMostLit(b2))
		}
	}
	return assume
}

// coreRefutedBound translates the solver's minimized unsat core back into
// the loosest cost bound proven unsatisfiable. The guards are nested (the
// conjunction of a core equals its tightest bound), so a core that kept
// only the loosest assumed guard refutes the whole probed range in one
// call. It returns the refuted bound and whether core analysis improved on
// the trivial reading of the probe (the tightest assumed bound) — a
// core-guided jump.
func coreRefutedBound(solver satProber, enc boundGuards, assumed []sat.Lit) (int, bool) {
	minAssumed := math.MaxInt
	for _, g := range assumed {
		if b, ok := enc.GuardBound(g); ok && b < minAssumed {
			minAssumed = b
		}
	}
	refuted := math.MaxInt
	for _, g := range solver.UnsatCore() {
		if b, ok := enc.GuardBound(g); ok && b < refuted {
			refuted = b
		}
	}
	if refuted == math.MaxInt {
		refuted = minAssumed // defensive: no guard survived into the core
	}
	return refuted, minAssumed != math.MaxInt && refuted > minAssumed
}

// minimizeLinear performs linear bound descent on one solver instance: each
// satisfying model's cost C is followed by a probe under the guard
// assumption F ≤ C−1 (plus optimistic bounds below it) until UNSAT proves
// minimality of the last model, the model cost reaches the admissible lower
// bound, or the refuted floor `lo` climbs to meet C−1.
func minimizeLinear(ctx context.Context, solver satProber, enc *encoder.Encoding, res *Result, opts SATOptions, lb int) (*encoder.Solution, error) {
	var best *encoder.Solution
	lo := lb - 1 // largest bound known unsatisfiable (admissibility of lb)
	assume := startAssumptions(enc, opts)
	for {
		res.Solves++
		if len(assume) > 0 {
			res.BoundProbes++
		}
		status := solver.SolveContext(ctx, assume...)
		switch status {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				if !anytimeReturn(opts, best != nil, err) {
					return nil, fmt.Errorf("exact: solve canceled: %w", err)
				}
				res.markAnytime(best.Cost, lo)
				return best, nil // deadline hit with an incumbent: anytime return
			}
			if best == nil {
				return nil, ErrBudgetExhausted
			}
			res.markAnytime(best.Cost, lo)
			return best, nil // budget exhausted: best-effort, proof truncated
		case sat.Unsat:
			if relaxable(solver, opts, len(assume) > 0, best != nil) {
				// The caller's StartBound undercut the true optimum; drop
				// the assumption and continue on the same instance, keeping
				// everything learnt while refuting the bound.
				assume = nil
				continue
			}
			if best == nil {
				res.Minimal = true // the instance (or strict bound) is proven UNSAT
				return nil, nil
			}
			// The probe may have carried optimistic bounds below the
			// primary F ≤ C−1; the core names the loosest bound actually
			// refuted. Only when that reaches C−1 is the model proven
			// minimal — otherwise raise the floor and re-probe.
			refuted, jumped := coreRefutedBound(solver, enc, assume)
			if jumped {
				res.BoundJumps++
			}
			if refuted > lo {
				lo = refuted
			}
			if lo >= best.Cost-1 {
				res.Minimal = true
				return best, nil
			}
			assume = probeAssumptions(enc, best.Cost-1, lo, opts)
			continue
		}
		sol, err := enc.Decode()
		if err != nil {
			return nil, err
		}
		best = sol
		if sol.Cost-1 <= lo {
			// The model meets the admissible lower bound (or the refuted
			// floor): minimal without a closing UNSAT probe.
			res.Minimal = true
			return best, nil
		}
		assume = probeAssumptions(enc, sol.Cost-1, lo, opts)
	}
}

// minimizeBinary performs binary search on the cost bound (the "binary
// search" alternative mentioned in paper §3.3) on the SAME solver and
// encoding as the initial solve. The lower end starts at the admissible
// lower bound instead of −1, each midpoint probe additionally assumes one
// or two optimistic bounds below the midpoint, and an UNSAT probe advances
// the lower end to the loosest bound in the solver's minimized assumption
// core — one call can refute a whole range. SAT probes lower the upper end
// to the model's cost; convergence proves minimality.
func minimizeBinary(ctx context.Context, solver satProber, enc *encoder.Encoding, res *Result, opts SATOptions, lb int) (*encoder.Solution, error) {
	assume := startAssumptions(enc, opts)
	res.Solves++
	if len(assume) > 0 {
		res.BoundProbes++
	}
	status := solver.SolveContext(ctx, assume...)
	if status == sat.Unsat && relaxable(solver, opts, len(assume) > 0, false) {
		res.Solves++
		status = solver.SolveContext(ctx)
	}
	if status == sat.Unknown {
		// No model exists yet at this point, so there is nothing for
		// anytime mode to salvage: both exhaustion kinds are errors.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exact: solve canceled: %w", err)
		}
		return nil, ErrBudgetExhausted
	}
	if status != sat.Sat {
		res.Minimal = true // the instance (or strict bound) is proven UNSAT
		return nil, nil
	}
	best, err := enc.Decode()
	if err != nil {
		return nil, err
	}
	lo := lb - 1 // largest bound refuted: seeded by admissibility, raised by cores
	for best.Cost > lo+1 {
		mid := lo + (best.Cost-lo)/2
		assume := probeAssumptions(enc, mid, lo, opts)
		res.Solves++
		res.BoundProbes++
		switch solver.SolveContext(ctx, assume...) {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				if !anytimeReturn(opts, best != nil, err) {
					return nil, fmt.Errorf("exact: solve canceled: %w", err)
				}
			}
			res.markAnytime(best.Cost, lo)
			return best, nil // exhausted mid-search: best-effort, proof truncated
		case sat.Unsat:
			refuted, jumped := coreRefutedBound(solver, enc, assume)
			if jumped {
				res.BoundJumps++
			}
			if refuted > lo {
				lo = refuted
			}
		case sat.Sat:
			sol, err := enc.Decode()
			if err != nil {
				return nil, err
			}
			best = sol
		}
	}
	res.Minimal = true
	return best, nil
}
