package exact

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cnf"
	"repro/internal/encoder"
	"repro/internal/sat"
)

// SATOptions tunes the SAT-based engine.
type SATOptions struct {
	// StartBound, when positive, asserts F ≤ StartBound before the first
	// solve (e.g. a known upper bound from the DP engine or a heuristic).
	// Zero or negative disables it; a genuine zero bound is unnecessary
	// because the descent reaches it anyway. A StartBound below the true
	// optimum of the (possibly strategy-restricted) instance makes it
	// unsatisfiable: SolveSAT then fails with ErrUnsatisfiable, which
	// callers holding an unproven bound should treat as "retry unbounded"
	// (internal/portfolio does).
	StartBound int
	// BinaryDescent switches the minimization loop from linear descent
	// (assert cost−1 after each model) to binary search on the bound.
	BinaryDescent bool
	// MaxConflicts bounds each individual solver call; 0 means unlimited.
	// When the budget is exhausted the best model so far is returned with
	// minimality not guaranteed.
	MaxConflicts int64
}

// SolveSAT finds the minimal-cost mapping for the problem using the paper's
// symbolic formulation and the CDCL solver: solve, decode the model's cost
// C, assert F ≤ C−1, and repeat until UNSAT — the last model is minimal
// (§3.3, realized by bound tightening instead of a native optimizer). The
// context cancels the run: the solver notices within one restart interval
// and SolveSAT returns ctx.Err() (wrapped).
func SolveSAT(ctx context.Context, p encoder.Problem, opts SATOptions) (*Result, error) {
	start := time.Now()
	solver := sat.NewSolver()
	solver.MaxConflicts = opts.MaxConflicts
	b := cnf.NewBuilder(solver)
	enc, err := encoder.Encode(ctx, p, b)
	if err != nil {
		return nil, err
	}
	res := &Result{
		WorkArch:   p.Arch,
		PermPoints: enc.NumPermPoints(),
		Engine:     EngineSAT.String(),
	}
	if opts.StartBound > 0 {
		enc.AssertCostAtMost(opts.StartBound)
	}

	var best *encoder.Solution
	if opts.BinaryDescent {
		best, err = minimizeBinary(ctx, p, solver, enc, res, opts)
	} else {
		best, err = minimizeLinear(ctx, solver, enc, res)
	}
	res.Conflicts += solver.Stats.Conflicts
	if err != nil {
		return nil, err
	}
	if best == nil {
		return nil, fmt.Errorf("exact: %w (unsatisfiable instance)", ErrUnsatisfiable)
	}
	res.Solution = best
	res.Cost = best.Cost
	res.Runtime = time.Since(start)
	return res, nil
}

// minimizeLinear performs linear bound descent: each satisfying model's
// cost C is followed by the constraint F ≤ C−1 until UNSAT.
func minimizeLinear(ctx context.Context, solver *sat.Solver, enc *encoder.Encoding, res *Result) (*encoder.Solution, error) {
	var best *encoder.Solution
	for {
		res.Solves++
		status := solver.SolveContext(ctx)
		if status == sat.Unknown {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exact: solve canceled: %w", err)
			}
			if best == nil {
				return nil, fmt.Errorf("exact: conflict budget exhausted before any mapping was found")
			}
			return best, nil // budget exhausted: best-effort result
		}
		if status == sat.Unsat {
			return best, nil
		}
		sol, err := enc.Decode()
		if err != nil {
			return nil, err
		}
		best = sol
		if sol.Cost == 0 {
			return best, nil
		}
		enc.AssertCostAtMost(sol.Cost - 1)
	}
}

// minimizeBinary performs binary search on the cost bound (the "binary
// search" alternative mentioned in paper §3.3). Because AssertCostAtMost
// adds permanent clauses, an UNSAT probe would poison the incremental
// instance for the still-unexplored bounds above it, so each probe encodes
// a fresh instance with F ≤ mid asserted up front. SAT probes lower the
// upper end to the model's cost; UNSAT probes raise the lower end.
func minimizeBinary(ctx context.Context, p encoder.Problem, solver *sat.Solver, enc *encoder.Encoding, res *Result, opts SATOptions) (*encoder.Solution, error) {
	res.Solves++
	status := solver.SolveContext(ctx)
	if status == sat.Unknown {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exact: solve canceled: %w", err)
		}
		return nil, fmt.Errorf("exact: conflict budget exhausted before any mapping was found")
	}
	if status != sat.Sat {
		return nil, nil
	}
	best, err := enc.Decode()
	if err != nil {
		return nil, err
	}
	lo := -1 // largest bound proven UNSAT
	for best.Cost > lo+1 {
		mid := lo + (best.Cost-lo)/2
		probeSolver := sat.NewSolver()
		probeSolver.MaxConflicts = opts.MaxConflicts
		probeEnc, err := encoder.Encode(ctx, p, cnf.NewBuilder(probeSolver))
		if err != nil {
			return nil, err
		}
		probeEnc.AssertCostAtMost(mid)
		res.Solves++
		status := probeSolver.SolveContext(ctx)
		res.Conflicts += probeSolver.Stats.Conflicts
		switch status {
		case sat.Unknown:
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("exact: solve canceled: %w", err)
			}
			return best, nil // budget exhausted: best-effort result
		case sat.Unsat:
			lo = mid
		case sat.Sat:
			sol, err := probeEnc.Decode()
			if err != nil {
				return nil, err
			}
			best = sol
		}
	}
	return best, nil
}
