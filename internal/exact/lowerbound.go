package exact

import (
	"repro/internal/circuit"
	"repro/internal/encoder"
	"repro/internal/perm"
)

// admissibleLowerBound computes an admissible lower bound on the cost F of
// any valid mapping of the problem: the SWAP lower bound derived from
// coupling-graph distances (paper §2's cost argument — an interaction
// whose endpoints sit at physical distance d needs at least d−1 SWAPs —
// minimized over initial placements in internal/perm) scaled by the cost
// model's cheapest SWAP weight (7 in the paper model), plus the direction
// switches forced within single frames scaled by the cheapest switch
// weight (4). Strategy restrictions only shrink the feasible set, so the
// bound is admissible for every strategy; a pinned initial mapping
// restricts the placement minimum to the pin. The SAT descent seeds its
// refuted-bound floor with this value and stops without a final UNSAT
// probe once a model meets it.
func admissibleLowerBound(p encoder.Problem) int {
	sk, a := p.Skeleton, p.Arch
	m := a.NumQubits()
	dist := make([][]int, m)
	for i := range dist {
		dist[i] = make([]int, m)
		for j := range dist[i] {
			dist[i][j] = a.Distance(i, j)
		}
	}
	pairs := interactionPairs(sk)
	swapLB := 0
	if p.InitialMapping != nil {
		// The run must start at the pin; a disconnected pair (−1) means the
		// instance is unsatisfiable, which the solve itself will surface.
		// An invalid pin is left for the encoder's validation to reject.
		if len(p.InitialMapping) != sk.NumQubits || !p.InitialMapping.Valid(m) {
			return 0
		}
		if lb := perm.PlacementLowerBound(dist, p.InitialMapping, pairs); lb > 0 {
			swapLB = lb
		}
	} else {
		swapLB = perm.InteractionLowerBound(dist, sk.NumQubits, pairs)
	}
	cm := a.Cost()
	minSwap := cm.MinSwapWeight(a.UndirectedEdges())
	minH := cm.MinHWeight(a.Pairs())
	return minSwap*swapLB + minH*forcedSwitches(p)
}

// interactionPairs returns the distinct unordered logical-qubit pairs the
// skeleton's CNOTs act on.
func interactionPairs(sk *circuit.Skeleton) []perm.Edge {
	seen := make(map[perm.Edge]bool)
	var out []perm.Edge
	for _, g := range sk.Gates {
		e := perm.Edge{A: g.Control, B: g.Target}.Normalize()
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// forcedSwitches lower-bounds the direction switches: within one frame the
// mapping is fixed, so on an architecture without any bidirectional
// coupling a logical pair whose frame runs x forward and y reversed CNOTs
// pays at least min(x, y) switches whatever edge it is mapped to. Frames
// with a single gate (the minimality-guaranteeing §3 configuration) never
// contribute; the §4.2 restricted strategies can.
func forcedSwitches(p encoder.Problem) int {
	for _, pr := range p.Arch.Pairs() {
		if p.Arch.Allows(pr.Target, pr.Control) {
			return 0 // a bidirectional edge could host any pair for free
		}
	}
	type dirs struct{ fwd, rev int }
	count := 0
	var frame map[perm.Edge]*dirs
	flush := func() {
		for _, d := range frame {
			if d.fwd < d.rev {
				count += d.fwd
			} else {
				count += d.rev
			}
		}
	}
	for k, g := range p.Skeleton.Gates {
		if k == 0 || p.PermAllowed(k) {
			if frame != nil {
				flush()
			}
			frame = make(map[perm.Edge]*dirs)
		}
		e := perm.Edge{A: g.Control, B: g.Target}
		d := frame[e.Normalize()]
		if d == nil {
			d = &dirs{}
			frame[e.Normalize()] = d
		}
		if e == e.Normalize() {
			d.fwd++
		} else {
			d.rev++
		}
	}
	if frame != nil {
		flush()
	}
	return count
}
