package exact

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/encoder"
	"repro/internal/perm"
)

// maxDPStates bounds the mapping-space size the DP engine will enumerate.
// QX-class devices (m ≤ 5) have at most 120 injective mappings; larger
// architectures must be restricted to subsets first (paper §4.1).
const maxDPStates = 4096

// SolveDP finds the minimal-cost mapping by dynamic programming over
// (frame, mapping) states: within a frame the mapping is fixed and each
// gate contributes 0 (forward-executable) or its direction-switch weight
// (4 in the paper model); between frames the transition cost is the
// (weighted) token-swap distance between the mappings — 7 per SWAP in the
// paper model, the cheapest weighted swap path under a calibration model.
// This is an independent exact oracle for the cost function (Eq. 5,
// generalized to arch.CostModel) — tractable because the IBM QX mapping
// spaces are tiny — and is used to cross-check the SAT engine. The context
// is checked once per frame transition (the O(size²) inner product), so a
// cancelled run aborts promptly with ctx.Err().
func SolveDP(ctx context.Context, p encoder.Problem) (*Result, error) {
	start := time.Now()
	n := p.Skeleton.NumQubits
	m := p.Arch.NumQubits()
	if n > m {
		return nil, fmt.Errorf("exact: circuit has %d logical qubits but architecture only %d", n, m)
	}
	if n == 0 || p.Skeleton.Len() == 0 {
		return nil, fmt.Errorf("exact: empty problem")
	}
	if p.PermBefore != nil && len(p.PermBefore) != p.Skeleton.Len() {
		return nil, fmt.Errorf("exact: PermBefore has %d entries for %d gates", len(p.PermBefore), p.Skeleton.Len())
	}

	states := 1
	for i := 0; i < n; i++ {
		states *= m - i
		if states > maxDPStates {
			return nil, fmt.Errorf("exact: DP mapping space exceeds %d states; restrict to a subset first", maxDPStates)
		}
	}
	space := perm.NewSpace(m, n)
	cm := p.Arch.Cost()
	// transCost/transSwaps: weighted cost and SWAP count of the cheapest
	// mapping-to-mapping move; the BFS table scaled by the unit when the
	// model is uniform, a Dijkstra table otherwise.
	var transCost, transSwaps func(a, b int) int
	if cm.UniformSwap() {
		table := perm.NewSwapTable(space, p.Arch.UndirectedEdges())
		unit := cm.SwapUnit()
		transCost = func(a, b int) int {
			d := table.MinSwapsIdx(a, b)
			if d < 0 {
				return -1
			}
			return unit * d
		}
		transSwaps = table.MinSwapsIdx
	} else {
		table := perm.NewWeightedSwapTable(space, p.Arch.UndirectedEdges(), cm.EdgeSwapWeight)
		transCost = table.MinWeightIdx
		transSwaps = table.SwapsAlongIdx
	}

	// Frames: segment the gate sequence at permutation points. A pinned
	// initial layout gets its own gate-free leading frame so the solver
	// may route away from the pin before the first gate.
	var frames [][]int // frame → skeleton gate indices
	gateFrame := make([]int, p.Skeleton.Len())
	if p.InitialMapping != nil {
		frames = append(frames, nil)
	}
	for k := 0; k < p.Skeleton.Len(); k++ {
		if k == 0 || p.PermAllowed(k) {
			frames = append(frames, nil)
		}
		f := len(frames) - 1
		frames[f] = append(frames[f], k)
		gateFrame[k] = f
	}

	const inf = math.MaxInt32
	size := space.Size()

	// frameCost[s] = H-cost of executing the frame's gates under mapping s,
	// or inf if some gate is not executable in either direction.
	frameCost := func(gates []int, s int) int {
		mp := space.Mapping(s)
		cost := 0
		for _, k := range gates {
			g := p.Skeleton.Gates[k]
			pc, pt := mp[g.Control], mp[g.Target]
			switch {
			case p.Arch.Allows(pc, pt):
				// forward: free
			case p.Arch.Allows(pt, pc):
				cost += cm.HWeight(pt, pc)
			default:
				return inf
			}
		}
		return cost
	}

	// DP forward pass with parent pointers for reconstruction.
	cur := make([]int, size)
	parent := make([][]int32, len(frames))
	pinned := -1
	if p.InitialMapping != nil {
		if len(p.InitialMapping) != n || !p.InitialMapping.Valid(m) {
			return nil, fmt.Errorf("exact: invalid initial mapping %v", p.InitialMapping)
		}
		pinned = space.Index(p.InitialMapping)
	}
	for s := 0; s < size; s++ {
		if pinned >= 0 && s != pinned {
			cur[s] = inf
			continue
		}
		cur[s] = frameCost(frames[0], s)
	}
	for f := 1; f < len(frames); f++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("exact: solve canceled: %w", err)
		}
		next := make([]int, size)
		par := make([]int32, size)
		for s := range next {
			next[s] = inf
			par[s] = -1
		}
		for sPrev := 0; sPrev < size; sPrev++ {
			if cur[sPrev] >= inf {
				continue
			}
			for s := 0; s < size; s++ {
				d := transCost(sPrev, s)
				if d < 0 {
					continue
				}
				c := cur[sPrev] + d
				if c >= next[s] {
					continue
				}
				next[s] = c
				par[s] = int32(sPrev)
			}
		}
		for s := 0; s < size; s++ {
			if next[s] >= inf {
				continue
			}
			fc := frameCost(frames[f], s)
			if fc >= inf {
				next[s] = inf
				par[s] = -1
			} else {
				next[s] += fc
			}
		}
		cur = next
		parent[f] = par
	}

	bestState, bestCost := -1, inf
	for s := 0; s < size; s++ {
		if cur[s] < bestCost {
			bestCost = cur[s]
			bestState = s
		}
	}
	if bestState < 0 {
		return nil, fmt.Errorf("exact: %w (unsatisfiable instance)", ErrUnsatisfiable)
	}

	// Reconstruct frame mappings.
	stateSeq := make([]int, len(frames))
	stateSeq[len(frames)-1] = bestState
	for f := len(frames) - 1; f > 0; f-- {
		stateSeq[f-1] = int(parent[f][stateSeq[f]])
	}

	sol := &encoder.Solution{GateFrame: gateFrame}
	for _, s := range stateSeq {
		sol.FrameMappings = append(sol.FrameMappings, space.Mapping(s).Copy())
	}
	for f := 1; f < len(frames); f++ {
		sol.PermSwaps = append(sol.PermSwaps, transSwaps(stateSeq[f-1], stateSeq[f]))
	}
	for k, g := range p.Skeleton.Gates {
		mp := sol.FrameMappings[gateFrame[k]]
		pc, pt := mp[g.Control], mp[g.Target]
		switched := !p.Arch.Allows(pc, pt)
		if switched && !p.Arch.Allows(pt, pc) {
			return nil, fmt.Errorf("exact: internal error: gate %d not executable in reconstruction", k)
		}
		sol.Switched = append(sol.Switched, switched)
	}
	sol.Cost = bestCost

	return &Result{
		Cost:       bestCost,
		Solution:   sol,
		WorkArch:   p.Arch,
		PermPoints: len(frames) - 1,
		Engine:     EngineDP.String(),
		Minimal:    true, // the DP oracle enumerates the full state space
		Runtime:    time.Since(start),
	}, nil
}
