package exact

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
	"repro/internal/perm"
	"repro/internal/revlib"
)

// applyOpsWeighted is applyOps generalized to an arbitrary cost model: it
// replays the op stream, checks every SWAP and CNOT against the coupling
// map and the evolving mapping, and returns the stream's weighted cost.
func applyOpsWeighted(t *testing.T, sk *circuit.Skeleton, a *arch.Arch, r *Result) int {
	t.Helper()
	ops, err := r.Ops(sk)
	if err != nil {
		t.Fatalf("Ops: %v", err)
	}
	cm := a.Cost()
	mp := r.InitialMapping()
	cost := 0
	next := 0
	for _, op := range ops {
		if op.Swap {
			if !a.AllowsEitherDirection(op.A, op.B) {
				t.Fatalf("SWAP on uncoupled pair (%d,%d)", op.A, op.B)
			}
			mp = mp.ApplySwap(op.A, op.B)
			cost += cm.SwapWeight(op.A, op.B)
			continue
		}
		g := sk.Gates[next]
		if op.GateIndex != next {
			t.Fatalf("gate order: got %d, want %d", op.GateIndex, next)
		}
		next++
		if !a.Allows(op.Control, op.Target) {
			t.Fatalf("gate %d: CNOT(%d→%d) not in coupling map", op.GateIndex, op.Control, op.Target)
		}
		pc, pt := mp[g.Control], mp[g.Target]
		if op.Switched {
			if op.Control != pt || op.Target != pc {
				t.Fatalf("gate %d: switched op (%d,%d) does not match mapping (%d,%d)",
					op.GateIndex, op.Control, op.Target, pc, pt)
			}
			cost += cm.HWeight(op.Control, op.Target)
		} else if op.Control != pc || op.Target != pt {
			t.Fatalf("gate %d: op (%d,%d) does not match mapping (%d,%d)",
				op.GateIndex, op.Control, op.Target, pc, pt)
		}
	}
	if next != sk.Len() {
		t.Fatalf("only %d of %d gates emitted", next, sk.Len())
	}
	if !mp.Equal(r.FinalMapping()) {
		t.Fatalf("final mapping %v ≠ %v", mp, r.FinalMapping())
	}
	return cost
}

// opsCostUnder prices an already-verified op stream under a different cost
// model, for cross-model comparisons.
func opsCostUnder(t *testing.T, sk *circuit.Skeleton, r *Result, cm *arch.CostModel) int {
	t.Helper()
	ops, err := r.Ops(sk)
	if err != nil {
		t.Fatalf("Ops: %v", err)
	}
	cost := 0
	for _, op := range ops {
		switch {
		case op.Swap:
			cost += cm.SwapWeight(op.A, op.B)
		case op.Switched:
			cost += cm.HWeight(op.Control, op.Target)
		}
	}
	return cost
}

// TestWeightedBeatsUniformGrid3x3 is the headline acceptance check for the
// weighted objective: on grid3x3 with a calibration that penalizes exactly
// the couplings the paper-model plan uses, the weighted exact solve must
// route around them — its plan, verified gate by gate, prices strictly
// below the uniform plan under the calibrated weights.
func TestWeightedBeatsUniformGrid3x3(t *testing.T) {
	base := arch.Grid(3, 3)
	// Triangle interaction: no triangle exists in a grid, so every plan
	// needs at least one SWAP and the penalty below always bites.
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})

	uniform, err := Solve(bg, sk, base, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, sk, base, uniform)

	// Build a calibration file from the uniform plan: every SWAP edge it
	// crossed becomes 10× dearer (via the same JSON schema -calibration
	// loads).
	ops, err := uniform.Ops(sk)
	if err != nil {
		t.Fatal(err)
	}
	var entries []string
	for _, op := range ops {
		if op.Swap {
			entries = append(entries, fmt.Sprintf(
				`{"a": %d, "b": %d, "swap": %d}`, op.A, op.B, 10*arch.PaperSwapUnit))
		}
	}
	if len(entries) == 0 {
		t.Fatal("uniform plan used no SWAPs; a triangle cannot embed in a grid")
	}
	cal := fmt.Sprintf(`{"name": "penalize-uniform", "edges": [%s]}`, strings.Join(entries, ","))
	cm, err := arch.ParseCalibration([]byte(cal))
	if err != nil {
		t.Fatal(err)
	}

	weighted, err := base.WithCostModel(cm)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := Solve(bg, sk, weighted, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	gotW := applyOpsWeighted(t, sk, weighted, wres)
	if gotW != wres.Cost {
		t.Fatalf("weighted op-stream cost %d ≠ result cost %d", gotW, wres.Cost)
	}
	uniformW := opsCostUnder(t, sk, uniform, cm)
	if wres.Cost >= uniformW {
		t.Fatalf("weighted plan costs %d, not below the uniform plan's %d under the calibration",
			wres.Cost, uniformW)
	}
	// The grid is translation-rich enough that routing around the penalty
	// costs nothing extra: the weighted optimum equals the paper optimum.
	// (The SAT engine needs a §4.1 subset restriction at m=9, so the DP
	// oracle carries this check; engine agreement is covered on QX4.)
	if wres.Cost != uniform.Cost {
		t.Errorf("weighted optimum %d, want %d (an unpenalized congruent placement exists)",
			wres.Cost, uniform.Cost)
	}
}

// nonUniformQX4 attaches a fixed asymmetric calibration to QX4: dearer
// swaps on two couplings, one dearer and one cheaper direction switch.
func nonUniformQX4(t *testing.T) *arch.Arch {
	t.Helper()
	cm, err := arch.NewCostModel("qx4-cal", arch.PaperSwapUnit, arch.PaperHUnit)
	if err != nil {
		t.Fatal(err)
	}
	for _, set := range []error{
		cm.SetSwapWeight(1, 2, 10),
		cm.SetSwapWeight(2, 4, 21),
		cm.SetHWeight(2, 4, 8),
		cm.SetHWeight(3, 2, 2),
	} {
		if set != nil {
			t.Fatal(set)
		}
	}
	a, err := arch.QX4().WithCostModel(cm)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestWeightedLowerBoundAdmissibleTable1: under a non-uniform calibration
// the admissible lower bound must still never exceed the DP oracle's
// proven weighted optimum, on every Table-1 benchmark.
func TestWeightedLowerBoundAdmissibleTable1(t *testing.T) {
	a := nonUniformQX4(t)
	for _, b := range revlib.Suite() {
		sk, err := circuit.ExtractSkeleton(b.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		pb := PermBefore(sk, StrategyAll)
		lb := admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb})
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP})
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if lb > dp.Cost {
			t.Errorf("%s: weighted lower bound %d exceeds the optimum %d", b.Name, lb, dp.Cost)
		}
		verified := applyOpsWeighted(t, sk, a, dp)
		if verified != dp.Cost {
			t.Errorf("%s: op-stream weighted cost %d ≠ result cost %d", b.Name, verified, dp.Cost)
		}
	}
}

// TestWeightedEnginesAgreeRandom: DP and SAT must prove the same weighted
// optimum on random skeletons over the calibrated QX4 and a calibrated
// subset restriction.
func TestWeightedEnginesAgreeRandom(t *testing.T) {
	a := nonUniformQX4(t)
	for seed := int64(0); seed < 8; seed++ {
		sk := randomSkeleton(seed, 3, 4+int(seed%3))
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sat, err := Solve(bg, sk, a, Options{Engine: EngineSAT})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if dp.Cost != sat.Cost {
			t.Errorf("seed %d: DP %d ≠ SAT %d", seed, dp.Cost, sat.Cost)
		}
		applyOpsWeighted(t, sk, a, dp)
		applyOpsWeighted(t, sk, a, sat)
	}

	// Subset restriction keeps the reindexed weights: solve on a 3-qubit
	// restriction and verify against its restricted model.
	sub, _ := a.Restrict([]int{1, 2, 4})
	if sub.Cost() == nil {
		t.Fatal("restriction dropped the cost model")
	}
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	p := encoder.Problem{Skeleton: sk, Arch: sub, PermBefore: PermBefore(sk, StrategyAll)}
	dp, err := SolveDP(bg, p)
	if err != nil {
		t.Fatal(err)
	}
	if lb := admissibleLowerBound(p); lb > dp.Cost {
		t.Errorf("subset: weighted lower bound %d exceeds optimum %d", lb, dp.Cost)
	}
	applyOpsWeighted(t, sk, sub, dp)
}

// TestWeightedLowerBoundUsesCheapestWeights: the bound scales its SWAP
// term by the cheapest edge and its switch term by the cheapest directed
// pair; a model with a cheap outlier must lower the bound accordingly.
func TestWeightedLowerBoundUsesCheapestWeights(t *testing.T) {
	a := nonUniformQX4(t)
	cm := a.Cost()
	if got := cm.MinSwapWeight(a.UndirectedEdges()); got != arch.PaperSwapUnit {
		t.Errorf("MinSwapWeight = %d, want %d (unpenalized edges remain)", got, arch.PaperSwapUnit)
	}
	if got := cm.MinHWeight(a.Pairs()); got != 2 {
		t.Errorf("MinHWeight = %d, want 2 (the cheap switch on (3,2))", got)
	}
	edges := []perm.Edge{{A: 1, B: 2}, {A: 2, B: 4}}
	if got := cm.MinSwapWeight(edges); got != 10 {
		t.Errorf("MinSwapWeight over penalized edges = %d, want 10", got)
	}
}
