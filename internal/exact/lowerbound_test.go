package exact

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
	"repro/internal/revlib"
)

// TestLowerBoundAdmissibleTable1: on every Table-1 benchmark and strategy,
// the admissible lower bound must never exceed the DP oracle's proven
// optimum (full architecture and §4.1 subsets alike).
func TestLowerBoundAdmissibleTable1(t *testing.T) {
	a := arch.QX4()
	for _, b := range revlib.Suite() {
		sk, err := circuit.ExtractSkeleton(b.Circuit)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		for _, s := range []Strategy{StrategyAll, StrategyDisjoint, StrategyOdd, StrategyTriangle} {
			pb := PermBefore(sk, s)
			lb := admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb})
			dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, Strategy: s})
			if err != nil {
				continue // restricted instance may be unsatisfiable
			}
			if lb > dp.Cost {
				t.Errorf("%s/%v: lower bound %d exceeds the optimum %d", b.Name, s, lb, dp.Cost)
			}
		}
	}
}

// TestLowerBoundAdmissibleRandom: property check on random small skeletons
// over several architectures, including the subset-restricted instances the
// §4.1 fan-out generates.
func TestLowerBoundAdmissibleRandom(t *testing.T) {
	archs := []*arch.Arch{arch.QX4(), arch.Linear(4), arch.Ring(5)}
	for seed := int64(0); seed < 40; seed++ {
		a := archs[seed%int64(len(archs))]
		n := 2 + int(seed%3)
		if n > a.NumQubits() {
			n = a.NumQubits()
		}
		sk := randomSkeleton(seed, n, 3+int(seed%6))
		for _, s := range []Strategy{StrategyAll, StrategyOdd} {
			pb := PermBefore(sk, s)
			lb := admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb})
			dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, Strategy: s})
			if err != nil {
				continue
			}
			if lb > dp.Cost {
				t.Errorf("seed %d arch %s strategy %v: lower bound %d exceeds optimum %d", seed, a.Name(), s, lb, dp.Cost)
			}
		}
		// Subset instances: every connected n-subset restriction.
		for _, sub := range a.ConnectedSubsets(n) {
			ra, _ := a.Restrict(sub)
			pb := PermBefore(sk, StrategyAll)
			lb := admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: ra, PermBefore: pb})
			p := encoder.Problem{Skeleton: sk, Arch: ra, PermBefore: pb}
			dp, err := SolveDP(bg, p)
			if err != nil {
				continue
			}
			if lb > dp.Cost {
				t.Errorf("seed %d subset %v: lower bound %d exceeds optimum %d", seed, sub, lb, dp.Cost)
			}
		}
	}
}

// TestLowerBoundAdmissiblePinned: the pinned-placement variant of the bound
// must stay below the pinned optimum.
func TestLowerBoundAdmissiblePinned(t *testing.T) {
	a := arch.QX4()
	pins := [][]int{{0, 1, 2}, {2, 1, 0}, {4, 3, 2}, {0, 2, 4}}
	for seed := int64(0); seed < 12; seed++ {
		sk := randomSkeleton(seed, 3, 5)
		pin := pins[seed%int64(len(pins))]
		pb := PermBefore(sk, StrategyAll)
		lb := admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: a, PermBefore: pb, InitialMapping: pin})
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, InitialMapping: pin})
		if err != nil {
			continue
		}
		if lb > dp.Cost {
			t.Errorf("seed %d pin %v: lower bound %d exceeds optimum %d", seed, pin, lb, dp.Cost)
		}
	}
}

// TestLowerBoundSeedingReported: a SAT run must report the lower bound it
// seeded, and disabling it must zero the report while preserving the cost.
func TestLowerBoundSeedingReported(t *testing.T) {
	lin := arch.Linear(3)
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2}) // triangle on a line: forced SWAPs
	pb := PermBefore(sk, StrategyAll)
	lb := admissibleLowerBound(encoder.Problem{Skeleton: sk, Arch: lin, PermBefore: pb})
	if lb <= 0 {
		t.Fatalf("expected a positive lower bound for a triangle on a line, got %d", lb)
	}
	seeded, err := Solve(bg, sk, lin, Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.LowerBound != lb {
		t.Errorf("Result.LowerBound = %d, want %d", seeded.LowerBound, lb)
	}
	off, err := Solve(bg, sk, lin, Options{Engine: EngineSAT, SAT: SATOptions{NoLowerBound: true}})
	if err != nil {
		t.Fatal(err)
	}
	if off.LowerBound != 0 {
		t.Errorf("NoLowerBound run reports LowerBound = %d, want 0", off.LowerBound)
	}
	if seeded.Cost != off.Cost || !seeded.Minimal || !off.Minimal {
		t.Errorf("seeding changed the result: seeded %d/%v vs off %d/%v",
			seeded.Cost, seeded.Minimal, off.Cost, off.Minimal)
	}
}

// TestCoreGuidedDescentParity: every descent configuration — linear/binary,
// with and without core jumps and lower-bound seeding — must agree with the
// DP oracle and the brute enumerator on the minimal cost, prove minimality,
// and encode exactly once.
func TestCoreGuidedDescentParity(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 10; seed++ {
		n := 2 + int(seed%2)
		gates := 2 + int(seed%3)
		sk := randomSkeleton(seed, n, gates)
		brute, err := SolveBrute(encoder.Problem{Skeleton: sk, Arch: a})
		if err != nil {
			continue
		}
		for _, binary := range []bool{false, true} {
			for _, baseline := range []bool{false, true} {
				opts := SATOptions{BinaryDescent: binary, NoCoreJumps: baseline, NoLowerBound: baseline}
				r, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: opts})
				if err != nil {
					t.Fatalf("seed %d binary=%v baseline=%v: %v", seed, binary, baseline, err)
				}
				if r.Cost != brute {
					t.Errorf("seed %d binary=%v baseline=%v: cost %d, brute %d", seed, binary, baseline, r.Cost, brute)
				}
				if !r.Minimal {
					t.Errorf("seed %d binary=%v baseline=%v: minimality proof lost", seed, binary, baseline)
				}
				if r.Encodes != 1 {
					t.Errorf("seed %d binary=%v baseline=%v: Encodes = %d, want 1", seed, binary, baseline, r.Encodes)
				}
			}
		}
	}
}

// TestCoreJumpsAndSeedingCutProbes is the acceptance check of the
// core-guided descent: on Table-1 benchmarks, binary descent with core
// jumps and lower-bound seeding must perform strictly fewer bound probes in
// total than the single-bound unseeded baseline (the PR 4 behavior), while
// reporting identical DP-verified costs, Encodes == 1 and Minimal == true
// per instance.
func TestCoreJumpsAndSeedingCutProbes(t *testing.T) {
	a := arch.QX4()
	names := []string{"3_17_13", "ex-1_166", "ham3_102", "4gt11_84"}
	totalNew, totalBase := 0, 0
	for _, name := range names {
		b, err := revlib.SuiteByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sk, err := circuit.ExtractSkeleton(b.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP})
		if err != nil {
			t.Fatal(err)
		}
		run := func(opts SATOptions) *Result {
			r, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: opts})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if r.Cost != dp.Cost {
				t.Fatalf("%s: SAT cost %d, DP cost %d", name, r.Cost, dp.Cost)
			}
			if r.Encodes != 1 {
				t.Errorf("%s: Encodes = %d, want 1", name, r.Encodes)
			}
			if !r.Minimal {
				t.Errorf("%s: minimality proof lost", name)
			}
			return r
		}
		guided := run(SATOptions{BinaryDescent: true})
		baseline := run(SATOptions{BinaryDescent: true, NoCoreJumps: true, NoLowerBound: true})
		// Per-instance counts wobble by ±1 with the solver's search
		// trajectory (which models the descent happens to find); the
		// guided descent's guarantee is aggregate, asserted below.
		if guided.BoundProbes > baseline.BoundProbes {
			t.Logf("%s: guided descent used %d probes, baseline %d", name, guided.BoundProbes, baseline.BoundProbes)
		}
		totalNew += guided.BoundProbes
		totalBase += baseline.BoundProbes
	}
	if totalNew >= totalBase {
		t.Errorf("guided descent used %d total bound probes, baseline %d — want strictly fewer", totalNew, totalBase)
	}
	t.Logf("bound probes: guided %d vs baseline %d", totalNew, totalBase)
}
