package exact

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/encoder"
)

var bg = context.Background()

func mkSkeleton(n int, pairs ...[2]int) *circuit.Skeleton {
	sk := &circuit.Skeleton{NumQubits: n}
	for i, p := range pairs {
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: p[0], Target: p[1], Index: i})
	}
	return sk
}

// randomSkeleton generates a deterministic pseudo-random skeleton.
func randomSkeleton(seed int64, n, gates int) *circuit.Skeleton {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(mod))
	}
	sk := &circuit.Skeleton{NumQubits: n}
	for i := 0; i < gates; i++ {
		c := next(n)
		t := next(n)
		if c == t {
			t = (t + 1) % n
		}
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: c, Target: t, Index: i})
	}
	return sk
}

func TestStrategyPermBeforeExample10(t *testing.T) {
	sk := circuit.Figure1b()
	cases := []struct {
		s    Strategy
		want []int // 0-based gate indices in G'
	}{
		{StrategyAll, []int{1, 2, 3, 4}},
		{StrategyDisjoint, []int{2, 3, 4}}, // paper: G' = {g3, g4, g5}
		{StrategyOdd, []int{2, 4}},         // paper: G' = {g3, g5}
		{StrategyTriangle, []int{1}},       // paper: G' = {g2}
	}
	for _, tc := range cases {
		pb := PermBefore(sk, tc.s)
		if pb[0] {
			t.Errorf("%v: index 0 must never be a perm point", tc.s)
		}
		var got []int
		for k, b := range pb {
			if b {
				got = append(got, k)
			}
		}
		if len(got) != len(tc.want) {
			t.Errorf("%v: G' = %v, want %v", tc.s, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%v: G' = %v, want %v", tc.s, got, tc.want)
				break
			}
		}
		if CountPermPoints(pb) != len(tc.want) {
			t.Errorf("%v: CountPermPoints = %d", tc.s, CountPermPoints(pb))
		}
	}
}

func TestStrategyString(t *testing.T) {
	for i, name := range strategyNames {
		s := Strategy(i)
		if s.String() != name {
			t.Errorf("%d.String() = %q", i, s.String())
		}
		parsed, err := ParseStrategy(name)
		if err != nil || parsed != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", name, parsed, err)
		}
	}
	if got, want := Strategies(), []string{"all", "disjoint", "odd", "triangle"}; len(got) != len(want) {
		t.Fatalf("Strategies() = %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("Strategies()[%d] = %q, want %q", i, got[i], want[i])
			}
		}
	}
	_, err := ParseStrategy("bogus")
	if err == nil {
		t.Fatal("bogus strategy should fail")
	}
	// The error must enumerate the valid names (the ParseMethod idiom).
	for _, name := range strategyNames {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}

func TestDPFigure5MinimalCost(t *testing.T) {
	r, err := Solve(bg, circuit.Figure1b(), arch.QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 4 {
		t.Fatalf("DP minimal cost = %d, want 4 (paper Example 7)", r.Cost)
	}
	if r.Engine != "dp" {
		t.Errorf("engine = %q", r.Engine)
	}
}

func TestSATFigure5MinimalCost(t *testing.T) {
	r, err := Solve(bg, circuit.Figure1b(), arch.QX4(), Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 4 {
		t.Fatalf("SAT minimal cost = %d, want 4 (paper Example 7)", r.Cost)
	}
	if r.Solves < 2 {
		t.Errorf("solves = %d, expected at least SAT+UNSAT round", r.Solves)
	}
}

// TestEnginesAgree is the central cross-check: the SAT engine (the paper's
// methodology) and the DP oracle must compute identical minimal costs on
// random circuits, for every strategy, with and without subsets.
func TestEnginesAgree(t *testing.T) {
	a := arch.QX4()
	f := func(seed int64, nRaw, gRaw, sRaw uint) bool {
		n := 2 + int(nRaw%3)     // 2..4 logical qubits
		gates := 2 + int(gRaw%6) // 2..7 CNOTs
		strategy := Strategy(sRaw % 4)
		sk := randomSkeleton(seed, n, gates)
		dp, errDP := Solve(bg, sk, a, Options{Engine: EngineDP, Strategy: strategy})
		st, errSAT := Solve(bg, sk, a, Options{Engine: EngineSAT, Strategy: strategy})
		if (errDP == nil) != (errSAT == nil) {
			return false
		}
		if errDP != nil {
			return true
		}
		return dp.Cost == st.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSubsetsPreserveMinimality(t *testing.T) {
	// Paper §4.1/Table 1: for the evaluated benchmarks the subset
	// optimization preserved minimal cost. Verify on random 3- and 4-qubit
	// circuits against the full-architecture DP engine.
	a := arch.QX4()
	f := func(seed int64, nRaw uint) bool {
		n := 3 + int(nRaw%2)
		sk := randomSkeleton(seed, n, 6)
		full, err1 := Solve(bg, sk, a, Options{Engine: EngineDP})
		sub, err2 := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		// The subset-restricted cost can never beat the full instance, and
		// on QX4 it matches (hub-centered subsets cover optimal routes).
		return sub.Cost >= full.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSubsetSATAgreesWithDP(t *testing.T) {
	a := arch.QX4()
	sk := randomSkeleton(42, 3, 5)
	dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Cost != st.Cost {
		t.Fatalf("subset DP=%d SAT=%d", dp.Cost, st.Cost)
	}
	if dp.SubsetBack == nil || st.SubsetBack == nil {
		t.Error("subset results should carry back-mapping")
	}
}

func TestRestrictedStrategiesOrdering(t *testing.T) {
	// Restricting G' can only increase (never decrease) minimal cost.
	a := arch.QX4()
	f := func(seed int64) bool {
		sk := randomSkeleton(seed, 4, 8)
		all, err := Solve(bg, sk, a, Options{Engine: EngineDP, Strategy: StrategyAll})
		if err != nil {
			return true
		}
		for _, s := range []Strategy{StrategyDisjoint, StrategyOdd, StrategyTriangle} {
			r, err := Solve(bg, sk, a, Options{Engine: EngineDP, Strategy: s})
			if err != nil {
				continue // restricted instance may be unsatisfiable
			}
			if r.Cost < all.Cost {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// applyOps replays an op stream, checking coupling-map compliance and that
// the op stream realizes the skeleton's CNOTs in order under the evolving
// mapping.
func applyOps(t *testing.T, sk *circuit.Skeleton, a *arch.Arch, r *Result) {
	t.Helper()
	ops, err := r.Ops(sk)
	if err != nil {
		t.Fatalf("Ops: %v", err)
	}
	mp := r.InitialMapping()
	swaps, switches := 0, 0
	next := 0
	for _, op := range ops {
		if op.Swap {
			if !a.AllowsEitherDirection(op.A, op.B) {
				t.Fatalf("SWAP on uncoupled pair (%d,%d)", op.A, op.B)
			}
			mp = mp.ApplySwap(op.A, op.B)
			swaps++
			continue
		}
		g := sk.Gates[next]
		if op.GateIndex != next {
			t.Fatalf("gate order: got %d, want %d", op.GateIndex, next)
		}
		next++
		// The executed CNOT must be natively allowed.
		if !a.Allows(op.Control, op.Target) {
			t.Fatalf("gate %d: CNOT(%d→%d) not in coupling map", op.GateIndex, op.Control, op.Target)
		}
		// And must implement the logical gate under the current mapping.
		pc, pt := mp[g.Control], mp[g.Target]
		if op.Switched {
			if op.Control != pt || op.Target != pc {
				t.Fatalf("gate %d: switched op (%d,%d) does not match mapping (%d,%d)",
					op.GateIndex, op.Control, op.Target, pc, pt)
			}
			switches++
		} else if op.Control != pc || op.Target != pt {
			t.Fatalf("gate %d: op (%d,%d) does not match mapping (%d,%d)",
				op.GateIndex, op.Control, op.Target, pc, pt)
		}
	}
	if next != sk.Len() {
		t.Fatalf("only %d of %d gates emitted", next, sk.Len())
	}
	if got := encoder.SwapCost*swaps + encoder.HCost*switches; got != r.Cost {
		t.Fatalf("op-stream cost %d ≠ result cost %d", got, r.Cost)
	}
	if !mp.Equal(r.FinalMapping()) {
		t.Fatalf("final mapping %v ≠ %v", mp, r.FinalMapping())
	}
}

func TestOpsRealizeSolutionDP(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 20; seed++ {
		sk := randomSkeleton(seed, 4, 7)
		r, err := Solve(bg, sk, a, Options{Engine: EngineDP})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		applyOps(t, sk, a, r)
	}
}

func TestOpsRealizeSolutionSubsets(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 10; seed++ {
		sk := randomSkeleton(seed, 3, 6)
		r, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		applyOps(t, sk, a, r)
	}
}

func TestOpsRealizeSolutionSAT(t *testing.T) {
	a := arch.QX4()
	sk := circuit.Figure1b()
	r, err := Solve(bg, sk, a, Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, sk, a, r)
}

func TestBinaryDescentMatchesLinear(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 8; seed++ {
		sk := randomSkeleton(seed, 3, 5)
		lin, err := Solve(bg, sk, a, Options{Engine: EngineSAT})
		if err != nil {
			t.Fatal(err)
		}
		bin, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{BinaryDescent: true}})
		if err != nil {
			t.Fatal(err)
		}
		if lin.Cost != bin.Cost {
			t.Fatalf("seed %d: linear=%d binary=%d", seed, lin.Cost, bin.Cost)
		}
	}
}

func TestStartBoundSpeedsDescent(t *testing.T) {
	a := arch.QX4()
	sk := circuit.Figure1b()
	dp, err := Solve(bg, sk, a, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{StartBound: dp.Cost}})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Cost != dp.Cost {
		t.Fatalf("seeded SAT cost %d ≠ DP cost %d", seeded.Cost, dp.Cost)
	}
	if seeded.Solves > 3 {
		t.Errorf("seeded descent used %d solves, expected ≤ 3", seeded.Solves)
	}
}

func TestUnsatisfiableInstance(t *testing.T) {
	// Two qubits on a disconnected architecture: no mapping can execute a
	// CNOT between components.
	disc := arch.MustNew("disc", 4, []arch.Pair{{Control: 0, Target: 1}})
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	if _, err := Solve(bg, sk, disc, Options{Engine: EngineDP}); err == nil {
		t.Error("DP should report unsatisfiable")
	}
	if _, err := Solve(bg, sk, disc, Options{Engine: EngineSAT}); err == nil {
		t.Error("SAT should report unsatisfiable")
	}
}

func TestEmptySkeleton(t *testing.T) {
	if _, err := Solve(bg, mkSkeleton(2), arch.QX4(), Options{}); err == nil {
		t.Error("empty skeleton should error")
	}
}

func TestDPRejectsHugeSpace(t *testing.T) {
	sk := mkSkeleton(8, [2]int{0, 1})
	if _, err := Solve(bg, sk, arch.QX5(), Options{Engine: EngineDP}); err == nil {
		t.Error("DP on 16-qubit arch without subsets should be rejected")
	}
	// With subsets it becomes feasible for small n.
	sk3 := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	r, err := Solve(bg, sk3, arch.QX5(), Options{Engine: EngineDP, UseSubsets: true})
	if err != nil {
		t.Fatalf("subset DP on QX5: %v", err)
	}
	if r.Cost != 0 {
		t.Errorf("path of 2 CNOTs on QX5 should cost 0, got %d", r.Cost)
	}
}

func TestFixedInitialMapping(t *testing.T) {
	a := arch.QX4()
	// One CNOT(q0→q1). Free mapping costs 0. Pinning q0→p0, q1→p1 forces
	// a direction switch (only (1,0) ∈ CM): cost 4.
	sk := mkSkeleton(2, [2]int{0, 1})
	free, err := Solve(bg, sk, a, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if free.Cost != 0 {
		t.Fatalf("free cost = %d", free.Cost)
	}
	for _, eng := range []Engine{EngineDP, EngineSAT} {
		pinned, err := Solve(bg, sk, a, Options{Engine: eng, InitialMapping: []int{0, 1}})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if pinned.Cost != 4 {
			t.Errorf("engine %v: pinned cost = %d, want 4", eng, pinned.Cost)
		}
		if got := pinned.InitialMapping(); got[0] != 0 || got[1] != 1 {
			t.Errorf("engine %v: initial mapping %v not pinned", eng, got)
		}
	}
	// Pinning to an uncoupled pair forces routing before the first gate:
	// one SWAP plus a direction switch (7 + 4 = 11) is optimal on QX4.
	for _, eng := range []Engine{EngineDP, EngineSAT} {
		far, err := Solve(bg, sk, a, Options{Engine: eng, InitialMapping: []int{0, 4}})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		if far.Cost != 11 {
			t.Errorf("engine %v: distant pin cost = %d, want 11", eng, far.Cost)
		}
		applyOps(t, sk, a, far)
	}
}

func TestFixedInitialMappingEnginesAgree(t *testing.T) {
	a := arch.QX4()
	f := func(seed int64, pinRaw uint) bool {
		sk := randomSkeleton(seed, 3, 5)
		space := []([]int){{0, 1, 2}, {2, 1, 0}, {4, 3, 2}, {1, 2, 3}}
		pin := space[int(pinRaw%uint(len(space)))]
		dp, err1 := Solve(bg, sk, a, Options{Engine: EngineDP, InitialMapping: pin})
		st, err2 := Solve(bg, sk, a, Options{Engine: EngineSAT, InitialMapping: pin})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return dp.Cost == st.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFixedInitialMappingErrors(t *testing.T) {
	a := arch.QX4()
	sk := mkSkeleton(2, [2]int{0, 1})
	if _, err := Solve(bg, sk, a, Options{InitialMapping: []int{0, 0}}); err == nil {
		t.Error("non-injective pin should fail")
	}
	if _, err := Solve(bg, sk, a, Options{InitialMapping: []int{0, 9}}); err == nil {
		t.Error("out-of-range pin should fail")
	}
	if _, err := Solve(bg, sk, a, Options{InitialMapping: []int{0, 1}, UseSubsets: true}); err == nil {
		t.Error("pin + subsets should fail")
	}
}

func TestParallelSubsetsMatchSequential(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 10; seed++ {
		sk := randomSkeleton(seed, 3, 6)
		seq, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true, Parallel: true})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Cost != par.Cost {
			t.Fatalf("seed %d: sequential %d vs parallel %d", seed, seq.Cost, par.Cost)
		}
		// The shared best-cost pruning makes the winning *subset* depend on
		// completion order when several tie, but the cost is invariant and
		// the returned plan must still be a valid realization.
		applyOps(t, sk, a, par)
	}
}

// TestTripleOracleAgreement cross-checks all three engines — SAT, DP and
// the independent brute-force enumerator — on tiny random instances.
func TestTripleOracleAgreement(t *testing.T) {
	a := arch.QX4()
	f := func(seed int64, nRaw, gRaw uint) bool {
		n := 2 + int(nRaw%2)     // 2..3 qubits
		gates := 2 + int(gRaw%3) // 2..4 CNOTs (≤ 4 frames for brute force)
		sk := randomSkeleton(seed, n, gates)
		brute, errB := SolveBrute(encoder.Problem{Skeleton: sk, Arch: a})
		dp, errD := Solve(bg, sk, a, Options{Engine: EngineDP})
		st, errS := Solve(bg, sk, a, Options{Engine: EngineSAT})
		if (errB == nil) != (errD == nil) || (errD == nil) != (errS == nil) {
			return false
		}
		if errB != nil {
			return true
		}
		return brute == dp.Cost && dp.Cost == st.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceGuards(t *testing.T) {
	a := arch.QX4()
	// Too many frames.
	sk := randomSkeleton(1, 3, 9)
	if _, err := SolveBrute(encoder.Problem{Skeleton: sk, Arch: a}); err == nil {
		t.Error("brute force should reject many frames")
	}
	// Empty skeleton.
	if _, err := SolveBrute(encoder.Problem{Skeleton: mkSkeleton(2), Arch: a}); err == nil {
		t.Error("brute force should reject empty skeleton")
	}
}

// TestSolveCancellation verifies that both engines abort a running solve
// promptly once the context is cancelled: the SAT engine at the next
// restart boundary, the DP engine at the next frame transition.
func TestSolveCancellation(t *testing.T) {
	a := arch.Ring(6)
	cases := []struct {
		engine  Engine
		gates   int
		timeout time.Duration
	}{
		// The SAT instance is large enough that encoding alone exceeds the
		// deadline; the DP instance has enough frames that several hundred
		// O(size²) transitions remain when the deadline fires.
		{EngineSAT, 60, 30 * time.Millisecond},
		{EngineDP, 2000, 5 * time.Millisecond},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.engine.String(), func(t *testing.T) {
			t.Parallel()
			sk := randomSkeleton(7, 6, tc.gates)
			ctx, cancel := context.WithTimeout(bg, tc.timeout)
			defer cancel()
			start := time.Now()
			_, err := Solve(ctx, sk, a, Options{Engine: tc.engine})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if elapsed := time.Since(start); elapsed > 15*time.Second {
				t.Errorf("cancellation took %v", elapsed)
			}
		})
	}
}

// TestSolveCancellationSubsets cancels the §4.1 fan-out (sequential and
// parallel) before it starts; the fan-out must report the context error
// rather than "no valid mapping".
func TestSolveCancellationSubsets(t *testing.T) {
	a := arch.QX5()
	sk := randomSkeleton(3, 4, 12)
	for _, parallel := range []bool{false, true} {
		ctx, cancel := context.WithCancel(bg)
		cancel()
		_, err := Solve(ctx, sk, a, Options{Engine: EngineDP, UseSubsets: true, Parallel: parallel})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallel=%v: err = %v, want context.Canceled", parallel, err)
		}
	}
}

// TestUnsatisfiableSentinel checks that embedding failures surface
// ErrUnsatisfiable for errors.Is-based handling (the portfolio layer's
// bound-retry depends on it).
func TestUnsatisfiableSentinel(t *testing.T) {
	// Two disconnected components cannot host a 3-qubit chain.
	disc := arch.MustNew("disc", 4, []arch.Pair{{Control: 0, Target: 1}, {Control: 2, Target: 3}})
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2})
	for _, eng := range []Engine{EngineSAT, EngineDP} {
		if _, err := Solve(bg, sk, disc, Options{Engine: eng}); !errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("engine %v: err = %v, want ErrUnsatisfiable", eng, err)
		}
	}
	// Under StrictBound, a start bound below the true optimum makes the
	// SAT instance UNSAT (the §4.1 pruning semantics).
	lin := arch.Linear(3)
	skHard := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	ref, err := Solve(bg, skHard, lin, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cost == 0 {
		t.Skip("instance unexpectedly free")
	}
	_, err = Solve(bg, skHard, lin, Options{Engine: EngineSAT,
		SAT: SATOptions{StartBound: ref.Cost - 1, StrictBound: true}})
	if !errors.Is(err, ErrUnsatisfiable) {
		t.Errorf("undercut strict bound: err = %v, want ErrUnsatisfiable", err)
	}
}

// TestStartBoundRelaxRecovers: without StrictBound, an undercut StartBound
// no longer fails the solve — the engine detects the failed bound
// assumption, relaxes it on the same solver instance and still proves the
// true optimum, with exactly one encode.
func TestStartBoundRelaxRecovers(t *testing.T) {
	lin := arch.Linear(3)
	sk := mkSkeleton(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{0, 2})
	ref, err := Solve(bg, sk, lin, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Cost == 0 {
		t.Skip("instance unexpectedly free")
	}
	for _, binary := range []bool{false, true} {
		r, err := Solve(bg, sk, lin, Options{Engine: EngineSAT,
			SAT: SATOptions{StartBound: ref.Cost - 1, BinaryDescent: binary}})
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if r.Cost != ref.Cost {
			t.Errorf("binary=%v: cost %d after relax, want %d", binary, r.Cost, ref.Cost)
		}
		if !r.Minimal {
			t.Errorf("binary=%v: relaxed descent should still prove minimality", binary)
		}
		if r.Encodes != 1 {
			t.Errorf("binary=%v: Encodes = %d, want 1 (relax must not re-encode)", binary, r.Encodes)
		}
	}
}

// TestDescentParityOracles is the incremental-descent parity suite: on a
// corpus of small random instances, linear descent, binary descent, the DP
// oracle and the independent brute-force enumerator must all agree on the
// minimal cost, and each SAT run must encode exactly once.
func TestDescentParityOracles(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 12; seed++ {
		n := 2 + int(seed%2)     // 2..3 qubits
		gates := 2 + int(seed%3) // 2..4 CNOTs (≤ 4 frames for brute force)
		sk := randomSkeleton(seed, n, gates)
		brute, err := SolveBrute(encoder.Problem{Skeleton: sk, Arch: a})
		if err != nil {
			continue // instance outside the brute enumerator's limits
		}
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP})
		if err != nil {
			t.Fatalf("seed %d: dp: %v", seed, err)
		}
		lin, err := Solve(bg, sk, a, Options{Engine: EngineSAT})
		if err != nil {
			t.Fatalf("seed %d: linear: %v", seed, err)
		}
		bin, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{BinaryDescent: true}})
		if err != nil {
			t.Fatalf("seed %d: binary: %v", seed, err)
		}
		if brute != dp.Cost || dp.Cost != lin.Cost || lin.Cost != bin.Cost {
			t.Errorf("seed %d: brute=%d dp=%d linear=%d binary=%d", seed, brute, dp.Cost, lin.Cost, bin.Cost)
		}
		for _, r := range []*Result{dp, lin, bin} {
			if !r.Minimal {
				t.Errorf("seed %d: %s run did not report proven minimality", seed, r.Engine)
			}
		}
		for _, r := range []*Result{lin, bin} {
			if r.Encodes != 1 {
				t.Errorf("seed %d: SAT run encoded %d times, want 1", seed, r.Encodes)
			}
		}
	}
}

// TestBinaryDescentSingleEncode pins the headline incremental-solving win:
// binary descent previously re-encoded the instance for every midpoint
// probe (O(log F) Encode calls); it must now run all probes on one
// encoding via guard assumptions.
func TestBinaryDescentSingleEncode(t *testing.T) {
	r, err := Solve(bg, circuit.Figure1b(), arch.QX4(), Options{Engine: EngineSAT, SAT: SATOptions{BinaryDescent: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 4 {
		t.Fatalf("cost = %d, want 4", r.Cost)
	}
	if r.Encodes != 1 {
		t.Errorf("Encodes = %d, want exactly 1 for the whole binary descent", r.Encodes)
	}
	if r.Solves < 2 {
		t.Errorf("Solves = %d, expected several probes on the single encoding", r.Solves)
	}
	if !r.Minimal {
		t.Error("completed binary descent must report proven minimality")
	}
}

// TestBudgetTruncationReportsMinimality: a budget generous enough to finish
// the descent yields a PROVEN minimal result (Minimal true) even though a
// conflict budget was set — the old config-derived inference reported
// false; a budget that truncates the descent after the first model yields
// a valid best-effort result with Minimal false.
func TestBudgetTruncationReportsMinimality(t *testing.T) {
	a := arch.QX4()
	sk := circuit.Figure1b()
	full, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{MaxConflicts: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Minimal || full.Cost != 4 {
		t.Errorf("generous budget: cost=%d minimal=%v, want 4/true (proof completed within budget)", full.Cost, full.Minimal)
	}

	// Find a budget that admits the first model but truncates the proof.
	truncated := false
	for budget := int64(1); budget <= 1<<14 && !truncated; budget *= 2 {
		sk := randomSkeleton(3, 4, 8)
		r, err := Solve(bg, sk, a, Options{Engine: EngineSAT, SAT: SATOptions{MaxConflicts: budget}})
		if err != nil {
			continue // budget exhausted before any model
		}
		if !r.Minimal {
			truncated = true
			if r.Solution == nil || r.Cost < 0 {
				t.Errorf("budget %d: best-effort result without a valid model (cost %d)", budget, r.Cost)
			}
		}
	}
	if !truncated {
		t.Skip("no budget produced a truncated best-effort run on this corpus")
	}
}

// TestSubsetErrorPropagation is the §4.1 error-handling regression: a
// solveOne failure that is NOT ErrUnsatisfiable — here an unknown engine,
// and a conflict-budget exhaustion — must surface verbatim from both the
// sequential and the parallel fan-out instead of being misreported as
// "unsatisfiable on any connected subset".
func TestSubsetErrorPropagation(t *testing.T) {
	a := arch.QX5()
	sk := randomSkeleton(3, 3, 6)
	for _, parallel := range []bool{false, true} {
		_, err := Solve(bg, sk, a, Options{Engine: Engine(99), UseSubsets: true, Parallel: parallel})
		if err == nil || errors.Is(err, ErrUnsatisfiable) {
			t.Fatalf("parallel=%v: unknown engine err = %v, want verbatim propagation", parallel, err)
		}
		if !strings.Contains(err.Error(), "unknown engine") {
			t.Errorf("parallel=%v: err = %q, want the engine error verbatim", parallel, err)
		}
	}

	// A budget so small no subset can even find a first model: the budget
	// error must surface, not an unsatisfiability claim.
	for _, parallel := range []bool{false, true} {
		_, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true, Parallel: parallel,
			SAT: SATOptions{MaxConflicts: 1}})
		if err == nil {
			t.Fatalf("parallel=%v: expected an error from the budgeted run", parallel)
		}
		if errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("parallel=%v: budget exhaustion misreported as unsatisfiable: %v", parallel, err)
		}
		if !strings.Contains(err.Error(), "budget") {
			t.Errorf("parallel=%v: err = %q, want the budget error verbatim", parallel, err)
		}
	}
}

// TestSubsetSharedBoundPruning: the parallel §4.1 fan-out with the SAT
// engine must agree with the DP oracle, aggregate its counters across the
// solved subsets, and keep the minimality proof (pruned subsets are proven
// by their strict-bound UNSAT).
func TestSubsetSharedBoundPruning(t *testing.T) {
	a := arch.QX5()
	for seed := int64(0); seed < 6; seed++ {
		sk := randomSkeleton(seed, 3, 5)
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
		if err != nil {
			t.Fatalf("seed %d: dp: %v", seed, err)
		}
		for _, parallel := range []bool{false, true} {
			st, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true, Parallel: parallel})
			if err != nil {
				t.Fatalf("seed %d parallel=%v: %v", seed, parallel, err)
			}
			if st.Cost != dp.Cost {
				t.Errorf("seed %d parallel=%v: SAT=%d DP=%d", seed, parallel, st.Cost, dp.Cost)
			}
			if st.Encodes < 1 {
				t.Errorf("seed %d parallel=%v: Encodes = %d, want ≥ 1", seed, parallel, st.Encodes)
			}
			if !st.Minimal {
				t.Errorf("seed %d parallel=%v: subset run lost the minimality proof", seed, parallel)
			}
			applyOps(t, sk, a, st)
		}
	}
}

// TestSubsetBudgetHonestMinimality: budgeted §4.1 runs must never abort a
// solve that holds a valid incumbent just because a PRUNING probe (the
// injected strict bound F ≤ best−1) ran out of budget — they degrade to
// the incumbent. And whenever such a run claims Minimal, its cost must
// actually be the subset optimum (checked against the DP oracle).
func TestSubsetBudgetHonestMinimality(t *testing.T) {
	a := arch.QX5()
	degraded := false
	for seed := int64(0); seed < 5; seed++ {
		sk := randomSkeleton(seed, 3, 6)
		dp, err := Solve(bg, sk, a, Options{Engine: EngineDP, UseSubsets: true})
		if err != nil {
			continue
		}
		for budget := int64(64); budget <= 1<<13; budget *= 8 {
			r, err := Solve(bg, sk, a, Options{Engine: EngineSAT, UseSubsets: true,
				SAT: SATOptions{MaxConflicts: budget}})
			if err != nil {
				// Acceptable only when not even a first model fit the
				// budget anywhere; never an unsatisfiability claim.
				if errors.Is(err, ErrUnsatisfiable) {
					t.Fatalf("seed %d budget %d: budgeted run misreported as unsatisfiable: %v", seed, budget, err)
				}
				continue
			}
			if r.Cost < dp.Cost {
				t.Fatalf("seed %d budget %d: cost %d beats the DP optimum %d", seed, budget, r.Cost, dp.Cost)
			}
			if r.Minimal && r.Cost != dp.Cost {
				t.Errorf("seed %d budget %d: claims Minimal at cost %d, optimum is %d", seed, budget, r.Cost, dp.Cost)
			}
			if !r.Minimal {
				degraded = true
			}
			applyOps(t, sk, a, r)
		}
	}
	_ = degraded // informational: some budget truncated a proof on this corpus
}
