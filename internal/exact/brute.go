package exact

import (
	"fmt"

	"repro/internal/encoder"
	"repro/internal/perm"
)

// SolveBrute computes the minimal cost by plain recursive enumeration of
// every frame-mapping sequence, with swap distances recomputed by a local
// breadth-first search that shares no code with perm.SwapTable. It is a
// third, fully independent oracle used only in tests (its complexity is
// |mappings|^frames), guarding against correlated bugs between the SAT and
// DP engines. Only the cost is returned.
func SolveBrute(p encoder.Problem) (int, error) {
	n := p.Skeleton.NumQubits
	m := p.Arch.NumQubits()
	if n > m || n == 0 || p.Skeleton.Len() == 0 {
		return 0, fmt.Errorf("exact: brute force rejects this instance shape")
	}

	// Enumerate injective mappings locally.
	var mappings []perm.Mapping
	cur := make(perm.Mapping, n)
	used := make([]bool, m)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			mappings = append(mappings, cur.Copy())
			return
		}
		for i := 0; i < m; i++ {
			if !used[i] {
				used[i] = true
				cur[j] = i
				rec(j + 1)
				used[i] = false
			}
		}
	}
	rec(0)
	if len(mappings) > 200 {
		return 0, fmt.Errorf("exact: brute force limited to tiny mapping spaces (%d)", len(mappings))
	}

	// Frames.
	var frames [][]int
	for k := 0; k < p.Skeleton.Len(); k++ {
		if k == 0 || p.PermAllowed(k) {
			frames = append(frames, nil)
		}
		frames[len(frames)-1] = append(frames[len(frames)-1], k)
	}
	if len(frames) > 4 {
		return 0, fmt.Errorf("exact: brute force limited to ≤4 frames, have %d", len(frames))
	}

	const inf = 1 << 30
	frameCost := func(gates []int, mp perm.Mapping) int {
		cost := 0
		for _, k := range gates {
			g := p.Skeleton.Gates[k]
			pc, pt := mp[g.Control], mp[g.Target]
			switch {
			case p.Arch.Allows(pc, pt):
			case p.Arch.Allows(pt, pc):
				cost += encoder.HCost
			default:
				return inf
			}
		}
		return cost
	}

	// Local BFS swap distance (independent of perm.SwapTable).
	swapDist := func(from, to perm.Mapping) int {
		type state struct {
			mp perm.Mapping
			d  int
		}
		key := func(mp perm.Mapping) string {
			b := make([]byte, len(mp))
			for i, v := range mp {
				b[i] = byte(v)
			}
			return string(b)
		}
		if from.Equal(to) {
			return 0
		}
		seen := map[string]bool{key(from): true}
		queue := []state{{from, 0}}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, e := range p.Arch.UndirectedEdges() {
				next := s.mp.ApplySwap(e.A, e.B)
				if next.Equal(to) {
					return s.d + 1
				}
				k := key(next)
				if !seen[k] {
					seen[k] = true
					queue = append(queue, state{next, s.d + 1})
				}
			}
		}
		return -1
	}

	best := inf
	var walk func(f int, prev perm.Mapping, acc int)
	walk = func(f int, prev perm.Mapping, acc int) {
		if acc >= best {
			return
		}
		if f == len(frames) {
			best = acc
			return
		}
		for _, mp := range mappings {
			cost := acc
			if f > 0 {
				d := swapDist(prev, mp)
				if d < 0 {
					continue
				}
				cost += encoder.SwapCost * d
			}
			fc := frameCost(frames[f], mp)
			if fc >= inf {
				continue
			}
			walk(f+1, mp, cost+fc)
		}
	}
	walk(0, nil, 0)
	if best >= inf {
		return 0, fmt.Errorf("exact: no valid mapping exists (brute force)")
	}
	return best, nil
}
