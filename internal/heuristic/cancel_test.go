package heuristic

import (
	"context"
	"errors"
	"testing"

	"repro/internal/arch"
)

// TestHeuristicMappersObserveCancellation covers the context plumbing of
// every heuristic entry point: a pre-cancelled context must abort the run
// with an error wrapping context.Canceled instead of running to completion.
func TestHeuristicMappersObserveCancellation(t *testing.T) {
	sk := randomSkeleton(3, 4, 12)
	a := arch.QX4()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := map[string]func() error{
		"Map": func() error {
			_, err := Map(ctx, sk, a, Options{Seed: 1})
			return err
		},
		"MapBest": func() error {
			_, err := MapBest(ctx, sk, a, 5, Options{Seed: 1})
			return err
		},
		"MapAStar": func() error {
			_, err := MapAStar(ctx, sk, a, AStarOptions{Lookahead: 0.5})
			return err
		},
		"MapSabre": func() error {
			_, err := MapSabre(ctx, sk, a, SabreOptions{})
			return err
		},
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestHeuristicDeadlineMidRun cancels while a mapper is working: the
// per-layer checks must stop the run promptly rather than only at entry.
func TestHeuristicDeadlineMidRun(t *testing.T) {
	sk := randomSkeleton(9, 5, 400)
	a := arch.QX4()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := MapBest(ctx, sk, a, 50, Options{Seed: 2})
		done <- err
	}()
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancel: err = %v, want nil or context.Canceled", err)
	}
}
