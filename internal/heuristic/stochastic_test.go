package heuristic

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
)

func randomSkeleton(seed int64, n, gates int) *circuit.Skeleton {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(mod))
	}
	sk := &circuit.Skeleton{NumQubits: n}
	for i := 0; i < gates; i++ {
		c := next(n)
		t := next(n)
		if c == t {
			t = (t + 1) % n
		}
		sk.Gates = append(sk.Gates, circuit.CNOTGate{Control: c, Target: t, Index: i})
	}
	return sk
}

// verify replays the op stream checking coupling compliance, gate order,
// final mapping and the cost identity.
func verify(t *testing.T, sk *circuit.Skeleton, a *arch.Arch, r *Result) {
	t.Helper()
	mp := r.InitialMapping.Copy()
	next := 0
	swaps, switches := 0, 0
	for _, op := range r.Ops {
		if op.Swap {
			if !a.AllowsEitherDirection(op.A, op.B) {
				t.Fatalf("SWAP on uncoupled (%d,%d)", op.A, op.B)
			}
			mp = mp.ApplySwap(op.A, op.B)
			swaps++
			continue
		}
		g := sk.Gates[next]
		if op.GateIndex != next {
			t.Fatalf("gate order %d, want %d", op.GateIndex, next)
		}
		next++
		if !a.Allows(op.Control, op.Target) {
			t.Fatalf("gate %d: CNOT(%d→%d) not allowed", op.GateIndex, op.Control, op.Target)
		}
		pc, pt := mp[g.Control], mp[g.Target]
		if op.Switched {
			switches++
			if op.Control != pt || op.Target != pc {
				t.Fatalf("gate %d: switched op mismatch", op.GateIndex)
			}
		} else if op.Control != pc || op.Target != pt {
			t.Fatalf("gate %d: op mismatch", op.GateIndex)
		}
	}
	if next != sk.Len() {
		t.Fatalf("emitted %d of %d gates", next, sk.Len())
	}
	if swaps != r.Swaps || switches != r.Switches {
		t.Fatalf("counts: got %d/%d, reported %d/%d", swaps, switches, r.Swaps, r.Switches)
	}
	if r.Cost != 7*swaps+4*switches {
		t.Fatalf("cost %d ≠ 7·%d+4·%d", r.Cost, swaps, switches)
	}
	if got := circuit.OpStreamCost(r.Ops); got != r.Cost {
		t.Fatalf("OpStreamCost %d ≠ %d", got, r.Cost)
	}
	if !mp.Equal(r.FinalMapping) {
		t.Fatalf("final mapping %v ≠ %v", mp, r.FinalMapping)
	}
}

func TestMapFigure1(t *testing.T) {
	r, err := Map(context.Background(), circuit.Figure1b(), arch.QX4(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, circuit.Figure1b(), arch.QX4(), r)
}

func TestDeterministicPerSeed(t *testing.T) {
	sk := randomSkeleton(7, 5, 20)
	a := arch.QX4()
	r1, err := Map(context.Background(), sk, a, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Map(context.Background(), sk, a, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || len(r1.Ops) != len(r2.Ops) {
		t.Fatal("same seed should reproduce identical results")
	}
	for i := range r1.Ops {
		if r1.Ops[i] != r2.Ops[i] {
			t.Fatal("op streams differ")
		}
	}
}

func TestValidityOnRandomCircuits(t *testing.T) {
	archs := []*arch.Arch{arch.QX4(), arch.QX2(), arch.Linear(5), arch.QX5()}
	for _, a := range archs {
		for seed := int64(0); seed < 10; seed++ {
			n := 4
			if a.NumQubits() < 4 {
				n = a.NumQubits()
			}
			sk := randomSkeleton(seed, n, 15)
			r, err := Map(context.Background(), sk, a, Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", a.Name(), seed, err)
			}
			verify(t, sk, a, r)
		}
	}
}

// TestNeverBeatsExact is the paper's core premise: a heuristic can never
// produce a cheaper mapping than the proven minimum.
func TestNeverBeatsExact(t *testing.T) {
	a := arch.QX4()
	f := func(seed int64, nRaw, gRaw uint) bool {
		n := 2 + int(nRaw%4)
		gates := 2 + int(gRaw%8)
		sk := randomSkeleton(seed, n, gates)
		h, err := MapBest(context.Background(), sk, a, 5, Options{Seed: seed})
		if err != nil {
			return false
		}
		ex, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineDP})
		if err != nil {
			return false
		}
		return h.Cost >= ex.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapBestNotWorseThanSingle(t *testing.T) {
	sk := randomSkeleton(3, 5, 25)
	a := arch.QX4()
	single, err := Map(context.Background(), sk, a, Options{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	best, err := MapBest(context.Background(), sk, a, 5, Options{Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	if best.Cost > single.Cost {
		t.Errorf("MapBest %d worse than first run %d", best.Cost, single.Cost)
	}
	verify(t, sk, a, best)
}

func TestErrors(t *testing.T) {
	if _, err := Map(context.Background(), randomSkeleton(0, 6, 3), arch.QX4(), Options{}); err == nil {
		t.Error("n > m should fail")
	}
	disc := arch.MustNew("disc", 4, []arch.Pair{{Control: 0, Target: 1}, {Control: 2, Target: 3}})
	if _, err := Map(context.Background(), randomSkeleton(0, 4, 3), disc, Options{}); err == nil {
		t.Error("disconnected arch should fail")
	}
}

func TestZeroCostWhenLayoutFits(t *testing.T) {
	// A single CNOT already on a coupled pair in forward direction under
	// the trivial layout: q1→q0 matches QX4's (1,0) coupling.
	sk := &circuit.Skeleton{NumQubits: 2, Gates: []circuit.CNOTGate{{Control: 1, Target: 0}}}
	r, err := Map(context.Background(), sk, arch.QX4(), Options{Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Errorf("cost = %d, want 0", r.Cost)
	}
}
