package heuristic

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// AStarOptions tunes the A*-search mapper.
type AStarOptions struct {
	// Lookahead weighs the following layer's distances into the search
	// heuristic (0 disables; 0.5 is the customary value). Non-zero
	// lookahead makes the per-layer search inadmissible but usually
	// reduces the global cost, exactly as in the A* methodology the paper
	// cites as [22] (Zulehner, Paler, Wille, TCAD 2018).
	Lookahead float64
	// MaxExpansions caps A* node expansions per layer (default 200 000).
	MaxExpansions int
	// Initial pins the starting layout (default: trivial layout).
	Initial perm.Mapping
}

func (o AStarOptions) withDefaults() AStarOptions {
	if o.MaxExpansions <= 0 {
		o.MaxExpansions = 200_000
	}
	return o
}

// cancelCheckInterval is how many A* node expansions may pass between
// context polls: frequent enough for sub-millisecond deadline response,
// rare enough to keep the atomic load off the hot path.
const cancelCheckInterval = 1024

// MapAStar maps the skeleton with a per-layer A* search over SWAP
// sequences: a deterministic, stronger baseline than the stochastic
// mapper, in the algorithmic family of the paper's reference [22]. For
// each layer whose gates are not all executable, A* finds a provably
// SWAP-count-minimal repair for that layer (greedy across layers, so still
// a heuristic globally). Cancelling the context aborts the run between
// layers and within a bounded number of node expansions.
func MapAStar(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts AStarOptions) (*Result, error) {
	n, m := sk.NumQubits, a.NumQubits()
	if n > m {
		return nil, fmt.Errorf("heuristic: %d logical qubits exceed %d physical", n, m)
	}
	if !a.Connected() {
		return nil, fmt.Errorf("heuristic: architecture %s is disconnected", a)
	}
	opts = opts.withDefaults()

	initial := opts.Initial
	if initial == nil {
		initial = perm.IdentityMapping(n)
	} else if len(initial) != n || !initial.Valid(m) {
		return nil, fmt.Errorf("heuristic: invalid initial layout %v", initial)
	}
	res := &Result{InitialMapping: initial.Copy()}
	layout := res.InitialMapping.Copy()
	layers := sk.DisjointLayers()

	for li, layer := range layers {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("heuristic: canceled: %w", err)
		}
		gates := make([]circuit.CNOTGate, len(layer))
		for i, gi := range layer {
			gates[i] = sk.Gates[gi]
		}
		var next []circuit.CNOTGate
		if opts.Lookahead > 0 && li+1 < len(layers) {
			for _, gi := range layers[li+1] {
				next = append(next, sk.Gates[gi])
			}
		}
		if !layerExecutable(gates, layout, a) {
			seq, err := astarSwaps(ctx, gates, next, layout, a, opts)
			if err != nil {
				return nil, err
			}
			for _, e := range seq {
				res.Ops = append(res.Ops, circuit.MappedOp{Swap: true, A: e.A, B: e.B})
				res.Swaps++
				layout = layout.ApplySwap(e.A, e.B)
			}
		}
		for i, g := range gates {
			pc, pt := layout[g.Control], layout[g.Target]
			op := circuit.MappedOp{GateIndex: layer[i], Control: pc, Target: pt}
			if !a.Allows(pc, pt) {
				if !a.Allows(pt, pc) {
					return nil, fmt.Errorf("heuristic: internal error: gate %d not executable after A*", layer[i])
				}
				op.Control, op.Target = pt, pc
				op.Switched = true
				res.Switches++
			}
			res.Ops = append(res.Ops, op)
		}
	}
	res.FinalMapping = layout
	res.Cost = opsCost(a, res.Ops)
	return res, nil
}

// node is one A* search state.
type node struct {
	layout perm.Mapping
	g      int     // weighted cost of the SWAPs used so far
	f      float64 // g + h (+ finish estimate)
	seq    []perm.Edge
	index  int
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *nodeQueue) Push(x interface{}) { n := x.(*node); n.index = len(*q); *q = append(*q, n) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := old[len(old)-1]
	*q = old[:len(old)-1]
	return n
}

// layerH is the admissible part of the heuristic: each SWAP moves two
// physical qubits, and within a layer every qubit participates in at most
// one gate, so one SWAP reduces the summed distance-to-adjacency by at
// most 2 — and costs at least the model's cheapest SWAP weight.
func layerH(gates []circuit.CNOTGate, layout perm.Mapping, a *arch.Arch, minSwapW int) int {
	excess := 0
	for _, g := range gates {
		d := a.Distance(layout[g.Control], layout[g.Target])
		if d > 1 {
			excess += d - 1
		}
	}
	return minSwapW * ((excess + 1) / 2)
}

// finishCost is the direction-fix cost once all gates are adjacent.
func finishCost(gates []circuit.CNOTGate, layout perm.Mapping, a *arch.Arch) int {
	cm := a.Cost()
	cost := 0
	for _, g := range gates {
		pc, pt := layout[g.Control], layout[g.Target]
		if !a.Allows(pc, pt) {
			cost += cm.HWeight(pt, pc)
		}
	}
	return cost
}

// lookaheadH adds a discounted estimate for the next layer.
func lookaheadH(next []circuit.CNOTGate, layout perm.Mapping, a *arch.Arch, minSwapW int, w float64) float64 {
	if w <= 0 || len(next) == 0 {
		return 0
	}
	excess := 0
	for _, g := range next {
		d := a.Distance(layout[g.Control], layout[g.Target])
		if d > 1 {
			excess += d - 1
		}
	}
	return w * float64(minSwapW) * float64(excess) / 2
}

// opsCost prices a mapped op stream under the architecture's cost model:
// each SWAP at its edge's weight, each switched CNOT at its executed
// direction's switch weight (7 and 4 everywhere in the paper model).
func opsCost(a *arch.Arch, ops []circuit.MappedOp) int {
	cm := a.Cost()
	cost := 0
	for _, op := range ops {
		switch {
		case op.Swap:
			cost += cm.SwapWeight(op.A, op.B)
		case op.Switched:
			cost += cm.HWeight(op.Control, op.Target)
		}
	}
	return cost
}

// astarSwaps finds a SWAP sequence making every layer gate executable,
// minimizing the model-weighted SWAP + direction-switch cost for this
// layer (7·#SWAPs + 4·#switches in the paper model; plus lookahead bias
// when enabled). The context is polled every cancelCheckInterval node
// expansions so long searches stay responsive to per-job deadlines.
func astarSwaps(ctx context.Context, gates, next []circuit.CNOTGate, start perm.Mapping, a *arch.Arch, opts AStarOptions) ([]perm.Edge, error) {
	cm := a.Cost()
	minSwapW := cm.MinSwapWeight(a.UndirectedEdges())
	startNode := &node{
		layout: start.Copy(),
		f:      float64(layerH(gates, start, a, minSwapW)) + lookaheadH(next, start, a, minSwapW, opts.Lookahead),
	}
	open := &nodeQueue{}
	heap.Init(open)
	heap.Push(open, startNode)
	bestG := map[uint64]int{start.Key(): 0}

	var best *node
	bestTotal := 1 << 30
	expansions := 0
	for open.Len() > 0 {
		cur := heap.Pop(open).(*node)
		if best != nil && float64(bestTotal) <= cur.f {
			break // everything remaining is at least as expensive
		}
		expansions++
		if expansions > opts.MaxExpansions {
			break
		}
		if expansions%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("heuristic: canceled: %w", err)
			}
		}
		if layerExecutable(gates, cur.layout, a) {
			total := cur.g + finishCost(gates, cur.layout, a)
			if total < bestTotal {
				bestTotal = total
				best = cur
			}
			continue
		}
		for _, e := range a.UndirectedEdges() {
			nl := cur.layout.ApplySwap(e.A, e.B)
			ng := cur.g + cm.EdgeSwapWeight(e)
			key := nl.Key()
			if prev, ok := bestG[key]; ok && prev <= ng {
				continue
			}
			bestG[key] = ng
			seq := make([]perm.Edge, len(cur.seq)+1)
			copy(seq, cur.seq)
			seq[len(cur.seq)] = e
			heap.Push(open, &node{
				layout: nl,
				g:      ng,
				f: float64(ng+layerH(gates, nl, a, minSwapW)) +
					lookaheadH(next, nl, a, minSwapW, opts.Lookahead),
				seq: seq,
			})
		}
	}
	if best == nil {
		return nil, fmt.Errorf("heuristic: A* found no executable layout within %d expansions", opts.MaxExpansions)
	}
	return best.seq, nil
}
