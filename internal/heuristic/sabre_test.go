package heuristic

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
)

func TestReverseSkeleton(t *testing.T) {
	sk := circuit.Figure1b()
	rev := reverseSkeleton(sk)
	if rev.Len() != sk.Len() {
		t.Fatal("length changed")
	}
	for i := 0; i < sk.Len(); i++ {
		g := sk.Gates[i]
		r := rev.Gates[sk.Len()-1-i]
		if g.Control != r.Control || g.Target != r.Target {
			t.Errorf("gate %d not mirrored", i)
		}
	}
	// Double reversal restores the original order.
	dd := reverseSkeleton(rev)
	for i := range sk.Gates {
		if dd.Gates[i].Control != sk.Gates[i].Control || dd.Gates[i].Target != sk.Gates[i].Target {
			t.Fatal("double reversal differs")
		}
	}
}

func TestSabreValidity(t *testing.T) {
	a := arch.QX4()
	for seed := int64(0); seed < 10; seed++ {
		sk := randomSkeleton(seed, 5, 18)
		r, err := MapSabre(context.Background(), sk, a, SabreOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		verify(t, sk, a, r)
	}
}

func TestSabreNeverBelowExact(t *testing.T) {
	a := arch.QX4()
	f := func(seed int64, gRaw uint) bool {
		sk := randomSkeleton(seed, 4, 2+int(gRaw%8))
		r, err := MapSabre(context.Background(), sk, a, SabreOptions{})
		if err != nil {
			return false
		}
		ex, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineDP})
		if err != nil {
			return false
		}
		return r.Cost >= ex.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSabreRefinementHelps: across a batch, reversal passes should never
// hurt the aggregate (the best pass is kept per instance) and usually help
// versus a single trivial-layout A* run.
func TestSabreRefinementHelps(t *testing.T) {
	a := arch.QX4()
	totalSabre, totalPlain := 0, 0
	for seed := int64(0); seed < 25; seed++ {
		sk := randomSkeleton(seed, 5, 20)
		sr, err := MapSabre(context.Background(), sk, a, SabreOptions{Passes: 3})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := MapAStar(context.Background(), sk, a, AStarOptions{Lookahead: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		totalSabre += sr.Cost
		totalPlain += pr.Cost
		// Per instance, pass 0 IS the plain run, so Sabre can never be
		// worse than plain.
		if sr.Cost > pr.Cost {
			t.Errorf("seed %d: sabre %d worse than plain %d", seed, sr.Cost, pr.Cost)
		}
	}
	t.Logf("aggregate cost: sabre %d vs plain A* %d", totalSabre, totalPlain)
}

func TestSabreDefaults(t *testing.T) {
	o := SabreOptions{}.withDefaults()
	if o.Passes != 2 || o.Lookahead != 0.5 {
		t.Errorf("defaults = %+v", o)
	}
}
