package heuristic

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// SabreOptions tunes the reversal-pass mapper.
type SabreOptions struct {
	// Passes is the number of forward/backward refinement rounds
	// (default 2). Each round maps the reversed circuit starting from the
	// previous pass's final layout, then maps forward again from that
	// result — the initial-mapping refinement idea of SABRE (the paper's
	// reference [13], Li, Ding, Xie).
	Passes int
	// Lookahead is forwarded to the inner A* mapper.
	Lookahead float64
}

func (o SabreOptions) withDefaults() SabreOptions {
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if o.Lookahead == 0 {
		o.Lookahead = 0.5
	}
	return o
}

// reverseSkeleton returns the skeleton with gate order reversed (the
// adjoint circuit's CNOT structure; CNOTs are self-inverse).
func reverseSkeleton(sk *circuit.Skeleton) *circuit.Skeleton {
	rev := &circuit.Skeleton{NumQubits: sk.NumQubits}
	for i := sk.Len() - 1; i >= 0; i-- {
		g := sk.Gates[i]
		rev.Gates = append(rev.Gates, circuit.CNOTGate{
			Control: g.Control, Target: g.Target, Index: sk.Len() - 1 - i})
	}
	return rev
}

// MapSabre maps the skeleton with SABRE-style bidirectional passes: the
// circuit is mapped forward, then its reversal is mapped starting from the
// forward pass's final layout (whose final layout is therefore a good
// *initial* layout for the forward circuit), and so on. The best forward
// result across passes is returned. The inner mapper is the per-layer A*
// search. Cancellation is observed between passes (and inside each pass via
// MapAStar's own checks).
func MapSabre(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts SabreOptions) (*Result, error) {
	opts = opts.withDefaults()
	rev := reverseSkeleton(sk)

	var best *Result
	initial := perm.Mapping(nil) // trivial on the first pass
	for pass := 0; pass < opts.Passes; pass++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("heuristic: canceled: %w", err)
		}
		fwd, err := MapAStar(ctx, sk, a, AStarOptions{Lookahead: opts.Lookahead, Initial: initial})
		if err != nil {
			return nil, fmt.Errorf("heuristic: sabre forward pass %d: %w", pass, err)
		}
		if best == nil || fwd.Cost < best.Cost {
			best = fwd
		}
		if pass == opts.Passes-1 {
			break
		}
		back, err := MapAStar(ctx, rev, a, AStarOptions{Lookahead: opts.Lookahead, Initial: fwd.FinalMapping})
		if err != nil {
			return nil, fmt.Errorf("heuristic: sabre backward pass %d: %w", pass, err)
		}
		initial = back.FinalMapping
	}
	return best, nil
}
