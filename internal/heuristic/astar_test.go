package heuristic

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
)

func TestAStarFigure1(t *testing.T) {
	sk := circuit.Figure1b()
	r, err := MapAStar(context.Background(), sk, arch.QX4(), AStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	verify(t, sk, arch.QX4(), r)
}

func TestAStarDeterministic(t *testing.T) {
	sk := randomSkeleton(3, 5, 25)
	a := arch.QX4()
	r1, err := MapAStar(context.Background(), sk, a, AStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MapAStar(context.Background(), sk, a, AStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || len(r1.Ops) != len(r2.Ops) {
		t.Fatal("A* should be deterministic")
	}
}

func TestAStarValidity(t *testing.T) {
	archs := []*arch.Arch{arch.QX4(), arch.QX2(), arch.Linear(5), arch.QX5()}
	for _, a := range archs {
		for seed := int64(0); seed < 8; seed++ {
			n := 4
			if a.NumQubits() < 4 {
				n = a.NumQubits()
			}
			sk := randomSkeleton(seed, n, 12)
			for _, la := range []float64{0, 0.5} {
				r, err := MapAStar(context.Background(), sk, a, AStarOptions{Lookahead: la})
				if err != nil {
					t.Fatalf("%s seed %d lookahead %v: %v", a.Name(), seed, la, err)
				}
				verify(t, sk, a, r)
			}
		}
	}
}

// TestAStarNeverBelowExact: no heuristic may beat the proven minimum.
func TestAStarNeverBelowExact(t *testing.T) {
	a := arch.QX4()
	f := func(seed int64, nRaw, gRaw uint) bool {
		n := 2 + int(nRaw%4)
		gates := 2 + int(gRaw%8)
		sk := randomSkeleton(seed, n, gates)
		r, err := MapAStar(context.Background(), sk, a, AStarOptions{Lookahead: 0.5})
		if err != nil {
			return false
		}
		ex, err := exact.Solve(context.Background(), sk, a, exact.Options{Engine: exact.EngineDP})
		if err != nil {
			return false
		}
		return r.Cost >= ex.Cost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestAStarCompetitiveWithStochastic: across a batch of random circuits
// the A* baseline should on aggregate be at least as good as a single
// stochastic run — it searches each layer optimally.
func TestAStarCompetitiveWithStochastic(t *testing.T) {
	a := arch.QX4()
	totalAStar, totalStoch := 0, 0
	for seed := int64(0); seed < 25; seed++ {
		sk := randomSkeleton(seed, 5, 20)
		ar, err := MapAStar(context.Background(), sk, a, AStarOptions{Lookahead: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		sr, err := Map(context.Background(), sk, a, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		totalAStar += ar.Cost
		totalStoch += sr.Cost
	}
	if totalAStar > totalStoch {
		t.Errorf("A* total %d worse than stochastic total %d", totalAStar, totalStoch)
	}
	t.Logf("aggregate cost: A* %d vs stochastic %d", totalAStar, totalStoch)
}

func TestAStarErrors(t *testing.T) {
	if _, err := MapAStar(context.Background(), randomSkeleton(0, 6, 3), arch.QX4(), AStarOptions{}); err == nil {
		t.Error("n > m should fail")
	}
	disc := arch.MustNew("disc", 4, []arch.Pair{{Control: 0, Target: 1}, {Control: 2, Target: 3}})
	if _, err := MapAStar(context.Background(), randomSkeleton(0, 4, 3), disc, AStarOptions{}); err == nil {
		t.Error("disconnected arch should fail")
	}
}

// TestAStarLayerOptimality: on single-layer instances (one CNOT), the A*
// cost must equal the exact minimum restricted to the trivial initial
// layout; since a single CNOT admits cost-0..cheap mappings, check the
// weaker exact bound plus the structural property that the first layer's
// repair is SWAP-minimal for the trivial layout.
func TestAStarLayerOptimality(t *testing.T) {
	a := arch.QX4()
	// One CNOT between the two most distant qubits under trivial layout.
	sk := &circuit.Skeleton{NumQubits: 5, Gates: []circuit.CNOTGate{{Control: 0, Target: 4}}}
	r, err := MapAStar(context.Background(), sk, a, AStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Distance(p0,p4) = 2 → one SWAP brings them adjacent; plus possibly
	// a 4-H switch. A* must not use more than one SWAP.
	if r.Swaps > 1 {
		t.Errorf("A* used %d SWAPs for a distance-2 pair", r.Swaps)
	}
	verify(t, sk, a, r)
}
