// Package heuristic reimplements the layered stochastic-swap mapping
// algorithm of IBM's Qiskit SDK (the "IBM [12]" baseline column of the
// paper's Table 1). It is intentionally a heuristic: the paper's point is
// to quantify how far such heuristics are from the exact minimum computed
// by internal/exact.
//
// The algorithm processes the CNOT skeleton layer by layer (maximal runs of
// gates on disjoint qubits). When some gate of the current layer is not
// executable under the current layout, randomized greedy trials search for
// a short SWAP sequence bringing every gate's qubits onto coupled pairs;
// the best trial (fewest SWAPs) is applied. CNOT direction mismatches are
// repaired with 4 H gates, exactly as in the paper's cost model.
package heuristic

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// Options tunes the stochastic mapper.
type Options struct {
	// Trials is the number of randomized swap-search attempts per stuck
	// layer (default 20, mirroring Qiskit's default).
	Trials int
	// Seed seeds the deterministic random source. Runs with equal seeds
	// and inputs produce identical results.
	Seed int64
	// MaxIterations caps swap-sequence length per trial (default 2·m²).
	MaxIterations int
	// Initial pins the starting layout (default: the trivial layout
	// logical j → physical j, as in the Qiskit version the paper ran).
	Initial perm.Mapping
}

func (o Options) withDefaults(m int) Options {
	if o.Trials <= 0 {
		o.Trials = 20
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 2 * m * m
	}
	return o
}

// Result is the outcome of a heuristic mapping run.
type Result struct {
	// Ops is the mapped gate stream (SWAPs and physical CNOTs).
	Ops []circuit.MappedOp
	// InitialMapping and FinalMapping are the logical→physical layouts
	// before the first and after the last gate.
	InitialMapping perm.Mapping
	FinalMapping   perm.Mapping
	// Swaps and Switches count inserted SWAP operations and direction
	// fixes; Cost prices Ops under the architecture's cost model —
	// 7·Swaps + 4·Switches with the paper model (Eq. 5 metric), the
	// weighted per-edge sum under a calibration model.
	Swaps    int
	Switches int
	Cost     int
}

// Map maps the skeleton onto the architecture with the stochastic
// heuristic. The initial layout is the trivial one (logical qubit j on
// physical qubit j), as in the Qiskit version the paper benchmarked.
// Cancelling the context aborts the run between layers and between swap-
// search trials, returning an error that wraps ctx.Err().
func Map(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, opts Options) (*Result, error) {
	n, m := sk.NumQubits, a.NumQubits()
	if n > m {
		return nil, fmt.Errorf("heuristic: %d logical qubits exceed %d physical", n, m)
	}
	if !a.Connected() {
		return nil, fmt.Errorf("heuristic: architecture %s is disconnected", a)
	}
	opts = opts.withDefaults(m)
	rng := rand.New(rand.NewSource(opts.Seed))

	initial := opts.Initial
	if initial == nil {
		initial = perm.IdentityMapping(n)
	} else if len(initial) != n || !initial.Valid(m) {
		return nil, fmt.Errorf("heuristic: invalid initial layout %v", initial)
	}
	res := &Result{InitialMapping: initial.Copy()}
	layout := res.InitialMapping.Copy()

	for _, layer := range sk.DisjointLayers() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("heuristic: canceled: %w", err)
		}
		gates := make([]circuit.CNOTGate, len(layer))
		for i, gi := range layer {
			gates[i] = sk.Gates[gi]
		}
		if !layerExecutable(gates, layout, a) {
			seq, err := searchSwaps(ctx, gates, layout, a, opts, rng)
			if err != nil {
				return nil, err
			}
			for _, e := range seq {
				res.Ops = append(res.Ops, circuit.MappedOp{Swap: true, A: e.A, B: e.B})
				res.Swaps++
				layout = layout.ApplySwap(e.A, e.B)
			}
		}
		// Emit the layer's gates with direction fixes.
		for i, g := range gates {
			pc, pt := layout[g.Control], layout[g.Target]
			op := circuit.MappedOp{GateIndex: layer[i], Control: pc, Target: pt}
			if !a.Allows(pc, pt) {
				if !a.Allows(pt, pc) {
					return nil, fmt.Errorf("heuristic: internal error: gate %d not executable after swap search", layer[i])
				}
				op.Control, op.Target = pt, pc
				op.Switched = true
				res.Switches++
			}
			res.Ops = append(res.Ops, op)
		}
	}
	res.FinalMapping = layout
	res.Cost = opsCost(a, res.Ops)
	return res, nil
}

// MapBest runs Map with the given number of independent seeds and returns
// the lowest-cost result — the paper ran Qiskit's probabilistic mapper 5
// times per benchmark and reported the observed minimum. Cancellation is
// observed between (and, via Map, inside) the restarts.
func MapBest(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch, runs int, opts Options) (*Result, error) {
	if runs <= 0 {
		runs = 1
	}
	var best *Result
	for r := 0; r < runs; r++ {
		o := opts
		o.Seed = opts.Seed + int64(r)*0x9e3779b9
		res, err := Map(ctx, sk, a, o)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Cost < best.Cost {
			best = res
		}
	}
	return best, nil
}

// layerExecutable reports whether every gate of the layer acts on a
// coupled physical pair (in either direction) under the layout.
func layerExecutable(gates []circuit.CNOTGate, layout perm.Mapping, a *arch.Arch) bool {
	for _, g := range gates {
		if !a.AllowsEitherDirection(layout[g.Control], layout[g.Target]) {
			return false
		}
	}
	return true
}

// layerDistance is the search objective: the summed coupling-graph
// distances of every gate's qubit pair, perturbed multiplicatively per
// trial to randomize tie-breaking (Qiskit's randomized cost matrix).
func layerDistance(gates []circuit.CNOTGate, layout perm.Mapping, a *arch.Arch, noise [][]float64) float64 {
	total := 0.0
	for _, g := range gates {
		pc, pt := layout[g.Control], layout[g.Target]
		d := float64(a.Distance(pc, pt))
		total += d * noise[pc][pt]
	}
	return total
}

// searchSwaps runs randomized greedy descent trials and returns the
// cheapest SWAP sequence found (by the cost model's edge weights; the
// shortest one in the paper model) that makes the layer executable.
func searchSwaps(ctx context.Context, gates []circuit.CNOTGate, layout perm.Mapping, a *arch.Arch, opts Options, rng *rand.Rand) ([]perm.Edge, error) {
	m := a.NumQubits()
	cm := a.Cost()
	seqWeight := func(seq []perm.Edge) int {
		total := 0
		for _, e := range seq {
			total += cm.EdgeSwapWeight(e)
		}
		return total
	}
	var best []perm.Edge
	bestW := 0
	for trial := 0; trial < opts.Trials; trial++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("heuristic: canceled: %w", err)
		}
		// Fresh multiplicative noise on the distance matrix per trial.
		noise := make([][]float64, m)
		for i := range noise {
			noise[i] = make([]float64, m)
			for j := range noise[i] {
				noise[i][j] = 1 + 0.1*rng.Float64()
			}
		}
		cur := layout.Copy()
		var seq []perm.Edge
		for iter := 0; iter < opts.MaxIterations; iter++ {
			if layerExecutable(gates, cur, a) {
				break
			}
			// Greedy: apply the edge swap with the lowest perturbed
			// objective; random walk on stall to escape local minima.
			bestEdge := perm.Edge{A: -1}
			bestCost := layerDistance(gates, cur, a, noise)
			improved := false
			for _, e := range a.UndirectedEdges() {
				cand := cur.ApplySwap(e.A, e.B)
				c := layerDistance(gates, cand, a, noise)
				if c < bestCost {
					bestCost = c
					bestEdge = e
					improved = true
				}
			}
			if !improved {
				edges := a.UndirectedEdges()
				bestEdge = edges[rng.Intn(len(edges))]
			}
			cur = cur.ApplySwap(bestEdge.A, bestEdge.B)
			seq = append(seq, bestEdge)
		}
		if !layerExecutable(gates, cur, a) {
			continue // trial failed within iteration budget
		}
		if w := seqWeight(seq); best == nil || w < bestW {
			best, bestW = seq, w
		}
		if len(best) == 0 {
			break
		}
	}
	if best == nil {
		return nil, fmt.Errorf("heuristic: no executable layout found in %d trials", opts.Trials)
	}
	return best, nil
}
