package solver

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/portfolio"
)

func TestMethodsListsBuiltinsInOrder(t *testing.T) {
	want := []string{NameExact, NameExactSubsets, NameDisjoint, NameOdd,
		NameTriangle, NameHeuristic, NameAStar, NameSabre}
	got := Methods()
	if len(got) < len(want) {
		t.Fatalf("Methods() = %v, want at least the %d built-ins", got, len(want))
	}
	for i, name := range want {
		if got[i] != name {
			t.Errorf("Methods()[%d] = %q, want %q", i, got[i], name)
		}
	}
}

func TestNewUnknownMethodListsValidNames(t *testing.T) {
	_, err := New("bogus", Config{})
	if err == nil {
		t.Fatal("unknown method should fail")
	}
	for _, name := range Methods() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list method %q", err, name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	Register(NameExact, func(Config) (Solver, error) { return nil, nil })
}

func TestRegisterCustomBackend(t *testing.T) {
	called := false
	Register("test-custom", func(cfg Config) (Solver, error) {
		called = true
		return exactSolver{cfg: cfg, strategy: exact.StrategyAll, minimal: true}, nil
	})
	s, err := New("test-custom", Config{Engine: exact.EngineDP})
	if err != nil || !called {
		t.Fatalf("custom factory not used: %v", err)
	}
	plan, err := s.Solve(context.Background(), circuit.Figure1b(), arch.QX4())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != 4 {
		t.Errorf("custom-registered exact solver cost = %d, want 4", plan.Cost)
	}
}

// TestBuiltinPlansOnRunningExample checks the Plan invariants of every
// built-in method on the paper's running example: the restricted exact
// strategies still reach F = 4 (paper Example 10), the heuristics never
// beat the minimum, and provenance/minimality are reported coherently.
func TestBuiltinPlansOnRunningExample(t *testing.T) {
	sk := circuit.Figure1b()
	a := arch.QX4()
	for _, name := range []string{NameExact, NameExactSubsets, NameDisjoint,
		NameOdd, NameTriangle, NameHeuristic, NameAStar, NameSabre} {
		s, err := New(name, Config{Engine: exact.EngineDP, Seed: 7, Lookahead: 0.5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plan, err := s.Solve(context.Background(), sk, a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exactFamily := name != NameHeuristic && name != NameAStar && name != NameSabre
		if exactFamily && plan.Cost != 4 {
			t.Errorf("%s: cost = %d, want 4", name, plan.Cost)
		}
		if plan.Cost < 4 {
			t.Errorf("%s: cost %d beats the minimum", name, plan.Cost)
		}
		if plan.Cost != 7*plan.Swaps+4*plan.Switches {
			t.Errorf("%s: cost %d != 7·%d + 4·%d", name, plan.Cost, plan.Swaps, plan.Switches)
		}
		if got, want := plan.Minimal, name == NameExact; got != want {
			t.Errorf("%s: Minimal = %v, want %v", name, got, want)
		}
		if exactFamily {
			if _, err := exact.ParseEngine(plan.Engine); err != nil {
				t.Errorf("%s: engine %q does not round-trip: %v", name, plan.Engine, err)
			}
		} else if plan.Engine != name {
			t.Errorf("%s: engine = %q, want method name", name, plan.Engine)
		}
		if len(plan.Initial) != sk.NumQubits {
			t.Errorf("%s: initial layout over %d qubits", name, len(plan.Initial))
		}
	}
}

func TestSabreRejectsInitialLayout(t *testing.T) {
	if _, err := New(NameSabre, Config{InitialLayout: []int{0, 1, 2, 3}}); err == nil {
		t.Error("sabre + InitialLayout should fail at construction")
	}
}

func TestExactSolverPortfolioPathCaches(t *testing.T) {
	sk := circuit.Figure1b()
	a := arch.QX4()
	cache := portfolio.NewCache(0)
	s, err := New(NameExact, Config{Portfolio: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Solve(context.Background(), sk, a)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first solve should miss the cache")
	}
	second, err := s.Solve(context.Background(), sk, a)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("second identical solve should hit the cache")
	}
	if first.Cost != 4 || second.Cost != first.Cost {
		t.Errorf("costs %d/%d, want 4/4", first.Cost, second.Cost)
	}
}

func TestSolversObserveCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range Methods() {
		if name == "test-custom" {
			continue
		}
		s, err := New(name, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.Solve(ctx, circuit.Figure1b(), arch.QX4()); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
}

func TestSATStatsSurfaceInPlan(t *testing.T) {
	s, err := New(NameExact, Config{Engine: exact.EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Solve(context.Background(), circuit.Figure1b(), arch.QX4())
	if err != nil {
		t.Fatal(err)
	}
	if plan.SATSolves == 0 {
		t.Error("SAT run should report solver invocations")
	}
	if plan.SATConflicts == 0 {
		t.Error("SAT run on the running example should report CDCL conflicts")
	}
}
