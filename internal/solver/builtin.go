package solver

import (
	"context"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/heuristic"
	"repro/internal/portfolio"
)

// Canonical names of the built-in methods, one per Table 1 column plus the
// A*/SABRE extension baselines. The qxmap Method enum indexes this order.
const (
	NameExact        = "exact"
	NameExactSubsets = "exact-subsets"
	NameDisjoint     = "disjoint"
	NameOdd          = "odd"
	NameTriangle     = "triangle"
	NameHeuristic    = "heuristic"
	NameAStar        = "astar"
	NameSabre        = "sabre"
)

func init() {
	// Exact family: §3 full formulation and the §4 restrictions. Only the
	// unrestricted full-architecture formulation guarantees minimality.
	// exact-subsets is deliberately registered minimal=false even though
	// each subset instance proves ITS optimum: §4.1 restricts the mapping
	// to connected n-qubit subsets, and a circuit may route cheaper through
	// more physical qubits than it has logical ones, so the fan-out's best
	// proven cost is an upper bound on the unrestricted minimum. This is
	// why every row of the committed exact-subsets snapshot (BENCH_7.json —
	// 3_17_13 included, whose cost 22 matches the plain-exact proof in
	// BENCH_6.json) reports "minimal": false: the flag tracks the
	// formulation's guarantee, not the observed agreement with Table 1.
	Register(NameExact, exactFactory(exact.StrategyAll, false, true))
	Register(NameExactSubsets, exactFactory(exact.StrategyAll, true, false))
	Register(NameDisjoint, exactFactory(exact.StrategyDisjoint, true, false))
	Register(NameOdd, exactFactory(exact.StrategyOdd, true, false))
	Register(NameTriangle, exactFactory(exact.StrategyTriangle, true, false))

	// Heuristic family: the paper's IBM baseline plus the A*/SABRE
	// extension baselines.
	Register(NameHeuristic, func(cfg Config) (Solver, error) {
		return stochasticSolver{cfg: cfg}, nil
	})
	Register(NameAStar, func(cfg Config) (Solver, error) {
		return astarSolver{cfg: cfg}, nil
	})
	Register(NameSabre, func(cfg Config) (Solver, error) {
		if cfg.InitialLayout != nil {
			return nil, fmt.Errorf("solver: %s does not support a pinned initial layout (it chooses its own)", NameSabre)
		}
		return sabreSolver{cfg: cfg}, nil
	})
}

// exactFactory builds the factory for one exact-family method. minimal
// marks methods whose formulation admits the true optimum (the
// unrestricted §3 formulation only); whether a given run actually proved
// its optimum is reported by the engine in exact.Result.Minimal, and the
// Plan claims minimality only when both hold.
func exactFactory(strategy exact.Strategy, subsets, minimal bool) Factory {
	return func(cfg Config) (Solver, error) {
		return exactSolver{cfg: cfg, strategy: strategy, subsets: subsets, minimal: minimal}, nil
	}
}

// exactSolver runs one exact-family method, either directly on the
// configured engine or through the portfolio layer.
type exactSolver struct {
	cfg      Config
	strategy exact.Strategy
	subsets  bool
	minimal  bool
}

func (s exactSolver) Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch) (*Plan, error) {
	start := time.Now()
	eo := exact.Options{
		Engine:         s.cfg.Engine,
		Strategy:       s.strategy,
		UseSubsets:     s.subsets,
		SAT:            s.cfg.SAT,
		InitialMapping: s.cfg.InitialLayout,
		Parallel:       s.cfg.Parallel,
	}
	if s.cfg.Ladder {
		// Rung 2 of the degradation ladder: deadline expiry after a model
		// was found hands back the incumbent instead of erroring.
		eo.SAT.Anytime = true
	}
	var er *exact.Result
	var cacheHit bool
	var cacheTier string
	var degradation string
	if s.cfg.Portfolio {
		po := portfolio.Options{Exact: eo, Seed: s.cfg.Seed, Cache: s.cfg.Cache, Store: s.cfg.Store, Ladder: s.cfg.Ladder}
		switch {
		case s.cfg.UpperBound > 0:
			po.UpperBound = s.cfg.UpperBound
			po.HeuristicRuns = -1 // the caller's bound replaces the bounding phase
		case s.cfg.UpperBound < 0:
			po.HeuristicRuns = -1 // caller already bounded and found F = 0
		}
		pr, err := portfolio.Solve(ctx, sk, a, po)
		if err != nil {
			return nil, err
		}
		if pr.Heuristic != nil {
			// The ladder bottomed out in its heuristic rung: no exact
			// result exists, the plan comes from the heuristic mapper.
			p := heuristicPlan(pr.Heuristic, NameHeuristic, start)
			p.Degradation = pr.Degradation
			return p, nil
		}
		er = pr.Result
		cacheHit = pr.CacheHit
		cacheTier = pr.Tier
		degradation = pr.Degradation
	} else {
		// Direct engine path. An attached persistent store turns it into the
		// same two-tier lookup the portfolio uses — memory, then disk with
		// LRU promotion, then a real solve written through — gated on the
		// store so the historical no-store behavior (no caching outside
		// Portfolio mode) is untouched. Conflict-budgeted runs may be
		// non-minimal best-effort answers and bypass the cache entirely.
		tiers := portfolio.Tiered{Mem: s.cfg.Cache, Disk: s.cfg.Store}
		cacheable := s.cfg.Store != nil && s.cfg.SAT.MaxConflicts == 0
		var key string
		if cacheable {
			key = portfolio.Fingerprint(sk, a, eo)
			if cached, tier, ok := tiers.Lookup(key); ok {
				er, cacheHit, cacheTier = cached, true, tier
			}
		}
		if er == nil {
			var err error
			if er, err = exact.Solve(ctx, sk, a, eo); err != nil {
				if s.cfg.Ladder && portfolio.Exhausted(err) {
					// Last rung: the descent exhausted without even an
					// incumbent — build a heuristic plan rather than fail.
					if h, herr := portfolio.HeuristicFallback(ctx, sk, a, s.cfg.Seed, s.cfg.InitialLayout); herr == nil {
						p := heuristicPlan(h, NameHeuristic, start)
						p.Degradation = portfolio.DegradationHeuristic
						return p, nil
					}
				}
				return nil, err
			}
			if er.Degraded {
				degradation = portfolio.DegradationAnytime
			}
			if cacheable && !er.Degraded {
				// An anytime incumbent is valid but non-minimal: never let
				// it be read back later as the instance's optimum.
				tiers.Store(key, er)
			}
		}
	}
	ops, err := er.Ops(sk)
	if err != nil {
		return nil, err
	}
	return &Plan{
		Ops:                   ops,
		Initial:               er.InitialMapping(),
		Cost:                  er.Cost,
		Swaps:                 er.Solution.SwapCount(),
		Switches:              er.Solution.SwitchCount(),
		PermPoints:            er.PermPoints,
		Minimal:               s.minimal && er.Minimal,
		Engine:                er.Engine,
		CacheHit:              cacheHit,
		CacheTier:             cacheTier,
		SATSolves:             er.Solves,
		SATEncodes:            er.Encodes,
		SATConflicts:          er.Conflicts,
		BoundProbes:           er.BoundProbes,
		BoundJumps:            er.BoundJumps,
		LowerBound:            er.LowerBound,
		SubsetsPruned:         er.SubsetsPruned,
		CoreFamilyRefutations: er.CoreFamilyRefutations,
		OrbitHits:             er.OrbitHits,
		SATThreads:            er.SATThreads,
		SharedClauses:         er.SharedClauses,
		Degradation:           degradation,
		BoundGap:              er.BoundGap,
		Runtime:               time.Since(start),
	}, nil
}

// stochasticSolver wraps the Qiskit-style stochastic baseline ("IBM [12]"
// in Table 1), keeping the best of HeuristicRuns seeded runs.
type stochasticSolver struct{ cfg Config }

func (s stochasticSolver) Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch) (*Plan, error) {
	start := time.Now()
	runs := s.cfg.HeuristicRuns
	if runs <= 0 {
		runs = 5
	}
	h, err := heuristic.MapBest(ctx, sk, a, runs,
		heuristic.Options{Seed: s.cfg.Seed, Initial: s.cfg.InitialLayout})
	if err != nil {
		return nil, err
	}
	return heuristicPlan(h, NameHeuristic, start), nil
}

// astarSolver wraps the deterministic per-layer A* baseline.
type astarSolver struct{ cfg Config }

func (s astarSolver) Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch) (*Plan, error) {
	start := time.Now()
	h, err := heuristic.MapAStar(ctx, sk, a,
		heuristic.AStarOptions{Lookahead: s.cfg.Lookahead, Initial: s.cfg.InitialLayout})
	if err != nil {
		return nil, err
	}
	return heuristicPlan(h, NameAStar, start), nil
}

// sabreSolver wraps the SABRE-style forward/backward refinement passes.
type sabreSolver struct{ cfg Config }

func (s sabreSolver) Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch) (*Plan, error) {
	start := time.Now()
	h, err := heuristic.MapSabre(ctx, sk, a,
		heuristic.SabreOptions{Lookahead: s.cfg.Lookahead})
	if err != nil {
		return nil, err
	}
	return heuristicPlan(h, NameSabre, start), nil
}

// heuristicPlan converts a heuristic result into the uniform Plan shape.
func heuristicPlan(h *heuristic.Result, engine string, start time.Time) *Plan {
	return &Plan{
		Ops:      h.Ops,
		Initial:  h.InitialMapping,
		Cost:     h.Cost,
		Swaps:    h.Swaps,
		Switches: h.Switches,
		Engine:   engine,
		Runtime:  time.Since(start),
	}
}
