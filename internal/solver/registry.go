package solver

import (
	"fmt"
	"strings"
	"sync"
)

// Factory builds a Solver from a Config. A factory validates the Config
// subset its method honors and returns an error for combinations the
// method cannot satisfy.
type Factory func(cfg Config) (Solver, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
	order     []string // registration order: the canonical method listing
}{factories: map[string]Factory{}}

// Register binds a method name to a factory. Registering an empty name, a
// nil factory, or a duplicate name panics: registrations happen at package
// initialization, where a bad entry is a programming error.
func Register(name string, f Factory) {
	registry.Lock()
	defer registry.Unlock()
	if name == "" || f == nil {
		panic("solver: Register requires a non-empty name and a non-nil factory")
	}
	if _, dup := registry.factories[name]; dup {
		panic("solver: duplicate registration of method " + name)
	}
	registry.factories[name] = f
	registry.order = append(registry.order, name)
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.factories[name]
	return f, ok
}

// New instantiates the named method's solver with the given configuration.
// An unknown name fails with an error listing every registered method.
func New(name string, cfg Config) (Solver, error) {
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("solver: unknown method %q (valid: %s)", name, strings.Join(Methods(), ", "))
	}
	return f(cfg)
}

// Methods returns the registered method names in registration order — a
// deterministic, canonical listing (the eight built-ins first, in the
// order of the paper's Table 1 columns).
func Methods() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}
