// Package solver is the pluggable solving abstraction shared by every
// layer of the repository: the public qxmap API, the Table-1 experiment
// harness (internal/bench) and the command-line tools all resolve mapping
// methods through this package's name-keyed registry instead of private
// switches.
//
// A Solver turns a CNOT skeleton plus an architecture into a Plan — a
// uniform description of the solution (mapped op stream, initial layout,
// cost breakdown, minimality, engine provenance) that replaces the
// previously divergent exact.Result / heuristic.Result handling. The eight
// built-in methods of the paper's evaluation (exact, exact-subsets,
// disjoint, odd, triangle, heuristic, astar, sabre) are registered at
// package initialization; new backends (a remote solver, a sharded cache,
// another heuristic) become one Register call instead of another switch
// arm in every caller.
//
// Construction is two-phase: Register binds a name to a Factory, and New
// instantiates a Solver from a name plus a Config. The Config carries every
// tuning knob a built-in method understands (engine choice, SAT options,
// heuristic seeds, portfolio routing); factories validate the subset they
// honor and reject combinations they cannot (e.g. sabre with a pinned
// initial layout).
//
// All solvers are safe for concurrent use by multiple goroutines: a Solver
// value holds only immutable configuration, so one instance may serve a
// whole worker pool (qxmap.MapBatch relies on this).
package solver

import (
	"context"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/exact"
	"repro/internal/perm"
	"repro/internal/portfolio"
)

// Solver maps a CNOT skeleton onto an architecture. Implementations must
// observe context cancellation (returning an error that wraps ctx.Err())
// and must be safe for concurrent use.
type Solver interface {
	Solve(ctx context.Context, sk *circuit.Skeleton, a *arch.Arch) (*Plan, error)
}

// Config carries the cross-method tuning knobs. Each factory reads the
// fields it understands and ignores the rest, mirroring how qxmap.Options
// applies only to the selected method.
type Config struct {
	// Engine selects the exact backend (default exact.EngineSAT); ignored
	// by the heuristic family and by Portfolio mode (which races both).
	Engine exact.Engine
	// SAT carries SAT-engine tuning (start bound, descent mode, conflict
	// budget); exact family only.
	SAT exact.SATOptions
	// HeuristicRuns is the number of stochastic-heuristic seeds, keeping
	// the best (default 5, as in the paper's evaluation).
	HeuristicRuns int
	// Seed seeds the stochastic heuristic's random source.
	Seed int64
	// Lookahead weighs the next layer into the A*/SABRE search heuristic.
	Lookahead float64
	// InitialLayout, when non-nil, pins the logical→physical layout before
	// the first gate. Rejected by methods that renumber physical qubits
	// internally (subset-based methods) or choose their own layout (sabre).
	InitialLayout []int
	// Parallel fans the §4.1 subset instances out across goroutines.
	Parallel bool
	// Portfolio routes exact methods through internal/portfolio: the
	// stochastic heuristic bounds the SAT descent, the SAT and DP engines
	// race, and results are memoized in Cache. Heuristic methods ignore it.
	Portfolio bool
	// Cache is the portfolio memo consulted when Portfolio is set; nil
	// disables memoization.
	Cache *portfolio.Cache
	// Store is the persistent result tier under the Cache. When set, the
	// exact family consults it even outside Portfolio mode — memory hit →
	// disk hit (promoted into the Cache) → solve → write-through — so
	// identical instances are served across process restarts. Results with
	// a conflict budget (possibly non-minimal) are never stored.
	Store portfolio.ResultStore
	// UpperBound, when positive, is an externally known bound on F handed
	// to the portfolio layer in place of its own bounding phase; a
	// negative value records that the caller already bounded the instance
	// and found F = 0 (no seedable bound, but the bounding phase is still
	// skipped). Zero leaves the portfolio's own bounding enabled.
	// Portfolio mode only.
	UpperBound int
	// Ladder enables graceful degradation for the exact family: the SAT
	// descent runs in anytime mode (a deadline that expires after a model
	// was found returns that incumbent as a valid non-minimal plan,
	// Plan.Degradation "anytime" with Plan.BoundGap bracketing the
	// optimum), and when even that yields nothing on a deadline or
	// conflict-budget exhaustion, a heuristic fallback plan is built
	// (Plan.Degradation "heuristic"). With generous deadlines the ladder
	// never engages and plans are identical to a run without it. Degraded
	// plans are never cached. Heuristic methods ignore it.
	Ladder bool
}

// Plan is the uniform outcome of a Solve call, shared by every method: the
// materialization layer (qxmap) consumes Ops+Initial, the reporting layers
// consume the cost breakdown and provenance.
type Plan struct {
	// Ops is the mapped operation stream over physical qubits: SWAP ops
	// interleaved with the skeleton's CNOTs (with direction-switch flags).
	Ops []circuit.MappedOp
	// Initial is the logical→physical layout before the first gate.
	Initial perm.Mapping
	// Cost is F = 7·Swaps + 4·Switches; Swaps and Switches break it down.
	Cost     int
	Swaps    int
	Switches int
	// PermPoints is |G'|, the number of in-circuit permutation points the
	// method considered (exact family only; 0 otherwise).
	PermPoints int
	// Minimal reports whether Cost is guaranteed minimal: the method's
	// formulation admits the true optimum AND the run itself proved it
	// (a conflict-budget-truncated descent voids the proof; one that
	// reached UNSAT within its budget keeps it).
	Minimal bool
	// Engine names the backend that produced the plan: "sat" or "dp" for
	// the exact family (round-tripping with exact.ParseEngine), or the
	// method's own registry name for the heuristic family.
	Engine string
	// CacheHit reports that the plan was served from the portfolio cache;
	// CacheTier names the tier that served it (portfolio.TierMemory or
	// portfolio.TierDisk; "" when the plan was solved).
	CacheHit  bool
	CacheTier string
	// SATSolves, SATEncodes and SATConflicts count CDCL invocations,
	// CNF encodings and conflicts (SAT engine only; 0 otherwise). The
	// incremental descent encodes once per instance, so SATEncodes is 1
	// for a plain exact solve and one per solved subset under §4.1.
	SATSolves    int
	SATEncodes   int
	SATConflicts int64
	// BoundProbes and BoundJumps instrument the SAT descent: probes are
	// solver calls that tested a cost bound via guard assumptions, jumps
	// are UNSAT probes whose minimized assumption core refuted a looser
	// bound than the tightest assumed, skipping several descent steps.
	BoundProbes int
	BoundJumps  int
	// LowerBound is the admissible lower bound on F that seeded the SAT
	// descent (0 when disabled, trivial, or not a SAT run).
	LowerBound int
	// SubsetsPruned, CoreFamilyRefutations and OrbitHits instrument the
	// §4.1 subset fan-out: subsets retired by their admissible lower bound
	// without any probe of their own, UNSAT probes whose assumption core
	// refuted the whole pending subset family at once, and subsets whose
	// proof was transferred from their coupling-graph automorphism orbit's
	// representative. All 0 outside the subset fan-out.
	SubsetsPruned         int
	CoreFamilyRefutations int
	OrbitHits             int
	// SATThreads is the clause-sharing portfolio width the SAT engine ran
	// with (1 for the plain solver; 0 when not a SAT run), and
	// SharedClauses the learnt clauses imported across its workers.
	SATThreads    int
	SharedClauses int64
	// Degradation names the ladder rung that produced the plan when
	// Config.Ladder degraded the solve: portfolio.DegradationAnytime for
	// a deadline-truncated descent's incumbent,
	// portfolio.DegradationHeuristic for the heuristic fallback, "" for a
	// full solve. BoundGap brackets an anytime plan's distance from the
	// optimum (the optimum lies in [Cost−BoundGap, Cost]); 0 otherwise.
	Degradation string
	BoundGap    int
	// Runtime is the wall-clock solving time.
	Runtime time.Duration
}
