package arch

import (
	"testing"

	"repro/internal/perm"
)

func TestQX4MatchesPaperFigure2(t *testing.T) {
	a := QX4()
	if a.NumQubits() != 5 {
		t.Fatalf("m = %d", a.NumQubits())
	}
	// Paper Example 2 coupling map, 0-based.
	wantAllowed := []Pair{{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {4, 2}}
	for _, p := range wantAllowed {
		if !a.Allows(p.Control, p.Target) {
			t.Errorf("QX4 should allow CNOT(%d→%d)", p.Control, p.Target)
		}
		if a.Allows(p.Target, p.Control) {
			t.Errorf("QX4 should not allow reversed CNOT(%d→%d)", p.Target, p.Control)
		}
	}
	if a.Allows(0, 3) || a.Allows(1, 4) {
		t.Error("uncoupled qubits must not be allowed")
	}
	if len(a.Pairs()) != 6 {
		t.Errorf("got %d pairs, want 6", len(a.Pairs()))
	}
}

func TestAllowsEitherDirection(t *testing.T) {
	a := QX4()
	if !a.AllowsEitherDirection(0, 1) || !a.AllowsEitherDirection(1, 0) {
		t.Error("coupled pair should allow either direction")
	}
	if a.AllowsEitherDirection(0, 4) {
		t.Error("uncoupled pair should not allow either direction")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name  string
		m     int
		pairs []Pair
	}{
		{"zero qubits", 0, nil},
		{"out of range", 2, []Pair{{0, 5}}},
		{"self-loop", 2, []Pair{{1, 1}}},
		{"duplicate", 2, []Pair{{0, 1}, {0, 1}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.name, tc.m, tc.pairs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestUndirectedEdgesDeduped(t *testing.T) {
	// Both directions present should produce a single undirected edge.
	a := MustNew("both", 2, []Pair{{0, 1}, {1, 0}})
	if len(a.UndirectedEdges()) != 1 {
		t.Errorf("edges = %v", a.UndirectedEdges())
	}
	if a.UndirectedEdges()[0] != (perm.Edge{A: 0, B: 1}) {
		t.Errorf("edge = %v", a.UndirectedEdges()[0])
	}
}

func TestDistances(t *testing.T) {
	a := QX4()
	cases := []struct{ i, j, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 1}, {0, 3, 2}, {0, 4, 2}, {3, 4, 1}, {1, 4, 2},
	}
	for _, tc := range cases {
		if got := a.Distance(tc.i, tc.j); got != tc.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", tc.i, tc.j, got, tc.want)
		}
	}
	if !a.Connected() {
		t.Error("QX4 should be connected")
	}
	disc := MustNew("disc", 4, []Pair{{0, 1}, {2, 3}})
	if disc.Connected() {
		t.Error("disconnected arch reported connected")
	}
	if disc.Distance(0, 2) != -1 {
		t.Error("cross-component distance should be -1")
	}
}

func TestDegree(t *testing.T) {
	a := QX4()
	// Qubit 2 (paper p3) is the hub with degree 4.
	if got := a.Degree(2); got != 4 {
		t.Errorf("Degree(2) = %d, want 4", got)
	}
	if got := a.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
}

func TestCatalog(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    int
	}{
		{"ibmqx2", 5}, {"ibmqx4", 5}, {"ibmqx5", 16},
		{"linear4", 4}, {"ring5", 5}, {"grid2x3", 6},
	} {
		a, err := ByName(tc.name)
		if err != nil {
			t.Errorf("ByName(%q): %v", tc.name, err)
			continue
		}
		if a.NumQubits() != tc.m {
			t.Errorf("%s: m = %d, want %d", tc.name, a.NumQubits(), tc.m)
		}
		if !a.Connected() {
			t.Errorf("%s should be connected", tc.name)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown name should error")
	}
	if _, err := ByName("qx4"); err != nil {
		t.Error("short alias qx4 should work")
	}
}

func TestQX5Degrees(t *testing.T) {
	a := QX5()
	if len(a.Pairs()) != 22 {
		t.Errorf("QX5 pairs = %d, want 22", len(a.Pairs()))
	}
	// Ladder topology: every qubit has degree 2 or 3.
	for q := 0; q < 16; q++ {
		if d := a.Degree(q); d < 2 || d > 3 {
			t.Errorf("QX5 qubit %d degree %d", q, d)
		}
	}
}

func TestGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Grid(0,3) should panic")
		}
	}()
	Grid(0, 3)
}

func TestRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Ring(2) should panic")
		}
	}()
	Ring(2)
}

func TestMelbourneAndTokyo(t *testing.T) {
	m := Melbourne()
	if m.NumQubits() != 14 || !m.Connected() {
		t.Errorf("melbourne: %d qubits connected=%v", m.NumQubits(), m.Connected())
	}
	tk := Tokyo()
	if tk.NumQubits() != 20 || !tk.Connected() {
		t.Errorf("tokyo: %d qubits connected=%v", tk.NumQubits(), tk.Connected())
	}
	// Tokyo is bidirectional: every coupling exists both ways.
	for _, p := range tk.Pairs() {
		if !tk.Allows(p.Target, p.Control) {
			t.Fatalf("tokyo pair %+v lacks reverse", p)
		}
	}
	// Melbourne is antisymmetric like the QX devices.
	for _, p := range m.Pairs() {
		if m.Allows(p.Target, p.Control) {
			t.Fatalf("melbourne pair %+v has both directions", p)
		}
	}
	for _, name := range []string{"melbourne", "tokyo"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}
