package arch

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/perm"
)

// CostModel assigns integer weights to the two primitives the mapper
// inserts: a SWAP on an undirected coupling edge and a direction switch
// (4 H gates) of a CNOT executed on a directed coupling pair. The paper's
// model (Definition 5) is the uniform special case SwapCost = 7,
// HCost = 4; a calibration-aware model overrides individual edges so the
// same exact machinery minimizes a noise-weighted objective instead of
// plain gate counts.
//
// Weights are unitless non-negative integers. A model is built with
// NewCostModel (or PaperCostModel) and optionally per-edge overrides, then
// attached to an architecture with Arch.WithCostModel; all layers read it
// back via Arch.Cost. A nil *CostModel behaves as the paper model, so
// callers never need to nil-check.
type CostModel struct {
	name     string
	swapUnit int
	hUnit    int
	swapW    map[perm.Edge]int // overrides; key normalized
	hW       map[Pair]int      // overrides; key = directed execution pair
}

// PaperSwapUnit and PaperHUnit are the paper's Definition 5 constants:
// a SWAP decomposes into 7 elementary gates, a direction switch into 4 H
// gates.
const (
	PaperSwapUnit = 7
	PaperHUnit    = 4
)

// PaperCostModel returns the paper's uniform 7/4 cost model.
func PaperCostModel() *CostModel {
	return &CostModel{name: "paper", swapUnit: PaperSwapUnit, hUnit: PaperHUnit}
}

// NewCostModel builds a uniform model with the given SWAP and H units.
// Per-edge overrides are added with SetSwapWeight / SetHWeight before the
// model is attached to an architecture.
func NewCostModel(name string, swapUnit, hUnit int) (*CostModel, error) {
	if swapUnit < 1 {
		return nil, fmt.Errorf("arch: swap unit %d must be >= 1", swapUnit)
	}
	if hUnit < 0 {
		return nil, fmt.Errorf("arch: h unit %d must be >= 0", hUnit)
	}
	if name == "" {
		name = fmt.Sprintf("uniform(%d,%d)", swapUnit, hUnit)
	}
	return &CostModel{name: name, swapUnit: swapUnit, hUnit: hUnit}, nil
}

// Name returns the model's display name ("paper" for the default).
func (cm *CostModel) Name() string {
	if cm == nil {
		return "paper"
	}
	return cm.name
}

// SwapUnit returns the default SWAP weight (7 in the paper model).
func (cm *CostModel) SwapUnit() int {
	if cm == nil {
		return PaperSwapUnit
	}
	return cm.swapUnit
}

// HUnit returns the default direction-switch weight (4 in the paper model).
func (cm *CostModel) HUnit() int {
	if cm == nil {
		return PaperHUnit
	}
	return cm.hUnit
}

// SetSwapWeight overrides the SWAP weight of the undirected edge {a, b}.
func (cm *CostModel) SetSwapWeight(a, b, w int) error {
	if a == b || a < 0 || b < 0 {
		return fmt.Errorf("arch: bad swap-weight edge {%d,%d}", a, b)
	}
	if w < 1 {
		return fmt.Errorf("arch: swap weight %d on {%d,%d} must be >= 1", w, a, b)
	}
	if cm.swapW == nil {
		cm.swapW = make(map[perm.Edge]int)
	}
	cm.swapW[perm.Edge{A: a, B: b}.Normalize()] = w
	return nil
}

// SetHWeight overrides the direction-switch weight charged when a CNOT
// executes reversed on the directed coupling pair (control, target).
func (cm *CostModel) SetHWeight(control, target, w int) error {
	if control == target || control < 0 || target < 0 {
		return fmt.Errorf("arch: bad h-weight pair (%d,%d)", control, target)
	}
	if w < 0 {
		return fmt.Errorf("arch: h weight %d on (%d,%d) must be >= 0", w, control, target)
	}
	if cm.hW == nil {
		cm.hW = make(map[Pair]int)
	}
	cm.hW[Pair{Control: control, Target: target}] = w
	return nil
}

// SwapWeight returns the SWAP weight of the undirected edge {a, b}.
func (cm *CostModel) SwapWeight(a, b int) int {
	if cm == nil || cm.swapW == nil {
		return cm.SwapUnit()
	}
	if w, ok := cm.swapW[perm.Edge{A: a, B: b}.Normalize()]; ok {
		return w
	}
	return cm.swapUnit
}

// EdgeSwapWeight is SwapWeight on a normalized edge value.
func (cm *CostModel) EdgeSwapWeight(e perm.Edge) int { return cm.SwapWeight(e.A, e.B) }

// HWeight returns the weight of executing a CNOT direction-switched on the
// directed coupling pair (control, target) — i.e. the physical CNOT runs
// control→target with H gates on both ends.
func (cm *CostModel) HWeight(control, target int) int {
	if cm == nil || cm.hW == nil {
		return cm.HUnit()
	}
	if w, ok := cm.hW[Pair{Control: control, Target: target}]; ok {
		return w
	}
	return cm.hUnit
}

// UniformSwap reports whether every edge shares the default SWAP unit, so
// min-swap-count tables scaled by SwapUnit are exact.
func (cm *CostModel) UniformSwap() bool {
	if cm == nil {
		return true
	}
	for _, w := range cm.swapW {
		if w != cm.swapUnit {
			return false
		}
	}
	return true
}

// UniformH reports whether every directed pair shares the default H unit.
func (cm *CostModel) UniformH() bool {
	if cm == nil {
		return true
	}
	for _, w := range cm.hW {
		if w != cm.hUnit {
			return false
		}
	}
	return true
}

// Uniform reports whether the model carries no effective per-edge override.
func (cm *CostModel) Uniform() bool { return cm.UniformSwap() && cm.UniformH() }

// IsPaper reports whether the model is semantically the paper's 7/4 model.
func (cm *CostModel) IsPaper() bool {
	return cm.SwapUnit() == PaperSwapUnit && cm.HUnit() == PaperHUnit && cm.Uniform()
}

// MinSwapWeight returns the smallest SWAP weight over the given edges
// (SwapUnit when the list is empty). Lower bounds multiply swap counts by
// this to stay admissible under per-edge weights.
func (cm *CostModel) MinSwapWeight(edges []perm.Edge) int {
	if len(edges) == 0 {
		return cm.SwapUnit()
	}
	min := cm.EdgeSwapWeight(edges[0])
	for _, e := range edges[1:] {
		if w := cm.EdgeSwapWeight(e); w < min {
			min = w
		}
	}
	return min
}

// MinHWeight returns the smallest direction-switch weight over the given
// directed pairs (HUnit when the list is empty).
func (cm *CostModel) MinHWeight(pairs []Pair) int {
	if len(pairs) == 0 {
		return cm.HUnit()
	}
	min := cm.HWeight(pairs[0].Control, pairs[0].Target)
	for _, p := range pairs[1:] {
		if w := cm.HWeight(p.Control, p.Target); w < min {
			min = w
		}
	}
	return min
}

// MaxHWeight returns the largest direction-switch weight over the given
// directed pairs (HUnit when the list is empty).
func (cm *CostModel) MaxHWeight(pairs []Pair) int {
	max := cm.HUnit()
	for _, p := range pairs {
		if w := cm.HWeight(p.Control, p.Target); w > max {
			max = w
		}
	}
	return max
}

// Clone returns an independent copy of the model.
func (cm *CostModel) Clone() *CostModel {
	if cm == nil {
		return PaperCostModel()
	}
	c := &CostModel{name: cm.name, swapUnit: cm.swapUnit, hUnit: cm.hUnit}
	if len(cm.swapW) > 0 {
		c.swapW = make(map[perm.Edge]int, len(cm.swapW))
		for e, w := range cm.swapW {
			c.swapW[e] = w
		}
	}
	if len(cm.hW) > 0 {
		c.hW = make(map[Pair]int, len(cm.hW))
		for p, w := range cm.hW {
			c.hW[p] = w
		}
	}
	return c
}

// SwapOverrides returns the per-edge SWAP overrides in deterministic order.
func (cm *CostModel) SwapOverrides() ([]perm.Edge, []int) {
	if cm == nil || len(cm.swapW) == 0 {
		return nil, nil
	}
	edges := make([]perm.Edge, 0, len(cm.swapW))
	for e := range cm.swapW {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
	ws := make([]int, len(edges))
	for i, e := range edges {
		ws[i] = cm.swapW[e]
	}
	return edges, ws
}

// HOverrides returns the per-pair H overrides in deterministic order.
func (cm *CostModel) HOverrides() ([]Pair, []int) {
	if cm == nil || len(cm.hW) == 0 {
		return nil, nil
	}
	pairs := make([]Pair, 0, len(cm.hW))
	for p := range cm.hW {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Control != pairs[j].Control {
			return pairs[i].Control < pairs[j].Control
		}
		return pairs[i].Target < pairs[j].Target
	})
	ws := make([]int, len(pairs))
	for i, p := range pairs {
		ws[i] = cm.hW[p]
	}
	return pairs, ws
}

// AppendFingerprint appends a canonical byte encoding of the model's
// semantics (units plus sorted effective overrides; the display name is
// cosmetic and excluded). Two models with identical weights on every edge
// fingerprint identically, so cache keys never alias distinct objectives.
func (cm *CostModel) AppendFingerprint(b []byte) []byte {
	var buf [8]byte
	put := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		b = append(b, buf[:]...)
	}
	put(cm.SwapUnit())
	put(cm.HUnit())
	edges, ws := cm.SwapOverrides()
	for i, e := range edges {
		if ws[i] == cm.SwapUnit() {
			continue // no-op override: same semantics as absent
		}
		put(e.A)
		put(e.B)
		put(ws[i])
	}
	b = append(b, 0xfe)
	pairs, hws := cm.HOverrides()
	for i, p := range pairs {
		if hws[i] == cm.HUnit() {
			continue
		}
		put(p.Control)
		put(p.Target)
		put(hws[i])
	}
	b = append(b, 0xff)
	return b
}

// Summary returns a short human-readable description, e.g.
// "paper (swap=7, h=4)" or "qx4-noise (swap=7, h=4, 3 edge overrides)".
func (cm *CostModel) Summary() string {
	n := 0
	if cm != nil {
		n = len(cm.swapW) + len(cm.hW)
	}
	if n == 0 {
		return fmt.Sprintf("%s (swap=%d, h=%d)", cm.Name(), cm.SwapUnit(), cm.HUnit())
	}
	return fmt.Sprintf("%s (swap=%d, h=%d, %d edge overrides)", cm.Name(), cm.SwapUnit(), cm.HUnit(), n)
}

// ParseCostModel parses a -cost-model flag spec: "paper" (the default
// 7/4 model) or "swap=<n>,h=<n>" for a uniform rescaling.
func ParseCostModel(spec string) (*CostModel, error) {
	switch spec {
	case "", "paper":
		return PaperCostModel(), nil
	}
	swap, h := PaperSwapUnit, PaperHUnit
	seen := false
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(part, "=")
		v, err := strconv.Atoi(val)
		if !ok || err != nil {
			return nil, fmt.Errorf("arch: bad cost-model spec %q (want \"paper\" or \"swap=<n>,h=<n>\")", spec)
		}
		switch key {
		case "swap":
			swap, seen = v, true
		case "h":
			h, seen = v, true
		default:
			return nil, fmt.Errorf("arch: bad cost-model spec %q (want \"paper\" or \"swap=<n>,h=<n>\")", spec)
		}
	}
	if !seen {
		return nil, fmt.Errorf("arch: bad cost-model spec %q (want \"paper\" or \"swap=<n>,h=<n>\")", spec)
	}
	return NewCostModel(spec, swap, h)
}

// calibrationFile is the JSON schema of a device calibration file:
//
//	{
//	  "name": "qx4-noise",
//	  "default": {"swap": 7, "h": 4},
//	  "edges": [
//	    {"a": 0, "b": 1, "swap": 14, "h": 8},
//	    {"a": 1, "b": 2, "error": 0.02}
//	  ]
//	}
//
// Explicit "swap"/"h" set the weights of edge {a,b} directly ("h" applies
// to both directed orientations). An "error" field instead derives both
// from the two-qubit gate error rate e: the edge's unit multiplier is
// u = max(1, round(1000·(−ln(1−e)))), giving swap = default.swap·u and
// h = default.h·u — so an edge ten times noisier costs ten times more.
type calibrationFile struct {
	Name    string `json:"name"`
	Default *struct {
		Swap int `json:"swap"`
		H    int `json:"h"`
	} `json:"default"`
	Edges []struct {
		A     int      `json:"a"`
		B     int      `json:"b"`
		Swap  *int     `json:"swap"`
		H     *int     `json:"h"`
		Error *float64 `json:"error"`
	} `json:"edges"`
}

// ParseCalibration builds a cost model from calibration-file JSON bytes.
func ParseCalibration(data []byte) (*CostModel, error) {
	var cf calibrationFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("arch: calibration: %w", err)
	}
	swapUnit, hUnit := PaperSwapUnit, PaperHUnit
	if cf.Default != nil {
		swapUnit, hUnit = cf.Default.Swap, cf.Default.H
	}
	name := cf.Name
	if name == "" {
		name = "calibration"
	}
	cm, err := NewCostModel(name, swapUnit, hUnit)
	if err != nil {
		return nil, fmt.Errorf("arch: calibration: %w", err)
	}
	for i, e := range cf.Edges {
		swap, h := swapUnit, hUnit
		switch {
		case e.Swap != nil || e.H != nil:
			if e.Swap != nil {
				swap = *e.Swap
			}
			if e.H != nil {
				h = *e.H
			}
		case e.Error != nil:
			if *e.Error < 0 || *e.Error >= 1 {
				return nil, fmt.Errorf("arch: calibration: edge %d error rate %g out of [0,1)", i, *e.Error)
			}
			u := int(math.Round(1000 * -math.Log(1-*e.Error)))
			if u < 1 {
				u = 1
			}
			swap, h = swapUnit*u, hUnit*u
		default:
			return nil, fmt.Errorf("arch: calibration: edge %d {%d,%d} has neither weights nor an error rate", i, e.A, e.B)
		}
		if err := cm.SetSwapWeight(e.A, e.B, swap); err != nil {
			return nil, fmt.Errorf("arch: calibration: edge %d: %w", i, err)
		}
		if err := cm.SetHWeight(e.A, e.B, h); err != nil {
			return nil, fmt.Errorf("arch: calibration: edge %d: %w", i, err)
		}
		if err := cm.SetHWeight(e.B, e.A, h); err != nil {
			return nil, fmt.Errorf("arch: calibration: edge %d: %w", i, err)
		}
	}
	return cm, nil
}

// LoadCalibration reads a calibration file and builds its cost model.
func LoadCalibration(path string) (*CostModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("arch: calibration: %w", err)
	}
	cm, err := ParseCalibration(data)
	if err != nil {
		return nil, fmt.Errorf("arch: calibration %s: %w", path, err)
	}
	return cm, nil
}

// restrict reindexes the model onto a physical-qubit subset: old[i] is the
// original index of subset qubit i. Only overrides with both endpoints in
// the subset survive (others concern edges the restricted architecture
// does not have).
func (cm *CostModel) restrict(old []int) *CostModel {
	if cm == nil {
		return nil
	}
	inv := make(map[int]int, len(old))
	for i, o := range old {
		inv[o] = i
	}
	c := &CostModel{name: cm.name, swapUnit: cm.swapUnit, hUnit: cm.hUnit}
	for e, w := range cm.swapW {
		a, oka := inv[e.A]
		b, okb := inv[e.B]
		if oka && okb {
			if c.swapW == nil {
				c.swapW = make(map[perm.Edge]int)
			}
			c.swapW[perm.Edge{A: a, B: b}.Normalize()] = w
		}
	}
	for p, w := range cm.hW {
		ctl, okc := inv[p.Control]
		tgt, okt := inv[p.Target]
		if okc && okt {
			if c.hW == nil {
				c.hW = make(map[Pair]int)
			}
			c.hW[Pair{Control: ctl, Target: tgt}] = w
		}
	}
	return c
}
