package arch

import "sort"

// DefaultAutomorphismLimit bounds automorphism enumeration: once a group
// exceeds it, Automorphisms stops early and returns what it has. Any set of
// valid automorphisms yields sound (if coarser) orbits, so the cap trades
// orbit sharpness for bounded work on pathological graphs (e.g. an edgeless
// architecture, whose group is all of S_m).
const DefaultAutomorphismLimit = 1024

// Automorphisms enumerates permutations σ of the physical qubits that
// preserve the DIRECTED coupling map: (i,j) ∈ CM ⇔ (σ(i),σ(j)) ∈ CM.
// Directions matter — the H-gate cost of a CNOT depends on which way an
// edge points — so only direction-preserving symmetries may transfer
// mapping costs between subsets.
//
// The search is a VF2-style backtracking over vertex images, pruned by the
// (in-degree, out-degree) invariant and by adjacency consistency with all
// previously assigned vertices. The identity is always first; limit ≤ 0
// means DefaultAutomorphismLimit. Each returned σ is a slice with σ[i] the
// image of physical qubit i.
//
// When the architecture carries a non-uniform cost model, σ must also
// preserve every per-edge SWAP and H weight — otherwise transferring a
// proof across the "symmetry" would equate subsets with different weighted
// optima, which is unsound.
func (a *Arch) Automorphisms(limit int) [][]int {
	if limit <= 0 {
		limit = DefaultAutomorphismLimit
	}
	m := a.m
	cm := a.cost
	weighted := !cm.Uniform()
	indeg := make([]int, m)
	outdeg := make([]int, m)
	for _, p := range a.pairs {
		outdeg[p.Control]++
		indeg[p.Target]++
	}

	var out [][]int
	sigma := make([]int, m)
	used := make([]bool, m)
	var rec func(v int) bool // returns false once the limit is hit
	rec = func(v int) bool {
		if v == m {
			out = append(out, append([]int(nil), sigma...))
			return len(out) < limit
		}
		for w := 0; w < m; w++ {
			if used[w] || indeg[w] != indeg[v] || outdeg[w] != outdeg[v] {
				continue
			}
			ok := true
			for u := 0; u < v; u++ {
				if a.allowed[u][v] != a.allowed[sigma[u]][w] || a.allowed[v][u] != a.allowed[w][sigma[u]] {
					ok = false
					break
				}
				if weighted && a.AllowsEitherDirection(u, v) {
					if cm.SwapWeight(u, v) != cm.SwapWeight(sigma[u], w) ||
						cm.HWeight(u, v) != cm.HWeight(sigma[u], w) ||
						cm.HWeight(v, u) != cm.HWeight(w, sigma[u]) {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			sigma[v] = w
			used[w] = true
			more := rec(v + 1)
			used[w] = false
			if !more {
				return false
			}
		}
		return true
	}
	rec(0)
	return out
}

// SubsetOrbits buckets subsets (each a sorted slice of physical qubit
// indices, as returned by ConnectedSubsets) into orbits of the given
// automorphisms: two subsets land in one orbit when some composition of the
// automorphisms maps one onto the other. Since an automorphism preserves the
// directed coupling map, every subset in an orbit induces an isomorphic
// coupling graph and therefore has the same optimal mapping cost — solving
// one representative proves the whole orbit (paper §4.1 fan-out with
// symmetry-orbit proof transfer).
//
// The result groups subset INDICES; each group is ordered with the
// representative first (the member with the lexicographically smallest qubit
// set), and groups appear in first-member order for determinism. With only
// the identity automorphism every subset is its own singleton orbit.
func SubsetOrbits(subsets [][]int, autos [][]int) [][]int {
	canon := func(s []int) string {
		best := ""
		img := make([]int, len(s))
		for _, sigma := range autos {
			for i, q := range s {
				img[i] = sigma[q]
			}
			sort.Ints(img)
			key := subsetKey(img)
			if best == "" || key < best {
				best = key
			}
		}
		if best == "" {
			best = subsetKey(s) // no automorphisms supplied: identity orbit
		}
		return best
	}

	byKey := make(map[string]int) // canonical key → orbit index
	var orbits [][]int
	for i, s := range subsets {
		key := canon(s)
		oi, ok := byKey[key]
		if !ok {
			oi = len(orbits)
			byKey[key] = oi
			orbits = append(orbits, nil)
		}
		orbits[oi] = append(orbits[oi], i)
	}
	// Put the lexicographically smallest member first as the representative.
	for _, orbit := range orbits {
		rep := 0
		for j := 1; j < len(orbit); j++ {
			if subsetKey(subsets[orbit[j]]) < subsetKey(subsets[orbit[rep]]) {
				rep = j
			}
		}
		orbit[0], orbit[rep] = orbit[rep], orbit[0]
	}
	return orbits
}

// subsetKey builds a comparable key from a sorted qubit set.
func subsetKey(s []int) string {
	buf := make([]byte, 0, 2*len(s))
	for _, q := range s {
		buf = append(buf, byte(q>>8), byte(q))
	}
	return string(buf)
}
