// Package arch models IBM QX architectures: sets of physical qubits with a
// directed coupling map constraining which CNOT gates are natively
// executable (paper Definition 2 and Fig. 2), together with the structural
// queries the mapping algorithms need — undirected distances, connected
// physical-qubit subsets (paper §4.1) and coupling triangles (paper §4.2).
package arch

import (
	"fmt"
	"sort"

	"repro/internal/perm"
)

// Pair is a directed coupling-map entry: a CNOT with control Control and
// target Target is natively executable.
type Pair struct{ Control, Target int }

// Arch is a quantum-computer architecture: m physical qubits and a directed
// coupling map. Construct with New or one of the predefined IBM QX
// constructors; Arch values are immutable after construction.
type Arch struct {
	name       string
	m          int
	pairs      []Pair
	allowed    [][]bool // allowed[i][j]: CNOT control i, target j executable
	undirEdges []perm.Edge
	dist       [][]int    // undirected hop distances; -1 if disconnected
	cost       *CostModel // nil = the paper's 7/4 model
}

// New builds an architecture from a name, qubit count and directed coupling
// pairs. Duplicate pairs are rejected, as are self-loops and out-of-range
// qubits.
func New(name string, m int, pairs []Pair) (*Arch, error) {
	if m <= 0 {
		return nil, fmt.Errorf("arch: qubit count %d must be positive", m)
	}
	a := &Arch{name: name, m: m}
	a.allowed = make([][]bool, m)
	for i := range a.allowed {
		a.allowed[i] = make([]bool, m)
	}
	undirSeen := make(map[perm.Edge]bool)
	for _, p := range pairs {
		if p.Control < 0 || p.Control >= m || p.Target < 0 || p.Target >= m {
			return nil, fmt.Errorf("arch: pair %+v out of range [0,%d)", p, m)
		}
		if p.Control == p.Target {
			return nil, fmt.Errorf("arch: self-loop on qubit %d", p.Control)
		}
		if a.allowed[p.Control][p.Target] {
			return nil, fmt.Errorf("arch: duplicate pair %+v", p)
		}
		a.allowed[p.Control][p.Target] = true
		a.pairs = append(a.pairs, p)
		e := perm.Edge{A: p.Control, B: p.Target}.Normalize()
		if !undirSeen[e] {
			undirSeen[e] = true
			a.undirEdges = append(a.undirEdges, e)
		}
	}
	sort.Slice(a.undirEdges, func(i, j int) bool {
		if a.undirEdges[i].A != a.undirEdges[j].A {
			return a.undirEdges[i].A < a.undirEdges[j].A
		}
		return a.undirEdges[i].B < a.undirEdges[j].B
	})
	a.computeDistances()
	return a, nil
}

// MustNew is New panicking on error, for static architecture definitions.
func MustNew(name string, m int, pairs []Pair) *Arch {
	a, err := New(name, m, pairs)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Arch) computeDistances() {
	m := a.m
	adj := make([][]int, m)
	for _, e := range a.undirEdges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	a.dist = make([][]int, m)
	for src := 0; src < m; src++ {
		d := make([]int, m)
		for i := range d {
			d[i] = -1
		}
		d[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if d[w] == -1 {
					d[w] = d[v] + 1
					queue = append(queue, w)
				}
			}
		}
		a.dist[src] = d
	}
}

// Name returns the architecture's name (e.g. "ibmqx4").
func (a *Arch) Name() string { return a.name }

// Cost returns the architecture's cost model. Architectures built without
// one carry the paper's uniform 7/4 model (as a nil *CostModel, whose
// methods report the paper constants).
func (a *Arch) Cost() *CostModel { return a.cost }

// WithCostModel returns a copy of the architecture carrying the given cost
// model (cloned, so later mutation of cm cannot alias the attached model).
// Overrides naming qubits outside [0, m) are rejected. A nil model resets
// to the paper default.
func (a *Arch) WithCostModel(cm *CostModel) (*Arch, error) {
	c := *a
	if cm == nil {
		c.cost = nil
		return &c, nil
	}
	for e := range cm.swapW {
		if e.A >= a.m || e.B >= a.m {
			return nil, fmt.Errorf("arch: cost model swap override {%d,%d} out of range [0,%d)", e.A, e.B, a.m)
		}
	}
	for p := range cm.hW {
		if p.Control >= a.m || p.Target >= a.m {
			return nil, fmt.Errorf("arch: cost model h override (%d,%d) out of range [0,%d)", p.Control, p.Target, a.m)
		}
	}
	c.cost = cm.Clone()
	return &c, nil
}

// MustWithCostModel is WithCostModel panicking on error, for tests and
// static setups.
func (a *Arch) MustWithCostModel(cm *CostModel) *Arch {
	c, err := a.WithCostModel(cm)
	if err != nil {
		panic(err)
	}
	return c
}

// NumQubits returns the number of physical qubits m.
func (a *Arch) NumQubits() int { return a.m }

// Pairs returns the directed coupling-map entries. Callers must not modify
// the returned slice.
func (a *Arch) Pairs() []Pair { return a.pairs }

// Allows reports whether a CNOT with the given physical control and target
// is natively executable, i.e. (control, target) ∈ CM.
func (a *Arch) Allows(control, target int) bool {
	return a.allowed[control][target]
}

// AllowsEitherDirection reports whether two physical qubits are coupled in
// at least one direction, i.e. a CNOT between them is executable possibly
// after switching direction with 4 H gates.
func (a *Arch) AllowsEitherDirection(i, j int) bool {
	return a.allowed[i][j] || a.allowed[j][i]
}

// UndirectedEdges returns the undirected coupling edges (deduplicated,
// normalized, sorted). Callers must not modify the returned slice.
func (a *Arch) UndirectedEdges() []perm.Edge { return a.undirEdges }

// Distance returns the undirected hop distance between physical qubits i
// and j, or −1 if they are in different components.
func (a *Arch) Distance(i, j int) int { return a.dist[i][j] }

// Connected reports whether the whole undirected coupling graph is
// connected.
func (a *Arch) Connected() bool {
	for _, d := range a.dist[0] {
		if d < 0 {
			return false
		}
	}
	return true
}

// Degree returns the undirected degree of physical qubit i.
func (a *Arch) Degree(i int) int {
	deg := 0
	for _, e := range a.undirEdges {
		if e.A == i || e.B == i {
			deg++
		}
	}
	return deg
}

// String returns a compact description of the architecture.
func (a *Arch) String() string {
	return fmt.Sprintf("%s (%d qubits, %d directed couplings)", a.name, a.m, len(a.pairs))
}
