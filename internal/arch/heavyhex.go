package arch

import "fmt"

// Heavy-hex device families. IBM's post-QX machines (Falcon, Eagle) use a
// heavy-hexagon lattice: rows of degree-≤3 qubits joined by degree-2
// bridge qubits, one per hexagon side. Their CX couplings are calibrated
// in both directions, so — like Tokyo — every pair here is bidirectional
// and direction switches are never forced; the families exist to exercise
// calibration-weighted cost models at realistic scale.

// HeavyHex27 returns the 27-qubit IBM Falcon heavy-hex layout
// (e.g. ibmq_mumbai), with every coupling bidirectional.
func HeavyHex27() *Arch {
	undirected := [][2]int{
		{0, 1}, {1, 2}, {1, 4}, {2, 3}, {3, 5}, {4, 7}, {5, 8},
		{6, 7}, {7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14},
		{12, 13}, {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19},
		{17, 18}, {18, 21}, {19, 20}, {19, 22}, {21, 23}, {22, 25},
		{23, 24}, {24, 25}, {25, 26},
	}
	var pairs []Pair
	for _, e := range undirected {
		pairs = append(pairs, Pair{e[0], e[1]}, Pair{e[1], e[0]})
	}
	return MustNew("heavyhex27", 27, pairs)
}

// HeavyHex127 returns a 127-qubit Eagle-class heavy-hex lattice,
// generated as HeavyHex(7, 15).
func HeavyHex127() *Arch {
	a := HeavyHex(7, 15)
	a.name = "heavyhex127"
	return a
}

// HeavyHex generates a heavy-hex lattice with the given number of qubit
// rows and a nominal row width of cols. The first and last rows carry
// cols−1 qubits (the first row drops its last column, the last row its
// first), interior rows carry cols; consecutive rows are joined by bridge
// qubits at every fourth column, offset by two columns on alternating
// gaps — the pattern that tiles the plane with heavy hexagons. All
// couplings are bidirectional.
func HeavyHex(rows, cols int) *Arch {
	if rows < 2 || cols < 3 {
		panic("arch: heavy-hex needs rows >= 2 and cols >= 3")
	}
	type rc struct{ row, col int }
	id := make(map[rc]int)
	n := 0
	span := func(r int) (lo, hi int) {
		switch r {
		case 0:
			return 0, cols - 2
		case rows - 1:
			return 1, cols - 1
		default:
			return 0, cols - 1
		}
	}
	for r := 0; r < rows; r++ {
		lo, hi := span(r)
		for c := lo; c <= hi; c++ {
			id[rc{r, c}] = n
			n++
		}
	}
	var undirected [][2]int
	for r := 0; r < rows; r++ {
		lo, hi := span(r)
		for c := lo; c < hi; c++ {
			undirected = append(undirected, [2]int{id[rc{r, c}], id[rc{r, c + 1}]})
		}
	}
	for r := 0; r+1 < rows; r++ {
		off := 0
		if r%2 == 1 {
			off = 2
		}
		loA, hiA := span(r)
		loB, hiB := span(r + 1)
		bridged := false
		addBridge := func(c int) {
			bridge := n
			n++
			undirected = append(undirected,
				[2]int{id[rc{r, c}], bridge},
				[2]int{bridge, id[rc{r + 1, c}]})
			bridged = true
		}
		for c := off; c < cols; c += 4 {
			if c < loA || c > hiA || c < loB || c > hiB {
				continue
			}
			addBridge(c)
		}
		// At small widths the stride can miss both spans entirely; a gap
		// with no bridge would disconnect the lattice, so force one at the
		// first shared column (spans always overlap for cols >= 3).
		if !bridged {
			c := loA
			if loB > c {
				c = loB
			}
			addBridge(c)
		}
	}
	var pairs []Pair
	for _, e := range undirected {
		pairs = append(pairs, Pair{e[0], e[1]}, Pair{e[1], e[0]})
	}
	return MustNew(fmt.Sprintf("heavyhex%dx%d", rows, cols), n, pairs)
}
