package arch

// ConnectedSubsets enumerates all size-n subsets of physical qubits whose
// induced undirected coupling graph is connected (paper §4.1). Subsets whose
// qubits are mutually isolated can never host a mapping, so they are pruned
// before any reasoning-engine call (paper Example 9: on QX4 every connected
// 4-subset contains p3, leaving 4 of the 5 possible subsets).
//
// Each subset is returned as a sorted slice of physical qubit indices.
func (a *Arch) ConnectedSubsets(n int) [][]int {
	if n <= 0 || n > a.m {
		return nil
	}
	var out [][]int
	subset := make([]int, 0, n)
	var rec func(next int)
	rec = func(next int) {
		if len(subset) == n {
			if a.subsetConnected(subset) {
				out = append(out, append([]int(nil), subset...))
			}
			return
		}
		// Not enough remaining qubits to finish the subset.
		if a.m-next < n-len(subset) {
			return
		}
		for i := next; i < a.m; i++ {
			subset = append(subset, i)
			rec(i + 1)
			subset = subset[:len(subset)-1]
		}
	}
	rec(0)
	return out
}

// subsetConnected reports whether the induced undirected graph on the given
// qubits is connected (O(n²) over the subset, linear in edges).
func (a *Arch) subsetConnected(subset []int) bool {
	if len(subset) == 0 {
		return false
	}
	in := make(map[int]bool, len(subset))
	for _, q := range subset {
		in[q] = true
	}
	visited := map[int]bool{subset[0]: true}
	queue := []int{subset[0]}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range a.undirEdges {
			var w int
			switch {
			case e.A == v:
				w = e.B
			case e.B == v:
				w = e.A
			default:
				continue
			}
			if in[w] && !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return len(visited) == len(subset)
}

// Triangles returns all unordered triples of physical qubits that are
// pairwise coupled (in either direction) — the "triangles" exploited by the
// qubit-triangle strategy (paper §4.2). On QX4 these are {p1,p2,p3} and
// {p3,p4,p5} (0-based: {0,1,2} and {2,3,4}).
func (a *Arch) Triangles() [][3]int {
	var out [][3]int
	for i := 0; i < a.m; i++ {
		for j := i + 1; j < a.m; j++ {
			if !a.AllowsEitherDirection(i, j) {
				continue
			}
			for k := j + 1; k < a.m; k++ {
				if a.AllowsEitherDirection(i, k) && a.AllowsEitherDirection(j, k) {
					out = append(out, [3]int{i, j, k})
				}
			}
		}
	}
	return out
}

// Restrict returns a new architecture consisting only of the given physical
// qubits (renumbered 0..len(subset)−1 in sorted order) and the coupling
// pairs among them, together with the mapping from new indices back to the
// original physical qubits. This is the instance-shrinking step of the
// subset optimization (paper §4.1).
func (a *Arch) Restrict(subset []int) (*Arch, []int) {
	sorted := append([]int(nil), subset...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	oldToNew := make(map[int]int, len(sorted))
	for newIdx, old := range sorted {
		oldToNew[old] = newIdx
	}
	var pairs []Pair
	for _, p := range a.pairs {
		ci, cok := oldToNew[p.Control]
		ti, tok := oldToNew[p.Target]
		if cok && tok {
			pairs = append(pairs, Pair{ci, ti})
		}
	}
	sub := MustNew(a.name+"/subset", len(sorted), pairs)
	sub.cost = a.cost.restrict(sorted) // reindexed weights ride along
	return sub, sorted
}
