package arch

import (
	"strings"
	"testing"
)

// TestNamesResolve: every canonical name resolves through ByName —
// parameterized families after substituting small concrete parameters.
func TestNamesResolve(t *testing.T) {
	concrete := map[string]string{
		"linear<m>":   "linear4",
		"ring<m>":     "ring4",
		"grid<r>x<c>": "grid2x3",
	}
	names := Names()
	if len(names) == 0 {
		t.Fatal("Names() is empty")
	}
	for _, name := range names {
		if c, ok := concrete[name]; ok {
			name = c
		}
		a, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if a.NumQubits() == 0 {
			t.Errorf("ByName(%q): zero qubits", name)
		}
	}
}

// TestByNameUnknownListsValid: the error for an unknown architecture
// enumerates every canonical name, mirroring ParseMethod's error shape.
func TestByNameUnknownListsValid(t *testing.T) {
	_, err := ByName("no-such-device")
	if err == nil {
		t.Fatal("ByName accepted an unknown architecture")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list %q", err, name)
		}
	}
}
